.PHONY: build test verify bench bench-json bench-compare bench-smoke fuzz-smoke

# Benchmark trajectory files: BENCH_BASE is the previous PR's tracked
# numbers, BENCH_OUT is the file this PR refreshes and compares against it.
BENCH_BASE ?= BENCH_PR9.json
BENCH_OUT  ?= BENCH_PR10.json

build:
	go build ./...

test:
	go test ./...

# Tier-1 gate: compile everything, vet, and run the full suite with the
# race detector (the parallel MR engine and concurrent sessions depend on it).
verify:
	./scripts/verify.sh

bench:
	go test -bench=. -benchmem

# Refresh the tracked benchmark trajectory ($(BENCH_OUT)): runs the
# hot-path suites with -benchmem and fills the "after" column, preserving
# any existing "before" column. Use BENCH_COL=before to (re)baseline.
bench-json:
	./scripts/bench_json.sh $(BENCH_OUT)

# Regression gate: compare this PR's trajectory against the previous PR's,
# failing on any >20% ns/op slowdown.
bench-compare:
	go run ./cmd/benchjson -compare $(BENCH_BASE) $(BENCH_OUT)

# Quick end-to-end check of the benchmark harness: one experiment with
# -metrics, validated by cmd/metricscheck.
bench-smoke:
	./scripts/bench_smoke.sh

# Short fuzz pass over every native fuzz target (FUZZTIME=20s by default),
# seeded from the checked-in corpora under */testdata/fuzz/.
fuzz-smoke:
	./scripts/fuzz_smoke.sh
