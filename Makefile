.PHONY: build test verify bench bench-json bench-smoke fuzz-smoke

build:
	go build ./...

test:
	go test ./...

# Tier-1 gate: compile everything, vet, and run the full suite with the
# race detector (the parallel MR engine and concurrent sessions depend on it).
verify:
	./scripts/verify.sh

bench:
	go test -bench=. -benchmem

# Refresh the tracked benchmark trajectory (BENCH_PR4.json): runs the
# hot-path suites with -benchmem and fills the "after" column, preserving
# any existing "before" column. Use BENCH_COL=before to (re)baseline.
bench-json:
	./scripts/bench_json.sh BENCH_PR4.json

# Quick end-to-end check of the benchmark harness: one experiment with
# -metrics, validated by cmd/metricscheck.
bench-smoke:
	./scripts/bench_smoke.sh

# Short fuzz pass over every native fuzz target (FUZZTIME=20s by default),
# seeded from the checked-in corpora under */testdata/fuzz/.
fuzz-smoke:
	./scripts/fuzz_smoke.sh
