.PHONY: build test verify bench bench-smoke fuzz-smoke

build:
	go build ./...

test:
	go test ./...

# Tier-1 gate: compile everything, vet, and run the full suite with the
# race detector (the parallel MR engine and concurrent sessions depend on it).
verify:
	./scripts/verify.sh

bench:
	go test -bench=. -benchmem

# Quick end-to-end check of the benchmark harness: one experiment with
# -metrics, validated by cmd/metricscheck.
bench-smoke:
	./scripts/bench_smoke.sh

# Short fuzz pass over every native fuzz target (FUZZTIME=20s by default),
# seeded from the checked-in corpora under */testdata/fuzz/.
fuzz-smoke:
	./scripts/fuzz_smoke.sh
