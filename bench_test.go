// This file holds one testing.B benchmark per table and figure of the
// paper's evaluation (§8), each delegating to the corresponding experiment
// driver. Benchmarks run at the quick scale so `go test -bench=.` finishes
// promptly; cmd/benchrunner runs the full-scale harness and prints the
// paper-style tables.
package opportune_test

import (
	"testing"

	"opportune/internal/experiments"
)

func benchConfig() experiments.Config { return experiments.QuickConfig() }

// BenchmarkFig7QueryEvolution regenerates Fig 7(a)/(b): ORIG vs REWR
// execution time for A1–A8 × v1–v4 within each analyst's session.
func BenchmarkFig7QueryEvolution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.AvgImprovementV2toV4(), "%improve-avg")
	}
}

// BenchmarkFig8UserEvolution regenerates Fig 8(a)/(b)/(c): holdout analysts
// reusing other analysts' views (execution time, data moved, improvement).
func BenchmarkFig8UserEvolution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		var avg float64
		for _, e := range r.Entries {
			avg += e.ImprovePct
		}
		b.ReportMetric(avg/float64(len(r.Entries)), "%improve-avg")
	}
}

// BenchmarkTable1IncrementalAnalysts regenerates Table 1: A5v3 improvement
// as more analysts' views accumulate.
func BenchmarkTable1IncrementalAnalysts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ImprovePct[len(r.ImprovePct)-1], "%improve-final")
	}
}

// BenchmarkFig9AlgorithmComparison regenerates Fig 9(a)/(b)/(c): BFR vs DP
// candidates considered, rewrite attempts, and runtime.
func BenchmarkFig9AlgorithmComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		var bfr, dp float64
		for _, e := range r.Entries {
			bfr += float64(e.BFRCandidates)
			dp += float64(e.DPCandidates)
		}
		b.ReportMetric(bfr/float64(len(r.Entries)), "bfr-candidates")
		b.ReportMetric(dp/float64(len(r.Entries)), "dp-candidates")
	}
}

// BenchmarkFig10Scalability regenerates Fig 10: rewrite-algorithm runtime
// for A3v1 as the view count grows.
func BenchmarkFig10Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(benchConfig(), []int{20, 60, 120})
		if err != nil {
			b.Fatal(err)
		}
		last := r.Points[len(r.Points)-1]
		b.ReportMetric(last.BFRRuntimeSec, "bfr-sec-at-max")
		b.ReportMetric(last.DPRuntimeSec, "dp-sec-at-max")
	}
}

// BenchmarkFig11Anytime regenerates Fig 11: % error relative to the optimal
// rewrite over BFREWRITE's elapsed search time (A1v2–v4).
func BenchmarkFig11Anytime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		var bfr, dp float64
		for _, s := range r.Series {
			bfr += float64(s.TotalRewritesBFR)
			dp += float64(s.TotalRewritesDP)
		}
		b.ReportMetric(bfr, "bfr-rewrites")
		b.ReportMetric(dp, "dp-rewrites")
	}
}

// BenchmarkFig12Syntactic regenerates Fig 12: BFR vs BFR-SYNTACTIC on
// analyst 1's evolving query.
func BenchmarkFig12Syntactic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		var bfr, syn float64
		for _, e := range r.Entries {
			bfr += e.BFRImprove
			syn += e.SynImprove
		}
		b.ReportMetric(bfr/3, "bfr-%improve")
		b.ReportMetric(syn/3, "syn-%improve")
	}
}

// BenchmarkTable2NoIdenticalViews regenerates Table 2: improvement after
// identical views are discarded (syntactic drops to zero, BFR does not).
func BenchmarkTable2NoIdenticalViews(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table2(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		var bfr, syn float64
		for _, e := range r.Entries {
			bfr += e.BFRImprove
			syn += e.SyntacticImprove
		}
		b.ReportMetric(bfr/8, "bfr-%improve")
		b.ReportMetric(syn/8, "syn-%improve")
	}
}

// BenchmarkAblationPruningSources quantifies BFREWRITE's pruning sources
// (DESIGN.md §6): OPTCOST ordering/termination and the GUESSCOMPLETE gate.
func BenchmarkAblationPruningSources(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Ablation(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		var full, noOpt float64
		for _, e := range r.Entries {
			full += float64(e.FullCandidates)
			noOpt += float64(e.NoOptCandidates)
		}
		b.ReportMetric(full/8, "full-candidates")
		b.ReportMetric(noOpt/8, "noopt-candidates")
	}
}

// BenchmarkReclamationPolicies evaluates the §10 storage-reclamation
// policies under shrinking view-storage budgets.
func BenchmarkReclamationPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Reclamation(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		var tight float64
		n := 0
		for _, e := range r.Entries {
			if e.BudgetFrac == 0.05 {
				tight += e.ImprovePct
				n++
			}
		}
		b.ReportMetric(tight/float64(n), "%improve-at-5%budget")
	}
}

// BenchmarkJSensitivity sweeps the J parameter (§5): reuse expressiveness
// vs search cost; A7's 3-way merge need shows as a step at J=3.
func BenchmarkJSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.JSensitivity(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		var j2, j3 float64
		for _, e := range r.Entries {
			if e.Analyst == 7 && e.J == 2 {
				j2 = e.ImprovePct
			}
			if e.Analyst == 7 && e.J == 3 {
				j3 = e.ImprovePct
			}
		}
		b.ReportMetric(j3-j2, "a7-j3-step-%")
	}
}

// BenchmarkSimilarity runs the §8.1 microbenchmark: query-text similarity
// is a poor predictor of reusability.
func BenchmarkSimilarity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Similarity(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Correlation, "pearson")
	}
}

// BenchmarkEngineSerial and BenchmarkEngineParallel run the same Fig 7
// workload with the MR worker pool at 1 vs GOMAXPROCS, exposing the
// wall-clock effect of the parallel engine. Simulated seconds and result
// bytes are identical in both — only real time differs.
func BenchmarkEngineSerial(b *testing.B)   { benchEngineWorkers(b, 1) }
func BenchmarkEngineParallel(b *testing.B) { benchEngineWorkers(b, 0) }

func benchEngineWorkers(b *testing.B, workers int) {
	cfg := benchConfig()
	cfg.Workers = workers
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchThroughput runs the MRShare-style shared-scan batch
// executor against one-query-at-a-time execution: cross-query job dedup,
// shared scans, and inter-job parallelism. The custom metrics report the
// deterministic simulated speedup and the wall-clock speedup.
func BenchmarkBatchThroughput(b *testing.B) {
	cfg := benchConfig()
	cfg.BatchSize = 4
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunBatchThroughput(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SimSpeedup, "sim-speedup-x")
		b.ReportMetric(r.WallSpeedup, "wall-speedup-x")
	}
}

// BenchmarkServiceThroughput runs the always-on multi-tenant service
// under closed-loop Zipfian load: micro-batched intake vs batch-size-1 on
// the same per-worker query sequences. The custom metrics report the
// batched arm's sustained qps and the two speedups.
func BenchmarkServiceThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunService(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Batched.QPS, "qps")
		b.ReportMetric(r.SimSpeedup, "sim-speedup-x")
		b.ReportMetric(r.WallSpeedup, "wall-speedup-x")
	}
}

// BenchmarkFootprint measures the §10 storage cost of retaining every view
// of the whole workload.
func BenchmarkFootprint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Footprint(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Ratio, "views/base-ratio")
	}
}
