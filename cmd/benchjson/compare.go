package main

import (
	"fmt"
	"sort"
	"strings"
)

// comparison is one benchmark's delta between two trajectory files, on the
// "after" column (the measurement of each file's own tree).
type comparison struct {
	Name       string
	OldNs      float64
	NewNs      float64
	Delta      float64 // fractional ns/op change, e.g. 0.25 = 25% slower
	Regression bool
}

// compareReport is the outcome of comparing two trajectory files.
type compareReport struct {
	Rows    []comparison
	Added   []string // benchmarks only in the new file
	Removed []string // benchmarks only in the old file
}

// regressions lists the rows whose slowdown exceeded the threshold.
func (r compareReport) regressions() []comparison {
	var out []comparison
	for _, c := range r.Rows {
		if c.Regression {
			out = append(out, c)
		}
	}
	return out
}

// compareFiles diffs the After columns of two trajectory files. A
// benchmark regresses when its new ns/op exceeds old ns/op by more than
// threshold (fractional: 0.2 = 20%). Benchmarks present in only one file
// are reported but never fail the comparison — new benchmarks have no
// baseline and removed ones no measurement.
func compareFiles(old, cur *File, threshold float64) compareReport {
	oldBy := make(map[string]*Columns)
	for i := range old.Benchmarks {
		if c := old.Benchmarks[i].After; c != nil {
			oldBy[old.Benchmarks[i].Name] = c
		}
	}
	var rep compareReport
	seen := make(map[string]bool)
	for _, b := range cur.Benchmarks {
		if b.After == nil {
			continue
		}
		seen[b.Name] = true
		prior, ok := oldBy[b.Name]
		if !ok || prior.NsOp <= 0 {
			rep.Added = append(rep.Added, b.Name)
			continue
		}
		delta := b.After.NsOp/prior.NsOp - 1
		rep.Rows = append(rep.Rows, comparison{
			Name:       b.Name,
			OldNs:      prior.NsOp,
			NewNs:      b.After.NsOp,
			Delta:      delta,
			Regression: delta > threshold,
		})
	}
	for name := range oldBy {
		if !seen[name] {
			rep.Removed = append(rep.Removed, name)
		}
	}
	sort.Slice(rep.Rows, func(i, j int) bool { return rep.Rows[i].Delta > rep.Rows[j].Delta })
	sort.Strings(rep.Added)
	sort.Strings(rep.Removed)
	return rep
}

// render prints the comparison as an aligned table.
func (r compareReport) render(threshold float64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-50s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, c := range r.Rows {
		mark := ""
		if c.Regression {
			mark = "  REGRESSION"
		}
		fmt.Fprintf(&sb, "%-50s %14.1f %14.1f %8.1f%%%s\n", c.Name, c.OldNs, c.NewNs, 100*c.Delta, mark)
	}
	for _, n := range r.Added {
		fmt.Fprintf(&sb, "%-50s %14s %14s %9s\n", n, "-", "new", "-")
	}
	for _, n := range r.Removed {
		fmt.Fprintf(&sb, "%-50s %14s %14s %9s\n", n, "removed", "-", "-")
	}
	if reg := r.regressions(); len(reg) > 0 {
		fmt.Fprintf(&sb, "\n%d benchmark(s) regressed more than %.0f%% ns/op\n", len(reg), 100*threshold)
	}
	return sb.String()
}
