package main

import (
	"fmt"
	"sort"
	"strings"
)

// comparison is one benchmark's delta between two trajectory files, on the
// "after" column (the measurement of each file's own tree).
type comparison struct {
	Name       string
	OldNs      float64
	NewNs      float64
	Delta      float64 // fractional ns/op change, e.g. 0.25 = 25% slower
	Regression bool

	// Allocation gating: a benchmark that got no slower can still regress
	// by allocating more per op (GC pressure the ns/op of a microbenchmark
	// under-reports). Gated only when the baseline recorded allocations.
	OldAllocs        float64
	NewAllocs        float64
	AllocsDelta      float64
	AllocsRegression bool
}

// compareReport is the outcome of comparing two trajectory files.
type compareReport struct {
	Rows    []comparison
	Added   []string // benchmarks only in the new file
	Removed []string // benchmarks only in the old file
	// Suspect lists benchmarks whose baseline entry exists but carries a
	// non-positive ns/op — a corrupt or hand-edited measurement. These are
	// reported (and fail the comparison) instead of being silently
	// reclassified as newly added, which would waive the regression gate.
	Suspect []string
}

// regressions lists the rows that failed either gate.
func (r compareReport) regressions() []comparison {
	var out []comparison
	for _, c := range r.Rows {
		if c.Regression || c.AllocsRegression {
			out = append(out, c)
		}
	}
	return out
}

// failed reports whether the comparison should gate a build: a regression
// on either metric, a suspect baseline that prevented comparing at all, or
// a baseline benchmark that vanished from the new run — a deleted (or
// renamed, or silently skipped) benchmark would otherwise waive its own
// regression gate forever.
func (r compareReport) failed() bool {
	return len(r.regressions()) > 0 || len(r.Suspect) > 0 || len(r.Removed) > 0
}

// allocRegressionFloor is the absolute allocs/op increase an allocation
// regression must also exceed: going from 1 to 2 allocs doubles the
// fraction but is noise, while +8 allocs on a hot path is structural.
const allocRegressionFloor = 8

// compareFiles diffs the After columns of two trajectory files. A
// benchmark regresses when its new ns/op exceeds old ns/op by more than
// threshold (fractional: 0.2 = 20%), or when its allocs/op grew by more
// than the same fraction AND by more than allocRegressionFloor absolute.
// Benchmarks present only in the new file are reported but never fail the
// comparison (no baseline to regress against); benchmarks present only in
// the baseline FAIL it — the measurement they were gating disappeared. A
// baseline entry with ns/op <= 0 is reported as suspect and fails the
// comparison rather than counting as "added".
func compareFiles(old, cur *File, threshold float64) compareReport {
	oldBy := make(map[string]*Columns)
	for i := range old.Benchmarks {
		if c := old.Benchmarks[i].After; c != nil {
			oldBy[old.Benchmarks[i].Name] = c
		}
	}
	var rep compareReport
	seen := make(map[string]bool)
	for _, b := range cur.Benchmarks {
		if b.After == nil {
			continue
		}
		seen[b.Name] = true
		prior, ok := oldBy[b.Name]
		if !ok {
			rep.Added = append(rep.Added, b.Name)
			continue
		}
		if prior.NsOp <= 0 {
			rep.Suspect = append(rep.Suspect, b.Name)
			continue
		}
		delta := b.After.NsOp/prior.NsOp - 1
		c := comparison{
			Name:       b.Name,
			OldNs:      prior.NsOp,
			NewNs:      b.After.NsOp,
			Delta:      delta,
			Regression: delta > threshold,
			OldAllocs:  prior.AllocsOp,
			NewAllocs:  b.After.AllocsOp,
		}
		if prior.AllocsOp > 0 {
			c.AllocsDelta = b.After.AllocsOp/prior.AllocsOp - 1
			c.AllocsRegression = c.AllocsDelta > threshold &&
				b.After.AllocsOp-prior.AllocsOp > allocRegressionFloor
		}
		rep.Rows = append(rep.Rows, c)
	}
	for name := range oldBy {
		if !seen[name] {
			rep.Removed = append(rep.Removed, name)
		}
	}
	sort.Slice(rep.Rows, func(i, j int) bool { return rep.Rows[i].Delta > rep.Rows[j].Delta })
	sort.Strings(rep.Added)
	sort.Strings(rep.Removed)
	sort.Strings(rep.Suspect)
	return rep
}

// render prints the comparison as an aligned table.
func (r compareReport) render(threshold float64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-50s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, c := range r.Rows {
		mark := ""
		if c.Regression {
			mark = "  REGRESSION"
		}
		if c.AllocsRegression {
			mark += fmt.Sprintf("  ALLOCS-REGRESSION (%.0f -> %.0f allocs/op)", c.OldAllocs, c.NewAllocs)
		}
		fmt.Fprintf(&sb, "%-50s %14.1f %14.1f %8.1f%%%s\n", c.Name, c.OldNs, c.NewNs, 100*c.Delta, mark)
	}
	for _, n := range r.Added {
		fmt.Fprintf(&sb, "%-50s %14s %14s %9s\n", n, "-", "new", "-")
	}
	for _, n := range r.Removed {
		fmt.Fprintf(&sb, "%-50s %14s %14s %9s  REMOVED\n", n, "removed", "-", "-")
	}
	for _, n := range r.Suspect {
		fmt.Fprintf(&sb, "%-50s %14s %14s %9s  SUSPECT BASELINE\n", n, "<=0", "?", "-")
	}
	if reg := r.regressions(); len(reg) > 0 {
		fmt.Fprintf(&sb, "\n%d benchmark(s) regressed more than %.0f%% (ns/op or allocs/op)\n", len(reg), 100*threshold)
	}
	if len(r.Suspect) > 0 {
		fmt.Fprintf(&sb, "\n%d suspect baseline(s): old file records ns/op <= 0 — regenerate the baseline\n", len(r.Suspect))
	}
	if len(r.Removed) > 0 {
		fmt.Fprintf(&sb, "\n%d benchmark(s) in the baseline are missing from the new run — restore them or rebaseline\n", len(r.Removed))
	}
	return sb.String()
}
