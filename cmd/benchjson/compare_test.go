package main

import (
	"strings"
	"testing"
)

func traj(entries map[string]float64) *File {
	f := &File{}
	for name, ns := range entries {
		f.Benchmarks = append(f.Benchmarks, Record{Name: name, After: &Columns{NsOp: ns}})
	}
	return f
}

func TestCompareFlagsRegressions(t *testing.T) {
	old := traj(map[string]float64{"BenchmarkA": 100, "BenchmarkB": 100, "BenchmarkC": 100})
	cur := traj(map[string]float64{"BenchmarkA": 119, "BenchmarkB": 121, "BenchmarkC": 60})
	rep := compareFiles(old, cur, 0.20)
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rep.Rows))
	}
	reg := rep.regressions()
	if len(reg) != 1 || reg[0].Name != "BenchmarkB" {
		t.Fatalf("regressions = %+v, want just BenchmarkB", reg)
	}
	// Rows sort slowest-delta first.
	if rep.Rows[0].Name != "BenchmarkB" || rep.Rows[2].Name != "BenchmarkC" {
		t.Errorf("unexpected row order: %+v", rep.Rows)
	}
	out := rep.render(0.20)
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "1 benchmark(s) regressed") {
		t.Errorf("render missing regression callout:\n%s", out)
	}
}

func TestCompareIgnoresAddedAndRemoved(t *testing.T) {
	old := traj(map[string]float64{"BenchmarkA": 100, "BenchmarkGone": 50})
	cur := traj(map[string]float64{"BenchmarkA": 100, "BenchmarkNew": 9999})
	rep := compareFiles(old, cur, 0.20)
	if len(rep.regressions()) != 0 {
		t.Fatalf("added/removed benchmarks must not regress: %+v", rep.regressions())
	}
	if len(rep.Added) != 1 || rep.Added[0] != "BenchmarkNew" {
		t.Errorf("Added = %v", rep.Added)
	}
	if len(rep.Removed) != 1 || rep.Removed[0] != "BenchmarkGone" {
		t.Errorf("Removed = %v", rep.Removed)
	}
}

func TestCompareSkipsMissingAfterColumn(t *testing.T) {
	old := &File{Benchmarks: []Record{
		{Name: "BenchmarkOnlyBefore", Before: &Columns{NsOp: 100}},
		{Name: "BenchmarkBoth", After: &Columns{NsOp: 100}},
	}}
	cur := traj(map[string]float64{"BenchmarkOnlyBefore": 500, "BenchmarkBoth": 100})
	rep := compareFiles(old, cur, 0.20)
	if len(rep.Rows) != 1 || rep.Rows[0].Name != "BenchmarkBoth" {
		t.Fatalf("rows = %+v, want just BenchmarkBoth", rep.Rows)
	}
	// A record with no baseline After column counts as newly measured.
	if len(rep.Added) != 1 || rep.Added[0] != "BenchmarkOnlyBefore" {
		t.Errorf("Added = %v", rep.Added)
	}
	if len(rep.regressions()) != 0 {
		t.Errorf("no regressions expected: %+v", rep.regressions())
	}
}
