package main

import (
	"strings"
	"testing"
)

func traj(entries map[string]float64) *File {
	f := &File{}
	for name, ns := range entries {
		f.Benchmarks = append(f.Benchmarks, Record{Name: name, After: &Columns{NsOp: ns}})
	}
	return f
}

func TestCompareFlagsRegressions(t *testing.T) {
	old := traj(map[string]float64{"BenchmarkA": 100, "BenchmarkB": 100, "BenchmarkC": 100})
	cur := traj(map[string]float64{"BenchmarkA": 119, "BenchmarkB": 121, "BenchmarkC": 60})
	rep := compareFiles(old, cur, 0.20)
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rep.Rows))
	}
	reg := rep.regressions()
	if len(reg) != 1 || reg[0].Name != "BenchmarkB" {
		t.Fatalf("regressions = %+v, want just BenchmarkB", reg)
	}
	// Rows sort slowest-delta first.
	if rep.Rows[0].Name != "BenchmarkB" || rep.Rows[2].Name != "BenchmarkC" {
		t.Errorf("unexpected row order: %+v", rep.Rows)
	}
	out := rep.render(0.20)
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "1 benchmark(s) regressed") {
		t.Errorf("render missing regression callout:\n%s", out)
	}
}

func TestCompareIgnoresAddedButFailsRemoved(t *testing.T) {
	old := traj(map[string]float64{"BenchmarkA": 100, "BenchmarkGone": 50})
	cur := traj(map[string]float64{"BenchmarkA": 100, "BenchmarkNew": 9999})
	rep := compareFiles(old, cur, 0.20)
	if len(rep.regressions()) != 0 {
		t.Fatalf("added/removed benchmarks must not regress: %+v", rep.regressions())
	}
	if len(rep.Added) != 1 || rep.Added[0] != "BenchmarkNew" {
		t.Errorf("Added = %v", rep.Added)
	}
	if len(rep.Removed) != 1 || rep.Removed[0] != "BenchmarkGone" {
		t.Errorf("Removed = %v", rep.Removed)
	}
	// A benchmark that vanished from the new run fails the gate: deleting
	// (or renaming, or skipping) a benchmark must not waive its regression
	// check silently.
	if !rep.failed() {
		t.Error("removed baseline benchmark must fail the comparison")
	}
	out := rep.render(0.20)
	if !strings.Contains(out, "REMOVED") || !strings.Contains(out, "missing from the new run") {
		t.Errorf("render missing removed callout:\n%s", out)
	}

	// With nothing removed (and no regressions), the comparison passes.
	if rep := compareFiles(traj(map[string]float64{"BenchmarkA": 100}), cur, 0.20); rep.failed() {
		t.Errorf("comparison with additions only must pass: %+v", rep)
	}
}

func TestCompareSkipsMissingAfterColumn(t *testing.T) {
	old := &File{Benchmarks: []Record{
		{Name: "BenchmarkOnlyBefore", Before: &Columns{NsOp: 100}},
		{Name: "BenchmarkBoth", After: &Columns{NsOp: 100}},
	}}
	cur := traj(map[string]float64{"BenchmarkOnlyBefore": 500, "BenchmarkBoth": 100})
	rep := compareFiles(old, cur, 0.20)
	if len(rep.Rows) != 1 || rep.Rows[0].Name != "BenchmarkBoth" {
		t.Fatalf("rows = %+v, want just BenchmarkBoth", rep.Rows)
	}
	// A record with no baseline After column counts as newly measured.
	if len(rep.Added) != 1 || rep.Added[0] != "BenchmarkOnlyBefore" {
		t.Errorf("Added = %v", rep.Added)
	}
	if len(rep.regressions()) != 0 {
		t.Errorf("no regressions expected: %+v", rep.regressions())
	}
}

func TestCompareFlagsSuspectBaselines(t *testing.T) {
	old := traj(map[string]float64{"BenchmarkA": 100, "BenchmarkBad": 0, "BenchmarkNeg": -5})
	cur := traj(map[string]float64{"BenchmarkA": 100, "BenchmarkBad": 120, "BenchmarkNeg": 120})
	rep := compareFiles(old, cur, 0.20)
	if len(rep.Suspect) != 2 || rep.Suspect[0] != "BenchmarkBad" || rep.Suspect[1] != "BenchmarkNeg" {
		t.Fatalf("Suspect = %v, want [BenchmarkBad BenchmarkNeg]", rep.Suspect)
	}
	if len(rep.Added) != 0 {
		t.Errorf("suspect baselines misclassified as added: %v", rep.Added)
	}
	if !rep.failed() {
		t.Error("suspect baseline must fail the comparison")
	}
	out := rep.render(0.20)
	if !strings.Contains(out, "SUSPECT BASELINE") || !strings.Contains(out, "2 suspect baseline(s)") {
		t.Errorf("render missing suspect callout:\n%s", out)
	}
}

func allocTraj(entries map[string][2]float64) *File {
	f := &File{}
	for name, v := range entries {
		f.Benchmarks = append(f.Benchmarks,
			Record{Name: name, After: &Columns{NsOp: v[0], AllocsOp: v[1]}})
	}
	return f
}

func TestCompareGatesAllocRegressions(t *testing.T) {
	old := allocTraj(map[string][2]float64{
		"BenchmarkHot":   {100, 100}, // +50% and +50 allocs → regression
		"BenchmarkTiny":  {100, 2},   // 2 → 4: +100% but under the absolute floor
		"BenchmarkNoMem": {100, 0},   // baseline never measured allocs → ungated
	})
	cur := allocTraj(map[string][2]float64{
		"BenchmarkHot":   {100, 150},
		"BenchmarkTiny":  {100, 4},
		"BenchmarkNoMem": {100, 500},
	})
	rep := compareFiles(old, cur, 0.20)
	reg := rep.regressions()
	if len(reg) != 1 || reg[0].Name != "BenchmarkHot" || !reg[0].AllocsRegression {
		t.Fatalf("regressions = %+v, want just BenchmarkHot on allocs", reg)
	}
	if reg[0].Regression {
		t.Error("ns/op flagged without a slowdown")
	}
	if !rep.failed() {
		t.Error("alloc regression must fail the comparison")
	}
	out := rep.render(0.20)
	if !strings.Contains(out, "ALLOCS-REGRESSION (100 -> 150") {
		t.Errorf("render missing allocs callout:\n%s", out)
	}
}
