// Command benchjson converts `go test -bench -benchmem` output into the
// tracked benchmark-trajectory JSON (BENCH_PR4.json and successors): one
// record per benchmark with ns/op, B/op, and allocs/op, optionally merged
// with a prior file so a record carries both "before" and "after" columns.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -col after -merge before.json -o BENCH_PR4.json
//	benchjson -compare old.json new.json   # exits 1 on >20% ns/op or allocs/op regression, or a suspect baseline
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Columns holds one measurement of a benchmark.
type Columns struct {
	NsOp     float64 `json:"ns_op"`
	BOp      float64 `json:"b_op"`
	AllocsOp float64 `json:"allocs_op"`
}

// Record is one benchmark's trajectory entry. Before is the measurement
// taken on the pre-optimization tree (absent for benchmarks that have no
// meaningful baseline); After is the current tree.
type Record struct {
	Name   string   `json:"name"`
	Before *Columns `json:"before,omitempty"`
	After  *Columns `json:"after,omitempty"`
}

// File is the checked-in trajectory document.
type File struct {
	GeneratedBy string   `json:"generated_by"`
	GoVersion   string   `json:"go_version"`
	Benchmarks  []Record `json:"benchmarks"`
}

func main() {
	col := flag.String("col", "after", `which column the piped bench output fills: "before" or "after"`)
	merge := flag.String("merge", "", "existing trajectory JSON to merge with (its other column is preserved)")
	out := flag.String("o", "", "output file (default stdout)")
	doCompare := flag.Bool("compare", false, "compare two trajectory files' after columns: benchjson -compare old.json new.json")
	threshold := flag.Float64("threshold", 0.20, "fractional ns/op slowdown treated as a regression in -compare mode")
	flag.Parse()
	if *doCompare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two files: old.json new.json")
			os.Exit(2)
		}
		oldF, err := readFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		newF, err := readFile(flag.Arg(1))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		rep := compareFiles(oldF, newF, *threshold)
		fmt.Print(rep.render(*threshold))
		if rep.failed() {
			os.Exit(1)
		}
		return
	}
	if *col != "before" && *col != "after" {
		fmt.Fprintf(os.Stderr, "benchjson: -col must be before or after, got %q\n", *col)
		os.Exit(2)
	}

	measured, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(measured) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines in input")
		os.Exit(1)
	}

	byName := make(map[string]*Record)
	var order []string
	if *merge != "" {
		prior, err := readFile(*merge)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		for i := range prior.Benchmarks {
			r := prior.Benchmarks[i]
			byName[r.Name] = &r
			order = append(order, r.Name)
		}
	}
	names := make([]string, 0, len(measured))
	for name := range measured {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := measured[name]
		r, ok := byName[name]
		if !ok {
			r = &Record{Name: name}
			byName[name] = r
			order = append(order, name)
		}
		if *col == "before" {
			r.Before = &c
		} else {
			r.After = &c
		}
	}

	doc := File{GeneratedBy: "scripts/bench_json.sh", GoVersion: runtime.Version()}
	for _, name := range order {
		doc.Benchmarks = append(doc.Benchmarks, *byName[name])
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func readFile(path string) (*File, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

// parseBench extracts measurements from `go test -bench -benchmem` output.
// A benchmark line is "BenchmarkName-P   N   123 ns/op   456 B/op   7 allocs/op"
// possibly with extra custom metrics; the GOMAXPROCS suffix is stripped so
// records stay stable across machines. A benchmark run for several configs
// keeps the last measurement per name.
func parseBench(r *os.File) (map[string]Columns, error) {
	out := make(map[string]Columns)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var c Columns
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				c.NsOp = v
				seen = true
			case "B/op":
				c.BOp = v
			case "allocs/op":
				c.AllocsOp = v
			}
		}
		if seen {
			out[name] = c
		}
	}
	return out, sc.Err()
}
