// Command benchrunner regenerates the paper's evaluation (§8): every table
// and figure is reproduced as a text table with the paper's expected shape
// noted underneath.
//
// Usage:
//
//	benchrunner [-exp all|fig7|fig8|table1|fig9|fig10|fig11|fig12|table2|ablation|reclamation|jsens|similarity|footprint|batch|ingest|service|partition|fusion] [-quick] [-tweets N] [-workers N] [-batch N] [-metrics out.json] [-faults plan.json] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"opportune/internal/experiments"
	"opportune/internal/fault"
	"opportune/internal/obs"
	"opportune/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, fig7, fig8, table1, fig9, fig10, fig11, fig12, table2, ablation, reclamation, jsens, similarity, footprint, batch, ingest, service, partition, fusion")
	quick := flag.Bool("quick", false, "run at reduced scale")
	tweets := flag.Int("tweets", 0, "override tweet-log size (0 = scale default)")
	workers := flag.Int("workers", 0, "MR engine worker-pool size (0 = GOMAXPROCS); affects wall-clock only, never results or simulated seconds")
	metrics := flag.String("metrics", "", "write an observability export (metrics + spans, JSON) to this file")
	batch := flag.Int("batch", 0, "batch size for the batch-throughput and service experiments (0 = default 8)")
	tenants := flag.Int("tenants", 0, "simulated tenant population for the service experiment (0 = default 8)")
	faults := flag.String("faults", "", "inject a scripted fault plan (JSON, see internal/fault); results stay identical, recovery cost lands in wasted sim-seconds")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (post-GC allocations in use) to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: start cpu profile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // profile live objects, not garbage awaiting collection
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "benchrunner: write heap profile: %v\n", err)
			}
		}()
	}

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	if *tweets > 0 {
		sc := cfg.Scale
		ratio := float64(*tweets) / float64(sc.Tweets)
		sc.Tweets = *tweets
		sc.Checkins = int(float64(sc.Checkins) * ratio)
		sc.Landmarks = int(float64(sc.Landmarks) * ratio)
		sc.Users = int(float64(sc.Users) * ratio)
		cfg.Scale = sc
	}
	cfg.Workers = *workers
	cfg.BatchSize = *batch
	cfg.Tenants = *tenants
	var reg *obs.Registry
	if *metrics != "" {
		reg = obs.NewRegistry()
		cfg.Obs = reg
	}
	if *faults != "" {
		plan, err := fault.Load(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
			os.Exit(1)
		}
		cfg.Faults = plan
		fmt.Printf("# chaos: injecting %d scripted faults (seed %d) from %s\n",
			len(plan.Faults), plan.Seed, *faults)
	}
	fmt.Printf("# opportune benchrunner — scale: %d tweets, %d check-ins, %d landmarks, %d users\n\n",
		cfg.Scale.Tweets, cfg.Scale.Checkins, cfg.Scale.Landmarks, cfg.Scale.Users)

	type runner struct {
		name string
		run  func() (interface{ Render() string }, error)
	}
	runners := []runner{
		{"fig7", func() (interface{ Render() string }, error) { return experiments.Fig7(cfg) }},
		{"fig8", func() (interface{ Render() string }, error) { return experiments.Fig8(cfg) }},
		{"table1", func() (interface{ Render() string }, error) { return experiments.Table1(cfg) }},
		{"fig9", func() (interface{ Render() string }, error) { return experiments.Fig9(cfg) }},
		{"fig10", func() (interface{ Render() string }, error) { return experiments.Fig10(cfg, nil) }},
		{"fig11", func() (interface{ Render() string }, error) { return experiments.Fig11(cfg) }},
		{"fig12", func() (interface{ Render() string }, error) { return experiments.Fig12(cfg) }},
		{"table2", func() (interface{ Render() string }, error) { return experiments.Table2(cfg) }},
		{"ablation", func() (interface{ Render() string }, error) { return experiments.Ablation(cfg) }},
		{"reclamation", func() (interface{ Render() string }, error) { return experiments.Reclamation(cfg) }},
		{"jsens", func() (interface{ Render() string }, error) { return experiments.JSensitivity(cfg) }},
		{"similarity", func() (interface{ Render() string }, error) { return experiments.Similarity(cfg) }},
		{"footprint", func() (interface{ Render() string }, error) { return experiments.Footprint(cfg) }},
		{"batch", func() (interface{ Render() string }, error) { return experiments.RunBatchThroughput(cfg) }},
		{"ingest", func() (interface{ Render() string }, error) { return experiments.RunIngest(cfg) }},
		{"service", func() (interface{ Render() string }, error) { return experiments.RunService(cfg) }},
		{"partition", func() (interface{ Render() string }, error) { return experiments.RunPartition(cfg) }},
		{"fusion", func() (interface{ Render() string }, error) { return experiments.RunFusion(cfg) }},
	}

	ran := 0
	for _, r := range runners {
		if *exp != "all" && *exp != r.name {
			continue
		}
		ran++
		start := time.Now()
		res, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %s: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Println(res.Render())
		fmt.Printf("[%s completed in %.1fs wall]\n\n", r.name, time.Since(start).Seconds())
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "benchrunner: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if reg != nil {
		if err := writeMetrics(reg, *metrics); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("metrics written to %s\n", *metrics)
	}
	_ = workload.DefaultScale
}

func writeMetrics(reg *obs.Registry, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
