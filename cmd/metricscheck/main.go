// Command metricscheck validates a benchrunner -metrics export: the file
// must be well-formed obs JSON with a populated metrics section, internally
// consistent histograms, and the core counters every instrumented run
// produces. make bench-smoke pipes a quick run through it.
//
// Usage:
//
//	metricscheck out.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"opportune/internal/obs"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: metricscheck <metrics.json>")
		os.Exit(2)
	}
	raw, err := os.ReadFile(os.Args[1])
	if err != nil {
		fail("%v", err)
	}
	var e obs.Export
	if err := json.Unmarshal(raw, &e); err != nil {
		fail("malformed export: %v", err)
	}

	m := e.Metrics
	if len(m.Counters) == 0 {
		fail("no counters recorded")
	}
	// Every instrumented benchrunner run executes jobs through the session,
	// reading and writing the store; these counter families must exist and
	// be positive.
	for _, prefix := range []string{
		"mr_jobs_total",
		"mr_input_bytes_total",
		"session_queries_total",
		"storage_read_bytes_total",
		"storage_write_bytes_total",
	} {
		if !hasPositive(m.Counters, prefix) {
			fail("missing or zero counter %s", prefix)
		}
	}
	for name, sec := range map[string]float64{
		"mr_sim_seconds_total":           sumByPrefix(m.FloatCounters, "mr_sim_seconds_total"),
		"session_exec_sim_seconds_total": sumByPrefix(m.FloatCounters, "session_exec_sim_seconds_total"),
	} {
		if sec <= 0 {
			fail("float counter %s not positive", name)
		}
	}
	for key, h := range m.Histograms {
		if len(h.Counts) != len(h.Bounds)+1 {
			fail("histogram %s: %d buckets for %d bounds", key, len(h.Counts), len(h.Bounds))
		}
		var n int64
		for _, c := range h.Counts {
			if c < 0 {
				fail("histogram %s: negative bucket", key)
			}
			n += c
		}
		if n != h.Count {
			fail("histogram %s: buckets sum to %d, count says %d", key, n, h.Count)
		}
	}
	checkBatch(m)
	checkPartition(m)
	checkFused(m)
	checkFusedReduce(m)
	if len(e.Spans) == 0 {
		fail("no spans recorded")
	}
	for _, sp := range e.Spans {
		checkSpan(sp)
	}
	fmt.Printf("ok: %d counters, %d float counters, %d histograms, %d root spans\n",
		len(m.Counters), len(m.FloatCounters), len(m.Histograms), len(e.Spans))
}

// checkBatch validates the batch executor's counter family when any of it
// is present (non-batch runs record none of these, which is fine). The
// shared-scan executor publishes all three families together, so a partial
// set means a wiring bug.
func checkBatch(m obs.Snapshot) {
	_, dedupOK := m.Counters["batch_jobs_deduped_total"]
	_, savedOK := m.Counters["batch_scan_bytes_saved_total"]
	fanin, faninOK := m.Histograms["batch_shared_scan_fanin"]
	if !dedupOK && !savedOK && !faninOK {
		return
	}
	if !dedupOK || !savedOK || !faninOK {
		fail("partial batch counter family: deduped=%v saved=%v fanin=%v",
			dedupOK, savedOK, faninOK)
	}
	if m.Counters["batch_jobs_deduped_total"] < 0 {
		fail("batch_jobs_deduped_total negative")
	}
	if m.Counters["batch_scan_bytes_saved_total"] < 0 {
		fail("batch_scan_bytes_saved_total negative")
	}
	// Every shared scan has at least 2 consumers; the fan-in histogram's
	// observations must be consistent with that.
	if fanin.Count > 0 && fanin.Sum < 2*float64(fanin.Count) {
		fail("batch_shared_scan_fanin: sum %g < 2x count %d", fanin.Sum, fanin.Count)
	}
}

// checkPartition validates the partition-aware execution counter family.
// The engine records all four names unconditionally (zeros included) the
// moment any keyed job runs, so if one is present they all must be; and
// the family must balance: every keyed job either took the partition-
// preserving path or paid a shuffle, eliminated bytes cannot exceed the
// bytes that entered grouping, and a run with no partition hits cannot
// claim eliminated transfer.
func checkPartition(m obs.Snapshot) {
	keyed, keyedOK := m.Counters["mr_keyed_jobs_total"]
	local, localOK := m.Counters["mr_partition_local_jobs_total"]
	shuffled, shuffledOK := m.Counters["mr_partition_shuffle_jobs_total"]
	elim, elimOK := m.Counters["mr_shuffle_bytes_eliminated_total"]
	if !keyedOK && !localOK && !shuffledOK && !elimOK {
		return // a run with no keyed jobs records none of the family
	}
	if !keyedOK || !localOK || !shuffledOK || !elimOK {
		fail("partial partition counter family: keyed=%v local=%v shuffle=%v eliminated=%v",
			keyedOK, localOK, shuffledOK, elimOK)
	}
	if keyed < 0 || local < 0 || shuffled < 0 || elim < 0 {
		fail("negative partition counter (keyed=%d local=%d shuffle=%d eliminated=%d)",
			keyed, local, shuffled, elim)
	}
	if local+shuffled != keyed {
		fail("partition family does not balance: local %d + shuffle %d != keyed %d",
			local, shuffled, keyed)
	}
	if total := m.Counters["mr_shuffle_bytes_total"]; elim > total {
		fail("eliminated %d shuffle bytes exceeds the %d bytes that entered grouping", elim, total)
	}
	if local == 0 && elim > 0 {
		fail("%d bytes eliminated with zero partition-local jobs", elim)
	}
}

// fuseReasons is the fixed label set of mr_fused_fallback_total; the engine
// records every one (zeros included) whenever it records the family, so a
// missing label is a wiring bug, not an empty run.
var fuseReasons = []string{"disabled", "explode_udf", "unsupported_op", "schema_mismatch"}

// checkFused validates the fused map-pipeline counter family. The engine
// records all of it unconditionally (zeros included) for every job, so if
// one name is present they all must be; and the family must balance: every
// fusion-eligible job either compiled to a batch kernel or carries exactly
// one fallback reason, and a run with no fused jobs cannot claim fused
// batches, rows, or runtime bailouts.
func checkFused(m obs.Snapshot) {
	elig, eligOK := m.Counters["mr_fused_eligible_total"]
	jobs, jobsOK := m.Counters["mr_fused_jobs_total"]
	batches, batchesOK := m.Counters["mr_fused_batches_total"]
	rows, rowsOK := m.Counters["mr_fused_rows_total"]
	rtfb, rtfbOK := m.Counters["mr_fused_runtime_fallback_total"]
	if !eligOK && !jobsOK && !batchesOK && !rowsOK && !rtfbOK {
		// A run that executed no MR jobs records none of the family; but a
		// stray labeled fallback without the core names is a wiring bug.
		for k := range m.Counters {
			if strings.HasPrefix(k, "mr_fused_fallback_total{") {
				fail("fallback reasons recorded without the fused counter family")
			}
		}
		return
	}
	if !eligOK || !jobsOK || !batchesOK || !rowsOK || !rtfbOK {
		fail("partial fused counter family: eligible=%v jobs=%v batches=%v rows=%v runtime_fallback=%v",
			eligOK, jobsOK, batchesOK, rowsOK, rtfbOK)
	}
	if elig < 0 || jobs < 0 || batches < 0 || rows < 0 || rtfb < 0 {
		fail("negative fused counter (eligible=%d jobs=%d batches=%d rows=%d runtime_fallback=%d)",
			elig, jobs, batches, rows, rtfb)
	}
	var fallback int64
	for _, reason := range fuseReasons {
		v, ok := m.Counters["mr_fused_fallback_total{reason="+reason+"}"]
		if !ok {
			fail("fused fallback reason %q missing from the family", reason)
		}
		if v < 0 {
			fail("mr_fused_fallback_total{reason=%s} negative", reason)
		}
		fallback += v
	}
	if jobs+fallback != elig {
		fail("fused family does not balance: jobs %d + fallbacks %d != eligible %d",
			jobs, fallback, elig)
	}
	if jobs == 0 && (batches > 0 || rows > 0 || rtfb > 0) {
		fail("fused work recorded with zero fused jobs (batches=%d rows=%d runtime_fallback=%d)",
			batches, rows, rtfb)
	}
	if batches == 0 && rows > 0 {
		fail("%d fused rows recorded with zero fused batches", rows)
	}
}

// fuseReduceReasons is the fixed label set of mr_fused_reduce_fallback_total,
// recorded zeros-included whenever the family is, like the map-side set.
var fuseReduceReasons = []string{"disabled", "nondistributive_agg", "agg_udf", "unsupported_op", "schema_mismatch"}

// checkFusedReduce validates the reduce-side fusion counter family: all
// eight names present together or not at all, every eligible reduce job
// either compiled its kernels or carries exactly one fallback reason,
// cross-boundary jobs are a subset of fused jobs, and a run with no fused
// reduce jobs cannot claim kernel work. Groups can be zero with rows zero
// even when jobs ran (fault plans bypass the reduce kernel), but folded rows
// without finalized groups — or more groups than rows — is a wiring bug.
func checkFusedReduce(m obs.Snapshot) {
	names := []string{
		"mr_fused_reduce_eligible_total",
		"mr_fused_reduce_jobs_total",
		"mr_fused_reduce_crossboundary_jobs_total",
		"mr_fused_reduce_batches_total",
		"mr_fused_reduce_groups_total",
		"mr_fused_reduce_rows_total",
		"mr_fused_reduce_runtime_fallback_total",
	}
	present := 0
	for _, n := range names {
		if _, ok := m.Counters[n]; ok {
			present++
		}
	}
	if present == 0 {
		for k := range m.Counters {
			if strings.HasPrefix(k, "mr_fused_reduce_fallback_total{") {
				fail("reduce fallback reasons recorded without the fused reduce family")
			}
		}
		return
	}
	if present != len(names) {
		for _, n := range names {
			if _, ok := m.Counters[n]; !ok {
				fail("partial fused reduce counter family: %s missing", n)
			}
		}
	}
	for _, n := range names {
		if m.Counters[n] < 0 {
			fail("%s negative", n)
		}
	}
	var fallback int64
	for _, reason := range fuseReduceReasons {
		v, ok := m.Counters["mr_fused_reduce_fallback_total{reason="+reason+"}"]
		if !ok {
			fail("fused reduce fallback reason %q missing from the family", reason)
		}
		if v < 0 {
			fail("mr_fused_reduce_fallback_total{reason=%s} negative", reason)
		}
		fallback += v
	}
	for k := range m.Counters {
		if !strings.HasPrefix(k, "mr_fused_reduce_fallback_total{") {
			continue
		}
		known := false
		for _, reason := range fuseReduceReasons {
			if k == "mr_fused_reduce_fallback_total{reason="+reason+"}" {
				known = true
				break
			}
		}
		if !known {
			fail("stray fused reduce fallback label %s", k)
		}
	}
	elig := m.Counters["mr_fused_reduce_eligible_total"]
	jobs := m.Counters["mr_fused_reduce_jobs_total"]
	cross := m.Counters["mr_fused_reduce_crossboundary_jobs_total"]
	batches := m.Counters["mr_fused_reduce_batches_total"]
	groups := m.Counters["mr_fused_reduce_groups_total"]
	rows := m.Counters["mr_fused_reduce_rows_total"]
	rtfb := m.Counters["mr_fused_reduce_runtime_fallback_total"]
	if jobs+fallback != elig {
		fail("fused reduce family does not balance: jobs %d + fallbacks %d != eligible %d",
			jobs, fallback, elig)
	}
	if cross > jobs {
		fail("%d cross-boundary jobs exceed %d fused reduce jobs", cross, jobs)
	}
	if jobs == 0 && (batches > 0 || groups > 0 || rows > 0 || rtfb > 0) {
		fail("fused reduce work recorded with zero fused reduce jobs (batches=%d groups=%d rows=%d runtime_fallback=%d)",
			batches, groups, rows, rtfb)
	}
	if rows > 0 && groups == 0 {
		fail("%d records folded by reduce kernels that finalized zero groups", rows)
	}
	if groups > rows {
		fail("%d groups finalized from only %d folded records", groups, rows)
	}
}

func checkSpan(sp obs.SpanExport) {
	if sp.Phase == "" {
		fail("span with empty phase")
	}
	if sp.WallSeconds < 0 || sp.SimSeconds < 0 {
		fail("span %s: negative seconds", sp.Phase)
	}
	for _, c := range sp.Children {
		checkSpan(c)
	}
}

// hasPositive reports whether any counter named prefix (with or without
// labels) is positive.
func hasPositive(counters map[string]int64, prefix string) bool {
	for k, v := range counters {
		if (k == prefix || strings.HasPrefix(k, prefix+"{")) && v > 0 {
			return true
		}
	}
	return false
}

func sumByPrefix(fc map[string]float64, prefix string) float64 {
	var sum float64
	for k, v := range fc {
		if k == prefix || strings.HasPrefix(k, prefix+"{") {
			sum += v
		}
	}
	return sum
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "metricscheck: "+format+"\n", args...)
	os.Exit(1)
}
