// Command opportune runs HiveQL-dialect queries against the simulated
// analytics stack, with opportunistic-view rewriting.
//
// Usage:
//
//	# run the built-in workload's data + UDFs, then execute SQL
//	opportune -workload 'SELECT user_id, COUNT(*) AS n FROM twtr GROUP BY user_id HAVING n > 20'
//
//	# run one of the paper's 32 workload queries (with rewriting)
//	opportune -workload -query a1v2
//
//	# run an analyst's whole session (views accumulate across versions)
//	opportune -workload -analyst 5
//
//	# read a script from stdin
//	echo 'SELECT tile, COUNT(*) AS n FROM land APPLY UDF_GEO_TILE(lat, lon, 0.5) GROUP BY tile' | opportune -workload
//
// Flags select the rewrite mode (-mode bfr|off|dp|syntactic), the data
// scale (-tweets), and whether to list views afterwards (-views).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"opportune/internal/hiveql"
	"opportune/internal/session"
	"opportune/internal/workload"
)

func main() {
	useWorkload := flag.Bool("workload", false, "install the synthetic TWTR/4SQ/LAND logs and UDF library")
	tweets := flag.Int("tweets", 0, "tweet-log rows (default: workload default scale)")
	mode := flag.String("mode", "bfr", "rewrite mode: bfr, off, dp, syntactic")
	queryID := flag.String("query", "", "run a workload query by name, e.g. a1v2")
	analyst := flag.Int("analyst", 0, "run all four versions of one analyst's query (1-8)")
	showViews := flag.Bool("views", false, "list opportunistic views after execution")
	explain := flag.Bool("explain", false, "print the annotated job DAG instead of executing")
	maxRows := flag.Int("maxrows", 20, "result rows to print")
	flag.Parse()

	var m session.Mode
	switch *mode {
	case "bfr":
		m = session.ModeBFR
	case "off":
		m = session.ModeOriginal
	case "dp":
		m = session.ModeDP
	case "syntactic":
		m = session.ModeSyntactic
	default:
		fail("unknown mode %q", *mode)
	}

	if !*useWorkload {
		fail("this CLI operates on the built-in workload; pass -workload (see -h)")
	}
	sc := workload.DefaultScale()
	if *tweets > 0 {
		ratio := float64(*tweets) / float64(sc.Tweets)
		sc.Tweets = *tweets
		sc.Checkins = int(float64(sc.Checkins)*ratio) + 1
		sc.Landmarks = int(float64(sc.Landmarks)*ratio) + 1
		sc.Users = int(float64(sc.Users)*ratio) + 1
	}
	fmt.Fprintf(os.Stderr, "installing workload: %d tweets, %d check-ins, %d landmarks (calibrating %d UDFs)...\n",
		sc.Tweets, sc.Checkins, sc.Landmarks, 11)
	s, err := workload.NewSession(sc)
	if err != nil {
		fail("install: %v", err)
	}

	switch {
	case *analyst >= 1 && *analyst <= 8:
		for v := 1; v <= 4; v++ {
			q := workload.QueryFor(*analyst, v)
			mt, err := workload.Exec(s, q, m)
			if err != nil {
				fail("%s: %v", q.Name, err)
			}
			report(s, q.Name, mt, *maxRows)
		}
	case *queryID != "":
		var a, v int
		if _, err := fmt.Sscanf(*queryID, "a%dv%d", &a, &v); err != nil {
			fail("bad -query %q (want e.g. a1v2)", *queryID)
		}
		q := workload.QueryFor(a, v)
		fmt.Printf("-- %s\n%s\n\n", q.Name, q.SQL)
		if *explain {
			st, err := hiveql.ParseOne(q.SQL)
			if err != nil {
				fail("%v", err)
			}
			w, err := s.Opt.Compile(st.Plan)
			if err != nil {
				fail("%v", err)
			}
			fmt.Println(w.Explain())
			return
		}
		mt, err := workload.Exec(s, q, m)
		if err != nil {
			fail("%s: %v", q.Name, err)
		}
		report(s, q.Name, mt, *maxRows)
	default:
		script := strings.Join(flag.Args(), " ")
		if strings.TrimSpace(script) == "" {
			b, err := io.ReadAll(os.Stdin)
			if err != nil {
				fail("stdin: %v", err)
			}
			script = string(b)
		}
		if strings.TrimSpace(script) == "" {
			fail("no SQL given (positional args or stdin)")
		}
		stmts, err := hiveql.Parse(script)
		if err != nil {
			fail("%v", err)
		}
		for i, st := range stmts {
			name := st.Table
			if name == "" {
				name = fmt.Sprintf("result_%d", i+1)
			}
			if *explain {
				w, err := s.Opt.Compile(st.Plan)
				if err != nil {
					fail("statement %d: %v", i+1, err)
				}
				fmt.Println(w.Explain())
				continue
			}
			mt, err := s.Run(st.Plan, name, m)
			if err != nil {
				fail("statement %d: %v", i+1, err)
			}
			report(s, name, mt, *maxRows)
		}
	}

	if *showViews {
		fmt.Println("\nopportunistic views:")
		for _, v := range s.Cat.Views() {
			fmt.Printf("  %-22s %8d rows %10d bytes  %v\n", v.Name, v.Stats.Rows, v.Stats.Bytes, v.Cols)
		}
	}
}

func report(s *session.Session, name string, m *session.Metrics, maxRows int) {
	rel, err := s.Store.Read(m.ResultName)
	if err != nil {
		fail("read result: %v", err)
	}
	status := "original plan"
	if m.Rewrite != nil && m.Rewrite.Improved {
		status = "rewritten from views"
	}
	fmt.Printf("== %s: %d rows | %s | %d jobs | %.3f simulated s (+%.3fs stats) | rewrite search %.3fs | %.2f MB moved\n",
		name, rel.Len(), status, m.Jobs, m.ExecSeconds, m.StatsSeconds, m.RewriteSeconds,
		float64(m.DataMovedBytes)/1e6)
	cols := rel.Schema().Cols()
	fmt.Println(strings.Join(cols, "\t"))
	for i := 0; i < rel.Len() && i < maxRows; i++ {
		parts := make([]string, len(cols))
		for j := range cols {
			parts[j] = rel.Row(i)[j].String()
		}
		fmt.Println(strings.Join(parts, "\t"))
	}
	if rel.Len() > maxRows {
		fmt.Printf("... (%d more rows)\n", rel.Len()-maxRows)
	}
	fmt.Println()
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "opportune: "+format+"\n", args...)
	os.Exit(1)
}
