// Command opportuned runs the opportune session as an always-on
// multi-tenant query service: concurrent tenants submit HiveQL-style
// queries, an admission stage cuts them into micro-batches (size or
// latency triggered, weighted-fair across tenants), and the shared-scan
// batch executor keeps every job output as an opportunistic view shared
// by all tenants.
//
// Two modes:
//
//	opportuned -load          # closed-loop Zipfian tenant simulation
//	opportuned                # read "tenant<TAB>SQL" (or bare SQL) lines
//	                          # from stdin, one response line per query
//
// Usage:
//
//	opportuned [-load] [-tenants N] [-queries N] [-batch N] [-maxwait D]
//	           [-quick] [-tweets N] [-workers N] [-viewcap BYTES]
//	           [-metrics out.json]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"opportune/internal/obs"
	"opportune/internal/service"
	"opportune/internal/session"
	"opportune/internal/workload"
)

func main() {
	load := flag.Bool("load", false, "drive a closed-loop Zipfian tenant simulation instead of reading stdin")
	tenants := flag.Int("tenants", 8, "simulated tenant population (-load mode)")
	queries := flag.Int("queries", 200, "total queries the simulation submits (-load mode)")
	batch := flag.Int("batch", 8, "micro-batch size trigger")
	maxwait := flag.Duration("maxwait", 25*time.Millisecond, "micro-batch latency trigger")
	quick := flag.Bool("quick", false, "install the small-scale datasets")
	tweets := flag.Int("tweets", 0, "override tweet-log size (0 = scale default)")
	workers := flag.Int("workers", 0, "MR engine worker-pool size (0 = GOMAXPROCS)")
	viewcap := flag.Int64("viewcap", 0, "view storage budget in bytes (0 = unlimited); enables contention-aware hot pinning")
	metrics := flag.String("metrics", "", "write an observability export (JSON) to this file on exit")
	flag.Parse()

	sc := workload.DefaultScale()
	if *quick {
		sc = workload.SmallScale()
	}
	if *tweets > 0 {
		ratio := float64(*tweets) / float64(sc.Tweets)
		sc.Tweets = *tweets
		sc.Checkins = int(float64(sc.Checkins) * ratio)
		sc.Landmarks = int(float64(sc.Landmarks) * ratio)
		sc.Users = int(float64(sc.Users) * ratio)
	}
	sess, err := workload.NewSession(sc)
	if err != nil {
		fail(err)
	}
	sess.Eng.Workers = *workers
	reg := obs.NewRegistry()
	sess.Instrument(reg)
	if *viewcap > 0 {
		sess.Store.ViewCapacityBytes = *viewcap
	}
	svcCfg := service.Config{
		BatchSize: *batch,
		MaxWait:   *maxwait,
		Mode:      session.ModeOriginal,
		Obs:       reg,
	}
	if *viewcap > 0 {
		svcCfg.HotPinFraction = 0.5
	}
	svc := service.New(sess, svcCfg)
	fmt.Printf("# opportuned — %d tweets, batch=%d, maxwait=%v\n", sc.Tweets, *batch, *maxwait)

	if *load {
		runLoad(svc, *tenants, *queries, *batch)
	} else {
		runStdin(svc)
	}
	svc.Close()
	st := svc.Stats()
	fmt.Printf("# served %d queries (%d batches, %d parse errors)\n",
		st.Completed, st.Batches, st.ParseErrors)
	if *metrics != "" {
		f, err := os.Create(*metrics)
		if err != nil {
			fail(err)
		}
		if err := reg.WriteJSON(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("# metrics written to %s\n", *metrics)
	}
}

// runLoad is the closed-loop simulation: 2×batch workers, each drawing a
// tenant from a Zipfian popularity curve and a query from the skewed
// workload mix, submitting, and waiting before the next draw.
func runLoad(svc *service.Service, tenants, total, batch int) {
	qs := workload.AllQueries()
	loaders := 2 * batch
	if loaders > total {
		loaders = total
	}
	perWorker := total / loaders

	var mu sync.Mutex
	latencies := make([]float64, 0, loaders*perWorker)
	perTenant := make(map[string]int64)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < loaders; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000*w) + 7))
			ztenant := rand.NewZipf(rng, 1.4, 1, uint64(tenants-1))
			zquery := rand.NewZipf(rng, 1.3, 1, uint64(len(qs)-1))
			for i := 0; i < perWorker; i++ {
				tenant := fmt.Sprintf("tenant%d", ztenant.Uint64())
				tk, err := svc.Submit(tenant, qs[zquery.Uint64()].SQL)
				if err != nil {
					return // closed
				}
				resp := tk.Wait()
				mu.Lock()
				latencies = append(latencies, resp.Wall.Seconds())
				perTenant[tenant]++
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()

	sort.Float64s(latencies)
	n := len(latencies)
	if n == 0 || wall <= 0 {
		return
	}
	totals := svc.BatchTotals()
	fmt.Printf("sustained %.1f qps over %d queries (%.1fs wall)\n", float64(n)/wall, n, wall)
	fmt.Printf("latency p50 %.3fs  p99 %.3fs\n", latencies[n/2], latencies[(n*99)/100])
	fmt.Printf("sharing: %d jobs deduped, %d shared scans, %.3f sim-seconds saved\n",
		totals.JobsDeduped, totals.SharedScans, totals.SavedSimSeconds)
	names := make([]string, 0, len(perTenant))
	for t := range perTenant {
		names = append(names, t)
	}
	sort.Strings(names)
	fmt.Print("tenant mix:")
	for _, t := range names {
		fmt.Printf(" %s:%d", t, perTenant[t])
	}
	fmt.Println()
}

// runStdin serves queries from stdin: "tenant<TAB>SQL" per line, or bare
// SQL attributed to tenant "console". Responses print in completion
// order; submission does not block on execution, so consecutive lines
// land in the same micro-batch and share work.
func runStdin(svc *service.Service) {
	var wg sync.WaitGroup
	scan := bufio.NewScanner(os.Stdin)
	scan.Buffer(make([]byte, 1<<20), 1<<20)
	for scan.Scan() {
		line := strings.TrimSpace(scan.Text())
		if line == "" || strings.HasPrefix(line, "--") {
			continue
		}
		tenant, sql := "console", line
		if i := strings.IndexByte(line, '\t'); i > 0 {
			tenant, sql = line[:i], strings.TrimSpace(line[i+1:])
		}
		tk, err := svc.Submit(tenant, sql)
		if err != nil {
			fmt.Printf("%s: ERROR %v\n", tenant, err)
			continue
		}
		wg.Add(1)
		go func(tenant string) {
			defer wg.Done()
			resp := tk.Wait()
			if resp.Err != nil {
				fmt.Printf("%s: ERROR %v\n", tenant, resp.Err)
				return
			}
			fmt.Printf("%s: %s ok in %.3fs (admitted after %.3fs, %d jobs, %.3f sim-s)\n",
				tenant, resp.ResultName, resp.Wall.Seconds(), resp.AdmitWait.Seconds(),
				resp.Metrics.Jobs, resp.Metrics.TotalSeconds())
		}(tenant)
	}
	wg.Wait()
	if err := scan.Err(); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "opportuned: %v\n", err)
	os.Exit(1)
}
