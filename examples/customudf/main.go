// Custom UDF: define your own MR UDFs — a filtering geo extractor, a
// tiling function with a parameter, and a grouping aggregate — annotated
// with the gray-box model, and watch the rewriter reuse and re-purpose
// their outputs across parameterized queries.
package main

import (
	"fmt"
	"log"
	"math"

	"opportune"
)

func main() {
	sys := opportune.New()

	// Check-ins with dirty coordinates (nil = missing, some out of range).
	var rows [][]any
	for i := 0; i < 4000; i++ {
		var lat, lon any
		switch i % 5 {
		case 0, 1, 2:
			lat, lon = 37.0+float64(i%100)/50, -122.0+float64(i%90)/45
		case 3:
			lat, lon = nil, nil
		case 4:
			lat, lon = 999.0, 999.0 // corrupted record
		}
		rows = append(rows, []any{i, i % 60, lat, lon})
	}
	if err := sys.CreateTable("checkins", "cid", []string{"cid", "user", "lat", "lon"}, rows); err != nil {
		log.Fatal(err)
	}

	// Operation types 1+2: add validated coordinates, drop dirty rows.
	err := sys.RegisterMapUDF(opportune.MapUDF{
		Name: "CLEAN_GEO", Args: 2, Outputs: []string{"glat", "glon"},
		Filters: true, Weight: 3,
		Fn: func(args, _ []any) [][]any {
			la, ok1 := args[0].(float64)
			lo, ok2 := args[1].(float64)
			if !ok1 || !ok2 || la < -90 || la > 90 || lo < -180 || lo > 180 {
				return nil
			}
			return [][]any{{la, lo}}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	// Operation type 1 with a parameter: grid tiling. The parameter is part
	// of the output's semantic identity, so different tile sizes never get
	// confused by the rewriter.
	err = sys.RegisterMapUDF(opportune.MapUDF{
		Name: "TILE", Args: 2, Params: 1, Outputs: []string{"tile"}, Weight: 5,
		Fn: func(args, params []any) [][]any {
			size := params[0].(float64)
			la, ok1 := args[0].(float64)
			lo, ok2 := args[1].(float64)
			if !ok1 || !ok2 {
				return [][]any{{"?:?"}} // tolerate dirty rows (calibration samples raw data)
			}
			tx := int64(math.Floor(la / size))
			ty := int64(math.Floor(lo / size))
			return [][]any{{fmt.Sprintf("%d:%d", tx, ty)}}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, u := range []string{"CLEAN_GEO", "TILE"} {
		args := []string{"lat", "lon"}
		params := []any{}
		if u == "TILE" {
			params = []any{0.5}
		}
		if _, err := sys.CalibrateUDF(u, "checkins", args, params...); err != nil {
			log.Fatal(err)
		}
	}

	runQ := func(label, sql string) *opportune.Result {
		r, err := sys.ExecOne(sql)
		if err != nil {
			log.Fatal(label, ": ", err)
		}
		fmt.Printf("%-34s %4d rows  %.4f sim-s  rewritten=%v\n", label, len(r.Rows), r.ExecSeconds, r.Rewritten)
		return r
	}

	// Hot tiles at a 0.5° grid.
	runQ("hot tiles (0.5 deg)", `
	  SELECT tile, COUNT(*) AS n FROM checkins
	  APPLY CLEAN_GEO(lat, lon) APPLY TILE(glat, glon, 0.5)
	  GROUP BY tile HAVING n > 50`)

	// Same tile size, different threshold: rewritten from the first run.
	runQ("hot tiles, tighter threshold", `
	  SELECT tile, COUNT(*) AS n FROM checkins
	  APPLY CLEAN_GEO(lat, lon) APPLY TILE(glat, glon, 0.5)
	  GROUP BY tile HAVING n > 150`)

	// Different tile size: the parameter changes the derived attribute's
	// signature, so the 0.5° view must NOT be reused for tiling — but the
	// cleaned-coordinate computation is shared structure the optimizer
	// pipelines; this runs from the raw log again.
	runQ("hot tiles (0.1 deg grid)", `
	  SELECT tile, COUNT(*) AS n FROM checkins
	  APPLY CLEAN_GEO(lat, lon) APPLY TILE(glat, glon, 0.1)
	  GROUP BY tile HAVING n > 10`)

	// Per-user mobility via a custom aggregate over the same cleaned data.
	err = sys.RegisterAggUDF(opportune.AggUDF{
		Name: "SPREAD", Args: 3, Keys: []string{"user"}, KeyArgs: []int{0},
		Outputs: []string{"lat_spread"}, Weight: 4,
		Reduce: func(_ []any, group [][]any, _ []any) []any {
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, g := range group {
				la := g[0].(float64)
				lo, hi = math.Min(lo, la), math.Max(hi, la)
			}
			return []any{hi - lo}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	runQ("per-user latitude spread", `
	  SELECT user, lat_spread FROM checkins
	  APPLY CLEAN_GEO(lat, lon) APPLY SPREAD(user, glat, glon)
	  WHERE lat_spread > 1.0`)

	fmt.Printf("\nopportunistic views now in the system: %d\n", len(sys.Views()))
}
