// Persistence: the opportunistic physical design survives restarts, and
// appending new log records maintains the views that can absorb a delta
// incrementally while invalidating exactly the rest (provenance comes
// from the attribute signatures).
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"opportune"
)

func udfLibrary(sys *opportune.System) error {
	return sys.RegisterMapUDF(opportune.MapUDF{
		Name: "WINE", Args: 1, Outputs: []string{"score"}, Weight: 20,
		Fn: func(args, _ []any) [][]any {
			return [][]any{{float64(strings.Count(args[0].(string), "wine"))}}
		},
	})
}

func main() {
	dir, err := os.MkdirTemp("", "opportune-demo-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// --- Day 1: explore, then shut down. ---
	sys := opportune.New()
	var rows [][]any
	texts := []string{"wine is great", "bad day", "wine wine wine", "coffee"}
	for i := 0; i < 3000; i++ {
		rows = append(rows, []any{i, i % 30, texts[i%len(texts)]})
	}
	if err := sys.CreateTable("tweets", "id", []string{"id", "user", "text"}, rows); err != nil {
		log.Fatal(err)
	}
	if err := udfLibrary(sys); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.CalibrateUDF("WINE", "tweets", []string{"text"}); err != nil {
		log.Fatal(err)
	}
	r, err := sys.ExecOne(`SELECT user, SUM(score) AS s FROM tweets APPLY WINE(text) GROUP BY user HAVING s > 50`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("day 1: %d wine lovers in %.4f sim-s; %d views retained\n",
		len(r.Rows), r.ExecSeconds, len(sys.Views()))
	if err := sys.Save(dir); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved physical design to %s\n\n", dir)

	// --- Day 2: restart, restore, revise the query. ---
	sys2, err := opportune.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	if err := udfLibrary(sys2); err != nil { // code is not persisted
		log.Fatal(err)
	}
	fmt.Printf("restored: %d views; calibrations re-applied to %v\n",
		len(sys2.Views()), sys2.ApplySavedCalibrations())
	r2, err := sys2.ExecOne(`SELECT user, SUM(score) AS s FROM tweets APPLY WINE(text) GROUP BY user HAVING s > 100`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("day 2 revision: %d rows in %.4f sim-s (rewritten=%v, from yesterday's views)\n\n",
		len(r2.Rows), r2.ExecSeconds, r2.Rewritten)

	// --- New data arrives: views are maintained or invalidated, exactly. ---
	rep, err := sys2.AppendRows("tweets", [][]any{
		{9001, 3, "wine wine wine wine"},
		{9002, 4, "coffee"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("appended 2 tweets: %d views maintained incrementally, %d invalidated\n",
		len(rep.Maintained), len(rep.Invalidated))
	r3, err := sys2.ExecOne(`SELECT user, SUM(score) AS s FROM tweets APPLY WINE(text) GROUP BY user HAVING s > 100`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-run sees fresh data: %d rows in %.4f sim-s (rewritten=%v — must recompute)\n",
		len(r3.Rows), r3.ExecSeconds, r3.Rewritten)
}
