// Query evolution (§8.3.1): one analyst iteratively refines a marketing
// query over three logs — each version is rewritten against the
// opportunistic views of the previous versions.
package main

import (
	"fmt"
	"log"

	"opportune/internal/session"
	"opportune/internal/workload"
)

func main() {
	// The workload package installs the paper's three synthetic logs
	// (TWTR / 4SQ / LAND) and its calibrated 10-UDF library.
	s, err := workload.NewSession(workload.SmallScale())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Analyst 1: targeting wine lovers (the paper's running example).")
	fmt.Println("Each version revises thresholds and adds data sources.")
	fmt.Println()

	var v1Sec float64
	for v := 1; v <= 4; v++ {
		q := workload.QueryFor(1, v)
		m, err := workload.Exec(s, q, session.ModeBFR)
		if err != nil {
			log.Fatal(err)
		}
		sec := m.ExecSeconds + m.StatsSeconds
		if v == 1 {
			v1Sec = sec
		}
		rewr := "computed from raw logs"
		if m.Rewrite != nil && m.Rewrite.Improved {
			rewr = "REWRITTEN from opportunistic views"
		}
		rel, err := s.Store.Read(m.ResultName)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("A1v%d: %-34s %3d rows  %7.3f sim-s  (%4.1f%% of v1)\n",
			v, rewr, rel.Len(), sec, 100*sec/v1Sec)
		fmt.Printf("      views in system: %d, rewrite search: %.3fs wall\n",
			len(s.Cat.Views()), m.RewriteSeconds)
	}
	fmt.Println()
	fmt.Println("The SQL of the final version:")
	fmt.Println(workload.QueryFor(1, 4).SQL)
}
