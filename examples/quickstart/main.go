// Quickstart: load a log, register a UDF, run a query, revise it, and watch
// the revision get answered from the opportunistic views of the first run.
package main

import (
	"fmt"
	"log"
	"strings"

	"opportune"
)

func main() {
	sys := opportune.New()

	// A small tweet log. The record key (id) lets the rewriter reason
	// about grouping refinement.
	texts := []string{
		"wine is great. love this vineyard",
		"bad day. terrible coffee",
		"good wine good life",
		"coffee time",
		"wine wine wine amazing",
	}
	var rows [][]any
	for i := 0; i < 2000; i++ {
		rows = append(rows, []any{i, i % 25, texts[i%len(texts)]})
	}
	if err := sys.CreateTable("tweets", "id", []string{"id", "user", "text"}, rows); err != nil {
		log.Fatal(err)
	}

	// A per-tuple classifier UDF: arbitrary user code, but annotated with
	// the gray-box model (adds one attribute derived from `text`).
	err := sys.RegisterMapUDF(opportune.MapUDF{
		Name: "WINE_SCORE", Args: 1, Outputs: []string{"score"}, Weight: 20,
		Fn: func(args, _ []any) [][]any {
			return [][]any{{float64(strings.Count(args[0].(string), "wine"))}}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	// One-time empirical calibration of the UDF's cost scalar (§4.2).
	scalar, err := sys.CalibrateUDF("WINE_SCORE", "tweets", []string{"text"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated WINE_SCORE cost scalar: %.1fx relational baseline\n\n", scalar)

	// First exploratory query: per-user wine sentiment above a threshold.
	q1 := `SELECT user, SUM(score) AS wine_sum FROM tweets
	       APPLY WINE_SCORE(text) GROUP BY user HAVING wine_sum > 50`
	r1, err := sys.ExecOne(q1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("v1: %d wine lovers, %d MR jobs, %.3f simulated s (rewritten=%v)\n",
		len(r1.Rows), r1.Jobs, r1.ExecSeconds, r1.Rewritten)
	fmt.Printf("opportunistic views retained: %d\n\n", len(sys.Views()))

	// The analyst revises the threshold — the defining pattern of
	// exploratory analysis. BFREWRITE answers it from the views.
	q2 := strings.Replace(q1, "> 50", "> 150", 1)
	r2, err := sys.ExecOne(q2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("v2: %d wine lovers, %d MR jobs, %.3f simulated s (rewritten=%v)\n",
		len(r2.Rows), r2.Jobs, r2.ExecSeconds, r2.Rewritten)
	fmt.Printf("speedup: %.0fx (%.4fs -> %.4fs); rewrite search took %.4fs wall\n",
		r1.ExecSeconds/r2.ExecSeconds, r1.ExecSeconds, r2.ExecSeconds, r2.RewriteSeconds)
}
