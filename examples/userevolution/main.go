// User evolution (§8.3.2): several analysts explore the same logs; a new
// analyst's first query is answered from views other analysts' queries left
// behind — including by MERGING multiple views.
package main

import (
	"fmt"
	"log"
	"strings"

	"opportune"
)

func loadLogs(sys *opportune.System) error {
	texts := []string{
		"wine is great", "bad day food", "good wine good pasta",
		"coffee time", "wine wine wine", "sushi dinner amazing", "pasta and wine",
	}
	var rows [][]any
	for i := 0; i < 3000; i++ {
		rows = append(rows, []any{i, i % 40, texts[i%len(texts)]})
	}
	return sys.CreateTable("tweets", "id", []string{"id", "user", "text"}, rows)
}

func registerUDFs(sys *opportune.System) error {
	score := func(topic string) func(args, _ []any) [][]any {
		return func(args, _ []any) [][]any {
			return [][]any{{float64(strings.Count(args[0].(string), topic))}}
		}
	}
	if err := sys.RegisterMapUDF(opportune.MapUDF{
		Name: "WINE", Args: 1, Outputs: []string{"wine_score"}, Weight: 20, Fn: score("wine"),
	}); err != nil {
		return err
	}
	if err := sys.RegisterMapUDF(opportune.MapUDF{
		Name: "FOOD", Args: 1, Outputs: []string{"food_score"}, Weight: 20, Fn: score("pasta"),
	}); err != nil {
		return err
	}
	if _, err := sys.CalibrateUDF("WINE", "tweets", []string{"text"}); err != nil {
		return err
	}
	_, err := sys.CalibrateUDF("FOOD", "tweets", []string{"text"})
	return err
}

func main() {
	sys := opportune.New()
	if err := loadLogs(sys); err != nil {
		log.Fatal(err)
	}
	if err := registerUDFs(sys); err != nil {
		log.Fatal(err)
	}

	// Analyst 1 studies wine sentiment; Analyst 2 studies food sentiment.
	queries := []struct{ who, sql string }{
		{"analyst-1 (wine)", `CREATE TABLE wine_fans AS
		   SELECT user, SUM(wine_score) AS wine_sum FROM tweets
		   APPLY WINE(text) GROUP BY user HAVING wine_sum > 40`},
		{"analyst-2 (food)", `CREATE TABLE food_fans AS
		   SELECT user, SUM(food_score) AS food_sum FROM tweets
		   APPLY FOOD(text) GROUP BY user HAVING food_sum > 15`},
	}
	for _, q := range queries {
		r, err := sys.ExecOne(q.sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %3d rows  %.3f sim-s  rewritten=%v\n", q.who, len(r.Rows), r.ExecSeconds, r.Rewritten)
	}
	fmt.Printf("\nopportunistic views in the system: %d\n", len(sys.Views()))
	for _, v := range sys.Views() {
		fmt.Printf("  %-22s %4d rows %6d bytes %v\n", v.Name, v.Rows, v.SizeBytes, v.Columns)
	}

	// A third analyst arrives and asks for users who are BOTH: the rewriter
	// merges analyst 1's and analyst 2's per-user aggregates instead of
	// re-reading the raw log and re-running both classifiers.
	r, err := sys.ExecOne(`
	   SELECT user, wine_sum, food_sum FROM
	     (SELECT user, SUM(wine_score) AS wine_sum FROM tweets APPLY WINE(text) GROUP BY user HAVING wine_sum > 40)
	   JOIN
	     (SELECT user AS fuser, SUM(food_score) AS food_sum FROM tweets APPLY FOOD(text) GROUP BY user HAVING food_sum > 15)
	   ON user = fuser`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nanalyst-3 (both):  %3d rows  %.4f sim-s  rewritten=%v (merged two analysts' views)\n",
		len(r.Rows), r.ExecSeconds, r.Rewritten)
	if !r.Rewritten {
		log.Fatal("expected the third analyst's query to be rewritten")
	}
}
