module opportune

go 1.22
