package afk

import (
	"testing"
	"testing/quick"

	"opportune/internal/expr"
	"opportune/internal/value"
)

// Algebraic laws of the annotation model. These are what make the
// rewriter's equivalence reasoning sound: semantically interchangeable
// plan shapes must produce Equal annotations.

func algebraBase() Annotation {
	return NewBase("t", []string{"id", "a", "b", "c"}, "id")
}

func TestLawFilterCommutes(t *testing.T) {
	f := func(x, y int8) bool {
		p1 := expr.NewCmp("a", expr.Gt, value.NewFloat(float64(x)))
		p2 := expr.NewCmp("b", expr.Lt, value.NewFloat(float64(y)))
		base := algebraBase()
		ab := base.WithFilter(p1).WithFilter(p2)
		ba := base.WithFilter(p2).WithFilter(p1)
		return ab.Equal(ba) && ab.Canon() == ba.Canon()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLawFilterIdempotent(t *testing.T) {
	p := expr.NewCmp("a", expr.Gt, value.NewFloat(3))
	once := algebraBase().WithFilter(p)
	twice := once.WithFilter(p)
	if !once.Equal(twice) || once.Canon() != twice.Canon() {
		t.Error("re-applying a filter changed the annotation")
	}
}

func TestLawRedundantFilterAbsorbed(t *testing.T) {
	// {a>5} ∧ {a>3} ≡ {a>5}: both Equal and canonical fingerprint agree.
	tight := algebraBase().WithFilter(expr.NewCmp("a", expr.Gt, value.NewFloat(5)))
	both := tight.WithFilter(expr.NewCmp("a", expr.Gt, value.NewFloat(3)))
	if !tight.Equal(both) {
		t.Error("redundant weaker filter broke equivalence")
	}
	if tight.Canon() != both.Canon() {
		t.Error("redundant weaker filter changed the fingerprint")
	}
}

func TestLawProjectIdempotent(t *testing.T) {
	once := algebraBase().Project("a", "b")
	twice := once.Project("a", "b")
	if !once.Equal(twice) {
		t.Error("projection not idempotent")
	}
}

func TestLawProjectFilterCommute(t *testing.T) {
	// When the filter column survives the projection, order is irrelevant.
	p := expr.NewCmp("a", expr.Gt, value.NewFloat(1))
	base := algebraBase()
	fp := base.WithFilter(p).Project("a", "b")
	pf := base.Project("a", "b").WithFilter(p)
	if !fp.Equal(pf) || fp.Canon() != pf.Canon() {
		t.Error("project/filter order changed the annotation")
	}
}

func TestLawRenameRoundTrip(t *testing.T) {
	base := algebraBase()
	rt := base.Rename("a", "x").Rename("x", "a")
	if !base.Equal(rt) || base.Canon() != rt.Canon() {
		t.Error("rename round trip changed the annotation")
	}
	// Renaming never changes semantic identity at all.
	if !base.Equal(base.Rename("a", "x")) {
		t.Error("rename changed semantic identity (names must not matter)")
	}
}

func TestLawGroupByContextSensitivity(t *testing.T) {
	// Aggregating before vs after a filter must NOT be equal: the groups
	// differ. This is the context sensitivity that prevents unsound reuse.
	p := expr.NewCmp("a", expr.Gt, value.NewFloat(1))
	base := algebraBase()
	mkAgg := func(in Annotation) Annotation {
		sig := AggSig("agg_sum", "", []*Sig{in.MustSig("b")}, in.F.Canon(), []*Sig{in.MustSig("c")})
		return in.GroupBy([]string{"c"}, []Attr{{Name: "s", Sig: sig}})
	}
	plain := mkAgg(base)
	filterThenAgg := mkAgg(base.WithFilter(p))
	if plain.Equal(filterThenAgg) {
		t.Error("pre-aggregation filter ignored by aggregate identity")
	}
	// A post-aggregation filter on the aggregate output is a *different*
	// thing again: neither of the above.
	aggThenFilter := plain.WithFilter(expr.NewCmp("s", expr.Gt, value.NewFloat(0)))
	if aggThenFilter.Equal(filterThenAgg) || aggThenFilter.Equal(plain) {
		t.Error("post-aggregation filter conflated with pre-aggregation")
	}
}

func TestLawJoinSymmetricAnnotation(t *testing.T) {
	// Joining l⋈r and r⋈l on the same shared-signature key yields Equal
	// annotations (names may bind differently; identity must not).
	l := algebraBase().GroupBy([]string{"a"}, []Attr{{
		Name: "n", Sig: AggSig("agg_count", "", []*Sig{BaseSig("t", "a")}, "{}", []*Sig{BaseSig("t", "a")}),
	}})
	r := algebraBase().GroupBy([]string{"a"}, []Attr{{
		Name: "m", Sig: AggSig("agg_sum", "", []*Sig{BaseSig("t", "b")}, "{}", []*Sig{BaseSig("t", "a")}),
	}})
	lr := Join(l, r, "a", "a")
	rl := Join(r, l, "a", "a")
	if !lr.Equal(rl) {
		t.Errorf("join not symmetric:\n  %s\n  %s", lr.Canon(), rl.Canon())
	}
}
