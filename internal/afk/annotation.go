package afk

import (
	"fmt"
	"sort"
	"strings"

	"opportune/internal/expr"
)

// Attr is an attribute as it appears in a relation: a presentation name
// (the column name) bound to a signature (the semantic identity). Plans may
// rename columns freely; identity follows the signature.
type Attr struct {
	Name string
	Sig  *Sig
}

// Annotation is the (A, F, K) model of a relation (paper §3.1):
//
//	A — the attribute set (name → signature),
//	F — the conjunction of filters applied so far, expressed over
//	    signature IDs so the same logical filter matches across plans,
//	K — the current grouping of the data ("the keys of the data"): the
//	    record key for raw logs (e.g. tweet_id), the group-by keys after
//	    an aggregation, empty after a global aggregate.
//
// Annotations are value-like: every operation returns a new Annotation.
//
// Grouped disambiguates an empty K: raw, never-grouped data is record-level
// (the finest partition) even when no record-key column is declared, while
// a global aggregate (GroupBy with no keys) is the coarsest. Grouped is set
// once any grouping local function has been applied.
type Annotation struct {
	byName  map[string]*Attr
	A       SigSet
	F       expr.Set
	K       SigSet
	Grouped bool

	// Limited taints data that passed through a LIMIT: which rows survive
	// depends on physical execution order, which the model cannot express.
	// Limited views are excluded from semantic reuse and limited targets
	// are not semantically rewritable (syntactic plan-identity reuse still
	// applies). Ordering alone does NOT taint — under set semantics a
	// sorted relation equals its input.
	Limited bool
}

// New builds an annotation from attributes, filters, and keys. Grouped is
// inferred as "has keys" — correct for grouped data and for base scans
// keyed by a record key (where the FDs make the distinction irrelevant);
// use NewBase for raw scans and GroupBy for explicit grouping.
func New(attrs []Attr, f expr.Set, k SigSet) Annotation {
	return mk(attrs, f, k, len(k) > 0)
}

func mk(attrs []Attr, f expr.Set, k SigSet, grouped bool) Annotation {
	a := Annotation{
		byName:  make(map[string]*Attr, len(attrs)),
		A:       make(SigSet, len(attrs)),
		F:       f.Clone(),
		K:       k.Clone(),
		Grouped: grouped,
	}
	for i := range attrs {
		at := attrs[i]
		if _, dup := a.byName[at.Name]; dup {
			panic(fmt.Sprintf("afk: duplicate attribute name %q", at.Name))
		}
		a.byName[at.Name] = &at
		a.A.Add(at.Sig)
	}
	return a
}

// NewBase builds the annotation of a raw log scan: base signatures for each
// column, no filters, keyed by the record-key column.
func NewBase(dataset string, columns []string, keyColumn string) Annotation {
	attrs := make([]Attr, len(columns))
	var key *Sig
	for i, c := range columns {
		s := BaseSig(dataset, c)
		attrs[i] = Attr{Name: c, Sig: s}
		if c == keyColumn {
			key = s
		}
	}
	k := NewSigSet()
	if key != nil {
		k.Add(key)
	}
	return mk(attrs, expr.NewSet(), k, false)
}

// Clone deep-copies the annotation.
func (a Annotation) Clone() Annotation {
	return a.derive(a.Attrs(), a.F, a.K, a.Grouped)
}

// derive builds a new annotation preserving the Limited taint.
func (a Annotation) derive(attrs []Attr, f expr.Set, k SigSet, grouped bool) Annotation {
	out := mk(attrs, f, k, grouped)
	out.Limited = a.Limited
	return out
}

// WithLimited returns the annotation with the LIMIT taint set.
func (a Annotation) WithLimited() Annotation {
	out := a.Clone()
	out.Limited = true
	return out
}

// Attrs returns the attributes sorted by name.
func (a Annotation) Attrs() []Attr {
	names := make([]string, 0, len(a.byName))
	for n := range a.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Attr, len(names))
	for i, n := range names {
		out[i] = *a.byName[n]
	}
	return out
}

// Names returns the attribute names sorted.
func (a Annotation) Names() []string {
	names := make([]string, 0, len(a.byName))
	for n := range a.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Attr looks up an attribute by presentation name.
func (a Annotation) Attr(name string) (Attr, bool) {
	at, ok := a.byName[name]
	if !ok {
		return Attr{}, false
	}
	return *at, true
}

// SigOf returns the signature of the named attribute, or nil.
func (a Annotation) SigOf(name string) *Sig {
	if at, ok := a.byName[name]; ok {
		return at.Sig
	}
	return nil
}

// NameOfSig returns the presentation name currently bound to a signature
// ID, or "" when the annotation does not carry that attribute.
func (a Annotation) NameOfSig(id string) string {
	for n, at := range a.byName {
		if at.Sig.ID() == id {
			return n
		}
	}
	return ""
}

// MustSig is SigOf but panics for unknown names (plan building bug).
func (a Annotation) MustSig(name string) *Sig {
	s := a.SigOf(name)
	if s == nil {
		panic(fmt.Sprintf("afk: unknown attribute %q (have %v)", name, a.Names()))
	}
	return s
}

// Project keeps only the named attributes (operation type 1, discard).
// F and K are unchanged: filters already applied remain applied, and the
// data keeps its granularity even if key columns are projected away.
func (a Annotation) Project(names ...string) Annotation {
	attrs := make([]Attr, 0, len(names))
	for _, n := range names {
		at, ok := a.byName[n]
		if !ok {
			panic(fmt.Sprintf("afk: project: unknown attribute %q", n))
		}
		attrs = append(attrs, *at)
	}
	return a.derive(attrs, a.F, a.K, a.Grouped)
}

// WithAttr adds a derived attribute (operation type 1, add).
func (a Annotation) WithAttr(name string, sig *Sig) Annotation {
	attrs := append(a.Attrs(), Attr{Name: name, Sig: sig})
	return a.derive(attrs, a.F, a.K, a.Grouped)
}

// Rename rebinds an attribute to a new presentation name, keeping its
// signature.
func (a Annotation) Rename(old, new string) Annotation {
	attrs := a.Attrs()
	for i := range attrs {
		if attrs[i].Name == old {
			attrs[i].Name = new
		}
	}
	return a.derive(attrs, a.F, a.K, a.Grouped)
}

// Rebind replaces the signature of one named attribute, keeping everything
// else. Used to disambiguate same-signature columns that reach a join via
// different paths (a set-based A cannot hold one attribute twice).
func (a Annotation) Rebind(name string, sig *Sig) Annotation {
	return a.RebindAll(map[string]*Sig{name: sig})
}

// RebindAll replaces several attributes' signatures in one pass.
func (a Annotation) RebindAll(repl map[string]*Sig) Annotation {
	if len(repl) == 0 {
		return a
	}
	attrs := a.Attrs()
	for i := range attrs {
		if s, ok := repl[attrs[i].Name]; ok {
			attrs[i].Sig = s
		}
	}
	return a.derive(attrs, a.F, a.K, a.Grouped)
}

// ProjectRename projects to the named attributes and renames them in one
// pass: column cols[i] appears as as[i].
func (a Annotation) ProjectRename(cols, as []string) Annotation {
	attrs := make([]Attr, len(cols))
	for i, c := range cols {
		at, ok := a.byName[c]
		if !ok {
			panic(fmt.Sprintf("afk: project: unknown attribute %q", c))
		}
		attrs[i] = Attr{Name: as[i], Sig: at.Sig}
	}
	return a.derive(attrs, a.F, a.K, a.Grouped)
}

// Rekey replaces the key set without implying an aggregation: grouped
// reports whether the data has been aggregated. Used for record-level
// re-keying, e.g. a tokenizer exploding tweets into sentences keyed by a
// derived per-sentence signature.
func (a Annotation) Rekey(k SigSet, grouped bool) Annotation {
	return a.derive(a.Attrs(), a.F, k, grouped)
}

// LiftPred rewrites a column-name predicate into signature-ID terms.
func (a Annotation) LiftPred(p expr.Pred) expr.Pred {
	return p.Rename(func(col string) string {
		s := a.SigOf(col)
		if s == nil {
			panic(fmt.Sprintf("afk: predicate references unknown attribute %q", col))
		}
		return s.ID()
	})
}

// WithFilter applies a filter predicate given in column-name terms
// (operation type 2).
func (a Annotation) WithFilter(p expr.Pred) Annotation {
	out := a.Clone()
	out.F = out.F.Clone().Add(a.LiftPred(p))
	return out
}

// GroupBy re-keys the data on the named columns (operation type 3),
// keeping the key attributes plus the supplied aggregate output attributes.
func (a Annotation) GroupBy(keyNames []string, aggAttrs []Attr) Annotation {
	attrs := make([]Attr, 0, len(keyNames)+len(aggAttrs))
	k := NewSigSet()
	for _, n := range keyNames {
		at, ok := a.byName[n]
		if !ok {
			panic(fmt.Sprintf("afk: groupby: unknown key attribute %q", n))
		}
		attrs = append(attrs, *at)
		k.Add(at.Sig)
	}
	attrs = append(attrs, aggAttrs...)
	return a.derive(attrs, a.F, k, true)
}

// Join combines two annotations on an equi-join condition (multi-input
// rule, §3.1): A is the union of both sides (the right-side join column —
// same value as the left by definition — is dropped to avoid a duplicate),
// F is the conjunction of both filter sets plus the join condition, and K
// follows the paper's rule (K1 ∪ K2) ∩ joinSigs, falling back to K1 ∪ K2
// when the intersection is empty so granularity information is preserved.
func Join(l, r Annotation, lCol, rCol string) Annotation {
	ls, rs := l.MustSig(lCol), r.MustSig(rCol)
	attrs := l.Attrs()
	for _, at := range r.Attrs() {
		if at.Sig.ID() == rs.ID() && rs.ID() == ls.ID() {
			continue // same signature joining column appears once
		}
		attrs = append(attrs, at)
	}
	f := l.F.Union(r.F)
	if ls.ID() != rs.ID() {
		f = f.Clone().Add(expr.NewAttrEq(ls.ID(), rs.ID()))
	}
	joinSigs := NewSigSet(ls, rs)
	union := l.K.Clone()
	for id, s := range r.K {
		union[id] = s
	}
	k := NewSigSet()
	for id, s := range union {
		if joinSigs.HasID(id) {
			k.Add(s)
		}
	}
	if len(k) == 0 {
		k = union
	}
	out := mk(dedupAttrs(attrs), f, k, l.Grouped || r.Grouped)
	out.Limited = l.Limited || r.Limited
	return out
}

// dedupAttrs drops attributes whose signature already appeared (keeping the
// first name binding). Join can surface the same signature from both sides.
func dedupAttrs(attrs []Attr) []Attr {
	seen := make(map[string]bool, len(attrs))
	names := make(map[string]bool, len(attrs))
	out := attrs[:0]
	for _, at := range attrs {
		if seen[at.Sig.ID()] || names[at.Name] {
			continue
		}
		seen[at.Sig.ID()] = true
		names[at.Name] = true
		out = append(out, at)
	}
	return out
}

// LessAggregated reports whether a (the view) is less aggregated than q:
// never-grouped data is record-level and qualifies unconditionally;
// otherwise the view's grouping must refine the target's under the FDs.
func (a Annotation) LessAggregated(q Annotation, fds *FDSet) bool {
	if !a.Grouped {
		return true
	}
	return fds.Refines(a.K, q.K)
}

// Equal is the semantic equivalence test of §4.1: identical attribute sets
// (by signature), mutually-implying filter sets, and identical keys.
// Grouped is deliberately not compared: with equal K the partitions match.
func (a Annotation) Equal(b Annotation) bool {
	if a.Limited != b.Limited {
		return false
	}
	return a.A.Equal(b.A) &&
		a.F.ImpliesAll(b.F) && b.F.ImpliesAll(a.F) &&
		a.K.Equal(b.K)
}

// Canon returns a canonical fingerprint of the annotation; equal
// annotations (up to filter-set syntactic identity) share a fingerprint.
func (a Annotation) Canon() string {
	var sb strings.Builder
	sb.WriteString("A=")
	sb.WriteString(a.A.Canon())
	sb.WriteString(" F=")
	sb.WriteString(a.F.Canon())
	sb.WriteString(" K=")
	sb.WriteString(a.K.Canon())
	if a.Limited {
		sb.WriteString(" LIMITED")
	}
	return sb.String()
}

// String renders the annotation with presentation names for humans.
func (a Annotation) String() string {
	return fmt.Sprintf("A=%v F=%s K=%s", a.Names(), a.F, a.K.Canon())
}
