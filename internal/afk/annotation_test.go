package afk

import (
	"testing"

	"opportune/internal/expr"
	"opportune/internal/value"
)

// twtrBase mirrors the paper's Fig 4 scan of the Twitter log:
// A={tweet_id, user_id, tweet_text}, F=∅, K={tweet_id}.
func twtrBase() Annotation {
	return NewBase("twtr", []string{"tweet_id", "user_id", "tweet_text"}, "tweet_id")
}

func TestNewBase(t *testing.T) {
	a := twtrBase()
	if len(a.A) != 3 {
		t.Fatalf("A size = %d", len(a.A))
	}
	if len(a.F) != 0 {
		t.Error("base scan has filters")
	}
	if !a.K.Has(BaseSig("twtr", "tweet_id")) || len(a.K) != 1 {
		t.Errorf("K = %v", a.K.Canon())
	}
	if at, ok := a.Attr("user_id"); !ok || at.Sig.ID() != "b:twtr.user_id" {
		t.Error("Attr lookup wrong")
	}
	if _, ok := a.Attr("nope"); ok {
		t.Error("Attr found missing name")
	}
	if a.SigOf("nope") != nil {
		t.Error("SigOf found missing name")
	}
	if a.NameOfSig("b:twtr.user_id") != "user_id" {
		t.Error("NameOfSig wrong")
	}
	if a.NameOfSig("b:none.x") != "" {
		t.Error("NameOfSig invented a name")
	}
}

func TestProjectKeepsFK(t *testing.T) {
	a := twtrBase().WithFilter(expr.NewCmp("user_id", expr.Gt, value.NewInt(0)))
	p := a.Project("user_id", "tweet_text")
	if len(p.A) != 2 {
		t.Errorf("A = %v", p.Names())
	}
	if len(p.F) != 1 {
		t.Error("projection dropped filters")
	}
	// K survives even though tweet_id was projected away: granularity is a
	// property of the data, not the visible columns.
	if !p.K.Has(BaseSig("twtr", "tweet_id")) {
		t.Error("projection dropped keys")
	}
}

func TestWithFilterLiftsToSigs(t *testing.T) {
	a := twtrBase().WithFilter(expr.NewCmp("user_id", expr.Gt, value.NewInt(100)))
	found := false
	for _, p := range a.F {
		if p.Attr == "b:twtr.user_id" {
			found = true
		}
	}
	if !found {
		t.Errorf("filter not lifted to signature terms: %v", a.F)
	}
	// renamed column, same signature, same lifted filter
	b := twtrBase().Rename("user_id", "uid").WithFilter(expr.NewCmp("uid", expr.Gt, value.NewInt(100)))
	if !a.F.Equal(b.F) {
		t.Error("rename changed lifted filter identity")
	}
}

func TestWithAttrAndGroupBy(t *testing.T) {
	a := twtrBase()
	score := DerivedSig("sentiment", "", []*Sig{a.MustSig("tweet_text")})
	a = a.WithAttr("sent_score", score)
	if !a.A.Has(score) {
		t.Error("WithAttr missing")
	}
	sum := AggSig("sum", "", []*Sig{score}, a.F.Canon(), []*Sig{a.MustSig("user_id")})
	g := a.GroupBy([]string{"user_id"}, []Attr{{Name: "sent_sum", Sig: sum}})
	if len(g.A) != 2 {
		t.Errorf("grouped A = %v", g.Names())
	}
	if !g.K.Equal(NewSigSet(a.MustSig("user_id"))) {
		t.Errorf("grouped K = %s", g.K.Canon())
	}
	if g.SigOf("sent_sum") == nil {
		t.Error("aggregate attr missing")
	}
}

func TestJoinPaperRule(t *testing.T) {
	// Fig 4: join UDF output (K={user_id}) with groupby-count (K={user_id})
	// on user_id gives K={user_id}.
	l := twtrBase().GroupBy([]string{"user_id"}, []Attr{{
		Name: "sent_sum",
		Sig:  AggSig("sum_sent", "", []*Sig{BaseSig("twtr", "tweet_text")}, "{}", []*Sig{BaseSig("twtr", "user_id")}),
	}})
	r := twtrBase().GroupBy([]string{"user_id"}, []Attr{{
		Name: "cnt",
		Sig:  AggSig("count", "", []*Sig{BaseSig("twtr", "tweet_id")}, "{}", []*Sig{BaseSig("twtr", "user_id")}),
	}})
	j := Join(l, r, "user_id", "user_id")
	if !j.K.Equal(NewSigSet(BaseSig("twtr", "user_id"))) {
		t.Errorf("join K = %s", j.K.Canon())
	}
	// user_id appears once; sent_sum and cnt both present
	if len(j.A) != 3 {
		t.Errorf("join A = %v", j.Names())
	}
	if j.SigOf("sent_sum") == nil || j.SigOf("cnt") == nil {
		t.Error("join lost an aggregate")
	}
}

func TestJoinDifferentKeysAddsCondAndFallback(t *testing.T) {
	l := NewBase("fsq", []string{"checkin_id", "user_id", "location_id"}, "checkin_id")
	r := NewBase("land", []string{"location_id", "name"}, "location_id")
	// join on location_id: base sigs differ (fsq.location_id vs land.location_id)
	j := Join(l, r, "location_id", "location_id")
	// join condition recorded
	hasEq := false
	for _, p := range j.F {
		if p.Kind == expr.KindAttrEq {
			hasEq = true
		}
	}
	if !hasEq {
		t.Error("join condition missing from F")
	}
	// K1={checkin_id}, K2={location_id}: union ∩ join = {land.location_id}
	if !j.K.HasID("b:land.location_id") {
		t.Errorf("join K = %s", j.K.Canon())
	}
	// Name collision on location_id resolved (one name binding kept).
	names := j.Names()
	seen := map[string]int{}
	for _, n := range names {
		seen[n]++
	}
	for n, c := range seen {
		if c > 1 {
			t.Errorf("duplicate name %q", n)
		}
	}
}

func TestEqualSemantic(t *testing.T) {
	mk := func(lit float64) Annotation {
		return twtrBase().WithFilter(expr.NewCmp("user_id", expr.Lt, value.NewFloat(lit)))
	}
	if !mk(10).Equal(mk(10)) {
		t.Error("identical annotations unequal")
	}
	if mk(10).Equal(mk(20)) {
		t.Error("different filters equal")
	}
	if twtrBase().Equal(twtrBase().Project("user_id")) {
		t.Error("different A equal")
	}
	g := twtrBase().GroupBy([]string{"user_id"}, nil)
	ann := twtrBase().Project("user_id")
	if ann.Equal(g) {
		t.Error("different K equal")
	}
	// mutually implying filter sets are equal: {d<10, d<20} ≡ {d<10}
	a := mk(10)
	b := mk(10).WithFilter(expr.NewCmp("user_id", expr.Lt, value.NewFloat(20)))
	if !a.Equal(b) {
		t.Error("mutually implying filter sets not equal")
	}
}

func TestCanonStable(t *testing.T) {
	a := twtrBase().WithFilter(expr.NewCmp("user_id", expr.Gt, value.NewInt(5)))
	b := twtrBase().WithFilter(expr.NewCmp("user_id", expr.Gt, value.NewInt(5)))
	if a.Canon() != b.Canon() {
		t.Error("canon unstable")
	}
	if a.Canon() == twtrBase().Canon() {
		t.Error("canon ignores filters")
	}
	if a.String() == "" {
		t.Error("empty String")
	}
}

func TestClonesAreIndependent(t *testing.T) {
	a := twtrBase()
	b := a.Clone().WithFilter(expr.NewCmp("user_id", expr.Gt, value.NewInt(1)))
	if len(a.F) != 0 {
		t.Error("Clone aliases F")
	}
	_ = b
	c := a.WithAttr("x", DerivedSig("f", "", []*Sig{a.MustSig("user_id")}))
	if a.A.Has(c.MustSig("x")) {
		t.Error("WithAttr mutated receiver")
	}
}

func TestGroupedFlagAndLessAggregated(t *testing.T) {
	fds := NewFDSet()
	raw := twtrBase()
	if raw.Grouped {
		t.Error("base scan marked grouped")
	}
	g := raw.GroupBy([]string{"user_id"}, nil)
	if !g.Grouped {
		t.Error("GroupBy did not mark grouped")
	}
	if !g.Project("user_id").Grouped || !g.Rename("user_id", "u").Grouped {
		t.Error("projection/rename lost Grouped")
	}
	// global aggregate: grouped with no keys
	global := raw.GroupBy(nil, []Attr{{Name: "n", Sig: AggSig("count", "", []*Sig{raw.MustSig("tweet_id")}, "{}", nil)}})
	if !global.Grouped || len(global.K) != 0 {
		t.Error("global aggregate annotation wrong")
	}
	// raw data is less aggregated than anything
	if !raw.LessAggregated(g, fds) || !raw.LessAggregated(global, fds) {
		t.Error("raw not less aggregated")
	}
	// global aggregate is less aggregated only than another global
	if global.LessAggregated(g, fds) {
		t.Error("global aggregate claimed less aggregated than user grouping")
	}
	if !global.LessAggregated(global, fds) {
		t.Error("global not less aggregated than global")
	}
	// user grouping not less aggregated than raw record-level target
	if g.LessAggregated(raw, fds) {
		t.Error("user grouping claimed to refine record-level")
	}
	// join propagates grouped
	j := Join(g, raw.GroupBy([]string{"user_id"}, nil), "user_id", "user_id")
	if !j.Grouped {
		t.Error("join of grouped inputs not grouped")
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	a := twtrBase()
	mustPanic("dup attr names", func() {
		New([]Attr{{Name: "x", Sig: BaseSig("d", "a")}, {Name: "x", Sig: BaseSig("d", "b")}}, expr.NewSet(), NewSigSet())
	})
	mustPanic("project unknown", func() { a.Project("zzz") })
	mustPanic("MustSig unknown", func() { a.MustSig("zzz") })
	mustPanic("groupby unknown key", func() { a.GroupBy([]string{"zzz"}, nil) })
	mustPanic("filter unknown attr", func() { a.WithFilter(expr.NewCmp("zzz", expr.Eq, value.NewInt(1))) })
}
