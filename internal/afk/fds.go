package afk

import (
	"sort"
	"sync"
)

// FDSet is a set of functional dependencies over attribute signature IDs.
// It powers the "less aggregated" refinement check: grouping by keys X
// refines grouping by keys Y iff Y ⊆ closure(X).
//
// Two sources populate it: dataset registration declares record keys
// (tweet_id → every TWTR column), and every derived attribute contributes
// inputs → derived (a deterministic per-tuple UDF output is functionally
// determined by its inputs).
//
// FDSet is safe for concurrent use. Plan annotation only ever *adds*
// dependencies, and Closure is a fixpoint whose result depends on the set
// contents, not insertion order — so concurrent Adds from parallel rewrite
// probing cannot change what any later Closure computes.
type FDSet struct {
	mu  sync.RWMutex
	fds []fd
}

type fd struct {
	from []string // determinant signature IDs (sorted)
	to   string   // determined signature ID
}

// NewFDSet creates an empty FD set.
func NewFDSet() *FDSet { return &FDSet{} }

// Add declares from → to. Duplicate declarations are ignored.
func (f *FDSet) Add(from []string, to string) {
	sorted := append([]string(nil), from...)
	sort.Strings(sorted)
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, e := range f.fds {
		if e.to == to && eqStrs(e.from, sorted) {
			return
		}
	}
	f.fds = append(f.fds, fd{from: sorted, to: to})
}

// AddKey declares that key determines each of the given attributes.
func (f *FDSet) AddKey(key string, attrs []string) {
	for _, a := range attrs {
		if a != key {
			f.Add([]string{key}, a)
		}
	}
}

// Len returns the number of dependencies.
func (f *FDSet) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.fds)
}

// Clone copies the FD set.
func (f *FDSet) Clone() *FDSet {
	f.mu.RLock()
	defer f.mu.RUnlock()
	c := &FDSet{fds: make([]fd, len(f.fds))}
	copy(c.fds, f.fds)
	return c
}

// Each visits every dependency (for persistence).
func (f *FDSet) Each(fn func(from []string, to string)) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	for _, e := range f.fds {
		fn(append([]string(nil), e.from...), e.to)
	}
}

// Closure computes the attribute closure of the given IDs under the FDs
// (standard fixpoint).
func (f *FDSet) Closure(ids []string) map[string]bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.closureLocked(ids)
}

// closureLocked is Closure's body; callers hold at least a read lock.
func (f *FDSet) closureLocked(ids []string) map[string]bool {
	closure := make(map[string]bool, len(ids))
	for _, id := range ids {
		closure[id] = true
	}
	for changed := true; changed; {
		changed = false
		for _, e := range f.fds {
			if closure[e.to] {
				continue
			}
			all := true
			for _, from := range e.from {
				if !closure[from] {
					all = false
					break
				}
			}
			if all {
				closure[e.to] = true
				changed = true
			}
		}
	}
	return closure
}

// Determines reports whether X → y follows from the FDs.
func (f *FDSet) Determines(x []string, y string) bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.closureLocked(x)[y]
}

// Refines reports whether the partition induced by grouping keys vK is at
// least as fine as the one induced by qK: every qK key is functionally
// determined by the vK keys. An empty qK is the global (coarsest) partition
// and is refined by anything; an empty vK is itself global and refines only
// an empty qK. (Record-level, never-grouped data is handled one level up,
// by Annotation.LessAggregated.)
func (f *FDSet) Refines(vK, qK SigSet) bool {
	if len(qK) == 0 {
		return true
	}
	if len(vK) == 0 {
		return false
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	closure := f.closureLocked(vK.IDs())
	for id := range qK {
		if !closure[id] {
			return false
		}
	}
	return true
}

func eqStrs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
