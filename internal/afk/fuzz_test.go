package afk

import (
	"strings"
	"testing"
)

// sigList derives a signature-ID list from fuzz input: ';'-separated
// tokens, kept verbatim (including empty tokens — PrefixMatch must reject
// those, and the fuzzer should get to try them).
func sigList(raw string) []string {
	if raw == "" {
		return nil
	}
	return strings.Split(raw, ";")
}

// FuzzPartitionCompat asserts the prefix-compatibility matcher — the rule
// that decides whether a declared hash layout lets a shuffle be compiled
// away — agrees with its specification on arbitrary sig lists and obeys
// the lattice laws the optimizer relies on: matching is monotone in key
// extensions, anti-monotone in layout truncation, and invariant under
// Clone.
func FuzzPartitionCompat(f *testing.F) {
	f.Add("s1;s2", "s1;s2;s3", 32, "s9")
	f.Add("s1", "s1", 1, "")
	f.Add("s1;s2", "s1", 8, "s2")  // layout longer than key: no match
	f.Add("s2;s1", "s1;s2", 8, "") // order matters
	f.Add(";s1", "s1;s2", 8, "s1") // empty sig id: never matches
	f.Add("", "s1", 8, "s1")       // unknown layout
	f.Add("s1", "s1;s2", 0, "s1")  // parts=0: not partitioned
	f.Add("a;a", "a;a;a", 16, "a") // repeated sigs
	f.Fuzz(func(t *testing.T, sigsRaw, keysRaw string, parts int, extra string) {
		p := Partitioning{Sigs: sigList(sigsRaw), Parts: parts}
		keyIDs := sigList(keysRaw)
		got := p.PrefixMatch(keyIDs)

		// Reference specification: known layout, and Sigs a non-empty
		// prefix of keyIDs with no empty IDs.
		want := p.IsPartitioned() && len(p.Sigs) <= len(keyIDs)
		if want {
			for i, s := range p.Sigs {
				if s == "" || s != keyIDs[i] {
					want = false
					break
				}
			}
		}
		if got != want {
			t.Fatalf("PrefixMatch(%q over %q, parts=%d) = %v, spec says %v",
				p.Sigs, keyIDs, parts, got, want)
		}
		if got && !p.IsPartitioned() {
			t.Fatal("matched with an unknown layout")
		}
		if got {
			// Monotone in the key: refining the shuffle key with more
			// columns never breaks the match (the extra columns only split
			// groups within a bucket).
			if !p.PrefixMatch(append(append([]string(nil), keyIDs...), extra)) {
				t.Fatalf("match lost after extending key %q with %q", keyIDs, extra)
			}
			// Anti-monotone in the layout: any shorter non-empty layout
			// prefix is coarser and still routes each group to one bucket.
			for k := 1; k < len(p.Sigs); k++ {
				sub := Partitioning{Sigs: p.Sigs[:k], Parts: parts}
				if !sub.PrefixMatch(keyIDs) {
					t.Fatalf("layout prefix %q stopped matching key %q", sub.Sigs, keyIDs)
				}
			}
		}
		// Structural laws, match or not.
		c := p.Clone()
		if !c.Equal(p) || c.PrefixMatch(keyIDs) != got {
			t.Fatal("Clone changed the property")
		}
		if p.Canon() != c.Canon() {
			t.Fatal("Canon not Clone-invariant")
		}
		if (p.Canon() == "") == p.IsPartitioned() {
			t.Fatalf("Canon %q disagrees with IsPartitioned %v", p.Canon(), p.IsPartitioned())
		}
	})
}
