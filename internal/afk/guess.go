package afk

import (
	"opportune/internal/cost"
	"opportune/internal/expr"
)

// CanProduce reports whether an attribute with signature s can be computed
// from the attributes avail: it is already present, or it is derived and
// each of its inputs can be produced (recursively). This is condition (i)
// of GUESSCOMPLETE — deliberately optimistic: it ignores whether the key
// context required by an aggregate attribute still holds (the paper's Fig 5
// false-positive: grouping may have destroyed the tuples needed to compute
// the attribute). REWRITEENUM performs the strict check.
func CanProduce(s *Sig, avail SigSet) bool {
	if avail.Has(s) {
		return true
	}
	if s.IsBase() {
		return false
	}
	for _, in := range s.Inputs {
		if !CanProduce(in, avail) {
			return false
		}
	}
	return len(s.Inputs) > 0
}

// GuessComplete is the containment heuristic of §4.1: a quick, conservative
// guess that view v can produce a complete rewrite of target q. It checks
// the necessary conditions
//
//	(i)   v contains all attributes q requires, or the attributes needed
//	      to produce them,
//	(ii)  v has weaker selection predicates than q (q.F ⇒ v.F), and any
//	      compensation filter only references producible attributes,
//	(iii) v is less aggregated than q (v.K refines q.K under the FDs).
//
// False positives are possible (REWRITEENUM may still fail); false
// negatives are not — see TestGuessCompleteNeverFalseNegative.
func GuessComplete(q, v Annotation, fds *FDSet) bool {
	// LIMIT-tainted data is outside the model: which rows a limited view
	// holds depends on physical execution, and no compensation operator
	// can produce a LIMIT. Only syntactic plan identity may reuse it.
	if v.Limited || q.Limited {
		return false
	}
	// (i) attribute coverage.
	for _, s := range q.A {
		if !CanProduce(s, v.A) {
			return false
		}
	}
	// (ii) weaker filters.
	if !q.F.ImpliesAll(v.F) {
		return false
	}
	for _, p := range q.F.Preds() {
		if impliedByAny(v.F, p) {
			continue
		}
		for _, id := range p.Attrs() {
			s, ok := findSig(q, id)
			if !ok || !CanProduce(s, v.A) {
				return false
			}
		}
	}
	// (iii) less aggregated.
	return v.LessAggregated(q, fds)
}

func impliedByAny(f expr.Set, p expr.Pred) bool {
	for _, vp := range f {
		if expr.Implies(vp, p) {
			return true
		}
	}
	return false
}

// findSig resolves a signature ID referenced by a query predicate to the
// signature object: first in the query's attributes and keys, then in the
// global registry (the attribute may have been consumed by the filter and
// projected away before the target's output).
func findSig(q Annotation, id string) (*Sig, bool) {
	if s, ok := q.A[id]; ok {
		return s, true
	}
	if s, ok := q.K[id]; ok {
		return s, true
	}
	return Lookup(id)
}

// Fix is the set-difference compensation between a target and a view
// (§4.3): the operations that, applied to v, would produce q.
type Fix struct {
	// NewAttrs are attributes of q missing from v.
	NewAttrs []*Sig
	// Filters are q's predicates not already implied by v's.
	Filters []expr.Pred
	// Rekey is set when the grouping differs; RekeyTo is q.K.
	Rekey   bool
	RekeyTo SigSet
	// DropAttrs are attributes of v absent from q (a projection is needed).
	DropAttrs []*Sig
}

// ComputeFix computes the fix of v with respect to q. It is meaningful when
// GuessComplete(q, v) holds but is defined for any pair.
func ComputeFix(q, v Annotation) Fix {
	var fix Fix
	for _, s := range q.A.Sigs() {
		if !v.A.Has(s) {
			fix.NewAttrs = append(fix.NewAttrs, s)
		}
	}
	for _, s := range v.A.Sigs() {
		if !q.A.Has(s) {
			fix.DropAttrs = append(fix.DropAttrs, s)
		}
	}
	for _, p := range q.F.Preds() {
		if !impliedByAny(v.F, p) {
			fix.Filters = append(fix.Filters, p)
		}
	}
	if !q.K.Equal(v.K) {
		fix.Rekey = true
		fix.RekeyTo = q.K.Clone()
	}
	return fix
}

// Empty reports whether no compensation is needed beyond (possibly) a
// projection — i.e. v already answers q up to column pruning.
func (f Fix) Empty() bool {
	return len(f.NewAttrs) == 0 && len(f.Filters) == 0 && !f.Rekey
}

// OpTypes returns the operation types the fix requires, the input to the
// non-subsumable cost rule in OPTCOST: the synthesized local function that
// "performs the fix" costs as the cheapest of these.
func (f Fix) OpTypes() []cost.OpType {
	var ops []cost.OpType
	if len(f.NewAttrs) > 0 || len(f.DropAttrs) > 0 {
		ops = append(ops, cost.OpAttr)
	}
	if len(f.Filters) > 0 {
		ops = append(ops, cost.OpFilter)
	}
	if f.Rekey {
		ops = append(ops, cost.OpGroup)
	}
	return ops
}
