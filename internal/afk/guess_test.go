package afk

import (
	"testing"
	"testing/quick"

	"opportune/internal/cost"
	"opportune/internal/expr"
	"opportune/internal/value"
)

// fig5View and fig5Query reproduce the paper's Fig 5 example:
// v: A={a,b,c}, F={}, K={} ; q: A={b,c,d}, F={d<10}, K={c}, d = f(a,b).
func fig5() (q, v Annotation, fds *FDSet) {
	a, b, c := BaseSig("t", "a"), BaseSig("t", "b"), BaseSig("t", "c")
	d := DerivedSig("f", "", []*Sig{a, b})
	v = New([]Attr{{"a", a}, {"b", b}, {"c", c}}, expr.NewSet(), NewSigSet())
	q = New([]Attr{{"b", b}, {"c", c}, {"d", d}},
		expr.NewSet(expr.NewCmp(d.ID(), expr.Lt, value.NewFloat(10))),
		NewSigSet(c))
	fds = NewFDSet()
	fds.Add([]string{a.ID(), b.ID()}, d.ID())
	return q, v, fds
}

func TestCanProduce(t *testing.T) {
	a, b := BaseSig("t", "a"), BaseSig("t", "b")
	d := DerivedSig("f", "", []*Sig{a, b})
	nested := DerivedSig("g", "", []*Sig{d})
	avail := NewSigSet(a, b)
	if !CanProduce(a, avail) {
		t.Error("present attr not producible")
	}
	if !CanProduce(d, avail) {
		t.Error("derived from present inputs not producible")
	}
	if !CanProduce(nested, avail) {
		t.Error("nested derivation not producible")
	}
	if CanProduce(BaseSig("t", "z"), avail) {
		t.Error("missing base attr producible")
	}
	if CanProduce(DerivedSig("f", "", []*Sig{BaseSig("t", "z")}), avail) {
		t.Error("derived from missing input producible")
	}
	// derived attr already present is producible even without inputs
	if !CanProduce(d, NewSigSet(d)) {
		t.Error("present derived attr not producible")
	}
	// a zero-input derived sig is not producible unless present
	weird := DerivedSig("const", "", nil)
	if CanProduce(weird, avail) {
		t.Error("zero-input derivation producible from nothing")
	}
}

func TestGuessCompleteFig5(t *testing.T) {
	q, v, fds := fig5()
	// The paper: v is guessed complete w.r.t. q (even though grouping on c
	// might in reality destroy a,b — the guess is optimistic).
	if !GuessComplete(q, v, fds) {
		t.Error("Fig 5 guess should be complete")
	}
	fix := ComputeFix(q, v)
	if len(fix.NewAttrs) != 1 || fix.NewAttrs[0].UDF != "f" {
		t.Errorf("fix new attrs = %v", fix.NewAttrs)
	}
	if len(fix.Filters) != 1 {
		t.Errorf("fix filters = %v", fix.Filters)
	}
	if !fix.Rekey || !fix.RekeyTo.HasID("b:t.c") {
		t.Errorf("fix rekey = %v %s", fix.Rekey, fix.RekeyTo.Canon())
	}
	// a is in v but not q: needs dropping
	if len(fix.DropAttrs) != 1 {
		t.Errorf("fix drops = %v", fix.DropAttrs)
	}
	ops := fix.OpTypes()
	if len(ops) != 3 {
		t.Errorf("fix op types = %v", ops)
	}
}

func TestGuessCompleteFailsOnMissingAttr(t *testing.T) {
	q, v, fds := fig5()
	// Remove b from the view: d=f(a,b) is no longer producible.
	v2 := v.Project("a", "c")
	if GuessComplete(q, v2, fds) {
		t.Error("guess complete despite unproducible attribute")
	}
}

func TestGuessCompleteFailsOnStrongerViewFilter(t *testing.T) {
	q, v, _ := fig5()
	fds := NewFDSet()
	// View filtered on a<5, which q's filters do not imply.
	v2 := v.WithFilter(expr.NewCmp("a", expr.Lt, value.NewFloat(5)))
	if GuessComplete(q, v2, fds) {
		t.Error("guess complete despite stronger view filter")
	}
}

func TestGuessCompleteWeakerViewFilterOK(t *testing.T) {
	a := BaseSig("t", "a")
	v := New([]Attr{{"a", a}}, expr.NewSet(expr.NewCmp(a.ID(), expr.Lt, value.NewFloat(100))), NewSigSet())
	q := New([]Attr{{"a", a}}, expr.NewSet(expr.NewCmp(a.ID(), expr.Lt, value.NewFloat(10))), NewSigSet())
	if !GuessComplete(q, v, NewFDSet()) {
		t.Error("weaker view filter rejected")
	}
	// and the reverse direction fails
	if GuessComplete(v, q, NewFDSet()) {
		t.Error("stronger view filter accepted")
	}
	// fix contains only the tighter filter
	fix := ComputeFix(q, v)
	if len(fix.Filters) != 1 || !fix.Filters[0].Lit.IsNumeric() {
		t.Errorf("fix filters = %v", fix.Filters)
	}
	if fix.Rekey || len(fix.NewAttrs) != 0 {
		t.Errorf("unexpected fix parts: %+v", fix)
	}
}

func TestGuessCompleteFailsOnOverAggregation(t *testing.T) {
	tid, uid := BaseSig("t", "tid"), BaseSig("t", "uid")
	day := BaseSig("t", "day")
	fds := NewFDSet()
	fds.AddKey(tid.ID(), []string{uid.ID(), day.ID()})
	// view grouped by uid; query needs (uid, day) grouping
	v := New([]Attr{{"uid", uid}, {"day", day}}, expr.NewSet(), NewSigSet(uid))
	q := New([]Attr{{"uid", uid}, {"day", day}}, expr.NewSet(), NewSigSet(uid, day))
	if GuessComplete(q, v, fds) {
		t.Error("over-aggregated view accepted")
	}
	// the reverse (view finer than query) is fine
	if !GuessComplete(v, q, fds) {
		t.Error("finer view rejected")
	}
}

func TestGuessCompleteFilterOnUnproducibleAttr(t *testing.T) {
	a, z := BaseSig("t", "a"), BaseSig("t", "z")
	v := New([]Attr{{"a", a}}, expr.NewSet(), NewSigSet())
	// q filters on z, which v cannot produce; but z is not in q.A either
	// (it was consumed by the filter then projected away).
	q := New([]Attr{{"a", a}}, expr.NewSet(expr.NewCmp(z.ID(), expr.Lt, value.NewFloat(1))), NewSigSet())
	if GuessComplete(q, v, NewFDSet()) {
		t.Error("compensation filter over unproducible attribute accepted")
	}
}

func TestFixEmptyOnEquivalent(t *testing.T) {
	q, _, _ := fig5()
	fix := ComputeFix(q, q)
	if !fix.Empty() {
		t.Errorf("self-fix not empty: %+v", fix)
	}
	if len(fix.OpTypes()) != 0 {
		t.Error("empty fix has op types")
	}
}

func TestFixOpTypesSubsets(t *testing.T) {
	a := BaseSig("t", "a")
	b := BaseSig("t", "b")
	base := New([]Attr{{"a", a}, {"b", b}}, expr.NewSet(), NewSigSet())
	// only filter differs
	q1 := New([]Attr{{"a", a}, {"b", b}}, expr.NewSet(expr.NewCmp(a.ID(), expr.Gt, value.NewFloat(0))), NewSigSet())
	ops := ComputeFix(q1, base).OpTypes()
	if len(ops) != 1 || ops[0] != cost.OpFilter {
		t.Errorf("filter-only fix ops = %v", ops)
	}
	// only projection differs
	q2 := base.Project("a")
	ops = ComputeFix(q2, base).OpTypes()
	if len(ops) != 1 || ops[0] != cost.OpAttr {
		t.Errorf("projection-only fix ops = %v", ops)
	}
	// only grouping differs
	q3 := New([]Attr{{"a", a}, {"b", b}}, expr.NewSet(), NewSigSet(a))
	ops = ComputeFix(q3, base).OpTypes()
	if len(ops) != 1 || ops[0] != cost.OpGroup {
		t.Errorf("group-only fix ops = %v", ops)
	}
}

// TestGuessCompleteNeverFalseNegative is the paper's core guarantee: if an
// actual rewrite exists (we construct v �then⊇ q by applying compensations),
// GuessComplete must accept. We generate random views and derive q from
// them by applying random project/filter/group compensations — since q was
// literally produced from v, a rewrite exists, so the guess must say yes.
func TestGuessCompleteNeverFalseNegative(t *testing.T) {
	uid := BaseSig("t", "uid")
	val := BaseSig("t", "val")
	tid := BaseSig("t", "tid")
	fds := NewFDSet()
	fds.AddKey(tid.ID(), []string{uid.ID(), val.ID()})

	f := func(filterLit int8, doFilter, doProject, doGroup bool) bool {
		v := New([]Attr{{"tid", tid}, {"uid", uid}, {"val", val}}, expr.NewSet(), NewSigSet(tid))
		q := v
		if doFilter {
			q = q.WithFilter(expr.NewCmp("val", expr.Lt, value.NewFloat(float64(filterLit))))
		}
		if doGroup {
			sum := AggSig("sum", "", []*Sig{val}, q.F.Canon(), []*Sig{uid})
			q = q.GroupBy([]string{"uid"}, []Attr{{Name: "s", Sig: sum}})
		} else if doProject {
			q = q.Project("uid", "val")
		}
		return GuessComplete(q, v, fds)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// BenchmarkGuessComplete measures the containment heuristic on the Fig 5
// shapes — the check runs once per candidate the search examines.
func BenchmarkGuessComplete(b *testing.B) {
	q, v, fds := fig5()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !GuessComplete(q, v, fds) {
			b.Fatal("guess failed")
		}
	}
}

// BenchmarkAnnotationJoin measures the multi-input annotation rule.
func BenchmarkAnnotationJoin(b *testing.B) {
	l := NewBase("twtr", []string{"tweet_id", "user_id", "text", "ts", "lat", "lon"}, "tweet_id").
		GroupBy([]string{"user_id"}, nil)
	r := NewBase("fsq", []string{"checkin_id", "user_id", "location_id", "ts"}, "checkin_id")
	r = r.Rename("user_id", "cuser").Rename("ts", "cts")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Join(l, r, "user_id", "cuser")
	}
}
