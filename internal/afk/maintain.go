package afk

import "fmt"

// This file implements the annotation-level half of incremental view
// maintenance classification (ROADMAP item 2). Under append-only ingest a
// view is a candidate for delta maintenance when its (A, F, K) annotation
// proves that new base rows can only *add* output rows or *fold into*
// existing groups — never retract or rewrite rows already emitted:
//
//   - lineage must trace to exactly one base dataset (the appended table):
//     joins see cross products of old and new rows, which a single-side
//     delta run cannot produce;
//   - every aggregate attribute must be distributive (count/sum/min/max),
//     so per-group partial states merge associatively; AVG and any
//     black-box aggregate UDF are not mergeable from finalized outputs;
//   - no filter or derived attribute may consume an aggregate (a filter
//     over a group total can retract a group when its total crosses the
//     threshold; a per-tuple UDF over a group value would need recomputing
//     for every touched group);
//   - no LIMIT taint: which rows survive a LIMIT depends on execution
//     order, so "append then merge" and "recompute" legitimately disagree.
//
// The plan-level half (operator-chain shape, UDF explode flags) lives in
// the session, which holds the producing plans; both gates must pass.

// DistributiveAggs names the aggregate UDFs whose per-group outputs merge
// associatively with their own partials. These are the "agg_"+AggFunc
// signatures minted by plan annotation for relational aggregates.
var DistributiveAggs = map[string]bool{
	"agg_count": true,
	"agg_sum":   true,
	"agg_min":   true,
	"agg_max":   true,
}

// Verdict is the result of a maintainability classification.
type Verdict struct {
	OK     bool
	Reason string // populated when !OK: why the view must be invalidated
}

func reject(format string, args ...any) Verdict {
	return Verdict{Reason: fmt.Sprintf(format, args...)}
}

// Maintainable classifies a view annotation for incremental maintenance
// under appends to the given base table. OK means the annotation admits
// delta maintenance; the caller must still verify the producing plan's
// shape (it may use plan constructs the annotation cannot see).
func Maintainable(ann Annotation, table string) Verdict {
	if ann.Limited {
		return reject("LIMIT taint: surviving rows depend on execution order")
	}

	// Single-source lineage: every signature reachable from A and K must
	// bottom out in the appended table and nothing else.
	bases := make(map[string]bool)
	var aggViolation string
	var walk func(s *Sig, insideAgg bool)
	walk = func(s *Sig, insideAgg bool) {
		if s == nil || aggViolation != "" {
			return
		}
		if s.IsBase() {
			bases[s.Dataset] = true
			return
		}
		if s.Agg {
			if insideAgg {
				aggViolation = fmt.Sprintf("nested aggregate %s", s.UDF)
				return
			}
			if !DistributiveAggs[s.UDF] {
				aggViolation = fmt.Sprintf("non-distributive aggregate %s", s.UDF)
				return
			}
			insideAgg = true
		}
		for _, in := range s.Inputs {
			walk(in, insideAgg)
		}
		for _, k := range s.GroupBy {
			walk(k, insideAgg)
		}
	}
	for _, at := range ann.Attrs() {
		walk(at.Sig, false)
	}
	for _, k := range ann.K.Sigs() {
		walk(k, false)
	}
	if aggViolation != "" {
		return reject("%s", aggViolation)
	}
	if len(bases) != 1 || !bases[table] {
		if len(bases) > 1 {
			return reject("multi-source lineage (join): %d base datasets", len(bases))
		}
		return reject("lineage does not trace to %q alone", table)
	}

	// Filters must precede aggregation: a predicate over an aggregate
	// signature can retract an already-emitted group when its total moves.
	for _, p := range ann.F.Preds() {
		for _, id := range p.Attrs() {
			if s, ok := Lookup(id); ok && sigContainsAgg(s) {
				return reject("filter over aggregate %s", s.UDF)
			}
		}
	}

	// Per-tuple derived attributes over aggregates (the dual of the filter
	// rule): recomputable only by touching every group.
	for _, at := range ann.Attrs() {
		s := at.Sig
		if s.IsBase() || s.Agg {
			continue
		}
		for _, in := range s.Inputs {
			if sigContainsAgg(in) {
				return reject("derived attribute %s consumes aggregate", s.UDF)
			}
		}
	}
	return Verdict{OK: true}
}

// sigContainsAgg reports whether the signature or any dependency is an
// aggregate.
func sigContainsAgg(s *Sig) bool {
	if s == nil {
		return false
	}
	if s.Agg {
		return true
	}
	for _, in := range s.Inputs {
		if sigContainsAgg(in) {
			return true
		}
	}
	return false
}
