package afk

import (
	"strings"
	"testing"

	"opportune/internal/expr"
	"opportune/internal/value"
)

func baseAnn() Annotation {
	return NewBase("logs", []string{"id", "user", "text"}, "id")
}

// aggAnn models GroupAgg(logs, keys=[user], f(text) AS out) the way plan
// annotation mints it: an "agg_"+func signature grouped by the key sigs.
func aggAnn(fn string) Annotation {
	b := baseAnn()
	keys := []*Sig{b.MustSig("user")}
	s := AggSig("agg_"+fn, "", []*Sig{b.MustSig("text")}, "", keys)
	return b.GroupBy([]string{"user"}, []Attr{{Name: "out", Sig: s}})
}

func TestMaintainableAccepts(t *testing.T) {
	cases := map[string]Annotation{
		"base scan":       baseAnn(),
		"projection":      baseAnn().Project("user", "text"),
		"filtered":        baseAnn().WithFilter(expr.NewCmp("user", expr.Gt, value.NewInt(2))),
		"count":           aggAnn("count"),
		"sum":             aggAnn("sum"),
		"min":             aggAnn("min"),
		"max":             aggAnn("max"),
		"filter then agg": baseAnn().WithFilter(expr.NewCmp("user", expr.Gt, value.NewInt(1))).GroupBy([]string{"user"}, nil),
	}
	for name, ann := range cases {
		if v := Maintainable(ann, "logs"); !v.OK {
			t.Errorf("%s rejected: %s", name, v.Reason)
		}
	}
}

func TestMaintainableRejects(t *testing.T) {
	b := baseAnn()
	other := NewBase("users", []string{"uid", "name"}, "uid")

	aggOut := aggAnn("sum")

	// a derived attribute consuming an aggregate output
	derived := aggOut.WithAttr("d", DerivedSig("scale", "", []*Sig{aggOut.MustSig("out")}))

	// an aggregate over an aggregate (re-aggregation of a grouped view)
	inner := aggOut.MustSig("out")
	nested := aggOut.GroupBy([]string{"user"},
		[]Attr{{Name: "n2", Sig: AggSig("agg_sum", "", []*Sig{inner}, "", []*Sig{aggOut.MustSig("user")})}})

	cases := []struct {
		name   string
		ann    Annotation
		table  string
		reason string
	}{
		{"limit taint", b.WithLimited(), "logs", "LIMIT"},
		{"avg", aggAnn("avg"), "logs", "non-distributive"},
		{"black-box agg UDF", aggAnn("SKETCH"), "logs", "non-distributive"},
		{"join", Join(b, other, "user", "uid"), "logs", "multi-source"},
		{"wrong table", b, "users", "lineage"},
		{"filter over aggregate", aggOut.WithFilter(expr.NewCmp("out", expr.Gt, value.NewFloat(1))), "logs", "filter over aggregate"},
		{"derived over aggregate", derived, "logs", "consumes aggregate"},
		{"nested aggregate", nested, "logs", "nested aggregate"},
	}
	for _, c := range cases {
		v := Maintainable(c.ann, c.table)
		if v.OK {
			t.Errorf("%s accepted, want rejection", c.name)
			continue
		}
		if !strings.Contains(v.Reason, c.reason) {
			t.Errorf("%s: reason %q does not mention %q", c.name, v.Reason, c.reason)
		}
	}
}
