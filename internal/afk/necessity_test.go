package afk_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"opportune"
	"opportune/internal/afk"
	"opportune/internal/hiveql"
	"opportune/internal/session"
)

// TestGuessCompleteNecessityEndToEnd is the execution-grounded necessity
// property for the §4.1 containment guess: build random view/query pairs
// where the query is, by construction, a compensation (extra filter,
// re-grouping, projection) of the view; execute both the direct plan over
// the base log and the compensation over the materialized view; whenever
// the two outputs agree — i.e. a rewrite demonstrably exists —
// GuessComplete over the compiled plan annotations must have accepted the
// pair. A rejection here is a false negative the paper's guarantee forbids.
//
// Unlike TestGuessCompleteNeverFalseNegative (which fabricates annotations
// directly), this goes through the full parse → plan → annotate pipeline,
// so it also catches annotation-propagation bugs that would starve the
// rewriter of valid candidates.
func TestGuessCompleteNecessityEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	for trial := 0; trial < 25; trial++ {
		viewCut := 20 + rng.Intn(70)  // view keeps val < viewCut
		compCut := 5 + rng.Intn(90)   // extra compensation filter
		doFilter := rng.Intn(2) == 0  // apply the extra filter?
		doGroup := rng.Intn(2) == 0   // re-aggregate by user?
		doProject := rng.Intn(2) == 0 // otherwise maybe project val away
		nRows := 30 + rng.Intn(40)

		sys := opportune.New()
		sys.SetRewriteMode(opportune.RewriteOff)
		rows := make([][]any, nRows)
		for i := range rows {
			rows[i] = []any{i, fmt.Sprintf("u%d", rng.Intn(5)), rng.Intn(7), rng.Intn(100)}
		}
		if err := sys.CreateTable("logs", "id", []string{"id", "user", "day", "val"}, rows); err != nil {
			t.Fatal(err)
		}

		// The view keeps the record key so re-grouping stays refinable.
		viewSQL := fmt.Sprintf("SELECT id, user, day, val FROM logs WHERE val < %d", viewCut)
		if _, err := sys.ExecOne("CREATE TABLE vw AS " + viewSQL); err != nil {
			t.Fatal(err)
		}

		// Assemble q over the base log and the same compensation over vw.
		where := fmt.Sprintf("WHERE val < %d", viewCut)
		compWhere := ""
		if doFilter {
			where += fmt.Sprintf(" AND val < %d", compCut)
			compWhere = fmt.Sprintf(" WHERE val < %d", compCut)
		}
		var qSQL, compSQL string
		switch {
		case doGroup:
			qSQL = fmt.Sprintf("SELECT user, SUM(val) AS s FROM logs %s GROUP BY user", where)
			compSQL = fmt.Sprintf("SELECT user, SUM(val) AS s FROM vw%s GROUP BY user", compWhere)
		case doProject:
			qSQL = fmt.Sprintf("SELECT user, val FROM logs %s", where)
			compSQL = fmt.Sprintf("SELECT user, val FROM vw%s", compWhere)
		default:
			qSQL = fmt.Sprintf("SELECT id, user, day, val FROM logs %s", where)
			compSQL = fmt.Sprintf("SELECT id, user, day, val FROM vw%s", compWhere)
		}

		direct, err := sys.ExecOne(qSQL)
		if err != nil {
			t.Fatalf("trial %d: direct %q: %v", trial, qSQL, err)
		}
		viaView, err := sys.ExecOne(compSQL)
		if err != nil {
			t.Fatalf("trial %d: compensated %q: %v", trial, compSQL, err)
		}
		if !sameRows(direct.Rows, viaView.Rows) {
			// The pair does not actually admit this rewrite — the
			// implication is vacuous (and our construction is broken).
			t.Fatalf("trial %d: compensation over view diverged from direct run\n q: %s\n comp: %s",
				trial, qSQL, compSQL)
		}

		// A rewrite exists; the guess must not reject the pair.
		s := sys.Session()
		qAnn, err := annotate(s, qSQL)
		if err != nil {
			t.Fatal(err)
		}
		vAnn, err := annotate(s, viewSQL)
		if err != nil {
			t.Fatal(err)
		}
		if !afk.GuessComplete(qAnn, vAnn, s.Cat.FDs) {
			t.Errorf("trial %d: false negative — rewrite exists but GuessComplete rejected\n q: %s\n v: %s",
				trial, qSQL, viewSQL)
		}
	}
}

// annotate parses and compiles one statement, returning the annotation of
// its final job — exactly what the rewriter hands to GuessComplete.
func annotate(s *session.Session, sql string) (afk.Annotation, error) {
	stmts, err := hiveql.Parse(sql)
	if err != nil {
		return afk.Annotation{}, err
	}
	w, err := s.Opt.Compile(stmts[0].Plan)
	if err != nil {
		return afk.Annotation{}, err
	}
	return w.Sink().Ann, nil
}

// sameRows compares two result row sets ignoring order.
func sameRows(a, b [][]any) bool {
	if len(a) != len(b) {
		return false
	}
	ka, kb := make([]string, len(a)), make([]string, len(b))
	for i := range a {
		ka[i] = fmt.Sprint(a[i])
	}
	for i := range b {
		kb[i] = fmt.Sprint(b[i])
	}
	sort.Strings(ka)
	sort.Strings(kb)
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}
