package afk

import (
	"fmt"
	"strings"
)

// Partitioning is the physical-layout property of a stored relation: its
// rows are hash-distributed over Parts buckets by the ordered key columns
// identified by Sigs (signature IDs, in key order — order matters, unlike
// the (A,F,K) sets, because compatibility is a *prefix* relation). The zero
// value means "layout unknown", the bottom of the property lattice.
//
// Identity by signature rather than column name makes the property survive
// projections and renames: a view that renames user_id still routes its
// rows by the same underlying attribute.
type Partitioning struct {
	Sigs  []string
	Parts int
}

// IsPartitioned reports whether the layout is known (non-bottom).
func (p Partitioning) IsPartitioned() bool { return len(p.Sigs) > 0 && p.Parts > 0 }

// Clone deep-copies the property (the Sigs slice is shared state otherwise).
func (p Partitioning) Clone() Partitioning {
	if len(p.Sigs) == 0 {
		return Partitioning{Parts: p.Parts}
	}
	return Partitioning{Sigs: append([]string(nil), p.Sigs...), Parts: p.Parts}
}

// Equal reports full equality: same ordered keys, same partition count.
func (p Partitioning) Equal(o Partitioning) bool {
	if p.Parts != o.Parts || len(p.Sigs) != len(o.Sigs) {
		return false
	}
	for i, s := range p.Sigs {
		if s != o.Sigs[i] {
			return false
		}
	}
	return true
}

// Canon renders the property canonically ("" for the unknown layout).
func (p Partitioning) Canon() string {
	if !p.IsPartitioned() {
		return ""
	}
	return fmt.Sprintf("part[%s]x%d", strings.Join(p.Sigs, ";"), p.Parts)
}

// PrefixMatch is the compatibility rule of the partitioning lattice: data
// hash-distributed on p routes every group of the ordered shuffle key
// keyIDs into exactly one partition iff p.Sigs is a non-empty prefix of
// keyIDs. (Equal prefix columns ⇒ equal partition hash; the remaining key
// columns only refine groups *within* a partition.) A relation partitioned
// on a non-prefix subset, on extra columns, or with unknown layout does not
// match — such a shuffle must still move data.
func (p Partitioning) PrefixMatch(keyIDs []string) bool {
	if !p.IsPartitioned() || len(p.Sigs) > len(keyIDs) {
		return false
	}
	for i, s := range p.Sigs {
		if s == "" || s != keyIDs[i] {
			return false
		}
	}
	return true
}
