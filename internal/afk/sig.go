// Package afk implements the paper's gray-box UDF model (§3): relations are
// annotated with (A, F, K) — attributes, applied filters, grouping keys —
// and every derived attribute carries a signature recording its
// dependencies on the input. The package provides the annotation algebra
// for the three local-function operation types, the semantic equivalence
// test, the GUESSCOMPLETE containment heuristic (§4.1), and the fix
// computation that feeds OPTCOST (§4.3).
package afk

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// registry interns every constructed signature by ID so that predicate
// references (which carry only IDs) can be resolved back to structural
// signatures, e.g. when checking that a compensation filter's attributes
// are producible from a view.
var registry sync.Map // map[string]*Sig

// Lookup resolves a signature ID to its structural signature, if any
// signature with that ID has been constructed in this process.
func Lookup(id string) (*Sig, bool) {
	v, ok := registry.Load(id)
	if !ok {
		return nil, false
	}
	return v.(*Sig), true
}

// Sig is the identity of an attribute: either a base log column or an
// attribute derived by a UDF (or relational aggregate), in which case its
// dependencies on the input are recorded (paper Fig 3b: "Sig. of new
// attribute sent_sum = {UDF_FOODIES, user_id, tweet_text, {f}, {k}}").
//
// Two attributes are the same attribute iff their signatures are equal.
// Signatures are immutable after construction; ID() is cached.
type Sig struct {
	// Base attribute: Dataset.Column.
	Dataset string
	Column  string

	// Derived attribute: UDF name, parameter fingerprint, and inputs.
	UDF    string
	Params string
	Inputs []*Sig

	// Agg marks attributes produced by a grouping local function (op type
	// 3), e.g. a per-user sum. Their values depend on group membership, so
	// the identity additionally includes the filter context and grouping
	// keys at creation time. Per-tuple derived attributes (op type 1) omit
	// these: filters only remove tuples and do not change surviving values.
	Agg     bool
	CtxF    string // canonical filter-set context (Agg only)
	GroupBy []*Sig // grouping keys at creation (Agg only)

	id string // cached canonical identity
}

// BaseSig constructs the signature of a raw log column.
func BaseSig(dataset, column string) *Sig {
	s := &Sig{Dataset: dataset, Column: column}
	s.id = "b:" + dataset + "." + column
	registry.Store(s.id, s)
	return s
}

// DerivedSig constructs a per-tuple derived attribute signature. Inputs
// keep their original (argument) order — needed to re-apply the UDF during
// compensation — while the ID canonicalizes over a sorted copy, so argument
// order does not change identity.
func DerivedSig(udf, params string, inputs []*Sig) *Sig {
	s := &Sig{UDF: udf, Params: params, Inputs: append([]*Sig(nil), inputs...)}
	s.id = s.computeID()
	registry.Store(s.id, s)
	return s
}

// AggSig constructs a per-group derived attribute signature; ctxF is the
// canonical filter-set context and groupBy the grouping keys at creation.
func AggSig(udf, params string, inputs []*Sig, ctxF string, groupBy []*Sig) *Sig {
	s := &Sig{
		UDF: udf, Params: params, Inputs: append([]*Sig(nil), inputs...),
		Agg: true, CtxF: ctxF, GroupBy: append([]*Sig(nil), groupBy...),
	}
	s.id = s.computeID()
	registry.Store(s.id, s)
	return s
}

func sortedSigs(in []*Sig) []*Sig {
	out := append([]*Sig(nil), in...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// IsBase reports whether this is a raw log column.
func (s *Sig) IsBase() bool { return s.UDF == "" }

// ID returns the canonical identity string.
func (s *Sig) ID() string { return s.id }

func (s *Sig) computeID() string {
	var sb strings.Builder
	sb.WriteString("d:")
	sb.WriteString(s.UDF)
	if s.Params != "" {
		sb.WriteString("[")
		sb.WriteString(s.Params)
		sb.WriteString("]")
	}
	sb.WriteString("(")
	for i, in := range sortedSigs(s.Inputs) {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(in.ID())
	}
	sb.WriteString(")")
	if s.Agg {
		sb.WriteString("|F=")
		sb.WriteString(s.CtxF)
		sb.WriteString("|K=")
		for i, k := range sortedSigs(s.GroupBy) {
			if i > 0 {
				sb.WriteString(",")
			}
			sb.WriteString(k.ID())
		}
	}
	return sb.String()
}

// String renders a short human-readable form.
func (s *Sig) String() string {
	if s.IsBase() {
		return s.Dataset + "." + s.Column
	}
	ins := make([]string, len(s.Inputs))
	for i, in := range s.Inputs {
		ins[i] = in.String()
	}
	kind := ""
	if s.Agg {
		kind = "agg "
	}
	return fmt.Sprintf("%s%s(%s)", kind, s.UDF, strings.Join(ins, ","))
}

// SigSet is a set of signatures keyed by ID.
type SigSet map[string]*Sig

// NewSigSet builds a set.
func NewSigSet(sigs ...*Sig) SigSet {
	s := make(SigSet, len(sigs))
	for _, x := range sigs {
		s[x.ID()] = x
	}
	return s
}

// Add inserts a signature.
func (ss SigSet) Add(s *Sig) SigSet { ss[s.ID()] = s; return ss }

// Has reports membership.
func (ss SigSet) Has(s *Sig) bool { _, ok := ss[s.ID()]; return ok }

// HasID reports membership by ID.
func (ss SigSet) HasID(id string) bool { _, ok := ss[id]; return ok }

// Clone copies the set.
func (ss SigSet) Clone() SigSet {
	c := make(SigSet, len(ss))
	for k, v := range ss {
		c[k] = v
	}
	return c
}

// Equal reports set equality by IDs.
func (ss SigSet) Equal(o SigSet) bool {
	if len(ss) != len(o) {
		return false
	}
	for k := range ss {
		if _, ok := o[k]; !ok {
			return false
		}
	}
	return true
}

// Subset reports ss ⊆ o.
func (ss SigSet) Subset(o SigSet) bool {
	for k := range ss {
		if _, ok := o[k]; !ok {
			return false
		}
	}
	return true
}

// IDs returns the sorted member IDs.
func (ss SigSet) IDs() []string {
	out := make([]string, 0, len(ss))
	for k := range ss {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Sigs returns members sorted by ID.
func (ss SigSet) Sigs() []*Sig {
	ids := ss.IDs()
	out := make([]*Sig, len(ids))
	for i, id := range ids {
		out[i] = ss[id]
	}
	return out
}

// Canon renders the set canonically.
func (ss SigSet) Canon() string { return "{" + strings.Join(ss.IDs(), ";") + "}" }
