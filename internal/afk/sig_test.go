package afk

import (
	"testing"
)

func TestBaseSig(t *testing.T) {
	s := BaseSig("twtr", "user_id")
	if !s.IsBase() {
		t.Error("base sig not base")
	}
	if s.ID() != "b:twtr.user_id" {
		t.Errorf("ID = %q", s.ID())
	}
	if s.String() != "twtr.user_id" {
		t.Errorf("String = %q", s.String())
	}
	if BaseSig("twtr", "user_id").ID() != s.ID() {
		t.Error("same base column, different IDs")
	}
	if BaseSig("twtr", "text").ID() == s.ID() {
		t.Error("different columns, same ID")
	}
}

func TestDerivedSigInputOrderIndependent(t *testing.T) {
	a := BaseSig("twtr", "a")
	b := BaseSig("twtr", "b")
	s1 := DerivedSig("f", "", []*Sig{a, b})
	s2 := DerivedSig("f", "", []*Sig{b, a})
	if s1.ID() != s2.ID() {
		t.Error("input order changed identity")
	}
	if s1.IsBase() {
		t.Error("derived sig is base")
	}
}

func TestDerivedSigParamsMatter(t *testing.T) {
	a := BaseSig("twtr", "a")
	s1 := DerivedSig("f", "th=0.5", []*Sig{a})
	s2 := DerivedSig("f", "th=0.9", []*Sig{a})
	if s1.ID() == s2.ID() {
		t.Error("different params, same identity")
	}
}

func TestAggSigContextMatters(t *testing.T) {
	a := BaseSig("twtr", "text")
	u := BaseSig("twtr", "user_id")
	s1 := AggSig("sum_sent", "", []*Sig{a}, "{}", []*Sig{u})
	s2 := AggSig("sum_sent", "", []*Sig{a}, "{f1}", []*Sig{u})
	if s1.ID() == s2.ID() {
		t.Error("different filter context, same identity for aggregate")
	}
	s3 := AggSig("sum_sent", "", []*Sig{a}, "{}", []*Sig{a})
	if s1.ID() == s3.ID() {
		t.Error("different group keys, same identity for aggregate")
	}
	// Per-tuple derived attr is NOT context sensitive.
	d1 := DerivedSig("score", "", []*Sig{a})
	d2 := DerivedSig("score", "", []*Sig{a})
	if d1.ID() != d2.ID() {
		t.Error("per-tuple derived attrs differ")
	}
	if s1.String() == "" || d1.String() == "" {
		t.Error("empty String")
	}
}

func TestNestedDerived(t *testing.T) {
	a := BaseSig("twtr", "text")
	tok := DerivedSig("tokenize", "", []*Sig{a})
	sent := DerivedSig("sentiment", "", []*Sig{tok})
	sent2 := DerivedSig("sentiment", "", []*Sig{DerivedSig("tokenize", "", []*Sig{a})})
	if sent.ID() != sent2.ID() {
		t.Error("structurally equal nested sigs differ")
	}
}

func TestSigSet(t *testing.T) {
	a, b, c := BaseSig("d", "a"), BaseSig("d", "b"), BaseSig("d", "c")
	s := NewSigSet(a, b)
	if !s.Has(a) || s.Has(c) {
		t.Error("membership wrong")
	}
	if !s.HasID(a.ID()) {
		t.Error("HasID wrong")
	}
	if !s.Subset(NewSigSet(a, b, c)) {
		t.Error("Subset false negative")
	}
	if NewSigSet(a, c).Subset(s) {
		t.Error("Subset false positive")
	}
	if !s.Equal(NewSigSet(b, a)) {
		t.Error("Equal order-sensitive")
	}
	if s.Equal(NewSigSet(a)) {
		t.Error("Equal on different sizes")
	}
	cl := s.Clone().Add(c)
	if s.Has(c) || !cl.Has(c) {
		t.Error("Clone aliases")
	}
	ids := NewSigSet(c, a, b).IDs()
	if len(ids) != 3 || ids[0] > ids[1] || ids[1] > ids[2] {
		t.Errorf("IDs not sorted: %v", ids)
	}
	sigs := NewSigSet(c, a).Sigs()
	if len(sigs) != 2 || sigs[0].ID() > sigs[1].ID() {
		t.Error("Sigs not sorted")
	}
	if NewSigSet(a, b).Canon() != NewSigSet(b, a).Canon() {
		t.Error("Canon order-sensitive")
	}
}

func TestFDClosure(t *testing.T) {
	f := NewFDSet()
	f.Add([]string{"tweet_id"}, "user_id")
	f.Add([]string{"tweet_id"}, "text")
	f.Add([]string{"user_id", "text"}, "score")
	cl := f.Closure([]string{"tweet_id"})
	for _, want := range []string{"tweet_id", "user_id", "text", "score"} {
		if !cl[want] {
			t.Errorf("closure missing %s", want)
		}
	}
	if f.Closure([]string{"user_id"})["text"] {
		t.Error("closure overshoot")
	}
	if !f.Determines([]string{"tweet_id"}, "score") {
		t.Error("Determines false negative")
	}
	if f.Determines([]string{"text"}, "user_id") {
		t.Error("Determines false positive")
	}
	// duplicate add ignored
	n := f.Len()
	f.Add([]string{"tweet_id"}, "user_id")
	f.Add([]string{"user_id", "text"}, "score")
	if f.Len() != n {
		t.Error("duplicate FD added")
	}
	c := f.Clone()
	c.Add([]string{"x"}, "y")
	if f.Len() == c.Len() {
		t.Error("Clone aliases")
	}
}

func TestFDKeyHelper(t *testing.T) {
	f := NewFDSet()
	f.AddKey("k", []string{"k", "a", "b"})
	if f.Len() != 2 { // k->k skipped
		t.Errorf("Len = %d", f.Len())
	}
	if !f.Determines([]string{"k"}, "b") {
		t.Error("AddKey missing dependency")
	}
}

func TestRefines(t *testing.T) {
	tid := BaseSig("twtr", "tweet_id")
	uid := BaseSig("twtr", "user_id")
	day := BaseSig("twtr", "day")
	f := NewFDSet()
	f.AddKey(tid.ID(), []string{uid.ID(), day.ID()})

	// record key refines any derivable grouping
	if !f.Refines(NewSigSet(tid), NewSigSet(uid)) {
		t.Error("tweet_id should refine user_id")
	}
	// user grouping does not refine (user, day)
	if f.Refines(NewSigSet(uid), NewSigSet(uid, day)) {
		t.Error("user_id should not refine (user_id, day)")
	}
	// (user, day) refines user
	if !f.Refines(NewSigSet(uid, day), NewSigSet(uid)) {
		t.Error("(user_id, day) should refine user_id")
	}
	// identical keys refine
	if !f.Refines(NewSigSet(uid), NewSigSet(uid)) {
		t.Error("same keys should refine")
	}
	// anything refines the global partition
	if !f.Refines(NewSigSet(uid), NewSigSet()) {
		t.Error("grouped data should refine global")
	}
	// global refines only global
	if f.Refines(NewSigSet(), NewSigSet(uid)) {
		t.Error("global should not refine user grouping")
	}
	if !f.Refines(NewSigSet(), NewSigSet()) {
		t.Error("global should refine global")
	}
}
