// Package cost implements the system's cost model (paper §4.2).
//
// It is the MRShare-style "data" cost model extended in a limited way to
// cost UDFs: each MR job costs the sum of reading+mapping (Cm), sort/copy
// (Cs), transfer (Ct), aggregate+reduce (Cr), and materialization (Cw).
// Local functions written as arbitrary user code get a per-UDF scalar
// multiplier on the CPU portion of Cm/Cr, calibrated empirically by running
// the UDF on a 1% sample the first time it is registered (see internal/udf).
//
// A local function that performs several of the model's three operation
// types is costed at the *cheapest* of them — the non-subsumable cost
// property (Definition 1) — which is what makes OPTCOST a true lower bound.
package cost

import (
	"fmt"
	"math"
)

// OpType enumerates the three operation types a local function may perform
// (paper §3.1).
type OpType uint8

const (
	// OpAttr adds or discards attributes (operation type 1).
	OpAttr OpType = iota
	// OpFilter discards tuples by applying filters (operation type 2).
	OpFilter
	// OpGroup groups tuples on a common key (operation type 3).
	OpGroup
)

// String names the op type.
func (t OpType) String() string {
	switch t {
	case OpAttr:
		return "attr"
	case OpFilter:
		return "filter"
	case OpGroup:
		return "group"
	default:
		return fmt.Sprintf("op(%d)", uint8(t))
	}
}

// Params holds the calibrated constants of the cost model. Rates are in
// bytes per second; CPU baselines are in seconds per tuple for a
// unit-scalar local function of each operation type.
type Params struct {
	ReadRate    float64 // HDFS sequential read, bytes/s (Cm data part)
	WriteRate   float64 // HDFS write incl. replication, bytes/s (Cw)
	ShuffleRate float64 // network transfer, bytes/s (Ct)
	SortFactor  float64 // seconds per byte for map-side sort/spill (Cs)

	// CPUBaseline[t] is seconds/tuple for operation type t at scalar 1.
	// Grouping is the most expensive baseline (hashing + state), attribute
	// manipulation intermediate, filtering cheapest.
	CPUBaseline [3]float64

	// SplitRows is the number of input rows per map task (split); map-side
	// combiners aggregate within a split before the shuffle.
	SplitRows int64

	// ReduceTasks is R, the number of reduce partitions the engine hash-
	// partitions each shuffle into and reduces concurrently; 0 lets the
	// engine pick its worker-pool size. R never changes job outputs or the
	// modeled seconds — JobCost models the cluster's aggregate work — only
	// local wall-clock parallelism.
	ReduceTasks int

	// Task-level recovery constants (all in simulated seconds or pure
	// ratios, so recovery policy never couples accounting to wall-clock).

	// TaskBackoffBase is the simulated backoff before the first per-task
	// retry; retry n waits TaskBackoffBase × TaskBackoffFactor^(n-1).
	TaskBackoffBase   float64
	TaskBackoffFactor float64

	// SpeculationLagFactor schedules the speculative copy of a straggling
	// task: the copy launches lag = factor × nominal-task-cost simulated
	// seconds after the original started (Hadoop waits for a task to fall
	// behind its peers before speculating).
	SpeculationLagFactor float64

	// SpeculationThreshold is the minimum observed slowdown factor that
	// triggers a speculative copy; below it the straggler just runs slow.
	SpeculationThreshold float64

	// DefaultPartitions is the bucket count P used when a relation is
	// declared hash-partitioned without an explicit count. It is a layout
	// property, deliberately independent of ReduceTasks and the worker
	// pool: partition identity must not change when the cluster is resized,
	// or the shuffle-elimination match would silently rot.
	DefaultPartitions int
}

// DefaultParams returns constants modeled after a small Hadoop-era cluster
// node: ~80MB/s scan, ~50MB/s write (3-way replication amortized), ~40MB/s
// shuffle. They need not be accurate — the cost model's job is to rank
// plans (paper §4.2) — but they are the single source for both the
// optimizer's estimates and the engine's simulated wall-clock, so estimated
// and "measured" times are commensurable.
func DefaultParams() Params {
	return Params{
		ReadRate:    80e6,
		WriteRate:   50e6,
		ShuffleRate: 40e6,
		SortFactor:  1.0 / 60e6,
		CPUBaseline: [3]float64{
			OpAttr:   0.5e-6,
			OpFilter: 0.2e-6,
			OpGroup:  1.0e-6,
		},
		SplitRows:            4096,
		TaskBackoffBase:      1.0,
		TaskBackoffFactor:    2.0,
		SpeculationLagFactor: 1.0,
		SpeculationThreshold: 2.0,
		DefaultPartitions:    32,
	}
}

// LocalFn describes one local function for costing purposes: the set of
// operation types it performs and its calibrated scalar multiplier.
type LocalFn struct {
	Ops    []OpType
	Scalar float64 // >= 1 after calibration; 1 for plain relational ops
}

// CPUSecondsPerTuple returns the per-tuple CPU cost of the local function
// under the non-subsumable cost property: the cheapest operation type it
// performs, scaled by the calibrated multiplier.
func (p Params) CPUSecondsPerTuple(lf LocalFn) float64 {
	if len(lf.Ops) == 0 {
		return 0
	}
	min := math.Inf(1)
	for _, t := range lf.Ops {
		if b := p.CPUBaseline[t]; b < min {
			min = b
		}
	}
	s := lf.Scalar
	if s < 1 {
		s = 1
	}
	return min * s
}

// FnsSeconds is the simulated CPU seconds of a local-function chain over
// rows. The accumulation order — per-function rows×cost terms summed left
// to right — is the one JobCost uses for the Cm/Cr folds, and the engine's
// per-phase simulation delegates here, so fused execution (which runs the
// chain as one specialized function) prices bit-identically to interpreted
// stage-at-a-time execution: fusion changes wall-clock, never accounting.
func (p Params) FnsSeconds(fns []LocalFn, rows int64) float64 {
	var s float64
	for _, lf := range fns {
		s += float64(rows) * p.CPUSecondsPerTuple(lf)
	}
	return s
}

// JobSpec describes one MR job's data volumes and compute, either estimated
// (optimizer) or measured (engine).
type JobSpec struct {
	InputBytes int64 // bytes read from HDFS
	InputRows  int64 // rows fed to map local functions

	MapFns []LocalFn // map-side local functions, applied in sequence

	// Map-side combining: CombineFns run over CombineRows before the
	// shuffle (zero when the job has no combiner).
	CombineFns  []LocalFn
	CombineRows int64

	ShuffleBytes int64 // bytes sorted+spilled+transferred (0 for map-only)
	ShuffleRows  int64 // rows entering reduce

	// LocalShuffleBytes is the portion of ShuffleBytes that is already
	// co-located with its reducer because the input's partitioning prefix-
	// matches the shuffle key: those bytes are still sorted and grouped
	// (Cs, Cr unchanged) but never cross the network, so only the transfer
	// term Ct is discounted.
	LocalShuffleBytes int64

	ReduceFns []LocalFn // reduce-side local functions (empty for map-only)

	OutputBytes int64 // bytes materialized to HDFS
}

// TransferBytes is the portion of the shuffle that actually crosses the
// network: ShuffleBytes minus the co-located LocalShuffleBytes, clamped to
// [0, ShuffleBytes] so a stale or over-reported local count can never make
// a job look better than shuffle-free.
func (s JobSpec) TransferBytes() int64 {
	local := s.LocalShuffleBytes
	if local < 0 {
		local = 0
	}
	if local > s.ShuffleBytes {
		local = s.ShuffleBytes
	}
	return s.ShuffleBytes - local
}

// Breakdown is a job cost split into the model's five components (seconds).
type Breakdown struct {
	Cm, Cs, Ct, Cr, Cw float64
}

// Total sums the components.
func (b Breakdown) Total() float64 { return b.Cm + b.Cs + b.Ct + b.Cr + b.Cw }

// Add accumulates another breakdown.
func (b Breakdown) Add(o Breakdown) Breakdown {
	return Breakdown{b.Cm + o.Cm, b.Cs + o.Cs, b.Ct + o.Ct, b.Cr + o.Cr, b.Cw + o.Cw}
}

// String renders the breakdown.
func (b Breakdown) String() string {
	return fmt.Sprintf("Cm=%.3f Cs=%.3f Ct=%.3f Cr=%.3f Cw=%.3f total=%.3f",
		b.Cm, b.Cs, b.Ct, b.Cr, b.Cw, b.Total())
}

// JobCost computes the cost breakdown of one MR job.
func (p Params) JobCost(s JobSpec) Breakdown {
	var b Breakdown
	b.Cm = float64(s.InputBytes) / p.ReadRate
	for _, lf := range s.MapFns {
		b.Cm += float64(s.InputRows) * p.CPUSecondsPerTuple(lf)
	}
	for _, lf := range s.CombineFns {
		b.Cm += float64(s.CombineRows) * p.CPUSecondsPerTuple(lf)
	}
	b.Cs = float64(s.ShuffleBytes) * p.SortFactor
	b.Ct = float64(s.TransferBytes()) / p.ShuffleRate
	for _, lf := range s.ReduceFns {
		b.Cr += float64(s.ShuffleRows) * p.CPUSecondsPerTuple(lf)
	}
	b.Cw = float64(s.OutputBytes) / p.WriteRate
	return b
}

// ScanSeconds is the read component of Cm alone: the time to scan bytes
// from HDFS at the calibrated read rate. It is the unit of account for
// MRShare-style shared scans, where one physical scan feeds n consumers.
func (p Params) ScanSeconds(bytes int64) float64 {
	return float64(bytes) / p.ReadRate
}

// SharedScanSavings is the simulated seconds an n-consumer shared scan
// saves over n independent scans of the same input: the scan is paid once
// instead of n times, so the saving is (n-1) scans. Per-consumer map CPU,
// combine, shuffle, reduce, and write costs are unaffected — MRShare's
// grouping only amortizes Cm's read term.
func (p Params) SharedScanSavings(bytes int64, consumers int) float64 {
	if consumers <= 1 {
		return 0
	}
	return float64(consumers-1) * p.ScanSeconds(bytes)
}

// MaintenanceSpec describes one incremental view-maintenance step: the
// delta pipeline has already been costed as an ordinary job (JobCost over
// the appended rows only); this covers the merge that folds the delta
// output into the stored view.
type MaintenanceSpec struct {
	ViewBytes   int64 // current stored view, read as merge input
	DeltaBytes  int64 // delta pipeline output, read as merge input
	MergedBytes int64 // refreshed view, written back
	MergedRows  int64 // rows touched by the key-merge
}

// MaintenanceCost models the merge step of incremental maintenance: both
// merge inputs are scanned (Cm), each output row pays the grouping CPU
// baseline for the key comparison/fold (Cr), and the refreshed view is
// rewritten in full (Cw). No shuffle — the merge is a local sorted-run
// merge, which is what makes maintenance cheaper than recomputation.
func (p Params) MaintenanceCost(s MaintenanceSpec) Breakdown {
	var b Breakdown
	b.Cm = float64(s.ViewBytes+s.DeltaBytes) / p.ReadRate
	b.Cr = float64(s.MergedRows) * p.CPUBaseline[OpGroup]
	b.Cw = float64(s.MergedBytes) / p.WriteRate
	return b
}

// Stats are simple cardinality statistics used to estimate job volumes.
type Stats struct {
	Rows  int64
	Bytes int64
}

// AvgRowBytes returns the average encoded row width, defaulting to 64 bytes
// when unknown.
func (s Stats) AvgRowBytes() float64 {
	if s.Rows <= 0 || s.Bytes <= 0 {
		return 64
	}
	return float64(s.Bytes) / float64(s.Rows)
}

// Scale returns stats scaled by a row-count selectivity, preserving average
// row width.
func (s Stats) Scale(sel float64) Stats {
	if sel < 0 {
		sel = 0
	}
	rows := int64(float64(s.Rows) * sel)
	if s.Rows > 0 && rows == 0 && sel > 0 {
		rows = 1
	}
	return Stats{Rows: rows, Bytes: int64(float64(rows) * s.AvgRowBytes())}
}
