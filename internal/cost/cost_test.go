package cost

import (
	"testing"
	"testing/quick"
)

func TestOpTypeString(t *testing.T) {
	if OpAttr.String() != "attr" || OpFilter.String() != "filter" || OpGroup.String() != "group" {
		t.Error("op type names wrong")
	}
	if OpType(9).String() != "op(9)" {
		t.Error("unknown op type name")
	}
}

func TestCPUSecondsPerTupleNonSubsumable(t *testing.T) {
	p := DefaultParams()
	// A local function doing all three op types costs the cheapest (filter).
	all := LocalFn{Ops: []OpType{OpAttr, OpFilter, OpGroup}, Scalar: 1}
	if got, want := p.CPUSecondsPerTuple(all), p.CPUBaseline[OpFilter]; got != want {
		t.Errorf("non-subsumable cost = %g, want cheapest %g", got, want)
	}
	// Single op type costs its own baseline.
	if got := p.CPUSecondsPerTuple(LocalFn{Ops: []OpType{OpGroup}, Scalar: 1}); got != p.CPUBaseline[OpGroup] {
		t.Errorf("group cost = %g", got)
	}
	// Scalar scales up.
	s3 := p.CPUSecondsPerTuple(LocalFn{Ops: []OpType{OpAttr}, Scalar: 3})
	if s3 != 3*p.CPUBaseline[OpAttr] {
		t.Errorf("scalar not applied: %g", s3)
	}
	// Scalar below 1 clamps to 1 (calibration noise must not make UDFs
	// cheaper than relational baseline).
	if got := p.CPUSecondsPerTuple(LocalFn{Ops: []OpType{OpAttr}, Scalar: 0.5}); got != p.CPUBaseline[OpAttr] {
		t.Errorf("sub-1 scalar not clamped: %g", got)
	}
	// Empty op set costs nothing.
	if p.CPUSecondsPerTuple(LocalFn{}) != 0 {
		t.Error("empty local function has cost")
	}
}

func TestNonSubsumablePropertyHolds(t *testing.T) {
	// Property (Definition 1): for any nonempty subset S of op types, the
	// cost of a local function performing S is <= the cost of each single
	// op in S (at the same scalar).
	p := DefaultParams()
	f := func(mask uint8, scalarRaw uint8) bool {
		mask = mask%7 + 1 // nonempty subset of 3 ops
		scalar := 1 + float64(scalarRaw%10)
		var ops []OpType
		for t := OpType(0); t < 3; t++ {
			if mask&(1<<t) != 0 {
				ops = append(ops, t)
			}
		}
		combined := p.CPUSecondsPerTuple(LocalFn{Ops: ops, Scalar: scalar})
		for _, op := range ops {
			single := p.CPUSecondsPerTuple(LocalFn{Ops: []OpType{op}, Scalar: scalar})
			if combined > single {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJobCostComponents(t *testing.T) {
	p := DefaultParams()
	spec := JobSpec{
		InputBytes:   int64(p.ReadRate), // exactly 1 second of read
		InputRows:    1000,
		MapFns:       []LocalFn{{Ops: []OpType{OpAttr}, Scalar: 2}},
		ShuffleBytes: int64(p.ShuffleRate), // 1 second transfer
		ShuffleRows:  500,
		ReduceFns:    []LocalFn{{Ops: []OpType{OpGroup}, Scalar: 1}},
		OutputBytes:  int64(p.WriteRate), // 1 second write
	}
	b := p.JobCost(spec)
	wantCm := 1 + 1000*2*p.CPUBaseline[OpAttr]
	if !approx(b.Cm, wantCm) {
		t.Errorf("Cm = %g, want %g", b.Cm, wantCm)
	}
	if !approx(b.Ct, 1) {
		t.Errorf("Ct = %g", b.Ct)
	}
	if !approx(b.Cw, 1) {
		t.Errorf("Cw = %g", b.Cw)
	}
	wantCr := 500 * p.CPUBaseline[OpGroup]
	if !approx(b.Cr, wantCr) {
		t.Errorf("Cr = %g, want %g", b.Cr, wantCr)
	}
	wantCs := float64(spec.ShuffleBytes) * p.SortFactor
	if !approx(b.Cs, wantCs) {
		t.Errorf("Cs = %g, want %g", b.Cs, wantCs)
	}
	if !approx(b.Total(), b.Cm+b.Cs+b.Ct+b.Cr+b.Cw) {
		t.Error("Total != sum of components")
	}
}

func TestJobCostMapOnly(t *testing.T) {
	p := DefaultParams()
	b := p.JobCost(JobSpec{InputBytes: 1e6, InputRows: 10, OutputBytes: 1e6})
	if b.Cs != 0 || b.Ct != 0 || b.Cr != 0 {
		t.Errorf("map-only job has shuffle/reduce cost: %v", b)
	}
	if b.Cm <= 0 || b.Cw <= 0 {
		t.Errorf("map-only job missing read/write cost: %v", b)
	}
}

func TestBreakdownAdd(t *testing.T) {
	a := Breakdown{1, 2, 3, 4, 5}
	b := Breakdown{10, 20, 30, 40, 50}
	s := a.Add(b)
	if s != (Breakdown{11, 22, 33, 44, 55}) {
		t.Errorf("Add = %v", s)
	}
	if s.Total() != 165 {
		t.Errorf("Total = %g", s.Total())
	}
	if s.String() == "" {
		t.Error("empty String")
	}
}

func TestStats(t *testing.T) {
	s := Stats{Rows: 100, Bytes: 6400}
	if s.AvgRowBytes() != 64 {
		t.Errorf("AvgRowBytes = %g", s.AvgRowBytes())
	}
	if (Stats{}).AvgRowBytes() != 64 {
		t.Error("default row width wrong")
	}
	half := s.Scale(0.5)
	if half.Rows != 50 || half.Bytes != 3200 {
		t.Errorf("Scale(0.5) = %+v", half)
	}
	// tiny selectivity keeps at least one row
	tiny := s.Scale(0.0001)
	if tiny.Rows != 1 {
		t.Errorf("Scale(0.0001).Rows = %d", tiny.Rows)
	}
	if s.Scale(0).Rows != 0 {
		t.Error("Scale(0) should be empty")
	}
	if s.Scale(-1).Rows != 0 {
		t.Error("negative selectivity should clamp to 0")
	}
}

func approx(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9*(1+abs(a)+abs(b))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestFnsSecondsFoldOrder pins FnsSeconds to the exact left-to-right
// rows×cost fold the engine's phase simulation (and JobCost's Cm/Cr terms)
// uses. Fused batch execution prices its whole chain through this one
// function, so bit-identity here is what keeps fusion invisible to every
// sim-seconds counter.
func TestFnsSecondsFoldOrder(t *testing.T) {
	p := DefaultParams()
	fns := []LocalFn{
		{Ops: []OpType{OpAttr}, Scalar: 1.7},
		{Ops: []OpType{OpFilter, OpAttr}, Scalar: 3.3},
		{Ops: []OpType{OpGroup}, Scalar: 0.9},
		{Ops: []OpType{OpAttr}, Scalar: 10},
	}
	const rows = 123457
	var want float64
	for _, lf := range fns {
		want += float64(rows) * p.CPUSecondsPerTuple(lf)
	}
	if got := p.FnsSeconds(fns, rows); got != want {
		t.Errorf("FnsSeconds = %v, fold order gives %v (must be bit-identical)", got, want)
	}
	if got := p.FnsSeconds(nil, rows); got != 0 {
		t.Errorf("FnsSeconds(nil) = %v, want 0", got)
	}
	if got := p.FnsSeconds(fns, 0); got != 0 {
		t.Errorf("FnsSeconds(fns, 0) = %v, want 0", got)
	}
}
