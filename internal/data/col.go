package data

import "opportune/internal/value"

// Col is a type-specialized column buffer for the fused batch executor: one
// UDF-output column spanning the rows of one map split. Slots are addressed
// by row index within the split, and only slots of currently-selected rows
// are ever written or read, so the buffer never needs compaction when the
// selection vector shrinks.
//
// Storage starts kind-less and specializes to a fixed-width int64/float64
// (or string) array on the first write; the moment a second kind appears it
// degrades to generic value.V storage. Homogeneous columns — the common
// case for map-UDF outputs — therefore pay no per-value boxing, while mixed
// or null-bearing columns stay exact.
type Col struct {
	mode colMode
	n    int

	ints   []int64
	floats []float64
	strs   []string
	vals   []value.V
}

type colMode uint8

const (
	colUnset colMode = iota
	colInt
	colFloat
	colStr
	colGeneric
)

// Reset prepares the column for n slots, retaining backing capacity. The
// kind is re-derived from the first Set after a Reset.
func (c *Col) Reset(n int) {
	c.mode = colUnset
	c.n = n
}

// Len returns the slot count set by Reset.
func (c *Col) Len() int { return c.n }

// Set stores v at slot i. The first Set after a Reset picks the storage
// kind; a later value of a different kind degrades the column to generic
// storage (copying the already-written typed slots) so no information is
// lost.
func (c *Col) Set(i int, v value.V) {
	if c.mode == colUnset {
		c.specialize(v.Kind())
	}
	switch c.mode {
	case colInt:
		if v.Kind() == value.Int {
			c.ints[i] = v.Int()
			return
		}
		c.degrade()
	case colFloat:
		if v.Kind() == value.Float {
			c.floats[i] = v.Float()
			return
		}
		c.degrade()
	case colStr:
		if v.Kind() == value.Str {
			c.strs[i] = v.Str()
			return
		}
		c.degrade()
	}
	c.vals[i] = v
}

// Get returns the value at slot i. Reading a slot that was never written
// returns the typed zero (specialized modes) or Null (unset/generic) — the
// fused executor only reads slots it wrote, so this is never observable.
func (c *Col) Get(i int) value.V {
	switch c.mode {
	case colInt:
		return value.NewInt(c.ints[i])
	case colFloat:
		return value.NewFloat(c.floats[i])
	case colStr:
		return value.NewStr(c.strs[i])
	case colGeneric:
		return c.vals[i]
	}
	return value.NullV
}

// specialize commits the column to the storage kind of its first value.
func (c *Col) specialize(k value.Kind) {
	switch k {
	case value.Int:
		c.mode = colInt
		c.ints = sized(c.ints, c.n)
	case value.Float:
		c.mode = colFloat
		c.floats = sized(c.floats, c.n)
	case value.Str:
		c.mode = colStr
		c.strs = sized(c.strs, c.n)
	default:
		c.mode = colGeneric
		c.vals = sized(c.vals, c.n)
	}
}

// degrade switches to generic storage, copying every typed slot (unwritten
// slots carry typed zeros, which are never read — see Get).
func (c *Col) degrade() {
	c.vals = sized(c.vals, c.n)
	switch c.mode {
	case colInt:
		for i := 0; i < c.n; i++ {
			c.vals[i] = value.NewInt(c.ints[i])
		}
	case colFloat:
		for i := 0; i < c.n; i++ {
			c.vals[i] = value.NewFloat(c.floats[i])
		}
	case colStr:
		for i := 0; i < c.n; i++ {
			c.vals[i] = value.NewStr(c.strs[i])
		}
	}
	c.mode = colGeneric
}

// IntAcc commits the column to int64 storage and returns n zeroed slots of
// its backing array. The fused agg kernels use Acc views as typed
// accumulator columns (one slot per dense group id); unlike Set-driven use,
// an accumulator is read-modify-written directly through the returned
// slice. Numeric capacity is retained dirty across pooling (Release only
// truncates it), so the view zeroes its slots explicitly.
func (c *Col) IntAcc(n int) []int64 {
	c.mode = colInt
	c.n = n
	c.ints = sized(c.ints, n)
	a := c.ints
	for i := range a {
		a[i] = 0
	}
	return a
}

// FloatAcc is IntAcc for float64 accumulators.
func (c *Col) FloatAcc(n int) []float64 {
	c.mode = colFloat
	c.n = n
	c.floats = sized(c.floats, n)
	a := c.floats
	for i := range a {
		a[i] = 0
	}
	return a
}

// ValAcc is IntAcc for generic value.V accumulators (MIN/MAX extrema, whose
// running value keeps the raw input kind). Slots start Null, matching the
// fold's "no non-null value seen yet" state.
func (c *Col) ValAcc(n int) []value.V {
	c.mode = colGeneric
	c.n = n
	c.vals = sized(c.vals, n)
	a := c.vals
	for i := range a {
		a[i] = value.NullV
	}
	return a
}

// Release zeroes every reference the column holds and empties it. Pool
// hygiene: a pooled column must never alias strings or values across tasks,
// so the reference-bearing arrays are cleared across their full capacity —
// numeric arrays carry no references and only shrink.
func (c *Col) Release() {
	c.strs = c.strs[:cap(c.strs)]
	clear(c.strs)
	c.strs = c.strs[:0]
	c.vals = c.vals[:cap(c.vals)]
	clear(c.vals)
	c.vals = c.vals[:0]
	c.ints = c.ints[:0]
	c.floats = c.floats[:0]
	c.mode = colUnset
	c.n = 0
}

// Cap returns the largest backing-array capacity, the retain-cap input for
// pooling decisions.
func (c *Col) Cap() int {
	m := cap(c.ints)
	if cap(c.floats) > m {
		m = cap(c.floats)
	}
	if cap(c.strs) > m {
		m = cap(c.strs)
	}
	if cap(c.vals) > m {
		m = cap(c.vals)
	}
	return m
}

// sized returns s with exactly n addressable slots, reusing capacity. Grown
// arrays are freshly allocated (zeroed); retained arrays were zeroed by
// Release, so reference slots never leak across uses.
func sized[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}
