package data

import (
	"testing"

	"opportune/internal/value"
)

func TestColSpecializedRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		vals []value.V
		mode colMode
	}{
		{"int", []value.V{value.NewInt(3), value.NewInt(-7), value.NewInt(0)}, colInt},
		{"float", []value.V{value.NewFloat(0.5), value.NewFloat(-2), value.NewFloat(9e9)}, colFloat},
		{"str", []value.V{value.NewStr("a"), value.NewStr(""), value.NewStr("zz")}, colStr},
		{"bool", []value.V{value.NewBool(true), value.NewBool(false), value.NewBool(true)}, colGeneric},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var c Col
			c.Reset(len(tc.vals))
			for i, v := range tc.vals {
				c.Set(i, v)
			}
			if c.mode != tc.mode {
				t.Fatalf("mode = %d, want %d", c.mode, tc.mode)
			}
			for i, v := range tc.vals {
				if got := c.Get(i); !value.Equal(got, v) || got.Kind() != v.Kind() {
					t.Fatalf("slot %d = %v (%s), want %v (%s)", i, got, got.Kind(), v, v.Kind())
				}
			}
		})
	}
}

// TestColDegradeOnKindMix proves a mixed-kind column keeps every written
// value exact: specialization is an optimization, never a semantic change.
func TestColDegradeOnKindMix(t *testing.T) {
	var c Col
	c.Reset(4)
	c.Set(0, value.NewInt(11))
	c.Set(2, value.NewStr("mixed")) // degrade int -> generic
	c.Set(3, value.NullV)
	if c.mode != colGeneric {
		t.Fatalf("mode = %d, want generic", c.mode)
	}
	if got := c.Get(0); got.Kind() != value.Int || got.Int() != 11 {
		t.Fatalf("slot 0 lost on degrade: %v (%s)", got, got.Kind())
	}
	if got := c.Get(2); got.Kind() != value.Str || got.Str() != "mixed" {
		t.Fatalf("slot 2 = %v", got)
	}
	if !c.Get(3).IsNull() {
		t.Fatalf("slot 3 = %v, want null", c.Get(3))
	}
}

// TestColReleaseZeroesRefs is the pool-hygiene leak oracle: after Release,
// no string or value reference may survive in the backing arrays, across
// their full capacity — a pooled column must never alias user data into the
// next task that draws it.
func TestColReleaseZeroesRefs(t *testing.T) {
	var c Col
	c.Reset(8)
	for i := 0; i < 8; i++ {
		c.Set(i, value.NewStr("leakable-string"))
	}
	c.Set(1, value.NewInt(5)) // degrade: both strs and vals now populated
	c.Release()
	if c.mode != colUnset || c.n != 0 {
		t.Fatalf("release left mode=%d n=%d", c.mode, c.n)
	}
	strs := c.strs[:cap(c.strs)]
	for i, s := range strs {
		if s != "" {
			t.Fatalf("strs[%d] = %q survived Release", i, s)
		}
	}
	vals := c.vals[:cap(c.vals)]
	for i, v := range vals {
		if !v.IsNull() {
			t.Fatalf("vals[%d] = %v survived Release", i, v)
		}
	}
	// Reuse after Release must behave like a fresh column.
	c.Reset(2)
	if got := c.Get(0); !got.IsNull() {
		t.Fatalf("unwritten slot after reuse = %v", got)
	}
	c.Set(0, value.NewFloat(1.5))
	if got := c.Get(0); got.Float() != 1.5 {
		t.Fatalf("reuse write = %v", got)
	}
}
