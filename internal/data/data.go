// Package data defines schemas, rows, and in-memory relations — the tuple
// substrate the MapReduce engine executes over.
package data

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"opportune/internal/value"
)

// Schema is an ordered list of column names. Column order matters for row
// layout; name lookup is by linear scan (schemas are narrow).
type Schema struct {
	cols []string
	idx  map[string]int
}

// NewSchema builds a schema from column names. Duplicate names panic: a
// relation cannot have two columns with the same name.
func NewSchema(cols ...string) *Schema {
	s := &Schema{cols: append([]string(nil), cols...), idx: make(map[string]int, len(cols))}
	for i, c := range cols {
		if _, dup := s.idx[c]; dup {
			panic(fmt.Sprintf("data: duplicate column %q in schema", c))
		}
		s.idx[c] = i
	}
	return s
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.cols) }

// Cols returns the column names in order. The caller must not mutate it.
func (s *Schema) Cols() []string { return s.cols }

// Col returns the name of column i.
func (s *Schema) Col(i int) string { return s.cols[i] }

// Index returns the position of a column and whether it exists.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.idx[name]
	return i, ok
}

// MustIndex returns the position of a column, panicking if absent. Used by
// compiled operators whose columns were validated at plan time.
func (s *Schema) MustIndex(name string) int {
	i, ok := s.idx[name]
	if !ok {
		panic(fmt.Sprintf("data: column %q not in schema [%s]", name, strings.Join(s.cols, ",")))
	}
	return i
}

// Has reports whether the schema contains the column.
func (s *Schema) Has(name string) bool { _, ok := s.idx[name]; return ok }

// Equal reports whether two schemas have identical columns in identical order.
func (s *Schema) Equal(o *Schema) bool {
	if s.Len() != o.Len() {
		return false
	}
	for i := range s.cols {
		if s.cols[i] != o.cols[i] {
			return false
		}
	}
	return true
}

// Project returns a new schema containing the named columns in the given order.
func (s *Schema) Project(cols ...string) *Schema {
	for _, c := range cols {
		if !s.Has(c) {
			panic(fmt.Sprintf("data: project: column %q not in schema", c))
		}
	}
	return NewSchema(cols...)
}

// String renders the schema as "(a, b, c)".
func (s *Schema) String() string { return "(" + strings.Join(s.cols, ", ") + ")" }

// Row is a vector of values aligned with a Schema.
type Row []value.V

// Clone returns a deep-enough copy (values are immutable).
func (r Row) Clone() Row {
	c := make(Row, len(r))
	copy(c, r)
	return c
}

// EncodedSize is the simulated on-disk size of the row in bytes: a 4-byte
// length header plus each value's encoding.
func (r Row) EncodedSize() int {
	n := 4
	for _, v := range r {
		n += v.EncodedSize()
	}
	return n
}

// Relation is an in-memory table: a schema plus rows. It is the unit stored
// in the simulated HDFS and passed between MR phases.
type Relation struct {
	schema *Schema
	rows   []Row
}

// NewRelation creates an empty relation with the given schema.
func NewRelation(schema *Schema) *Relation {
	return &Relation{schema: schema}
}

// Schema returns the relation's schema.
func (rel *Relation) Schema() *Schema { return rel.schema }

// Len returns the row count.
func (rel *Relation) Len() int { return len(rel.rows) }

// Rows returns the backing slice. Callers must treat it as read-only.
func (rel *Relation) Rows() []Row { return rel.rows }

// Row returns row i.
func (rel *Relation) Row(i int) Row { return rel.rows[i] }

// Append adds a row. The row length must match the schema.
func (rel *Relation) Append(r Row) {
	if len(r) != rel.schema.Len() {
		panic(fmt.Sprintf("data: row width %d != schema width %d", len(r), rel.schema.Len()))
	}
	rel.rows = append(rel.rows, r)
}

// Grow pre-allocates capacity for at least n more rows (no-op for n <= 0).
// Hot-path callers size output relations from optimizer estimates; a wrong
// estimate only costs a reallocation.
func (rel *Relation) Grow(n int) {
	if n <= 0 || cap(rel.rows)-len(rel.rows) >= n {
		return
	}
	rows := make([]Row, len(rel.rows), len(rel.rows)+n)
	copy(rows, rel.rows)
	rel.rows = rows
}

// AppendAll adds every row of another relation; schemas must be equal.
func (rel *Relation) AppendAll(o *Relation) {
	if !rel.schema.Equal(o.schema) {
		panic("data: AppendAll schema mismatch")
	}
	rel.rows = append(rel.rows, o.rows...)
}

// EncodedSize is the total simulated byte size of all rows.
func (rel *Relation) EncodedSize() int64 {
	var n int64
	for _, r := range rel.rows {
		n += int64(r.EncodedSize())
	}
	return n
}

// Get returns the value of the named column in row r.
func (rel *Relation) Get(r int, col string) value.V {
	return rel.rows[r][rel.schema.MustIndex(col)]
}

// SortBy sorts rows in place by the named columns ascending (value.Compare
// order), stably.
func (rel *Relation) SortBy(cols ...string) {
	idxs := make([]int, len(cols))
	for i, c := range cols {
		idxs[i] = rel.schema.MustIndex(c)
	}
	sort.SliceStable(rel.rows, func(a, b int) bool {
		for _, ix := range idxs {
			c := value.Compare(rel.rows[a][ix], rel.rows[b][ix])
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
}

// KeyEncoder builds composite grouping keys into one reusable buffer, so a
// tight loop (a map task keying every row) performs exactly one allocation
// per key — the returned string — instead of one per column. Keys are the
// concatenated value.AppendKey encodings: length-prefixed, injective, and
// prefix-free per column, so distinct column tuples never collide. A
// KeyEncoder is not safe for concurrent use; give each task its own.
type KeyEncoder struct {
	buf []byte
}

// Key encodes the values of the given column indexes of r.
func (e *KeyEncoder) Key(r Row, idxs []int) string {
	e.buf = e.buf[:0]
	for _, ix := range idxs {
		e.buf = r[ix].AppendKey(e.buf)
	}
	return string(e.buf)
}

// KeyOf encodes a single value (e.g. a join key).
func (e *KeyEncoder) KeyOf(v value.V) string {
	e.buf = v.AppendKey(e.buf[:0])
	return string(e.buf)
}

// Key extracts the values of the given column indexes as a comparable
// grouping key string. Convenience form of KeyEncoder.Key for call sites
// outside per-tuple hot loops.
func Key(r Row, idxs []int) string {
	var e KeyEncoder
	return e.Key(r, idxs)
}

// KeyPrefix returns the encoded prefix of key covering its first cols
// column encodings, walking the self-delimiting value.AppendKey format
// (kind tag, then a fixed payload — Int/Bool/Float 8 bytes, Null none — or
// a 4-byte length-prefixed string). ok is false when the key is malformed
// or holds fewer than cols columns; callers must then fall back to a full
// shuffle rather than trust a truncated route.
func KeyPrefix(key string, cols int) (string, bool) {
	if cols <= 0 {
		return "", false
	}
	pos := 0
	for c := 0; c < cols; c++ {
		if pos >= len(key) {
			return "", false
		}
		kind := value.Kind(key[pos])
		pos++
		switch kind {
		case value.Null:
			// tag only
		case value.Int, value.Bool, value.Float:
			pos += 8
		case value.Str:
			if pos+4 > len(key) {
				return "", false
			}
			n := int(uint32(key[pos]) | uint32(key[pos+1])<<8 | uint32(key[pos+2])<<16 | uint32(key[pos+3])<<24)
			pos += 4 + n
		default:
			return "", false
		}
		if pos > len(key) {
			return "", false
		}
	}
	return key[:pos], true
}

// GroupBy partitions rows by the values of the named columns, returning a
// map from group key to row indexes, plus the ordered list of keys (order of
// first appearance, for determinism).
func (rel *Relation) GroupBy(cols ...string) (map[string][]int, []string) {
	idxs := make([]int, len(cols))
	for i, c := range cols {
		idxs[i] = rel.schema.MustIndex(c)
	}
	groups := make(map[string][]int)
	var order []string
	var enc KeyEncoder
	for i, r := range rel.rows {
		k := enc.Key(r, idxs)
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}
	return groups, order
}

// DistinctCount returns the number of distinct values in the named column.
func (rel *Relation) DistinctCount(col string) int {
	ix := rel.schema.MustIndex(col)
	seen := make(map[string]struct{})
	for _, r := range rel.rows {
		seen[r[ix].String()] = struct{}{}
	}
	return len(seen)
}

// Fingerprint returns a deterministic hash of schema + all row contents,
// independent of row order. Used by tests to check result equivalence
// between original and rewritten plans.
func (rel *Relation) Fingerprint() uint64 {
	rowHashes := make([]uint64, 0, len(rel.rows))
	for _, r := range rel.rows {
		h := fnv.New64a()
		for _, v := range r {
			var b [8]byte
			u := v.Hash()
			for i := 0; i < 8; i++ {
				b[i] = byte(u >> (8 * i))
			}
			h.Write(b[:])
		}
		rowHashes = append(rowHashes, h.Sum64())
	}
	sort.Slice(rowHashes, func(a, b int) bool { return rowHashes[a] < rowHashes[b] })
	h := fnv.New64a()
	h.Write([]byte(rel.schema.String()))
	for _, u := range rowHashes {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(u >> (8 * i))
		}
		h.Write(b[:])
	}
	return h.Sum64()
}
