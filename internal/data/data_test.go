package data

import (
	"testing"
	"testing/quick"

	"opportune/internal/value"
)

func mkRel(t *testing.T) *Relation {
	t.Helper()
	rel := NewRelation(NewSchema("id", "name", "score"))
	rel.Append(Row{value.NewInt(3), value.NewStr("c"), value.NewFloat(0.5)})
	rel.Append(Row{value.NewInt(1), value.NewStr("a"), value.NewFloat(0.9)})
	rel.Append(Row{value.NewInt(2), value.NewStr("b"), value.NewFloat(0.1)})
	rel.Append(Row{value.NewInt(1), value.NewStr("a2"), value.NewFloat(0.7)})
	return rel
}

func TestSchemaBasics(t *testing.T) {
	s := NewSchema("a", "b", "c")
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Col(1) != "b" {
		t.Errorf("Col(1) = %q", s.Col(1))
	}
	if i, ok := s.Index("c"); !ok || i != 2 {
		t.Errorf("Index(c) = %d,%v", i, ok)
	}
	if _, ok := s.Index("z"); ok {
		t.Error("Index(z) found")
	}
	if !s.Has("a") || s.Has("z") {
		t.Error("Has wrong")
	}
	if s.String() != "(a, b, c)" {
		t.Errorf("String = %q", s.String())
	}
	p := s.Project("c", "a")
	if p.Len() != 2 || p.Col(0) != "c" || p.Col(1) != "a" {
		t.Errorf("Project = %v", p)
	}
	if !s.Equal(NewSchema("a", "b", "c")) {
		t.Error("Equal false for same schema")
	}
	if s.Equal(NewSchema("a", "c", "b")) {
		t.Error("Equal true for reordered schema")
	}
	if s.Equal(NewSchema("a", "b")) {
		t.Error("Equal true for shorter schema")
	}
}

func TestSchemaPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("dup columns", func() { NewSchema("a", "a") })
	s := NewSchema("a")
	mustPanic("MustIndex missing", func() { s.MustIndex("z") })
	mustPanic("Project missing", func() { s.Project("z") })
}

func TestRelationAppendAndGet(t *testing.T) {
	rel := mkRel(t)
	if rel.Len() != 4 {
		t.Fatalf("Len = %d", rel.Len())
	}
	if got := rel.Get(0, "name"); got.Str() != "c" {
		t.Errorf("Get(0,name) = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("width-mismatched Append did not panic")
		}
	}()
	rel.Append(Row{value.NewInt(1)})
}

func TestSortBy(t *testing.T) {
	rel := mkRel(t)
	rel.SortBy("id", "name")
	ids := []int64{1, 1, 2, 3}
	names := []string{"a", "a2", "b", "c"}
	for i := range ids {
		if rel.Get(i, "id").Int() != ids[i] || rel.Get(i, "name").Str() != names[i] {
			t.Fatalf("row %d = %v", i, rel.Row(i))
		}
	}
}

func TestGroupBy(t *testing.T) {
	rel := mkRel(t)
	groups, order := rel.GroupBy("id")
	if len(groups) != 3 {
		t.Fatalf("groups = %d", len(groups))
	}
	if len(order) != 3 {
		t.Fatalf("order = %d", len(order))
	}
	// id=1 appears in rows 1 and 3
	found := false
	for _, idxs := range groups {
		if len(idxs) == 2 {
			found = true
			if rel.Get(idxs[0], "id").Int() != 1 || rel.Get(idxs[1], "id").Int() != 1 {
				t.Error("two-row group is not id=1")
			}
		}
	}
	if !found {
		t.Error("no group of size 2")
	}
}

func TestDistinctCount(t *testing.T) {
	rel := mkRel(t)
	if got := rel.DistinctCount("id"); got != 3 {
		t.Errorf("DistinctCount(id) = %d", got)
	}
	if got := rel.DistinctCount("name"); got != 4 {
		t.Errorf("DistinctCount(name) = %d", got)
	}
}

func TestEncodedSize(t *testing.T) {
	rel := NewRelation(NewSchema("a"))
	rel.Append(Row{value.NewInt(1)})
	rel.Append(Row{value.NewStr("xy")})
	want := int64((4 + 9) + (4 + 1 + 4 + 2))
	if got := rel.EncodedSize(); got != want {
		t.Errorf("EncodedSize = %d, want %d", got, want)
	}
}

func TestAppendAll(t *testing.T) {
	a := mkRel(t)
	b := NewRelation(NewSchema("id", "name", "score"))
	b.Append(Row{value.NewInt(9), value.NewStr("z"), value.NewFloat(1)})
	a.AppendAll(b)
	if a.Len() != 5 {
		t.Errorf("Len after AppendAll = %d", a.Len())
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched AppendAll did not panic")
		}
	}()
	a.AppendAll(NewRelation(NewSchema("x")))
}

func TestFingerprintOrderIndependent(t *testing.T) {
	a := mkRel(t)
	b := mkRel(t)
	b.SortBy("score")
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("fingerprint changed under reorder")
	}
	c := mkRel(t)
	c.Append(Row{value.NewInt(5), value.NewStr("e"), value.NewFloat(0)})
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("fingerprint identical despite extra row")
	}
}

func TestKeyDistinguishesGroups(t *testing.T) {
	// Property: rows differing in a keyed column yield different keys.
	f := func(x, y int64) bool {
		r1 := Row{value.NewInt(x)}
		r2 := Row{value.NewInt(y)}
		k1, k2 := Key(r1, []int{0}), Key(r2, []int{0})
		return (x == y) == (k1 == k2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyMultiColumnNoConcatCollision(t *testing.T) {
	// ("ab","c") must not collide with ("a","bc").
	r1 := Row{value.NewStr("ab"), value.NewStr("c")}
	r2 := Row{value.NewStr("a"), value.NewStr("bc")}
	if Key(r1, []int{0, 1}) == Key(r2, []int{0, 1}) {
		t.Error("multi-column key collision")
	}
}

func TestRowClone(t *testing.T) {
	r := Row{value.NewInt(1), value.NewStr("a")}
	c := r.Clone()
	c[0] = value.NewInt(2)
	if r[0].Int() != 1 {
		t.Error("Clone aliases original")
	}
}
