package data

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"opportune/internal/value"
)

// Binary relation format (persisted datasets):
//
//	magic "OPRL" | uvarint ncols | ncols × (uvarint len, bytes)
//	uvarint nrows | nrows × row
//	row: ncols × value
//	value: kind byte | payload (int/float: 8 bytes LE; bool: 1 byte;
//	       string: uvarint len + bytes; null: nothing)

var relMagic = [4]byte{'O', 'P', 'R', 'L'}

// Write serializes the relation.
func (rel *Relation) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(relMagic[:]); err != nil {
		return err
	}
	writeUvarint(bw, uint64(rel.schema.Len()))
	for _, c := range rel.schema.Cols() {
		writeString(bw, c)
	}
	writeUvarint(bw, uint64(rel.Len()))
	for _, r := range rel.rows {
		for _, v := range r {
			if err := writeValue(bw, v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadRelation deserializes a relation written by Write.
func ReadRelation(r io.Reader) (*Relation, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("data: reading magic: %w", err)
	}
	if magic != relMagic {
		return nil, fmt.Errorf("data: bad magic %q", magic)
	}
	ncols, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if ncols == 0 || ncols > 1<<20 {
		// Zero columns would make rows free to decode, letting a corrupt
		// row count spin unboundedly; the writer never emits it.
		return nil, fmt.Errorf("data: unreasonable column count %d", ncols)
	}
	cols := make([]string, ncols)
	seen := make(map[string]bool, ncols)
	for i := range cols {
		if cols[i], err = readString(br); err != nil {
			return nil, err
		}
		if seen[cols[i]] {
			return nil, fmt.Errorf("data: duplicate column %q in encoded schema", cols[i])
		}
		seen[cols[i]] = true
	}
	rel := NewRelation(NewSchema(cols...))
	nrows, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nrows; i++ {
		row := make(Row, ncols)
		for j := range row {
			if row[j], err = readValue(br); err != nil {
				return nil, fmt.Errorf("data: row %d col %d: %w", i, j, err)
			}
		}
		rel.Append(row)
	}
	return rel, nil
}

func writeUvarint(w *bufio.Writer, u uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], u)
	w.Write(buf[:n])
}

func writeString(w *bufio.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	w.WriteString(s)
}

func readString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > 1<<30 {
		return "", fmt.Errorf("data: unreasonable string length %d", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func writeValue(w *bufio.Writer, v value.V) error {
	if err := w.WriteByte(byte(v.Kind())); err != nil {
		return err
	}
	switch v.Kind() {
	case value.Null:
	case value.Int:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(v.Int()))
		w.Write(b[:])
	case value.Float:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.Float()))
		w.Write(b[:])
	case value.Bool:
		b := byte(0)
		if v.Bool() {
			b = 1
		}
		w.WriteByte(b)
	case value.Str:
		writeString(w, v.Str())
	default:
		return fmt.Errorf("data: cannot encode kind %v", v.Kind())
	}
	return nil
}

func readValue(r *bufio.Reader) (value.V, error) {
	kb, err := r.ReadByte()
	if err != nil {
		return value.NullV, err
	}
	switch value.Kind(kb) {
	case value.Null:
		return value.NullV, nil
	case value.Int:
		var b [8]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return value.NullV, err
		}
		return value.NewInt(int64(binary.LittleEndian.Uint64(b[:]))), nil
	case value.Float:
		var b [8]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return value.NullV, err
		}
		return value.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(b[:]))), nil
	case value.Bool:
		b, err := r.ReadByte()
		if err != nil {
			return value.NullV, err
		}
		return value.NewBool(b != 0), nil
	case value.Str:
		s, err := readString(r)
		if err != nil {
			return value.NullV, err
		}
		return value.NewStr(s), nil
	default:
		return value.NullV, fmt.Errorf("data: bad value kind %d", kb)
	}
}
