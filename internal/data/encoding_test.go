package data

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"opportune/internal/value"
)

func TestRelationRoundTrip(t *testing.T) {
	rel := NewRelation(NewSchema("i", "f", "s", "b", "n"))
	rel.Append(Row{value.NewInt(-42), value.NewFloat(3.5), value.NewStr("héllo"), value.NewBool(true), value.NullV})
	rel.Append(Row{value.NewInt(1 << 60), value.NewFloat(math.Inf(-1)), value.NewStr(""), value.NewBool(false), value.NullV})
	var buf bytes.Buffer
	if err := rel.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRelation(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Schema().Equal(rel.Schema()) {
		t.Fatalf("schema = %s", got.Schema())
	}
	if got.Fingerprint() != rel.Fingerprint() {
		t.Error("data changed across round trip")
	}
	// row order preserved (fingerprint is order-independent, check directly)
	if got.Get(0, "i").Int() != -42 || got.Get(1, "i").Int() != 1<<60 {
		t.Error("row order changed")
	}
}

func TestEmptyRelationRoundTrip(t *testing.T) {
	rel := NewRelation(NewSchema("a"))
	var buf bytes.Buffer
	if err := rel.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRelation(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || got.Schema().Len() != 1 {
		t.Errorf("got %d rows, %d cols", got.Len(), got.Schema().Len())
	}
}

func TestReadRelationErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("OPRL"),              // truncated after magic
		[]byte("OPRL\x01\x01a"),     // truncated rows header
		[]byte("OPRL\x01\x01a\x01"), // promised one row, none present
	}
	for i, b := range cases {
		if _, err := ReadRelation(bytes.NewReader(b)); err == nil {
			t.Errorf("case %d: corrupt input accepted", i)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(is []int64, fs []float64, ss []string) bool {
		rel := NewRelation(NewSchema("i", "f", "s"))
		n := len(is)
		if len(fs) < n {
			n = len(fs)
		}
		if len(ss) < n {
			n = len(ss)
		}
		for k := 0; k < n; k++ {
			fv := value.NewFloat(fs[k])
			if math.IsNaN(fs[k]) {
				fv = value.NullV // NaN breaks fingerprint comparison semantics
			}
			rel.Append(Row{value.NewInt(is[k]), fv, value.NewStr(ss[k])})
		}
		var buf bytes.Buffer
		if err := rel.Write(&buf); err != nil {
			return false
		}
		got, err := ReadRelation(&buf)
		if err != nil {
			return false
		}
		return got.Fingerprint() == rel.Fingerprint()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestZeroColumnEncodingRejected(t *testing.T) {
	// "OPRL" + ncols=0 + absurd nrows: must error, not spin.
	b := append([]byte("OPRL"), 0x00, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f)
	if _, err := ReadRelation(bytes.NewReader(b)); err == nil {
		t.Error("zero-column encoding accepted")
	}
}
