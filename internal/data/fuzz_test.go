package data

import (
	"bytes"
	"testing"

	"opportune/internal/value"
)

// FuzzReadRelation asserts the binary decoder never panics on corrupt
// input and that valid encodings round-trip.
func FuzzReadRelation(f *testing.F) {
	// Seed with a valid encoding and mutations of it.
	rel := NewRelation(NewSchema("a", "b"))
	var buf bytes.Buffer
	if err := rel.Write(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("OPRL"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		got, err := ReadRelation(bytes.NewReader(b))
		if err != nil {
			return
		}
		// whatever decoded must re-encode and decode to the same data
		var out bytes.Buffer
		if err := got.Write(&out); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := ReadRelation(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Fingerprint() != got.Fingerprint() {
			t.Fatal("round trip diverged")
		}
	})
}

// FuzzKeyPrefix asserts the partition-router's key-prefix walker never
// panics and never lies: on arbitrary (possibly malformed) encoded keys it
// either refuses (ok=false, the caller's full-shuffle fallback) or returns
// a literal prefix of the key that decodes column-stably — the exact bytes
// any row with the same leading column values would produce, which is what
// makes routing by prefix hash collision-free within a bucket.
func FuzzKeyPrefix(f *testing.F) {
	// Well-formed seeds straight from the encoder, plus truncations.
	row := Row{value.NewInt(42), value.NewStr("wine"), value.NewFloat(1.5), value.NullV, value.NewBool(true)}
	full := Key(row, []int{0, 1, 2, 3, 4})
	f.Add(full, 2)
	f.Add(full, 5)
	f.Add(full[:len(full)-3], 5) // truncated tail
	f.Add("", 1)
	f.Add("\xff garbage", 1)
	f.Fuzz(func(t *testing.T, key string, cols int) {
		prefix, ok := KeyPrefix(key, cols)
		if !ok {
			if prefix != "" {
				t.Fatalf("refused key yet returned prefix %q", prefix)
			}
			return
		}
		if cols <= 0 {
			t.Fatalf("accepted cols=%d", cols)
		}
		if len(prefix) > len(key) || key[:len(prefix)] != prefix {
			t.Fatalf("result %q is not a prefix of key %q", prefix, key)
		}
		// Deterministic and self-consistent: the prefix covers exactly its
		// own cols columns, so re-walking it consumes the whole prefix.
		again, ok2 := KeyPrefix(key, cols)
		if !ok2 || again != prefix {
			t.Fatal("KeyPrefix is not deterministic")
		}
		self, ok3 := KeyPrefix(prefix, cols)
		if !ok3 || self != prefix {
			t.Fatalf("prefix %q does not re-walk to itself", prefix)
		}
		// Monotone: every shorter column count succeeds and nests.
		prev := ""
		for c := 1; c <= cols; c++ {
			p, okc := KeyPrefix(key, c)
			if !okc {
				t.Fatalf("cols=%d ok but cols=%d refused", cols, c)
			}
			if len(p) < len(prev) || p[:len(prev)] != prev {
				t.Fatalf("prefix for cols=%d does not extend cols=%d", c, c-1)
			}
			prev = p
		}
	})
}
