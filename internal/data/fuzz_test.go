package data

import (
	"bytes"
	"testing"
)

// FuzzReadRelation asserts the binary decoder never panics on corrupt
// input and that valid encodings round-trip.
func FuzzReadRelation(f *testing.F) {
	// Seed with a valid encoding and mutations of it.
	rel := NewRelation(NewSchema("a", "b"))
	var buf bytes.Buffer
	if err := rel.Write(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("OPRL"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		got, err := ReadRelation(bytes.NewReader(b))
		if err != nil {
			return
		}
		// whatever decoded must re-encode and decode to the same data
		var out bytes.Buffer
		if err := got.Write(&out); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := ReadRelation(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Fingerprint() != got.Fingerprint() {
			t.Fatal("round trip diverged")
		}
	})
}
