package experiments

import (
	"fmt"
	"strings"

	"opportune/internal/session"
	"opportune/internal/storage"
	"opportune/internal/workload"
)

// AblationEntry compares BFREWRITE variants on one holdout query.
type AblationEntry struct {
	Analyst int

	// Full BFREWRITE.
	FullCandidates, FullAttempts int
	FullRuntimeSec               float64
	// OPTCOST disabled (uniform zero lower bound): the search loses both
	// its candidate ordering and its early-termination condition.
	NoOptCandidates, NoOptAttempts int
	NoOptRuntimeSec                float64
	// GUESSCOMPLETE disabled: REWRITEENUM runs on every candidate examined.
	NoGuessAttempts   int
	NoGuessRuntimeSec float64

	CostsAgree bool
}

// AblationResult quantifies each pruning source of BFREWRITE (DESIGN.md
// §6): OPTCOST ordering/termination and the GUESSCOMPLETE gate. All
// variants find rewrites of the same cost; only the work differs.
type AblationResult struct {
	Entries []AblationEntry
}

// Ablation runs the pruning-source ablation in the user-evolution setting.
func Ablation(c Config) (*AblationResult, error) {
	res := &AblationResult{}
	for holdout := 1; holdout <= 8; holdout++ {
		s, err := newSession(c)
		if err != nil {
			return nil, err
		}
		for a := 1; a <= 8; a++ {
			if a == holdout {
				continue
			}
			if _, err := run(s, workload.QueryFor(a, 1), session.ModeOriginal); err != nil {
				return nil, err
			}
		}
		q := workload.QueryFor(holdout, 1)
		views := s.Cat.Views()
		e := AblationEntry{Analyst: holdout}

		w1, err := compileQuery(s, q)
		if err != nil {
			return nil, err
		}
		full := s.Rew.BFRewrite(w1, views)
		e.FullCandidates = full.Counters.CandidatesConsidered
		e.FullAttempts = full.Counters.RewriteAttempts
		e.FullRuntimeSec = full.Runtime.Seconds()

		s.Rew.DisableOptCost = true
		w2, err := compileQuery(s, q)
		if err != nil {
			return nil, err
		}
		noOpt := s.Rew.BFRewrite(w2, views)
		s.Rew.DisableOptCost = false
		e.NoOptCandidates = noOpt.Counters.CandidatesConsidered
		e.NoOptAttempts = noOpt.Counters.RewriteAttempts
		e.NoOptRuntimeSec = noOpt.Runtime.Seconds()

		s.Rew.DisableGuessComplete = true
		w3, err := compileQuery(s, q)
		if err != nil {
			return nil, err
		}
		noGuess := s.Rew.BFRewrite(w3, views)
		s.Rew.DisableGuessComplete = false
		e.NoGuessAttempts = noGuess.Counters.RewriteAttempts
		e.NoGuessRuntimeSec = noGuess.Runtime.Seconds()

		e.CostsAgree = agree(full.Cost, noOpt.Cost) && agree(full.Cost, noGuess.Cost)
		res.Entries = append(res.Entries, e)
	}
	return res, nil
}

// Render prints the ablation table.
func (r *AblationResult) Render() string {
	var rows [][]string
	for _, e := range r.Entries {
		rows = append(rows, []string{
			fmt.Sprintf("A%d", e.Analyst),
			fmt.Sprintf("%d/%d/%.3fs", e.FullCandidates, e.FullAttempts, e.FullRuntimeSec),
			fmt.Sprintf("%d/%d/%.3fs", e.NoOptCandidates, e.NoOptAttempts, e.NoOptRuntimeSec),
			fmt.Sprintf("-/%d/%.3fs", e.NoGuessAttempts, e.NoGuessRuntimeSec),
			fmt.Sprintf("%v", e.CostsAgree),
		})
	}
	var sb strings.Builder
	sb.WriteString("Ablation: BFREWRITE pruning sources (candidates/attempts/runtime per variant)\n")
	sb.WriteString(table([]string{"holdout", "full BFR", "no OPTCOST", "no GUESSCOMPLETE", "same cost"}, rows))
	sb.WriteString("\nexpected: disabling OPTCOST inflates candidates examined and runtime;\ndisabling GUESSCOMPLETE inflates REWRITEENUM attempts; rewrite quality unchanged\n")
	return sb.String()
}

// ReclamationEntry is one storage-budget × policy cell.
type ReclamationEntry struct {
	Policy     string
	BudgetFrac float64 // of the unlimited view footprint
	ImprovePct float64 // avg v2-v4 improvement under that budget
}

// ReclamationResult evaluates the §10 storage-reclamation policies: the
// query-evolution experiment re-run under bounded view storage.
type ReclamationResult struct {
	UnlimitedBytes int64
	Entries        []ReclamationEntry
}

// Reclamation runs the policy comparison for analyst 1's session.
func Reclamation(c Config) (*ReclamationResult, error) {
	// Measure the unlimited footprint first.
	s, err := newSession(c)
	if err != nil {
		return nil, err
	}
	for v := 1; v <= 4; v++ {
		if _, err := run(s, workload.QueryFor(1, v), session.ModeBFR); err != nil {
			return nil, err
		}
	}
	unlimited := s.Store.ViewBytes()

	res := &ReclamationResult{UnlimitedBytes: unlimited}
	policies := map[string]storage.ReclamationPolicy{
		"lru": storage.PolicyLRU, "lfu": storage.PolicyLFU,
		"cost-benefit": storage.PolicyCostBenefit, "fifo": storage.PolicyFIFO,
	}
	// The reusable aggregate views are tiny relative to the join
	// intermediates, so budgets must shrink well below the footprint before
	// reuse degrades.
	for _, frac := range []float64{1.0, 0.05, 0.01} {
		for _, name := range []string{"lru", "lfu", "cost-benefit", "fifo"} {
			s, err := newSession(c)
			if err != nil {
				return nil, err
			}
			s.Store.ViewCapacityBytes = int64(frac * float64(unlimited))
			s.Store.Policy = policies[name]
			orig, err := newSession(c)
			if err != nil {
				return nil, err
			}
			var sumO, sumR float64
			for v := 1; v <= 4; v++ {
				q := workload.QueryFor(1, v)
				mo, err := run(orig, q, session.ModeOriginal)
				if err != nil {
					return nil, err
				}
				mr, err := run(s, q, session.ModeBFR)
				if err != nil {
					return nil, err
				}
				if v >= 2 {
					sumO += repSeconds(mo)
					sumR += repSeconds(mr)
				}
			}
			res.Entries = append(res.Entries, ReclamationEntry{
				Policy: name, BudgetFrac: frac, ImprovePct: pctImprove(sumO, sumR),
			})
		}
	}
	return res, nil
}

// Render prints the reclamation table.
func (r *ReclamationResult) Render() string {
	var rows [][]string
	for _, e := range r.Entries {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", e.BudgetFrac*100), e.Policy, f1(e.ImprovePct),
		})
	}
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf("Storage reclamation (§10): A1's session under a view-storage budget\n(unlimited footprint: %d bytes)\n", r.UnlimitedBytes))
	sb.WriteString(table([]string{"budget", "policy", "v2-v4 improvement(%)"}, rows))
	sb.WriteString("\nexpected: benefit degrades as the budget shrinks; at extreme budgets the\nfrequency-aware policy (LFU) retains the hot aggregate views longest,\nwhile recency/arrival policies evict them in favour of the latest bulky\nintermediates\n")
	return sb.String()
}
