package experiments

import "testing"

func TestAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	r, err := Ablation(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Entries) != 8 {
		t.Fatalf("entries = %d", len(r.Entries))
	}
	for _, e := range r.Entries {
		if !e.CostsAgree {
			t.Errorf("A%d: ablated variants found different rewrite costs", e.Analyst)
		}
		if e.NoOptCandidates < e.FullCandidates {
			t.Errorf("A%d: disabling OPTCOST reduced candidates (%d < %d)",
				e.Analyst, e.NoOptCandidates, e.FullCandidates)
		}
		if e.NoGuessAttempts < e.FullAttempts {
			t.Errorf("A%d: disabling GUESSCOMPLETE reduced attempts (%d < %d)",
				e.Analyst, e.NoGuessAttempts, e.FullAttempts)
		}
	}
	if r.Render() == "" {
		t.Error("render broken")
	}
}

func TestReclamationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	r, err := Reclamation(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Entries) != 12 {
		t.Fatalf("entries = %d", len(r.Entries))
	}
	// full budget: all policies achieve the unconstrained benefit
	for _, e := range r.Entries {
		if e.BudgetFrac == 1.0 && e.ImprovePct < 25 {
			t.Errorf("policy %s at 100%% budget: %.1f%%", e.Policy, e.ImprovePct)
		}
		if e.ImprovePct < 0 {
			t.Errorf("negative improvement: %+v", e)
		}
	}
	if r.Render() == "" {
		t.Error("render broken")
	}
}
