package experiments

import (
	"fmt"
	"time"

	"opportune/internal/session"
	"opportune/internal/workload"
)

// BatchThroughput compares one-query-at-a-time execution of the workload
// against MRShare-style batched execution (Session.RunBatch): cross-query
// job dedup, shared scans, and inter-job parallelism. Simulated seconds
// are deterministic; wall-clock shows the parallelism win on the local
// worker pool.
type BatchThroughput struct {
	Queries   int
	BatchSize int

	SeqSimSeconds   float64 // Σ per-query TotalSeconds, sequential session
	BatchSimSeconds float64 // Σ physical batch sim + stats jobs
	SimSpeedup      float64

	SeqWallSeconds   float64
	BatchWallSeconds float64
	WallSpeedup      float64

	JobsSubmitted  int
	JobsExecuted   int
	JobsDeduped    int
	SharedScans    int
	ScanBytesSaved int64
}

// Render prints the comparison.
func (r *BatchThroughput) Render() string {
	rows := [][]string{
		{"sequential", f3(r.SeqSimSeconds), f3(r.SeqWallSeconds), fmt.Sprint(r.JobsSubmitted), "-", "-"},
		{fmt.Sprintf("batched(%d)", r.BatchSize), f3(r.BatchSimSeconds), f3(r.BatchWallSeconds),
			fmt.Sprint(r.JobsExecuted), fmt.Sprint(r.JobsDeduped), fmt.Sprint(r.SharedScans)},
	}
	return fmt.Sprintf("Batch throughput: %d queries, batch size %d\n%s\nsim speedup %.2fx  wall speedup %.2fx  scan bytes saved %sGB\n",
		r.Queries, r.BatchSize, table([]string{"strategy", "sim_s", "wall_s", "jobs", "deduped", "shared_scans"}, rows),
		r.SimSpeedup, r.WallSpeedup, gb(r.ScanBytesSaved))
}

// RunBatchThroughput runs the experiment. Both strategies execute the same
// queries in the same order on fresh sessions; batching chunks them into
// groups of cfg.BatchSize and executes each group as one shared-scan batch
// with physical accounting.
func RunBatchThroughput(cfg Config) (*BatchThroughput, error) {
	queries := workload.AllQueries()
	if cfg.Quick {
		// Two analysts' full evolution keeps the quick run representative:
		// intra-analyst versions dedup, both analysts share base-log scans.
		queries = queries[:8]
	}
	size := cfg.BatchSize
	if size <= 0 {
		size = 8
	}
	out := &BatchThroughput{Queries: len(queries), BatchSize: size}

	// Sequential baseline.
	seq, err := newSession(cfg)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	for _, q := range queries {
		m, err := run(seq, q, session.ModeOriginal)
		if err != nil {
			return nil, err
		}
		out.SeqSimSeconds += m.TotalSeconds()
	}
	out.SeqWallSeconds = time.Since(t0).Seconds()

	// Batched execution.
	bs, err := newSession(cfg)
	if err != nil {
		return nil, err
	}
	t0 = time.Now()
	for lo := 0; lo < len(queries); lo += size {
		hi := lo + size
		if hi > len(queries) {
			hi = len(queries)
		}
		batch, err := workload.Batch(queries[lo:hi], session.ModeOriginal)
		if err != nil {
			return nil, err
		}
		res, err := bs.RunBatch(batch, session.BatchOptions{Accounting: session.BatchPhysical})
		if err != nil {
			return nil, err
		}
		out.BatchSimSeconds += res.Stats.SimSeconds
		for _, m := range res.PerQuery {
			out.BatchSimSeconds += m.StatsSeconds
		}
		out.JobsSubmitted += res.Stats.JobsSubmitted
		out.JobsExecuted += res.Stats.JobsExecuted
		out.JobsDeduped += res.Stats.JobsDeduped
		out.SharedScans += res.Stats.SharedScans
		out.ScanBytesSaved += res.Stats.ScanBytesSaved
	}
	out.BatchWallSeconds = time.Since(t0).Seconds()

	if out.BatchSimSeconds > 0 {
		out.SimSpeedup = out.SeqSimSeconds / out.BatchSimSeconds
	}
	if out.BatchWallSeconds > 0 {
		out.WallSpeedup = out.SeqWallSeconds / out.BatchWallSeconds
	}
	return out, nil
}
