package experiments

import (
	"reflect"
	"testing"

	"opportune/internal/fault"
	"opportune/internal/obs"
	"opportune/internal/session"
	"opportune/internal/workload"
)

// seqRef runs the whole workload one query at a time (the oracle) and
// returns result fingerprints, per-query metrics, and the counter snapshot.
func seqRef(t *testing.T, plan *fault.Plan) (map[string]uint64, []*session.Metrics, obs.Snapshot) {
	t.Helper()
	cfg := QuickConfig()
	cfg.Obs = obs.NewRegistry()
	cfg.Faults = plan
	s, err := newSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fps := make(map[string]uint64)
	var ms []*session.Metrics
	for _, q := range workload.AllQueries() {
		m, err := run(s, q, session.ModeOriginal)
		if err != nil {
			t.Fatalf("sequential %s: %v", q.Name, err)
		}
		ms = append(ms, m)
		fps[q.Name] = resultFP(t, s, m.ResultName)
	}
	return fps, ms, cfg.Obs.Snapshot()
}

// batchRun executes the whole workload as one RunBatch call in parity
// accounting at the given parallelism.
func batchRun(t *testing.T, plan *fault.Plan, workers, reduceTasks int) (map[string]uint64, []*session.Metrics, obs.Snapshot, session.BatchStats) {
	t.Helper()
	cfg := QuickConfig()
	cfg.Workers = workers
	cfg.ReduceTasks = reduceTasks
	cfg.Obs = obs.NewRegistry()
	cfg.Faults = plan
	s, err := newSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	queries := workload.AllQueries()
	batch, err := workload.Batch(queries, session.ModeOriginal)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunBatch(batch, session.BatchOptions{Accounting: session.BatchParity})
	if err != nil {
		t.Fatalf("workers=%d R=%d: %v", workers, reduceTasks, err)
	}
	fps := make(map[string]uint64)
	for i, q := range queries {
		fps[q.Name] = resultFP(t, s, res.PerQuery[i].ResultName)
	}
	return fps, res.PerQuery, cfg.Obs.Snapshot(), res.Stats
}

func resultFP(t *testing.T, s *session.Session, name string) uint64 {
	t.Helper()
	ds, ok := s.Store.Meta(name)
	if !ok {
		t.Fatalf("result %q not in store", name)
	}
	return ds.Relation().Fingerprint()
}

// TestBatchParityDifferential is the batch executor's differential oracle:
// running the entire workload as one shared-scan batch must produce
// byte-identical result relations, identical per-query Metrics, and an
// identical deterministic counter snapshot vs one-query-at-a-time
// execution — across Workers ∈ {1,4,8} × ReduceTasks ∈ {1,3}, both
// fault-free and under the scripted chaos plan.
func TestBatchParityDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full workload 14 times")
	}
	grid := []struct{ w, r int }{{1, 1}, {1, 3}, {4, 1}, {4, 3}, {8, 1}, {8, 3}}
	for _, tc := range []struct {
		name string
		plan *fault.Plan
	}{{"fault-free", nil}, {"chaos", chaosPlan()}} {
		t.Run(tc.name, func(t *testing.T) {
			refFPs, refMs, refSnap := seqRef(t, tc.plan)
			for _, g := range grid {
				fps, ms, snap, stats := batchRun(t, tc.plan, g.w, g.r)
				if !reflect.DeepEqual(fps, refFPs) {
					t.Errorf("workers=%d R=%d: batch results differ from sequential", g.w, g.r)
				}
				for i := range refMs {
					if !reflect.DeepEqual(ms[i], refMs[i]) {
						t.Errorf("workers=%d R=%d: query %d metrics differ:\n batch %+v\n seq   %+v",
							g.w, g.r, i, ms[i], refMs[i])
					}
				}
				if !reflect.DeepEqual(snap.Counters, refSnap.Counters) {
					t.Errorf("workers=%d R=%d: counters differ:\n batch %v\n seq   %v",
						g.w, g.r, snap.Counters, refSnap.Counters)
				}
				if !reflect.DeepEqual(snap.FloatCounters, refSnap.FloatCounters) {
					t.Errorf("workers=%d R=%d: float counters differ:\n batch %v\n seq   %v",
						g.w, g.r, snap.FloatCounters, refSnap.FloatCounters)
				}
				// Parity held *while* the batch actually restructured work.
				if stats.JobsDeduped == 0 {
					t.Errorf("workers=%d R=%d: batch deduped nothing", g.w, g.r)
				}
				if stats.SharedScans == 0 {
					t.Errorf("workers=%d R=%d: batch shared no scans", g.w, g.r)
				}
			}
		})
	}
}

// TestBatchParityQuick is the always-on slice of the differential: one
// analyst's four query versions, batch vs sequential, full snapshot
// equality.
func TestBatchParityQuick(t *testing.T) {
	var queries []workload.Query
	for v := 1; v <= 4; v++ {
		queries = append(queries, workload.QueryFor(1, v))
	}

	cfgA := QuickConfig()
	cfgA.Obs = obs.NewRegistry()
	sa, err := newSession(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	var refMs []*session.Metrics
	refFPs := make(map[string]uint64)
	for _, q := range queries {
		m, err := run(sa, q, session.ModeOriginal)
		if err != nil {
			t.Fatal(err)
		}
		refMs = append(refMs, m)
		refFPs[q.Name] = resultFP(t, sa, m.ResultName)
	}

	cfgB := QuickConfig()
	cfgB.Workers = 4
	cfgB.ReduceTasks = 3
	cfgB.Obs = obs.NewRegistry()
	sb, err := newSession(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := workload.Batch(queries, session.ModeOriginal)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sb.RunBatch(batch, session.BatchOptions{Accounting: session.BatchParity})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		if got := resultFP(t, sb, res.PerQuery[i].ResultName); got != refFPs[q.Name] {
			t.Errorf("%s: batch result differs from sequential", q.Name)
		}
		if !reflect.DeepEqual(res.PerQuery[i], refMs[i]) {
			t.Errorf("%s metrics differ:\n batch %+v\n seq   %+v", q.Name, res.PerQuery[i], refMs[i])
		}
	}
	snapA, snapB := cfgA.Obs.Snapshot(), cfgB.Obs.Snapshot()
	if !reflect.DeepEqual(snapB.Counters, snapA.Counters) {
		t.Errorf("counters differ:\n batch %v\n seq   %v", snapB.Counters, snapA.Counters)
	}
	if !reflect.DeepEqual(snapB.FloatCounters, snapA.FloatCounters) {
		t.Errorf("float counters differ:\n batch %v\n seq   %v", snapB.FloatCounters, snapA.FloatCounters)
	}
}

// TestBatchParityRejectsRewriteModes: parity accounting is only defined
// for ModeOriginal (rewrite modes would plan against a different view
// catalog than sequential execution builds).
func TestBatchParityRejectsRewriteModes(t *testing.T) {
	s, err := newSession(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	batch, err := workload.Batch([]workload.Query{workload.QueryFor(1, 1)}, session.ModeBFR)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunBatch(batch, session.BatchOptions{Accounting: session.BatchParity}); err == nil {
		t.Fatal("parity batch accepted a rewrite mode")
	}
}

// TestBatchDedupExecutesSharedJobOnce is the dedup property test: two
// query versions sharing subexpressions must execute each shared job
// exactly once, the shared views must be visible to both pipelines, and
// the results must match sequential execution.
func TestBatchDedupExecutesSharedJobOnce(t *testing.T) {
	queries := []workload.Query{workload.QueryFor(1, 1), workload.QueryFor(1, 2)}

	// Sequential oracle for results and for the per-query job counts.
	sa, err := newSession(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	refFPs := make(map[string]uint64)
	submitted := 0
	for _, q := range queries {
		m, err := run(sa, q, session.ModeOriginal)
		if err != nil {
			t.Fatal(err)
		}
		submitted += m.Jobs
		refFPs[q.Name] = resultFP(t, sa, m.ResultName)
	}

	cfg := QuickConfig()
	cfg.Obs = obs.NewRegistry()
	sb, err := newSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := workload.Batch(queries, session.ModeOriginal)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sb.RunBatch(batch, session.BatchOptions{}) // physical accounting
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.JobsSubmitted != submitted {
		t.Errorf("JobsSubmitted = %d, want %d", st.JobsSubmitted, submitted)
	}
	if st.JobsDeduped == 0 {
		t.Fatal("consecutive query versions share subexpressions, but nothing deduped")
	}
	if st.JobsExecuted != st.JobsSubmitted-st.JobsDeduped {
		t.Errorf("JobsExecuted = %d, want %d", st.JobsExecuted, st.JobsSubmitted-st.JobsDeduped)
	}
	snap := cfg.Obs.Snapshot()
	// mr_jobs_total counts physical executions: each deduped job ran once.
	if got := snap.Counters["mr_jobs_total"]; got != int64(st.JobsExecuted) {
		t.Errorf("mr_jobs_total = %d, want %d physical executions", got, st.JobsExecuted)
	}
	if got := snap.Counters["batch_jobs_deduped_total"]; got != int64(st.JobsDeduped) {
		t.Errorf("batch_jobs_deduped_total = %d, want %d", got, st.JobsDeduped)
	}
	if snap.Counters["batch_scan_bytes_saved_total"] <= 0 {
		t.Error("dedup saved no scan bytes")
	}
	// Both pipelines' results are byte-identical to sequential execution,
	// and the shared materializations are visible as opportunistic views.
	for i, q := range queries {
		if got := resultFP(t, sb, res.PerQuery[i].ResultName); got != refFPs[q.Name] {
			t.Errorf("%s: batch result differs from sequential", q.Name)
		}
	}
	views := 0
	for _, v := range sb.Cat.Views() {
		if sb.Store.Has(v.Name) {
			views++
		}
	}
	if views == 0 {
		t.Error("no opportunistic views retained by the batch")
	}
	// Physical accounting is cheaper than attributed accounting: that is
	// the whole point of sharing.
	if st.SimSeconds >= st.AttributedSimSeconds {
		t.Errorf("physical %g >= attributed %g sim-seconds", st.SimSeconds, st.AttributedSimSeconds)
	}
}

// TestBatchThroughputExperiment: batched execution of queries sharing base
// logs and subexpressions must beat sequential execution by the sharing
// margin the PR promises (>=1.3x simulated), with a physically smaller job
// count.
func TestBatchThroughputExperiment(t *testing.T) {
	cfg := QuickConfig()
	cfg.BatchSize = 4
	r, err := RunBatchThroughput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Queries != 8 || r.BatchSize != 4 {
		t.Fatalf("unexpected shape: %+v", r)
	}
	if r.JobsExecuted >= r.JobsSubmitted {
		t.Errorf("batching executed %d of %d submitted jobs — nothing shared", r.JobsExecuted, r.JobsSubmitted)
	}
	if r.SharedScans == 0 || r.ScanBytesSaved <= 0 {
		t.Errorf("no shared scans: %+v", r)
	}
	if r.SimSpeedup < 1.3 {
		t.Errorf("sim speedup = %.3fx, want >= 1.3x", r.SimSpeedup)
	}
	if r.Render() == "" {
		t.Error("empty render")
	}
}
