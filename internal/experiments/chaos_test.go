package experiments

import (
	"reflect"
	"testing"

	"opportune/internal/fault"
	"opportune/internal/obs"
	"opportune/internal/session"
	"opportune/internal/workload"
)

// chaosPlan scripts one of every fault kind against the full workload.
// Wildcard job addressing makes the plan hit every job; the budgets are
// survivable by construction (panic/corrupt fail_attempts stay under the
// task retry budget of 4, each read error fires once against the job
// retry budget of 3), so every query must still succeed.
func chaosPlan() *fault.Plan {
	return &fault.Plan{Seed: 2026, Faults: []fault.Fault{
		{Phase: fault.PhaseMap, Task: 0, Kind: fault.KindPanic, FailAttempts: 2},
		{Phase: fault.PhaseMap, Task: 1, Kind: fault.KindCorrupt, FailAttempts: 1},
		{Phase: fault.PhaseMap, Task: 2, Kind: fault.KindStraggler, Factor: 6},
		{Phase: fault.PhaseReduce, Task: 11, Kind: fault.KindPanic, FailAttempts: 1},
		{Phase: fault.PhaseReduce, Task: 29, Kind: fault.KindStraggler, Factor: 5},
		{Phase: fault.PhaseReduce, Task: 47, Kind: fault.KindPanic, FailAttempts: 2},
		{Kind: fault.KindReadError, Dataset: "twtr", FailReads: 1},
		{Kind: fault.KindReadError, Dataset: "fsq", FailReads: 1},
		{Kind: fault.KindReadError, Dataset: "land", FailReads: 1},
	}}
}

// runChaosWorkload executes every workload query directly (ModeOriginal) at
// the given parallelism under the plan (nil = fault-free), returning each
// query's result fingerprint and the metrics snapshot. Fingerprints come
// from Store.Meta, which serves no bytes, so inspection never perturbs the
// counters being compared.
func runChaosWorkload(t *testing.T, plan *fault.Plan, workers, reduceTasks int) (map[string]uint64, obs.Snapshot) {
	t.Helper()
	cfg := QuickConfig()
	cfg.Workers = workers
	cfg.ReduceTasks = reduceTasks
	cfg.Obs = obs.NewRegistry()
	cfg.Faults = plan
	s, err := newSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fps := make(map[string]uint64)
	for _, q := range workload.AllQueries() {
		m, err := run(s, q, session.ModeOriginal)
		if err != nil {
			t.Fatalf("workers=%d R=%d: %s: %v", workers, reduceTasks, q.Name, err)
		}
		ds, ok := s.Store.Meta(m.ResultName)
		if !ok {
			t.Fatalf("%s: result %q not in store", q.Name, m.ResultName)
		}
		fps[q.Name] = ds.Relation().Fingerprint()
	}
	return fps, cfg.Obs.Snapshot()
}

// TestChaosDifferentialWorkload is the differential chaos harness: every
// workload query under the seeded fault plan must produce rows
// byte-identical to the fault-free run, across Workers ∈ {1,4,8} ×
// ReduceTasks ∈ {1,3}; and for the fixed plan, every sim-time counter must
// be identical at every parallelism setting (the PR 1 determinism
// guarantee extended to chaos).
func TestChaosDifferentialWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full workload 7 times")
	}
	clean, _ := runChaosWorkload(t, nil, 1, 1)
	plan := chaosPlan()
	refFPs, refSnap := runChaosWorkload(t, plan, 1, 1)

	if !reflect.DeepEqual(refFPs, clean) {
		t.Errorf("chaos run results differ from fault-free run:\n got %v\nwant %v", refFPs, clean)
	}
	// The plan actually fired: recovery counters are nonzero.
	for _, k := range []string{"mr_task_retries_total", "mr_straggler_tasks_total", "mr_speculative_tasks_total"} {
		if refSnap.Counters[k] <= 0 {
			t.Errorf("chaos run recorded no %s — plan did not fire", k)
		}
	}
	if refSnap.FloatCounters["mr_wasted_sim_seconds_total"] <= 0 {
		t.Error("chaos run charged no wasted sim-seconds")
	}

	for _, cfg := range []struct{ w, r int }{{1, 3}, {4, 1}, {4, 3}, {8, 1}, {8, 3}} {
		fps, snap := runChaosWorkload(t, plan, cfg.w, cfg.r)
		if !reflect.DeepEqual(fps, refFPs) {
			t.Errorf("workers=%d R=%d: chaos results differ from reference", cfg.w, cfg.r)
		}
		if !reflect.DeepEqual(snap.Counters, refSnap.Counters) {
			t.Errorf("workers=%d R=%d: counters differ under chaos\n got %v\nwant %v",
				cfg.w, cfg.r, snap.Counters, refSnap.Counters)
		}
		if !reflect.DeepEqual(snap.FloatCounters, refSnap.FloatCounters) {
			t.Errorf("workers=%d R=%d: float counters differ under chaos\n got %v\nwant %v",
				cfg.w, cfg.r, snap.FloatCounters, refSnap.FloatCounters)
		}
	}
}

// TestSpeculationReducesWorkloadSimSeconds lifts the speculation benefit to
// the experiments level: on a straggler-only plan, enabling speculative
// execution strictly reduces total simulated seconds for a real workload
// query, and results stay identical.
func TestSpeculationReducesWorkloadSimSeconds(t *testing.T) {
	plan := &fault.Plan{Seed: 7, Faults: []fault.Fault{
		{Phase: fault.PhaseMap, Task: 0, Kind: fault.KindStraggler, Factor: 8},
	}}
	run := func(disable bool) (float64, uint64) {
		cfg := QuickConfig()
		cfg.Obs = obs.NewRegistry()
		cfg.Faults = plan
		cfg.DisableSpeculation = disable
		s, err := newSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		q := workload.QueryFor(1, 1)
		m, err := run2(s, q)
		if err != nil {
			t.Fatal(err)
		}
		ds, ok := s.Store.Meta(m.ResultName)
		if !ok {
			t.Fatalf("result %q missing", m.ResultName)
		}
		return cfg.Obs.Snapshot().FloatCounters["mr_sim_seconds_total"], ds.Relation().Fingerprint()
	}
	specSim, specFP := run(false)
	noSpecSim, noSpecFP := run(true)
	if specSim <= 0 || noSpecSim <= 0 {
		t.Fatalf("no simulated time recorded: %g, %g", specSim, noSpecSim)
	}
	if specSim >= noSpecSim {
		t.Errorf("speculation did not strictly reduce workload SimSeconds: %g >= %g", specSim, noSpecSim)
	}
	if specFP != noSpecFP {
		t.Error("speculation changed query results")
	}
}

// run2 executes one query in ModeOriginal (helper keeps the closure above
// from shadowing the package-level run).
func run2(s *session.Session, q workload.Query) (*session.Metrics, error) {
	return run(s, q, session.ModeOriginal)
}
