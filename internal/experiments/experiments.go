// Package experiments regenerates every table and figure of the paper's
// evaluation (§8). Each driver returns a structured result with a Render
// method that prints the same rows/series the paper reports; cmd/benchrunner
// and the repo-root benchmarks invoke them.
//
// Timing currency: queries run on the simulated cluster, so "execution
// time" is deterministic simulated seconds (execution + the per-view
// statistics jobs). The rewrite algorithm's runtime is real wall-clock and
// is reported separately (as the paper's Fig 9c does): at the paper's 1TB
// scale it is negligible against execution (3.1s vs 2134s, §8.3.3), but
// against execution times scaled down by ~5 orders of magnitude it would
// dominate spuriously, so folding it into REWR here would misrepresent the
// paper's regime. EXPERIMENTS.md quantifies this.
package experiments

import (
	"fmt"
	"strings"

	"opportune/internal/fault"
	"opportune/internal/hiveql"
	"opportune/internal/obs"
	"opportune/internal/optimizer"
	"opportune/internal/session"
	"opportune/internal/workload"
)

// Config parameterizes experiment runs.
type Config struct {
	Scale workload.Scale
	// Quick shrinks the workload for smoke tests and testing.B runs.
	Quick bool
	// Workers sets the MR engine's worker-pool size (0 = GOMAXPROCS).
	// Parallelism changes wall-clock only: simulated seconds, data volumes,
	// and result bytes are identical at every worker count.
	Workers int
	// ReduceTasks overrides the engine's reduce-partition count R
	// (0 = engine default). Like Workers it affects wall-clock parallelism
	// only, never results or simulated seconds.
	ReduceTasks int
	// Obs, when set, is attached to every session the experiment builds
	// (store, engine, optimizer, and session metrics all feed it).
	Obs *obs.Registry

	// Faults, when set, is the scripted chaos plan injected into every
	// session the experiment builds. Job-level retry is enabled alongside
	// it (MaxAttempts=3) so read errors and escalated task failures
	// recover the way a real cluster's job tracker would.
	Faults *fault.Plan

	// DisableSpeculation turns off speculative re-execution of straggling
	// tasks (the speculation-benefit experiment flips this).
	DisableSpeculation bool

	// DisablePartition turns off partition-aware planning in every session
	// the experiment builds (the partition experiment flips it per arm
	// itself; this knob is for ablations and chaos runs).
	DisablePartition bool

	// DisableFusion turns off fused batch map execution in every session the
	// experiment builds (the fusion experiment flips it per arm itself; this
	// knob is for ablations and chaos runs). Fusion changes wall-clock only:
	// results, volumes, and simulated seconds are identical either way.
	DisableFusion bool

	// BatchSize groups workload queries into shared-scan batches of this
	// many queries for the batch-throughput experiment (0 = 8). The
	// service experiment reuses it as the micro-batch size trigger.
	BatchSize int

	// Tenants sets the simulated tenant population for the service
	// experiment (0 = 8). Tenant popularity is Zipfian.
	Tenants int
}

// DefaultConfig is the full-size harness configuration.
func DefaultConfig() Config { return Config{Scale: workload.DefaultScale()} }

// QuickConfig is used by tests.
func QuickConfig() Config { return Config{Scale: workload.SmallScale(), Quick: true} }

func (c Config) scale() workload.Scale {
	if c.Scale.Tweets == 0 {
		return workload.DefaultScale()
	}
	return c.Scale
}

// repSeconds is the reported execution time of one query run.
func repSeconds(m *session.Metrics) float64 {
	return m.ExecSeconds + m.StatsSeconds
}

// pctImprove is the paper's "% improvement in execution time".
func pctImprove(orig, rewr float64) float64 {
	if orig <= 0 {
		return 0
	}
	p := 100 * (1 - rewr/orig)
	if p < 0 {
		return 0
	}
	return p
}

// newSession builds a fresh installed system.
func newSession(c Config) (*session.Session, error) {
	s, err := workload.NewSession(c.scale())
	if err != nil {
		return nil, err
	}
	s.Eng.Workers = c.Workers
	if c.ReduceTasks > 0 {
		s.Eng.Params.ReduceTasks = c.ReduceTasks
	}
	if c.Obs != nil {
		s.Instrument(c.Obs)
	}
	s.Eng.DisableSpeculation = c.DisableSpeculation
	s.Opt.DisablePartitionAware = c.DisablePartition
	s.Opt.DisableFusion = c.DisableFusion
	if c.Faults != nil {
		s.InjectFaults(fault.NewInjector(c.Faults))
		s.Eng.MaxAttempts = 3
	}
	return s, nil
}

// run executes one workload query, failing loudly on error.
func run(s *session.Session, q workload.Query, mode session.Mode) (*session.Metrics, error) {
	m, err := workload.Exec(s, q, mode)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s %s: %w", q.Name, mode, err)
	}
	return m, nil
}

// compileQuery parses a workload query and compiles it into the job DAG W
// without executing it (used by search-only experiments).
func compileQuery(s *session.Session, q workload.Query) (*optimizer.Work, error) {
	st, err := hiveql.ParseOne(q.SQL)
	if err != nil {
		return nil, err
	}
	return s.Opt.Compile(st.Plan)
}

// table renders an aligned text table.
func table(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, cell := range r {
			if i < len(width) && len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			sb.WriteString(strings.Repeat(" ", width[i]-len(cell)))
		}
		sb.WriteString("\n")
	}
	writeRow(header)
	total := 0
	for _, w := range width {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total-2) + "\n")
	for _, r := range rows {
		writeRow(r)
	}
	return sb.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// gb renders bytes as gigabytes with enough precision for scaled-down data.
func gb(bytes int64) string {
	return fmt.Sprintf("%.6f", float64(bytes)/1e9)
}
