package experiments

import (
	"strings"
	"testing"
)

// The experiment drivers are exercised at QuickConfig scale; assertions
// check the paper's qualitative shapes, not absolute numbers.

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	r, err := Fig7(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Entries) != 32 {
		t.Fatalf("entries = %d", len(r.Entries))
	}
	for _, e := range r.Entries {
		if e.Version == 1 && e.ImprovePct > 1 {
			t.Errorf("A%dv1 improved (%f%%) with no views", e.Analyst, e.ImprovePct)
		}
		if e.OrigSec <= 0 {
			t.Errorf("A%dv%d ORIG time zero", e.Analyst, e.Version)
		}
	}
	if avg := r.AvgImprovementV2toV4(); avg < 25 {
		t.Errorf("avg v2-v4 improvement = %.1f%%, want the paper's substantial-speedup shape", avg)
	}
	out := r.Render()
	for _, want := range []string{"Figure 7", "A1v2", "improve"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	r, err := Fig8(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Entries) != 8 {
		t.Fatalf("entries = %d", len(r.Entries))
	}
	improved := 0
	for _, e := range r.Entries {
		if e.RewrSec > e.OrigSec+1e-9 {
			t.Errorf("A%d: REWR slower than ORIG", e.Analyst)
		}
		if e.RewrMovedBytes > e.OrigMovedBytes {
			t.Errorf("A%d: REWR moved more data", e.Analyst)
		}
		if e.ImprovePct > 5 {
			improved++
		}
	}
	if improved < 5 {
		t.Errorf("only %d/8 holdouts improved; cross-analyst overlap too weak", improved)
	}
	if !strings.Contains(r.Render(), "Figure 8") {
		t.Error("render broken")
	}
}

func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	r, err := Table1(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.ImprovePct) != 7 {
		t.Fatalf("points = %d", len(r.ImprovePct))
	}
	// non-decreasing (within noise) and ends high
	for i := 1; i < len(r.ImprovePct); i++ {
		if r.ImprovePct[i] < r.ImprovePct[i-1]-5 {
			t.Errorf("improvement decreased at analyst %d: %v", i+1, r.ImprovePct)
		}
	}
	if last := r.ImprovePct[len(r.ImprovePct)-1]; last < 30 {
		t.Errorf("final improvement %.1f%% too small: %v", last, r.ImprovePct)
	}
	if !strings.Contains(r.Render(), "Table 1") {
		t.Error("render broken")
	}
}

func TestFig9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	r, err := Fig9(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Entries) != 8 {
		t.Fatalf("entries = %d", len(r.Entries))
	}
	for _, e := range r.Entries {
		if !e.CostsAgree {
			t.Errorf("A%d: BFR cost %g != DP cost %g", e.Analyst, e.BFRCost, e.DPCost)
		}
		if e.BFRCandidates > e.DPCandidates {
			t.Errorf("A%d: BFR considered more candidates than DP", e.Analyst)
		}
		if e.BFRAttempts > e.DPAttempts {
			t.Errorf("A%d: BFR attempted more rewrites than DP", e.Analyst)
		}
	}
	if !strings.Contains(r.Render(), "Figure 9") {
		t.Error("render broken")
	}
}

func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	r, err := Fig10(QuickConfig(), []int{10, 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2 {
		t.Fatalf("points = %d", len(r.Points))
	}
	p0, p1 := r.Points[0], r.Points[1]
	if p1.DPCandidates <= p0.DPCandidates {
		t.Error("DP candidate space did not grow with views")
	}
	if p1.BFRCandidates > p1.DPCandidates {
		t.Error("BFR explored more than DP")
	}
	if !strings.Contains(r.Render(), "Figure 10") {
		t.Error("render broken")
	}
}

func TestFig11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	r, err := Fig11(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 3 {
		t.Fatalf("series = %d", len(r.Series))
	}
	for _, s := range r.Series {
		if len(s.Points) < 2 {
			t.Errorf("%s: trace too short", s.Query)
			continue
		}
		if s.Points[0].ErrorPct < 99 {
			t.Errorf("%s: error does not start at 100%% (%.1f)", s.Query, s.Points[0].ErrorPct)
		}
		last := s.Points[len(s.Points)-1]
		if last.ErrorPct > 0.5 {
			t.Errorf("%s: search did not converge to the optimal (%.1f%%)", s.Query, last.ErrorPct)
		}
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].ErrorPct > s.Points[i-1].ErrorPct+1e-6 {
				t.Errorf("%s: error increased mid-search", s.Query)
			}
		}
		if s.TotalRewritesBFR > s.TotalRewritesDP {
			t.Errorf("%s: BFR found more rewrites (%d) than DP (%d)", s.Query, s.TotalRewritesBFR, s.TotalRewritesDP)
		}
	}
	if !strings.Contains(r.Render(), "Figure 11") {
		t.Error("render broken")
	}
}

func TestFig12AndTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	r, err := Fig12(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Entries) != 3 {
		t.Fatalf("entries = %d", len(r.Entries))
	}
	for _, e := range r.Entries {
		if e.SynImprove > e.BFRImprove+1e-6 {
			t.Errorf("%s: syntactic (%f) beat BFR (%f); BFR must subsume it", e.Query, e.SynImprove, e.BFRImprove)
		}
	}
	// v2 ties (identical prefix views exist); v3/v4 BFR pulls ahead overall
	var bfrSum, synSum float64
	for _, e := range r.Entries {
		bfrSum += e.BFRImprove
		synSum += e.SynImprove
	}
	if bfrSum <= synSum {
		t.Errorf("BFR total %f <= syntactic total %f", bfrSum, synSum)
	}

	t2, err := Table2(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Entries) != 8 {
		t.Fatalf("table2 entries = %d", len(t2.Entries))
	}
	for _, e := range t2.Entries {
		if e.SyntacticImprove > 1 {
			t.Errorf("A%d: syntactic improved (%.1f%%) despite identical views removed", e.Analyst, e.SyntacticImprove)
		}
	}
	// The paper's BFR row is positive for all 8 analysts; our workload's
	// related-but-non-identical overlap covers 4 (A1, A2, A7, A8 — wine,
	// food, combined-profile, and geo-tile views), while A4/A5/A6's v1
	// computations are unique so nothing survives the identical-view drop.
	// The qualitative claim — syntactic 0 everywhere, BFR large wherever
	// related views exist — is what this asserts.
	bfrStill := 0
	for _, e := range t2.Entries {
		if e.BFRImprove > 10 {
			bfrStill++
		}
	}
	if bfrStill < 4 {
		t.Errorf("BFR improved on only %d/8 analysts without identical views", bfrStill)
	}
	if !strings.Contains(t2.Render(), "Table 2") {
		t.Error("render broken")
	}
}
