package experiments

import (
	"fmt"
	"strings"

	"opportune/internal/expr"
	"opportune/internal/meta"
	"opportune/internal/plan"
	"opportune/internal/rewrite"
	"opportune/internal/session"
	"opportune/internal/value"
	"opportune/internal/workload"
)

// Fig10Point is one x-position of the scalability plot.
type Fig10Point struct {
	Views         int
	BFRRuntimeSec float64
	DPRuntimeSec  float64
	BFRCandidates int
	DPCandidates  int
	// DPCapped reports that DP hit its per-target candidate budget
	// (rewrite.DPCandidateCap) — the baseline is infeasible beyond this
	// point, exactly the paper's "prohibitively expensive" regime; its
	// runtime stops growing meaningfully because enumeration is truncated.
	DPCapped bool
}

// Fig10Result is the scalability experiment (§8.3.3, Fig 10): rewrite-
// algorithm runtime for query A3v1 as the number of views in the system
// grows. The paper draws views from ~9,600 retained during development,
// discarding duplicates and exact matches to the query; we synthesize an
// equivalent pool of distinct views by materializing a parameter sweep of
// small queries over the logs.
type Fig10Result struct {
	Points []Fig10Point
}

// Fig10 runs the scalability experiment over the given view counts
// (defaults to the paper's 250/500/750/1000 with a small warm-up point).
func Fig10(c Config, viewCounts []int) (*Fig10Result, error) {
	if len(viewCounts) == 0 {
		viewCounts = []int{50, 250, 500, 750, 1000}
		if c.Quick {
			viewCounts = []int{20, 60, 120}
		}
	}
	maxViews := 0
	for _, n := range viewCounts {
		if n > maxViews {
			maxViews = n
		}
	}
	s, err := newSession(c)
	if err != nil {
		return nil, err
	}
	probe := workload.QueryFor(3, 1)
	w, err := compileQuery(s, probe)
	if err != nil {
		return nil, err
	}
	// Exclusion set: views identical to any target of the probe (the paper
	// discards exact matches "to prevent the algorithms from terminating
	// trivially").
	exclude := make(map[string]bool)
	for _, jn := range w.Nodes {
		exclude[jn.Ann.Canon()] = true
	}
	pool, err := synthesizeViews(s, maxViews, exclude)
	if err != nil {
		return nil, err
	}
	if len(pool) < maxViews {
		return nil, fmt.Errorf("experiments: view pool only reached %d of %d", len(pool), maxViews)
	}

	res := &Fig10Result{}
	for _, n := range viewCounts {
		views := pool[:n]
		wB, err := compileQuery(s, probe)
		if err != nil {
			return nil, err
		}
		bfr := s.Rew.BFRewrite(wB, views)
		wD, err := compileQuery(s, probe)
		if err != nil {
			return nil, err
		}
		dp := s.Rew.DPRewrite(wD, views)
		res.Points = append(res.Points, Fig10Point{
			Views:         n,
			BFRRuntimeSec: bfr.Runtime.Seconds(),
			DPRuntimeSec:  dp.Runtime.Seconds(),
			BFRCandidates: bfr.Counters.CandidatesConsidered,
			DPCandidates:  dp.Counters.CandidatesConsidered,
			DPCapped:      dp.Counters.CandidatesConsidered >= rewrite.DPCandidateCap,
		})
	}
	return res, nil
}

// synthesizeViews materializes a large pool of distinct small views by
// sweeping projections, filters, group-bys, and geo-tiling parameters over
// the logs, mimicking the artifact diversity of a long-lived system.
// Views are registered in the catalog and returned in generation order.
func synthesizeViews(s *session.Session, target int, exclude map[string]bool) ([]*meta.TableInfo, error) {
	var pool []*meta.TableInfo
	seen := make(map[string]bool)
	i := 0
	add := func(p *plan.Node) error {
		if len(pool) >= target {
			return nil
		}
		i++
		name := fmt.Sprintf("pool_%04d", i)
		m, err := s.Run(p, name, session.ModeOriginal)
		if err != nil {
			return err
		}
		info, ok := s.Cat.Table(m.ResultName)
		if !ok {
			return fmt.Errorf("experiments: pool view %s unregistered", name)
		}
		canon := info.Ann.Canon()
		if exclude[canon] || seen[canon] {
			s.Store.Delete(name)
			s.Cat.DropView(name)
			return nil
		}
		seen[canon] = true
		pool = append(pool, info)
		return nil
	}

	cols := [][]string{
		{"tweet_id", "user_id"},
		{"user_id", "text"},
		{"user_id", "ts"},
		{"tweet_id", "user_id", "text"},
		{"user_id", "lat", "lon"},
		{"tweet_id", "ts", "reply_to"},
	}
	aggCols := []string{"user_id", "reply_to", "ts"}
	var thresholds []int64
	for t := int64(0); t < 8000; t += 7 {
		thresholds = append(thresholds, t)
	}
	for _, t := range thresholds {
		if len(pool) >= target {
			return pool, nil
		}
		// filtered projections
		c := cols[int(t)%len(cols)]
		p := plan.Project(plan.Filter(plan.Scan("twtr"),
			expr.NewCmp("ts", expr.Gt, value.NewInt(1600000000+t*97))), c...)
		if err := add(p); err != nil {
			return nil, err
		}
		if len(pool) >= target {
			return pool, nil
		}
		// filtered group-bys
		k := aggCols[int(t)%len(aggCols)]
		g := plan.GroupAgg(plan.Filter(plan.Scan("twtr"),
			expr.NewCmp("tweet_id", expr.Lt, value.NewInt(100+t*13))),
			[]string{k}, plan.AggSpec{Func: plan.AggCount, As: "n"})
		if err := add(g); err != nil {
			return nil, err
		}
		if len(pool) >= target {
			return pool, nil
		}
		// geo-tiling sweeps over a time window (distinct per t)
		size := 0.05 + float64(t%40)*0.025
		tg := plan.GroupAgg(
			plan.Apply(plan.Apply(
				plan.Filter(plan.Scan("twtr"), expr.NewCmp("ts", expr.Gt, value.NewInt(1600000000+t*31))),
				"UDF_EXTRACT_GEO", []string{"lat", "lon"}),
				"UDF_GEO_TILE", []string{"glat", "glon"}, value.NewFloat(size)),
			[]string{"tile"}, plan.AggSpec{Func: plan.AggCount, As: "n"})
		if err := add(tg); err != nil {
			return nil, err
		}
	}
	return pool, nil
}

// Render prints Fig 10.
func (r *Fig10Result) Render() string {
	var rows [][]string
	for _, p := range r.Points {
		dp := f3(p.DPRuntimeSec)
		if p.DPCapped {
			dp += " (capped)"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Views),
			f3(p.BFRRuntimeSec), dp,
			fmt.Sprintf("%d", p.BFRCandidates), fmt.Sprintf("%d", p.DPCandidates),
		})
	}
	var sb strings.Builder
	sb.WriteString("Figure 10: rewrite-algorithm runtime vs number of views (query A3v1)\n")
	sb.WriteString(table([]string{"views", "BFR(s)", "DP(s)", "BFR cand", "DP cand"}, rows))
	sb.WriteString("\npaper shape: DP blows up by a few hundred views; BFR grows gently\n")
	return sb.String()
}
