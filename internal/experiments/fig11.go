package experiments

import (
	"fmt"
	"strings"

	"opportune/internal/session"
	"opportune/internal/workload"
)

// Fig11Point is one trace sample of the anytime analysis.
type Fig11Point struct {
	ElapsedSec    float64
	ErrorPct      float64 // % error relative to the optimal rewrite's cost
	RewritesFound int
}

// Fig11Series is the anytime curve for one query version.
type Fig11Series struct {
	Query  string
	Points []Fig11Point
	// TotalRewritesBFR vs TotalRewritesDP reproduce the paper's
	// observation that BFR terminates after finding far fewer rewrites
	// (e.g. 46 vs 4656 for A1v4).
	TotalRewritesBFR int
	TotalRewritesDP  int
}

// Fig11Result is the search-quality-over-time experiment (§8.3.3, Fig 11):
// A1v1 executes, then BFREWRITE's search for A1v2–v4 is traced; the error
// relative to the optimal rewrite starts at 100% and drops to 0 when the
// optimal is found.
type Fig11Result struct {
	Series []Fig11Series
}

// Fig11 runs the anytime experiment.
func Fig11(c Config) (*Fig11Result, error) {
	s, err := newSession(c)
	if err != nil {
		return nil, err
	}
	if _, err := run(s, workload.QueryFor(1, 1), session.ModeOriginal); err != nil {
		return nil, err
	}
	res := &Fig11Result{}
	for v := 2; v <= 4; v++ {
		q := workload.QueryFor(1, v)
		views := s.Cat.Views()
		w, err := compileQuery(s, q)
		if err != nil {
			return nil, err
		}
		bfr := s.Rew.BFRewrite(w, views)
		wDP, err := compileQuery(s, q)
		if err != nil {
			return nil, err
		}
		dp := s.Rew.DPRewrite(wDP, views)

		orig := bfr.OriginalCost
		opt := bfr.Cost
		series := Fig11Series{
			Query:            fmt.Sprintf("A1v%d", v),
			TotalRewritesBFR: bfr.Counters.RewritesFound,
			TotalRewritesDP:  dp.Counters.RewritesFound,
		}
		for _, ev := range bfr.Trace {
			errPct := 100.0
			if orig > opt {
				errPct = 100 * (ev.BestPlanCost - opt) / (orig - opt)
			} else if ev.BestPlanCost <= opt {
				errPct = 0
			}
			series.Points = append(series.Points, Fig11Point{
				ElapsedSec:    ev.Elapsed.Seconds(),
				ErrorPct:      errPct,
				RewritesFound: ev.RewritesFound,
			})
		}
		res.Series = append(res.Series, series)

		// Advance the session so v+1 sees this version's views, as in the
		// query-evolution setting.
		if _, err := run(s, q, session.ModeBFR); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Render prints the anytime series.
func (r *Fig11Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 11: % error relative to the optimal rewrite during BFREWRITE's search\n")
	for _, s := range r.Series {
		sb.WriteString(fmt.Sprintf("\n%s (BFR found %d rewrites before terminating; DP found %d):\n",
			s.Query, s.TotalRewritesBFR, s.TotalRewritesDP))
		var rows [][]string
		for _, p := range s.Points {
			rows = append(rows, []string{
				fmt.Sprintf("%.6f", p.ElapsedSec), f1(p.ErrorPct), fmt.Sprintf("%d", p.RewritesFound),
			})
		}
		sb.WriteString(table([]string{"elapsed(s)", "error(%)", "rewrites found"}, rows))
	}
	sb.WriteString("\npaper shape: error starts at 100%, drops to 0 shortly after the first rewrite;\nBFR terminates after examining a small fraction of DP's rewrites (e.g. 46 vs 4656)\n")
	return sb.String()
}
