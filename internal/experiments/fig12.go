package experiments

import (
	"fmt"
	"strings"

	"opportune/internal/session"
	"opportune/internal/workload"
)

// Fig12Entry compares BFR and BFR-SYNTACTIC on one query version.
type Fig12Entry struct {
	Query                  string
	OrigSec                float64
	BFRSec, SyntacticSec   float64
	BFRImprove, SynImprove float64
}

// Fig12Result is the caching-comparison experiment (§8.3.4, Fig 12): the
// query-evolution scenario for analyst 1, rewritten by BFR and by the
// syntactic-matching-only variant. Both tie on v2 (identical sub-plans
// exist); the syntactic variant degrades on v3/v4 where reuse requires
// semantic compensation.
type Fig12Result struct {
	Entries []Fig12Entry
}

// Fig12 runs the caching comparison.
func Fig12(c Config) (*Fig12Result, error) {
	bfrS, err := newSession(c)
	if err != nil {
		return nil, err
	}
	synS, err := newSession(c)
	if err != nil {
		return nil, err
	}
	origS, err := newSession(c)
	if err != nil {
		return nil, err
	}
	res := &Fig12Result{}
	for v := 1; v <= 4; v++ {
		q := workload.QueryFor(1, v)
		mo, err := run(origS, q, session.ModeOriginal)
		if err != nil {
			return nil, err
		}
		mb, err := run(bfrS, q, session.ModeBFR)
		if err != nil {
			return nil, err
		}
		ms, err := run(synS, q, session.ModeSyntactic)
		if err != nil {
			return nil, err
		}
		if v == 1 {
			continue // improvement is zero by construction
		}
		res.Entries = append(res.Entries, Fig12Entry{
			Query:        fmt.Sprintf("A1v%d", v),
			OrigSec:      repSeconds(mo),
			BFRSec:       repSeconds(mb),
			SyntacticSec: repSeconds(ms),
			BFRImprove:   pctImprove(repSeconds(mo), repSeconds(mb)),
			SynImprove:   pctImprove(repSeconds(mo), repSeconds(ms)),
		})
	}
	return res, nil
}

// Render prints Fig 12.
func (r *Fig12Result) Render() string {
	var rows [][]string
	for _, e := range r.Entries {
		rows = append(rows, []string{
			e.Query, f3(e.OrigSec), f3(e.BFRSec), f3(e.SyntacticSec),
			f1(e.BFRImprove), f1(e.SynImprove),
		})
	}
	var sb strings.Builder
	sb.WriteString("Figure 12: BFR vs BFR-SYNTACTIC — query evolution for Analyst 1\n")
	sb.WriteString(table([]string{"query", "ORIG(s)", "BFR(s)", "SYN(s)", "BFR improve(%)", "SYN improve(%)"}, rows))
	sb.WriteString("\npaper shape: tie on v2; syntactic falls behind on v3/v4\n")
	return sb.String()
}

// Table2Entry is one holdout analyst of the no-identical-views experiment.
type Table2Entry struct {
	Analyst               int
	BFRImprove            float64
	SyntacticImprove      float64
	IdenticalViewsDropped int
}

// Table2Result is the identical-views-removed experiment (§8.3.4, Table 2):
// the user-evolution scenario after discarding every view identical to a
// target of the holdout query. Syntactic matching finds nothing (0%);
// BFR keeps finding low-cost rewrites via compensation.
type Table2Result struct {
	Entries []Table2Entry
}

// Table2 runs the no-identical-views experiment.
func Table2(c Config) (*Table2Result, error) {
	res := &Table2Result{}
	for holdout := 1; holdout <= 8; holdout++ {
		entry := Table2Entry{Analyst: holdout}
		for _, mode := range []session.Mode{session.ModeBFR, session.ModeSyntactic} {
			s, err := newSession(c)
			if err != nil {
				return nil, err
			}
			for a := 1; a <= 8; a++ {
				if a == holdout {
					continue
				}
				if _, err := run(s, workload.QueryFor(a, 1), session.ModeOriginal); err != nil {
					return nil, err
				}
			}
			q := workload.QueryFor(holdout, 1)
			w, err := compileQuery(s, q)
			if err != nil {
				return nil, err
			}
			// Discard every view identical (semantically or syntactically)
			// to a target of the holdout query.
			targets := make(map[string]bool)
			fps := make(map[string]bool)
			for _, jn := range w.Nodes {
				targets[jn.Ann.Canon()] = true
				fps[jn.PlanFP] = true
			}
			dropped := 0
			for _, v := range s.Cat.Views() {
				if targets[v.Ann.Canon()] || fps[v.PlanFP] {
					s.Store.Delete(v.Name)
					s.Cat.DropView(v.Name)
					dropped++
				}
			}
			mr, err := run(s, q, mode)
			if err != nil {
				return nil, err
			}
			orig, err := newSession(c)
			if err != nil {
				return nil, err
			}
			mo, err := run(orig, q, session.ModeOriginal)
			if err != nil {
				return nil, err
			}
			imp := pctImprove(repSeconds(mo), repSeconds(mr))
			if mode == session.ModeBFR {
				entry.BFRImprove = imp
				entry.IdenticalViewsDropped = dropped
			} else {
				entry.SyntacticImprove = imp
			}
		}
		res.Entries = append(res.Entries, entry)
	}
	return res, nil
}

// Render prints Table 2.
func (r *Table2Result) Render() string {
	header := []string{"method"}
	bfrRow := []string{"BFR"}
	synRow := []string{"BFR-SYNTACTIC"}
	dropRow := []string{"identical views dropped"}
	for _, e := range r.Entries {
		header = append(header, fmt.Sprintf("A%d", e.Analyst))
		bfrRow = append(bfrRow, f1(e.BFRImprove))
		synRow = append(synRow, f1(e.SyntacticImprove))
		dropRow = append(dropRow, fmt.Sprintf("%d", e.IdenticalViewsDropped))
	}
	var sb strings.Builder
	sb.WriteString("Table 2: execution-time improvement with identical views removed\n")
	sb.WriteString(table(header, [][]string{bfrRow, synRow, dropRow}))
	sb.WriteString("\npaper shape: syntactic row all zeros; BFR row remains 51-96%\n")
	return sb.String()
}
