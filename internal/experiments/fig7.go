package experiments

import (
	"fmt"
	"strings"

	"opportune/internal/session"
	"opportune/internal/workload"
)

// Fig7Entry is one bar pair of Fig 7(a): one query version's ORIG and REWR
// execution times plus the Fig 7(b) improvement.
type Fig7Entry struct {
	Analyst, Version int
	OrigSec, RewrSec float64
	ImprovePct       float64
	RewriteWallSec   float64 // reported separately (see package comment)
}

// Fig7Result is the query-evolution experiment (§8.3.1): per analyst, v1 is
// executed and v2–v4 are rewritten against the views of earlier versions;
// views are dropped before each analyst begins.
type Fig7Result struct {
	Entries []Fig7Entry
}

// Fig7 runs the query-evolution experiment.
func Fig7(c Config) (*Fig7Result, error) {
	res := &Fig7Result{}
	for a := 1; a <= 8; a++ {
		rewr, err := newSession(c)
		if err != nil {
			return nil, err
		}
		orig, err := newSession(c)
		if err != nil {
			return nil, err
		}
		for v := 1; v <= 4; v++ {
			q := workload.QueryFor(a, v)
			mo, err := run(orig, q, session.ModeOriginal)
			if err != nil {
				return nil, err
			}
			mr, err := run(rewr, q, session.ModeBFR)
			if err != nil {
				return nil, err
			}
			res.Entries = append(res.Entries, Fig7Entry{
				Analyst: a, Version: v,
				OrigSec:        repSeconds(mo),
				RewrSec:        repSeconds(mr),
				ImprovePct:     pctImprove(repSeconds(mo), repSeconds(mr)),
				RewriteWallSec: mr.RewriteSeconds,
			})
		}
	}
	return res, nil
}

// AvgImprovementV2toV4 is the headline number (paper: average 61%).
func (r *Fig7Result) AvgImprovementV2toV4() float64 {
	var sum float64
	n := 0
	for _, e := range r.Entries {
		if e.Version >= 2 {
			sum += e.ImprovePct
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Render prints Fig 7(a) and Fig 7(b).
func (r *Fig7Result) Render() string {
	var rows [][]string
	for _, e := range r.Entries {
		rows = append(rows, []string{
			fmt.Sprintf("A%dv%d", e.Analyst, e.Version),
			f3(e.OrigSec), f3(e.RewrSec), f1(e.ImprovePct), f3(e.RewriteWallSec),
		})
	}
	var sb strings.Builder
	sb.WriteString("Figure 7: Query Evolution — ORIG vs REWR execution time (simulated s)\n")
	sb.WriteString(table([]string{"query", "ORIG(s)", "REWR(s)", "improve(%)", "rewrite-wall(s)"}, rows))
	sb.WriteString(fmt.Sprintf("\naverage improvement v2-v4: %.1f%% (paper: avg 61%%, range 10-90%%)\n", r.AvgImprovementV2toV4()))
	return sb.String()
}
