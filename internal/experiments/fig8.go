package experiments

import (
	"fmt"
	"strings"

	"opportune/internal/session"
	"opportune/internal/workload"
)

// Fig8Entry is one holdout analyst of the user-evolution experiment.
type Fig8Entry struct {
	Analyst          int
	OrigSec, RewrSec float64
	OrigMovedBytes   int64 // Fig 8(b): data read+shuffled+written
	RewrMovedBytes   int64
	ImprovePct       float64
}

// Fig8Result is the user-evolution experiment (§8.3.2): every analyst
// except a holdout runs their v1 query; the holdout's v1 is then rewritten
// against those opportunistic views. Repeated per holdout with views
// dropped in between.
type Fig8Result struct {
	Entries []Fig8Entry
}

// Fig8 runs the user-evolution experiment.
func Fig8(c Config) (*Fig8Result, error) {
	res := &Fig8Result{}
	for holdout := 1; holdout <= 8; holdout++ {
		s, err := newSession(c)
		if err != nil {
			return nil, err
		}
		for a := 1; a <= 8; a++ {
			if a == holdout {
				continue
			}
			if _, err := run(s, workload.QueryFor(a, 1), session.ModeOriginal); err != nil {
				return nil, err
			}
		}
		q := workload.QueryFor(holdout, 1)
		mr, err := run(s, q, session.ModeBFR)
		if err != nil {
			return nil, err
		}
		// ORIG on a fresh system (deterministic; views cannot affect a
		// non-rewritten run's time, but a clean room keeps it obvious).
		orig, err := newSession(c)
		if err != nil {
			return nil, err
		}
		mo, err := run(orig, q, session.ModeOriginal)
		if err != nil {
			return nil, err
		}
		res.Entries = append(res.Entries, Fig8Entry{
			Analyst:        holdout,
			OrigSec:        repSeconds(mo),
			RewrSec:        repSeconds(mr),
			OrigMovedBytes: mo.DataMovedBytes,
			RewrMovedBytes: mr.DataMovedBytes,
			ImprovePct:     pctImprove(repSeconds(mo), repSeconds(mr)),
		})
	}
	return res, nil
}

// Render prints Fig 8(a), (b), (c).
func (r *Fig8Result) Render() string {
	var rows [][]string
	for _, e := range r.Entries {
		rows = append(rows, []string{
			fmt.Sprintf("A%d", e.Analyst),
			f3(e.OrigSec), f3(e.RewrSec),
			gb(e.OrigMovedBytes), gb(e.RewrMovedBytes),
			f1(e.ImprovePct),
		})
	}
	var sb strings.Builder
	sb.WriteString("Figure 8: User Evolution — holdout analyst's v1 rewritten with other analysts' views\n")
	sb.WriteString(table([]string{"holdout", "ORIG(s)", "REWR(s)", "ORIG moved(GB)", "REWR moved(GB)", "improve(%)"}, rows))
	sb.WriteString("\npaper shape: REWR always lower; improvements ~50-90%\n")
	return sb.String()
}

// Table1Result is the incremental-analyst experiment (Table 1): A5v3's
// improvement as the views of more analysts accumulate.
type Table1Result struct {
	// ImprovePct[k] is the improvement after k+1 analysts' full sessions
	// (all four versions) are present.
	ImprovePct  []float64
	BaselineSec float64
}

// Table1 runs the incremental-analyst experiment. Analysts are added in
// order 1,2,3,4,6,7,8 (A5 itself is the probe, as in the paper).
func Table1(c Config) (*Table1Result, error) {
	probe := workload.QueryFor(5, 3)
	orig, err := newSession(c)
	if err != nil {
		return nil, err
	}
	mo, err := run(orig, probe, session.ModeOriginal)
	if err != nil {
		return nil, err
	}
	base := repSeconds(mo)

	s, err := newSession(c)
	if err != nil {
		return nil, err
	}
	res := &Table1Result{BaselineSec: base}
	for _, a := range []int{1, 2, 3, 4, 6, 7, 8} {
		for v := 1; v <= 4; v++ {
			if _, err := run(s, workload.QueryFor(a, v), session.ModeOriginal); err != nil {
				return nil, err
			}
		}
		// Re-execute the probe with rewriting; every view the probe run
		// itself materialized is dropped afterwards so the next round only
		// benefits from the added analysts, never from earlier probes.
		before := make(map[string]bool)
		for _, v := range s.Cat.Views() {
			before[v.Name] = true
		}
		mr, err := run(s, probe, session.ModeBFR)
		if err != nil {
			return nil, err
		}
		res.ImprovePct = append(res.ImprovePct, pctImprove(base, repSeconds(mr)))
		for _, v := range s.Cat.Views() {
			if !before[v.Name] {
				s.Store.Delete(v.Name)
				s.Cat.DropView(v.Name)
			}
		}
		s.Cat.SyncWithStore(s.Store)
	}
	return res, nil
}

// Render prints Table 1.
func (r *Table1Result) Render() string {
	header := []string{"analysts added"}
	row := []string{"improvement(%)"}
	for i, p := range r.ImprovePct {
		header = append(header, fmt.Sprintf("%d", i+1))
		row = append(row, f1(p))
	}
	var sb strings.Builder
	sb.WriteString("Table 1: A5v3 improvement as more analysts' views accumulate\n")
	sb.WriteString(table(header, [][]string{row}))
	sb.WriteString("\npaper shape: non-decreasing, 0% -> 73% -> ... -> 89%\n")
	return sb.String()
}
