package experiments

import (
	"fmt"
	"strings"

	"opportune/internal/session"
	"opportune/internal/workload"
)

// Fig9Entry compares BFR and DP on one holdout analyst's query.
type Fig9Entry struct {
	Analyst int

	BFRCandidates, DPCandidates int
	BFRAttempts, DPAttempts     int
	BFRRuntimeSec, DPRuntimeSec float64
	BFRCost, DPCost             float64
	CostsAgree                  bool
}

// Fig9Result is the algorithm-comparison experiment (§8.3.3, Fig 9): in the
// user-evolution setting, each holdout analyst's v1 is rewritten by both
// BFR and DP; the algorithms find identical rewrites but BFR examines far
// fewer candidates, attempts far fewer rewrites, and runs faster.
type Fig9Result struct {
	Entries []Fig9Entry
}

// Fig9 runs the algorithm comparison.
func Fig9(c Config) (*Fig9Result, error) {
	res := &Fig9Result{}
	for holdout := 1; holdout <= 8; holdout++ {
		s, err := newSession(c)
		if err != nil {
			return nil, err
		}
		for a := 1; a <= 8; a++ {
			if a == holdout {
				continue
			}
			if _, err := run(s, workload.QueryFor(a, 1), session.ModeOriginal); err != nil {
				return nil, err
			}
		}
		q := workload.QueryFor(holdout, 1)
		views := s.Cat.Views()

		wBFR, err := compileQuery(s, q)
		if err != nil {
			return nil, err
		}
		bfr := s.Rew.BFRewrite(wBFR, views)

		wDP, err := compileQuery(s, q)
		if err != nil {
			return nil, err
		}
		dp := s.Rew.DPRewrite(wDP, views)

		res.Entries = append(res.Entries, Fig9Entry{
			Analyst:       holdout,
			BFRCandidates: bfr.Counters.CandidatesConsidered,
			DPCandidates:  dp.Counters.CandidatesConsidered,
			BFRAttempts:   bfr.Counters.RewriteAttempts,
			DPAttempts:    dp.Counters.RewriteAttempts,
			BFRRuntimeSec: bfr.Runtime.Seconds(),
			DPRuntimeSec:  dp.Runtime.Seconds(),
			BFRCost:       bfr.Cost,
			DPCost:        dp.Cost,
			CostsAgree:    agree(bfr.Cost, dp.Cost),
		})
	}
	return res, nil
}

func agree(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9*(1+a+b)
}

// Render prints Fig 9(a), (b), (c).
func (r *Fig9Result) Render() string {
	var rows [][]string
	for _, e := range r.Entries {
		rows = append(rows, []string{
			fmt.Sprintf("A%d", e.Analyst),
			fmt.Sprintf("%d", e.BFRCandidates), fmt.Sprintf("%d", e.DPCandidates),
			fmt.Sprintf("%d", e.BFRAttempts), fmt.Sprintf("%d", e.DPAttempts),
			f3(e.BFRRuntimeSec), f3(e.DPRuntimeSec),
			fmt.Sprintf("%v", e.CostsAgree),
		})
	}
	var sb strings.Builder
	sb.WriteString("Figure 9: BFR vs DP — candidates considered (a), rewrite attempts (b), runtime (c)\n")
	sb.WriteString(table([]string{"holdout", "BFR cand", "DP cand", "BFR attempts", "DP attempts", "BFR(s)", "DP(s)", "same rewrite cost"}, rows))
	sb.WriteString("\npaper shape: identical rewrites; BFR orders of magnitude less work on every metric\n")
	return sb.String()
}
