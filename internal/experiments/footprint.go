package experiments

import (
	"fmt"
	"strings"

	"opportune/internal/session"
	"opportune/internal/storage"
	"opportune/internal/workload"
)

// FootprintResult measures the storage cost of retaining every view for the
// whole 32-query workload (§10: the paper saw only ~2.0× the base data,
// because logs are wide and queries consume few attributes).
type FootprintResult struct {
	BaseBytes  int64
	ViewBytes  int64
	ViewCount  int
	Ratio      float64
	PerAnalyst []float64 // cumulative ratio after each analyst's session
}

// Footprint runs all 32 queries (no rewriting, as a fresh system would) and
// reports the accumulated view footprint.
func Footprint(c Config) (*FootprintResult, error) {
	s, err := newSession(c)
	if err != nil {
		return nil, err
	}
	var base int64
	for _, name := range s.Store.List(storage.Base) {
		if ds, ok := s.Store.Meta(name); ok {
			base += ds.SizeBytes
		}
	}
	res := &FootprintResult{BaseBytes: base}
	for a := 1; a <= 8; a++ {
		for v := 1; v <= 4; v++ {
			if _, err := run(s, workload.QueryFor(a, v), session.ModeOriginal); err != nil {
				return nil, err
			}
		}
		res.PerAnalyst = append(res.PerAnalyst, float64(s.Store.ViewBytes())/float64(base))
	}
	res.ViewBytes = s.Store.ViewBytes()
	res.ViewCount = len(s.Cat.Views())
	res.Ratio = float64(res.ViewBytes) / float64(base)
	return res, nil
}

// Render prints the footprint summary.
func (r *FootprintResult) Render() string {
	var sb strings.Builder
	sb.WriteString("View storage footprint (§10): every view of all 32 queries retained\n")
	rows := [][]string{
		{"base data (bytes)", fmt.Sprintf("%d", r.BaseBytes)},
		{"all views (bytes)", fmt.Sprintf("%d", r.ViewBytes)},
		{"view count", fmt.Sprintf("%d", r.ViewCount)},
		{"views / base ratio", fmt.Sprintf("%.2fx", r.Ratio)},
	}
	sb.WriteString(table([]string{"metric", "value"}, rows))
	sb.WriteString("\ncumulative ratio per analyst session:")
	for i, p := range r.PerAnalyst {
		fmt.Fprintf(&sb, " A%d=%.2fx", i+1, p)
	}
	sb.WriteString("\n\npaper: all views for every query cost only ~2.0x the base data,\nbecause the logs are wide and each query consumes few attributes\n")
	return sb.String()
}
