package experiments

import (
	"fmt"
	"time"

	"opportune/internal/obs"
	"opportune/internal/session"
	"opportune/internal/workload"
)

// Fusion measures what compiling map chains into fused columnar kernels buys
// over interpreting them stage by stage (the Tupleware direction applied to
// our opportunistic MR setting). Both arms run the identical analyst
// workload on identical sessions; only the fused arm's optimizer is allowed
// to compile Project/Filter/map-UDF chains into batch kernels. Results are
// proven byte-identical and every counter outside the mr_fused_* family —
// volumes, simulated seconds, retries — must match exactly, so the entire
// delta is interpreter overhead.
type Fusion struct {
	Queries int

	FusedWallSeconds  float64 // measured execution wall-clock, fused arm
	InterpWallSeconds float64 // measured execution wall-clock, interpreter arm
	SimSeconds        float64 // simulated seconds (identical across arms)

	EligibleJobs int64 // jobs whose map side was a candidate chain
	FusedJobs    int64 // candidates compiled to batch kernels, fused arm
	FusedBatches int64 // splits that completed through a kernel
	FusedRows    int64 // input rows those splits carried
	Fallbacks    int64 // compile-time fallbacks (explode/unsupported/…), fused arm

	ReduceEligible int64 // reduce jobs classified for reduce-side fusion
	ReduceFused    int64 // reduce jobs whose combine+reduce compiled to agg kernels
	CrossFused     int64 // partition-local jobs fused through the shuffle boundary
	ReduceGroups   int64 // key groups finalized by the reduce kernels
	ReduceRows     int64 // shuffle records folded by the reduce kernels
}

// Render prints the comparison.
func (r *Fusion) Render() string {
	rows := [][]string{
		{"fused", f3(r.FusedWallSeconds), f3(r.SimSeconds),
			fmt.Sprint(r.FusedJobs), fmt.Sprint(r.FusedBatches), fmt.Sprint(r.Fallbacks)},
		{"interpreted", f3(r.InterpWallSeconds), f3(r.SimSeconds), "0", "0",
			fmt.Sprint(r.EligibleJobs)},
	}
	return fmt.Sprintf("Map-pipeline fusion: %d queries, %d/%d eligible map chains compiled to batch kernels\n%s\nfused jobs %d processed %d rows in %d batches (results byte-identical across arms)\nreduce-fused %d/%d grouped jobs (%d cross-boundary) finalized %d groups from %d shuffle records\n",
		r.Queries, r.FusedJobs, r.EligibleJobs,
		table([]string{"executor", "wall_s", "sim_s", "fused_jobs", "batches", "fallbacks"}, rows),
		r.FusedJobs, r.FusedRows, r.FusedBatches,
		r.ReduceFused, r.ReduceEligible, r.CrossFused, r.ReduceGroups, r.ReduceRows)
}

// RunFusion runs the experiment. It fails loudly if the arms diverge on any
// result relation, on any counter outside the mr_fused_* family, or on
// simulated seconds — fusion is required to be invisible everywhere except
// wall-clock and its own telemetry.
func RunFusion(cfg Config) (*Fusion, error) {
	queries := workload.AllQueries()
	if cfg.Quick {
		queries = queries[:8:8]
	}
	// Reduce-heavy arm: the partitioned grouped queries run over hash-
	// distributed bases, so their boundaries exercise the combine/reduce agg
	// kernels and — where the group key matches the layout — the cross-
	// boundary fused chain.
	queries = append(queries, workload.PartitionQueries()...)
	out := &Fusion{Queries: len(queries)}

	type arm struct {
		s     *session.Session
		reg   *obs.Registry
		sim   float64
		wall  float64
		names map[string]string
	}
	arms := make([]*arm, 2)
	for i := range arms {
		s, err := newSession(cfg)
		if err != nil {
			return nil, err
		}
		a := &arm{s: s, reg: obs.NewRegistry(), names: make(map[string]string)}
		// Private registries per arm: the fused counter family must differ
		// between arms and everything else must not.
		s.Instrument(a.reg)
		workload.PartitionBases(s, 8)
		s.Opt.DisableFusion = i == 1
		t0 := time.Now()
		for _, q := range queries {
			// ModeOriginal keeps both arms on structurally identical plans:
			// the only difference is the map-side execution strategy.
			m, err := run(s, q, session.ModeOriginal)
			if err != nil {
				return nil, err
			}
			a.sim += repSeconds(m)
			a.names[q.Name] = m.ResultName
		}
		a.wall = time.Since(t0).Seconds()
		arms[i] = a
	}
	fused, interp := arms[0], arms[1]
	out.FusedWallSeconds = fused.wall
	out.InterpWallSeconds = interp.wall
	out.SimSeconds = fused.sim

	fc, ic := fused.reg.Snapshot(), interp.reg.Snapshot()
	out.EligibleJobs = fc.Counters["mr_fused_eligible_total"]
	out.FusedJobs = fc.Counters["mr_fused_jobs_total"]
	out.FusedBatches = fc.Counters["mr_fused_batches_total"]
	out.FusedRows = fc.Counters["mr_fused_rows_total"]
	out.Fallbacks = out.EligibleJobs - out.FusedJobs
	out.ReduceEligible = fc.Counters["mr_fused_reduce_eligible_total"]
	out.ReduceFused = fc.Counters["mr_fused_reduce_jobs_total"]
	out.CrossFused = fc.Counters["mr_fused_reduce_crossboundary_jobs_total"]
	out.ReduceGroups = fc.Counters["mr_fused_reduce_groups_total"]
	out.ReduceRows = fc.Counters["mr_fused_reduce_rows_total"]

	// The oracle half: byte-identical results, identical counters outside
	// mr_fused_*, identical simulated time, and real fused work on one side
	// only.
	for _, q := range queries {
		a, err := fused.s.Store.Read(fused.names[q.Name])
		if err != nil {
			return nil, fmt.Errorf("experiments: fusion: fused arm lost %s: %w", q.Name, err)
		}
		b, err := interp.s.Store.Read(interp.names[q.Name])
		if err != nil {
			return nil, fmt.Errorf("experiments: fusion: interpreter arm lost %s: %w", q.Name, err)
		}
		if a.Fingerprint() != b.Fingerprint() {
			return nil, fmt.Errorf("experiments: fusion: %s diverged between fused and interpreted execution", q.Name)
		}
	}
	for k, v := range fc.Counters {
		if len(k) >= 9 && k[:9] == "mr_fused_" {
			continue
		}
		if iv := ic.Counters[k]; iv != v {
			return nil, fmt.Errorf("experiments: fusion: counter %s diverged (%d fused vs %d interpreted)", k, v, iv)
		}
	}
	if fused.sim != interp.sim {
		return nil, fmt.Errorf("experiments: fusion: simulated seconds diverged (%.9f vs %.9f) — fusion repriced something",
			fused.sim, interp.sim)
	}
	if out.FusedJobs <= 0 || out.FusedBatches <= 0 {
		return nil, fmt.Errorf("experiments: fusion: fused arm compiled no batch kernels (jobs=%d batches=%d)",
			out.FusedJobs, out.FusedBatches)
	}
	if j := ic.Counters["mr_fused_jobs_total"]; j != 0 {
		return nil, fmt.Errorf("experiments: fusion: interpreter arm ran %d fused jobs with fusion disabled", j)
	}
	if e, d := ic.Counters["mr_fused_eligible_total"], ic.Counters["mr_fused_fallback_total{reason=disabled}"]; d == 0 || d > e {
		return nil, fmt.Errorf("experiments: fusion: interpreter arm fallback accounting off (eligible=%d disabled=%d)", e, d)
	}
	// Reduce-side oracles: the fused arm must have compiled agg kernels and
	// crossed at least one partition-local boundary with zero runtime
	// bailouts; the interpreter arm classified everything out as disabled.
	if out.ReduceFused <= 0 || out.CrossFused <= 0 || out.ReduceGroups <= 0 {
		return nil, fmt.Errorf("experiments: fusion: fused arm compiled no reduce kernels (jobs=%d cross=%d groups=%d)",
			out.ReduceFused, out.CrossFused, out.ReduceGroups)
	}
	if b := fc.Counters["mr_fused_reduce_runtime_fallback_total"]; b != 0 {
		return nil, fmt.Errorf("experiments: fusion: %d reduce kernels bailed at runtime", b)
	}
	if j := ic.Counters["mr_fused_reduce_jobs_total"]; j != 0 {
		return nil, fmt.Errorf("experiments: fusion: interpreter arm ran %d reduce-fused jobs with fusion disabled", j)
	}
	if e, d := ic.Counters["mr_fused_reduce_eligible_total"], ic.Counters["mr_fused_reduce_fallback_total{reason=disabled}"]; e == 0 || d != e {
		return nil, fmt.Errorf("experiments: fusion: interpreter arm reduce fallback accounting off (eligible=%d disabled=%d)", e, d)
	}
	return out, nil
}
