package experiments

import (
	"strings"
	"testing"
)

func TestFusionShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	r, err := RunFusion(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Queries != 8 {
		t.Fatalf("queries = %d", r.Queries)
	}
	if r.FusedJobs <= 0 || r.FusedJobs > r.EligibleJobs {
		t.Errorf("fused jobs = %d of %d eligible", r.FusedJobs, r.EligibleJobs)
	}
	if r.FusedBatches <= 0 || r.FusedRows <= 0 {
		t.Errorf("no fused batch work: batches=%d rows=%d", r.FusedBatches, r.FusedRows)
	}
	if r.Fallbacks != r.EligibleJobs-r.FusedJobs {
		t.Errorf("fallback accounting: %d != %d-%d", r.Fallbacks, r.EligibleJobs, r.FusedJobs)
	}
	if r.SimSeconds <= 0 {
		t.Error("no simulated time")
	}
	out := r.Render()
	for _, want := range []string{"fused jobs", "byte-identical", "interpreted"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
