package experiments

import (
	"strings"
	"testing"
)

func TestFusionShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	r, err := RunFusion(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 8 quick analyst queries plus the partitioned grouped queries of the
	// reduce-heavy arm.
	if r.Queries != 13 {
		t.Fatalf("queries = %d", r.Queries)
	}
	if r.FusedJobs <= 0 || r.FusedJobs > r.EligibleJobs {
		t.Errorf("fused jobs = %d of %d eligible", r.FusedJobs, r.EligibleJobs)
	}
	if r.FusedBatches <= 0 || r.FusedRows <= 0 {
		t.Errorf("no fused batch work: batches=%d rows=%d", r.FusedBatches, r.FusedRows)
	}
	if r.Fallbacks != r.EligibleJobs-r.FusedJobs {
		t.Errorf("fallback accounting: %d != %d-%d", r.Fallbacks, r.EligibleJobs, r.FusedJobs)
	}
	if r.SimSeconds <= 0 {
		t.Error("no simulated time")
	}
	if r.ReduceFused <= 0 || r.ReduceFused > r.ReduceEligible {
		t.Errorf("reduce-fused jobs = %d of %d eligible", r.ReduceFused, r.ReduceEligible)
	}
	if r.CrossFused <= 0 || r.CrossFused > r.ReduceFused {
		t.Errorf("cross-boundary jobs = %d of %d reduce-fused", r.CrossFused, r.ReduceFused)
	}
	if r.ReduceGroups <= 0 || r.ReduceRows < r.ReduceGroups {
		t.Errorf("reduce kernel work: groups=%d rows=%d", r.ReduceGroups, r.ReduceRows)
	}
	out := r.Render()
	for _, want := range []string{"fused jobs", "byte-identical", "interpreted", "reduce-fused"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
