package experiments

import (
	"fmt"

	"opportune/internal/session"
	"opportune/internal/workload"
)

// Ingest measures what incremental view maintenance buys under an
// append-heavy TWTR firehose. Both arms install the same standing views
// (workload.IngestQueries — one merge-by-key aggregate, one map-only
// projection, one untouched 4SQ view, one join that can only be
// invalidated), then absorb the same deterministic append batches. The
// incremental arm maintains what it can and recomputes only invalidated
// views; the recompute arm (DisableMaintenance) invalidates every
// dependent view and rebuilds on demand, which is what the system did
// before maintenance existed.
type Ingest struct {
	Batches      int
	RowsPerBatch int
	Views        int

	Maintained      int // maintenance events across all batches (incremental arm)
	Invalidated     int // invalidation events across all batches (incremental arm)
	FullInvalidated int // invalidation events across all batches (recompute arm)

	IncMaintainSeconds float64 // delta jobs + merge + refresh, incremental arm
	IncSimSeconds      float64 // total freshness cost, incremental arm
	FullSimSeconds     float64 // total freshness cost, recompute arm
	SimSpeedup         float64
}

// Render prints the comparison.
func (r *Ingest) Render() string {
	rows := [][]string{
		{"incremental", f3(r.IncSimSeconds), f3(r.IncMaintainSeconds),
			fmt.Sprint(r.Maintained), fmt.Sprint(r.Invalidated)},
		{"recompute", f3(r.FullSimSeconds), "-", "0", fmt.Sprint(r.FullInvalidated)},
	}
	return fmt.Sprintf("Ingest maintenance: %d standing views, %d batches x %d rows\n%s\nsim speedup %.2fx (freshness cost per ingested batch)\n",
		r.Views, r.Batches, r.RowsPerBatch,
		table([]string{"strategy", "sim_s", "maintain_s", "maintained", "invalidated"}, rows),
		r.SimSpeedup)
}

// ingestArm drives one session through every append batch, keeping all
// standing views fresh: after each append, any view the session could not
// maintain is recomputed by re-running its query (BFR mode, so recomputes
// still benefit from whatever views survive). Returns the total simulated
// freshness cost.
func ingestArm(s *session.Session, sc workload.Scale, queries []workload.Query,
	batches, rows int, names map[string]string, out *Ingest, count bool) (float64, error) {
	var total float64
	for b := 0; b < batches; b++ {
		rep, err := s.AppendRows("twtr", workload.AppendBatch(sc, b, rows))
		if err != nil {
			return 0, err
		}
		total += rep.MaintainSeconds + rep.StatsSeconds
		if count {
			out.Maintained += len(rep.Maintained)
			out.Invalidated += len(rep.Invalidated)
			out.IncMaintainSeconds += rep.MaintainSeconds
		} else {
			out.FullInvalidated += len(rep.Invalidated)
		}
		for _, q := range queries {
			if s.Store.Has(names[q.Name]) {
				continue // maintained (or untouched): already fresh
			}
			m, err := run(s, q, session.ModeBFR)
			if err != nil {
				return 0, err
			}
			// A BFR recompute may answer from an existing (fresh, maintained)
			// materialization instead of writing the sink name; track where
			// this query's current answer lives.
			names[q.Name] = m.ResultName
			total += repSeconds(m)
		}
	}
	return total, nil
}

// RunIngest runs the experiment.
func RunIngest(cfg Config) (*Ingest, error) {
	sc := cfg.scale()
	queries := workload.IngestQueries()
	out := &Ingest{Batches: 6, RowsPerBatch: sc.Tweets / 40, Views: len(queries)}
	if cfg.Quick {
		out.Batches = 3
	}
	if out.RowsPerBatch < 10 {
		out.RowsPerBatch = 10
	}

	// Both arms build the same standing views first; that cost is shared
	// setup, not freshness cost, and is excluded from the comparison.
	arms := make([]*session.Session, 2)
	names := make([]map[string]string, 2)
	for i := range arms {
		s, err := newSession(cfg)
		if err != nil {
			return nil, err
		}
		arms[i] = s
		names[i] = make(map[string]string, len(queries))
		s.DisableMaintenance = i == 1
		for _, q := range queries {
			if _, err := run(s, q, session.ModeOriginal); err != nil {
				return nil, err
			}
			names[i][q.Name] = q.Name
		}
	}

	var err error
	if out.IncSimSeconds, err = ingestArm(arms[0], sc, queries, out.Batches, out.RowsPerBatch, names[0], out, true); err != nil {
		return nil, err
	}
	if out.FullSimSeconds, err = ingestArm(arms[1], sc, queries, out.Batches, out.RowsPerBatch, names[1], out, false); err != nil {
		return nil, err
	}
	if out.IncSimSeconds > 0 {
		out.SimSpeedup = out.FullSimSeconds / out.IncSimSeconds
	}

	// Differential check: after identical ingests, both arms must hold
	// byte-identical standing views.
	for _, q := range queries {
		a, err := arms[0].Store.Read(names[0][q.Name])
		if err != nil {
			return nil, fmt.Errorf("experiments: ingest: incremental arm lost %s: %w", q.Name, err)
		}
		b, err := arms[1].Store.Read(names[1][q.Name])
		if err != nil {
			return nil, fmt.Errorf("experiments: ingest: recompute arm lost %s: %w", q.Name, err)
		}
		if a.Fingerprint() != b.Fingerprint() {
			return nil, fmt.Errorf("experiments: ingest: %s diverged between incremental maintenance and recompute", q.Name)
		}
	}
	return out, nil
}
