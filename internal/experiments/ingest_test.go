package experiments

import (
	"strings"
	"testing"
)

func TestRunIngest(t *testing.T) {
	r, err := RunIngest(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Views != 4 || r.Batches != 3 {
		t.Fatalf("shape = %+v", r)
	}
	// The merge-by-key aggregate and the map-only projection must be
	// maintained on every batch; the recompute arm maintains nothing.
	if want := 2 * r.Batches; r.Maintained != want {
		t.Errorf("Maintained = %d, want %d (ing_activity + ing_replies per batch)", r.Maintained, want)
	}
	if r.Invalidated == 0 {
		t.Error("the join view should be invalidated every batch")
	}
	if r.FullInvalidated <= r.Invalidated {
		t.Errorf("recompute arm invalidated %d <= incremental arm %d", r.FullInvalidated, r.Invalidated)
	}
	// The ISSUE's acceptance bar: incremental maintenance strictly cheaper.
	if r.IncSimSeconds >= r.FullSimSeconds {
		t.Errorf("incremental %f sim-s not below full recompute %f", r.IncSimSeconds, r.FullSimSeconds)
	}
	if r.IncMaintainSeconds <= 0 || r.IncMaintainSeconds >= r.IncSimSeconds {
		t.Errorf("maintain seconds %f outside (0, %f)", r.IncMaintainSeconds, r.IncSimSeconds)
	}
	out := r.Render()
	for _, want := range []string{"incremental", "recompute", "sim speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
