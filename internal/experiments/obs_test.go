package experiments

import (
	"reflect"
	"testing"

	"opportune/internal/obs"
)

// runFig7Quick runs the quick Fig 7 workload against a fresh registry at the
// given parallelism and returns the metrics snapshot.
func runFig7Quick(t *testing.T, workers, reduceTasks int) obs.Snapshot {
	t.Helper()
	cfg := QuickConfig()
	cfg.Workers = workers
	cfg.ReduceTasks = reduceTasks
	cfg.Obs = obs.NewRegistry()
	if _, err := Fig7(cfg); err != nil {
		t.Fatal(err)
	}
	return cfg.Obs.Snapshot()
}

// TestMetricsDeterministicAcrossParallelism is the observability layer's
// core guarantee: counters and float counters hold only simulated time,
// volumes, and event counts, so a workload produces identical values at any
// Workers/ReduceTasks setting. Wall-clock lives in histograms and spans,
// which are excluded here.
func TestMetricsDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick Fig 7 workload three times")
	}
	ref := runFig7Quick(t, 1, 1)
	if len(ref.Counters) == 0 || len(ref.FloatCounters) == 0 {
		t.Fatalf("reference run recorded no metrics: %+v", ref)
	}
	for _, k := range []string{"mr_jobs_total", "session_queries_total{mode=bfr}", "storage_read_bytes_total"} {
		if ref.Counters[k] <= 0 {
			t.Errorf("counter %s missing from instrumented run", k)
		}
	}
	for _, cfg := range []struct{ w, r int }{{4, 3}, {2, 8}} {
		got := runFig7Quick(t, cfg.w, cfg.r)
		if !reflect.DeepEqual(got.Counters, ref.Counters) {
			t.Errorf("workers=%d R=%d: counters differ\n got %v\nwant %v", cfg.w, cfg.r, got.Counters, ref.Counters)
		}
		if !reflect.DeepEqual(got.FloatCounters, ref.FloatCounters) {
			t.Errorf("workers=%d R=%d: float counters differ\n got %v\nwant %v", cfg.w, cfg.r, got.FloatCounters, ref.FloatCounters)
		}
	}
}

// TestSessionSpansAndRewriteCounters checks the session layer's span export
// and rewrite-counter publication through a real workload run.
func TestSessionSpansAndRewriteCounters(t *testing.T) {
	cfg := QuickConfig()
	cfg.Obs = obs.NewRegistry()
	if _, err := Fig7(cfg); err != nil {
		t.Fatal(err)
	}
	snap := cfg.Obs.Snapshot()
	if snap.Counters["rewrite_candidates_considered_total{mode=bfr}"] <= 0 {
		t.Errorf("no rewrite candidates counted: %v", snap.Counters)
	}
	if snap.Counters["rewrites_improved_total{mode=bfr}"] <= 0 {
		t.Error("quick Fig 7 found no improving rewrites")
	}
	if snap.FloatCounters["session_exec_sim_seconds_total{mode=orig}"] <= 0 {
		t.Error("no execution sim-seconds for orig mode")
	}
	if snap.Counters["optimizer_estimate_cache_hits_total{src=query}"] <= 0 {
		t.Error("rewrite search hit the per-query estimate cache zero times")
	}

	var query, plan, execute int
	var walk func(sp obs.SpanExport)
	walk = func(sp obs.SpanExport) {
		switch sp.Phase {
		case "query":
			query++
		case "plan":
			plan++
		case "execute":
			execute++
		}
		for _, c := range sp.Children {
			walk(c)
		}
	}
	for _, sp := range cfg.Obs.Spans() {
		walk(sp)
	}
	wantQueries := snap.Counters["session_queries_total{mode=orig}"] + snap.Counters["session_queries_total{mode=bfr}"]
	if int64(query) != wantQueries {
		t.Errorf("query spans = %d, session_queries_total = %d", query, wantQueries)
	}
	if plan != query {
		t.Errorf("plan spans = %d, want one per query (%d)", plan, query)
	}
	if execute == 0 {
		t.Error("no execute spans recorded")
	}
}
