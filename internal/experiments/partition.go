package experiments

import (
	"fmt"

	"opportune/internal/obs"
	"opportune/internal/session"
	"opportune/internal/workload"
)

// Partition measures what partition-aware planning buys on a join/group-
// heavy workload over hash-clustered logs. Both arms install the identical
// physical design (workload.PartitionBases: twtr/fsq bucketed on user_id,
// land on location_id) and run the identical queries; only the aware arm's
// optimizer is allowed to notice the layout and compile shuffle-free jobs.
// Results are proven byte-identical across arms, so the entire delta is
// eliminated transfer.
type Partition struct {
	Parts   int // bucket count of the declared layouts
	Queries int

	AwareSimSeconds    float64 // exec + stats, aware arm
	BaselineSimSeconds float64 // exec + stats, baseline arm
	SpeedupPct         float64

	ShuffleBytes    int64 // bytes entering grouping (identical across arms)
	EliminatedBytes int64 // co-located portion, aware arm
	KeyedJobs       int64 // jobs that shuffled at all, aware arm
	Hits            int64 // jobs on the partition-preserving path
	Misses          int64 // keyed jobs that paid a full shuffle
}

// Render prints the comparison.
func (r *Partition) Render() string {
	rows := [][]string{
		{"aware", f3(r.AwareSimSeconds), gb(r.ShuffleBytes), gb(r.EliminatedBytes),
			fmt.Sprint(r.Hits), fmt.Sprint(r.Misses)},
		{"baseline", f3(r.BaselineSimSeconds), gb(r.ShuffleBytes), gb(0),
			"0", fmt.Sprint(r.KeyedJobs)},
	}
	return fmt.Sprintf("Partition-aware planning: %d queries over logs hash-clustered into %d buckets\n%s\nsim improvement %.1f%% (results byte-identical across arms)\n",
		r.Queries, r.Parts,
		table([]string{"planner", "sim_s", "shuffle_gb", "eliminated_gb", "hits", "misses"}, rows),
		r.SpeedupPct)
}

// RunPartition runs the experiment. It fails loudly if the arms diverge on
// any result relation, if the aware arm eliminates nothing, or if awareness
// does not strictly lower simulated time — those are the claims the
// experiment exists to demonstrate.
func RunPartition(cfg Config) (*Partition, error) {
	queries := workload.PartitionQueries()
	out := &Partition{Queries: len(queries)}

	type arm struct {
		s     *session.Session
		reg   *obs.Registry
		total float64
		names map[string]string
	}
	arms := make([]*arm, 2)
	for i := range arms {
		s, err := newSession(cfg)
		if err != nil {
			return nil, err
		}
		a := &arm{s: s, reg: obs.NewRegistry(), names: make(map[string]string)}
		// Each arm gets a private registry so the partition counter families
		// can be compared between arms without cross-contamination.
		s.Instrument(a.reg)
		s.Opt.DisablePartitionAware = i == 1
		workload.PartitionBases(s, s.Opt.Params.DefaultPartitions)
		for _, q := range queries {
			// ModeOriginal keeps the two arms on structurally identical
			// plans, so the only difference is the execution path — the
			// shuffle-volume equality below is then an exact oracle. (The
			// rewriter's layout preference is exercised by the rewrite
			// tests, not here.)
			m, err := run(s, q, session.ModeOriginal)
			if err != nil {
				return nil, err
			}
			a.total += repSeconds(m)
			a.names[q.Name] = m.ResultName
		}
		arms[i] = a
	}
	aware, base := arms[0], arms[1]
	out.Parts = aware.s.Opt.Params.DefaultPartitions
	out.AwareSimSeconds = aware.total
	out.BaselineSimSeconds = base.total
	out.SpeedupPct = pctImprove(out.BaselineSimSeconds, out.AwareSimSeconds)

	ac, bc := aware.reg.Snapshot().Counters, base.reg.Snapshot().Counters
	out.ShuffleBytes = ac["mr_shuffle_bytes_total"]
	out.EliminatedBytes = ac["mr_shuffle_bytes_eliminated_total"]
	out.KeyedJobs = ac["mr_keyed_jobs_total"]
	out.Hits = ac["mr_partition_local_jobs_total"]
	out.Misses = ac["mr_partition_shuffle_jobs_total"]

	// The oracle half of the experiment: identical results, identical data
	// entering grouping, and a strict win from eliminating transfer.
	for _, q := range queries {
		a, err := aware.s.Store.Read(aware.names[q.Name])
		if err != nil {
			return nil, fmt.Errorf("experiments: partition: aware arm lost %s: %w", q.Name, err)
		}
		b, err := base.s.Store.Read(base.names[q.Name])
		if err != nil {
			return nil, fmt.Errorf("experiments: partition: baseline arm lost %s: %w", q.Name, err)
		}
		if a.Fingerprint() != b.Fingerprint() {
			return nil, fmt.Errorf("experiments: partition: %s diverged between aware and baseline planning", q.Name)
		}
	}
	if out.ShuffleBytes != bc["mr_shuffle_bytes_total"] {
		return nil, fmt.Errorf("experiments: partition: arms shuffled different volumes (%d vs %d bytes) — the plans diverged",
			out.ShuffleBytes, bc["mr_shuffle_bytes_total"])
	}
	if out.EliminatedBytes <= 0 {
		return nil, fmt.Errorf("experiments: partition: aware arm eliminated no shuffle bytes")
	}
	if e := bc["mr_shuffle_bytes_eliminated_total"]; e != 0 {
		return nil, fmt.Errorf("experiments: partition: baseline arm eliminated %d bytes with awareness disabled", e)
	}
	if out.AwareSimSeconds >= out.BaselineSimSeconds {
		return nil, fmt.Errorf("experiments: partition: aware arm was not strictly faster (%.6f vs %.6f sim-s)",
			out.AwareSimSeconds, out.BaselineSimSeconds)
	}
	return out, nil
}
