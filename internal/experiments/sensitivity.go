package experiments

import (
	"fmt"
	"sort"
	"strings"

	"opportune/internal/session"
	"opportune/internal/workload"
)

// JSensEntry is one (J, holdout) cell of the J-sensitivity sweep.
type JSensEntry struct {
	J          int
	Analyst    int
	ImprovePct float64
	RuntimeSec float64
	Improved   bool
}

// JSensitivityResult sweeps the J parameter (§5: the maximum number of
// views merged into one rewrite, set to 4 in the paper "for practical
// reasons"). Small J limits expressiveness — targets needing multi-view
// merges stop being rewritable — while large J inflates the candidate
// space the search must manage.
type JSensitivityResult struct {
	Entries []JSensEntry
}

// JSensitivity runs the user-evolution scenario for analysts whose queries
// exercise merging (A7's combined profile needs a 3-way merge) under
// J ∈ {1,2,3,4}.
func JSensitivity(c Config) (*JSensitivityResult, error) {
	res := &JSensitivityResult{}
	for _, holdout := range []int{1, 2, 7} {
		for _, j := range []int{1, 2, 3, 4} {
			s, err := newSession(c)
			if err != nil {
				return nil, err
			}
			for a := 1; a <= 8; a++ {
				if a == holdout {
					continue
				}
				if _, err := run(s, workload.QueryFor(a, 1), session.ModeOriginal); err != nil {
					return nil, err
				}
			}
			s.Rew.MaxViews = j
			q := workload.QueryFor(holdout, 1)
			mr, err := run(s, q, session.ModeBFR)
			if err != nil {
				return nil, err
			}
			orig, err := newSession(c)
			if err != nil {
				return nil, err
			}
			mo, err := run(orig, q, session.ModeOriginal)
			if err != nil {
				return nil, err
			}
			res.Entries = append(res.Entries, JSensEntry{
				J: j, Analyst: holdout,
				ImprovePct: pctImprove(repSeconds(mo), repSeconds(mr)),
				RuntimeSec: mr.RewriteSeconds,
				Improved:   mr.Rewrite != nil && mr.Rewrite.Improved,
			})
		}
	}
	return res, nil
}

// Render prints the J sweep.
func (r *JSensitivityResult) Render() string {
	var rows [][]string
	for _, e := range r.Entries {
		rows = append(rows, []string{
			fmt.Sprintf("A%d", e.Analyst), fmt.Sprintf("%d", e.J),
			f1(e.ImprovePct), f3(e.RuntimeSec), fmt.Sprintf("%v", e.Improved),
		})
	}
	var sb strings.Builder
	sb.WriteString("J sensitivity (§5): max views merged per rewrite, user-evolution holdouts\n")
	sb.WriteString(table([]string{"holdout", "J", "improve(%)", "search(s)", "rewritten"}, rows))
	sb.WriteString("\nexpected: A7 (needs a 3-way merge) gains a step at J=3; search cost grows with J\n")
	return sb.String()
}

// SimilarityEntry relates two queries' textual similarity to the benefit
// one gets from the other's views.
type SimilarityEntry struct {
	From, To   string
	TextSim    float64 // token Jaccard of the two SQL texts
	ImprovePct float64 // benefit of To's run given From's views
}

// SimilarityResult is the §8.1 microbenchmark (reported in the extended
// version [17]): the paper observed that query-text similarity "did not
// directly correspond with result reusability". We measure token-Jaccard
// similarity between query pairs against the realized rewrite benefit.
type SimilarityResult struct {
	Entries []SimilarityEntry
	// Correlation is the Pearson correlation between similarity and
	// benefit over the sampled pairs.
	Correlation float64
}

// Similarity runs the microbenchmark over consecutive-version pairs (high
// text similarity) and cross-analyst pairs (low text similarity).
func Similarity(c Config) (*SimilarityResult, error) {
	pairs := [][2]workload.Query{
		// same analyst, consecutive versions: textually near-identical
		{workload.QueryFor(1, 1), workload.QueryFor(1, 2)},
		{workload.QueryFor(2, 1), workload.QueryFor(2, 2)},
		{workload.QueryFor(3, 3), workload.QueryFor(3, 4)}, // param change: similar text, little reuse
		{workload.QueryFor(4, 1), workload.QueryFor(4, 2)},
		{workload.QueryFor(5, 1), workload.QueryFor(5, 2)},
		{workload.QueryFor(7, 1), workload.QueryFor(7, 2)}, // structure change: similar topic, little reuse
		// cross-analyst: textually dissimilar, yet reusable sub-computations
		{workload.QueryFor(7, 1), workload.QueryFor(2, 1)},
		{workload.QueryFor(3, 1), workload.QueryFor(8, 1)},
		{workload.QueryFor(1, 1), workload.QueryFor(4, 1)},
		{workload.QueryFor(6, 1), workload.QueryFor(5, 1)},
	}
	res := &SimilarityResult{}
	for _, p := range pairs {
		from, to := p[0], p[1]
		s, err := newSession(c)
		if err != nil {
			return nil, err
		}
		if _, err := run(s, from, session.ModeOriginal); err != nil {
			return nil, err
		}
		mr, err := run(s, to, session.ModeBFR)
		if err != nil {
			return nil, err
		}
		orig, err := newSession(c)
		if err != nil {
			return nil, err
		}
		mo, err := run(orig, to, session.ModeOriginal)
		if err != nil {
			return nil, err
		}
		res.Entries = append(res.Entries, SimilarityEntry{
			From: from.Name, To: to.Name,
			TextSim:    tokenJaccard(from.SQL, to.SQL),
			ImprovePct: pctImprove(repSeconds(mo), repSeconds(mr)),
		})
	}
	res.Correlation = pearson(res.Entries)
	return res, nil
}

// tokenJaccard is the token-set Jaccard similarity of two SQL texts.
func tokenJaccard(a, b string) float64 {
	ta, tb := tokens(a), tokens(b)
	inter := 0
	for w := range ta {
		if tb[w] {
			inter++
		}
	}
	union := len(ta) + len(tb) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

func tokens(s string) map[string]bool {
	out := make(map[string]bool)
	for _, w := range strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !('a' <= r && r <= 'z' || '0' <= r && r <= '9' || r == '_' || r == '.')
	}) {
		out[w] = true
	}
	return out
}

func pearson(es []SimilarityEntry) float64 {
	n := float64(len(es))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, syy, sxy float64
	for _, e := range es {
		x, y := e.TextSim, e.ImprovePct
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	den := (n*sxx - sx*sx) * (n*syy - sy*sy)
	if den <= 0 {
		return 0
	}
	return (n*sxy - sx*sy) / sqrt(den)
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// Render prints the similarity microbenchmark.
func (r *SimilarityResult) Render() string {
	entries := append([]SimilarityEntry(nil), r.Entries...)
	sort.Slice(entries, func(i, j int) bool { return entries[i].TextSim > entries[j].TextSim })
	var rows [][]string
	for _, e := range entries {
		rows = append(rows, []string{
			e.From + " -> " + e.To, f2(e.TextSim), f1(e.ImprovePct),
		})
	}
	var sb strings.Builder
	sb.WriteString("Query-text similarity vs reusability (§8.1 microbenchmark)\n")
	sb.WriteString(table([]string{"pair", "text Jaccard", "benefit(%)"}, rows))
	sb.WriteString(fmt.Sprintf("\nPearson correlation: %.2f\n", r.Correlation))
	sb.WriteString("paper observation: text similarity does not directly correspond with\nreusability — high-similarity pairs can yield little benefit (parameter or\nstructure changes) while dissimilar cross-analyst pairs can yield a lot\n")
	return sb.String()
}
