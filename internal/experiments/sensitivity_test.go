package experiments

import "testing"

func TestJSensitivityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	r, err := JSensitivity(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Entries) != 12 {
		t.Fatalf("entries = %d", len(r.Entries))
	}
	byA := map[int]map[int]JSensEntry{}
	for _, e := range r.Entries {
		if byA[e.Analyst] == nil {
			byA[e.Analyst] = map[int]JSensEntry{}
		}
		byA[e.Analyst][e.J] = e
	}
	// improvement is non-decreasing in J for every analyst
	for a, m := range byA {
		for j := 2; j <= 4; j++ {
			if m[j].ImprovePct < m[j-1].ImprovePct-5 {
				t.Errorf("A%d: improvement dropped from J=%d (%.1f%%) to J=%d (%.1f%%)",
					a, j-1, m[j-1].ImprovePct, j, m[j].ImprovePct)
			}
		}
	}
	// A7 needs a 3-way merge: the step must appear at J=3
	if byA[7][2].ImprovePct > 10 && byA[7][1].Improved {
		t.Logf("note: A7 found partial reuse below J=3")
	}
	if byA[7][3].ImprovePct <= byA[7][2].ImprovePct+5 {
		t.Errorf("A7: no J=3 step (J=2: %.1f%%, J=3: %.1f%%)", byA[7][2].ImprovePct, byA[7][3].ImprovePct)
	}
	if r.Render() == "" {
		t.Error("render broken")
	}
}

func TestSimilarityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	r, err := Similarity(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Entries) != 10 {
		t.Fatalf("entries = %d", len(r.Entries))
	}
	// the paper's point: similarity is a poor predictor — there must exist
	// a high-similarity pair with low benefit and a low-similarity pair
	// with high benefit.
	highSimLowBenefit, lowSimHighBenefit := false, false
	for _, e := range r.Entries {
		if e.TextSim > 0.6 && e.ImprovePct < 20 {
			highSimLowBenefit = true
		}
		if e.TextSim < 0.5 && e.ImprovePct > 40 {
			lowSimHighBenefit = true
		}
	}
	if !highSimLowBenefit {
		t.Error("no high-similarity/low-benefit pair; microbenchmark shape missing")
	}
	if !lowSimHighBenefit {
		t.Error("no low-similarity/high-benefit pair; microbenchmark shape missing")
	}
	if r.Correlation > 0.9 {
		t.Errorf("correlation %.2f too strong; text similarity should be a poor predictor", r.Correlation)
	}
	if r.Render() == "" {
		t.Error("render broken")
	}
}

func TestFootprintShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	r, err := Footprint(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.ViewCount < 80 {
		t.Errorf("views = %d; the workload should retain ~100", r.ViewCount)
	}
	// The §10 claim at our proportions: retaining everything costs a small
	// multiple of the base data, not an explosion.
	if r.Ratio <= 0 || r.Ratio > 3 {
		t.Errorf("views/base ratio = %.2f, want modest (paper: ~2.0x)", r.Ratio)
	}
	// cumulative ratio is non-decreasing
	for i := 1; i < len(r.PerAnalyst); i++ {
		if r.PerAnalyst[i] < r.PerAnalyst[i-1]-1e-9 {
			t.Error("cumulative footprint decreased")
		}
	}
	if r.Render() == "" {
		t.Error("render broken")
	}
}
