package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"opportune/internal/service"
	"opportune/internal/session"
	"opportune/internal/workload"
)

// ServiceArm reports one configuration of the multi-tenant service under
// the identical closed-loop load.
type ServiceArm struct {
	BatchSize int

	QPS         float64 // completed queries / wall seconds
	P50, P99    float64 // end-to-end latency, wall seconds
	WallSeconds float64

	// Deterministic sharing accounting, summed over all micro-batches.
	SimSeconds     float64 // physical simulated cost
	SimQPS         float64 // queries / physical sim seconds
	Batches        int64
	JobsDeduped    int
	SharedScans    int
	ScanBytesSaved int64
}

// Service is the always-on service experiment: T Zipfian tenants drive a
// skewed query mix through cmd/opportuned's pipeline in closed loop; the
// batched arm and a batch-size-1 arm absorb the same per-worker query
// sequences (same seed), so the throughput delta is pure micro-batching.
type Service struct {
	Tenants     int
	LoadWorkers int
	Queries     int

	Batched ServiceArm
	Single  ServiceArm

	WallSpeedup float64 // Batched.QPS / Single.QPS
	SimSpeedup  float64 // Single.SimSeconds / Batched.SimSeconds

	TenantQueries map[string]int64 // per-tenant completions (batched arm)
}

// Render prints the comparison.
func (r *Service) Render() string {
	rows := [][]string{
		{fmt.Sprint(r.Batched.BatchSize), f1(r.Batched.QPS), f3(r.Batched.P50), f3(r.Batched.P99),
			f3(r.Batched.SimSeconds), fmt.Sprint(r.Batched.Batches),
			fmt.Sprint(r.Batched.JobsDeduped), fmt.Sprint(r.Batched.SharedScans)},
		{"1", f1(r.Single.QPS), f3(r.Single.P50), f3(r.Single.P99),
			f3(r.Single.SimSeconds), fmt.Sprint(r.Single.Batches),
			fmt.Sprint(r.Single.JobsDeduped), fmt.Sprint(r.Single.SharedScans)},
	}
	tenants := make([]string, 0, len(r.TenantQueries))
	for t := range r.TenantQueries {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	var mix string
	for i, t := range tenants {
		if i > 0 {
			mix += " "
		}
		mix += fmt.Sprintf("%s:%d", t, r.TenantQueries[t])
	}
	return fmt.Sprintf("Service throughput: %d tenants (Zipfian), %d closed-loop workers, %d queries\n%s\nwall speedup %.2fx, sim speedup %.2fx (micro-batching vs batch-size-1)\ntenant mix: %s\n",
		r.Tenants, r.LoadWorkers, r.Queries,
		table([]string{"batch", "qps", "p50_s", "p99_s", "sim_s", "batches", "deduped", "shared_scans"}, rows),
		r.WallSpeedup, r.SimSpeedup, mix)
}

// serviceArm drives one service configuration with the deterministic
// closed-loop load and reports throughput, latency, and sharing totals.
func serviceArm(cfg Config, batchSize, tenants, workers, perWorker int,
	tenantCounts map[string]int64) (*ServiceArm, error) {
	s, err := newSession(cfg)
	if err != nil {
		return nil, err
	}
	svc := service.New(s, service.Config{
		BatchSize: batchSize,
		MaxWait:   20 * time.Millisecond,
		Mode:      session.ModeOriginal,
		Obs:       cfg.Obs,
	})
	queries := workload.AllQueries()

	var mu sync.Mutex
	var latencies []float64
	var firstErr error
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Per-worker deterministic sequences: both arms see the same
			// tenant and query draws, so the comparison is seed-for-seed.
			rng := rand.New(rand.NewSource(int64(1000*w) + 7))
			ztenant := rand.NewZipf(rng, 1.4, 1, uint64(tenants-1))
			zquery := rand.NewZipf(rng, 1.3, 1, uint64(len(queries)-1))
			for i := 0; i < perWorker; i++ {
				tenant := fmt.Sprintf("tenant%d", ztenant.Uint64())
				q := queries[zquery.Uint64()]
				tk, err := svc.Submit(tenant, q.SQL)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				resp := tk.Wait()
				mu.Lock()
				if resp.Err != nil && firstErr == nil {
					firstErr = resp.Err
				}
				latencies = append(latencies, resp.Wall.Seconds())
				if tenantCounts != nil {
					tenantCounts[tenant]++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	svc.Close()
	wall := time.Since(start).Seconds()
	if firstErr != nil {
		return nil, fmt.Errorf("experiments: service: %w", firstErr)
	}

	totals := svc.BatchTotals()
	arm := &ServiceArm{
		BatchSize:      batchSize,
		WallSeconds:    wall,
		SimSeconds:     totals.SimSeconds,
		Batches:        svc.Stats().Batches,
		JobsDeduped:    totals.JobsDeduped,
		SharedScans:    totals.SharedScans,
		ScanBytesSaved: totals.ScanBytesSaved,
	}
	if wall > 0 {
		arm.QPS = float64(len(latencies)) / wall
	}
	if totals.SimSeconds > 0 {
		arm.SimQPS = float64(len(latencies)) / totals.SimSeconds
	}
	sort.Float64s(latencies)
	if n := len(latencies); n > 0 {
		arm.P50 = latencies[n/2]
		arm.P99 = latencies[(n*99)/100]
	}
	return arm, nil
}

// RunService runs the experiment: micro-batching (cfg.BatchSize, default
// 8) against batch-size-1, identical closed-loop Zipfian load.
func RunService(cfg Config) (*Service, error) {
	tenants := cfg.Tenants
	if tenants <= 0 {
		tenants = 8
	}
	batchSize := cfg.BatchSize
	if batchSize <= 0 {
		batchSize = 8
	}
	workers, perWorker := 2*batchSize, 25
	if cfg.Quick {
		workers, perWorker = batchSize, 8
	}
	out := &Service{
		Tenants:       tenants,
		LoadWorkers:   workers,
		Queries:       workers * perWorker,
		TenantQueries: make(map[string]int64),
	}

	batched, err := serviceArm(cfg, batchSize, tenants, workers, perWorker, out.TenantQueries)
	if err != nil {
		return nil, err
	}
	out.Batched = *batched

	// The single arm reuses cfg minus the shared registry: wiring both
	// arms into one registry would double-count the session counters.
	single := cfg
	single.Obs = nil
	sArm, err := serviceArm(single, 1, tenants, workers, perWorker, nil)
	if err != nil {
		return nil, err
	}
	out.Single = *sArm

	if out.Single.QPS > 0 {
		out.WallSpeedup = out.Batched.QPS / out.Single.QPS
	}
	if out.Batched.SimSeconds > 0 {
		out.SimSpeedup = out.Single.SimSeconds / out.Batched.SimSeconds
	}
	return out, nil
}
