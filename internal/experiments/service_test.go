package experiments

import "testing"

// TestServiceExperiment: the always-on service under Zipfian multi-tenant
// load must beat batch-size-1 by the micro-batching margin the PR
// promises (>=1.5x deterministic sim throughput), report latency
// percentiles, and spread completions across at least 4 tenants.
func TestServiceExperiment(t *testing.T) {
	cfg := QuickConfig()
	r, err := RunService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Tenants < 4 {
		t.Fatalf("only %d tenants simulated, want >= 4", r.Tenants)
	}
	if r.Queries != r.LoadWorkers*8 {
		t.Fatalf("unexpected shape: %+v", r)
	}
	if r.Batched.QPS <= 0 || r.Single.QPS <= 0 {
		t.Errorf("missing qps: batched %.1f single %.1f", r.Batched.QPS, r.Single.QPS)
	}
	if r.Batched.P50 <= 0 || r.Batched.P99 < r.Batched.P50 {
		t.Errorf("implausible latency percentiles: p50=%g p99=%g", r.Batched.P50, r.Batched.P99)
	}
	if r.SimSpeedup < 1.5 {
		t.Errorf("sim speedup = %.3fx, want >= 1.5x", r.SimSpeedup)
	}
	if r.Batched.JobsDeduped == 0 && r.Batched.SharedScans == 0 {
		t.Error("batched arm shared nothing")
	}
	var active int
	for _, n := range r.TenantQueries {
		if n > 0 {
			active++
		}
	}
	if active < 2 {
		t.Errorf("Zipfian load hit only %d tenants", active)
	}
	if r.Render() == "" {
		t.Error("empty render")
	}
}
