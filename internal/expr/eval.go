package expr

import (
	"fmt"

	"opportune/internal/data"
	"opportune/internal/value"
)

// OpaqueFn is the executable form of an opaque (user-code) predicate: it
// receives the argument values in declaration order and decides whether the
// row passes.
type OpaqueFn func(args []value.V) bool

// Evaluator compiles predicates against a schema and evaluates them on rows.
// Opaque predicates resolve through the registry; evaluating an unregistered
// opaque predicate is an error at compile time.
type Evaluator struct {
	opaque map[string]OpaqueFn
}

// NewEvaluator creates an evaluator with an empty opaque-predicate registry.
func NewEvaluator() *Evaluator {
	return &Evaluator{opaque: make(map[string]OpaqueFn)}
}

// RegisterOpaque installs the executable implementation of a named opaque
// predicate.
func (e *Evaluator) RegisterOpaque(name string, fn OpaqueFn) {
	e.opaque[name] = fn
}

// Opaque resolves a registered opaque predicate by name. The optimizer's
// fused compiler uses it to bind user-code predicates directly into a
// specialized batch kernel with the same resolution rule Compile applies.
func (e *Evaluator) Opaque(name string) (OpaqueFn, bool) {
	fn, ok := e.opaque[name]
	return fn, ok
}

// Compiled is a predicate bound to a schema, ready to evaluate on rows.
type Compiled func(r data.Row) bool

// Compile binds a predicate to a schema. Column names in the predicate must
// exist in the schema.
func (e *Evaluator) Compile(p Pred, schema *data.Schema) (Compiled, error) {
	switch p.Kind {
	case KindCmp:
		ix, ok := schema.Index(p.Attr)
		if !ok {
			return nil, fmt.Errorf("expr: column %q not in schema %s", p.Attr, schema)
		}
		op, lit := p.Op, p.Lit
		return func(r data.Row) bool {
			v := r[ix]
			if v.IsNull() {
				return false // SQL-ish: comparisons with NULL are not true
			}
			return holds(sign(value.Compare(v, lit)), op)
		}, nil
	case KindAttrEq:
		i1, ok1 := schema.Index(p.Attr)
		i2, ok2 := schema.Index(p.Attr2)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("expr: columns %q,%q not both in schema %s", p.Attr, p.Attr2, schema)
		}
		return func(r data.Row) bool {
			if r[i1].IsNull() || r[i2].IsNull() {
				return false
			}
			return value.Equal(r[i1], r[i2])
		}, nil
	case KindOpaque:
		fn, ok := e.opaque[p.Name]
		if !ok {
			return nil, fmt.Errorf("expr: opaque predicate %q not registered", p.Name)
		}
		idxs := make([]int, len(p.Args))
		for i, a := range p.Args {
			ix, ok := schema.Index(a)
			if !ok {
				return nil, fmt.Errorf("expr: column %q not in schema %s", a, schema)
			}
			idxs[i] = ix
		}
		return func(r data.Row) bool {
			args := make([]value.V, len(idxs))
			for i, ix := range idxs {
				args[i] = r[ix]
			}
			return fn(args)
		}, nil
	default:
		return nil, fmt.Errorf("expr: invalid predicate kind %d", p.Kind)
	}
}

// CompileAll binds a conjunction to a schema.
func (e *Evaluator) CompileAll(preds []Pred, schema *data.Schema) (Compiled, error) {
	compiled := make([]Compiled, len(preds))
	for i, p := range preds {
		c, err := e.Compile(p, schema)
		if err != nil {
			return nil, err
		}
		compiled[i] = c
	}
	return func(r data.Row) bool {
		for _, c := range compiled {
			if !c(r) {
				return false
			}
		}
		return true
	}, nil
}

func sign(c int) int {
	switch {
	case c < 0:
		return -1
	case c > 0:
		return 1
	default:
		return 0
	}
}
