package expr

import (
	"strings"
	"testing"

	"opportune/internal/data"
	"opportune/internal/value"
)

func testSchemaRows() (*data.Schema, []data.Row) {
	s := data.NewSchema("id", "score", "text")
	rows := []data.Row{
		{value.NewInt(1), value.NewFloat(0.9), value.NewStr("great wine")},
		{value.NewInt(2), value.NewFloat(0.1), value.NewStr("bad coffee")},
		{value.NewInt(3), value.NullV, value.NewStr("wine again")},
	}
	return s, rows
}

func TestCompileCmp(t *testing.T) {
	s, rows := testSchemaRows()
	e := NewEvaluator()
	c, err := e.Compile(NewCmp("score", Gt, value.NewFloat(0.5)), s)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, false} // NULL comparison is false
	for i, r := range rows {
		if got := c(r); got != want[i] {
			t.Errorf("row %d: got %v", i, got)
		}
	}
}

func TestCompileAttrEq(t *testing.T) {
	s := data.NewSchema("a", "b")
	e := NewEvaluator()
	c, err := e.Compile(NewAttrEq("a", "b"), s)
	if err != nil {
		t.Fatal(err)
	}
	if !c(data.Row{value.NewInt(2), value.NewInt(2)}) {
		t.Error("equal values rejected")
	}
	if c(data.Row{value.NewInt(2), value.NewInt(3)}) {
		t.Error("unequal values accepted")
	}
	if c(data.Row{value.NullV, value.NullV}) {
		t.Error("NULL = NULL should be false")
	}
}

func TestCompileOpaque(t *testing.T) {
	s, rows := testSchemaRows()
	e := NewEvaluator()
	e.RegisterOpaque("mentions_wine", func(args []value.V) bool {
		return strings.Contains(args[0].Str(), "wine")
	})
	c, err := e.Compile(NewOpaque("mentions_wine", "text"), s)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, true}
	for i, r := range rows {
		if got := c(r); got != want[i] {
			t.Errorf("row %d: got %v", i, got)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	s, _ := testSchemaRows()
	e := NewEvaluator()
	if _, err := e.Compile(NewCmp("missing", Eq, value.NewInt(1)), s); err == nil {
		t.Error("missing column accepted")
	}
	if _, err := e.Compile(NewAttrEq("id", "missing"), s); err == nil {
		t.Error("missing attr-eq column accepted")
	}
	if _, err := e.Compile(NewOpaque("unregistered", "id"), s); err == nil {
		t.Error("unregistered opaque accepted")
	}
	e.RegisterOpaque("f", func([]value.V) bool { return true })
	if _, err := e.Compile(NewOpaque("f", "missing"), s); err == nil {
		t.Error("opaque with missing column accepted")
	}
}

func TestCompileAll(t *testing.T) {
	s, rows := testSchemaRows()
	e := NewEvaluator()
	c, err := e.CompileAll([]Pred{
		NewCmp("score", Gt, value.NewFloat(0.05)),
		NewCmp("id", Lt, value.NewInt(3)),
	}, s)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, true, false}
	for i, r := range rows {
		if got := c(r); got != want[i] {
			t.Errorf("row %d: got %v", i, got)
		}
	}
	if _, err := e.CompileAll([]Pred{NewCmp("missing", Eq, value.NewInt(1))}, s); err == nil {
		t.Error("CompileAll with bad pred accepted")
	}
}
