// Package expr defines the predicate algebra used by filters in plans and by
// the (A,F,K) annotation model.
//
// A filter set F is always a conjunction of Preds. Each Pred has a canonical
// string form so that annotation equality is syntactic-on-canonical-forms,
// and a sound (conservative) implication test so that the rewriter can check
// the "view has weaker filters" condition and compute filter compensations.
package expr

import (
	"fmt"
	"sort"
	"strings"

	"opportune/internal/value"
)

// CmpOp is a comparison operator in an attribute-vs-literal predicate.
type CmpOp uint8

// Comparison operators.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

// String renders the operator in SQL syntax.
func (o CmpOp) String() string {
	switch o {
	case Eq:
		return "="
	case Ne:
		return "!="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	default:
		return "?"
	}
}

// ParseCmpOp converts an operator token to a CmpOp.
func ParseCmpOp(s string) (CmpOp, bool) {
	switch s {
	case "=", "==":
		return Eq, true
	case "!=", "<>":
		return Ne, true
	case "<":
		return Lt, true
	case "<=":
		return Le, true
	case ">":
		return Gt, true
	case ">=":
		return Ge, true
	}
	return 0, false
}

// Kind discriminates predicate shapes.
type Kind uint8

const (
	// KindCmp is attribute-vs-literal comparison, e.g. sent_sum > 0.5.
	KindCmp Kind = iota
	// KindAttrEq is attribute-vs-attribute equality, e.g. a join condition
	// t1.user_id = t2.user_id.
	KindAttrEq
	// KindOpaque is an arbitrary user-code predicate (a filter UDF),
	// identified by name and argument attributes. Two opaque predicates
	// are comparable only by canonical identity.
	KindOpaque
)

// Pred is one conjunct of a filter set.
//
// The Attr fields hold *canonical attribute identities*. At plan level these
// are column names; the afk package substitutes attribute signatures so that
// the same logical filter matches across plans that renamed columns.
type Pred struct {
	Kind  Kind
	Attr  string   // left attribute (KindCmp, KindAttrEq, unused for KindOpaque)
	Op    CmpOp    // KindCmp only
	Lit   value.V  // KindCmp only
	Attr2 string   // KindAttrEq only
	Name  string   // KindOpaque: predicate UDF name
	Args  []string // KindOpaque: attribute arguments (order significant)

	canon string // cached canonical form (set by the constructors)
}

// NewCmp builds an attribute-vs-literal comparison predicate.
func NewCmp(attr string, op CmpOp, lit value.V) Pred {
	p := Pred{Kind: KindCmp, Attr: attr, Op: op, Lit: lit}
	p.canon = p.computeCanon()
	return p
}

// NewAttrEq builds an attribute equality predicate. The two attribute
// identities are stored in sorted order so a=b and b=a canonicalize equally.
func NewAttrEq(a, b string) Pred {
	if b < a {
		a, b = b, a
	}
	p := Pred{Kind: KindAttrEq, Attr: a, Attr2: b}
	p.canon = p.computeCanon()
	return p
}

// NewOpaque builds an opaque user-code predicate.
func NewOpaque(name string, args ...string) Pred {
	p := Pred{Kind: KindOpaque, Name: name, Args: append([]string(nil), args...)}
	p.canon = p.computeCanon()
	return p
}

// Canon returns the canonical string form of the predicate. Predicates are
// equal iff their canonical forms are equal. The form is cached by the
// constructors — Canon is on the rewrite search's hot path — with a
// fallback for zero-value predicates built outside them.
func (p Pred) Canon() string {
	if p.canon != "" {
		return p.canon
	}
	return p.computeCanon()
}

func (p Pred) computeCanon() string {
	switch p.Kind {
	case KindCmp:
		return fmt.Sprintf("cmp(%s %s %s:%s)", p.Attr, p.Op, p.Lit.Kind(), p.Lit)
	case KindAttrEq:
		return fmt.Sprintf("eq(%s,%s)", p.Attr, p.Attr2)
	case KindOpaque:
		return fmt.Sprintf("udf(%s;%s)", p.Name, strings.Join(p.Args, ","))
	default:
		return "invalid"
	}
}

// String renders the predicate for humans.
func (p Pred) String() string {
	switch p.Kind {
	case KindCmp:
		return fmt.Sprintf("%s %s %s", p.Attr, p.Op, p.Lit)
	case KindAttrEq:
		return fmt.Sprintf("%s = %s", p.Attr, p.Attr2)
	case KindOpaque:
		return fmt.Sprintf("%s(%s)", p.Name, strings.Join(p.Args, ","))
	default:
		return "invalid"
	}
}

// Attrs returns every attribute identity the predicate references.
func (p Pred) Attrs() []string {
	switch p.Kind {
	case KindCmp:
		return []string{p.Attr}
	case KindAttrEq:
		return []string{p.Attr, p.Attr2}
	case KindOpaque:
		return append([]string(nil), p.Args...)
	default:
		return nil
	}
}

// Rename returns a copy of the predicate with attribute identities mapped
// through f. Used by the afk package to lift column-level predicates to
// signature-level predicates.
func (p Pred) Rename(f func(string) string) Pred {
	q := p
	switch p.Kind {
	case KindCmp:
		q.Attr = f(p.Attr)
	case KindAttrEq:
		return NewAttrEq(f(p.Attr), f(p.Attr2))
	case KindOpaque:
		q.Args = make([]string, len(p.Args))
		for i, a := range p.Args {
			q.Args[i] = f(a)
		}
	}
	q.canon = q.computeCanon()
	return q
}

// Implies reports whether p ⇒ q, conservatively. False negatives are
// allowed (they only reduce reuse); false positives are not.
func Implies(p, q Pred) bool {
	if p.Canon() == q.Canon() {
		return true
	}
	// Only same-attribute comparison predicates admit a richer test.
	if p.Kind != KindCmp || q.Kind != KindCmp || p.Attr != q.Attr {
		return false
	}
	return cmpImplies(p.Op, p.Lit, q.Op, q.Lit)
}

// cmpImplies decides whether (x op1 a) ⇒ (x op2 b) for all x.
func cmpImplies(op1 CmpOp, a value.V, op2 CmpOp, b value.V) bool {
	// Only handle comparable literal kinds.
	bothNum := a.IsNumeric() && b.IsNumeric()
	bothStr := a.Kind() == value.Str && b.Kind() == value.Str
	if !bothNum && !bothStr {
		return false
	}
	c := value.Compare(a, b) // sign of a-b
	switch op1 {
	case Eq: // x = a ⇒ x op2 b  iff  a op2 b
		return holds(c, op2)
	case Lt: // x < a
		switch op2 {
		case Lt:
			return c <= 0 // a <= b
		case Le:
			return c <= 0
		case Ne:
			return c <= 0 // x < a <= b means x < b so x != b
		}
	case Le: // x <= a
		switch op2 {
		case Le:
			return c <= 0
		case Lt:
			return c < 0
		case Ne:
			return c < 0
		}
	case Gt: // x > a
		switch op2 {
		case Gt:
			return c >= 0
		case Ge:
			return c >= 0
		case Ne:
			return c >= 0
		}
	case Ge: // x >= a
		switch op2 {
		case Ge:
			return c >= 0
		case Gt:
			return c > 0
		case Ne:
			return c > 0
		}
	case Ne:
		// x != a implies nothing but itself (handled by Canon equality).
		return false
	}
	return false
}

// Holds evaluates "a op b" given c = sign(Compare(a,b)). Exported for the
// optimizer's fused filter kernels, which must decide comparisons with
// exactly the semantics Compile's closures use.
func Holds(c int, op CmpOp) bool { return holds(c, op) }

// holds evaluates "a op b" given c = sign(Compare(a,b)).
func holds(c int, op CmpOp) bool {
	switch op {
	case Eq:
		return c == 0
	case Ne:
		return c != 0
	case Lt:
		return c < 0
	case Le:
		return c <= 0
	case Gt:
		return c > 0
	case Ge:
		return c >= 0
	}
	return false
}

// Set is a conjunctive predicate set keyed by canonical form.
type Set map[string]Pred

// NewSet builds a set from predicates.
func NewSet(preds ...Pred) Set {
	s := make(Set, len(preds))
	for _, p := range preds {
		s[p.Canon()] = p
	}
	return s
}

// Add inserts a predicate, returning the set for chaining.
func (s Set) Add(p Pred) Set {
	s[p.Canon()] = p
	return s
}

// Has reports whether an identical (canonical) predicate is in the set.
func (s Set) Has(p Pred) bool {
	_, ok := s[p.Canon()]
	return ok
}

// Clone returns a copy of the set.
func (s Set) Clone() Set {
	c := make(Set, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// Union returns a new set holding predicates of both sets.
func (s Set) Union(o Set) Set {
	c := s.Clone()
	for k, v := range o {
		c[k] = v
	}
	return c
}

// Equal reports whether the two sets hold exactly the same canonical
// predicates.
func (s Set) Equal(o Set) bool {
	if len(s) != len(o) {
		return false
	}
	for k := range s {
		if _, ok := o[k]; !ok {
			return false
		}
	}
	return true
}

// ImpliesAll reports whether the conjunction s implies the conjunction o:
// every predicate of o is implied by some predicate of s. This is the
// "view has weaker filters than query" check with s = q.F and o = v.F.
func (s Set) ImpliesAll(o Set) bool {
	for _, q := range o {
		implied := false
		for _, p := range s {
			if Implies(p, q) {
				implied = true
				break
			}
		}
		if !implied {
			return false
		}
	}
	return true
}

// Minus returns the predicates of s not present (canonically) in o — the
// filter compensation needed to turn a view with filters o into a target
// with filters s.
func (s Set) Minus(o Set) []Pred {
	var out []Pred
	for k, p := range s {
		if _, ok := o[k]; !ok {
			out = append(out, p)
		}
	}
	sortPreds(out)
	return out
}

// Reduced returns the set with implication-redundant predicates removed: a
// predicate implied by another member is dropped (one representative of a
// mutually-implying pair survives, chosen by canonical order). Reduced sets
// are semantically equal to their originals, so canonical fingerprints of
// semantically equal conjunctions coincide — e.g. {x>3, x>5} and {x>5}.
func (s Set) Reduced() Set {
	out := make(Set, len(s))
	for k, p := range s {
		redundant := false
		for k2, q := range s {
			if k == k2 || !Implies(q, p) {
				continue
			}
			// q implies p: p is redundant unless they mutually imply and p
			// is the designated representative.
			if Implies(p, q) && k < k2 {
				continue
			}
			redundant = true
			break
		}
		if !redundant {
			out[k] = p
		}
	}
	return out
}

// Preds returns the predicates in canonical order.
func (s Set) Preds() []Pred {
	out := make([]Pred, 0, len(s))
	for _, p := range s {
		out = append(out, p)
	}
	sortPreds(out)
	return out
}

// Canon returns a canonical rendering of the whole conjunction. The set is
// first reduced under implication so that semantically equal conjunctions
// share a fingerprint (annotation canonical forms, view identity, and
// aggregate filter contexts all rely on this).
func (s Set) Canon() string {
	r := s.Reduced()
	keys := make([]string, 0, len(r))
	for k := range r {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return "{" + strings.Join(keys, " && ") + "}"
}

// String renders the set for humans.
func (s Set) String() string {
	ps := s.Preds()
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = p.String()
	}
	return "{" + strings.Join(parts, " AND ") + "}"
}

func sortPreds(ps []Pred) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].Canon() < ps[j].Canon() })
}
