package expr

import (
	"testing"
	"testing/quick"

	"opportune/internal/value"
)

func TestCmpOpStringParse(t *testing.T) {
	for _, tok := range []string{"=", "!=", "<", "<=", ">", ">="} {
		op, ok := ParseCmpOp(tok)
		if !ok {
			t.Fatalf("ParseCmpOp(%q) failed", tok)
		}
		if op.String() != tok {
			t.Errorf("round trip %q -> %q", tok, op.String())
		}
	}
	if op, ok := ParseCmpOp("=="); !ok || op != Eq {
		t.Error("== not parsed as Eq")
	}
	if op, ok := ParseCmpOp("<>"); !ok || op != Ne {
		t.Error("<> not parsed as Ne")
	}
	if _, ok := ParseCmpOp("~~"); ok {
		t.Error("~~ parsed")
	}
}

func TestCanonEquality(t *testing.T) {
	a := NewCmp("x", Gt, value.NewFloat(0.5))
	b := NewCmp("x", Gt, value.NewFloat(0.5))
	if a.Canon() != b.Canon() {
		t.Error("identical predicates differ canonically")
	}
	// Int 1 and Float 1 are different canonical predicates even though they
	// compare equal as values — canonical form includes the kind.
	c := NewCmp("x", Gt, value.NewInt(1))
	d := NewCmp("x", Gt, value.NewFloat(1))
	if c.Canon() == d.Canon() {
		t.Error("int/float literals canonicalize identically")
	}
	// AttrEq symmetry
	if NewAttrEq("a", "b").Canon() != NewAttrEq("b", "a").Canon() {
		t.Error("attr equality not symmetric in canonical form")
	}
	// Opaque arg order matters
	if NewOpaque("f", "a", "b").Canon() == NewOpaque("f", "b", "a").Canon() {
		t.Error("opaque arg order ignored")
	}
}

func TestImpliesComparisons(t *testing.T) {
	f := func(v float64) value.V { return value.NewFloat(v) }
	tests := []struct {
		p, q Pred
		want bool
	}{
		// x < 5 ⇒ x < 10
		{NewCmp("x", Lt, f(5)), NewCmp("x", Lt, f(10)), true},
		// x < 10 ⇏ x < 5
		{NewCmp("x", Lt, f(10)), NewCmp("x", Lt, f(5)), false},
		// x < 5 ⇒ x <= 5
		{NewCmp("x", Lt, f(5)), NewCmp("x", Le, f(5)), true},
		// x <= 5 ⇏ x < 5
		{NewCmp("x", Le, f(5)), NewCmp("x", Lt, f(5)), false},
		// x <= 4 ⇒ x < 5
		{NewCmp("x", Le, f(4)), NewCmp("x", Lt, f(5)), true},
		// x > 5 ⇒ x > 5 (self)
		{NewCmp("x", Gt, f(5)), NewCmp("x", Gt, f(5)), true},
		// x > 5 ⇒ x >= 5
		{NewCmp("x", Gt, f(5)), NewCmp("x", Ge, f(5)), true},
		// x >= 6 ⇒ x > 5
		{NewCmp("x", Ge, f(6)), NewCmp("x", Gt, f(5)), true},
		// x >= 5 ⇏ x > 5
		{NewCmp("x", Ge, f(5)), NewCmp("x", Gt, f(5)), false},
		// x = 3 ⇒ x < 10
		{NewCmp("x", Eq, f(3)), NewCmp("x", Lt, f(10)), true},
		// x = 3 ⇒ x >= 3
		{NewCmp("x", Eq, f(3)), NewCmp("x", Ge, f(3)), true},
		// x = 3 ⇏ x > 3
		{NewCmp("x", Eq, f(3)), NewCmp("x", Gt, f(3)), false},
		// x = 3 ⇒ x != 5
		{NewCmp("x", Eq, f(3)), NewCmp("x", Ne, f(5)), true},
		// x < 5 ⇒ x != 7
		{NewCmp("x", Lt, f(5)), NewCmp("x", Ne, f(7)), true},
		// x < 5 ⇒ x != 5
		{NewCmp("x", Lt, f(5)), NewCmp("x", Ne, f(5)), true},
		// x <= 5 ⇏ x != 5
		{NewCmp("x", Le, f(5)), NewCmp("x", Ne, f(5)), false},
		// different attributes never imply
		{NewCmp("x", Lt, f(5)), NewCmp("y", Lt, f(10)), false},
		// x != 3 implies only itself
		{NewCmp("x", Ne, f(3)), NewCmp("x", Ne, f(3)), true},
		{NewCmp("x", Ne, f(3)), NewCmp("x", Lt, f(10)), false},
		// string comparisons
		{NewCmp("s", Eq, value.NewStr("a")), NewCmp("s", Lt, value.NewStr("b")), true},
		// mixed kinds: conservatively no implication beyond identity
		{NewCmp("x", Lt, f(5)), NewCmp("x", Lt, value.NewStr("z")), false},
	}
	for _, tc := range tests {
		if got := Implies(tc.p, tc.q); got != tc.want {
			t.Errorf("Implies(%v, %v) = %v, want %v", tc.p, tc.q, got, tc.want)
		}
	}
}

func TestImpliesOpaqueOnlyIdentity(t *testing.T) {
	p := NewOpaque("is_wine", "text")
	q := NewOpaque("is_wine", "text")
	r := NewOpaque("is_wine", "other")
	if !Implies(p, q) {
		t.Error("identical opaque predicates should imply")
	}
	if Implies(p, r) {
		t.Error("different opaque predicates should not imply")
	}
}

// TestImpliesSoundness property-checks implication against brute-force
// evaluation: if p ⇒ q is claimed, then every float satisfying p satisfies q.
func TestImpliesSoundness(t *testing.T) {
	ops := []CmpOp{Eq, Ne, Lt, Le, Gt, Ge}
	f := func(aRaw, bRaw int8, opA, opB uint8, probe int8) bool {
		a := value.NewFloat(float64(aRaw))
		b := value.NewFloat(float64(bRaw))
		p := NewCmp("x", ops[int(opA)%len(ops)], a)
		q := NewCmp("x", ops[int(opB)%len(ops)], b)
		if !Implies(p, q) {
			return true // only soundness is claimed
		}
		x := value.NewFloat(float64(probe))
		pHolds := holds(sign(value.Compare(x, p.Lit)), p.Op)
		qHolds := holds(sign(value.Compare(x, q.Lit)), q.Op)
		return !pHolds || qHolds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestSetOperations(t *testing.T) {
	p1 := NewCmp("x", Lt, value.NewFloat(5))
	p2 := NewCmp("y", Gt, value.NewFloat(0))
	p3 := NewOpaque("f", "z")
	s := NewSet(p1, p2)
	if len(s) != 2 || !s.Has(p1) || s.Has(p3) {
		t.Fatal("set construction wrong")
	}
	s2 := s.Clone().Add(p3)
	if len(s) != 2 || len(s2) != 3 {
		t.Error("Clone/Add aliasing")
	}
	u := NewSet(p1).Union(NewSet(p2, p3))
	if len(u) != 3 {
		t.Error("Union size")
	}
	if !NewSet(p1, p2).Equal(NewSet(p2, p1)) {
		t.Error("Equal order sensitivity")
	}
	if NewSet(p1).Equal(NewSet(p2)) {
		t.Error("Equal on different sets")
	}
	diff := NewSet(p1, p2, p3).Minus(NewSet(p2))
	if len(diff) != 2 {
		t.Errorf("Minus = %v", diff)
	}
}

func TestImpliesAll(t *testing.T) {
	q := NewSet(
		NewCmp("x", Lt, value.NewFloat(5)),
		NewCmp("y", Gt, value.NewFloat(10)),
	)
	// view filters weaker: x < 100
	vWeak := NewSet(NewCmp("x", Lt, value.NewFloat(100)))
	if !q.ImpliesAll(vWeak) {
		t.Error("q should imply weaker view filters")
	}
	// view has a filter q does not imply
	vStrong := NewSet(NewCmp("z", Eq, value.NewStr("a")))
	if q.ImpliesAll(vStrong) {
		t.Error("q should not imply unrelated view filter")
	}
	// empty view filter set: always implied
	if !q.ImpliesAll(NewSet()) {
		t.Error("empty set should be implied")
	}
}

func TestSetCanonDeterministic(t *testing.T) {
	p1 := NewCmp("x", Lt, value.NewFloat(5))
	p2 := NewCmp("y", Gt, value.NewFloat(0))
	a := NewSet(p1, p2).Canon()
	b := NewSet(p2, p1).Canon()
	if a != b {
		t.Errorf("canon differs: %q vs %q", a, b)
	}
}

func TestRename(t *testing.T) {
	up := func(s string) string { return "sig:" + s }
	p := NewCmp("x", Lt, value.NewFloat(1)).Rename(up)
	if p.Attr != "sig:x" {
		t.Errorf("cmp rename = %v", p)
	}
	q := NewAttrEq("b", "a").Rename(up)
	if q.Attr != "sig:a" || q.Attr2 != "sig:b" {
		t.Errorf("attr-eq rename = %v", q)
	}
	o := NewOpaque("f", "u", "v").Rename(up)
	if o.Args[0] != "sig:u" || o.Args[1] != "sig:v" {
		t.Errorf("opaque rename = %v", o)
	}
}

func TestAttrs(t *testing.T) {
	if got := NewCmp("x", Lt, value.NewInt(1)).Attrs(); len(got) != 1 || got[0] != "x" {
		t.Errorf("cmp attrs = %v", got)
	}
	if got := NewAttrEq("a", "b").Attrs(); len(got) != 2 {
		t.Errorf("attr-eq attrs = %v", got)
	}
	if got := NewOpaque("f", "p", "q").Attrs(); len(got) != 2 || got[0] != "p" {
		t.Errorf("opaque attrs = %v", got)
	}
}
