// Package fault is a seeded, deterministic fault-injection subsystem for
// the simulated cluster: a Plan of scripted faults — task panics, straggler
// slowdowns, storage read errors, corrupted intermediate task outputs, all
// addressed by job/phase/task index — that the MR engine and the store
// consult during execution.
//
// Determinism rules (what makes chaos testing reproducible):
//
//   - Task faults are matched statelessly by address (job, phase, task,
//     attempt), never by wall-clock or goroutine schedule, so the same plan
//     fires the same faults at any Workers/ReduceTasks setting.
//   - Map tasks are addressed by their global split index, which depends
//     only on cost.Params.SplitRows — never on the worker pool.
//   - Reduce tasks are addressed by a *virtual shard* of the group key
//     (fnv32(key) mod VirtualShards), independent of the actual reduce
//     partition count R.
//   - Read errors are addressed by dataset name with a bounded failure
//     count, consumed in the engine's serial input-read order.
//
// The currency of every fault is *simulated* seconds: slowdowns, retries,
// and backoff are charged to the job's accounting (WastedSeconds), so
// metrics stay byte-identical across parallelism settings and real
// wall-clock never leaks into results.
package fault

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
)

// Kind enumerates the fault taxonomy.
type Kind string

const (
	// KindPanic makes a task attempt die mid-execution (a UDF process
	// crash or a lost machine in Hadoop terms).
	KindPanic Kind = "panic"
	// KindCorrupt corrupts a map task's intermediate output; the
	// corruption is detected at shuffle ingest and the task re-executed.
	KindCorrupt Kind = "corrupt"
	// KindStraggler slows a task by Factor without failing it.
	KindStraggler Kind = "straggler"
	// KindReadError fails storage reads of a dataset.
	KindReadError Kind = "read_error"
)

// Phase addresses which side of a job a task fault applies to.
type Phase string

const (
	// PhaseMap addresses map tasks (Task = global split index).
	PhaseMap Phase = "map"
	// PhaseReduce addresses reduce groups (Task = virtual key shard).
	PhaseReduce Phase = "reduce"
)

// DefaultVirtualShards is the reduce-side address space: group keys are
// hashed into this many virtual shards so reduce faults address the same
// keys at any ReduceTasks setting.
const DefaultVirtualShards = 64

// Fault is one scripted fault.
type Fault struct {
	// Job restricts the fault to jobs with this exact name; empty matches
	// every job (useful when plans target workloads whose materialization
	// names are derived at run time).
	Job   string `json:"job,omitempty"`
	Phase Phase  `json:"phase,omitempty"`
	// Task addresses the map split index or reduce virtual shard.
	Task int  `json:"task"`
	Kind Kind `json:"kind"`

	// FailAttempts makes panic/corrupt faults fail task attempts 1..N;
	// the task succeeds on attempt N+1 (if the engine's per-task retry
	// budget allows one).
	FailAttempts int `json:"fail_attempts,omitempty"`

	// Factor is the straggler slowdown multiplier (> 1).
	Factor float64 `json:"factor,omitempty"`

	// Dataset and FailReads script read errors: the first FailReads
	// storage reads of Dataset fail.
	Dataset   string `json:"dataset,omitempty"`
	FailReads int    `json:"fail_reads,omitempty"`
}

// Plan is a scripted fault schedule. Plans are pure data: loading the same
// plan always injects the same faults.
type Plan struct {
	// Seed identifies the plan (generated plans record their seed so a
	// failing chaos run can be reproduced exactly).
	Seed int64 `json:"seed"`
	// VirtualShards overrides the reduce-side address space (default
	// DefaultVirtualShards).
	VirtualShards int     `json:"virtual_shards,omitempty"`
	Faults        []Fault `json:"faults"`
}

// Validate checks every fault is well-formed.
func (p *Plan) Validate() error {
	if p.VirtualShards < 0 {
		return fmt.Errorf("fault: negative virtual_shards %d", p.VirtualShards)
	}
	for i, f := range p.Faults {
		at := func(format string, args ...interface{}) error {
			return fmt.Errorf("fault: plan entry %d: %s", i, fmt.Sprintf(format, args...))
		}
		switch f.Kind {
		case KindPanic, KindCorrupt:
			if f.Phase != PhaseMap && f.Phase != PhaseReduce {
				return at("%s fault needs phase map or reduce, got %q", f.Kind, f.Phase)
			}
			if f.Task < 0 {
				return at("negative task index %d", f.Task)
			}
			if f.FailAttempts < 1 {
				return at("%s fault needs fail_attempts >= 1", f.Kind)
			}
			if f.Kind == KindCorrupt && f.Phase != PhaseMap {
				return at("corrupt faults address map task outputs only")
			}
		case KindStraggler:
			if f.Phase != PhaseMap && f.Phase != PhaseReduce {
				return at("straggler fault needs phase map or reduce, got %q", f.Phase)
			}
			if f.Task < 0 {
				return at("negative task index %d", f.Task)
			}
			if f.Factor <= 1 {
				return at("straggler factor %g must be > 1", f.Factor)
			}
		case KindReadError:
			if f.Dataset == "" {
				return at("read_error fault needs a dataset")
			}
			if f.FailReads < 1 {
				return at("read_error fault needs fail_reads >= 1")
			}
		default:
			return at("unknown kind %q", f.Kind)
		}
	}
	return nil
}

// Parse decodes and validates a JSON plan.
func Parse(raw []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(raw, &p); err != nil {
		return nil, fmt.Errorf("fault: malformed plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Load reads a plan from a JSON file.
func Load(path string) (*Plan, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	return Parse(raw)
}

// JSON renders the plan as indented JSON.
func (p *Plan) JSON() []byte {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		panic(err) // Plan contains only marshalable fields
	}
	return b
}

// Generate builds a reproducible random plan of n faults drawn from the
// full taxonomy, addressed with wildcard job names so they hit whatever
// jobs a workload runs. Read errors target the given datasets round-robin.
// The same (seed, n, datasets) always yields the same plan.
func Generate(seed int64, n int, datasets []string) *Plan {
	rng := rand.New(rand.NewSource(seed))
	p := &Plan{Seed: seed}
	for i := 0; i < n; i++ {
		switch k := rng.Intn(4); {
		case k == 0:
			p.Faults = append(p.Faults, Fault{
				Phase: PhaseMap, Task: rng.Intn(4), Kind: KindPanic,
				FailAttempts: 1 + rng.Intn(2),
			})
		case k == 1:
			p.Faults = append(p.Faults, Fault{
				Phase: PhaseReduce, Task: rng.Intn(DefaultVirtualShards), Kind: KindPanic,
				FailAttempts: 1 + rng.Intn(2),
			})
		case k == 2:
			phase := PhaseMap
			if rng.Intn(2) == 1 {
				phase = PhaseReduce
			}
			task := rng.Intn(4)
			if phase == PhaseReduce {
				task = rng.Intn(DefaultVirtualShards)
			}
			p.Faults = append(p.Faults, Fault{
				Phase: phase, Task: task, Kind: KindStraggler,
				Factor: 4 + float64(rng.Intn(8)),
			})
		case len(datasets) > 0:
			p.Faults = append(p.Faults, Fault{
				Kind:    KindReadError,
				Dataset: datasets[i%len(datasets)], FailReads: 1 + rng.Intn(2),
			})
		default:
			p.Faults = append(p.Faults, Fault{
				Phase: PhaseMap, Task: rng.Intn(4), Kind: KindCorrupt, FailAttempts: 1,
			})
		}
	}
	return p
}

// Fired describes one fault occurrence; for panic/corrupt/read_error it is
// the error (and panic value) the injection raises, and its Error text is
// what recovered runs surface in Result.RecoveredError.
type Fired struct {
	Fault   Fault
	Attempt int
}

// Error renders the fault detail chaos tests assert on.
func (f *Fired) Error() string {
	switch f.Fault.Kind {
	case KindCorrupt:
		return fmt.Sprintf("injected corruption: %s task %d output (attempt %d, job %q)",
			f.Fault.Phase, f.Fault.Task, f.Attempt, f.Fault.Job)
	case KindReadError:
		return fmt.Sprintf("injected read error: dataset %q", f.Fault.Dataset)
	default:
		return fmt.Sprintf("injected %s: %s task %d attempt %d (job %q)",
			f.Fault.Kind, f.Fault.Phase, f.Fault.Task, f.Attempt, f.Fault.Job)
	}
}

// IsInjected reports whether an error (or wrapped chain) originated from
// fault injection — the engine recovers those at task granularity and lets
// genuine user-code failures escalate.
func IsInjected(err error) bool {
	var f *Fired
	return errors.As(err, &f)
}

// Shard maps a reduce group key into the plan's virtual shard space.
func Shard(key string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(shards))
}
