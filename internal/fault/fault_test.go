package fault

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
)

func TestLoadAndValidate(t *testing.T) {
	p, err := Load("testdata/plan.json")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 || len(p.Faults) != 5 {
		t.Fatalf("plan = %+v", p)
	}
	// Round-trip through JSON preserves the plan exactly.
	rt, err := Parse(p.JSON())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, rt) {
		t.Errorf("round trip changed plan:\n got %+v\nwant %+v", rt, p)
	}
}

func TestValidateRejectsMalformedFaults(t *testing.T) {
	bad := []Fault{
		{Kind: KindPanic, Phase: PhaseMap, Task: 0},                       // no fail_attempts
		{Kind: KindPanic, Phase: "shuffle", Task: 0, FailAttempts: 1},     // bad phase
		{Kind: KindPanic, Phase: PhaseMap, Task: -1, FailAttempts: 1},     // negative task
		{Kind: KindCorrupt, Phase: PhaseReduce, Task: 0, FailAttempts: 1}, // corrupt is map-only
		{Kind: KindStraggler, Phase: PhaseMap, Task: 0, Factor: 1},        // factor must exceed 1
		{Kind: KindReadError, FailReads: 1},                               // no dataset
		{Kind: KindReadError, Dataset: "x"},                               // no fail_reads
		{Kind: "explode", Phase: PhaseMap, Task: 0},                       // unknown kind
	}
	for i, f := range bad {
		p := &Plan{Faults: []Fault{f}}
		if err := p.Validate(); err == nil {
			t.Errorf("entry %d (%+v) validated", i, f)
		}
	}
	if _, err := Parse([]byte("{not json")); err == nil {
		t.Error("malformed JSON parsed")
	}
}

func TestInjectorTaskMatching(t *testing.T) {
	in := NewInjector(&Plan{Faults: []Fault{
		{Job: "wc", Phase: PhaseMap, Task: 1, Kind: KindPanic, FailAttempts: 2},
		{Phase: PhaseReduce, Task: 3, Kind: KindCorrupt, FailAttempts: 1}, // wildcard job
	}})
	if fd := in.TaskFailure("wc", PhaseMap, 1, 1); fd == nil || fd.Fault.Kind != KindPanic {
		t.Fatalf("attempt 1 = %v", fd)
	}
	if fd := in.TaskFailure("wc", PhaseMap, 1, 2); fd == nil {
		t.Fatal("attempt 2 should still fail")
	}
	if fd := in.TaskFailure("wc", PhaseMap, 1, 3); fd != nil {
		t.Fatalf("attempt 3 should succeed, got %v", fd)
	}
	if fd := in.TaskFailure("other", PhaseMap, 1, 1); fd != nil {
		t.Fatalf("job-scoped fault fired for wrong job: %v", fd)
	}
	if fd := in.TaskFailure("wc", PhaseMap, 2, 1); fd != nil {
		t.Fatalf("wrong task fired: %v", fd)
	}
	// Wildcard job matches everything, and the fired record names the job.
	fd := in.TaskFailure("anything", PhaseReduce, 3, 1)
	if fd == nil || fd.Fault.Job != "anything" {
		t.Fatalf("wildcard fault = %+v", fd)
	}
	if got := in.FiredCounts(); got[KindPanic] != 2 || got[KindCorrupt] != 1 {
		t.Errorf("fired counts = %v", got)
	}
}

func TestInjectorSlowdownAndReadError(t *testing.T) {
	in := NewInjector(&Plan{Faults: []Fault{
		{Phase: PhaseMap, Task: 0, Kind: KindStraggler, Factor: 6},
		{Kind: KindReadError, Dataset: "docs", FailReads: 2},
	}})
	if f := in.Slowdown("j", PhaseMap, 0); f != 6 {
		t.Errorf("slowdown = %g, want 6", f)
	}
	if f := in.Slowdown("j", PhaseMap, 1); f != 0 {
		t.Errorf("unscripted task slowed by %g", f)
	}
	// Read errors are a bounded budget per dataset.
	for i := 0; i < 2; i++ {
		err := in.ReadError("docs")
		if err == nil {
			t.Fatalf("read %d should fail", i+1)
		}
		if !IsInjected(err) {
			t.Errorf("read error not recognized as injected: %v", err)
		}
		if !IsInjected(fmt.Errorf("wrapped: %w", err)) {
			t.Error("IsInjected fails through wrapping")
		}
	}
	if err := in.ReadError("docs"); err != nil {
		t.Errorf("budget exhausted but read still fails: %v", err)
	}
	if err := in.ReadError("other"); err != nil {
		t.Errorf("unscripted dataset failed: %v", err)
	}
}

func TestNilInjectorNeverFires(t *testing.T) {
	var in *Injector
	if in.TaskFailure("j", PhaseMap, 0, 1) != nil || in.Slowdown("j", PhaseMap, 0) != 0 ||
		in.ReadError("x") != nil || in.Shard("k") != 0 || in.FiredCounts() != nil {
		t.Error("nil injector fired")
	}
}

func TestShardStableAndBounded(t *testing.T) {
	for _, key := range []string{"", "wine", "red", "beer", "a-long-reduce-group-key"} {
		s := Shard(key, DefaultVirtualShards)
		if s < 0 || s >= DefaultVirtualShards {
			t.Errorf("shard(%q) = %d out of range", key, s)
		}
		if s != Shard(key, DefaultVirtualShards) {
			t.Errorf("shard(%q) unstable", key)
		}
	}
	if Shard("anything", 1) != 0 || Shard("anything", 0) != 0 {
		t.Error("degenerate shard counts must map to 0")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(7, 12, []string{"twtr", "fsq"})
	b := Generate(7, 12, []string{"twtr", "fsq"})
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed generated different plans")
	}
	if err := a.Validate(); err != nil {
		t.Errorf("generated plan invalid: %v", err)
	}
	if len(a.Faults) != 12 || a.Seed != 7 {
		t.Errorf("plan shape = seed %d, %d faults", a.Seed, len(a.Faults))
	}
	c := Generate(8, 12, []string{"twtr", "fsq"})
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds generated identical plans")
	}
}

func TestFiredIsError(t *testing.T) {
	fd := &Fired{Fault: Fault{Job: "wc", Phase: PhaseMap, Task: 3, Kind: KindPanic}, Attempt: 1}
	var asErr *Fired
	if !errors.As(fmt.Errorf("mr: %w", fd), &asErr) {
		t.Error("Fired does not unwrap")
	}
	for _, f := range []*Fired{
		fd,
		{Fault: Fault{Phase: PhaseMap, Task: 1, Kind: KindCorrupt}, Attempt: 2},
		{Fault: Fault{Kind: KindReadError, Dataset: "twtr"}},
	} {
		if f.Error() == "" {
			t.Errorf("empty error text for %+v", f)
		}
	}
}
