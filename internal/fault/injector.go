package fault

import "sync"

// Injector is the runtime face of a Plan: the engine and the store ask it
// "does a fault fire here?" at every injection point. Task-fault matching
// is stateless (address + attempt number), so concurrent task execution
// order cannot change what fires; read-error matching consumes a bounded
// per-fault budget under a lock, which stays deterministic because the
// engine reads job inputs serially.
type Injector struct {
	plan   *Plan
	shards int

	mu             sync.Mutex
	readsRemaining []int          // per plan-entry budget for read_error faults
	fired          map[Kind]int64 // observability: how many injections fired
}

// NewInjector builds an injector for a validated plan. A nil plan yields a
// nil injector, which never fires (all methods are nil-safe).
func NewInjector(p *Plan) *Injector {
	if p == nil {
		return nil
	}
	shards := p.VirtualShards
	if shards == 0 {
		shards = DefaultVirtualShards
	}
	in := &Injector{
		plan:           p,
		shards:         shards,
		readsRemaining: make([]int, len(p.Faults)),
		fired:          make(map[Kind]int64),
	}
	for i, f := range p.Faults {
		if f.Kind == KindReadError {
			in.readsRemaining[i] = f.FailReads
		}
	}
	return in
}

// Shard maps a reduce group key into this plan's virtual shard space.
func (in *Injector) Shard(key string) int {
	if in == nil {
		return 0
	}
	return Shard(key, in.shards)
}

func (in *Injector) matchTask(f Fault, job string, phase Phase, task int) bool {
	if f.Job != "" && f.Job != job {
		return false
	}
	return f.Phase == phase && f.Task == task
}

// TaskFailure reports the scripted failure (panic or corruption) for this
// task attempt, or nil. Attempts are 1-based; a fault with FailAttempts=N
// fails attempts 1..N.
func (in *Injector) TaskFailure(job string, phase Phase, task, attempt int) *Fired {
	if in == nil {
		return nil
	}
	for _, f := range in.plan.Faults {
		if f.Kind != KindPanic && f.Kind != KindCorrupt {
			continue
		}
		if !in.matchTask(f, job, phase, task) || attempt > f.FailAttempts {
			continue
		}
		fd := &Fired{Fault: f, Attempt: attempt}
		fd.Fault.Job = job
		in.count(f.Kind)
		return fd
	}
	return nil
}

// Slowdown returns the straggler factor scripted for this task (0 when the
// task runs at full speed).
func (in *Injector) Slowdown(job string, phase Phase, task int) float64 {
	if in == nil {
		return 0
	}
	for _, f := range in.plan.Faults {
		if f.Kind == KindStraggler && in.matchTask(f, job, phase, task) {
			in.count(KindStraggler)
			return f.Factor
		}
	}
	return 0
}

// ReadError implements the storage layer's read-fault hook: it fails the
// first FailReads reads of each scripted dataset.
func (in *Injector) ReadError(name string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, f := range in.plan.Faults {
		if f.Kind != KindReadError || f.Dataset != name || in.readsRemaining[i] <= 0 {
			continue
		}
		in.readsRemaining[i]--
		in.fired[KindReadError]++
		return &Fired{Fault: f, Attempt: f.FailReads - in.readsRemaining[i]}
	}
	return nil
}

// PendingReadFaults reports how many scripted read errors are still armed.
// The batch executor serializes execution while this is nonzero so the
// read-error budget is consumed in the exact dataset-read order sequential
// execution would produce; once it reaches zero, reads can no longer fault
// and inter-job parallelism is safe.
func (in *Injector) PendingReadFaults() int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for _, r := range in.readsRemaining {
		n += r
	}
	return n
}

func (in *Injector) count(k Kind) {
	in.mu.Lock()
	in.fired[k]++
	in.mu.Unlock()
}

// FiredCounts snapshots how many injections of each kind have fired.
func (in *Injector) FiredCounts() map[Kind]int64 {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Kind]int64, len(in.fired))
	for k, v := range in.fired {
		out[k] = v
	}
	return out
}
