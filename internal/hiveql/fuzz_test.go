package hiveql

import "testing"

// FuzzParse asserts the parser never panics: arbitrary input either parses
// or returns an error. Run with `go test -fuzz=FuzzParse ./internal/hiveql`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT a FROM t",
		"CREATE TABLE x AS SELECT a, COUNT(*) AS n FROM t WHERE a > 1 GROUP BY a HAVING n > 2 ORDER BY n DESC LIMIT 5",
		"SELECT * FROM (SELECT a FROM t) JOIN u ON a = b APPLY F(a, 'x', 1.5)",
		"SELECT a FROM t; SELECT b FROM u;",
		"SELECT 'unterminated",
		"((((((((",
		"SELECT a FROM t WHERE a = NULL AND b != 'é' -- comment",
		// Physical-design shapes around the partitioning property: Hive's
		// CLUSTERED BY clause and hint-style layout pragmas. The parser may
		// accept or reject them, but must do either cleanly.
		"CREATE TABLE x CLUSTERED BY (user_id) INTO 32 BUCKETS AS SELECT user_id, COUNT(*) AS n FROM twtr GROUP BY user_id",
		"CREATE TABLE y AS SELECT /*+ PARTITION(user_id, 32) */ user_id FROM twtr JOIN fsq ON user_id = fuser",
		"CREATE TABLE z CLUSTERED BY (a, b,) INTO -1 BUCKETS AS SELECT a FROM t",
		"SELECT a FROM t CLUSTERED BY (((a)) INTO 9999999999999999999 BUCKETS",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmts, err := Parse(src)
		if err == nil {
			for _, st := range stmts {
				if st.Plan == nil {
					t.Fatal("nil plan without error")
				}
			}
		}
	})
}
