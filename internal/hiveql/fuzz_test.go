package hiveql

import "testing"

// FuzzParse asserts the parser never panics: arbitrary input either parses
// or returns an error. Run with `go test -fuzz=FuzzParse ./internal/hiveql`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT a FROM t",
		"CREATE TABLE x AS SELECT a, COUNT(*) AS n FROM t WHERE a > 1 GROUP BY a HAVING n > 2 ORDER BY n DESC LIMIT 5",
		"SELECT * FROM (SELECT a FROM t) JOIN u ON a = b APPLY F(a, 'x', 1.5)",
		"SELECT a FROM t; SELECT b FROM u;",
		"SELECT 'unterminated",
		"((((((((",
		"SELECT a FROM t WHERE a = NULL AND b != 'é' -- comment",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmts, err := Parse(src)
		if err == nil {
			for _, st := range stmts {
				if st.Plan == nil {
					t.Fatal("nil plan without error")
				}
			}
		}
	})
}
