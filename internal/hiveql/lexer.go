// Package hiveql implements the declarative query dialect analysts write
// (§2.1: "queries are written in HiveQL"). It is a HiveQL-flavoured SQL
// subset with one extension: an APPLY clause invoking registered MR UDFs,
// standing in for Hive's MAP ... USING 'script' / REDUCE ... USING
// 'script' table functions (Fig 3a).
//
// Grammar (case-insensitive keywords):
//
//	script  := stmt (';' stmt)* [';']
//	stmt    := CREATE TABLE ident AS select | select
//	select  := SELECT item (',' item)*
//	           FROM source (JOIN source ON colref '=' colref)*
//	           [WHERE conj] [GROUP BY ident (',' ident)*] [HAVING conj]
//	item    := '*' | colref [AS ident] | agg '(' (colref|'*') ')' AS ident
//	source  := (ident | '(' select ')') [APPLY udf '(' args ')']*
//	conj    := pred (AND pred)*
//	pred    := colref op (literal | colref)
//
// Qualified column references (t.user_id) are accepted; resolution uses the
// bare column name (the planner rejects ambiguous joins, so bare names are
// unambiguous).
package hiveql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // ( ) , ; * .
	tokOp     // = != <> < <= > >=
)

type token struct {
	kind tokKind
	text string
	pos  int
}

// lexer tokenizes a script.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the whole input up front.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpaceAndComments()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
				l.pos++
			}
			l.toks = append(l.toks, token{tokIdent, l.src[start:l.pos], start})
		case c >= '0' && c <= '9' || c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
			l.pos++
			for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
				l.pos++
			}
			l.toks = append(l.toks, token{tokNumber, l.src[start:l.pos], start})
		case c == '\'':
			l.pos++
			for l.pos < len(l.src) && l.src[l.pos] != '\'' {
				l.pos++
			}
			if l.pos >= len(l.src) {
				return nil, fmt.Errorf("hiveql: unterminated string at offset %d", start)
			}
			l.toks = append(l.toks, token{tokString, l.src[start+1 : l.pos], start})
			l.pos++
		case strings.ContainsRune("(),;*.", rune(c)):
			l.pos++
			l.toks = append(l.toks, token{tokSymbol, string(c), start})
		case strings.ContainsRune("=<>!", rune(c)):
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '=' || (c == '<' && l.src[l.pos] == '>')) {
				l.pos++
			}
			l.toks = append(l.toks, token{tokOp, l.src[start:l.pos], start})
		default:
			return nil, fmt.Errorf("hiveql: unexpected character %q at offset %d", c, l.pos)
		}
	}
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

// keyword reports whether the token is the given keyword (case-insensitive).
func (t token) keyword(kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}
