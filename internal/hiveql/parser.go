package hiveql

import (
	"fmt"
	"strings"

	"opportune/internal/expr"
	"opportune/internal/plan"
	"opportune/internal/value"
)

// Statement is one parsed statement: a query plan plus the result table
// name (empty for a bare SELECT).
type Statement struct {
	Table string
	Plan  *plan.Node
	Text  string
}

// Parse parses a script into statements. Plans are not annotated; callers
// annotate/compile against their catalog.
func Parse(src string) ([]*Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	var stmts []*Statement
	for !p.at(tokEOF) {
		start := p.cur().pos
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		end := p.cur().pos
		st.Text = strings.TrimSpace(src[start:min(end, len(src))])
		stmts = append(stmts, st)
		if !p.acceptSym(";") {
			break
		}
	}
	if !p.at(tokEOF) {
		return nil, p.errf("trailing input")
	}
	if len(stmts) == 0 {
		return nil, fmt.Errorf("hiveql: empty script")
	}
	return stmts, nil
}

// ParseOne parses a script expected to contain exactly one statement.
func ParseOne(src string) (*Statement, error) {
	stmts, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("hiveql: expected one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

type parser struct {
	toks []token
	i    int
	src  string
}

func (p *parser) cur() token        { return p.toks[p.i] }
func (p *parser) at(k tokKind) bool { return p.cur().kind == k }

func (p *parser) errf(format string, args ...interface{}) error {
	pos := p.cur().pos
	line := 1 + strings.Count(p.src[:min(pos, len(p.src))], "\n")
	return fmt.Errorf("hiveql: line %d (offset %d): %s", line, pos, fmt.Sprintf(format, args...))
}

func (p *parser) acceptKw(kw string) bool {
	if p.cur().keyword(kw) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errf("expected %s, found %q", strings.ToUpper(kw), p.cur().text)
	}
	return nil
}

func (p *parser) acceptSym(s string) bool {
	if p.cur().kind == tokSymbol && p.cur().text == s {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectSym(s string) error {
	if !p.acceptSym(s) {
		return p.errf("expected %q, found %q", s, p.cur().text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	if p.cur().kind != tokIdent {
		return "", p.errf("expected identifier, found %q", p.cur().text)
	}
	t := p.cur().text
	p.i++
	return t, nil
}

// colref parses a possibly qualified column reference, returning the bare
// column name.
func (p *parser) colref() (string, error) {
	name, err := p.ident()
	if err != nil {
		return "", err
	}
	if p.acceptSym(".") {
		return p.ident()
	}
	return name, nil
}

func (p *parser) statement() (*Statement, error) {
	if p.acceptKw("create") {
		if err := p.expectKw("table"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("as"); err != nil {
			return nil, err
		}
		q, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		return &Statement{Table: name, Plan: q}, nil
	}
	q, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	return &Statement{Plan: q}, nil
}

// selItem is one SELECT-list entry.
type selItem struct {
	star bool
	col  string
	as   string
	agg  plan.AggFunc // non-empty for aggregate items
}

var aggFuncs = map[string]plan.AggFunc{
	"count": plan.AggCount, "sum": plan.AggSum, "avg": plan.AggAvg,
	"min": plan.AggMin, "max": plan.AggMax,
}

func (p *parser) selectStmt() (*plan.Node, error) {
	if err := p.expectKw("select"); err != nil {
		return nil, err
	}
	var items []selItem
	for {
		it, err := p.selItem()
		if err != nil {
			return nil, err
		}
		items = append(items, it)
		if !p.acceptSym(",") {
			break
		}
	}
	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	root, err := p.source()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("join") {
		right, err := p.source()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("on"); err != nil {
			return nil, err
		}
		lc, err := p.colref()
		if err != nil {
			return nil, err
		}
		if p.cur().kind != tokOp || p.cur().text != "=" {
			return nil, p.errf("expected = in join condition")
		}
		p.i++
		rc, err := p.colref()
		if err != nil {
			return nil, err
		}
		root = plan.JoinNodes(root, right, lc, rc)
	}
	if p.acceptKw("where") {
		preds, err := p.conjunction()
		if err != nil {
			return nil, err
		}
		for _, pr := range preds {
			root = plan.Filter(root, pr)
		}
	}
	grouped := false
	if p.acceptKw("group") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		grouped = true
		var keys []string
		for {
			k, err := p.colref()
			if err != nil {
				return nil, err
			}
			keys = append(keys, k)
			if !p.acceptSym(",") {
				break
			}
		}
		var aggs []plan.AggSpec
		keySet := make(map[string]bool, len(keys))
		for _, k := range keys {
			keySet[k] = true
		}
		for _, it := range items {
			switch {
			case it.star:
				return nil, p.errf("SELECT * cannot be combined with GROUP BY")
			case it.agg != "":
				aggs = append(aggs, plan.AggSpec{Func: it.agg, Col: it.col, As: it.as})
			case !keySet[it.col]:
				return nil, p.errf("non-aggregate column %q not in GROUP BY", it.col)
			}
		}
		root = plan.GroupAgg(root, keys, aggs...)
	}
	if p.acceptKw("having") {
		if !grouped {
			return nil, p.errf("HAVING without GROUP BY")
		}
		preds, err := p.conjunction()
		if err != nil {
			return nil, err
		}
		for _, pr := range preds {
			root = plan.Filter(root, pr)
		}
	}
	// Final projection / rename.
	out, err := projectItems(root, items, grouped, p)
	if err != nil {
		return nil, err
	}
	// ORDER BY / LIMIT apply to the final result.
	var sortCols []string
	var sortDesc []bool
	if p.acceptKw("order") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			c, err := p.colref()
			if err != nil {
				return nil, err
			}
			sortCols = append(sortCols, c)
			sortDesc = append(sortDesc, p.acceptKw("desc"))
			if !p.acceptSym(",") {
				break
			}
		}
	}
	limit := int64(-1)
	if p.acceptKw("limit") {
		if p.cur().kind != tokNumber {
			return nil, p.errf("LIMIT needs a number")
		}
		v := value.Parse(p.cur().text)
		if v.Kind() != value.Int || v.Int() < 0 {
			return nil, p.errf("LIMIT needs a non-negative integer")
		}
		limit = v.Int()
		p.i++
	}
	if len(sortCols) > 0 || limit >= 0 {
		out = plan.Sort(out, sortCols, sortDesc, limit)
	}
	return out, nil
}

func projectItems(root *plan.Node, items []selItem, grouped bool, p *parser) (*plan.Node, error) {
	if len(items) == 1 && items[0].star {
		return root, nil
	}
	for _, it := range items {
		if it.star {
			return nil, p.errf("* must be the only select item")
		}
		if it.agg != "" && !grouped {
			return nil, p.errf("aggregate %s(%s) without GROUP BY", it.agg, it.col)
		}
	}
	cols := make([]string, len(items))
	as := make([]string, len(items))
	rename := false
	for i, it := range items {
		name := it.col
		if it.agg != "" {
			name = it.as // the GroupAgg already named the aggregate
		}
		cols[i] = name
		as[i] = name
		if it.as != "" && it.agg == "" {
			as[i] = it.as
			rename = true
		}
	}
	if rename {
		return plan.ProjectAs(root, cols, as), nil
	}
	return plan.Project(root, cols...), nil
}

func (p *parser) selItem() (selItem, error) {
	if p.acceptSym("*") {
		return selItem{star: true}, nil
	}
	if p.cur().kind == tokIdent {
		if fn, ok := aggFuncs[strings.ToLower(p.cur().text)]; ok && p.toks[p.i+1].kind == tokSymbol && p.toks[p.i+1].text == "(" {
			p.i += 2
			col := ""
			if !p.acceptSym("*") {
				c, err := p.colref()
				if err != nil {
					return selItem{}, err
				}
				col = c
			} else if fn != plan.AggCount {
				return selItem{}, p.errf("%s(*) is not valid", fn)
			}
			if err := p.expectSym(")"); err != nil {
				return selItem{}, err
			}
			if err := p.expectKw("as"); err != nil {
				return selItem{}, p.errf("aggregates need AS <name>")
			}
			name, err := p.ident()
			if err != nil {
				return selItem{}, err
			}
			return selItem{col: col, as: name, agg: fn}, nil
		}
	}
	col, err := p.colref()
	if err != nil {
		return selItem{}, err
	}
	it := selItem{col: col}
	if p.acceptKw("as") {
		name, err := p.ident()
		if err != nil {
			return selItem{}, err
		}
		it.as = name
	}
	return it, nil
}

// source parses a table, view, or parenthesized subquery, optionally
// followed by an alias and APPLY chains.
func (p *parser) source() (*plan.Node, error) {
	var node *plan.Node
	if p.acceptSym("(") {
		sub, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		node = sub
	} else {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		node = plan.Scan(name)
	}
	// optional alias (ignored for resolution; bare column names are used)
	if p.cur().kind == tokIdent && !anyKeyword(p.cur()) {
		p.i++
	}
	for p.acceptKw("apply") {
		udfName, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym("("); err != nil {
			return nil, err
		}
		var args []string
		var params []value.V
		for !p.acceptSym(")") {
			if len(args)+len(params) > 0 {
				if err := p.expectSym(","); err != nil {
					return nil, err
				}
			}
			switch p.cur().kind {
			case tokIdent:
				c, err := p.colref()
				if err != nil {
					return nil, err
				}
				if len(params) > 0 {
					return nil, p.errf("UDF column arguments must precede parameters")
				}
				args = append(args, c)
			case tokNumber:
				params = append(params, value.Parse(p.cur().text))
				p.i++
			case tokString:
				params = append(params, value.NewStr(p.cur().text))
				p.i++
			default:
				return nil, p.errf("unexpected UDF argument %q", p.cur().text)
			}
		}
		node = plan.Apply(node, udfName, args, params...)
	}
	return node, nil
}

// conjunction parses pred (AND pred)*.
func (p *parser) conjunction() ([]expr.Pred, error) {
	var preds []expr.Pred
	for {
		pr, err := p.predicate()
		if err != nil {
			return nil, err
		}
		preds = append(preds, pr)
		if !p.acceptKw("and") {
			return preds, nil
		}
	}
}

func (p *parser) predicate() (expr.Pred, error) {
	col, err := p.colref()
	if err != nil {
		return expr.Pred{}, err
	}
	if p.cur().kind != tokOp {
		return expr.Pred{}, p.errf("expected comparison operator, found %q", p.cur().text)
	}
	op, ok := expr.ParseCmpOp(p.cur().text)
	if !ok {
		return expr.Pred{}, p.errf("bad operator %q", p.cur().text)
	}
	p.i++
	switch p.cur().kind {
	case tokNumber:
		lit := value.Parse(p.cur().text)
		p.i++
		return expr.NewCmp(col, op, lit), nil
	case tokString:
		lit := value.NewStr(p.cur().text)
		p.i++
		return expr.NewCmp(col, op, lit), nil
	case tokIdent:
		if p.cur().keyword("null") {
			p.i++
			return expr.NewCmp(col, op, value.NullV), nil
		}
		rc, err := p.colref()
		if err != nil {
			return expr.Pred{}, err
		}
		if op != expr.Eq {
			return expr.Pred{}, p.errf("column-to-column predicates support = only")
		}
		return expr.NewAttrEq(col, rc), nil
	default:
		return expr.Pred{}, p.errf("expected literal or column, found %q", p.cur().text)
	}
}

var keywords = map[string]bool{
	"select": true, "from": true, "where": true, "group": true, "by": true,
	"having": true, "join": true, "on": true, "and": true, "as": true,
	"create": true, "table": true, "apply": true, "order": true,
	"limit": true, "desc": true,
}

func anyKeyword(t token) bool {
	return t.kind == tokIdent && keywords[strings.ToLower(t.text)]
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
