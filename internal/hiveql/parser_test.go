package hiveql

import (
	"strings"
	"testing"

	"opportune/internal/expr"
	"opportune/internal/plan"
	"opportune/internal/value"
)

func parse1(t *testing.T, src string) *Statement {
	t.Helper()
	st, err := ParseOne(src)
	if err != nil {
		t.Fatalf("ParseOne(%q): %v", src, err)
	}
	return st
}

func TestLexer(t *testing.T) {
	toks, err := lex("SELECT a, b2 FROM t WHERE x >= 1.5 AND y != 'hi' -- comment\n;")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokKind
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	if toks[len(toks)-1].kind != tokEOF {
		t.Error("missing EOF")
	}
	// spot checks
	if toks[0].kind != tokIdent || !toks[0].keyword("select") {
		t.Error("keyword lexing")
	}
	found := false
	for _, tk := range toks {
		if tk.kind == tokString && tk.text == "hi" {
			found = true
		}
	}
	if !found {
		t.Error("string literal lost")
	}
	if _, err := lex("SELECT 'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := lex("SELECT @"); err == nil {
		t.Error("bad char accepted")
	}
}

func TestSimpleSelect(t *testing.T) {
	st := parse1(t, "SELECT user_id, text FROM twtr")
	if st.Table != "" {
		t.Errorf("Table = %q", st.Table)
	}
	p := st.Plan
	if p.Kind != plan.KindProject || len(p.Cols) != 2 {
		t.Fatalf("plan = %s", p)
	}
	if p.Inputs[0].Kind != plan.KindScan || p.Inputs[0].Dataset != "twtr" {
		t.Errorf("scan = %v", p.Inputs[0])
	}
}

func TestSelectStar(t *testing.T) {
	st := parse1(t, "SELECT * FROM twtr")
	if st.Plan.Kind != plan.KindScan {
		t.Errorf("star plan = %s", st.Plan)
	}
}

func TestCreateTableAs(t *testing.T) {
	st := parse1(t, "CREATE TABLE result AS SELECT * FROM twtr;")
	if st.Table != "result" {
		t.Errorf("Table = %q", st.Table)
	}
	if st.Text == "" || !strings.Contains(st.Text, "CREATE TABLE result") {
		t.Errorf("Text = %q", st.Text)
	}
}

func TestWhereConjunction(t *testing.T) {
	st := parse1(t, "SELECT * FROM t WHERE a > 5 AND b = 'x' AND c <= -1.5 AND d = e")
	// four filters stacked
	n := st.Plan
	count := 0
	for n.Kind == plan.KindFilter {
		count++
		n = n.Inputs[0]
	}
	if count != 4 {
		t.Errorf("filters = %d", count)
	}
	// innermost filter is the first predicate
	if n.Kind != plan.KindScan {
		t.Errorf("base = %s", n.Kind)
	}
	// check one predicate shape via re-parse
	st2 := parse1(t, "SELECT * FROM t WHERE a = b")
	if st2.Plan.Pred.Kind != expr.KindAttrEq {
		t.Errorf("attr-eq pred = %v", st2.Plan.Pred)
	}
	st3 := parse1(t, "SELECT * FROM t WHERE a = NULL")
	if st3.Plan.Pred.Lit.Kind() != value.Null {
		t.Errorf("null literal = %v", st3.Plan.Pred.Lit)
	}
}

func TestGroupByHaving(t *testing.T) {
	st := parse1(t, `
		SELECT user_id, COUNT(*) AS n, SUM(score) AS s
		FROM twtr WHERE score > 0
		GROUP BY user_id HAVING n > 100`)
	p := st.Plan // project( filter( groupagg( filter( scan ))))
	if p.Kind != plan.KindProject {
		t.Fatalf("root = %s", p.Kind)
	}
	f := p.Inputs[0]
	if f.Kind != plan.KindFilter {
		t.Fatalf("having missing: %s", f.Kind)
	}
	g := f.Inputs[0]
	if g.Kind != plan.KindGroupAgg || len(g.Keys) != 1 || len(g.Aggs) != 2 {
		t.Fatalf("groupagg = %+v", g)
	}
	if g.Aggs[0].Func != plan.AggCount || g.Aggs[0].Col != "" || g.Aggs[0].As != "n" {
		t.Errorf("count spec = %+v", g.Aggs[0])
	}
	if g.Aggs[1].Func != plan.AggSum || g.Aggs[1].Col != "score" {
		t.Errorf("sum spec = %+v", g.Aggs[1])
	}
}

func TestJoins(t *testing.T) {
	st := parse1(t, `
		SELECT a, c FROM t1 x
		JOIN t2 y ON x.a = y.b
		JOIN (SELECT c FROM t3) z ON b = c`)
	p := st.Plan
	if p.Kind != plan.KindProject {
		t.Fatalf("root = %s", p.Kind)
	}
	j2 := p.Inputs[0]
	if j2.Kind != plan.KindJoin || j2.LCol != "b" || j2.RCol != "c" {
		t.Fatalf("outer join = %+v", j2)
	}
	j1 := j2.Inputs[0]
	if j1.Kind != plan.KindJoin || j1.LCol != "a" || j1.RCol != "b" {
		t.Fatalf("inner join = %+v", j1)
	}
	if j2.Inputs[1].Kind != plan.KindProject {
		t.Error("subquery join source lost")
	}
}

func TestApplyChains(t *testing.T) {
	st := parse1(t, `
		SELECT user_id, total FROM twtr
		APPLY UDF_WINE(text)
		APPLY UDF_USER_TOTAL(user_id, wine_score, 0.5, 'mode')`)
	p := st.Plan.Inputs[0] // under project
	if p.Kind != plan.KindUDF || p.UDFName != "UDF_USER_TOTAL" {
		t.Fatalf("outer UDF = %+v", p)
	}
	if len(p.UDFArgs) != 2 || len(p.UDFParams) != 2 {
		t.Errorf("args/params = %v %v", p.UDFArgs, p.UDFParams)
	}
	if p.UDFParams[0].Kind() != value.Float || p.UDFParams[1].Str() != "mode" {
		t.Errorf("params = %v", p.UDFParams)
	}
	inner := p.Inputs[0]
	if inner.Kind != plan.KindUDF || inner.UDFName != "UDF_WINE" {
		t.Fatalf("inner UDF = %+v", inner)
	}
}

func TestSelectRename(t *testing.T) {
	st := parse1(t, "SELECT user_id AS uid, text FROM twtr")
	p := st.Plan
	if p.Kind != plan.KindProject || len(p.As) != 2 || p.As[0] != "uid" || p.As[1] != "text" {
		t.Fatalf("rename plan = %+v", p)
	}
}

func TestMultiStatementScript(t *testing.T) {
	stmts, err := Parse(`
		CREATE TABLE t1 AS SELECT a FROM x;
		-- a comment between statements
		SELECT b FROM t1;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 2 || stmts[0].Table != "t1" || stmts[1].Table != "" {
		t.Fatalf("stmts = %+v", stmts)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a, * FROM t",
		"SELECT * , a FROM t",
		"SELECT SUM(a) AS s FROM t",            // aggregate without group by
		"SELECT a FROM t GROUP BY b",           // non-agg col not in keys
		"SELECT SUM(*) AS s FROM t GROUP BY a", // sum(*)
		"SELECT COUNT(*) FROM t GROUP BY a",    // aggregate needs AS
		"SELECT * FROM t HAVING a > 1",         // having without group
		"SELECT * FROM t WHERE a",              // missing op
		"SELECT * FROM t WHERE a ! b",          // bad op
		"SELECT * FROM t WHERE a < b",          // col-col non-eq
		"SELECT * FROM t1 JOIN t2",             // missing ON
		"SELECT * FROM t1 JOIN t2 ON a > b",    // non-eq join
		"SELECT * FROM (SELECT a FROM t",       // unclosed subquery
		"CREATE TABLE AS SELECT * FROM t",      // missing name
		"CREATE t AS SELECT * FROM t",          // missing TABLE
		"SELECT * FROM t APPLY f(0.5, col)",    // param before column
		"SELECT * FROM t APPLY f(a b)",         // missing comma
		"SELECT * FROM t; garbage",             // trailing input
		"SELECT a FROM t GROUP BY a HAVING",    // empty having
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted: %q", src)
		}
	}
}

func TestStatementTextCaptured(t *testing.T) {
	stmts, err := Parse("SELECT a FROM t ; SELECT b FROM u")
	if err != nil {
		t.Fatal(err)
	}
	if stmts[0].Text != "SELECT a FROM t" {
		t.Errorf("text[0] = %q", stmts[0].Text)
	}
	if stmts[1].Text != "SELECT b FROM u" {
		t.Errorf("text[1] = %q", stmts[1].Text)
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	// Keywords fold case; identifiers stay case-sensitive.
	st := parse1(t, "select user_id, Count(*) As n from Twtr where user_id > 3 Group By user_id Having n > 1")
	if st.Plan.Kind != plan.KindProject {
		t.Errorf("root = %s", st.Plan.Kind)
	}
	// also: aggregate without AS should fail even lower-case
	if _, err := Parse("select count(*) from t group by a"); err == nil {
		t.Error("aggregate without AS accepted")
	}
}

func TestOrderByLimit(t *testing.T) {
	st := parse1(t, "SELECT a, b FROM t ORDER BY b DESC, a LIMIT 10")
	p := st.Plan
	if p.Kind != plan.KindSort {
		t.Fatalf("root = %s", p.Kind)
	}
	if len(p.SortCols) != 2 || p.SortCols[0] != "b" || !p.SortDesc[0] || p.SortDesc[1] {
		t.Errorf("sort spec = %v %v", p.SortCols, p.SortDesc)
	}
	if p.Limit != 10 {
		t.Errorf("limit = %d", p.Limit)
	}
	// LIMIT alone
	st2 := parse1(t, "SELECT a FROM t LIMIT 5")
	if st2.Plan.Kind != plan.KindSort || len(st2.Plan.SortCols) != 0 || st2.Plan.Limit != 5 {
		t.Errorf("limit-only plan = %+v", st2.Plan)
	}
	// ORDER BY alone: no limit
	st3 := parse1(t, "SELECT a FROM t ORDER BY a")
	if st3.Plan.Kind != plan.KindSort || st3.Plan.Limit != -1 {
		t.Errorf("order-only plan = %+v", st3.Plan)
	}
	// errors
	for _, bad := range []string{
		"SELECT a FROM t ORDER a",
		"SELECT a FROM t ORDER BY",
		"SELECT a FROM t LIMIT",
		"SELECT a FROM t LIMIT -3",
		"SELECT a FROM t LIMIT 1.5",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("accepted: %q", bad)
		}
	}
}

func TestNegativeNumbersAndQualifiedCols(t *testing.T) {
	st := parse1(t, "SELECT t.a FROM t WHERE t.a > -3")
	if st.Plan.Kind != plan.KindProject || st.Plan.Cols[0] != "a" {
		t.Errorf("qualified col = %+v", st.Plan)
	}
	f := st.Plan.Inputs[0]
	if f.Pred.Lit.Int() != -3 {
		t.Errorf("negative literal = %v", f.Pred.Lit)
	}
}

// BenchmarkParse measures parsing of a representative workload query.
func BenchmarkParse(b *testing.B) {
	src := `CREATE TABLE out AS SELECT user_id, u2, wine_sum, strength, afflu FROM
	 (SELECT user_id, SUM(wine_score) AS wine_sum FROM twtr APPLY UDF_W(text)
	  GROUP BY user_id HAVING wine_sum > 8)
	 JOIN (SELECT u1, u2, strength FROM twtr APPLY UDF_F(user_id, reply_to)
	  WHERE strength > 1) ON user_id = u1
	 JOIN (SELECT user_id AS auser, afflu FROM twtr APPLY UDF_A(user_id, text)
	  WHERE afflu > 0.2) ON user_id = auser
	 ORDER BY wine_sum DESC LIMIT 100`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}
