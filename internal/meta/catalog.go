// Package meta is the materialized-view metadata store (§2.1): for every
// base log and every opportunistic view it records the schema, the (A,F,K)
// annotation, cardinality statistics, and the syntactic fingerprint of the
// producing plan. It also owns the system-wide functional dependencies and
// the UDF registry the annotation process consults.
package meta

import (
	"fmt"
	"sort"
	"sync"

	"opportune/internal/afk"
	"opportune/internal/cost"
	"opportune/internal/data"
	"opportune/internal/mr"
	"opportune/internal/storage"
	"opportune/internal/udf"
)

// TableInfo describes one dataset known to the system.
type TableInfo struct {
	Name   string
	Cols   []string // ordered physical columns
	KeyCol string   // record-key column of a base log ("" otherwise)
	Ann    afk.Annotation
	Stats  cost.Stats
	IsView bool
	// PlanFP is the syntactic fingerprint of the plan that produced a view;
	// the caching baseline (BFR-SYNTACTIC) matches on it.
	PlanFP string
	// Distinct holds (estimated) distinct-value counts per column, used by
	// the optimizer's cardinality estimation.
	Distinct map[string]int64
	// Part is the relation's physical hash-layout property; the zero value
	// means layout unknown. It is metadata about the *stored bytes*, so it
	// is installed when the data is written (workload install, view
	// retention) and must be dropped or re-declared whenever they change.
	Part afk.Partitioning
}

// DistinctOf returns the distinct count hint for a column, or 0.
func (t *TableInfo) DistinctOf(col string) int64 {
	if t.Distinct == nil {
		return 0
	}
	return t.Distinct[col]
}

// Catalog is the system catalog.
type Catalog struct {
	mu      sync.RWMutex
	tables  map[string]*TableInfo
	byCanon map[string]*TableInfo // annotation fingerprint -> view

	// FDs holds functional dependencies over signature IDs (record keys
	// and derived attributes).
	FDs *afk.FDSet
	// UDFs is the system's UDF registry.
	UDFs *udf.Registry
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		tables:  make(map[string]*TableInfo),
		byCanon: make(map[string]*TableInfo),
		FDs:     afk.NewFDSet(),
		UDFs:    udf.NewRegistry(),
	}
}

// ByAnnotation resolves a view whose annotation fingerprint matches. The
// optimizer uses it to estimate any plan node semantically identical to a
// materialized view with the view's *measured* statistics — making
// cardinality estimates a function of the logical target rather than the
// producing plan, the property BFREWRITE's termination condition relies on.
func (c *Catalog) ByAnnotation(canon string) (*TableInfo, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.byCanon[canon]
	return t, ok
}

// RegisterBase declares a raw log: columns, record key, stats, and optional
// distinct-count hints. The record key's FDs are installed.
func (c *Catalog) RegisterBase(name string, cols []string, keyCol string, stats cost.Stats, distinct map[string]int64) *TableInfo {
	ann := afk.NewBase(name, cols, keyCol)
	if keyCol != "" {
		key := ann.MustSig(keyCol)
		ids := make([]string, 0, len(cols))
		for _, col := range cols {
			ids = append(ids, ann.MustSig(col).ID())
		}
		c.FDs.AddKey(key.ID(), ids)
	}
	info := &TableInfo{
		Name: name, Cols: append([]string(nil), cols...), KeyCol: keyCol,
		Ann: ann, Stats: stats, Distinct: distinct,
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tables[name] = info
	return info
}

// RegisterView records an opportunistic view's metadata.
func (c *Catalog) RegisterView(name string, cols []string, ann afk.Annotation, stats cost.Stats, planFP string) *TableInfo {
	info := &TableInfo{
		Name: name, Cols: append([]string(nil), cols...),
		Ann: ann, Stats: stats, IsView: true, PlanFP: planFP,
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tables[name] = info
	c.byCanon[ann.Canon()] = info
	return info
}

// SetPartitioning installs (or, with the zero value, clears) a dataset's
// stored layout property copy-on-write, like CollectStats: published
// TableInfo pointers escape to concurrent readers and are never mutated in
// place.
func (c *Catalog) SetPartitioning(name string, p afk.Partitioning) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cur, ok := c.tables[name]
	if !ok {
		return
	}
	upd := *cur
	upd.Part = p.Clone()
	c.tables[name] = &upd
	if canon := upd.Ann.Canon(); c.byCanon[canon] == cur {
		c.byCanon[canon] = &upd
	}
}

// Table looks a dataset up.
func (c *Catalog) Table(name string) (*TableInfo, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	return t, ok
}

// MustTable panics for unknown names (plan validation happened earlier).
func (c *Catalog) MustTable(name string) *TableInfo {
	t, ok := c.Table(name)
	if !ok {
		panic(fmt.Sprintf("meta: unknown table %q", name))
	}
	return t
}

// Views returns all view infos, sorted by name.
func (c *Catalog) Views() []*TableInfo {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []*TableInfo
	for _, t := range c.tables {
		if t.IsView {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// DropView removes one view from the catalog.
func (c *Catalog) DropView(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t, ok := c.tables[name]; ok && t.IsView {
		delete(c.tables, name)
		c.dropCanonLocked(t)
	}
}

// DropTable removes a base-table entry (e.g. the temporary delta table of
// incremental view maintenance). Views are untouched — use DropView.
func (c *Catalog) DropTable(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t, ok := c.tables[name]; ok && !t.IsView {
		delete(c.tables, name)
	}
}

// dropCanonLocked unindexes a view's annotation fingerprint (only if it is
// still the indexed one; another view may share the annotation).
func (c *Catalog) dropCanonLocked(t *TableInfo) {
	canon := t.Ann.Canon()
	if c.byCanon[canon] == t {
		delete(c.byCanon, canon)
	}
}

// DropViews removes every view from the catalog, returning the count.
func (c *Catalog) DropViews() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for name, t := range c.tables {
		if t.IsView {
			delete(c.tables, name)
			c.dropCanonLocked(t)
			n++
		}
	}
	return n
}

// SyncWithStore drops catalog views whose backing data was evicted from the
// store (capacity reclamation), keeping metadata consistent.
func (c *Catalog) SyncWithStore(st *storage.Store) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for name, t := range c.tables {
		if t.IsView && !st.Has(name) {
			delete(c.tables, name)
			c.dropCanonLocked(t)
		}
	}
}

// CollectStats runs the lightweight statistics job for a stored dataset
// (§2.1). Byte size and row count are exact — HDFS file sizes are free and
// the MR job counters report records written — while per-column distinct
// counts are estimated from a 1% uniform sample whose read cost is charged
// to the query that created the view. The simulated overhead seconds are
// returned.
func (c *Catalog) CollectStats(eng *mr.Engine, name string, seed int64) (float64, error) {
	if _, ok := c.Table(name); !ok {
		return 0, fmt.Errorf("meta: unknown table %q", name)
	}
	ds, ok := eng.Store.Meta(name)
	if !ok {
		return 0, fmt.Errorf("meta: table %q not in store", name)
	}
	// 1% sample, floored at ~minSampleRows rows: tiny views are scanned
	// fully, exactly as production ANALYZE does — a 1-row sample would
	// make distinct-count estimates meaningless.
	const minSampleRows = 100
	frac := 0.01
	if rows := ds.Rows(); rows > 0 && frac*float64(rows) < minSampleRows {
		frac = float64(minSampleRows) / float64(rows)
		if frac > 1 {
			frac = 1
		}
	}
	sample, err := eng.Store.Sample(name, frac, seed)
	if err != nil {
		return 0, err
	}
	sampleRows := int64(sample.Len())
	estRows := ds.Rows()
	distinct := make(map[string]int64, sample.Schema().Len())
	for _, col := range sample.Schema().Cols() {
		distinct[col] = chao1(sample, col, sampleRows, estRows)
	}
	// Install the stats copy-on-write: TableInfo pointers escape to
	// concurrent readers (the optimizer reads Stats/Distinct without the
	// catalog lock), so the published info is never mutated in place —
	// readers holding the old pointer just see a pre-stats snapshot.
	c.mu.Lock()
	if cur, ok := c.tables[name]; ok {
		upd := *cur
		upd.Stats = cost.Stats{Rows: estRows, Bytes: ds.SizeBytes}
		upd.Distinct = distinct
		c.tables[name] = &upd
		if canon := upd.Ann.Canon(); c.byCanon[canon] == cur {
			c.byCanon[canon] = &upd
		}
	}
	c.mu.Unlock()

	// Overhead: reading the sample bytes with a map task.
	overhead := eng.Params.JobCost(cost.JobSpec{
		InputBytes: sample.EncodedSize(),
		InputRows:  sampleRows,
		MapFns:     []cost.LocalFn{{Ops: []cost.OpType{cost.OpAttr}, Scalar: 1}},
	})
	return overhead.Total(), nil
}

// chao1 estimates a column's distinct count from a sample with the Chao1
// abundance estimator: d̂ = d + f1(f1−1)/(2(f2+1)), where f1/f2 are the
// numbers of values seen once/twice. Unlike linear scaling (d/frac), it is
// stable for low-cardinality columns where the sample saturates. A sample
// whose values are all unique is treated as a key column.
func chao1(sample *data.Relation, col string, sampleRows, totalRows int64) int64 {
	ix := sample.Schema().MustIndex(col)
	counts := make(map[string]int64)
	for _, r := range sample.Rows() {
		counts[r[ix].String()]++
	}
	d := int64(len(counts))
	if d == sampleRows && sampleRows > 1 {
		return totalRows
	}
	var f1, f2 int64
	for _, n := range counts {
		switch n {
		case 1:
			f1++
		case 2:
			f2++
		}
	}
	est := d + (f1*(f1-1))/(2*(f2+1))
	if est > totalRows {
		est = totalRows
	}
	if est < 1 && totalRows > 0 {
		est = 1
	}
	return est
}
