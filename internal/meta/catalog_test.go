package meta

import (
	"testing"

	"opportune/internal/cost"
	"opportune/internal/data"
	"opportune/internal/mr"
	"opportune/internal/storage"
	"opportune/internal/value"
)

func TestRegisterBaseAndFDs(t *testing.T) {
	c := NewCatalog()
	info := c.RegisterBase("twtr", []string{"tweet_id", "user_id", "text"}, "tweet_id",
		cost.Stats{Rows: 10, Bytes: 100}, map[string]int64{"user_id": 5})
	if info.Name != "twtr" || info.IsView {
		t.Errorf("info = %+v", info)
	}
	if info.DistinctOf("user_id") != 5 || info.DistinctOf("text") != 0 {
		t.Error("Distinct hints wrong")
	}
	// record key FDs installed
	if !c.FDs.Determines([]string{"b:twtr.tweet_id"}, "b:twtr.user_id") {
		t.Error("key FD missing")
	}
	got, ok := c.Table("twtr")
	if !ok || got != info {
		t.Error("Table lookup failed")
	}
	if _, ok := c.Table("x"); ok {
		t.Error("found missing table")
	}
	// no key column: no FDs, no panic
	before := c.FDs.Len()
	c.RegisterBase("nokey", []string{"a"}, "", cost.Stats{}, nil)
	if c.FDs.Len() != before {
		t.Error("keyless base added FDs")
	}
	// MustTable
	defer func() {
		if recover() == nil {
			t.Error("MustTable(missing) did not panic")
		}
	}()
	c.MustTable("missing")
}

func TestViews(t *testing.T) {
	c := NewCatalog()
	base := c.RegisterBase("twtr", []string{"a"}, "", cost.Stats{}, nil)
	c.RegisterView("v2", []string{"a"}, base.Ann, cost.Stats{Rows: 1}, "fp2")
	c.RegisterView("v1", []string{"a"}, base.Ann, cost.Stats{Rows: 2}, "fp1")
	vs := c.Views()
	if len(vs) != 2 || vs[0].Name != "v1" {
		t.Errorf("Views = %v", vs)
	}
	c.DropView("v1")
	c.DropView("twtr") // must not drop base
	if len(c.Views()) != 1 {
		t.Error("DropView wrong")
	}
	if _, ok := c.Table("twtr"); !ok {
		t.Error("DropView removed base")
	}
	if n := c.DropViews(); n != 1 {
		t.Errorf("DropViews = %d", n)
	}
}

func TestSyncWithStore(t *testing.T) {
	c := NewCatalog()
	st := storage.NewStore()
	base := c.RegisterBase("b", []string{"a"}, "", cost.Stats{}, nil)
	rel := data.NewRelation(data.NewSchema("a"))
	rel.Append(data.Row{value.NewInt(1)})
	st.Put("v1", storage.View, rel)
	c.RegisterView("v1", []string{"a"}, base.Ann, cost.Stats{}, "")
	c.RegisterView("vgone", []string{"a"}, base.Ann, cost.Stats{}, "")
	c.SyncWithStore(st)
	if _, ok := c.Table("v1"); !ok {
		t.Error("synced away live view")
	}
	if _, ok := c.Table("vgone"); ok {
		t.Error("kept evicted view")
	}
}

func TestCollectStats(t *testing.T) {
	c := NewCatalog()
	st := storage.NewStore()
	rel := data.NewRelation(data.NewSchema("user_id", "score"))
	for i := 0; i < 5000; i++ {
		rel.Append(data.Row{value.NewInt(int64(i % 40)), value.NewFloat(float64(i))})
	}
	st.Put("v", storage.View, rel)
	base := c.RegisterBase("b", []string{"user_id", "score"}, "", cost.Stats{}, nil)
	stale := c.RegisterView("v", []string{"user_id", "score"}, base.Ann, cost.Stats{}, "")
	eng := mr.New(st, cost.DefaultParams())

	overhead, err := c.CollectStats(eng, "v", 11)
	if err != nil {
		t.Fatal(err)
	}
	// Stats install copy-on-write: previously handed-out pointers keep
	// their pre-stats snapshot; the catalog serves the updated info.
	if stale.Stats.Rows != 0 {
		t.Errorf("stale snapshot mutated: %+v", stale.Stats)
	}
	info, ok := c.Table("v")
	if !ok {
		t.Fatal("view vanished from catalog")
	}
	if overhead <= 0 {
		t.Error("no overhead charged")
	}
	// exact bytes
	if info.Stats.Bytes != rel.EncodedSize() {
		t.Errorf("Bytes = %d, want %d", info.Stats.Bytes, rel.EncodedSize())
	}
	// estimated rows within 3x of truth (1% sample of 5000 is noisy but sane)
	if info.Stats.Rows < 1500 || info.Stats.Rows > 15000 {
		t.Errorf("estimated Rows = %d, want ≈5000", info.Stats.Rows)
	}
	// distinct of a 40-value column should not be estimated near 5000
	if d := info.DistinctOf("user_id"); d < 20 || d > 4000 {
		t.Errorf("distinct(user_id) = %d", d)
	}
	// score is nearly unique per row: estimate should be near row estimate
	if d := info.DistinctOf("score"); d < info.Stats.Rows/2 {
		t.Errorf("distinct(score) = %d vs rows %d", d, info.Stats.Rows)
	}

	if _, err := c.CollectStats(eng, "missing", 1); err == nil {
		t.Error("missing table accepted")
	}
	// registered in catalog but not in store
	c.RegisterView("ghost", []string{"a"}, base.Ann, cost.Stats{}, "")
	if _, err := c.CollectStats(eng, "ghost", 1); err == nil {
		t.Error("ghost table accepted")
	}
}
