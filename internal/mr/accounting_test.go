package mr

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"opportune/internal/cost"
	"opportune/internal/data"
	"opportune/internal/fault"
	"opportune/internal/obs"
	"opportune/internal/storage"
)

// flakyWordCount returns the word-count job with a reduce that panics the
// first `failures` times it sees the key "wine". Attempts run serially and
// only one reduce task owns a key, so the plain counter is race-free and
// the injected failures are deterministic at any Workers/ReduceTasks.
func flakyWordCount(failures int) *Job {
	job := wordCountJob()
	orig := job.Reduce
	n := 0
	job.Reduce = func(key string, rows []data.Row, emit func(data.Row)) {
		if key == "wine" && n < failures {
			n++
			panic("transient reduce failure")
		}
		orig(key, rows, emit)
	}
	return job
}

// TestWastedSecondsInvariant is the retry-accounting regression: failed
// attempts' time must land in an explicit WastedSeconds field with
// Breakdown.Total() + WastedSeconds == SimSeconds, instead of silently
// desynchronizing SimSeconds from the breakdown.
func TestWastedSecondsInvariant(t *testing.T) {
	e, st := newEngine()
	loadWords(st)
	e.MaxAttempts = 3
	_, res, err := e.Run(flakyWordCount(2))
	if err != nil {
		t.Fatalf("job did not recover: %v", err)
	}
	if res.Attempts != 3 {
		t.Fatalf("Attempts = %d, want 3", res.Attempts)
	}
	if res.WastedSeconds <= 0 {
		t.Error("recovered failures charged no WastedSeconds")
	}
	if got := res.Breakdown.Total() + res.WastedSeconds; got != res.SimSeconds {
		t.Errorf("Breakdown.Total()+WastedSeconds = %g, SimSeconds = %g", got, res.SimSeconds)
	}

	// Clean runs keep the same invariant with zero waste.
	e2, st2 := newEngine()
	loadWords(st2)
	_, clean, err := e2.Run(wordCountJob())
	if err != nil {
		t.Fatal(err)
	}
	if clean.WastedSeconds != 0 || clean.RetriedInputBytes != 0 || clean.RetriedShuffleBytes != 0 {
		t.Errorf("clean run reports retry accounting: %+v", clean)
	}
	if clean.Breakdown.Total() != clean.SimSeconds {
		t.Errorf("clean run: Breakdown.Total() = %g, SimSeconds = %g", clean.Breakdown.Total(), clean.SimSeconds)
	}

	// An unrecovered failure still satisfies the invariant (zero breakdown,
	// waste covers the recovered-from attempts only).
	e3, st3 := newEngine()
	loadWords(st3)
	e3.MaxAttempts = 2
	_, failed, err := e3.Run(flakyWordCount(100))
	if err == nil {
		t.Fatal("permanent failure succeeded")
	}
	if got := failed.Breakdown.Total() + failed.WastedSeconds; got != failed.SimSeconds {
		t.Errorf("failed job: Breakdown.Total()+WastedSeconds = %g, SimSeconds = %g", got, failed.SimSeconds)
	}
}

// TestWastedSecondsInvariantUnderFaultPlans extends the accounting
// invariant to scripted chaos: under every fault type — task panic,
// straggler with speculation, storage read error, deadline abort — the
// identity Breakdown.Total() + WastedSeconds == SimSeconds must hold
// exactly, and all fault-induced overhead must be itemized in
// Result.Faults (WastedSeconds money), never folded into Breakdown.
func TestWastedSecondsInvariantUnderFaultPlans(t *testing.T) {
	wineShard := fault.Shard("wine", fault.DefaultVirtualShards)
	cases := []struct {
		name     string
		plan     *fault.Plan
		deadline float64
		wantErr  error // nil means the run must recover
		// noWaste marks faults that legitimately waste nothing: a failed
		// read dies before any bytes are served or work is done.
		noWaste bool
		// noRecovered marks faults that are not failures (stragglers slow
		// a task down without killing it), so nothing is "recovered from".
		noRecovered bool
	}{
		{name: "map task panic", plan: &fault.Plan{Faults: []fault.Fault{
			{Phase: fault.PhaseMap, Task: 1, Kind: fault.KindPanic, FailAttempts: 2},
		}}},
		{name: "reduce group panic", plan: &fault.Plan{Faults: []fault.Fault{
			{Phase: fault.PhaseReduce, Task: wineShard, Kind: fault.KindPanic, FailAttempts: 1},
		}}},
		{name: "corrupted map output", plan: &fault.Plan{Faults: []fault.Fault{
			{Phase: fault.PhaseMap, Task: 0, Kind: fault.KindCorrupt, FailAttempts: 1},
		}}},
		{name: "straggler with speculation", plan: &fault.Plan{Faults: []fault.Fault{
			{Phase: fault.PhaseMap, Task: 2, Kind: fault.KindStraggler, Factor: 6},
		}}, noRecovered: true},
		{name: "storage read error", plan: &fault.Plan{Faults: []fault.Fault{
			{Kind: fault.KindReadError, Dataset: "docs", FailReads: 1},
		}}, noWaste: true},
		{name: "deadline abort", plan: &fault.Plan{Faults: []fault.Fault{
			{Phase: fault.PhaseMap, Task: 0, Kind: fault.KindStraggler, Factor: 1e6},
		}}, deadline: 1e-9, wantErr: ErrDeadlineExceeded},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.plan.Validate(); err != nil {
				t.Fatal(err)
			}
			st := storage.NewStore()
			loadWords(st)
			params := cost.DefaultParams()
			params.SplitRows = 1 // three map tasks
			e := New(st, params)
			e.Faults = fault.NewInjector(tc.plan)
			st.SetFaults(e.Faults)
			e.MaxAttempts = 3
			e.DeadlineSimSeconds = tc.deadline
			if tc.deadline > 0 {
				e.DisableSpeculation = true // let the straggler blow the budget
			}
			_, res, err := e.Run(wordCountJob())
			if tc.wantErr == nil {
				if err != nil {
					t.Fatalf("run did not recover: %v", err)
				}
				if !tc.noWaste && res.WastedSeconds <= 0 {
					t.Error("recovered fault charged no waste")
				}
				if !tc.noRecovered && res.RecoveredError == "" {
					t.Error("recovered run surfaces no RecoveredError")
				}
			} else if !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
			if got := res.Breakdown.Total() + res.WastedSeconds; got != res.SimSeconds {
				t.Errorf("Breakdown.Total()+WastedSeconds = %g, SimSeconds = %g", got, res.SimSeconds)
			}
			// Fault overhead is itemized waste: the sum of the itemized
			// components plus whole-attempt waste reconstructs WastedSeconds.
			jobWaste := res.WastedSeconds - res.Faults.Total()
			if jobWaste < 0 {
				t.Errorf("itemized fault waste %g exceeds WastedSeconds %g", res.Faults.Total(), res.WastedSeconds)
			}
		})
	}
}

// TestFaultObsCounters checks the recovery counters the engine publishes:
// values mirror the Result, and zero-valued families are still registered
// so snapshot key sets never depend on which faults fired.
func TestFaultObsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	st := storage.NewStore()
	loadWords(st)
	params := cost.DefaultParams()
	params.SplitRows = 1
	e := New(st, params)
	e.Obs = reg
	e.Faults = fault.NewInjector(&fault.Plan{Faults: []fault.Fault{
		{Phase: fault.PhaseMap, Task: 0, Kind: fault.KindPanic, FailAttempts: 1},
		{Phase: fault.PhaseMap, Task: 1, Kind: fault.KindStraggler, Factor: 6},
	}})
	_, res, err := e.Run(wordCountJob())
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for k, want := range map[string]int64{
		"mr_task_retries_total":      int64(res.TaskRetries),
		"mr_straggler_tasks_total":   int64(res.StragglerTasks),
		"mr_speculative_tasks_total": int64(res.SpeculativeTasks),
		"mr_speculative_wins_total":  int64(res.SpeculativeWins),
		"mr_deadline_aborts_total":   0,
	} {
		got, ok := snap.Counters[k]
		if !ok {
			t.Errorf("counter %s not registered", k)
		} else if got != want {
			t.Errorf("%s = %d, want %d", k, got, want)
		}
	}
	// Summed in FaultWaste.Total()'s field order: float addition is not
	// associative, so a map-order sum can differ in the last ulp.
	var itemized float64
	for _, cw := range []struct {
		comp string
		want float64
	}{
		{"retry", res.Faults.TaskRetrySeconds},
		{"backoff", res.Faults.BackoffSeconds},
		{"straggler", res.Faults.StragglerSeconds},
		{"speculation", res.Faults.SpeculationSeconds},
	} {
		comp, want := cw.comp, cw.want
		k := "mr_fault_waste_sim_seconds_total{component=" + comp + "}"
		got, ok := snap.FloatCounters[k]
		if !ok {
			t.Errorf("float counter %s not registered", k)
		} else if got != want {
			t.Errorf("%s = %g, want %g", k, got, want)
		}
		itemized += got
	}
	if itemized != res.Faults.Total() {
		t.Errorf("itemized fault waste sums to %g, Result says %g", itemized, res.Faults.Total())
	}
}

// TestEngineStoreByteReconciliation is the under-reported-volume
// regression: after recovered failures, the engine's Result must account
// every byte the store served, not just the successful attempt's.
func TestEngineStoreByteReconciliation(t *testing.T) {
	for _, cfg := range []struct{ workers, reduceTasks int }{{1, 1}, {4, 3}} {
		st := storage.NewStore()
		loadWords(st)
		params := cost.DefaultParams()
		params.ReduceTasks = cfg.reduceTasks
		e := New(st, params)
		e.Workers = cfg.workers
		e.MaxAttempts = 3
		before := st.Counters()
		_, res, err := e.Run(flakyWordCount(2))
		if err != nil {
			t.Fatalf("workers=%d: job did not recover: %v", cfg.workers, err)
		}
		after := st.Counters()

		// Two failed attempts each re-read the full input.
		if res.RetriedInputBytes != 2*res.InputBytes {
			t.Errorf("workers=%d: RetriedInputBytes = %d, want %d", cfg.workers, res.RetriedInputBytes, 2*res.InputBytes)
		}
		// Reduce-side panics waste the whole shuffle of each failed attempt.
		if res.RetriedShuffleBytes != 2*res.ShuffleBytes {
			t.Errorf("workers=%d: RetriedShuffleBytes = %d, want %d", cfg.workers, res.RetriedShuffleBytes, 2*res.ShuffleBytes)
		}
		if got, want := after.BytesRead-before.BytesRead, res.InputBytes+res.RetriedInputBytes; got != want {
			t.Errorf("workers=%d: store read %d bytes, engine accounts %d", cfg.workers, got, want)
		}
		// Failed attempts die before materializing: writes reconcile exactly.
		if got := after.BytesWritten - before.BytesWritten; got != res.OutputBytes {
			t.Errorf("workers=%d: store wrote %d bytes, engine accounts %d", cfg.workers, got, res.OutputBytes)
		}
	}
}

// TestRetriedAccountingWorkerIndependent pins the whole Result — including
// the new retry fields — to be identical at any parallelism setting.
func TestRetriedAccountingWorkerIndependent(t *testing.T) {
	run := func(workers, reduceTasks int) Result {
		st := storage.NewStore()
		loadWords(st)
		params := cost.DefaultParams()
		params.ReduceTasks = reduceTasks
		e := New(st, params)
		e.Workers = workers
		e.MaxAttempts = 3
		_, res, err := e.Run(flakyWordCount(2))
		if err != nil {
			t.Fatal(err)
		}
		return *res
	}
	ref := run(1, 1)
	for _, cfg := range []struct{ w, r int }{{2, 1}, {4, 4}, {8, 3}} {
		if got := run(cfg.w, cfg.r); got != ref {
			t.Errorf("workers=%d R=%d: Result differs:\n got %+v\nwant %+v", cfg.w, cfg.r, got, ref)
		}
	}
}

// TestMapOnlySchemaMismatchFails is the malformed-materialization
// regression: a map-only job whose MapOutSchema disagrees with OutputSchema
// must fail instead of materializing rows of the wrong width.
func TestMapOnlySchemaMismatchFails(t *testing.T) {
	e, st := newEngine()
	loadWords(st)
	job := &Job{
		Name:   "badproject",
		Inputs: []string{"docs"},
		Map: func(_ int, r data.Row, emit Emit) {
			emit("", data.Row{r[0]})
		},
		MapOutSchema: data.NewSchema("id"),
		OutputSchema: data.NewSchema("id", "extra"), // width mismatch
		Output:       "bad",
		OutputKind:   storage.View,
	}
	_, _, err := e.Run(job)
	if err == nil || !strings.Contains(err.Error(), "map-only") {
		t.Fatalf("schema mismatch accepted: err = %v", err)
	}
	if st.Has("bad") {
		t.Error("malformed output was materialized")
	}
}

// TestRunTasksLowestIndexedError checks runTasks reports the error of the
// lowest-indexed failed task regardless of worker count and scheduling, and
// runs every task to completion even after a failure.
func TestRunTasksLowestIndexedError(t *testing.T) {
	for _, w := range []int{1, 4} {
		var ran atomic.Int64
		err := runTasks(w, 8, func(i int) error {
			ran.Add(1)
			switch i {
			case 2:
				panic(fmt.Sprintf("panic in task %d", i))
			case 5:
				return fmt.Errorf("error in task %d", i)
			}
			return nil
		})
		if err == nil || !strings.Contains(err.Error(), "task 2") {
			t.Errorf("w=%d: err = %v, want lowest-indexed (task 2)", w, err)
		}
		if ran.Load() != 8 {
			t.Errorf("w=%d: %d tasks ran, want all 8", w, ran.Load())
		}
	}
	// A panic in task 0 outranks a later error.
	for _, w := range []int{1, 4} {
		err := runTasks(w, 4, func(i int) error {
			if i == 0 {
				panic("task 0 died")
			}
			if i == 3 {
				return fmt.Errorf("task 3 failed")
			}
			return nil
		})
		if err == nil || !strings.Contains(err.Error(), "task 0") {
			t.Errorf("w=%d: err = %v, want task 0's", w, err)
		}
	}
}

// TestEngineObsMetricsAndSpans checks the engine's instrumentation: counter
// totals match the Result, and the span tree carries per-attempt phase
// children with simulated seconds that reconcile with the breakdown.
func TestEngineObsMetricsAndSpans(t *testing.T) {
	reg := obs.NewRegistry()
	e, st := newEngine()
	loadWords(st)
	e.Obs = reg
	e.MaxAttempts = 3
	before := reg.Snapshot()
	_, res, err := e.Run(flakyWordCount(2))
	if err != nil {
		t.Fatal(err)
	}
	d := reg.Snapshot().Diff(before)

	wantCounters := map[string]int64{
		"mr_jobs_total":                  1,
		"mr_attempts_total":              3,
		"mr_retries_total":               2,
		"mr_input_bytes_total":           res.InputBytes,
		"mr_shuffle_bytes_total":         res.ShuffleBytes,
		"mr_output_bytes_total":          res.OutputBytes,
		"mr_retried_input_bytes_total":   res.RetriedInputBytes,
		"mr_retried_shuffle_bytes_total": res.RetriedShuffleBytes,
	}
	for k, want := range wantCounters {
		if got := d.Counters[k]; got != want {
			t.Errorf("%s = %d, want %d", k, got, want)
		}
	}
	if got := d.FloatCounters["mr_sim_seconds_total"]; got != res.SimSeconds {
		t.Errorf("mr_sim_seconds_total = %g, want %g", got, res.SimSeconds)
	}
	if got := d.FloatCounters["mr_wasted_sim_seconds_total"]; got != res.WastedSeconds {
		t.Errorf("mr_wasted_sim_seconds_total = %g, want %g", got, res.WastedSeconds)
	}
	if d.Histograms["mr_job_wall_seconds"].Count != 1 {
		t.Error("job wall-clock not observed")
	}

	spans := reg.Spans()
	if len(spans) != 1 {
		t.Fatalf("root spans = %d, want 1", len(spans))
	}
	root := spans[0]
	if root.Job != "wordcount" || root.Phase != "job" {
		t.Errorf("root span = %+v", root)
	}
	if len(root.Children) != 3 {
		t.Fatalf("attempt spans = %d, want 3", len(root.Children))
	}
	if math.Abs(root.SimSeconds-res.SimSeconds) > 1e-12 {
		t.Errorf("root sim = %g, want %g", root.SimSeconds, res.SimSeconds)
	}
	// The successful (last) attempt has the full phase tree; its phases'
	// simulated seconds reconcile with the cost breakdown.
	last := root.Children[2]
	var phases []string
	var phaseSim float64
	for _, c := range last.Children {
		phases = append(phases, c.Phase)
		phaseSim += c.SimSeconds
		for _, g := range c.Children {
			phaseSim += g.SimSeconds
		}
	}
	want := []string{"split", "map", "shuffle", "reduce", "materialize"}
	if strings.Join(phases, ",") != strings.Join(want, ",") {
		t.Errorf("phases = %v, want %v", phases, want)
	}
	if total := res.Breakdown.Total(); math.Abs(phaseSim-total) > 1e-9*math.Max(1, total) {
		t.Errorf("phase sim sum = %g, breakdown total = %g", phaseSim, total)
	}
	// Failed attempts are charged their partial cost on their span.
	if root.Children[0].SimSeconds <= 0 {
		t.Error("failed attempt span carries no simulated time")
	}
	sumAttempts := root.Children[0].SimSeconds + root.Children[1].SimSeconds + root.Children[2].SimSeconds
	if math.Abs(sumAttempts-res.SimSeconds) > 1e-12 {
		t.Errorf("attempt sims sum to %g, want %g", sumAttempts, res.SimSeconds)
	}
}
