package mr

import (
	"fmt"
	"testing"

	"opportune/internal/cost"
	"opportune/internal/data"
	"opportune/internal/storage"
	"opportune/internal/value"
)

// benchInput builds a synthetic shuffle-heavy input: rows rows spread over
// groups distinct keys, three payload columns.
func benchInput(rows, groups int) (*storage.Store, *data.Schema) {
	schema := data.NewSchema("k", "a", "b", "c")
	rel := data.NewRelation(schema)
	for i := 0; i < rows; i++ {
		rel.Append(data.Row{
			value.NewInt(int64(i % groups)),
			value.NewInt(int64(i)),
			value.NewStr(fmt.Sprintf("payload-%d", i%97)),
			value.NewFloat(float64(i) * 0.5),
		})
	}
	st := storage.NewStore()
	st.Put("bench_in", storage.Base, rel)
	return st, schema
}

// benchGroupJob is a group-by-count job shaped like the optimizer's
// compiled group-agg jobs: a per-task map with its own key encoder emits a
// composite key per row, the reducer folds each group to one row, and the
// estimator's cardinality hints are set the way executableJob plumbs them.
func benchGroupJob(schema *data.Schema, rows, groups int) *Job {
	keyIdxs := []int{0, 2}
	outSchema := data.NewSchema("k", "b", "n")
	return &Job{
		Name:         "bench-shuffle-group",
		Inputs:       []string{"bench_in"},
		MapOutSchema: schema,
		MapFactory: func(TaskCtx) MapFunc {
			var enc data.KeyEncoder
			return func(_ int, r data.Row, emit Emit) {
				emit(enc.Key(r, keyIdxs), r)
			}
		},
		Reduce: func(_ string, rows []data.Row, emit func(data.Row)) {
			emit(data.Row{rows[0][0], rows[0][2], value.NewInt(int64(len(rows)))})
		},
		OutputSchema:   outSchema,
		Output:         "bench_out",
		MapCost:        []cost.LocalFn{{Ops: []cost.OpType{cost.OpAttr}, Scalar: 1}},
		ReduceCost:     []cost.LocalFn{{Ops: []cost.OpType{cost.OpGroup}, Scalar: 1}},
		EstShuffleRows: int64(rows),
		EstGroups:      int64(groups),
		EstOutputRows:  int64(groups),
	}
}

// BenchmarkShuffleGroup measures the engine's shuffle/group/merge hot path:
// per-tuple key building, hash partitioning, per-partition grouping, and the
// global key-ordered merge. This is the allocation gate of the PR-4
// perf trajectory (BENCH_PR4.json).
func BenchmarkShuffleGroup(b *testing.B) {
	st, schema := benchInput(20000, 2000)
	params := cost.DefaultParams()
	params.ReduceTasks = 3
	e := New(st, params)
	e.Workers = 4
	job := benchGroupJob(schema, 20000, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Run(job); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKWayMerge measures merging R per-partition key-sorted runs into
// one globally key-ordered sequence — the reduce-output merge step of
// shuffleReduce.
func BenchmarkKWayMerge(b *testing.B) {
	const runs, perRun = 8, 2048
	src := make([][]redOut, runs)
	for p := 0; p < runs; p++ {
		src[p] = make([]redOut, perRun)
		for i := 0; i < perRun; i++ {
			src[p][i] = redOut{
				key:  fmt.Sprintf("key-%04d-%02d", i, p),
				rows: []data.Row{{value.NewInt(int64(i))}},
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var n int
		mergeRuns(src, func(ro *redOut) string { return ro.key }, func(ro *redOut) {
			n += len(ro.rows)
		})
		if n != runs*perRun {
			b.Fatal("bad merge")
		}
	}
}

// BenchmarkPartitionLocalGroup is BenchmarkShuffleGroup on the partition-
// preserving path: same job, input declared hash-clustered on the first
// key column, so routing goes by decoded key prefix instead of a full
// cross-partition shuffle. Tracked in the perf trajectory alongside
// ShuffleGroup so the oracle-equal output stays cheap.
func BenchmarkPartitionLocalGroup(b *testing.B) {
	st, schema := benchInput(20000, 2000)
	params := cost.DefaultParams()
	params.ReduceTasks = 3
	e := New(st, params)
	e.Workers = 4
	job := benchGroupJob(schema, 20000, 2000)
	job.PartitionKeyCols = 1
	job.PartitionParts = 32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, res, err := e.Run(job); err != nil {
			b.Fatal(err)
		} else if res.LocalShuffleBytes == 0 {
			b.Fatal("partition-local path not taken")
		}
	}
}
