package mr

import (
	"fmt"
	"sync"
	"testing"

	"opportune/internal/cost"
	"opportune/internal/data"
	"opportune/internal/obs"
	"opportune/internal/storage"
	"opportune/internal/value"
)

// TestGetColFreshAndHygienic pins the pool hygiene contract for column
// buffers: a pooled column comes back reset — every slot null, no stale
// value or string from the previous tenant observable through the API.
func TestGetColFreshAndHygienic(t *testing.T) {
	c := GetCol(4)
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c.Len())
	}
	for i := 0; i < 4; i++ {
		c.Set(i, value.NewStr(fmt.Sprintf("secret-%d", i)))
	}
	PutCol(c)

	// The same (or a fresh) buffer must behave as brand new.
	c2 := GetCol(4)
	for i := 0; i < 4; i++ {
		if v := c2.Get(i); !v.IsNull() {
			t.Fatalf("slot %d leaked %v from previous tenant", i, v)
		}
	}
	// Forcing degrade on the reused buffer must not resurrect old strings:
	// unwritten slots may carry typed zeros (documented, never read by the
	// executor) but never a reference from the previous tenant.
	c2.Set(0, value.NewInt(7))
	c2.Set(1, value.NewStr("mix")) // kind mix → degrade path copies slots
	if v := c2.Get(0); v.Int() != 7 {
		t.Fatalf("Get(0) = %v after degrade, want 7", v)
	}
	if v := c2.Get(1); v.Str() != "mix" {
		t.Fatalf("Get(1) = %v after degrade, want mix", v)
	}
	for i := 2; i < 4; i++ {
		if v := c2.Get(i); v.Kind() == value.Str {
			t.Fatalf("slot %d resurrected string %q", i, v.Str())
		}
	}
	PutCol(c2)
}

// TestPutColDropsOversized verifies the retain cap: a column grown past
// poolMaxRetain is dropped (PutCol leaves it untouched rather than zeroing
// and pooling it), so one huge job cannot pin memory.
func TestPutColDropsOversized(t *testing.T) {
	big := GetCol(poolMaxRetain + 1)
	big.Set(0, value.NewInt(42))
	PutCol(big)
	// Dropped buffers are not released: the write is still visible, which
	// is how we can observe "PutCol declined this buffer" from outside.
	if v := big.Get(0); v.IsNull() || v.Int() != 42 {
		t.Errorf("oversized buffer was pooled (released), want dropped")
	}

	small := GetCol(8)
	small.Set(0, value.NewInt(42))
	PutCol(small)
	if small.Len() != 0 {
		t.Errorf("retained buffer was not released on PutCol")
	}
	// nil must be a no-op, not a panic.
	PutCol(nil)
}

// TestSelPoolRoundTrip pins the selection-vector pool: hinted capacity,
// empty on get, oversized vectors dropped.
func TestSelPoolRoundTrip(t *testing.T) {
	s := GetSel(100)
	if len(s) != 0 || cap(s) < 100 {
		t.Fatalf("GetSel(100): len=%d cap=%d", len(s), cap(s))
	}
	s = append(s, 1, 2, 3)
	PutSel(s)
	s2 := GetSel(10)
	if len(s2) != 0 {
		t.Fatalf("pooled sel not empty: len=%d", len(s2))
	}
	PutSel(s2)
	PutSel(make([]int32, 0, poolMaxRetain+1)) // dropped, no panic
}

// TestColPoolConcurrent hammers the column and selection pools from many
// goroutines; run under -race it proves Get/Set/Put never share state
// across concurrent holders and Release leaves no references behind.
func TestColPoolConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 200; it++ {
				n := 1 + (g+it)%64
				c := GetCol(n)
				sel := GetSel(n)
				// Fresh from the pool: every slot null (mode unset).
				for i := 0; i < n; i++ {
					if v := c.Get(i); !v.IsNull() {
						t.Errorf("goroutine %d: dirty slot %d on get: %v", g, i, v)
					}
				}
				// Mixed-kind writes exercise specialize then degrade while
				// other goroutines churn the same pools.
				for i := 0; i < n; i++ {
					switch i % 3 {
					case 0:
						c.Set(i, value.NewInt(int64(g*1000+i)))
					case 1:
						c.Set(i, value.NewFloat(float64(i)))
					default:
						c.Set(i, value.NewStr(fmt.Sprintf("g%d-%d", g, i)))
					}
					sel = append(sel, int32(i))
				}
				// Written slots read back exactly — no cross-holder sharing.
				for i := 0; i < n; i++ {
					v := c.Get(i)
					switch i % 3 {
					case 0:
						if v.Int() != int64(g*1000+i) {
							t.Errorf("goroutine %d: slot %d = %v", g, i, v)
						}
					case 1:
						if v.Float() != float64(i) {
							t.Errorf("goroutine %d: slot %d = %v", g, i, v)
						}
					default:
						if v.Str() != fmt.Sprintf("g%d-%d", g, i) {
							t.Errorf("goroutine %d: slot %d = %v", g, i, v)
						}
					}
				}
				PutSel(sel)
				PutCol(c)
			}
		}(g)
	}
	wg.Wait()
}

// batchEchoInput builds a store with one input relation of n (id, val) rows.
func batchEchoInput(st *storage.Store, n int) {
	rel := data.NewRelation(data.NewSchema("id", "val"))
	for i := 0; i < n; i++ {
		rel.Append(data.Row{value.NewInt(int64(i)), value.NewInt(int64(i * 2))})
	}
	st.Put("batch_in", storage.Base, rel)
}

// batchEchoJob is a map-only job wired both ways: a row-mode Map and a
// BatchMapFactory producing identical output. bail, when non-nil, tells the
// batch fn which splits (by ctx.Split) to refuse — those replay through the
// row path inside the batch fn and report Fallback, exactly the optimizer's
// runtime-bailout shape.
func batchEchoJob(bail func(split int) bool) *Job {
	schema := data.NewSchema("id", "doubled")
	rowMap := func(_ int, r data.Row, emit Emit) {
		emit("", data.Row{r[0], value.NewInt(r[1].Int() * 2)})
	}
	return &Job{
		Name:          "batch_echo",
		Inputs:        []string{"batch_in"},
		Map:           rowMap,
		FusedEligible: true,
		Fused:         true,
		BatchMapFactory: func(ctx TaskCtx) BatchMapFunc {
			return func(input int, rows []data.Row, emit Emit) BatchReport {
				if bail != nil && bail(ctx.Split) {
					for _, r := range rows {
						rowMap(input, r, emit)
					}
					return BatchReport{Fallback: true}
				}
				for _, r := range rows {
					emit("", data.Row{r[0], value.NewInt(r[1].Int() * 2)})
				}
				return BatchReport{Fused: true, Rows: int64(len(rows))}
			}
		},
		MapOutSchema: schema,
		OutputSchema: schema,
		Output:       "batch_out",
		OutputKind:   storage.View,
		MapCost:      []cost.LocalFn{{Ops: []cost.OpType{cost.OpAttr}, Scalar: 1}},
	}
}

// TestEnginePrefersBatchMapFactory proves the engine runs the batch path
// when a job carries one — every split through the kernel, output identical
// to the row path, volumes untouched, and the fused telemetry filled in.
func TestEnginePrefersBatchMapFactory(t *testing.T) {
	e, st := newEngine()
	e.Params.SplitRows = 64
	batchEchoInput(st, 300) // 5 splits of 64/64/64/64/44

	outB, resB, err := e.Run(batchEchoJob(nil))
	if err != nil {
		t.Fatal(err)
	}
	rowJob := batchEchoJob(nil)
	rowJob.BatchMapFactory = nil
	rowJob.Fused = false
	rowJob.FuseFallback = FuseUnsupportedOp
	rowJob.Output = "row_out"
	outR, resR, err := e.Run(rowJob)
	if err != nil {
		t.Fatal(err)
	}
	if outB.Fingerprint() != outR.Fingerprint() {
		t.Error("batch and row map paths disagree on output")
	}
	if resB.FusedBatches != 5 || resB.FusedRows != 300 {
		t.Errorf("FusedBatches=%d FusedRows=%d, want 5/300", resB.FusedBatches, resB.FusedRows)
	}
	if resB.FusedRuntimeFallbacks != 0 {
		t.Errorf("unexpected runtime fallbacks: %d", resB.FusedRuntimeFallbacks)
	}
	if !resB.FusedJob || !resB.FusedEligible {
		t.Errorf("fused flags not propagated: %+v", resB)
	}
	if resR.FusedBatches != 0 || resR.FusedJob {
		t.Errorf("row path reported fused work: %+v", resR)
	}
	if resB.InputRows != resR.InputRows || resB.OutputRows != resR.OutputRows {
		t.Errorf("volume accounting differs between paths: %+v vs %+v", resB, resR)
	}
}

// TestEngineCountsRuntimeFallbacks proves per-split bailouts are tallied
// without affecting output: splits that refuse the kernel replay as rows.
func TestEngineCountsRuntimeFallbacks(t *testing.T) {
	e, st := newEngine()
	e.Params.SplitRows = 64
	batchEchoInput(st, 300)
	reg := obs.NewRegistry()
	e.Obs = reg

	out, res, err := e.Run(batchEchoJob(func(split int) bool { return split == 2 }))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 300 {
		t.Errorf("rows = %d, want 300", out.Len())
	}
	if res.FusedRuntimeFallbacks != 1 {
		t.Errorf("FusedRuntimeFallbacks = %d, want 1", res.FusedRuntimeFallbacks)
	}
	if res.FusedBatches != 4 || res.FusedRows != 300-64 {
		t.Errorf("FusedBatches=%d FusedRows=%d, want 4/%d", res.FusedBatches, res.FusedRows, 300-64)
	}
	snap := reg.Snapshot()
	if snap.Counters["mr_fused_runtime_fallback_total"] != 1 {
		t.Errorf("mr_fused_runtime_fallback_total = %d, want 1",
			snap.Counters["mr_fused_runtime_fallback_total"])
	}
	if snap.Counters["mr_fused_jobs_total"] != 1 || snap.Counters["mr_fused_eligible_total"] != 1 {
		t.Errorf("fused job counters wrong: %v", snap.Counters)
	}
	if snap.Counters["mr_fused_batches_total"] != 4 || snap.Counters["mr_fused_rows_total"] != 300-64 {
		t.Errorf("fused batch counters wrong: %v", snap.Counters)
	}
	// The whole family is present even where it is zero, with the fixed
	// reason label set.
	for _, reason := range FuseFallbackReasons {
		key := "mr_fused_fallback_total{reason=" + reason + "}"
		if v, ok := snap.Counters[key]; !ok || v != 0 {
			t.Errorf("%s = %d (present=%v), want 0 and present", key, v, ok)
		}
	}
}
