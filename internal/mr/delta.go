package mr

import (
	"fmt"

	"opportune/internal/data"
)

// This file provides the merge primitives for incremental view maintenance:
// folding the output of a delta job (the view's pipeline run over only the
// appended base rows) into the stored view. Both entry points return a new
// relation — the stored input is never mutated, since concurrently running
// plans may hold a reference to it via Store.Read.

// MergeAppend merges a map-only view delta: appended base rows can only
// append output rows, in scan order, so the refreshed view is the stored
// rows followed by the delta rows — exactly what a full recompute over the
// grown base produces.
func MergeAppend(stored, delta *data.Relation) (*data.Relation, error) {
	if !stored.Schema().Equal(delta.Schema()) {
		return nil, fmt.Errorf("mr: merge-append schema mismatch: %v vs %v",
			stored.Schema(), delta.Schema())
	}
	out := data.NewRelation(stored.Schema())
	out.Grow(stored.Len() + delta.Len())
	out.AppendAll(stored)
	out.AppendAll(delta)
	return out, nil
}

// MergeByKey merges a grouped view delta. Both inputs must share a schema
// whose first nKeys columns are the grouping keys, with rows sorted by the
// encoded key (the order every reduce emits — see mergeRuns). Rows with
// matching keys are folded by merge(old, delta); unmatched rows pass
// through. The output preserves global key order, which is byte-identical
// to the row order a full recompute would emit.
func MergeByKey(stored, delta *data.Relation, nKeys int, merge func(old, delta data.Row) data.Row) (*data.Relation, error) {
	if !stored.Schema().Equal(delta.Schema()) {
		return nil, fmt.Errorf("mr: merge-by-key schema mismatch: %v vs %v",
			stored.Schema(), delta.Schema())
	}
	if nKeys <= 0 || nKeys > stored.Schema().Len() {
		return nil, fmt.Errorf("mr: merge-by-key nKeys %d out of range for %v",
			nKeys, stored.Schema())
	}
	keyIdxs := make([]int, nKeys)
	for i := range keyIdxs {
		keyIdxs[i] = i
	}
	out := data.NewRelation(stored.Schema())
	out.Grow(stored.Len() + delta.Len())

	na, nb := stored.Len(), delta.Len()
	var ea, eb data.KeyEncoder
	i, j := 0, 0
	var ka, kb string
	if i < na {
		ka = ea.Key(stored.Row(i), keyIdxs)
	}
	if j < nb {
		kb = eb.Key(delta.Row(j), keyIdxs)
	}
	for i < na && j < nb {
		switch {
		case ka < kb:
			out.Append(stored.Row(i))
			i++
			if i < na {
				ka = ea.Key(stored.Row(i), keyIdxs)
			}
		case ka > kb:
			out.Append(delta.Row(j))
			j++
			if j < nb {
				kb = eb.Key(delta.Row(j), keyIdxs)
			}
		default:
			out.Append(merge(stored.Row(i), delta.Row(j)))
			i++
			j++
			if i < na {
				ka = ea.Key(stored.Row(i), keyIdxs)
			}
			if j < nb {
				kb = eb.Key(delta.Row(j), keyIdxs)
			}
		}
	}
	for ; i < na; i++ {
		out.Append(stored.Row(i))
	}
	for ; j < nb; j++ {
		out.Append(delta.Row(j))
	}
	return out, nil
}
