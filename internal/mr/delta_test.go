package mr

import (
	"fmt"
	"testing"

	"opportune/internal/data"
	"opportune/internal/value"
)

func kvRel(pairs ...[2]int64) *data.Relation {
	r := data.NewRelation(data.NewSchema("k", "v"))
	for _, p := range pairs {
		r.Append(data.Row{value.NewInt(p[0]), value.NewInt(p[1])})
	}
	return r
}

func TestMergeAppend(t *testing.T) {
	stored := kvRel([2]int64{1, 10}, [2]int64{2, 20})
	delta := kvRel([2]int64{3, 30})
	out, err := MergeAppend(stored, delta)
	if err != nil {
		t.Fatal(err)
	}
	want := kvRel([2]int64{1, 10}, [2]int64{2, 20}, [2]int64{3, 30})
	if out.Fingerprint() != want.Fingerprint() {
		t.Error("merged relation differs from stored++delta")
	}
	if stored.Len() != 2 {
		t.Error("stored input mutated")
	}
	// schema mismatch
	bad := data.NewRelation(data.NewSchema("x"))
	if _, err := MergeAppend(stored, bad); err == nil {
		t.Error("schema mismatch accepted")
	}
}

func TestMergeByKey(t *testing.T) {
	sum := func(old, delta data.Row) data.Row {
		out := old.Clone()
		out[1] = value.NewInt(old[1].Int() + delta[1].Int())
		return out
	}
	// interleaved keys: 1,3,5 stored; 2,3,6 delta → 3 folds, rest pass through
	var enc data.KeyEncoder
	mk := func(ks ...int64) *data.Relation {
		r := data.NewRelation(data.NewSchema("k", "v"))
		for _, k := range ks {
			r.Append(data.Row{value.NewInt(k), value.NewInt(k * 100)})
		}
		return r
	}
	stored, delta := mk(1, 3, 5), mk(2, 3, 6)
	out, err := MergeByKey(stored, delta, 1, sum)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 5 {
		t.Fatalf("len = %d, want 5", out.Len())
	}
	wantVals := map[int64]int64{1: 100, 2: 200, 3: 600, 5: 500, 6: 600}
	prev := ""
	for _, row := range out.Rows() {
		k, v := row[0].Int(), row[1].Int()
		if wantVals[k] != v {
			t.Errorf("key %d: v = %d, want %d", k, v, wantVals[k])
		}
		key := enc.Key(row, []int{0})
		if key < prev {
			t.Errorf("output not in global encoded-key order at key %d", k)
		}
		prev = key
	}
	if stored.Row(1)[1].Int() != 300 {
		t.Error("stored input mutated by merge")
	}

	// empty delta and empty stored both degenerate to a copy
	for _, c := range [][2]*data.Relation{{stored, mk()}, {mk(), delta}} {
		out, err := MergeByKey(c[0], c[1], 1, sum)
		if err != nil {
			t.Fatal(err)
		}
		if out.Len() != c[0].Len()+c[1].Len() {
			t.Errorf("degenerate merge len = %d", out.Len())
		}
	}

	// errors
	if _, err := MergeByKey(stored, data.NewRelation(data.NewSchema("x")), 1, sum); err == nil {
		t.Error("schema mismatch accepted")
	}
	if _, err := MergeByKey(stored, delta, 0, sum); err == nil {
		t.Error("nKeys=0 accepted")
	}
	if _, err := MergeByKey(stored, delta, 3, sum); err == nil {
		t.Error("nKeys beyond schema accepted")
	}
}

func BenchmarkMergeByKey(b *testing.B) {
	const n = 10000
	stored := data.NewRelation(data.NewSchema("k", "v"))
	for i := 0; i < n; i++ {
		stored.Append(data.Row{value.NewStr(fmt.Sprintf("user-%06d", i)), value.NewInt(int64(i))})
	}
	delta := data.NewRelation(data.NewSchema("k", "v"))
	for i := 0; i < n; i += 10 { // 10% of groups touched
		delta.Append(data.Row{value.NewStr(fmt.Sprintf("user-%06d", i)), value.NewInt(1)})
	}
	sum := func(old, d data.Row) data.Row {
		out := old.Clone()
		out[1] = value.NewInt(old[1].Int() + d[1].Int())
		return out
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MergeByKey(stored, delta, 1, sum); err != nil {
			b.Fatal(err)
		}
	}
}
