package mr

import (
	"reflect"
	"testing"

	"opportune/internal/cost"
	"opportune/internal/fault"
	"opportune/internal/obs"
)

// groupChaosPlan scripts one of every fault kind against the grouping job:
// panics, corruption, and a straggler on the map side; panics and a
// straggler on reduce virtual shards (500 group keys over 64 shards, so
// every shard is populated); one failed read of the input dataset. All
// budgets are survivable (fail_attempts under the task retry budget of 4,
// the read error under the job retry budget), so the run must recover.
func groupChaosPlan() *fault.Plan {
	return &fault.Plan{Seed: 2026, Faults: []fault.Fault{
		{Phase: fault.PhaseMap, Task: 0, Kind: fault.KindPanic, FailAttempts: 2},
		{Phase: fault.PhaseMap, Task: 1, Kind: fault.KindCorrupt, FailAttempts: 1},
		{Phase: fault.PhaseMap, Task: 2, Kind: fault.KindStraggler, Factor: 6},
		{Phase: fault.PhaseReduce, Task: 11, Kind: fault.KindPanic, FailAttempts: 1},
		{Phase: fault.PhaseReduce, Task: 29, Kind: fault.KindStraggler, Factor: 5},
		{Phase: fault.PhaseReduce, Task: 47, Kind: fault.KindPanic, FailAttempts: 2},
		{Kind: fault.KindReadError, Dataset: "bench_in", FailReads: 1},
	}}
}

// groupOutcome is everything the engine-level differential contract covers:
// the output relation (fingerprint plus the raw rows, for byte-identity)
// and the full obs counter maps, which include every sim-second total.
type groupOutcome struct {
	fp   uint64
	rows int
	snap obs.Snapshot
	rel  [][]string
}

// runGroupJob executes the shuffle/group benchmark job — the path that
// exercises the pooled per-partition grouper and the k-way reduce-output
// merge — at the given parallelism, optionally under the fault plan.
func runGroupJob(t *testing.T, plan *fault.Plan, workers, reduceTasks int) groupOutcome {
	t.Helper()
	const rows, groups = 6000, 500
	st, schema := benchInput(rows, groups)
	params := cost.DefaultParams()
	params.SplitRows = 1024 // six map tasks, so the map-side faults all land
	params.ReduceTasks = reduceTasks
	e := New(st, params)
	e.Workers = workers
	e.MaxAttempts = 3
	reg := obs.NewRegistry()
	e.Obs = reg
	st.SetObs(reg)
	if plan != nil {
		if err := plan.Validate(); err != nil {
			t.Fatal(err)
		}
		e.Faults = fault.NewInjector(plan)
		st.SetFaults(e.Faults)
	}
	rel, _, err := e.Run(benchGroupJob(schema, rows, groups))
	if err != nil {
		t.Fatalf("workers=%d R=%d: %v", workers, reduceTasks, err)
	}
	// Snapshot before touching the relation so inspection cannot perturb
	// the storage counters being compared.
	snap := reg.Snapshot()
	out := groupOutcome{fp: rel.Fingerprint(), rows: len(rel.Rows()), snap: snap}
	for _, r := range rel.Rows() {
		enc := make([]string, len(r))
		for i, v := range r {
			enc[i] = v.String()
		}
		out.rel = append(out.rel, enc)
	}
	return out
}

// TestShuffleGroupDifferential is the data-plane differential oracle for
// the allocation-lean hot path: the k-way merge and the pooled grouping
// must produce byte-identical relations and identical obs counter maps at
// every Workers ∈ {1,4,8} × ReduceTasks ∈ {1,3} point — against the serial
// W=1,R=1 run, both fault-free and under the chaos plan.
func TestShuffleGroupDifferential(t *testing.T) {
	grid := []struct{ w, r int }{{1, 1}, {1, 3}, {4, 1}, {4, 3}, {8, 1}, {8, 3}}
	for _, tc := range []struct {
		name string
		plan *fault.Plan
	}{
		{name: "fault-free", plan: nil},
		{name: "chaos", plan: groupChaosPlan()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ref := runGroupJob(t, tc.plan, 1, 1)
			if ref.rows == 0 {
				t.Fatal("reference run produced no rows")
			}
			if tc.plan != nil {
				// The plan actually fired: recovery was exercised.
				if ref.snap.Counters["mr_task_retries_total"] == 0 {
					t.Error("chaos plan injected no task retries")
				}
			}
			for _, g := range grid[1:] {
				got := runGroupJob(t, tc.plan, g.w, g.r)
				if got.fp != ref.fp || got.rows != ref.rows {
					t.Errorf("W=%d R=%d: relation fingerprint %d (%d rows), want %d (%d rows)",
						g.w, g.r, got.fp, got.rows, ref.fp, ref.rows)
				}
				if !reflect.DeepEqual(got.rel, ref.rel) {
					t.Errorf("W=%d R=%d: relation rows differ from serial run", g.w, g.r)
				}
				if !reflect.DeepEqual(got.snap.Counters, ref.snap.Counters) {
					t.Errorf("W=%d R=%d: counters differ\n got %v\nwant %v",
						g.w, g.r, got.snap.Counters, ref.snap.Counters)
				}
				if !reflect.DeepEqual(got.snap.FloatCounters, ref.snap.FloatCounters) {
					t.Errorf("W=%d R=%d: float counters (sim seconds) differ\n got %v\nwant %v",
						g.w, g.r, got.snap.FloatCounters, ref.snap.FloatCounters)
				}
			}
		})
	}
	// The chaos run converges to the fault-free rows as well: recovery is
	// invisible in the output.
	clean := runGroupJob(t, nil, 1, 1)
	chaos := runGroupJob(t, groupChaosPlan(), 1, 1)
	if clean.fp != chaos.fp {
		t.Errorf("chaos output fingerprint %d differs from fault-free %d", chaos.fp, clean.fp)
	}
}
