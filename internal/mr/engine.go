// Package mr is the MapReduce execution engine: it really executes map,
// shuffle, and reduce phases over rows stored in the simulated HDFS,
// materializes every job output (the opportunistic views), and accounts
// data volumes exactly.
//
// Execution time is *simulated*: the engine feeds the measured volumes into
// the same cost.Params the optimizer estimates with, yielding deterministic
// per-job seconds. This substitutes for the paper's 20-node Hadoop cluster
// (see DESIGN.md, Substitutions) while preserving what the evaluation
// measures — relative execution time and bytes read/shuffled/written.
package mr

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"opportune/internal/cost"
	"opportune/internal/data"
	"opportune/internal/fault"
	"opportune/internal/obs"
	"opportune/internal/storage"
)

// Emit passes one keyed row from a map task to the shuffle. For map-only
// jobs the key is ignored.
type Emit func(key string, r data.Row)

// MapFunc processes one input row. input is the index into Job.Inputs,
// letting joins tag which side a row came from (MR joins are a co-group of
// multiple relations on a common key, §3.2). Map tasks run concurrently, so
// a MapFunc shared across tasks (Job.Map) must be safe for concurrent
// calls; per-task state belongs in a Job.MapFactory closure instead.
type MapFunc func(input int, r data.Row, emit Emit)

// BatchMapFunc processes one whole map split at once — the fused columnar
// path. input is the index into Job.Inputs; rows is the split, read-only.
// The report says whether the batch actually ran fused or fell back to the
// row interpreter at runtime. Emission-order and content must be identical
// to calling the job's MapFunc row by row: the engine relies on that to
// keep batch execution invisible to shuffle, accounting, and retries.
type BatchMapFunc func(input int, rows []data.Row, emit Emit) BatchReport

// BatchReport is one batch map task's execution report.
type BatchReport struct {
	// Fused is true when the whole split ran the fused columnar kernel.
	Fused bool
	// Rows is the number of input rows the fused kernel processed.
	Rows int64
	// Fallback is true when the kernel bailed out mid-batch (e.g. a UDF
	// declared single-output emitted several rows) and the split was
	// replayed through the row-at-a-time interpreter instead.
	Fallback bool
	// Combined is true when the batch kernel fused across the shuffle
	// boundary: its emissions are already combined per key (one record per
	// group in first-seen order), so the engine must not run the job's
	// combiner over them again. CombineRows then carries the pre-combine
	// row count — what Result.CombineRows would have tallied had the
	// combiner run row-at-a-time — keeping combine accounting identical
	// between fused and interpreted executions.
	Combined    bool
	CombineRows int64
}

// Fusion fallback reasons, the label taxonomy of the
// mr_fused_fallback_total counter. Every eligible-but-not-fused job carries
// exactly one of these.
const (
	// FuseDisabled: fusion turned off by the optimizer knob.
	FuseDisabled = "disabled"
	// FuseExplodeUDF: a chain contains an exploding map UDF (multi-row
	// output with per-row tags; inherently row-oriented).
	FuseExplodeUDF = "explode_udf"
	// FuseUnsupportedOp: a chain contains an operator or predicate shape
	// the fused compiler does not handle.
	FuseUnsupportedOp = "unsupported_op"
	// FuseSchemaMismatch: column resolution disagreed with the annotated
	// output schema; the interpreter is the safe path.
	FuseSchemaMismatch = "schema_mismatch"
	// FuseNondistributiveAgg: a grouped aggregation whose aggregate set is
	// not distributive over fixed-width partial state (reduce-side fusion
	// only).
	FuseNondistributiveAgg = "nondistributive_agg"
	// FuseAggUDF: the reducer is an aggregate UDF running opaque user code
	// over raw payload rows — no typed partial state to specialize on
	// (reduce-side fusion only).
	FuseAggUDF = "agg_udf"
)

// FuseFallbackReasons enumerates the taxonomy in recording order, so the
// counter family's key set is fixed regardless of which reasons fire.
var FuseFallbackReasons = []string{FuseDisabled, FuseExplodeUDF, FuseUnsupportedOp, FuseSchemaMismatch}

// FuseReduceFallbackReasons is the mr_fused_reduce_fallback_total label
// taxonomy, fixed in recording order like FuseFallbackReasons.
var FuseReduceFallbackReasons = []string{FuseDisabled, FuseNondistributiveAgg, FuseAggUDF, FuseUnsupportedOp, FuseSchemaMismatch}

// TaskCtx identifies one map task (one input split) deterministically:
// which input it reads, the split ordinal within that input, the ordinal of
// the split's first row within that input, and the ordinal of that row
// counting across all inputs in input order. Map factories seed per-task
// state from it (e.g. unique row tags) so task-local state never depends on
// goroutine scheduling.
type TaskCtx struct {
	Input     int
	Split     int
	StartRow  int64
	GlobalRow int64
}

// ReduceFunc processes one shuffle group.
type ReduceFunc func(key string, rows []data.Row, emit func(data.Row))

// Job is one MR job: map over the inputs, optional shuffle+reduce, output
// materialized to the store.
type Job struct {
	Name   string
	Inputs []string // dataset names read from the store

	Map MapFunc
	// MapFactory, when set, builds a fresh MapFunc per map task and takes
	// precedence over Map. It is the hook for map-side state that must be
	// task-local (race-free) yet schedule-independent: the factory derives
	// any counters or tags from the TaskCtx.
	MapFactory   func(ctx TaskCtx) MapFunc
	MapOutSchema *data.Schema // schema of rows emitted by Map

	// BatchMapFactory, when set, builds a per-task batch map function the
	// engine prefers over the row-at-a-time Map/MapFactory: the task's
	// whole split is handed to it at once (the fused columnar path). The
	// row path must still be provided — it is the fallback contract — and
	// both must produce identical emissions.
	BatchMapFactory func(ctx TaskCtx) BatchMapFunc

	// Fusion classification, stamped by the optimizer. FusedEligible marks
	// a job with at least one fusable-shaped operator chain; Fused marks
	// one whose chains all compiled into fused kernels (BatchMapFactory
	// set); FuseFallback carries the first fallback reason (one of the
	// Fuse* constants) when eligible but not fused. Purely observational:
	// the engine publishes them, never branches on them.
	FusedEligible bool
	Fused         bool
	FuseFallback  string

	// Reduce-side fusion classification, the mirror taxonomy for the
	// combiner/reducer: FusedReduceEligible marks any reduce job,
	// FusedReduce one whose combine and reduce phases compiled into
	// columnar agg kernels (BatchCombine/BatchReduce set), and
	// FusedReduceFallback the single reason when eligible but not fused.
	// FusedCrossBoundary additionally marks a partition-local job whose
	// map kernel was fused *through* the (local) shuffle boundary into the
	// combine fold. Observational, like the map-side trio.
	FusedReduceEligible bool
	FusedReduce         bool
	FusedReduceFallback string
	FusedCrossBoundary  bool

	// Combine, when set on a reduce job, runs map-side per split: rows a
	// split emitted under one key are merged before the shuffle (the
	// classic MR combiner). It must be algebraic: Reduce over combined
	// partials must equal Reduce over the raw rows.
	Combine ReduceFunc

	// BatchCombine, when set alongside Combine, is the fused combiner: it
	// replaces the grouper + row-at-a-time Combine fold over one map task's
	// emissions. It appends the combined records to scratch (grouped per
	// key in first-emission order — the grouper's order) and returns them
	// with the pre-combine row count. ok=false means a record violated the
	// kernel's layout contract: the kernel must not have touched the task
	// output, scratch comes back (possibly dirtied) for pooling, and the
	// engine replays the task's combine through the interpreter.
	BatchCombine func(in, scratch []Keyed) (combined []Keyed, combineRows int64, ok bool)

	// BatchReduce, when set on a reduce job, is the fused reduce kernel: it
	// folds one whole reduce partition (records in partition scan order)
	// and emits finalized rows with keys in ascending order — the order the
	// grouper's sortKeys pass would reduce them in — sealing one group per
	// distinct emitted key. false means a record violated the kernel's
	// layout contract before anything was emitted; the engine then replays
	// the partition through the grouper + Reduce interpreter. The engine
	// bypasses BatchReduce entirely under an injected fault plan: scripted
	// reduce faults address per-key groups, which a whole-partition kernel
	// cannot replay at that granularity.
	BatchReduce func(recs []Keyed, emit Emit) bool

	Reduce       ReduceFunc   // nil for a map-only job
	OutputSchema *data.Schema // schema of the materialized output

	Output     string       // dataset name to materialize as
	OutputKind storage.Kind // normally storage.View

	// Costing metadata: local-function descriptors for the simulated CPU
	// time of this job's map, combine, and reduce sides.
	MapCost     []cost.LocalFn
	CombineCost []cost.LocalFn
	ReduceCost  []cost.LocalFn

	// EstShuffleRows, EstGroups, and EstOutputRows are optimizer cardinality
	// hints (zero when unknown) used only to pre-size in-memory buffers on
	// the hot path: shuffle partitions, group tables, and the output
	// relation. They never affect results, accounting, or simulated seconds
	// — a wildly wrong estimate costs a reallocation, not correctness.
	EstShuffleRows int64
	EstGroups      int64
	EstOutputRows  int64

	// PartitionKeyCols and PartitionParts declare the inputs' physical
	// layout: the rows this job shuffles are already hash-distributed over
	// PartitionParts buckets by the encoded prefix of the first
	// PartitionKeyCols shuffle-key columns. When both are set on a reduce
	// job the engine takes the partition-preserving path: each record
	// routes by its layout bucket, so co-located rows reach their reducer
	// without crossing the network and their bytes count as eliminated
	// (only the transfer term Ct changes — sorting, grouping, output, and
	// every other counter are identical to a full shuffle; the differential
	// oracle suite proves it).
	PartitionKeyCols int
	PartitionParts   int

	// OutputPartSigs and OutputPartParts declare the layout of the bytes
	// this job writes (reducers hash-bucket their output by these key
	// signatures): after materializing, the engine installs the property on
	// the store so downstream jobs can match it. Empty means the output
	// makes no layout promise.
	OutputPartSigs  []string
	OutputPartParts int
}

// partitionLocal reports whether the partition-preserving shuffle path
// applies to this job.
func (j *Job) partitionLocal() bool {
	return j.Reduce != nil && j.PartitionKeyCols > 0 && j.PartitionParts > 0
}

// Result reports the measured volumes and simulated time of one job run.
// InputBytes..OutputRows cover the successful attempt only; the volumes
// failed attempts consumed before dying are accounted separately in
// RetriedInputBytes/RetriedShuffleBytes (failed attempts never write), and
// their simulated time in WastedSeconds, so
// Breakdown.Total() + WastedSeconds == SimSeconds always holds and
// engine-side reads reconcile with storage.Store counters:
// Store.BytesRead == Σ(InputBytes + RetriedInputBytes) absent samples.
type Result struct {
	Job          string
	InputBytes   int64
	InputRows    int64
	CombineRows  int64 // rows fed to map-side combiners
	Attempts     int   // execution attempts (>1 after recovered failures)
	ShuffleBytes int64
	ShuffleRows  int64
	OutputBytes  int64
	OutputRows   int64

	// LocalShuffleBytes is the co-located portion of ShuffleBytes under the
	// partition-preserving path — the "shuffle bytes eliminated" metric.
	// KeyedJob marks a job that shuffled at all; PartitionLocal marks one
	// that ran the partition-preserving path (a layout hit).
	LocalShuffleBytes int64
	KeyedJob          bool
	PartitionLocal    bool

	// Fusion observability (wall-clock-only: none of these feed simulated
	// seconds or volumes). FusedEligible/FusedJob/FuseFallbackReason echo
	// the job's classification; FusedBatches/FusedRows count map splits
	// (and their rows) that completed on the fused columnar kernel, and
	// FusedRuntimeFallbacks counts splits that bailed out mid-batch and
	// were replayed through the row interpreter. Folded in split order, so
	// the tallies are Workers-independent.
	FusedEligible         bool
	FusedJob              bool
	FuseFallbackReason    string
	FusedBatches          int64
	FusedRows             int64
	FusedRuntimeFallbacks int64

	// Reduce-side fusion observability, same wall-clock-only contract.
	// FusedCombineBatches counts map tasks whose combine ran a fused fold
	// (kernel combiner or cross-boundary map kernel); FusedReduceGroups and
	// FusedReduceRows count key groups finalized and records folded by the
	// fused reduce kernels; FusedReduceRuntimeFallbacks counts map-task
	// combines and reduce partitions that hit the kernels' layout bailout
	// and were replayed through the interpreter. All folded in split /
	// partition order over disjoint data, so the tallies are independent of
	// Workers and ReduceTasks.
	FusedReduceEligible         bool
	FusedReduceJob              bool
	FusedReduceFallbackReason   string
	FusedCrossBoundary          bool
	FusedCombineBatches         int64
	FusedReduceGroups           int64
	FusedReduceRows             int64
	FusedReduceRuntimeFallbacks int64

	// RetriedInputBytes and RetriedShuffleBytes are the volumes read and
	// shuffled by failed attempts that were recovered from (zero when the
	// job succeeded first try).
	RetriedInputBytes   int64
	RetriedShuffleBytes int64

	// Task-level recovery tallies (zero without an injected fault plan).
	// TaskRetries counts task/group attempts that died and were re-run in
	// place; Straggler/Speculative tasks count scripted slowdowns and the
	// speculative copies raced against them (SpeculativeWins: races the
	// copy won). Task retries re-execute from in-memory splits, so they
	// move no extra bytes — their cost is pure simulated time, itemized in
	// Faults.
	TaskRetries      int
	StragglerTasks   int
	SpeculativeTasks int
	SpeculativeWins  int
	Faults           FaultWaste

	// RecoveredError is the message of the last failure this run recovered
	// from (task-level or whole-job), "" for a clean run. Chaos tests
	// assert on it to prove *which* injected fault fired.
	RecoveredError string

	// Breakdown prices the successful attempt; WastedSeconds is the
	// simulated time of recovered-from failed attempts plus all task-level
	// fault waste (Faults.Total()); SimSeconds is their sum. After an
	// unrecovered failure Breakdown is zero and SimSeconds covers only the
	// earlier failed attempts (the final attempt's partial volumes stay in
	// InputBytes etc. for the caller to inspect); a deadline abort
	// additionally charges the aborted attempt's partial work, so the
	// degraded result still prices everything that ran.
	Breakdown     cost.Breakdown
	WastedSeconds float64
	SimSeconds    float64
}

// DataMovedBytes is the paper's "data manipulated" metric (Fig 8b): bytes
// read from HDFS + moved across the network + written to HDFS.
func (r Result) DataMovedBytes() int64 {
	return r.InputBytes + r.ShuffleBytes + r.OutputBytes
}

// Engine executes jobs against a store. Map and reduce tasks of one job
// run concurrently on a worker pool; the simulated seconds still model the
// cluster's aggregate work from the same cost.Params the optimizer uses,
// so local parallelism changes wall-clock time, never accounting.
type Engine struct {
	Store  *storage.Store
	Params cost.Params

	// Workers sizes the worker pool map splits and reduce partitions run
	// on; 0 (the default) means runtime.GOMAXPROCS(0). Output rows and
	// Result volumes are identical for every Workers value.
	Workers int

	// MaxAttempts retries a job whose user code panicked (flaky UDFs are a
	// fact of life in MR clusters). Every attempt restarts from the job's
	// durable inputs — the very materializations the paper repurposes as
	// opportunistic views exist to make this recovery possible. Failed
	// attempts' simulated time is charged to the final result. Values < 2
	// mean no retry.
	MaxAttempts int

	// Obs, when set, receives per-job metrics (volume/attempt/wasted-work
	// counters, wall-clock histograms) and per-attempt phase spans
	// (split/map/combine/shuffle/reduce/materialize with wall-clock and
	// simulated seconds). Nil disables instrumentation at the cost of one
	// pointer check per event.
	Obs *obs.Registry

	// Faults, when set, scripts deterministic fault injection
	// (internal/fault): task panics, corrupted task outputs, stragglers,
	// and — via the store — read errors. Injected task failures recover at
	// task granularity (retry with simulated backoff, speculation);
	// genuine user-code panics keep the job-level MaxAttempts path.
	Faults *fault.Injector

	// TaskMaxAttempts bounds per-task retries of injected failures before
	// the failure escalates to the job level; <=0 means 4 (Hadoop's
	// mapred.map.max.attempts default).
	TaskMaxAttempts int

	// DisableSpeculation turns off speculative re-execution of straggling
	// tasks (stragglers then just run slow, like Hadoop with
	// mapred.*.tasks.speculative.execution=false).
	DisableSpeculation bool

	// DeadlineSimSeconds, when >0, aborts a job once its accrued simulated
	// seconds (prior attempts' waste + fault waste + completed phase time)
	// exceed the budget, returning an error wrapping ErrDeadlineExceeded
	// with the partial accounting in Result — graceful degradation instead
	// of unbounded retry under a hostile fault plan. Checked at phase
	// boundaries, which are parallelism-independent points.
	DeadlineSimSeconds float64
}

// workers resolves the worker-pool size.
func (e *Engine) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// reduceTasks resolves R, the number of shuffle partitions reduced
// concurrently. Partitioning never affects output or accounting (partition
// outputs are re-merged in global key order), only wall-clock parallelism.
func (e *Engine) reduceTasks() int {
	if r := e.Params.ReduceTasks; r > 0 {
		return r
	}
	return e.workers()
}

// New creates an engine over a store with the given cost parameters.
func New(store *storage.Store, params cost.Params) *Engine {
	return &Engine{Store: store, Params: params}
}

// Run executes one job: reads inputs, maps, shuffles (if reducing),
// reduces, and materializes the output. The output relation is returned
// along with measured volumes and simulated seconds. Panics in user code
// (map/combine/reduce local functions) fail the attempt; the job restarts
// from its durable inputs up to MaxAttempts times, with failed attempts'
// simulated time charged to the result.
func (e *Engine) Run(job *Job) (*data.Relation, *Result, error) {
	var start time.Time
	if e.Obs != nil {
		start = time.Now()
	}
	root := e.Obs.StartSpan(job.Name, "job")
	rel, res, err := e.retryLoop(job, root, retryState{}, func(res *Result, sp *obs.Span, prior float64) (*data.Relation, error) {
		return e.runAttempt(job, res, sp, prior)
	})
	root.AddSim(res.SimSeconds)
	root.End()
	e.record(res, err, start)
	return rel, res, err
}

// retryState seeds the job-level retry loop with recovery accounting that
// already happened before the loop started. RunSharedScan uses it to charge
// a shared split phase's read retries to the primary consumer exactly as a
// standalone Run would have.
type retryState struct {
	// attemptsUsed is how many failed attempts were already consumed; the
	// loop's first attempt is numbered attemptsUsed+1 and the MaxAttempts
	// budget covers the total.
	attemptsUsed int
	wasted       float64 // simulated seconds of those failed attempts
	retriedIn    int64
	recovered    string
}

// retryLoop is the job-level retry engine behind Run: it executes attempts
// via exec until one succeeds (or the budget/deadline is exhausted) and
// folds failed attempts' partial work into the final Result. Keeping this
// in one place is what guarantees a shared-scan consumer's accounting is
// bit-identical to a standalone run — both paths price retries here.
func (e *Engine) retryLoop(job *Job, root *obs.Span, st retryState, exec func(res *Result, sp *obs.Span, prior float64) (*data.Relation, error)) (*data.Relation, *Result, error) {
	attempts := e.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	wasted := st.wasted
	retriedIn, retriedShuf := st.retriedIn, int64(0)
	var fw FaultWaste
	recovered := st.recovered
	var taskRetries, stragglers, specs, specWins int
	for attempt := st.attemptsUsed + 1; ; attempt++ {
		res := &Result{Job: job.Name}
		asp := root.Child("attempt")
		rel, err := exec(res, asp, wasted+fw.Total())
		deadlined := err != nil && errors.Is(err, ErrDeadlineExceeded)
		var attemptCost float64
		if err != nil {
			// Price everything the failed attempt read, computed, and
			// moved before dying: a panic in reduce wastes the full map
			// and shuffle work, not just the map-side read (the partial
			// volumes in res stop at the phase that panicked).
			attemptCost = e.PartialCost(job, res)
		}
		if err != nil && !deadlined && attempt < attempts {
			asp.AddSim(attemptCost + res.Faults.Total())
			asp.End()
			wasted += attemptCost
			retriedIn += res.InputBytes
			retriedShuf += res.ShuffleBytes
			fw = fw.add(res.Faults)
			taskRetries += res.TaskRetries
			stragglers += res.StragglerTasks
			specs += res.SpeculativeTasks
			specWins += res.SpeculativeWins
			recovered = err.Error()
			continue
		}
		if deadlined {
			// Graceful degradation: the aborted attempt's partial work is
			// charged (unlike an exhausted-retries failure, where the
			// final attempt stays unpriced), so the degraded Result prices
			// everything that ran before the deadline tripped.
			wasted += attemptCost
			asp.AddSim(attemptCost + res.Faults.Total())
		} else {
			asp.AddSim(res.Breakdown.Total() + res.Faults.Total())
		}
		asp.End()
		res.Attempts = attempt
		res.Faults = fw.add(res.Faults)
		res.TaskRetries += taskRetries
		res.StragglerTasks += stragglers
		res.SpeculativeTasks += specs
		res.SpeculativeWins += specWins
		if res.RecoveredError == "" {
			res.RecoveredError = recovered
		}
		res.WastedSeconds = wasted + res.Faults.Total()
		res.RetriedInputBytes = retriedIn
		res.RetriedShuffleBytes = retriedShuf
		res.SimSeconds = res.Breakdown.Total() + res.WastedSeconds
		return rel, res, err
	}
}

// PartialCost prices the volumes one dead attempt consumed before failing —
// the same charge Run puts into WastedSeconds per recovered failure. The
// session's batch executor uses it to replay sequential-equivalent retry
// accounting for jobs it did not physically re-execute.
func (e *Engine) PartialCost(job *Job, res *Result) float64 {
	return e.Params.JobCost(cost.JobSpec{
		InputBytes:        res.InputBytes,
		InputRows:         res.InputRows,
		MapFns:            job.MapCost,
		CombineFns:        job.CombineCost,
		CombineRows:       res.CombineRows,
		ShuffleBytes:      res.ShuffleBytes,
		ShuffleRows:       res.ShuffleRows,
		LocalShuffleBytes: res.LocalShuffleBytes,
		ReduceFns:         job.ReduceCost,
		OutputBytes:       res.OutputBytes,
	}).Total()
}

// runAttempt is one execution attempt; user-code panics become errors (the
// partial volume accounting in res survives for wasted-time charging).
// prior is the simulated waste carried from earlier failed attempts, needed
// by the deadline checks inside execute.
func (e *Engine) runAttempt(job *Job, res *Result, sp *obs.Span, prior float64) (rel *data.Relation, err error) {
	defer func() {
		if r := recover(); r != nil {
			rel = nil
			err = fmt.Errorf("mr: job %q failed: %v", job.Name, r)
		}
	}()
	return e.execute(job, res, sp, prior)
}

// fnsSim is the simulated CPU seconds of local functions over rows — the
// per-phase decomposition of what JobCost folds into Cm/Cr. It delegates to
// cost.Params.FnsSeconds so fused and interpreted execution share one
// accumulation order (bit-identical float counters across the two paths).
func (e *Engine) fnsSim(fns []cost.LocalFn, rows int64) float64 {
	return e.Params.FnsSeconds(fns, rows)
}

// record publishes one finished job's counters to the metrics registry.
func (e *Engine) record(res *Result, err error, start time.Time) {
	if e.Obs == nil {
		return
	}
	e.RecordJob(res, err, time.Since(start).Seconds())
}

// RecordJob publishes one finished job's counters to the metrics registry.
// Counter values are deterministic (volumes, simulated seconds, attempt
// counts); real wall-clock (wallSeconds) goes only into the histogram. It
// is exported for the session's batch executor, which detaches Obs during
// parallel execution and replays job records afterwards in sequential job
// order, keeping float-counter summation order — and therefore every byte
// of the snapshot — identical to one-query-at-a-time execution.
func (e *Engine) RecordJob(res *Result, err error, wallSeconds float64) {
	reg := e.Obs
	if reg == nil {
		return
	}
	reg.Counter("mr_jobs_total").Inc()
	if err != nil {
		reg.Counter("mr_job_failures_total").Inc()
	}
	reg.Counter("mr_attempts_total").Add(int64(res.Attempts))
	reg.Counter("mr_retries_total").Add(int64(res.Attempts - 1))
	reg.Counter("mr_input_bytes_total").Add(res.InputBytes)
	reg.Counter("mr_input_rows_total").Add(res.InputRows)
	reg.Counter("mr_combine_rows_total").Add(res.CombineRows)
	reg.Counter("mr_shuffle_bytes_total").Add(res.ShuffleBytes)
	reg.Counter("mr_shuffle_rows_total").Add(res.ShuffleRows)
	reg.Counter("mr_output_bytes_total").Add(res.OutputBytes)
	reg.Counter("mr_output_rows_total").Add(res.OutputRows)
	reg.Counter("mr_retried_input_bytes_total").Add(res.RetriedInputBytes)
	reg.Counter("mr_retried_shuffle_bytes_total").Add(res.RetriedShuffleBytes)
	// Partition-layout family, recorded unconditionally (zeros included)
	// like the fault counters so snapshot key sets never depend on whether
	// a layout matched. Per job, hits + misses == keyed jobs and eliminated
	// bytes ≤ shuffled bytes by construction; cmd/metricscheck enforces the
	// summed invariants on every export.
	keyed, localJobs := int64(0), int64(0)
	if res.KeyedJob {
		keyed = 1
		if res.PartitionLocal {
			localJobs = 1
		}
	}
	reg.Counter("mr_keyed_jobs_total").Add(keyed)
	reg.Counter("mr_partition_local_jobs_total").Add(localJobs)
	reg.Counter("mr_partition_shuffle_jobs_total").Add(keyed - localJobs)
	reg.Counter("mr_shuffle_bytes_eliminated_total").Add(res.LocalShuffleBytes)
	// Fusion family, recorded unconditionally (zeros included) with a fixed
	// reason-label set so snapshot keys never depend on what fused. Per
	// job, eligible == fused + Σ fallback{reason}; cmd/metricscheck
	// enforces the summed balance on every export.
	elig, fusedJobs := int64(0), int64(0)
	if res.FusedEligible {
		elig = 1
		if res.FusedJob {
			fusedJobs = 1
		}
	}
	reg.Counter("mr_fused_eligible_total").Add(elig)
	reg.Counter("mr_fused_jobs_total").Add(fusedJobs)
	for _, reason := range FuseFallbackReasons {
		v := int64(0)
		if elig == 1 && fusedJobs == 0 && res.FuseFallbackReason == reason {
			v = 1
		}
		reg.Counter("mr_fused_fallback_total", "reason", reason).Add(v)
	}
	reg.Counter("mr_fused_batches_total").Add(res.FusedBatches)
	reg.Counter("mr_fused_rows_total").Add(res.FusedRows)
	reg.Counter("mr_fused_runtime_fallback_total").Add(res.FusedRuntimeFallbacks)
	// Reduce-side fusion family, same unconditional-recording contract: per
	// job, reduce-eligible == reduce-fused + Σ fallback{reason}, and
	// cross-boundary jobs are a subset of reduce-fused jobs.
	relig, rjobs := int64(0), int64(0)
	if res.FusedReduceEligible {
		relig = 1
		if res.FusedReduceJob {
			rjobs = 1
		}
	}
	cross := int64(0)
	if res.FusedCrossBoundary {
		cross = 1
	}
	reg.Counter("mr_fused_reduce_eligible_total").Add(relig)
	reg.Counter("mr_fused_reduce_jobs_total").Add(rjobs)
	for _, reason := range FuseReduceFallbackReasons {
		v := int64(0)
		if relig == 1 && rjobs == 0 && res.FusedReduceFallbackReason == reason {
			v = 1
		}
		reg.Counter("mr_fused_reduce_fallback_total", "reason", reason).Add(v)
	}
	reg.Counter("mr_fused_reduce_crossboundary_jobs_total").Add(cross)
	reg.Counter("mr_fused_reduce_batches_total").Add(res.FusedCombineBatches)
	reg.Counter("mr_fused_reduce_groups_total").Add(res.FusedReduceGroups)
	reg.Counter("mr_fused_reduce_rows_total").Add(res.FusedReduceRows)
	reg.Counter("mr_fused_reduce_runtime_fallback_total").Add(res.FusedReduceRuntimeFallbacks)
	reg.FloatCounter("mr_sim_seconds_total").Add(res.SimSeconds)
	reg.FloatCounter("mr_wasted_sim_seconds_total").Add(res.WastedSeconds)
	// Fault/recovery counters are recorded unconditionally (zeros included)
	// so snapshot key sets — and therefore counter-map equality across
	// parallelism settings — never depend on which faults happened to fire.
	reg.Counter("mr_task_retries_total").Add(int64(res.TaskRetries))
	reg.Counter("mr_straggler_tasks_total").Add(int64(res.StragglerTasks))
	reg.Counter("mr_speculative_tasks_total").Add(int64(res.SpeculativeTasks))
	reg.Counter("mr_speculative_wins_total").Add(int64(res.SpeculativeWins))
	deadlines := int64(0)
	if errors.Is(err, ErrDeadlineExceeded) {
		deadlines = 1
	}
	reg.Counter("mr_deadline_aborts_total").Add(deadlines)
	fw := res.Faults
	for _, c := range []struct {
		component string
		seconds   float64
	}{{"retry", fw.TaskRetrySeconds}, {"backoff", fw.BackoffSeconds}, {"straggler", fw.StragglerSeconds}, {"speculation", fw.SpeculationSeconds}} {
		reg.FloatCounter("mr_fault_waste_sim_seconds_total", "component", c.component).Add(c.seconds)
	}
	b := res.Breakdown
	for _, c := range []struct {
		component string
		seconds   float64
	}{{"cm", b.Cm}, {"cs", b.Cs}, {"ct", b.Ct}, {"cr", b.Cr}, {"cw", b.Cw}} {
		reg.FloatCounter("mr_breakdown_seconds_total", "component", c.component).Add(c.seconds)
	}
	reg.Histogram("mr_job_wall_seconds", nil).Observe(wallSeconds)
}

// Keyed is one shuffle record: a partition key and its row. Exported so
// fused combine/reduce kernels (internal/optimizer) can fold record slices
// the engine hands them without copying.
type Keyed struct {
	Key string
	Row data.Row
}

// mapSplit is one map task's share of an input relation.
type mapSplit struct {
	ctx  TaskCtx
	rows []data.Row
}

// mapTaskOut is what one map task produced: its (possibly combined)
// emissions in emission order, the rows its combiner consumed, the
// batch-execution report when the job ran the fused path, and whether the
// combine fold itself ran fused (or bailed out of the fused path).
type mapTaskOut struct {
	out          []Keyed
	combineRows  int64
	batch        BatchReport
	combFused    bool
	combFallback bool
}

// splitInputs reads every input (charging the read volume to res) and cuts
// the rows into map tasks of Params.SplitRows rows each.
func (e *Engine) splitInputs(job *Job, res *Result) ([]mapSplit, error) {
	splitRows := e.Params.SplitRows
	if splitRows <= 0 {
		splitRows = 1 << 62
	}
	var splits []mapSplit
	var globalRow int64
	for i, name := range job.Inputs {
		rel, err := e.Store.Read(name)
		if err != nil {
			return nil, fmt.Errorf("mr: job %q: %w", job.Name, err)
		}
		res.InputBytes += rel.EncodedSize()
		res.InputRows += int64(rel.Len())
		rows := rel.Rows()
		chunk := len(rows)
		if splitRows < int64(chunk) {
			chunk = int(splitRows)
		}
		for start, sp := 0, 0; start < len(rows); start, sp = start+chunk, sp+1 {
			end := start + chunk
			if end > len(rows) {
				end = len(rows)
			}
			splits = append(splits, mapSplit{
				ctx:  TaskCtx{Input: i, Split: sp, StartRow: int64(start), GlobalRow: globalRow + int64(start)},
				rows: rows[start:end],
			})
		}
		globalRow += int64(len(rows))
	}
	return splits, nil
}

// runMapTask maps one split, then (for reduce jobs with a combiner) merges
// the split's emissions per key before they enter the shuffle, so shuffle
// volume reflects the combined output (the point of combiners). Key order
// within the task is first-emission order, matching serial execution.
func runMapTask(job *Job, sp mapSplit, t *mapTaskOut) {
	out := getKeyedBuf(len(sp.rows))
	emit := func(key string, r data.Row) {
		if len(r) != job.MapOutSchema.Len() {
			panic(fmt.Sprintf("mr: job %q map emitted width %d, schema %s", job.Name, len(r), job.MapOutSchema))
		}
		out = append(out, Keyed{key, r})
	}
	if job.BatchMapFactory != nil {
		// Fused path: the whole split moves through one specialized batch
		// kernel. Emission order and content are contractually identical to
		// the row loop below, so everything downstream (combiner, shuffle,
		// accounting, task retries) is oblivious to which path ran.
		bf := job.BatchMapFactory(sp.ctx)
		t.batch = bf(sp.ctx.Input, sp.rows, emit)
	} else {
		fn := job.Map
		if job.MapFactory != nil {
			fn = job.MapFactory(sp.ctx)
		}
		for _, r := range sp.rows {
			fn(sp.ctx.Input, r, emit)
		}
	}
	t.out = out
	if job.Combine == nil || job.Reduce == nil || len(t.out) == 0 {
		return
	}
	if t.batch.Combined {
		// Cross-boundary kernel: the batch map already emitted combined
		// records per key, with the pre-combine row count in the report so
		// combine accounting matches the interpreted path exactly.
		t.combineRows = t.batch.CombineRows
		t.combFused = true
		return
	}
	if job.BatchCombine != nil {
		combined, rows, ok := job.BatchCombine(t.out, getKeyedBuf(len(t.out)))
		if ok {
			putKeyedBuf(t.out)
			t.out = combined
			t.combineRows = rows
			t.combFused = true
			return
		}
		putKeyedBuf(combined)
		t.combFallback = true
	}
	hint := len(t.out)
	if job.EstGroups > 0 && job.EstGroups < int64(hint) {
		hint = int(job.EstGroups)
	}
	g := getGrouper(hint)
	g.build(t.out)
	t.combineRows = int64(len(t.out))
	combined := getKeyedBuf(g.len())
	for id := int32(0); id < int32(g.len()); id++ {
		key := g.keys[id]
		job.Combine(key, g.rows(id), func(r data.Row) {
			combined = append(combined, Keyed{key, r})
		})
	}
	putKeyedBuf(t.out)
	t.out = combined
	g.release()
}

// validateJob checks the static requirements execution relies on.
func validateJob(job *Job) error {
	if job.Map == nil && job.MapFactory == nil {
		return fmt.Errorf("mr: job %q has no map function", job.Name)
	}
	if job.Output == "" {
		return fmt.Errorf("mr: job %q has no output name", job.Name)
	}
	// A map-only job materializes the mapper's emissions directly, so the
	// two schemas must agree on width — otherwise every emitted row would
	// be malformed under OutputSchema yet only the reduce path validated it.
	if job.Reduce == nil && job.MapOutSchema != nil && job.OutputSchema != nil &&
		job.MapOutSchema.Len() != job.OutputSchema.Len() {
		return fmt.Errorf("mr: map-only job %q emits width %d (schema %s) but materializes schema %s",
			job.Name, job.MapOutSchema.Len(), job.MapOutSchema, job.OutputSchema)
	}
	return nil
}

func (e *Engine) execute(job *Job, res *Result, asp *obs.Span, prior float64) (*data.Relation, error) {
	if err := validateJob(job); err != nil {
		return nil, err
	}

	// Split phase: read every input and cut it into map tasks.
	ssp := asp.Child("split")
	splits, err := e.splitInputs(job, res)
	ssp.AddSim(float64(res.InputBytes) / e.Params.ReadRate)
	ssp.End()
	if err != nil {
		return nil, err
	}
	return e.executeFromSplits(job, res, splits, asp, prior)
}

// executeFromSplits runs the map→shuffle→reduce→materialize pipeline over
// already-read input splits. res must carry the input volumes the splits
// represent (splitInputs fills them; RunSharedScan copies them from the
// shared read). Splits are read-only here, so shared-scan consumers can
// replay one split set serially without re-reading the store.
func (e *Engine) executeFromSplits(job *Job, res *Result, splits []mapSplit, asp *obs.Span, prior float64) (*data.Relation, error) {
	if job.Reduce != nil {
		res.KeyedJob = true
		res.PartitionLocal = job.partitionLocal()
	}
	res.FusedEligible = job.FusedEligible
	res.FusedJob = job.Fused
	res.FuseFallbackReason = job.FuseFallback
	res.FusedReduceEligible = job.FusedReduceEligible
	res.FusedReduceJob = job.FusedReduce
	res.FusedReduceFallbackReason = job.FusedReduceFallback
	res.FusedCrossBoundary = job.FusedCrossBoundary
	accrued := float64(res.InputBytes) / e.Params.ReadRate
	if err := e.deadlineCheck(job, res, prior, accrued); err != nil {
		return nil, err
	}

	// Map phase: one task per input split, run on the worker pool. Task
	// outputs stay in per-task buffers consumed in split order, so the
	// effective map output — and every volume counter — is identical for any
	// Workers value. Under an injected fault plan each task runs with
	// task-level recovery; per-task recovery records are folded into res in
	// split-index order so the waste sums are Workers-independent too.
	msp := asp.Child("map")
	tasks := make([]mapTaskOut, len(splits))
	recs := make([]taskRecovery, len(splits))
	mapErr := runTasks(e.workers(), len(splits), func(i int) error {
		if e.Faults == nil {
			runMapTask(job, splits[i], &tasks[i])
			return nil
		}
		nominal := e.mapTaskCost(job, splits[i])
		return e.runTaskAttempts(job, fault.PhaseMap, i, nominal, &recs[i], func() {
			if tasks[i].out != nil {
				putKeyedBuf(tasks[i].out)
			}
			tasks[i] = mapTaskOut{}
			runMapTask(job, splits[i], &tasks[i])
		})
	})
	for i := range recs {
		res.applyRecovery(&recs[i])
	}
	for i := range tasks {
		res.CombineRows += tasks[i].combineRows
		if tasks[i].batch.Fused {
			res.FusedBatches++
			res.FusedRows += tasks[i].batch.Rows
		}
		if tasks[i].batch.Fallback {
			res.FusedRuntimeFallbacks++
		}
		if tasks[i].combFused {
			res.FusedCombineBatches++
		}
		if tasks[i].combFallback {
			res.FusedReduceRuntimeFallbacks++
		}
	}
	msp.AddSim(e.fnsSim(job.MapCost, res.InputRows))
	if job.Combine != nil && job.Reduce != nil {
		// Combiners run inside map tasks: their wall-clock is folded into
		// the map span, only the simulated seconds are reported separately.
		csp := msp.Child("combine")
		csp.AddSim(e.fnsSim(job.CombineCost, res.CombineRows))
		csp.End()
	}
	msp.End()
	if mapErr != nil {
		return nil, fmt.Errorf("mr: job %q failed: %w", job.Name, mapErr)
	}
	accrued += e.fnsSim(job.MapCost, res.InputRows) + e.fnsSim(job.CombineCost, res.CombineRows)
	if err := e.deadlineCheck(job, res, prior, accrued); err != nil {
		return nil, err
	}

	out := data.NewRelation(job.OutputSchema)
	if job.EstOutputRows > 0 && job.EstOutputRows <= poolMaxRetain {
		out.Grow(int(job.EstOutputRows))
	}
	if job.Reduce == nil {
		// Map-only: emitted rows are the output, consumed in split order.
		for i := range tasks {
			for _, kr := range tasks[i].out {
				out.Append(kr.Row)
			}
			putKeyedBuf(tasks[i].out)
			tasks[i].out = nil
		}
	} else if err := e.shuffleReduce(job, res, tasks, out, asp); err != nil {
		return nil, err
	}
	accrued += float64(res.ShuffleBytes)*e.Params.SortFactor +
		float64(res.ShuffleBytes-res.LocalShuffleBytes)/e.Params.ShuffleRate +
		e.fnsSim(job.ReduceCost, res.ShuffleRows)
	if err := e.deadlineCheck(job, res, prior, accrued); err != nil {
		return nil, err
	}

	wsp := asp.Child("materialize")
	res.OutputRows = int64(out.Len())
	res.OutputBytes = out.EncodedSize()

	// Materialize (every job output is retained: opportunistic views).
	e.Store.Put(job.Output, job.OutputKind, out)
	if len(job.OutputPartSigs) > 0 && job.OutputPartParts > 0 {
		e.Store.SetPartitioning(job.Output, job.OutputPartSigs, job.OutputPartParts)
	}
	wsp.AddSim(float64(res.OutputBytes) / e.Params.WriteRate)
	wsp.End()

	// Simulated execution time from measured volumes.
	spec := cost.JobSpec{
		InputBytes:        res.InputBytes,
		InputRows:         res.InputRows,
		MapFns:            job.MapCost,
		CombineFns:        job.CombineCost,
		CombineRows:       res.CombineRows,
		ShuffleBytes:      res.ShuffleBytes,
		ShuffleRows:       res.ShuffleRows,
		LocalShuffleBytes: res.LocalShuffleBytes,
		ReduceFns:         job.ReduceCost,
		OutputBytes:       res.OutputBytes,
	}
	res.Breakdown = e.Params.JobCost(spec)
	return out, nil
}

// redOut is one reduce key's buffered output; rows aliases a slice of the
// owning partition's arena, valid until that arena is released.
type redOut struct {
	key  string
	rows []data.Row
}

// groupRec is one key group's recovery record under an injected fault plan.
type groupRec struct {
	key string
	rec taskRecovery
	err error
}

// shuffleReduce hash-partitions the map-task outputs into R reduce
// partitions, reduces the partitions concurrently, and materializes their
// outputs in global key order. The single partition scan (task outputs in
// split order = map-emission order) accounts sort+transfer volume and
// preserves each key's row order, so both accounting and reduce inputs match
// serial execution exactly; the final k-way merge streams the partitions'
// key-sorted runs out in global key order, making output row order
// independent of R and Workers.
func (e *Engine) shuffleReduce(job *Job, res *Result, tasks []mapTaskOut, out *data.Relation, asp *obs.Span) error {
	r := e.reduceTasks()
	ssp := asp.Child("shuffle")
	total := 0
	for i := range tasks {
		total += len(tasks[i].out)
	}
	parts := make([][]Keyed, r)
	for pi := range parts {
		// Pre-size for an even spread plus slack; a skewed key simply grows.
		parts[pi] = getKeyedBuf(total/r + total/(2*r) + 4)
	}
	local := job.partitionLocal()
	for i := range tasks {
		for _, kr := range tasks[i].out {
			res.ShuffleBytes += int64(kr.Row.EncodedSize() + len(kr.Key))
			res.ShuffleRows++
			var p int
			if local {
				if prefix, ok := data.KeyPrefix(kr.Key, job.PartitionKeyCols); ok {
					// Partition-preserving route: the record's layout bucket
					// is a function of the key prefix alone, so every row of
					// a group is already co-located with its reducer and its
					// bytes never cross the network. Buckets fold onto the R
					// reduce slots; grouping below is still per full key, so
					// the bucket→slot mapping can never change the output.
					res.LocalShuffleBytes += int64(kr.Row.EncodedSize() + len(kr.Key))
					p = partitionOf(prefix, job.PartitionParts) % r
				} else {
					// Malformed or too-short key: fall back to a full
					// shuffle for this record rather than trust a bad route.
					p = partitionOf(kr.Key, r)
				}
			} else {
				p = partitionOf(kr.Key, r)
			}
			parts[p] = append(parts[p], kr)
		}
		putKeyedBuf(tasks[i].out)
		tasks[i].out = nil
	}
	ssp.AddSim(float64(res.ShuffleBytes)*e.Params.SortFactor +
		float64(res.ShuffleBytes-res.LocalShuffleBytes)/e.Params.ShuffleRate)
	ssp.End()
	rsp := asp.Child("reduce")
	// Each reduce task buffers its output per key, in partition-local
	// sorted key order; rows land in one pooled arena per partition, and
	// redOut entries alias arena slices. Under a fault plan, recovery runs
	// per key *group* (not per partition): group contents are independent
	// of R, so retry and speculation waste lands on the same keys at any
	// partitioning. Per-group recovery records are collected here and
	// folded below in global key order, keeping float summation
	// R-independent. A failed group does not stop the partition — remaining
	// groups still run (and account), mirroring runTasks' run-every-task
	// rule.
	partOuts := make([][]redOut, r)
	partArenas := make([][]data.Row, r)
	grecs := make([][]groupRec, r)
	fusedGroups := make([]int64, r)
	fusedRows := make([]int64, r)
	fusedBails := make([]int64, r)
	groupHint := 0
	if job.EstGroups > 0 {
		gh := job.EstGroups/int64(r) + 1
		if gh > int64(total) {
			gh = int64(total)
		}
		groupHint = int(gh)
	}
	err := runTasks(e.workers(), r, func(pi int) error {
		if job.BatchReduce != nil && e.Faults == nil {
			// Fused reduce: the whole partition folds through the columnar
			// agg kernel. Bypassed under a fault plan — scripted reduce
			// faults address per-key groups, which a whole-partition kernel
			// cannot retry at that granularity.
			if outs, arena, ok := fusedReducePartition(job, parts[pi], &fusedGroups[pi], &fusedRows[pi]); ok {
				partOuts[pi] = outs
				partArenas[pi] = arena
				putKeyedBuf(parts[pi])
				parts[pi] = nil
				return nil
			}
			fusedBails[pi]++
		}
		g := getGrouper(groupHint)
		g.build(parts[pi])
		g.sortKeys() // deterministic reduce order
		arena := getRowsBuf(len(parts[pi]))
		outs := make([]redOut, 0, g.len())
		for _, k := range g.keys {
			grows := g.rows(g.id(k))
			start := len(arena)
			emit := func(row data.Row) {
				if len(row) != job.OutputSchema.Len() {
					panic(fmt.Sprintf("mr: job %q reduce emitted width %d, schema %s", job.Name, len(row), job.OutputSchema))
				}
				arena = append(arena, row)
			}
			if e.Faults == nil {
				job.Reduce(k, grows, emit)
			} else {
				gr := groupRec{key: k}
				nominal := e.reduceGroupCost(job, k, grows)
				gr.err = e.runTaskAttempts(job, fault.PhaseReduce, e.Faults.Shard(k), nominal, &gr.rec, func() {
					arena = arena[:start] // drop a dead attempt's partial emissions
					job.Reduce(k, grows, emit)
				})
				grecs[pi] = append(grecs[pi], gr)
				if gr.err != nil {
					arena = arena[:start]
					continue
				}
			}
			outs = append(outs, redOut{key: k, rows: arena[start:len(arena):len(arena)]})
		}
		partOuts[pi] = outs
		partArenas[pi] = arena
		putKeyedBuf(parts[pi])
		parts[pi] = nil
		g.release()
		return nil
	})
	rsp.AddSim(e.fnsSim(job.ReduceCost, res.ShuffleRows))
	for pi := 0; pi < r; pi++ {
		// Integer sums over disjoint partitions, folded in partition order:
		// the tallies are identical at any ReduceTasks setting.
		res.FusedReduceGroups += fusedGroups[pi]
		res.FusedReduceRows += fusedRows[pi]
		res.FusedReduceRuntimeFallbacks += fusedBails[pi]
	}
	if err != nil {
		rsp.End()
		return fmt.Errorf("mr: job %q failed: %v", job.Name, err)
	}
	if e.Faults != nil {
		// Partition-local records are already key-sorted; a k-way merge
		// folds them in global key order without re-sorting.
		var gerr error
		mergeRuns(grecs, func(g *groupRec) string { return g.key }, func(g *groupRec) {
			res.applyRecovery(&g.rec)
			// Lowest failing key wins, like runTasks' lowest task index:
			// the reported error never depends on the partitioning.
			if gerr == nil && g.err != nil {
				gerr = g.err
			}
		})
		if gerr != nil {
			rsp.End()
			return fmt.Errorf("mr: job %q failed: %w", job.Name, gerr)
		}
	}
	// Merge: partitions hold disjoint keys and each partition's buffers are
	// key-sorted, so a k-way merge reproduces the serial all-keys-sorted
	// output while doing strictly less work than the old global sort.
	mergeRuns(partOuts, func(ro *redOut) string { return ro.key }, func(ro *redOut) {
		for _, row := range ro.rows {
			out.Append(row)
		}
	})
	for pi := range partArenas {
		if partArenas[pi] != nil {
			putRowsBuf(partArenas[pi])
		}
	}
	rsp.End()
	return nil
}

// fusedReducePartition folds one reduce partition through the job's fused
// agg kernel. The kernel's emissions arrive with keys in ascending order
// (the order the interpreted path reduces and merges in), so sealing a
// redOut run at every key change reproduces the grouper's per-key buffers
// exactly; the k-way merge downstream is oblivious to which path filled
// them. ok=false means the kernel hit its layout bailout pre-emission: the
// arena is returned to the pool and the caller falls through to the
// interpreter.
func fusedReducePartition(job *Job, recs []Keyed, groups, rows *int64) ([]redOut, []data.Row, bool) {
	if len(recs) == 0 {
		return nil, nil, true
	}
	arena := getRowsBuf(len(recs))
	var outs []redOut
	cur, start, sealed := "", 0, false
	emit := func(key string, row data.Row) {
		if len(row) != job.OutputSchema.Len() {
			panic(fmt.Sprintf("mr: job %q reduce emitted width %d, schema %s", job.Name, len(row), job.OutputSchema))
		}
		if !sealed || key != cur {
			if sealed {
				outs = append(outs, redOut{key: cur, rows: arena[start:len(arena):len(arena)]})
			}
			cur, sealed, start = key, true, len(arena)
		}
		arena = append(arena, row)
	}
	if !job.BatchReduce(recs, emit) {
		putRowsBuf(arena)
		return nil, nil, false
	}
	if sealed {
		outs = append(outs, redOut{key: cur, rows: arena[start:len(arena):len(arena)]})
	}
	*groups += int64(len(outs))
	*rows += int64(len(recs))
	return outs, arena, true
}

// RunSequence executes jobs in order (callers supply a topological order of
// the job DAG; each job's output is in the store before its consumers run).
// It returns per-job results and the aggregate.
func (e *Engine) RunSequence(jobs []*Job) ([]*Result, Aggregate, error) {
	var results []*Result
	var agg Aggregate
	for _, j := range jobs {
		_, res, err := e.Run(j)
		if err != nil {
			return results, agg, err
		}
		results = append(results, res)
		agg.Jobs++
		agg.Attempts += res.Attempts
		agg.SimSeconds += res.SimSeconds
		agg.WastedSeconds += res.WastedSeconds
		agg.BytesRead += res.InputBytes
		agg.BytesShuffled += res.ShuffleBytes
		agg.BytesShuffleEliminated += res.LocalShuffleBytes
		agg.BytesWritten += res.OutputBytes
		agg.RetriedInputBytes += res.RetriedInputBytes
		agg.RetriedShuffleBytes += res.RetriedShuffleBytes
	}
	return results, agg, nil
}

// Aggregate sums volumes and simulated time across a plan's jobs. Bytes*
// cover successful attempts (the paper's data-manipulated metric); retried
// volumes and wasted time are carried separately so engine accounting
// reconciles with storage.Store counters after recovered failures.
type Aggregate struct {
	Jobs          int
	Attempts      int
	SimSeconds    float64
	WastedSeconds float64
	BytesRead     int64
	BytesShuffled int64
	BytesWritten  int64

	// BytesShuffleEliminated is the co-located portion of BytesShuffled
	// that the partition-preserving path kept off the network.
	BytesShuffleEliminated int64

	RetriedInputBytes   int64
	RetriedShuffleBytes int64
}

// DataMovedBytes is total read+shuffle+write volume of successful attempts.
func (a Aggregate) DataMovedBytes() int64 {
	return a.BytesRead + a.BytesShuffled + a.BytesWritten
}

// Add merges another aggregate.
func (a Aggregate) Add(o Aggregate) Aggregate {
	return Aggregate{
		Jobs:                   a.Jobs + o.Jobs,
		Attempts:               a.Attempts + o.Attempts,
		SimSeconds:             a.SimSeconds + o.SimSeconds,
		WastedSeconds:          a.WastedSeconds + o.WastedSeconds,
		BytesRead:              a.BytesRead + o.BytesRead,
		BytesShuffled:          a.BytesShuffled + o.BytesShuffled,
		BytesShuffleEliminated: a.BytesShuffleEliminated + o.BytesShuffleEliminated,
		BytesWritten:           a.BytesWritten + o.BytesWritten,
		RetriedInputBytes:      a.RetriedInputBytes + o.RetriedInputBytes,
		RetriedShuffleBytes:    a.RetriedShuffleBytes + o.RetriedShuffleBytes,
	}
}
