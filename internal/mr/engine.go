// Package mr is the MapReduce execution engine: it really executes map,
// shuffle, and reduce phases over rows stored in the simulated HDFS,
// materializes every job output (the opportunistic views), and accounts
// data volumes exactly.
//
// Execution time is *simulated*: the engine feeds the measured volumes into
// the same cost.Params the optimizer estimates with, yielding deterministic
// per-job seconds. This substitutes for the paper's 20-node Hadoop cluster
// (see DESIGN.md, Substitutions) while preserving what the evaluation
// measures — relative execution time and bytes read/shuffled/written.
package mr

import (
	"fmt"
	"sort"

	"opportune/internal/cost"
	"opportune/internal/data"
	"opportune/internal/storage"
)

// Emit passes one keyed row from a map task to the shuffle. For map-only
// jobs the key is ignored.
type Emit func(key string, r data.Row)

// MapFunc processes one input row. input is the index into Job.Inputs,
// letting joins tag which side a row came from (MR joins are a co-group of
// multiple relations on a common key, §3.2).
type MapFunc func(input int, r data.Row, emit Emit)

// ReduceFunc processes one shuffle group.
type ReduceFunc func(key string, rows []data.Row, emit func(data.Row))

// Job is one MR job: map over the inputs, optional shuffle+reduce, output
// materialized to the store.
type Job struct {
	Name   string
	Inputs []string // dataset names read from the store

	Map          MapFunc
	MapOutSchema *data.Schema // schema of rows emitted by Map

	// Combine, when set on a reduce job, runs map-side per split: rows a
	// split emitted under one key are merged before the shuffle (the
	// classic MR combiner). It must be algebraic: Reduce over combined
	// partials must equal Reduce over the raw rows.
	Combine ReduceFunc

	Reduce       ReduceFunc   // nil for a map-only job
	OutputSchema *data.Schema // schema of the materialized output

	Output     string       // dataset name to materialize as
	OutputKind storage.Kind // normally storage.View

	// Costing metadata: local-function descriptors for the simulated CPU
	// time of this job's map, combine, and reduce sides.
	MapCost     []cost.LocalFn
	CombineCost []cost.LocalFn
	ReduceCost  []cost.LocalFn
}

// Result reports the measured volumes and simulated time of one job run.
type Result struct {
	Job          string
	InputBytes   int64
	InputRows    int64
	CombineRows  int64 // rows fed to map-side combiners
	Attempts     int   // execution attempts (>1 after recovered failures)
	ShuffleBytes int64
	ShuffleRows  int64
	OutputBytes  int64
	OutputRows   int64

	Breakdown  cost.Breakdown
	SimSeconds float64
}

// DataMovedBytes is the paper's "data manipulated" metric (Fig 8b): bytes
// read from HDFS + moved across the network + written to HDFS.
func (r Result) DataMovedBytes() int64 {
	return r.InputBytes + r.ShuffleBytes + r.OutputBytes
}

// Engine executes jobs against a store.
type Engine struct {
	Store  *storage.Store
	Params cost.Params

	// MaxAttempts retries a job whose user code panicked (flaky UDFs are a
	// fact of life in MR clusters). Every attempt restarts from the job's
	// durable inputs — the very materializations the paper repurposes as
	// opportunistic views exist to make this recovery possible. Failed
	// attempts' simulated time is charged to the final result. Values < 2
	// mean no retry.
	MaxAttempts int
}

// New creates an engine over a store with the given cost parameters.
func New(store *storage.Store, params cost.Params) *Engine {
	return &Engine{Store: store, Params: params}
}

// Run executes one job: reads inputs, maps, shuffles (if reducing),
// reduces, and materializes the output. The output relation is returned
// along with measured volumes and simulated seconds. Panics in user code
// (map/combine/reduce local functions) fail the attempt; the job restarts
// from its durable inputs up to MaxAttempts times, with failed attempts'
// simulated time charged to the result.
func (e *Engine) Run(job *Job) (*data.Relation, *Result, error) {
	attempts := e.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var wasted float64
	for attempt := 1; ; attempt++ {
		res := &Result{Job: job.Name}
		rel, err := e.runAttempt(job, res)
		if err != nil && attempt < attempts {
			// Charge what the failed attempt read and computed before dying.
			wasted += e.Params.JobCost(cost.JobSpec{
				InputBytes: res.InputBytes,
				InputRows:  res.InputRows,
				MapFns:     job.MapCost,
			}).Total()
			continue
		}
		res.Attempts = attempt
		res.SimSeconds += wasted
		return rel, res, err
	}
}

// runAttempt is one execution attempt; user-code panics become errors (the
// partial volume accounting in res survives for wasted-time charging).
func (e *Engine) runAttempt(job *Job, res *Result) (rel *data.Relation, err error) {
	defer func() {
		if r := recover(); r != nil {
			rel = nil
			err = fmt.Errorf("mr: job %q failed: %v", job.Name, r)
		}
	}()
	return e.execute(job, res)
}

func (e *Engine) execute(job *Job, res *Result) (*data.Relation, error) {
	if job.Map == nil {
		return nil, fmt.Errorf("mr: job %q has no map function", job.Name)
	}
	if job.Output == "" {
		return nil, fmt.Errorf("mr: job %q has no output name", job.Name)
	}

	// Map phase over each input, split into map tasks of Params.SplitRows
	// input rows. When a combiner is set, each split's emissions are merged
	// per key before entering the shuffle, so shuffle volume reflects the
	// combined output (the point of combiners).
	type keyed struct {
		key string
		row data.Row
	}
	var mapOut []keyed
	var splitBuf []keyed
	emit := func(key string, r data.Row) {
		if len(r) != job.MapOutSchema.Len() {
			panic(fmt.Sprintf("mr: job %q map emitted width %d, schema %s", job.Name, len(r), job.MapOutSchema))
		}
		splitBuf = append(splitBuf, keyed{key, r})
	}
	flushSplit := func() {
		if len(splitBuf) == 0 {
			return
		}
		if job.Combine == nil || job.Reduce == nil {
			mapOut = append(mapOut, splitBuf...)
			splitBuf = splitBuf[:0]
			return
		}
		groups := make(map[string][]data.Row)
		var order []string
		for _, kr := range splitBuf {
			if _, seen := groups[kr.key]; !seen {
				order = append(order, kr.key)
			}
			groups[kr.key] = append(groups[kr.key], kr.row)
		}
		res.CombineRows += int64(len(splitBuf))
		splitBuf = splitBuf[:0]
		for _, k := range order {
			key := k
			job.Combine(key, groups[key], func(r data.Row) {
				mapOut = append(mapOut, keyed{key, r})
			})
		}
	}
	splitRows := e.Params.SplitRows
	if splitRows <= 0 {
		splitRows = 1 << 62
	}
	for i, name := range job.Inputs {
		rel, err := e.Store.Read(name)
		if err != nil {
			return nil, fmt.Errorf("mr: job %q: %w", job.Name, err)
		}
		res.InputBytes += rel.EncodedSize()
		res.InputRows += int64(rel.Len())
		for n, r := range rel.Rows() {
			job.Map(i, r, emit)
			if int64(n+1)%splitRows == 0 {
				flushSplit()
			}
		}
		flushSplit()
	}

	out := data.NewRelation(job.OutputSchema)
	if job.Reduce == nil {
		// Map-only: emitted rows are the output.
		for _, kr := range mapOut {
			out.Append(kr.row)
		}
	} else {
		// Shuffle: group map output by key; account sort+transfer volume.
		groups := make(map[string][]data.Row)
		for _, kr := range mapOut {
			res.ShuffleBytes += int64(kr.row.EncodedSize() + len(kr.key))
			res.ShuffleRows++
			groups[kr.key] = append(groups[kr.key], kr.row)
		}
		keys := make([]string, 0, len(groups))
		for k := range groups {
			keys = append(keys, k)
		}
		sort.Strings(keys) // deterministic reduce order
		emitOut := func(r data.Row) {
			if len(r) != job.OutputSchema.Len() {
				panic(fmt.Sprintf("mr: job %q reduce emitted width %d, schema %s", job.Name, len(r), job.OutputSchema))
			}
			out.Append(r)
		}
		for _, k := range keys {
			job.Reduce(k, groups[k], emitOut)
		}
	}

	res.OutputRows = int64(out.Len())
	res.OutputBytes = out.EncodedSize()

	// Materialize (every job output is retained: opportunistic views).
	e.Store.Put(job.Output, job.OutputKind, out)

	// Simulated execution time from measured volumes.
	spec := cost.JobSpec{
		InputBytes:   res.InputBytes,
		InputRows:    res.InputRows,
		MapFns:       job.MapCost,
		CombineFns:   job.CombineCost,
		CombineRows:  res.CombineRows,
		ShuffleBytes: res.ShuffleBytes,
		ShuffleRows:  res.ShuffleRows,
		ReduceFns:    job.ReduceCost,
		OutputBytes:  res.OutputBytes,
	}
	res.Breakdown = e.Params.JobCost(spec)
	res.SimSeconds = res.Breakdown.Total()
	return out, nil
}

// RunSequence executes jobs in order (callers supply a topological order of
// the job DAG; each job's output is in the store before its consumers run).
// It returns per-job results and the aggregate.
func (e *Engine) RunSequence(jobs []*Job) ([]*Result, Aggregate, error) {
	var results []*Result
	var agg Aggregate
	for _, j := range jobs {
		_, res, err := e.Run(j)
		if err != nil {
			return results, agg, err
		}
		results = append(results, res)
		agg.Jobs++
		agg.SimSeconds += res.SimSeconds
		agg.BytesRead += res.InputBytes
		agg.BytesShuffled += res.ShuffleBytes
		agg.BytesWritten += res.OutputBytes
	}
	return results, agg, nil
}

// Aggregate sums volumes and simulated time across a plan's jobs.
type Aggregate struct {
	Jobs          int
	SimSeconds    float64
	BytesRead     int64
	BytesShuffled int64
	BytesWritten  int64
}

// DataMovedBytes is total read+shuffle+write volume.
func (a Aggregate) DataMovedBytes() int64 {
	return a.BytesRead + a.BytesShuffled + a.BytesWritten
}

// Add merges another aggregate.
func (a Aggregate) Add(o Aggregate) Aggregate {
	return Aggregate{
		Jobs:          a.Jobs + o.Jobs,
		SimSeconds:    a.SimSeconds + o.SimSeconds,
		BytesRead:     a.BytesRead + o.BytesRead,
		BytesShuffled: a.BytesShuffled + o.BytesShuffled,
		BytesWritten:  a.BytesWritten + o.BytesWritten,
	}
}
