package mr

import (
	"strings"
	"testing"

	"opportune/internal/cost"
	"opportune/internal/data"
	"opportune/internal/storage"
	"opportune/internal/value"
)

func newEngine() (*Engine, *storage.Store) {
	st := storage.NewStore()
	return New(st, cost.DefaultParams()), st
}

func loadWords(st *storage.Store) {
	rel := data.NewRelation(data.NewSchema("id", "text"))
	rows := []string{"wine red wine", "beer", "red red red"}
	for i, s := range rows {
		rel.Append(data.Row{value.NewInt(int64(i)), value.NewStr(s)})
	}
	st.Put("docs", storage.Base, rel)
}

// wordCountJob is the canonical MR job: tokenize in map, sum in reduce.
func wordCountJob() *Job {
	mapOut := data.NewSchema("word", "n")
	return &Job{
		Name:   "wordcount",
		Inputs: []string{"docs"},
		Map: func(_ int, r data.Row, emit Emit) {
			for _, w := range strings.Fields(r[1].Str()) {
				emit(w, data.Row{value.NewStr(w), value.NewInt(1)})
			}
		},
		MapOutSchema: mapOut,
		Reduce: func(key string, rows []data.Row, emit func(data.Row)) {
			var sum int64
			for _, r := range rows {
				sum += r[1].Int()
			}
			emit(data.Row{rows[0][0], value.NewInt(sum)})
		},
		OutputSchema: data.NewSchema("word", "count"),
		Output:       "wc",
		OutputKind:   storage.View,
		MapCost:      []cost.LocalFn{{Ops: []cost.OpType{cost.OpAttr}, Scalar: 1}},
		ReduceCost:   []cost.LocalFn{{Ops: []cost.OpType{cost.OpGroup}, Scalar: 1}},
	}
}

func TestWordCount(t *testing.T) {
	e, st := newEngine()
	loadWords(st)
	out, res, err := e.Run(wordCountJob())
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int64{}
	for _, r := range out.Rows() {
		counts[r[0].Str()] = r[1].Int()
	}
	want := map[string]int64{"wine": 2, "red": 4, "beer": 1}
	for w, n := range want {
		if counts[w] != n {
			t.Errorf("count[%s] = %d, want %d", w, counts[w], n)
		}
	}
	if len(counts) != 3 {
		t.Errorf("distinct words = %d", len(counts))
	}
	// output materialized as a view
	if !st.Has("wc") {
		t.Error("output not materialized")
	}
	// volumes measured
	if res.InputRows != 3 || res.InputBytes <= 0 {
		t.Errorf("input volumes = %+v", res)
	}
	if res.ShuffleRows != 7 { // 7 words emitted
		t.Errorf("ShuffleRows = %d, want 7", res.ShuffleRows)
	}
	if res.OutputRows != 3 {
		t.Errorf("OutputRows = %d", res.OutputRows)
	}
	if res.SimSeconds <= 0 {
		t.Error("no simulated time")
	}
	if res.DataMovedBytes() != res.InputBytes+res.ShuffleBytes+res.OutputBytes {
		t.Error("DataMovedBytes mismatch")
	}
}

func TestMapOnlyJob(t *testing.T) {
	e, st := newEngine()
	loadWords(st)
	schema := data.NewSchema("id")
	job := &Job{
		Name:   "project",
		Inputs: []string{"docs"},
		Map: func(_ int, r data.Row, emit Emit) {
			emit("", data.Row{r[0]})
		},
		MapOutSchema: schema,
		OutputSchema: schema,
		Output:       "ids",
		OutputKind:   storage.View,
		MapCost:      []cost.LocalFn{{Ops: []cost.OpType{cost.OpAttr}, Scalar: 1}},
	}
	out, res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Errorf("rows = %d", out.Len())
	}
	if res.ShuffleBytes != 0 || res.ShuffleRows != 0 {
		t.Errorf("map-only job shuffled: %+v", res)
	}
	if res.Breakdown.Ct != 0 || res.Breakdown.Cr != 0 {
		t.Errorf("map-only job has transfer/reduce cost: %v", res.Breakdown)
	}
}

func TestMultiInputCoGroupJoin(t *testing.T) {
	e, st := newEngine()
	left := data.NewRelation(data.NewSchema("uid", "name"))
	left.Append(data.Row{value.NewInt(1), value.NewStr("ann")})
	left.Append(data.Row{value.NewInt(2), value.NewStr("bob")})
	right := data.NewRelation(data.NewSchema("uid", "city"))
	right.Append(data.Row{value.NewInt(1), value.NewStr("sf")})
	right.Append(data.Row{value.NewInt(3), value.NewStr("la")})
	st.Put("users", storage.Base, left)
	st.Put("homes", storage.Base, right)

	mapOut := data.NewSchema("side", "uid", "payload")
	job := &Job{
		Name:   "join",
		Inputs: []string{"users", "homes"},
		Map: func(input int, r data.Row, emit Emit) {
			emit(r[0].String(), data.Row{value.NewInt(int64(input)), r[0], r[1]})
		},
		MapOutSchema: mapOut,
		Reduce: func(_ string, rows []data.Row, emit func(data.Row)) {
			var names, cities []value.V
			var uid value.V
			for _, r := range rows {
				uid = r[1]
				if r[0].Int() == 0 {
					names = append(names, r[2])
				} else {
					cities = append(cities, r[2])
				}
			}
			for _, n := range names {
				for _, c := range cities {
					emit(data.Row{uid, n, c})
				}
			}
		},
		OutputSchema: data.NewSchema("uid", "name", "city"),
		Output:       "joined",
		OutputKind:   storage.View,
	}
	out, _, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("join rows = %d, want 1", out.Len())
	}
	r := out.Row(0)
	if r[0].Int() != 1 || r[1].Str() != "ann" || r[2].Str() != "sf" {
		t.Errorf("join row = %v", r)
	}
}

func TestRunErrors(t *testing.T) {
	e, _ := newEngine()
	if _, _, err := e.Run(&Job{Name: "x", Output: "o"}); err == nil {
		t.Error("nil map accepted")
	}
	if _, _, err := e.Run(&Job{Name: "x", Map: func(int, data.Row, Emit) {}}); err == nil {
		t.Error("empty output name accepted")
	}
	job := wordCountJob()
	job.Inputs = []string{"missing"}
	if _, _, err := e.Run(job); err == nil {
		t.Error("missing input accepted")
	}
}

func TestDeterministicOutput(t *testing.T) {
	run := func() uint64 {
		e, st := newEngine()
		loadWords(st)
		out, _, err := e.Run(wordCountJob())
		if err != nil {
			t.Fatal(err)
		}
		return out.Fingerprint()
	}
	if run() != run() {
		t.Error("engine output not deterministic")
	}
}

func TestRunSequenceAndAggregate(t *testing.T) {
	e, st := newEngine()
	loadWords(st)
	wc := wordCountJob()
	filterSchema := data.NewSchema("word", "count")
	filter := &Job{
		Name:   "popular",
		Inputs: []string{"wc"},
		Map: func(_ int, r data.Row, emit Emit) {
			if r[1].Int() >= 2 {
				emit("", r)
			}
		},
		MapOutSchema: filterSchema,
		OutputSchema: filterSchema,
		Output:       "popular",
		OutputKind:   storage.View,
		MapCost:      []cost.LocalFn{{Ops: []cost.OpType{cost.OpFilter}, Scalar: 1}},
	}
	results, agg, err := e.RunSequence([]*Job{wc, filter})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || agg.Jobs != 2 {
		t.Fatalf("results = %d, agg = %+v", len(results), agg)
	}
	out, err := st.Read("popular")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 { // wine(2), red(4)
		t.Errorf("popular rows = %d", out.Len())
	}
	if agg.SimSeconds != results[0].SimSeconds+results[1].SimSeconds {
		t.Error("aggregate time mismatch")
	}
	sum := agg.Add(Aggregate{Jobs: 1, SimSeconds: 1})
	if sum.Jobs != 3 {
		t.Error("Aggregate.Add wrong")
	}
	if agg.DataMovedBytes() != agg.BytesRead+agg.BytesShuffled+agg.BytesWritten {
		t.Error("aggregate DataMovedBytes mismatch")
	}
	// failure propagates
	bad := wordCountJob()
	bad.Inputs = []string{"missing"}
	if _, _, err := e.RunSequence([]*Job{bad}); err == nil {
		t.Error("RunSequence swallowed error")
	}
}

func TestMapEmitWidthBecomesJobFailure(t *testing.T) {
	// Contract violations in user code fail the job (like a real cluster),
	// they do not crash the engine.
	e, st := newEngine()
	loadWords(st)
	job := wordCountJob()
	job.Map = func(_ int, r data.Row, emit Emit) {
		emit("k", data.Row{r[0]}) // wrong width
	}
	_, res, err := e.Run(job)
	if err == nil || !strings.Contains(err.Error(), "failed") {
		t.Fatalf("wrong-width emit: err = %v", err)
	}
	if res == nil || res.Attempts != 1 {
		t.Errorf("res = %+v", res)
	}
}

func TestFlakyUDFRetriesFromDurableInputs(t *testing.T) {
	e, st := newEngine()
	loadWords(st)
	e.MaxAttempts = 3
	failures := 2
	job := wordCountJob()
	orig := job.Map
	job.Map = func(i int, r data.Row, emit Emit) {
		if failures > 0 && r[0].Int() == 1 {
			failures--
			panic("transient UDF failure")
		}
		orig(i, r, emit)
	}
	out, res, err := e.Run(job)
	if err != nil {
		t.Fatalf("job did not recover: %v", err)
	}
	if res.Attempts != 3 {
		t.Errorf("Attempts = %d, want 3", res.Attempts)
	}
	if out.Len() != 3 {
		t.Errorf("rows = %d", out.Len())
	}
	// failed attempts' simulated time is charged
	e2, st2 := newEngine()
	loadWords(st2)
	_, clean, err := e2.Run(wordCountJob())
	if err != nil {
		t.Fatal(err)
	}
	if res.SimSeconds <= clean.SimSeconds {
		t.Errorf("retries not charged: %g vs clean %g", res.SimSeconds, clean.SimSeconds)
	}
	// permanent failure exhausts attempts
	e.MaxAttempts = 2
	job2 := wordCountJob()
	job2.Map = func(int, data.Row, Emit) { panic("permanent") }
	if _, res, err := e.Run(job2); err == nil || res.Attempts != 2 {
		t.Errorf("permanent failure: err=%v res=%+v", err, res)
	}
}

// BenchmarkWordCountJob measures raw engine throughput on the canonical
// map+shuffle+reduce job.
func BenchmarkWordCountJob(b *testing.B) {
	st := storage.NewStore()
	rel := data.NewRelation(data.NewSchema("id", "text"))
	for i := 0; i < 10000; i++ {
		rel.Append(data.Row{value.NewInt(int64(i)), value.NewStr("the quick brown fox jumps over the lazy dog")})
	}
	st.Put("docs", storage.Base, rel)
	e := New(st, cost.DefaultParams())
	b.SetBytes(rel.EncodedSize() / int64(rel.Len()) * 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Run(wordCountJob()); err != nil {
			b.Fatal(err)
		}
	}
}
