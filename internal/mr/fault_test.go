package mr

import (
	"errors"
	"strings"
	"testing"

	"opportune/internal/cost"
	"opportune/internal/fault"
	"opportune/internal/storage"
)

// newFaultedEngine builds an engine over the words fixture with one-row
// splits (so the three input rows become map tasks 0,1,2) and the given
// fault plan injected.
func newFaultedEngine(t *testing.T, plan *fault.Plan) (*Engine, *storage.Store) {
	t.Helper()
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	st := storage.NewStore()
	loadWords(st)
	params := cost.DefaultParams()
	params.SplitRows = 1
	e := New(st, params)
	e.Faults = fault.NewInjector(plan)
	st.SetFaults(e.Faults)
	return e, st
}

// checkInvariant asserts the accounting identity every run must satisfy.
func checkInvariant(t *testing.T, res *Result) {
	t.Helper()
	if got := res.Breakdown.Total() + res.WastedSeconds; got != res.SimSeconds {
		t.Errorf("Breakdown.Total()+WastedSeconds = %g, SimSeconds = %g", got, res.SimSeconds)
	}
}

func TestInjectedMapPanicRecoversAtTaskLevel(t *testing.T) {
	e, _ := newFaultedEngine(t, &fault.Plan{Faults: []fault.Fault{
		{Phase: fault.PhaseMap, Task: 1, Kind: fault.KindPanic, FailAttempts: 2},
	}})
	out, res, err := e.Run(wordCountJob())
	if err != nil {
		t.Fatalf("task-level recovery failed: %v", err)
	}
	// Task recovery never escalated to the job: one attempt, two task retries.
	if res.Attempts != 1 || res.TaskRetries != 2 {
		t.Errorf("Attempts = %d, TaskRetries = %d, want 1 and 2", res.Attempts, res.TaskRetries)
	}
	if !strings.Contains(res.RecoveredError, "injected panic: map task 1 attempt 2") {
		t.Errorf("RecoveredError = %q", res.RecoveredError)
	}
	if res.Faults.TaskRetrySeconds <= 0 {
		t.Error("dead task attempts charged no retry seconds")
	}
	// Backoff after attempts 1 and 2: Base(1) + Base·Factor(2) = 3 sim-seconds.
	if res.Faults.BackoffSeconds != 3 {
		t.Errorf("BackoffSeconds = %g, want 3", res.Faults.BackoffSeconds)
	}
	// Task retries re-run from in-memory splits: no extra bytes anywhere.
	if res.RetriedInputBytes != 0 || res.RetriedShuffleBytes != 0 {
		t.Errorf("task retries moved bytes: %+v", res)
	}
	checkInvariant(t, res)

	// Output identical to a fault-free run.
	eClean, stClean := newEngine()
	loadWords(stClean)
	clean, _, err := eClean.Run(wordCountJob())
	if err != nil {
		t.Fatal(err)
	}
	if out.Fingerprint() != clean.Fingerprint() {
		t.Error("recovered output differs from fault-free run")
	}
}

func TestInjectedReduceGroupPanicRecovers(t *testing.T) {
	shard := fault.Shard("wine", fault.DefaultVirtualShards)
	e, _ := newFaultedEngine(t, &fault.Plan{Faults: []fault.Fault{
		{Phase: fault.PhaseReduce, Task: shard, Kind: fault.KindPanic, FailAttempts: 1},
	}})
	out, res, err := e.Run(wordCountJob())
	if err != nil {
		t.Fatalf("reduce group recovery failed: %v", err)
	}
	if res.Attempts != 1 || res.TaskRetries != 1 {
		t.Errorf("Attempts = %d, TaskRetries = %d, want 1 and 1", res.Attempts, res.TaskRetries)
	}
	if !strings.Contains(res.RecoveredError, "injected panic: reduce task") {
		t.Errorf("RecoveredError = %q", res.RecoveredError)
	}
	counts := map[string]int64{}
	for _, r := range out.Rows() {
		counts[r[0].Str()] = r[1].Int()
	}
	if counts["wine"] != 2 || counts["red"] != 4 || counts["beer"] != 1 {
		t.Errorf("recovered counts = %v", counts)
	}
	checkInvariant(t, res)
}

func TestCorruptMapOutputReexecutes(t *testing.T) {
	e, _ := newFaultedEngine(t, &fault.Plan{Faults: []fault.Fault{
		{Phase: fault.PhaseMap, Task: 0, Kind: fault.KindCorrupt, FailAttempts: 1},
	}})
	out, res, err := e.Run(wordCountJob())
	if err != nil {
		t.Fatal(err)
	}
	if res.TaskRetries != 1 {
		t.Errorf("TaskRetries = %d, want 1", res.TaskRetries)
	}
	if !strings.Contains(res.RecoveredError, "injected corruption") {
		t.Errorf("RecoveredError = %q", res.RecoveredError)
	}
	// The corrupted attempt's output was discarded, not double-counted.
	if res.ShuffleRows != 7 {
		t.Errorf("ShuffleRows = %d, want 7 (corrupt output leaked into shuffle?)", res.ShuffleRows)
	}
	if out.Len() != 3 {
		t.Errorf("output rows = %d, want 3", out.Len())
	}
	checkInvariant(t, res)
}

// TestSpeculationStrictlyReducesSimSeconds is the acceptance criterion: on
// a straggler-only plan, speculative execution must strictly beat running
// the straggler to completion. With slowdown F=6 and lag factor 1 the copy
// wins at 2C against the straggler's 6C, wasting 2C instead of 5C.
func TestSpeculationStrictlyReducesSimSeconds(t *testing.T) {
	plan := &fault.Plan{Faults: []fault.Fault{
		{Phase: fault.PhaseMap, Task: 0, Kind: fault.KindStraggler, Factor: 6},
	}}
	run := func(disable bool) *Result {
		e, _ := newFaultedEngine(t, plan)
		e.DisableSpeculation = disable
		_, res, err := e.Run(wordCountJob())
		if err != nil {
			t.Fatal(err)
		}
		checkInvariant(t, res)
		return res
	}
	spec := run(false)
	noSpec := run(true)

	if spec.StragglerTasks != 1 || spec.SpeculativeTasks != 1 || spec.SpeculativeWins != 1 {
		t.Errorf("speculation tallies = %+v", spec)
	}
	if noSpec.SpeculativeTasks != 0 || noSpec.StragglerTasks != 1 {
		t.Errorf("disabled speculation tallies = %+v", noSpec)
	}
	if noSpec.Faults.StragglerSeconds <= 0 {
		t.Error("disabled speculation charged no straggler seconds")
	}
	if spec.SimSeconds >= noSpec.SimSeconds {
		t.Errorf("speculation did not strictly reduce SimSeconds: %g >= %g",
			spec.SimSeconds, noSpec.SimSeconds)
	}
	// Both runs execute the same volumes; only waste differs.
	if spec.Breakdown != noSpec.Breakdown {
		t.Errorf("straggler changed the breakdown: %v vs %v", spec.Breakdown, noSpec.Breakdown)
	}
}

// TestStragglerBelowThresholdJustRunsSlow: a mild slowdown under the
// speculation threshold is charged as pure straggler time with no copy.
func TestStragglerBelowThresholdJustRunsSlow(t *testing.T) {
	e, _ := newFaultedEngine(t, &fault.Plan{Faults: []fault.Fault{
		{Phase: fault.PhaseMap, Task: 0, Kind: fault.KindStraggler, Factor: 1.5},
	}})
	_, res, err := e.Run(wordCountJob())
	if err != nil {
		t.Fatal(err)
	}
	if res.StragglerTasks != 1 || res.SpeculativeTasks != 0 {
		t.Errorf("tallies = %+v", res)
	}
	if res.Faults.StragglerSeconds <= 0 || res.Faults.SpeculationSeconds != 0 {
		t.Errorf("waste = %+v", res.Faults)
	}
	checkInvariant(t, res)
}

func TestStorageReadFaultRecoversViaJobRetry(t *testing.T) {
	e, st := newFaultedEngine(t, &fault.Plan{Faults: []fault.Fault{
		{Kind: fault.KindReadError, Dataset: "docs", FailReads: 1},
	}})
	e.MaxAttempts = 3
	before := st.Counters()
	out, res, err := e.Run(wordCountJob())
	if err != nil {
		t.Fatalf("read fault not recovered: %v", err)
	}
	if res.Attempts != 2 {
		t.Errorf("Attempts = %d, want 2", res.Attempts)
	}
	if !strings.Contains(res.RecoveredError, `injected read error: dataset "docs"`) {
		t.Errorf("RecoveredError = %q", res.RecoveredError)
	}
	// The failed read served no bytes, so engine and store reconcile with
	// zero retried volume.
	if res.RetriedInputBytes != 0 {
		t.Errorf("RetriedInputBytes = %d, want 0 (failed read served no bytes)", res.RetriedInputBytes)
	}
	after := st.Counters()
	if got := after.BytesRead - before.BytesRead; got != res.InputBytes {
		t.Errorf("store served %d bytes, engine accounts %d", got, res.InputBytes)
	}
	if out.Len() != 3 {
		t.Errorf("output rows = %d", out.Len())
	}
	checkInvariant(t, res)
}

func TestTaskBudgetExhaustionEscalatesToJobLevel(t *testing.T) {
	e, _ := newFaultedEngine(t, &fault.Plan{Faults: []fault.Fault{
		{Phase: fault.PhaseMap, Task: 0, Kind: fault.KindPanic, FailAttempts: 100},
	}})
	e.TaskMaxAttempts = 2
	e.MaxAttempts = 2
	_, res, err := e.Run(wordCountJob())
	if err == nil {
		t.Fatal("unsurvivable plan succeeded")
	}
	if !strings.Contains(err.Error(), "injected panic") {
		t.Errorf("error lost the fault detail: %v", err)
	}
	// 2 job attempts × 1 task retry each (budget 2 per attempt).
	if res.Attempts != 2 || res.TaskRetries != 2 {
		t.Errorf("Attempts = %d, TaskRetries = %d, want 2 and 2", res.Attempts, res.TaskRetries)
	}
	checkInvariant(t, res)
}

func TestDeadlineAbortCarriesPartialAccounting(t *testing.T) {
	e, _ := newFaultedEngine(t, &fault.Plan{Faults: []fault.Fault{
		{Phase: fault.PhaseMap, Task: 0, Kind: fault.KindStraggler, Factor: 1e9},
	}})
	e.DisableSpeculation = true // the straggler runs to completion, blowing the budget
	e.MaxAttempts = 3
	e.DeadlineSimSeconds = 1e-9
	_, res, err := e.Run(wordCountJob())
	if err == nil {
		t.Fatal("deadline did not trip")
	}
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	// No retry past the deadline — graceful degradation, not a retry storm.
	if res.Attempts != 1 {
		t.Errorf("Attempts = %d, want 1 (deadline must not retry)", res.Attempts)
	}
	// Partial accounting survives: the aborted attempt's volumes and waste.
	if res.InputBytes <= 0 {
		t.Error("partial volumes lost")
	}
	if res.WastedSeconds <= 0 {
		t.Error("aborted work not priced")
	}
	if res.Breakdown.Total() != 0 {
		t.Error("aborted job has a nonzero success breakdown")
	}
	checkInvariant(t, res)
}

func TestDeadlineGenerousEnoughIsInert(t *testing.T) {
	e, st := newEngine()
	loadWords(st)
	e.DeadlineSimSeconds = 1e9
	_, res, err := e.Run(wordCountJob())
	if err != nil {
		t.Fatal(err)
	}
	if res.WastedSeconds != 0 {
		t.Errorf("inert deadline charged waste: %+v", res)
	}
}

// TestFaultedResultParallelismIndependent pins the PR 1 guarantee under
// chaos: with a fixed plan, the whole Result — fault waste floats included —
// is byte-identical at any Workers/ReduceTasks setting.
func TestFaultedResultParallelismIndependent(t *testing.T) {
	plan := &fault.Plan{Faults: []fault.Fault{
		{Phase: fault.PhaseMap, Task: 0, Kind: fault.KindPanic, FailAttempts: 1},
		{Phase: fault.PhaseMap, Task: 2, Kind: fault.KindStraggler, Factor: 6},
		{Phase: fault.PhaseMap, Task: 1, Kind: fault.KindCorrupt, FailAttempts: 1},
		{Phase: fault.PhaseReduce, Task: fault.Shard("red", fault.DefaultVirtualShards), Kind: fault.KindPanic, FailAttempts: 2},
		{Phase: fault.PhaseReduce, Task: fault.Shard("beer", fault.DefaultVirtualShards), Kind: fault.KindStraggler, Factor: 8},
	}}
	run := func(workers, reduceTasks int) (Result, uint64) {
		e, _ := newFaultedEngine(t, plan)
		e.Workers = workers
		e.Params.ReduceTasks = reduceTasks
		out, res, err := e.Run(wordCountJob())
		if err != nil {
			t.Fatalf("workers=%d R=%d: %v", workers, reduceTasks, err)
		}
		checkInvariant(t, res)
		return *res, out.Fingerprint()
	}
	ref, refFP := run(1, 1)
	if ref.TaskRetries == 0 || ref.StragglerTasks == 0 {
		t.Fatalf("plan fired nothing: %+v", ref)
	}
	for _, cfg := range []struct{ w, r int }{{2, 1}, {4, 3}, {8, 2}} {
		got, fp := run(cfg.w, cfg.r)
		if got != ref {
			t.Errorf("workers=%d R=%d: Result differs:\n got %+v\nwant %+v", cfg.w, cfg.r, got, ref)
		}
		if fp != refFP {
			t.Errorf("workers=%d R=%d: output fingerprint differs", cfg.w, cfg.r)
		}
	}
}
