package mr

import (
	"sort"
	"testing"

	"opportune/internal/data"
	"opportune/internal/fault"
	"opportune/internal/obs"
	"opportune/internal/storage"
	"opportune/internal/value"
)

// combineWordsJob is wordCountJob plus a classic combiner, the shape the
// fused reduce kernels replace. setKernels=true attaches hand-written
// BatchCombine/BatchReduce kernels that honor the engine contract
// (first-emission combine order, ascending reduce order); they must be
// indistinguishable from the interpreter in output AND accounting.
func combineWordsJob(setKernels bool) *Job {
	j := wordCountJob()
	j.Combine = func(key string, rows []data.Row, emit func(data.Row)) {
		var sum int64
		for _, r := range rows {
			sum += r[1].Int()
		}
		emit(data.Row{rows[0][0], value.NewInt(sum)})
	}
	j.CombineCost = j.ReduceCost
	if !setKernels {
		return j
	}
	j.FusedReduceEligible = true
	j.FusedReduce = true
	j.BatchCombine = func(in, scratch []Keyed) ([]Keyed, int64, bool) {
		scratch = scratch[:0]
		idx := map[string]int{}
		for _, rec := range in {
			if g, ok := idx[rec.Key]; ok {
				scratch[g].Row[1] = value.NewInt(scratch[g].Row[1].Int() + rec.Row[1].Int())
				continue
			}
			idx[rec.Key] = len(scratch)
			scratch = append(scratch, Keyed{Key: rec.Key, Row: data.Row{rec.Row[0], rec.Row[1]}})
		}
		return scratch, int64(len(in)), true
	}
	j.BatchReduce = func(recs []Keyed, emit Emit) bool {
		sums := map[string]int64{}
		for _, rec := range recs {
			sums[rec.Key] += rec.Row[1].Int()
		}
		keys := make([]string, 0, len(sums))
		for k := range sums {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			emit(k, data.Row{value.NewStr(k), value.NewInt(sums[k])})
		}
		return true
	}
	return j
}

func loadManyWords(st *storage.Store, rows int) {
	rel := data.NewRelation(data.NewSchema("id", "text"))
	corpus := []string{"wine red wine", "beer", "red red red", "ale stout", "wine"}
	for i := 0; i < rows; i++ {
		rel.Append(data.Row{value.NewInt(int64(i)), value.NewStr(corpus[i%len(corpus)])})
	}
	st.Put("docs", storage.Base, rel)
}

func runCombineWords(t *testing.T, kernels, bailing bool) (*data.Relation, *Result, map[string]int64) {
	t.Helper()
	e, st := newEngine()
	loadManyWords(st, 120)
	e.Params.SplitRows = 16 // several map splits, several combine folds
	e.Params.ReduceTasks = 3
	e.Workers = 4
	reg := obs.NewRegistry()
	e.Obs = reg
	j := combineWordsJob(kernels)
	if bailing {
		// Kernels that always refuse: every split's combine and every
		// partition's reduce must replay through the interpreter.
		j.BatchCombine = func(in, scratch []Keyed) ([]Keyed, int64, bool) { return scratch, 0, false }
		j.BatchReduce = func(recs []Keyed, emit Emit) bool { return false }
	}
	out, res, err := e.Run(j)
	if err != nil {
		t.Fatal(err)
	}
	return out, res, reg.Snapshot().Counters
}

// TestFusedReduceKernelParity pins the dispatch contract: batch kernels
// replace the grouper+interpreter folds with identical output, identical
// CombineRows accounting (mr_combine_rows_total must not move), and the
// fused work tallied in the mr_fused_reduce_* family.
func TestFusedReduceKernelParity(t *testing.T) {
	outI, resI, cI := runCombineWords(t, false, false)
	outF, resF, cF := runCombineWords(t, true, false)
	if outI.Fingerprint() != outF.Fingerprint() {
		t.Error("fused kernel output differs from interpreter")
	}
	if resI.CombineRows == 0 || resI.CombineRows != resF.CombineRows {
		t.Errorf("CombineRows: interpreter %d, fused %d (want equal, nonzero)", resI.CombineRows, resF.CombineRows)
	}
	if cI["mr_combine_rows_total"] != cF["mr_combine_rows_total"] {
		t.Errorf("mr_combine_rows_total: interpreter %d, fused %d",
			cI["mr_combine_rows_total"], cF["mr_combine_rows_total"])
	}
	if resF.FusedCombineBatches == 0 {
		t.Error("fused run folded no combine batches")
	}
	if resF.FusedReduceGroups == 0 || resF.FusedReduceRows == 0 {
		t.Errorf("fused run folded groups=%d rows=%d, want both > 0", resF.FusedReduceGroups, resF.FusedReduceRows)
	}
	if resF.FusedReduceRuntimeFallbacks != 0 {
		t.Errorf("well-behaved kernels bailed %d times", resF.FusedReduceRuntimeFallbacks)
	}
	if resI.FusedCombineBatches != 0 || resI.FusedReduceGroups != 0 {
		t.Error("interpreter run tallied fused work")
	}
	// Wall-clock-only contract: the kernels must not change simulated time.
	if resI.SimSeconds != resF.SimSeconds {
		t.Errorf("SimSeconds moved: interpreter %v, fused %v", resI.SimSeconds, resF.SimSeconds)
	}
	if cF["mr_fused_reduce_jobs_total"] != 1 || cF["mr_fused_reduce_eligible_total"] != 1 {
		t.Errorf("fused job counters = %d/%d, want 1/1",
			cF["mr_fused_reduce_jobs_total"], cF["mr_fused_reduce_eligible_total"])
	}
}

// TestFusedReduceRuntimeFallback pins the layout-bailout path: kernels that
// return false leave output and accounting exactly on the interpreter path,
// with every refused split and partition counted as a runtime fallback.
func TestFusedReduceRuntimeFallback(t *testing.T) {
	outI, resI, cI := runCombineWords(t, false, false)
	outB, resB, cB := runCombineWords(t, true, true)
	if outI.Fingerprint() != outB.Fingerprint() {
		t.Error("bailing kernels changed job output")
	}
	if resI.CombineRows != resB.CombineRows {
		t.Errorf("CombineRows: interpreter %d, bailing %d", resI.CombineRows, resB.CombineRows)
	}
	if resB.FusedReduceRuntimeFallbacks == 0 {
		t.Error("refusing kernels recorded no runtime fallbacks")
	}
	if resB.FusedCombineBatches != 0 || resB.FusedReduceGroups != 0 || resB.FusedReduceRows != 0 {
		t.Errorf("bailing run still tallied fused work: batches=%d groups=%d rows=%d",
			resB.FusedCombineBatches, resB.FusedReduceGroups, resB.FusedReduceRows)
	}
	// 120 rows / 16-row splits = 8 combine bails, plus 3 reduce partitions.
	if want := int64(8 + 3); resB.FusedReduceRuntimeFallbacks != want {
		t.Errorf("runtime fallbacks = %d, want %d", resB.FusedReduceRuntimeFallbacks, want)
	}
	if cB["mr_fused_reduce_runtime_fallback_total"] != resB.FusedReduceRuntimeFallbacks {
		t.Error("runtime fallback counter does not match the result tally")
	}
	if cI["mr_fused_reduce_runtime_fallback_total"] != 0 {
		t.Error("interpreter run recorded runtime fallbacks")
	}
}

// TestFusedReduceFaultBypass pins the chaos contract at the engine level:
// with any injected fault plan the reduce kernel is bypassed (zero groups
// folded) while the fused combiner keeps running, because map retries replay
// whole tasks deterministically but scripted reduce faults address per-key
// shards the whole-partition kernel cannot honor.
func TestFusedReduceFaultBypass(t *testing.T) {
	plan := &fault.Plan{Faults: []fault.Fault{
		{Phase: fault.PhaseMap, Task: 0, Kind: fault.KindPanic, FailAttempts: 1},
	}}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	e, st := newEngine()
	loadManyWords(st, 120)
	e.Params.SplitRows = 16
	e.Params.ReduceTasks = 3
	e.Workers = 4
	e.MaxAttempts = 3
	e.Faults = fault.NewInjector(plan)
	st.SetFaults(e.Faults)
	out, res, err := e.Run(combineWordsJob(true))
	if err != nil {
		t.Fatal(err)
	}

	eClean, stClean := newEngine()
	loadManyWords(stClean, 120)
	eClean.Params.SplitRows = 16
	eClean.Params.ReduceTasks = 3
	eClean.Workers = 4
	clean, _, err := eClean.Run(combineWordsJob(false))
	if err != nil {
		t.Fatal(err)
	}
	if out.Fingerprint() != clean.Fingerprint() {
		t.Error("faulted fused run output differs from clean interpreter run")
	}
	if res.FusedReduceGroups != 0 || res.FusedReduceRows != 0 {
		t.Errorf("fault plan must bypass the reduce kernel, folded groups=%d rows=%d",
			res.FusedReduceGroups, res.FusedReduceRows)
	}
	if res.FusedCombineBatches == 0 {
		t.Error("fused combiner should keep running under a fault plan")
	}
	if res.FusedReduceRuntimeFallbacks != 0 {
		t.Errorf("fault bypass is not a runtime fallback, counted %d", res.FusedReduceRuntimeFallbacks)
	}
}
