package mr

// mergeRuns streams k key-sorted runs out in global key order (ties broken
// by run index, so the merge is stable across runs). It replaces the old
// concat-then-sort.Slice merge of per-partition outputs: partitions are
// already sorted locally, so an O(n log k) heap merge does strictly less
// work than the O(n log n) global sort and allocates nothing beyond the
// k-entry head heap.
func mergeRuns[T any](runs [][]T, key func(*T) string, emit func(*T)) {
	type head struct{ run, pos int }
	h := make([]head, 0, len(runs))
	less := func(a, b head) bool {
		ka, kb := key(&runs[a.run][a.pos]), key(&runs[b.run][b.pos])
		if ka != kb {
			return ka < kb
		}
		return a.run < b.run
	}
	up := func(i int) {
		for i > 0 {
			p := (i - 1) / 2
			if !less(h[i], h[p]) {
				break
			}
			h[i], h[p] = h[p], h[i]
			i = p
		}
	}
	down := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(h) && less(h[l], h[m]) {
				m = l
			}
			if r < len(h) && less(h[r], h[m]) {
				m = r
			}
			if m == i {
				return
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
	}
	for ri := range runs {
		if len(runs[ri]) > 0 {
			h = append(h, head{run: ri})
			up(len(h) - 1)
		}
	}
	for len(h) > 0 {
		top := h[0]
		emit(&runs[top.run][top.pos])
		if top.pos+1 < len(runs[top.run]) {
			h[0].pos++
			down(0)
		} else {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
			if len(h) > 0 {
				down(0)
			}
		}
	}
}
