package mr

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// runTasks executes n indexed tasks on up to w concurrent workers. A panic
// inside a task is recovered and becomes that task's error. Every task runs
// to completion regardless of other tasks' failures, so per-task volume
// counters are fully populated (and therefore deterministic) even on a
// failed attempt; the error of the lowest-indexed failed task is returned,
// which keeps the reported failure independent of goroutine scheduling.
func runTasks(w, n int, task func(i int) error) error {
	if n == 0 {
		return nil
	}
	if w > n {
		w = n
	}
	if w <= 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := runTask(task, i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	next := int64(-1)
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				errs[i] = runTask(task, i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runTask invokes one task, converting a panic in user code into an error.
func runTask(task func(int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	return task(i)
}

// partitionOf assigns a shuffle key to one of r reduce partitions.
func partitionOf(key string, r int) int {
	if r <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(r))
}
