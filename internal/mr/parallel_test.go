package mr

import (
	"fmt"
	"strings"
	"testing"

	"opportune/internal/cost"
	"opportune/internal/data"
	"opportune/internal/storage"
	"opportune/internal/value"
)

// loadCorpus installs a docs table large enough to span many map splits.
func loadCorpus(st *storage.Store, rows int) {
	rel := data.NewRelation(data.NewSchema("id", "text"))
	texts := []string{
		"wine red wine", "beer and coffee", "red red red",
		"coffee wine beer", "the quick brown fox", "wine",
	}
	for i := 0; i < rows; i++ {
		rel.Append(data.Row{value.NewInt(int64(i)), value.NewStr(texts[i%len(texts)])})
	}
	st.Put("docs", storage.Base, rel)
}

// runWithWorkers runs the word-count job (with a combiner) at the given
// worker count and small splits, returning the output and result.
func runWithWorkers(t testing.TB, workers, reduceTasks, rows int) (*data.Relation, *Result) {
	t.Helper()
	st := storage.NewStore()
	loadCorpus(st, rows)
	params := cost.DefaultParams()
	params.SplitRows = 64
	params.ReduceTasks = reduceTasks
	e := New(st, params)
	e.Workers = workers
	job := wordCountJob()
	job.Combine = func(key string, rs []data.Row, emit func(data.Row)) {
		var sum int64
		for _, r := range rs {
			sum += r[1].Int()
		}
		emit(data.Row{rs[0][0], value.NewInt(sum)})
	}
	job.CombineCost = []cost.LocalFn{{Ops: []cost.OpType{cost.OpGroup}, Scalar: 1}}
	out, res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	return out, res
}

// TestParallelDeterminism is the tentpole's acceptance check: the same job
// must produce byte-identical output relations and identical Result volume
// accounting at every worker count and reduce-partition count.
func TestParallelDeterminism(t *testing.T) {
	refOut, refRes := runWithWorkers(t, 1, 1, 1000)
	for _, cfg := range []struct{ workers, reduceTasks int }{
		{1, 4}, {2, 1}, {4, 4}, {8, 3}, {8, 16},
	} {
		out, res := runWithWorkers(t, cfg.workers, cfg.reduceTasks, 1000)
		if out.Len() != refOut.Len() {
			t.Fatalf("workers=%d R=%d: rows = %d, want %d", cfg.workers, cfg.reduceTasks, out.Len(), refOut.Len())
		}
		if out.Fingerprint() != refOut.Fingerprint() {
			t.Errorf("workers=%d R=%d: output not byte-identical to serial", cfg.workers, cfg.reduceTasks)
		}
		if *res != *refRes {
			t.Errorf("workers=%d R=%d: Result differs:\n got %+v\nwant %+v", cfg.workers, cfg.reduceTasks, *res, *refRes)
		}
	}
}

// TestParallelMapOnlyDeterminism checks that map-only jobs preserve the
// serial input-order output under parallel execution.
func TestParallelMapOnlyDeterminism(t *testing.T) {
	mk := func(workers int) *data.Relation {
		st := storage.NewStore()
		loadCorpus(st, 500)
		params := cost.DefaultParams()
		params.SplitRows = 32
		e := New(st, params)
		e.Workers = workers
		schema := data.NewSchema("id", "n")
		job := &Job{
			Name:   "lens",
			Inputs: []string{"docs"},
			Map: func(_ int, r data.Row, emit Emit) {
				emit("", data.Row{r[0], value.NewInt(int64(len(r[1].Str())))})
			},
			MapOutSchema: schema,
			OutputSchema: schema,
			Output:       "lens",
			OutputKind:   storage.View,
			MapCost:      []cost.LocalFn{{Ops: []cost.OpType{cost.OpAttr}, Scalar: 1}},
		}
		out, _, err := e.Run(job)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial, parallel := mk(1), mk(8)
	if serial.Fingerprint() != parallel.Fingerprint() {
		t.Error("map-only output depends on worker count")
	}
	// Map-only output preserves input order: ids ascend.
	for i := 0; i < parallel.Len()-1; i++ {
		if parallel.Row(i)[0].Int() >= parallel.Row(i + 1)[0].Int() {
			t.Fatalf("output out of input order at row %d", i)
		}
	}
}

// TestMapFactoryTaskCtx checks that per-task map state is seeded from the
// deterministic TaskCtx: tags derived from GlobalRow must be unique and
// identical at any worker count.
func TestMapFactoryTaskCtx(t *testing.T) {
	mk := func(workers int) *data.Relation {
		st := storage.NewStore()
		loadCorpus(st, 300)
		params := cost.DefaultParams()
		params.SplitRows = 16
		e := New(st, params)
		e.Workers = workers
		schema := data.NewSchema("word", "tag")
		job := &Job{
			Name:   "tagger",
			Inputs: []string{"docs"},
			MapFactory: func(ctx TaskCtx) MapFunc {
				tag := ctx.GlobalRow << 20
				return func(_ int, r data.Row, emit Emit) {
					for _, w := range strings.Fields(r[1].Str()) {
						tag++
						emit("", data.Row{value.NewStr(w), value.NewInt(tag)})
					}
				}
			},
			MapOutSchema: schema,
			OutputSchema: schema,
			Output:       "tags",
			OutputKind:   storage.View,
			MapCost:      []cost.LocalFn{{Ops: []cost.OpType{cost.OpAttr}, Scalar: 1}},
		}
		out, _, err := e.Run(job)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial, parallel := mk(1), mk(8)
	if serial.Fingerprint() != parallel.Fingerprint() {
		t.Error("MapFactory tags depend on worker count")
	}
	seen := make(map[int64]bool, parallel.Len())
	for _, r := range parallel.Rows() {
		tag := r[1].Int()
		if seen[tag] {
			t.Fatalf("duplicate tag %d", tag)
		}
		seen[tag] = true
	}
}

// TestReducePanicChargesMoreThanMapPanic is the wasted-time regression: a
// retry after a reduce-side panic must be charged the map, combine, and
// shuffle work that ran before the failure, so it costs strictly more than
// a retry after an immediate map-side panic.
func TestReducePanicChargesMoreThanMapPanic(t *testing.T) {
	run := func(breakReduce bool) *Result {
		st := storage.NewStore()
		loadCorpus(st, 200)
		e := New(st, cost.DefaultParams())
		e.MaxAttempts = 2
		job := wordCountJob()
		failed := false
		if breakReduce {
			orig := job.Reduce
			job.Reduce = func(key string, rows []data.Row, emit func(data.Row)) {
				if !failed {
					failed = true
					panic("reduce bug")
				}
				orig(key, rows, emit)
			}
		} else {
			orig := job.Map
			job.Map = func(i int, r data.Row, emit Emit) {
				if !failed {
					failed = true
					panic("map bug")
				}
				orig(i, r, emit)
			}
		}
		_, res, err := e.Run(job)
		if err != nil {
			t.Fatal(err)
		}
		if res.Attempts != 2 {
			t.Fatalf("Attempts = %d, want 2", res.Attempts)
		}
		return res
	}
	mapRetry := run(false)
	reduceRetry := run(true)
	if reduceRetry.SimSeconds <= mapRetry.SimSeconds {
		t.Errorf("reduce-panic retry (%g s) not charged more than map-panic retry (%g s)",
			reduceRetry.SimSeconds, mapRetry.SimSeconds)
	}
	// Both charge strictly more than a clean run.
	st := storage.NewStore()
	loadCorpus(st, 200)
	e := New(st, cost.DefaultParams())
	_, clean, err := e.Run(wordCountJob())
	if err != nil {
		t.Fatal(err)
	}
	if mapRetry.SimSeconds <= clean.SimSeconds {
		t.Errorf("map-panic retry (%g s) not charged over clean run (%g s)", mapRetry.SimSeconds, clean.SimSeconds)
	}
}

// TestRunSequenceParallelAggregates checks aggregate accounting is worker-
// count independent across a job sequence.
func TestRunSequenceParallelAggregates(t *testing.T) {
	mk := func(workers int) Aggregate {
		st := storage.NewStore()
		loadCorpus(st, 600)
		params := cost.DefaultParams()
		params.SplitRows = 50
		e := New(st, params)
		e.Workers = workers
		wc := wordCountJob()
		second := &Job{
			Name:   "lengths",
			Inputs: []string{"wc"},
			Map: func(_ int, r data.Row, emit Emit) {
				emit(fmt.Sprint(len(r[0].Str())), data.Row{value.NewInt(int64(len(r[0].Str()))), r[1]})
			},
			MapOutSchema: data.NewSchema("len", "count"),
			Reduce: func(key string, rows []data.Row, emit func(data.Row)) {
				var sum int64
				for _, r := range rows {
					sum += r[1].Int()
				}
				emit(data.Row{rows[0][0], value.NewInt(sum)})
			},
			OutputSchema: data.NewSchema("len", "total"),
			Output:       "lens_by_count",
			OutputKind:   storage.View,
			MapCost:      []cost.LocalFn{{Ops: []cost.OpType{cost.OpAttr}, Scalar: 1}},
			ReduceCost:   []cost.LocalFn{{Ops: []cost.OpType{cost.OpGroup}, Scalar: 1}},
		}
		_, agg, err := e.RunSequence([]*Job{wc, second})
		if err != nil {
			t.Fatal(err)
		}
		return agg
	}
	if s, p := mk(1), mk(8); s != p {
		t.Errorf("Aggregate differs:\nserial   %+v\nparallel %+v", s, p)
	}
}
