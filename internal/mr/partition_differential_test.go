package mr

import (
	"math"
	"reflect"
	"testing"

	"opportune/internal/cost"
	"opportune/internal/fault"
	"opportune/internal/obs"
)

// partitionGrid is the parallelism grid of the shuffle-elimination oracle.
var partitionGrid = []struct{ w, r int }{{1, 1}, {1, 3}, {4, 1}, {4, 3}, {8, 1}, {8, 3}}

// runPartitionGroupJob executes the shuffle/group benchmark job with or
// without the partition-preserving path. With local=true the job declares
// its input hash-distributed over 32 buckets by the first shuffle-key
// column (a strict prefix of the two-column key), which is vacuously true:
// bucket membership is a pure function of the key value, so declaring it
// never changes what any group contains — the property this oracle proves.
func runPartitionGroupJob(t *testing.T, plan *fault.Plan, workers, reduceTasks int, local bool) groupOutcome {
	t.Helper()
	const rows, groups = 6000, 500
	st, schema := benchInput(rows, groups)
	params := cost.DefaultParams()
	params.SplitRows = 1024
	params.ReduceTasks = reduceTasks
	e := New(st, params)
	e.Workers = workers
	e.MaxAttempts = 3
	reg := obs.NewRegistry()
	e.Obs = reg
	st.SetObs(reg)
	if plan != nil {
		if err := plan.Validate(); err != nil {
			t.Fatal(err)
		}
		e.Faults = fault.NewInjector(plan)
		st.SetFaults(e.Faults)
	}
	job := benchGroupJob(schema, rows, groups)
	if local {
		job.PartitionKeyCols = 1
		job.PartitionParts = 32
	}
	rel, _, err := e.Run(job)
	if err != nil {
		t.Fatalf("local=%v workers=%d R=%d: %v", local, workers, reduceTasks, err)
	}
	snap := reg.Snapshot()
	out := groupOutcome{fp: rel.Fingerprint(), rows: len(rel.Rows()), snap: snap}
	for _, r := range rel.Rows() {
		enc := make([]string, len(r))
		for i, v := range r {
			enc[i] = v.String()
		}
		out.rel = append(out.rel, enc)
	}
	return out
}

// partitionFamily is the only counter family allowed to differ between the
// shuffle-free and forced-shuffle runs of the same job.
var partitionFamily = []string{
	"mr_partition_local_jobs_total",
	"mr_partition_shuffle_jobs_total",
	"mr_shuffle_bytes_eliminated_total",
}

// stripPartitionFamily copies an integer counter map without the partition
// family keys.
func stripPartitionFamily(m map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	for _, k := range partitionFamily {
		delete(out, k)
	}
	return out
}

// TestPartitionShuffleEliminationOracle is the shuffle-elimination
// differential oracle: the partition-preserving execution path must be
// invisible everywhere except the transfer bill. For every point of the
// Workers × ReduceTasks grid, fault-free and under the chaos plan, it
// proves against the forced-shuffle run of the same job that
//
//   - the output relation is byte-identical (fingerprint and raw rows);
//   - every integer counter outside the documented partition family is
//     identical — same shuffle bytes/rows sorted and grouped, same retries,
//     same straggler/speculation behavior;
//   - the partition family deltas are pinned exactly: all shuffled bytes
//     count as eliminated (every key is well-formed), hits and misses flip
//     1↔0, and keyed jobs agree;
//   - the only float-counter deltas are the transfer term ct and its echo
//     in sim seconds, both exactly eliminated/ShuffleRate — recovery waste
//     is priced at full re-fetch cost in both modes, so every fault-waste
//     counter matches to the byte even under chaos.
func TestPartitionShuffleEliminationOracle(t *testing.T) {
	shuffleRate := cost.DefaultParams().ShuffleRate
	for _, tc := range []struct {
		name string
		plan *fault.Plan
	}{
		{name: "fault-free", plan: nil},
		{name: "chaos", plan: groupChaosPlan()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Serial references for both modes; each mode must also be
			// self-consistent across the whole grid.
			refShuffle := runPartitionGroupJob(t, tc.plan, 1, 1, false)
			refLocal := runPartitionGroupJob(t, tc.plan, 1, 1, true)
			if refShuffle.rows == 0 {
				t.Fatal("reference run produced no rows")
			}
			if tc.plan != nil && refLocal.snap.Counters["mr_task_retries_total"] == 0 {
				t.Error("chaos plan injected no task retries on the partition-local path")
			}
			for _, g := range partitionGrid {
				shuf := runPartitionGroupJob(t, tc.plan, g.w, g.r, false)
				loc := runPartitionGroupJob(t, tc.plan, g.w, g.r, true)

				// Byte-identity of the data plane, across modes and against
				// the serial references.
				if loc.fp != shuf.fp || loc.rows != shuf.rows || loc.fp != refShuffle.fp {
					t.Errorf("W=%d R=%d: fingerprints diverge: local %d (%d rows), shuffle %d (%d rows), ref %d",
						g.w, g.r, loc.fp, loc.rows, shuf.fp, shuf.rows, refShuffle.fp)
				}
				if !reflect.DeepEqual(loc.rel, shuf.rel) {
					t.Errorf("W=%d R=%d: relation rows differ between shuffle-free and forced-shuffle", g.w, g.r)
				}

				// Grid self-consistency within each mode: full counter-map
				// equality against that mode's serial run.
				if !reflect.DeepEqual(loc.snap.Counters, refLocal.snap.Counters) {
					t.Errorf("W=%d R=%d: partition-local counters differ from serial partition-local run\n got %v\nwant %v",
						g.w, g.r, loc.snap.Counters, refLocal.snap.Counters)
				}
				if !reflect.DeepEqual(loc.snap.FloatCounters, refLocal.snap.FloatCounters) {
					t.Errorf("W=%d R=%d: partition-local float counters differ from serial partition-local run\n got %v\nwant %v",
						g.w, g.r, loc.snap.FloatCounters, refLocal.snap.FloatCounters)
				}

				// Cross-mode counter equality outside the partition family.
				if got, want := stripPartitionFamily(loc.snap.Counters), stripPartitionFamily(shuf.snap.Counters); !reflect.DeepEqual(got, want) {
					t.Errorf("W=%d R=%d: counters differ beyond the partition family\n got %v\nwant %v", g.w, g.r, got, want)
				}

				// Pinned partition-family deltas.
				shuffled := shuf.snap.Counters["mr_shuffle_bytes_total"]
				if el := loc.snap.Counters["mr_shuffle_bytes_eliminated_total"]; el != shuffled {
					t.Errorf("W=%d R=%d: eliminated %d bytes, want all %d shuffled bytes", g.w, g.r, el, shuffled)
				}
				if el := shuf.snap.Counters["mr_shuffle_bytes_eliminated_total"]; el != 0 {
					t.Errorf("W=%d R=%d: forced-shuffle run eliminated %d bytes", g.w, g.r, el)
				}
				for name, want := range map[string]int64{
					"mr_keyed_jobs_total":             1,
					"mr_partition_local_jobs_total":   1,
					"mr_partition_shuffle_jobs_total": 0,
				} {
					if got := loc.snap.Counters[name]; got != want {
						t.Errorf("W=%d R=%d: local run %s = %d, want %d", g.w, g.r, name, got, want)
					}
				}
				for name, want := range map[string]int64{
					"mr_keyed_jobs_total":             1,
					"mr_partition_local_jobs_total":   0,
					"mr_partition_shuffle_jobs_total": 1,
				} {
					if got := shuf.snap.Counters[name]; got != want {
						t.Errorf("W=%d R=%d: shuffle run %s = %d, want %d", g.w, g.r, name, got, want)
					}
				}

				// Float counters: identical except ct and sim seconds, whose
				// deltas are exactly the eliminated transfer.
				ctKey := "mr_breakdown_seconds_total{component=ct}"
				simKey := "mr_sim_seconds_total"
				wantDelta := float64(shuffled) / shuffleRate
				ctDelta := shuf.snap.FloatCounters[ctKey] - loc.snap.FloatCounters[ctKey]
				if ctDelta != wantDelta {
					t.Errorf("W=%d R=%d: ct delta %v, want exactly %v", g.w, g.r, ctDelta, wantDelta)
				}
				simDelta := shuf.snap.FloatCounters[simKey] - loc.snap.FloatCounters[simKey]
				if math.Abs(simDelta-wantDelta) > 1e-9*math.Max(1, shuf.snap.FloatCounters[simKey]) {
					t.Errorf("W=%d R=%d: sim-seconds delta %v, want %v", g.w, g.r, simDelta, wantDelta)
				}
				for k, sv := range shuf.snap.FloatCounters {
					if k == ctKey || k == simKey {
						continue
					}
					if lv, ok := loc.snap.FloatCounters[k]; !ok || lv != sv {
						t.Errorf("W=%d R=%d: float counter %s differs: local %v, shuffle %v", g.w, g.r, k, lv, sv)
					}
				}
				for k := range loc.snap.FloatCounters {
					if _, ok := shuf.snap.FloatCounters[k]; !ok {
						t.Errorf("W=%d R=%d: float counter %s only present on the local run", g.w, g.r, k)
					}
				}
			}
		})
	}
}

// TestPartitionFallbackOnShortKey proves the safety net: a job whose
// declared layout prefix is longer than any actual key falls back to full-
// key routing for every record — zero bytes eliminated, yet the partition
// "hit" flag still reflects the declared (attempted) path, and the output
// stays byte-identical to the forced-shuffle run.
func TestPartitionFallbackOnShortKey(t *testing.T) {
	run := func(keyCols int) groupOutcome {
		t.Helper()
		const rows, groups = 3000, 200
		st, schema := benchInput(rows, groups)
		params := cost.DefaultParams()
		params.SplitRows = 1024
		params.ReduceTasks = 3
		e := New(st, params)
		e.Workers = 4
		reg := obs.NewRegistry()
		e.Obs = reg
		st.SetObs(reg)
		job := benchGroupJob(schema, rows, groups)
		job.PartitionKeyCols = keyCols
		if keyCols > 0 {
			job.PartitionParts = 32
		}
		rel, _, err := e.Run(job)
		if err != nil {
			t.Fatal(err)
		}
		return groupOutcome{fp: rel.Fingerprint(), rows: len(rel.Rows()), snap: reg.Snapshot()}
	}
	// The benchmark key encodes two columns; declaring a 3-column prefix
	// cannot be satisfied by any record.
	over := run(3)
	base := run(0)
	if over.fp != base.fp || over.rows != base.rows {
		t.Errorf("over-declared layout changed the output: %d (%d rows) vs %d (%d rows)",
			over.fp, over.rows, base.fp, base.rows)
	}
	if el := over.snap.Counters["mr_shuffle_bytes_eliminated_total"]; el != 0 {
		t.Errorf("over-declared layout eliminated %d bytes, want 0 (all keys too short)", el)
	}
	if got := over.snap.Counters["mr_partition_local_jobs_total"]; got != 1 {
		t.Errorf("over-declared layout recorded %d local jobs, want 1 (the path was attempted)", got)
	}
}
