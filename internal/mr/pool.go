package mr

import (
	"sort"
	"sync"

	"opportune/internal/data"
)

// Buffer pooling for the shuffle/reduce hot path. Pooled buffers live
// strictly within one job phase; before a buffer returns to its pool every
// row/key reference is cleared so the pool never retains user data past the
// job (see DESIGN.md, performance model). Capacity is retained — that is
// the point of pooling — but buffers that grew beyond poolMaxRetain are
// dropped so one huge job cannot pin memory for the rest of the process.
const poolMaxRetain = 1 << 17

var keyedPool = sync.Pool{New: func() any { b := make([]Keyed, 0, 256); return &b }}

// getKeyedBuf returns an empty keyed buffer with at least the hinted
// capacity when the pooled one is large enough (the hint only pre-sizes, it
// never limits).
func getKeyedBuf(hint int) []Keyed {
	b := *keyedPool.Get().(*[]Keyed)
	if hint > cap(b) {
		b = make([]Keyed, 0, hint)
	}
	return b[:0]
}

// putKeyedBuf zeroes the buffer's references and returns it to the pool.
func putKeyedBuf(b []Keyed) {
	if cap(b) > poolMaxRetain {
		return
	}
	b = b[:cap(b)]
	for i := range b {
		b[i] = Keyed{}
	}
	b = b[:0]
	keyedPool.Put(&b)
}

var rowsPool = sync.Pool{New: func() any { b := make([]data.Row, 0, 256); return &b }}

func getRowsBuf(hint int) []data.Row {
	b := *rowsPool.Get().(*[]data.Row)
	if hint > cap(b) {
		b = make([]data.Row, 0, hint)
	}
	return b[:0]
}

func putRowsBuf(b []data.Row) {
	if cap(b) > poolMaxRetain {
		return
	}
	b = b[:cap(b)]
	for i := range b {
		b[i] = nil
	}
	b = b[:0]
	rowsPool.Put(&b)
}

// Column-buffer and selection-vector pools for the fused batch executor
// (optimizer-compiled batch map functions draw per-split scratch from here).
// Same hygiene contract as the row pools: references are zeroed before a
// buffer returns, and buffers grown past poolMaxRetain are dropped.

var colPool = sync.Pool{New: func() any { return new(data.Col) }}

// GetCol returns a column buffer reset to n slots.
func GetCol(n int) *data.Col {
	c := colPool.Get().(*data.Col)
	c.Reset(n)
	return c
}

// PutCol zeroes the column's references and returns it to the pool; columns
// grown beyond the retain cap are dropped instead.
func PutCol(c *data.Col) {
	if c == nil || c.Cap() > poolMaxRetain {
		return
	}
	c.Release()
	colPool.Put(c)
}

var selPool = sync.Pool{New: func() any { b := make([]int32, 0, 256); return &b }}

// GetSel returns an empty selection vector with at least the hinted
// capacity (row indices hold no references, so no zeroing is needed).
func GetSel(hint int) []int32 {
	b := *selPool.Get().(*[]int32)
	if hint > cap(b) {
		b = make([]int32, 0, hint)
	}
	return b[:0]
}

// PutSel returns a selection vector to the pool.
func PutSel(b []int32) {
	if cap(b) > poolMaxRetain {
		return
	}
	b = b[:0]
	selPool.Put(&b)
}

// grouper groups shuffle records by key without per-key slice growth: one
// pass assigns dense group ids and counts, a second scatters rows into a
// single arena partitioned by prefix-sum offsets. Group row slices alias the
// arena, so a grouper stays alive until its consumer (combiner or reducer)
// is done with every group, then goes back to the pool via release().
type grouper struct {
	ids    map[string]int32 // key -> dense group id
	keys   []string         // group id -> key, in first-seen order
	counts []int32
	offs   []int32
	arena  []data.Row
}

var grouperPool = sync.Pool{New: func() any {
	return &grouper{ids: make(map[string]int32, 64)}
}}

// getGrouper returns an empty grouper; hint pre-sizes the per-group tables.
func getGrouper(hint int) *grouper {
	g := grouperPool.Get().(*grouper)
	if hint > 0 && cap(g.keys) < hint {
		g.keys = make([]string, 0, hint)
		g.counts = make([]int32, 0, hint)
		g.offs = make([]int32, 0, hint)
	}
	return g
}

// build ingests one run of shuffle records, preserving first-seen key order.
func (g *grouper) build(recs []Keyed) {
	for i := range recs {
		k := &recs[i]
		id, seen := g.ids[k.Key]
		if !seen {
			id = int32(len(g.keys))
			g.ids[k.Key] = id
			g.keys = append(g.keys, k.Key)
			g.counts = append(g.counts, 0)
		}
		g.counts[id]++
	}
	g.offs = append(g.offs[:0], make([]int32, len(g.keys))...)
	var off int32
	for id, n := range g.counts {
		g.offs[id] = off
		off += n
	}
	if cap(g.arena) < len(recs) {
		g.arena = make([]data.Row, len(recs))
	} else {
		g.arena = g.arena[:len(recs)]
	}
	next := append([]int32(nil), g.offs...)
	for i := range recs {
		id := g.ids[recs[i].Key]
		g.arena[next[id]] = recs[i].Row
		next[id]++
	}
}

// len returns the number of groups.
func (g *grouper) len() int { return len(g.keys) }

// rows returns group id's rows (a view into the arena; valid until release).
func (g *grouper) rows(id int32) []data.Row {
	return g.arena[g.offs[id] : g.offs[id]+g.counts[id]]
}

// sortKeys orders the group ids by key; first-seen order is lost.
func (g *grouper) sortKeys() {
	sort.Strings(g.keys)
	// ids map still resolves keys to their (stale) first-seen id; re-point
	// offsets through the map at access time instead of rebuilding it.
}

// id resolves a key to its group id.
func (g *grouper) id(key string) int32 { return g.ids[key] }

// release zeroes every reference and returns the grouper to the pool.
func (g *grouper) release() {
	if len(g.keys) > poolMaxRetain || cap(g.arena) > poolMaxRetain {
		return
	}
	clear(g.ids)
	for i := range g.keys {
		g.keys[i] = ""
	}
	g.keys = g.keys[:0]
	g.counts = g.counts[:0]
	g.offs = g.offs[:0]
	for i := range g.arena {
		g.arena[i] = nil
	}
	g.arena = g.arena[:0]
	grouperPool.Put(g)
}
