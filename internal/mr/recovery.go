package mr

import (
	"errors"
	"fmt"
	"math"

	"opportune/internal/data"
	"opportune/internal/fault"
)

// ErrDeadlineExceeded marks a job aborted by Engine.DeadlineSimSeconds.
// Run does not retry past it; the returned Result carries the partial
// volumes and the waste accrued up to the abort.
var ErrDeadlineExceeded = errors.New("simulated deadline exceeded")

// FaultWaste itemizes the simulated seconds a job lost to task-level
// recovery. Every component is WastedSeconds money: Breakdown stays the
// pure volume-priced cost of the successful execution, and
// Breakdown.Total() + WastedSeconds == SimSeconds keeps holding under
// injected faults.
type FaultWaste struct {
	// TaskRetrySeconds is the nominal cost of task attempts that died and
	// were re-executed (the dead attempt's work, not the retry's — the
	// retry's cost is the task's nominal cost, already in Breakdown).
	TaskRetrySeconds float64
	// BackoffSeconds is the exponential simulated-time backoff spent
	// between task attempts.
	BackoffSeconds float64
	// StragglerSeconds is the extra time straggling tasks ran beyond their
	// nominal cost (when the straggler finished first or speculation was
	// off).
	StragglerSeconds float64
	// SpeculationSeconds is the work burned by speculative execution: the
	// killed loser's run, whichever copy lost.
	SpeculationSeconds float64
}

// Total sums the components.
func (w FaultWaste) Total() float64 {
	return w.TaskRetrySeconds + w.BackoffSeconds + w.StragglerSeconds + w.SpeculationSeconds
}

func (w FaultWaste) add(o FaultWaste) FaultWaste {
	return FaultWaste{
		TaskRetrySeconds:   w.TaskRetrySeconds + o.TaskRetrySeconds,
		BackoffSeconds:     w.BackoffSeconds + o.BackoffSeconds,
		StragglerSeconds:   w.StragglerSeconds + o.StragglerSeconds,
		SpeculationSeconds: w.SpeculationSeconds + o.SpeculationSeconds,
	}
}

// taskRecovery accumulates one task's (or reduce group's) recovery events.
// Tasks run concurrently, so each task writes its own record; the engine
// folds records into the Result afterwards in a canonical order (map: split
// index; reduce: global key order) to keep float summation — and therefore
// every counter byte — independent of Workers and ReduceTasks.
type taskRecovery struct {
	waste      FaultWaste
	retries    int
	stragglers int
	specs      int
	specWins   int
	lastErr    string
}

// applyRecovery folds one task's recovery record into the result.
func (r *Result) applyRecovery(rec *taskRecovery) {
	r.Faults = r.Faults.add(rec.waste)
	r.TaskRetries += rec.retries
	r.StragglerTasks += rec.stragglers
	r.SpeculativeTasks += rec.specs
	r.SpeculativeWins += rec.specWins
	if rec.lastErr != "" {
		r.RecoveredError = rec.lastErr
	}
}

// taskMaxAttempts resolves the per-task retry budget.
func (e *Engine) taskMaxAttempts() int {
	if e.TaskMaxAttempts > 0 {
		return e.TaskMaxAttempts
	}
	return 4
}

// backoff is the simulated wait before retrying a task after its n-th
// failed attempt (1-based): Base × Factor^(n-1).
func (e *Engine) backoff(attempt int) float64 {
	factor := e.Params.TaskBackoffFactor
	if factor <= 0 {
		factor = 1
	}
	return e.Params.TaskBackoffBase * math.Pow(factor, float64(attempt-1))
}

// mapTaskCost is one map task's nominal simulated cost: its split's share
// of the input read plus its map CPU — the task-granular decomposition of
// Breakdown.Cm, used to price task retries and speculation.
func (e *Engine) mapTaskCost(job *Job, sp mapSplit) float64 {
	var bytes int64
	for _, r := range sp.rows {
		bytes += int64(r.EncodedSize())
	}
	return float64(bytes)/e.Params.ReadRate + e.fnsSim(job.MapCost, int64(len(sp.rows)))
}

// reduceGroupCost is one key group's nominal simulated cost: its share of
// sort/transfer plus its reduce CPU — the group-granular decomposition of
// Cs+Ct+Cr. Groups (not partitions) are the recovery unit because group
// contents are independent of the partition count R.
func (e *Engine) reduceGroupCost(job *Job, key string, rows []data.Row) float64 {
	var bytes int64
	for _, r := range rows {
		bytes += int64(r.EncodedSize() + len(key))
	}
	return float64(bytes)*e.Params.SortFactor + float64(bytes)/e.Params.ShuffleRate +
		e.fnsSim(job.ReduceCost, int64(len(rows)))
}

// runTaskAttempts executes one task with task-level recovery: injected
// failures (scripted panics and corrupted outputs) are retried up to the
// task budget with exponential simulated backoff, each dead attempt's
// nominal cost charged to the recovery record; genuine user-code panics
// propagate unchanged so they keep escalating to the job-level retry path.
// On success the task's scripted straggler slowdown (if any) is applied,
// speculating a second copy when the slowdown crosses the threshold.
func (e *Engine) runTaskAttempts(job *Job, phase fault.Phase, task int, nominal float64, rec *taskRecovery, run func()) error {
	max := e.taskMaxAttempts()
	for attempt := 1; ; attempt++ {
		err := runInjected(e.Faults, job.Name, phase, task, attempt, run)
		if err == nil {
			e.applyStraggler(job.Name, phase, task, nominal, rec, run)
			return nil
		}
		rec.lastErr = err.Error()
		if attempt >= max {
			// Budget exhausted: escalate to the job level (which may still
			// retry the whole job from durable inputs).
			return err
		}
		rec.retries++
		rec.waste.TaskRetrySeconds += nominal
		rec.waste.BackoffSeconds += e.backoff(attempt)
	}
}

// runInjected runs one task attempt under the injector. A scripted panic
// kills the attempt before it does work; a scripted corruption lets the
// attempt run, then discards its output at validation. Only *fault.Fired
// panics are recovered here — anything else re-panics into the existing
// job-level failure path.
func runInjected(inj *fault.Injector, job string, phase fault.Phase, task, attempt int, run func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			fd, ok := r.(*fault.Fired)
			if !ok {
				panic(r)
			}
			err = fd
		}
	}()
	fd := inj.TaskFailure(job, phase, task, attempt)
	if fd != nil && fd.Fault.Kind == fault.KindPanic {
		panic(fd)
	}
	run()
	if fd != nil {
		// Corruption: the work happened, the output fails validation.
		return fd
	}
	return nil
}

// applyStraggler charges a task's scripted slowdown and, when it crosses
// the speculation threshold, races a speculative copy against it — all in
// simulated time, so the outcome is scripted arithmetic, not a wall-clock
// race. Timeline from task start, nominal cost C, slowdown F, copy launch
// lag L = SpeculationLagFactor × C:
//
//	straggler finishes at F·C, the copy at L+C; first finisher wins and
//	the loser is killed when the winner commits. Either way exactly one
//	nominal C lands in Breakdown; everything else is waste.
func (e *Engine) applyStraggler(jobName string, phase fault.Phase, task int, nominal float64, rec *taskRecovery, run func()) {
	f := e.Faults.Slowdown(jobName, phase, task)
	if f <= 1 {
		return
	}
	rec.stragglers++
	if e.DisableSpeculation || f < e.Params.SpeculationThreshold {
		rec.waste.StragglerSeconds += (f - 1) * nominal
		return
	}
	rec.specs++
	// The speculative copy really re-executes the task; determinism makes
	// its output identical, so the committed output is the same bytes
	// whichever copy wins and only the accounting needs the race outcome.
	run()
	lag := e.Params.SpeculationLagFactor * nominal
	if f*nominal <= lag+nominal {
		// Straggler wins: pay its slowdown; the copy burned from launch to
		// the straggler's commit.
		rec.waste.StragglerSeconds += (f - 1) * nominal
		if burned := f*nominal - lag; burned > 0 {
			rec.waste.SpeculationSeconds += burned
		}
	} else {
		// Copy wins: its nominal run is the Breakdown cost; the straggler
		// ran from 0 until the copy committed at lag+nominal, all wasted.
		rec.specWins++
		rec.waste.SpeculationSeconds += lag + nominal
	}
}

// deadlineCheck enforces the job's simulated-time deadline at a phase
// boundary. prior is waste carried from earlier job attempts; accrued is
// the current attempt's phase sim so far. Boundaries are R- and Workers-
// independent points, so a deadline abort happens at the same place with
// the same partial accounting at any parallelism.
func (e *Engine) deadlineCheck(job *Job, res *Result, prior, accrued float64) error {
	if e.DeadlineSimSeconds <= 0 {
		return nil
	}
	total := prior + res.Faults.Total() + accrued
	if total <= e.DeadlineSimSeconds {
		return nil
	}
	return fmt.Errorf("mr: job %q: %w: %.3f sim-seconds accrued against deadline %.3f",
		job.Name, ErrDeadlineExceeded, total, e.DeadlineSimSeconds)
}
