package mr

import (
	"errors"
	"fmt"
	"time"

	"opportune/internal/data"
	"opportune/internal/obs"
)

// SharedScanResult reports one shared-scan meta-job execution: per-consumer
// results with standalone-equivalent accounting, plus the physical sharing
// win (the scan was read once instead of once per consumer).
type SharedScanResult struct {
	// Results holds one Result per consumer, in the order the consumers
	// were passed. Each is priced exactly as a standalone Run of that job
	// would have been — Cm includes the full scan for every consumer — so
	// callers that want physical attribution subtract ScanSeconds from all
	// but one consumer.
	Results []*Result

	ScanBytes int64 // bytes of the shared inputs, read once
	ScanRows  int64

	// SavedBytes and SavedSeconds quantify the sharing win vs independent
	// execution: (consumers-1) scans that did not physically happen.
	SavedBytes   int64
	SavedSeconds float64

	// WallSeconds is the real elapsed time of the whole meta-job.
	WallSeconds float64
}

// RunSharedScan executes an MRShare-style shared-scan meta-job: all
// consumer jobs must read the identical input list; the inputs are read and
// split once, then every consumer's map/combine/shuffle/reduce/materialize
// pipeline runs over the shared splits. Each consumer gets a Result with
// standalone-equivalent accounting (volumes, Breakdown, SimSeconds bit-
// identical to what Run would report), so simulated seconds stay comparable
// across execution strategies; the physical saving is reported separately.
//
// Fault semantics: a read failure during the shared split phase is charged
// to the first consumer (the job whose Run would have hit it) and retried
// against its MaxAttempts budget — matching a standalone run under the same
// fault plan. Task-level faults fire inside each consumer's own pipeline
// exactly as they would standalone, because task addressing (job name,
// phase, task/shard index) is unchanged. A consumer pipeline failure
// retries that consumer's pipeline only, re-running it from the in-memory
// splits; the retry is priced as if the inputs had been re-read (standalone
// equivalence) even though no physical re-read happens.
//
// Consumers with fused batch kernels (Job.BatchMapFactory, and the
// reduce-side BatchCombine/BatchReduce agg kernels) run them over the
// shared splits exactly as a standalone run would: splits are read-only to
// map tasks, fused or not, and reduce partitions are private per consumer,
// so one consumer's execution mode never leaks into another's. The fault
// bypass applies here too: under an injected plan consumers fall back from
// BatchReduce to the grouper interpreter, like standalone runs.
//
// RunSharedScan does not publish metrics; callers decide attribution and
// use RecordJob. Returned relations parallel Results.
func (e *Engine) RunSharedScan(consumers []*Job) ([]*data.Relation, *SharedScanResult, error) {
	if len(consumers) == 0 {
		return nil, nil, errors.New("mr: shared scan with no consumers")
	}
	primary := consumers[0]
	for _, job := range consumers {
		if err := validateJob(job); err != nil {
			return nil, nil, err
		}
	}
	for _, job := range consumers[1:] {
		if len(job.Inputs) != len(primary.Inputs) {
			return nil, nil, fmt.Errorf("mr: shared scan: job %q reads %d inputs, %q reads %d",
				job.Name, len(job.Inputs), primary.Name, len(primary.Inputs))
		}
		for i := range job.Inputs {
			if job.Inputs[i] != primary.Inputs[i] {
				return nil, nil, fmt.Errorf("mr: shared scan: job %q input %d is %q, %q reads %q",
					job.Name, i, job.Inputs[i], primary.Name, primary.Inputs[i])
			}
		}
	}
	attempts := e.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	start := time.Now()

	// Shared split phase: one read of the common inputs serves every
	// consumer. Failures are priced and retried as a standalone run of the
	// primary consumer would — same formula, same budget — so its Result
	// stays bit-identical to sequential execution under read-fault plans.
	var (
		splits []mapSplit
		scan   Result
		st     retryState
	)
	for attempt := 1; ; attempt++ {
		r := &Result{Job: primary.Name}
		sp, err := e.splitInputs(primary, r)
		if err == nil {
			splits = sp
			scan = *r
			st.attemptsUsed = attempt - 1
			break
		}
		if attempt >= attempts {
			return nil, nil, err
		}
		st.wasted += e.PartialCost(primary, r)
		st.retriedIn += r.InputBytes
		st.recovered = err.Error()
	}

	out := &SharedScanResult{
		ScanBytes:    scan.InputBytes,
		ScanRows:     scan.InputRows,
		SavedBytes:   int64(len(consumers)-1) * scan.InputBytes,
		SavedSeconds: e.Params.SharedScanSavings(scan.InputBytes, len(consumers)),
	}

	rels := make([]*data.Relation, 0, len(consumers))
	for ci, job := range consumers {
		pre := retryState{}
		if ci == 0 {
			pre = st
		}
		root := e.Obs.StartSpan(job.Name, "job")
		rel, res, err := e.retryLoop(job, root, pre, func(res *Result, sp *obs.Span, prior float64) (*data.Relation, error) {
			return e.runSharedAttempt(job, res, &scan, splits, sp, prior)
		})
		root.AddSim(res.SimSeconds)
		root.End()
		if err != nil {
			return nil, nil, err
		}
		rels = append(rels, rel)
		out.Results = append(out.Results, res)
	}
	out.WallSeconds = time.Since(start).Seconds()
	return rels, out, nil
}

// runSharedAttempt is one pipeline attempt of a shared-scan consumer: the
// shared read's volumes are charged to the attempt (standalone equivalence)
// and the pipeline runs from the shared splits. Panics in user code become
// errors, like runAttempt.
func (e *Engine) runSharedAttempt(job *Job, res *Result, scan *Result, splits []mapSplit, sp *obs.Span, prior float64) (rel *data.Relation, err error) {
	defer func() {
		if r := recover(); r != nil {
			rel = nil
			err = fmt.Errorf("mr: job %q failed: %v", job.Name, r)
		}
	}()
	res.InputBytes = scan.InputBytes
	res.InputRows = scan.InputRows
	ssp := sp.Child("split")
	ssp.AddSim(float64(res.InputBytes) / e.Params.ReadRate)
	ssp.End()
	return e.executeFromSplits(job, res, splits, sp, prior)
}
