package mr

import (
	"reflect"
	"strings"
	"testing"

	"opportune/internal/cost"
	"opportune/internal/data"
	"opportune/internal/fault"
	"opportune/internal/storage"
	"opportune/internal/value"
)

// projectJob is a map-only consumer of the words fixture.
func projectJob() *Job {
	schema := data.NewSchema("id")
	return &Job{
		Name:   "project-ids",
		Inputs: []string{"docs"},
		Map: func(_ int, r data.Row, emit Emit) {
			emit("", data.Row{r[0]})
		},
		MapOutSchema: schema,
		OutputSchema: schema,
		Output:       "ids",
		OutputKind:   storage.View,
		MapCost:      []cost.LocalFn{{Ops: []cost.OpType{cost.OpFilter}, Scalar: 1}},
	}
}

// longWordsJob counts only words longer than three characters.
func longWordsJob() *Job {
	j := wordCountJob()
	j.Name = "longwords"
	j.Output = "lw"
	base := j.Map
	j.Map = func(task int, r data.Row, emit Emit) {
		base(task, r, func(key string, row data.Row) {
			if len(key) > 3 {
				emit(key, row)
			}
		})
	}
	return j
}

// TestSharedScanMatchesStandalone proves the meta-job's contract: every
// consumer's relation and Result are identical to what standalone Runs
// produce, and the reported saving is (n-1) scans.
func TestSharedScanMatchesStandalone(t *testing.T) {
	mk := func() []*Job { return []*Job{wordCountJob(), projectJob(), longWordsJob()} }

	// Standalone reference: each job on a fresh engine over the same data.
	var wantRes []*Result
	var wantFP []uint64
	for _, job := range mk() {
		e, _ := newEngine()
		loadWords(e.Store)
		rel, res, err := e.Run(job)
		if err != nil {
			t.Fatal(err)
		}
		wantRes = append(wantRes, res)
		wantFP = append(wantFP, rel.Fingerprint())
	}

	e, st := newEngine()
	loadWords(st)
	jobs := mk()
	rels, out, err := e.RunSharedScan(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 3 || len(out.Results) != 3 {
		t.Fatalf("got %d rels, %d results", len(rels), len(out.Results))
	}
	for i := range jobs {
		if rels[i].Fingerprint() != wantFP[i] {
			t.Errorf("consumer %d: relation differs from standalone run", i)
		}
		if !reflect.DeepEqual(out.Results[i], wantRes[i]) {
			t.Errorf("consumer %d: result differs:\n shared    %+v\n standalone %+v", i, out.Results[i], wantRes[i])
		}
		checkInvariant(t, out.Results[i])
		if !st.Has(jobs[i].Output) {
			t.Errorf("consumer %d: output %q not materialized", i, jobs[i].Output)
		}
	}
	if out.ScanBytes != wantRes[0].InputBytes || out.ScanRows != wantRes[0].InputRows {
		t.Errorf("scan volumes = %d/%d, want %d/%d", out.ScanBytes, out.ScanRows, wantRes[0].InputBytes, wantRes[0].InputRows)
	}
	if out.SavedBytes != 2*out.ScanBytes {
		t.Errorf("SavedBytes = %d, want %d", out.SavedBytes, 2*out.ScanBytes)
	}
	if want := e.Params.SharedScanSavings(out.ScanBytes, 3); out.SavedSeconds != want {
		t.Errorf("SavedSeconds = %g, want %g", out.SavedSeconds, want)
	}
	// The physical read happened once: the store counted one scan of the
	// input, not three.
	if got := st.Counters().BytesRead; got != out.ScanBytes {
		t.Errorf("store read %d bytes, want one scan = %d", got, out.ScanBytes)
	}
}

// TestSharedScanReadFaultChargesPrimary proves a read fault during the
// shared split phase lands on the first consumer with standalone-identical
// accounting, while later consumers (whose standalone runs would have read
// after the fault budget drained) stay clean.
func TestSharedScanReadFaultChargesPrimary(t *testing.T) {
	plan := &fault.Plan{Faults: []fault.Fault{
		{Kind: fault.KindReadError, Dataset: "docs", FailReads: 1},
	}}

	// Standalone reference: the first job against a fresh injector.
	eA, _ := newFaultedEngine(t, plan)
	eA.MaxAttempts = 3
	_, want, err := eA.Run(wordCountJob())
	if err != nil {
		t.Fatal(err)
	}
	if want.Attempts != 2 || want.RetriedInputBytes != 0 {
		// The fault fires on the first of three per-input reads; the failed
		// attempt read nothing, so only the attempt count moves.
		t.Fatalf("unexpected standalone shape: %+v", want)
	}

	eB, _ := newFaultedEngine(t, plan)
	eB.MaxAttempts = 3
	_, out, err := eB.RunSharedScan([]*Job{wordCountJob(), projectJob()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Results[0], want) {
		t.Errorf("primary result differs:\n shared    %+v\n standalone %+v", out.Results[0], want)
	}
	if !strings.Contains(out.Results[0].RecoveredError, "injected read error") {
		t.Errorf("RecoveredError = %q", out.Results[0].RecoveredError)
	}
	if out.Results[1].Attempts != 1 || out.Results[1].RecoveredError != "" {
		t.Errorf("secondary saw the fault: %+v", out.Results[1])
	}
	checkInvariant(t, out.Results[0])
	checkInvariant(t, out.Results[1])
}

// TestSharedScanRejectsMismatchedInputs: the meta-job is only defined for
// identical input lists.
func TestSharedScanRejectsMismatchedInputs(t *testing.T) {
	e, st := newEngine()
	loadWords(st)
	other := data.NewRelation(data.NewSchema("id", "text"))
	other.Append(data.Row{value.NewInt(1), value.NewStr("x")})
	st.Put("other", storage.Base, other)

	bad := projectJob()
	bad.Inputs = []string{"other"}
	if _, _, err := e.RunSharedScan([]*Job{wordCountJob(), bad}); err == nil {
		t.Fatal("mismatched inputs accepted")
	}
	if _, _, err := e.RunSharedScan(nil); err == nil {
		t.Fatal("empty consumer list accepted")
	}
}
