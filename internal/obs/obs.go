// Package obs is the observability layer: a dependency-free metrics
// registry (counters, gauges, histograms) plus lightweight tracing spans,
// giving the gray-box visibility the paper's UDF model (§3) and cost
// calibration (§4.2) argue for — per-phase volumes, retry waste, eviction
// churn, and optimizer cache behaviour, measured rather than assumed.
//
// Design rules:
//
//   - Components hold a *Registry that may be nil. Every method is nil-safe
//     and a nil registry (or nil metric handle) is a no-op, so
//     instrumentation costs one pointer check when no sink is registered.
//   - All updates are atomic or mutex-guarded; the registry is safe for
//     concurrent use (go test -race covers it).
//   - Counters and float counters hold only deterministic quantities:
//     simulated seconds, data volumes, event counts. Wall-clock time goes
//     into histograms and spans only. This split is what lets tests assert
//     Snapshot equality across runs at any parallelism setting.
//
// Metric identity is the metric name plus an optional label set, rendered
// canonically as name{k=v,k2=v2} with label keys sorted, so snapshots (and
// their JSON encoding) are deterministic.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics and finished trace spans. The zero value is
// not usable; call NewRegistry. A nil *Registry is a valid no-op sink.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	fcounts  map[string]*FloatCounter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	spans        []*Span
	spansDropped int64

	// MaxSpans bounds retained finished root spans (oldest kept); excess
	// roots are counted in the obs_spans_dropped_total counter of the
	// snapshot. Set before use; defaults to 4096.
	MaxSpans int
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		fcounts:  make(map[string]*FloatCounter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		MaxSpans: 4096,
	}
}

// key renders the canonical metric identity. labels are alternating
// key, value pairs; an odd trailing key gets an empty value.
func key(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, (len(labels)+1)/2)
	for i := 0; i < len(labels); i += 2 {
		v := ""
		if i+1 < len(labels) {
			v = labels[i+1]
		}
		pairs = append(pairs, kv{labels[i], v})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.k)
		sb.WriteByte('=')
		sb.WriteString(p.v)
	}
	sb.WriteByte('}')
	return sb.String()
}

// Counter is a monotonically increasing integer metric. Use it only for
// deterministic quantities (event counts, byte volumes); wall-clock belongs
// in histograms.
type Counter struct{ v atomic.Int64 }

// Add increments the counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// FloatCounter is a monotonically increasing float metric (simulated
// seconds). Deterministic quantities only.
type FloatCounter struct{ bits atomic.Uint64 }

// Add increments the counter.
func (c *FloatCounter) Add(f float64) {
	if c == nil {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + f)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the current sum.
func (c *FloatCounter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a last-value float metric (e.g. current view bytes).
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(f float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(f))
}

// Value reads the gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefSecondsBuckets are the default histogram buckets for durations in
// seconds (exponential, 1µs–10s).
var DefSecondsBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10,
}

// DefFaninBuckets are the default histogram buckets for small fan-in
// counts, e.g. consumers per shared scan in the batch executor.
var DefFaninBuckets = []float64{
	1, 2, 3, 4, 6, 8, 12, 16, 24, 32,
}

// Histogram accumulates observations into fixed upper-bound buckets (plus
// an implicit +Inf bucket). Wall-clock measurements live here, never in
// counters, so counter snapshots stay deterministic.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64 // len(bounds)+1; last is +Inf
	sum    float64
	n      int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.n++
}

// HistogramSnapshot is an exported histogram state.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // len(Bounds)+1, last bucket is +Inf
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
}

// Counter returns the named counter, creating it on first use. labels are
// alternating key, value pairs. Nil-safe.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	k := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// FloatCounter returns the named float counter, creating it on first use.
func (r *Registry) FloatCounter(name string, labels ...string) *FloatCounter {
	if r == nil {
		return nil
	}
	k := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.fcounts[k]
	if !ok {
		c = &FloatCounter{}
		r.fcounts[k] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	k := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (later calls reuse the existing buckets; pass
// nil to accept whatever exists, defaulting to DefSecondsBuckets).
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	k := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[k]
	if !ok {
		if bounds == nil {
			bounds = DefSecondsBuckets
		}
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
		r.hists[k] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every metric, keyed by canonical
// metric identity. Maps marshal with sorted keys, so the JSON encoding is
// deterministic.
type Snapshot struct {
	Counters      map[string]int64             `json:"counters"`
	FloatCounters map[string]float64           `json:"float_counters"`
	Gauges        map[string]float64           `json:"gauges"`
	Histograms    map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the current value of every registered metric.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:      make(map[string]int64),
		FloatCounters: make(map[string]float64),
		Gauges:        make(map[string]float64),
		Histograms:    make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, c := range r.counters {
		s.Counters[k] = c.Value()
	}
	if r.spansDropped > 0 {
		s.Counters["obs_spans_dropped_total"] = r.spansDropped
	}
	for k, c := range r.fcounts {
		s.FloatCounters[k] = c.Value()
	}
	for k, g := range r.gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range r.hists {
		h.mu.Lock()
		s.Histograms[k] = HistogramSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: append([]int64(nil), h.counts...),
			Sum:    h.sum,
			Count:  h.n,
		}
		h.mu.Unlock()
	}
	return s
}

// Diff returns the delta snapshot s−prev: counter and histogram values are
// subtracted, gauges keep their current value. Entries whose delta is zero
// and that existed before are dropped, so experiment assertions read only
// what changed.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	d := Snapshot{
		Counters:      make(map[string]int64),
		FloatCounters: make(map[string]float64),
		Gauges:        make(map[string]float64),
		Histograms:    make(map[string]HistogramSnapshot),
	}
	for k, v := range s.Counters {
		if dv := v - prev.Counters[k]; dv != 0 {
			d.Counters[k] = dv
		}
	}
	for k, v := range s.FloatCounters {
		if dv := v - prev.FloatCounters[k]; dv != 0 {
			d.FloatCounters[k] = dv
		}
	}
	for k, v := range s.Gauges {
		if pv, ok := prev.Gauges[k]; !ok || pv != v {
			d.Gauges[k] = v
		}
	}
	for k, h := range s.Histograms {
		p, ok := prev.Histograms[k]
		if !ok {
			d.Histograms[k] = h
			continue
		}
		if h.Count == p.Count {
			continue
		}
		dh := HistogramSnapshot{
			Bounds: h.Bounds,
			Counts: make([]int64, len(h.Counts)),
			Sum:    h.Sum - p.Sum,
			Count:  h.Count - p.Count,
		}
		for i := range h.Counts {
			if i < len(p.Counts) {
				dh.Counts[i] = h.Counts[i] - p.Counts[i]
			} else {
				dh.Counts[i] = h.Counts[i]
			}
		}
		d.Histograms[k] = dh
	}
	return d
}

// Export is the full observability dump: metrics plus the finished span
// trees.
type Export struct {
	Metrics Snapshot     `json:"metrics"`
	Spans   []SpanExport `json:"spans"`
}

// Export captures metrics and spans together.
func (r *Registry) Export() Export {
	return Export{Metrics: r.Snapshot(), Spans: r.Spans()}
}

// WriteJSON writes the Export as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.Export()); err != nil {
		return fmt.Errorf("obs: encoding export: %w", err)
	}
	return nil
}
