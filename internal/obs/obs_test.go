package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestLabelCanonicalization(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("reads", "policy", "lru", "kind", "view")
	b := r.Counter("reads", "kind", "view", "policy", "lru")
	if a != b {
		t.Error("label order changed metric identity")
	}
	a.Inc()
	s := r.Snapshot()
	if s.Counters["reads{kind=view,policy=lru}"] != 1 {
		t.Errorf("canonical key missing: %v", s.Counters)
	}
	if r.Counter("reads") == a {
		t.Error("unlabeled metric collided with labeled one")
	}
}

func TestCountersGaugesHistograms(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(41)
	r.Counter("c").Inc()
	r.FloatCounter("f").Add(1.5)
	r.FloatCounter("f").Add(2.5)
	r.Gauge("g").Set(7)
	h := r.Histogram("h", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(100)

	s := r.Snapshot()
	if s.Counters["c"] != 42 {
		t.Errorf("counter = %d", s.Counters["c"])
	}
	if s.FloatCounters["f"] != 4 {
		t.Errorf("float counter = %g", s.FloatCounters["f"])
	}
	if s.Gauges["g"] != 7 {
		t.Errorf("gauge = %g", s.Gauges["g"])
	}
	hs := s.Histograms["h"]
	if hs.Count != 3 || hs.Sum != 105.5 {
		t.Errorf("hist = %+v", hs)
	}
	want := []int64{1, 1, 1} // ≤1, ≤10, +Inf
	for i, n := range want {
		if hs.Counts[i] != n {
			t.Errorf("bucket %d = %d, want %d", i, hs.Counts[i], n)
		}
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("c", "k", "v").Add(1)
	r.FloatCounter("f").Add(1)
	r.Gauge("g").Set(1)
	r.Histogram("h", nil).Observe(1)
	sp := r.StartSpan("job", "phase")
	sp.AddSim(1)
	child := sp.Child("x")
	child.End()
	sp.End()
	if got := r.Spans(); got != nil {
		t.Errorf("nil registry exported spans: %v", got)
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.FloatCounters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Errorf("nil registry snapshot nonempty: %+v", s)
	}
}

func TestSnapshotDiff(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(10)
	r.FloatCounter("f").Add(1)
	r.Gauge("g").Set(5)
	r.Histogram("h", []float64{1}).Observe(0.5)
	before := r.Snapshot()

	r.Counter("a").Add(3)
	r.Counter("b").Inc()
	r.Gauge("g").Set(6)
	r.Histogram("h", nil).Observe(2)
	d := r.Snapshot().Diff(before)

	if d.Counters["a"] != 3 || d.Counters["b"] != 1 {
		t.Errorf("counter deltas = %v", d.Counters)
	}
	if _, ok := d.FloatCounters["f"]; ok {
		t.Error("unchanged float counter survived Diff")
	}
	if d.Gauges["g"] != 6 {
		t.Errorf("gauge delta = %v", d.Gauges)
	}
	h := d.Histograms["h"]
	if h.Count != 1 || h.Sum != 2 || h.Counts[0] != 0 || h.Counts[1] != 1 {
		t.Errorf("hist delta = %+v", h)
	}
}

func TestSpanTree(t *testing.T) {
	r := NewRegistry()
	root := r.StartSpan("q1", "query")
	a := root.Child("plan")
	a.AddSim(1.5)
	a.End()
	b := root.Child("execute")
	c := b.Child("reduce")
	c.AddSim(2)
	c.End()
	b.End()
	root.AddSim(3.5)
	root.End()
	root.End() // idempotent

	spans := r.Spans()
	if len(spans) != 1 {
		t.Fatalf("roots = %d", len(spans))
	}
	got := spans[0]
	if got.Job != "q1" || got.Phase != "query" || got.SimSeconds != 3.5 {
		t.Errorf("root = %+v", got)
	}
	if len(got.Children) != 2 || got.Children[0].Phase != "plan" || got.Children[1].Phase != "execute" {
		t.Fatalf("children = %+v", got.Children)
	}
	if got.Children[0].SimSeconds != 1.5 {
		t.Errorf("plan sim = %g", got.Children[0].SimSeconds)
	}
	if len(got.Children[1].Children) != 1 || got.Children[1].Children[0].SimSeconds != 2 {
		t.Errorf("grandchild = %+v", got.Children[1].Children)
	}
}

func TestMaxSpansDropsAndCounts(t *testing.T) {
	r := NewRegistry()
	r.MaxSpans = 2
	for i := 0; i < 5; i++ {
		r.StartSpan("j", "p").End()
	}
	if got := len(r.Spans()); got != 2 {
		t.Errorf("retained spans = %d, want 2", got)
	}
	if n := r.Snapshot().Counters["obs_spans_dropped_total"]; n != 3 {
		t.Errorf("dropped = %d, want 3", n)
	}
}

func TestExportJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("mr_jobs_total").Add(2)
	r.FloatCounter("mr_sim_seconds_total").Add(1.25)
	r.Histogram("wall", nil, "phase", "map").Observe(0.01)
	sp := r.StartSpan("wc", "job")
	sp.Child("map").End()
	sp.End()

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var e Export
	if err := json.Unmarshal(buf.Bytes(), &e); err != nil {
		t.Fatalf("export not valid JSON: %v", err)
	}
	if e.Metrics.Counters["mr_jobs_total"] != 2 {
		t.Errorf("counters = %v", e.Metrics.Counters)
	}
	if len(e.Spans) != 1 || len(e.Spans[0].Children) != 1 {
		t.Errorf("spans = %+v", e.Spans)
	}
	// Deterministic encoding: same registry marshals identically.
	var buf2 bytes.Buffer
	if err := r.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("JSON export not deterministic")
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Counter("n", "w", "x").Inc()
				r.FloatCounter("f").Add(0.5)
				r.Gauge("g").Set(float64(i))
				r.Histogram("h", nil).Observe(float64(i))
				sp := r.StartSpan("job", "p")
				sp.Child("c").End()
				sp.AddSim(1)
				sp.End()
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["n{w=x}"] != workers*per {
		t.Errorf("counter = %d", s.Counters["n{w=x}"])
	}
	if s.FloatCounters["f"] != workers*per*0.5 {
		t.Errorf("float counter = %g", s.FloatCounters["f"])
	}
	if s.Histograms["h"].Count != workers*per {
		t.Errorf("hist count = %d", s.Histograms["h"].Count)
	}
	retained := len(r.Spans())
	dropped := s.Counters["obs_spans_dropped_total"]
	if int64(retained)+dropped != workers*per {
		t.Errorf("spans retained %d + dropped %d != %d", retained, dropped, workers*per)
	}
}
