package obs

import (
	"sync"
	"time"
)

// Span is one timed region of work: a (job, phase) pair with real
// wall-clock seconds, accumulated simulated seconds, and child spans in
// creation order. Spans from StartSpan register with the Registry when
// ended; child spans live and die with their root.
//
// A nil *Span (from a nil Registry) is a valid no-op, so instrumented code
// never branches on whether a sink is attached.
//
// The tree structure, phase names, and simulated seconds are deterministic
// for a deterministic caller; wall-clock seconds are not, and tests must
// not assert on them.
type Span struct {
	mu       sync.Mutex
	reg      *Registry // set on roots only
	job      string
	phase    string
	start    time.Time
	wall     float64
	sim      float64
	ended    bool
	children []*Span
}

// StartSpan opens a root span for a (job, phase) region. End it to register
// it with the registry's span export.
func (r *Registry) StartSpan(job, phase string) *Span {
	if r == nil {
		return nil
	}
	return &Span{reg: r, job: job, phase: phase, start: time.Now()}
}

// Child opens a sub-span (same job, new phase). Children appear in the
// exported tree in creation order.
func (sp *Span) Child(phase string) *Span {
	if sp == nil {
		return nil
	}
	c := &Span{job: sp.job, phase: phase, start: time.Now()}
	sp.mu.Lock()
	sp.children = append(sp.children, c)
	sp.mu.Unlock()
	return c
}

// AddSim accumulates simulated seconds attributed to this span.
func (sp *Span) AddSim(seconds float64) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	sp.sim += seconds
	sp.mu.Unlock()
}

// End freezes the span's wall-clock duration; on a root span it also
// registers the finished tree with the registry. End is idempotent.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	if sp.ended {
		sp.mu.Unlock()
		return
	}
	sp.ended = true
	sp.wall = time.Since(sp.start).Seconds()
	reg := sp.reg
	sp.mu.Unlock()
	if reg != nil {
		reg.addSpan(sp)
	}
}

func (r *Registry) addSpan(sp *Span) {
	r.mu.Lock()
	defer r.mu.Unlock()
	max := r.MaxSpans
	if max <= 0 {
		max = 4096
	}
	if len(r.spans) >= max {
		r.spansDropped++
		return
	}
	r.spans = append(r.spans, sp)
}

// SpanExport is the serializable form of a span tree. WallSeconds is real
// elapsed time (nondeterministic); SimSeconds is deterministic simulated
// time. A phase whose wall time cannot be isolated (e.g. combiners running
// inside map tasks) reports WallSeconds 0 and only simulated seconds.
type SpanExport struct {
	Job         string       `json:"job,omitempty"`
	Phase       string       `json:"phase"`
	WallSeconds float64      `json:"wall_seconds"`
	SimSeconds  float64      `json:"sim_seconds"`
	Children    []SpanExport `json:"children,omitempty"`
}

// export deep-copies the span tree.
func (sp *Span) export(root bool) SpanExport {
	sp.mu.Lock()
	e := SpanExport{Phase: sp.phase, WallSeconds: sp.wall, SimSeconds: sp.sim}
	if root {
		e.Job = sp.job
	}
	children := append([]*Span(nil), sp.children...)
	sp.mu.Unlock()
	for _, c := range children {
		e.Children = append(e.Children, c.export(false))
	}
	return e
}

// Spans exports every finished root span tree, in End order.
func (r *Registry) Spans() []SpanExport {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	roots := append([]*Span(nil), r.spans...)
	r.mu.Unlock()
	out := make([]SpanExport, 0, len(roots))
	for _, sp := range roots {
		out = append(out, sp.export(true))
	}
	return out
}
