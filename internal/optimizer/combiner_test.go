package optimizer

import (
	"strings"
	"testing"

	"opportune/internal/mr"
	"opportune/internal/plan"
)

// TestCombinerShrinksShuffleSameResult: with map-side combining on, a
// group-by job moves far fewer shuffle rows yet produces identical output.
func TestCombinerShrinksShuffleSameResult(t *testing.T) {
	runWith := func(disable bool) (*mr.Result, uint64) {
		f := newFixture(t, 5000)
		f.opt.DisableCombiners = disable
		f.eng.Params.SplitRows = 512
		p := plan.GroupAgg(plan.Scan("twtr"), []string{"user_id"},
			plan.AggSpec{Func: plan.AggCount, As: "n"},
			plan.AggSpec{Func: plan.AggAvg, Col: "tweet_id", As: "av"},
			plan.AggSpec{Func: plan.AggMin, Col: "tweet_id", As: "lo"},
		)
		w, err := f.opt.Compile(p)
		if err != nil {
			t.Fatal(err)
		}
		jobs, err := f.opt.Executable(w, "g")
		if err != nil {
			t.Fatal(err)
		}
		results, _, err := f.eng.RunSequence(jobs)
		if err != nil {
			t.Fatal(err)
		}
		out, err := f.store.Read("g")
		if err != nil {
			t.Fatal(err)
		}
		return results[0], out.Fingerprint()
	}
	with, fpWith := runWith(false)
	without, fpWithout := runWith(true)
	if fpWith != fpWithout {
		t.Fatal("combiner changed the result")
	}
	// 5000 rows over 10 users in splits of 512 -> at most 10 groups per
	// split * 10 splits = 100 shuffle rows, vs 5000 without.
	if with.ShuffleRows >= without.ShuffleRows/10 {
		t.Errorf("combiner barely shrank shuffle: %d vs %d rows", with.ShuffleRows, without.ShuffleRows)
	}
	if with.CombineRows != without.ShuffleRows {
		t.Errorf("combiner saw %d rows, want all %d map outputs", with.CombineRows, without.ShuffleRows)
	}
	if with.SimSeconds >= without.SimSeconds {
		t.Errorf("combiner did not reduce simulated time: %g vs %g", with.SimSeconds, without.SimSeconds)
	}
	// Estimates must reflect the combiner too.
	f := newFixture(t, 5000)
	f.opt.Params.SplitRows = 512
	p := plan.GroupAgg(plan.Scan("twtr"), []string{"user_id"}, plan.AggSpec{Func: plan.AggCount, As: "n"})
	wOn, err := f.opt.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	f2 := newFixture(t, 5000)
	f2.opt.Params.SplitRows = 512
	f2.opt.DisableCombiners = true
	p2 := plan.GroupAgg(plan.Scan("twtr"), []string{"user_id"}, plan.AggSpec{Func: plan.AggCount, As: "n"})
	wOff, err := f2.opt.Compile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if wOn.TotalCost() >= wOff.TotalCost() {
		t.Errorf("estimated cost with combiner (%g) not below without (%g)", wOn.TotalCost(), wOff.TotalCost())
	}
}

// TestCombinerNullHandling: partial aggregation must preserve the exact
// NULL semantics of single-phase aggregation.
func TestCombinerNullHandling(t *testing.T) {
	f := newFixture(t, 10)
	f.eng.Params.SplitRows = 2
	// lat-like column with nulls: reuse text via a null-producing UDF is
	// overkill; instead aggregate over reply_to which our fixture lacks —
	// use tweet_id with a filter that keeps nothing for one user.
	p := plan.GroupAgg(plan.Scan("twtr"), []string{"user_id"},
		plan.AggSpec{Func: plan.AggAvg, Col: "tweet_id", As: "av"},
		plan.AggSpec{Func: plan.AggMax, Col: "tweet_id", As: "hi"},
	)
	w, err := f.opt.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := f.opt.Executable(w, "g")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.eng.RunSequence(jobs); err != nil {
		t.Fatal(err)
	}
	out, _ := f.store.Read("g")
	for i := 0; i < out.Len(); i++ {
		u := out.Get(i, "user_id").Int()
		// user u has tweet ids u and u+... per fixture (10 rows, 10 users): one tweet each
		if out.Get(i, "av").Float() != float64(u) || out.Get(i, "hi").Int() != u {
			t.Errorf("row %v wrong", out.Row(i))
		}
	}
}

func TestExplainRendersAnnotations(t *testing.T) {
	f := newFixture(t, 100)
	w, err := f.opt.Compile(winersPlan())
	if err != nil {
		t.Fatal(err)
	}
	out := w.Explain()
	for _, want := range []string{
		"plan W: 2 MR job(s)",
		"NODE1 (udf)", "NODE2 (filter <- NODE1)",
		"materializes: v_", "A: ", "F: ", "K: {twtr.user_id}",
		"Cm=", "map-in 1: twtr",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
}
