package optimizer

import (
	"fmt"
	"hash/fnv"

	"opportune/internal/afk"
	"opportune/internal/cost"
	"opportune/internal/expr"
	"opportune/internal/meta"
	"opportune/internal/obs"
	"opportune/internal/plan"
	"opportune/internal/udf"
)

// Optimizer compiles and costs plans against a catalog.
type Optimizer struct {
	Cat    *meta.Catalog
	Params cost.Params
	Eval   *expr.Evaluator

	// annEst caches output-cardinality estimates by annotation fingerprint
	// across Compile calls, so that every plan producing the same logical
	// output is estimated identically — the consistency BFREWRITE's
	// termination and work-efficiency arguments assume. The rewriter costs
	// many alternative plans for the same targets during one search; the
	// first estimate computed for an annotation wins. Callers reset it
	// between queries (statistics change as views accumulate).
	annEst map[string]cost.Stats

	// DisableCombiners turns off map-side combining for group-by jobs
	// (execution and estimation); used by the combiner ablation.
	DisableCombiners bool

	// DisablePartitionAware turns off partition-aware planning: jobs never
	// take the partition-preserving execution path, estimates never price
	// eliminated shuffle bytes, and compiled jobs stop declaring output
	// layouts. The partition experiment's baseline arm flips this.
	DisablePartitionAware bool

	// DisableFusion turns off map-pipeline fusion: compiled jobs run their
	// operator chains through the row-at-a-time interpreter instead of the
	// fused columnar batch kernels. Outputs, volumes, and simulated seconds
	// are identical either way (the fusion differential oracle proves it);
	// only wall-clock changes. The fusion experiment's baseline arm and
	// the interpreter arm of the differential tests flip this.
	DisableFusion bool

	// DisableReduceFusion turns off reduce-side fusion only: combiners and
	// reducers run the row-at-a-time aggPhys interpreter and partition-
	// local grouped jobs keep their map-only kernels (no cross-boundary
	// fusion), while map-pipeline fusion stays on. Same wall-clock-only
	// contract as DisableFusion, which implies it. The reduce-fusion
	// benchmarks' baseline arm flips this.
	DisableReduceFusion bool

	// Obs, when set, receives estimate-cache hit/miss counters. Planning is
	// deterministic (and serialized by the session), so these counters are
	// reproducible across runs.
	Obs *obs.Registry

	// Fork-mode fields (set by ForkEstimates, nil on the root optimizer):
	// baseEst is the parent's annEst, frozen for the duration of the
	// parallel region; estLog records every annotation-level estimate access
	// in task-local order so MergeEstimates can replay the accesses — and
	// the hit/miss counters they would have produced — against the real
	// cache in deterministic fold order.
	baseEst map[string]cost.Stats
	estLog  *[]EstAccess

	// gen counts ClearEstimates calls; rewrite-layer memos key on it so a
	// statistics reset invalidates every cached probe and plan cost.
	gen uint64
}

// EstAccess is one recorded annotation-estimate access of a forked
// optimizer: the annotation canon, the stats the fork resolved, and whether
// the catalog (not the query-local cache) supplied them.
type EstAccess struct {
	Canon   string
	Stats   cost.Stats
	Catalog bool
}

func (o *Optimizer) combinersOn() bool { return !o.DisableCombiners }

// ClearEstimates drops the cross-plan estimate cache; call between queries.
// It also bumps the estimate generation, invalidating rewrite-layer memos.
func (o *Optimizer) ClearEstimates() {
	o.annEst = make(map[string]cost.Stats)
	o.gen++
}

// EstGen returns the estimate-cache generation: it changes exactly when
// ClearEstimates resets the statistics context, so memos keyed on it are
// invalidated at the same points a serial search would recompute.
func (o *Optimizer) EstGen() uint64 { return o.gen }

// ForkEstimates returns a child optimizer for one parallel probe task. The
// child reads the parent's estimate cache as a frozen base, writes its own
// overlay, and logs every annotation-level access instead of counting it;
// the parent stays untouched until MergeEstimates replays the log. Because
// estimates are consistent — the same annotation always resolves to the
// same stats, whichever plan computes them — a fork's overlay entries are
// byte-identical to what the serial search would have cached, and the
// replayed hit/miss counts equal the serial counts at any pool size.
func (o *Optimizer) ForkEstimates() *Optimizer {
	c := *o
	c.baseEst = o.annEst
	c.annEst = make(map[string]cost.Stats)
	log := make([]EstAccess, 0, 64)
	c.estLog = &log
	c.Obs = nil // counters come from the replay, not the fork
	return &c
}

// MergeEstimates replays one fork's access log against the real cache.
// Callers replay forks in a deterministic order (the serial probe order);
// each access then classifies as hit or miss exactly as it would have in
// serial execution, keeping the counters — part of the byte-identical
// determinism contract — independent of pool size and scheduling.
func (o *Optimizer) MergeEstimates(f *Optimizer) {
	if f == nil || f.estLog == nil {
		return
	}
	for _, a := range *f.estLog {
		if a.Catalog {
			o.Obs.Counter("optimizer_estimate_cache_hits_total", "src", "catalog").Inc()
			continue
		}
		if _, ok := o.annEst[a.Canon]; ok {
			o.Obs.Counter("optimizer_estimate_cache_hits_total", "src", "query").Inc()
		} else {
			o.Obs.Counter("optimizer_estimate_cache_misses_total").Inc()
			o.annEst[a.Canon] = a.Stats
		}
	}
	*f.estLog = (*f.estLog)[:0]
}

// New creates an optimizer. eval supplies implementations of opaque filter
// predicates; pass a fresh evaluator if the workload has none.
func New(cat *meta.Catalog, params cost.Params, eval *expr.Evaluator) *Optimizer {
	if eval == nil {
		eval = expr.NewEvaluator()
	}
	return &Optimizer{Cat: cat, Params: params, Eval: eval, annEst: make(map[string]cost.Stats)}
}

// JobNode is one MR job in the compiled plan W — a rewritable target
// (together with its ancestors) in the paper's terms.
type JobNode struct {
	Index   int
	Logical *plan.Node // boundary logical node whose output this job materializes
	Deps    []*JobNode

	Ann     afk.Annotation
	OutCols []string
	Est     cost.Stats     // estimated output cardinality
	EstCost cost.Breakdown // estimated cost of this job alone
	EstSpec cost.JobSpec   // estimated volumes behind EstCost (engine pre-size hints)

	// PartKeyCols and PartParts record the partition-preserving match found
	// for this job (0,0 when it must shuffle): the inputs' declared layout
	// prefix-matches the job's ordered shuffle key over PartKeyCols leading
	// key columns distributed across PartParts buckets.
	PartKeyCols int
	PartParts   int

	// ViewName is the deterministic dataset name this job materializes as:
	// derived from the annotation fingerprint, so semantically identical
	// jobs across queries share one materialization.
	ViewName string
	// PlanFP is the syntactic fingerprint of the producing logical subplan.
	PlanFP string

	// streams are the compiled input pipelines (one per boundary input).
	streams []stream
}

// Work is the compiled plan W: a DAG of MR jobs in topological order with
// the sink last (NODE_n).
type Work struct {
	Nodes []*JobNode
	Root  *plan.Node
}

// Sink returns NODE_n.
func (w *Work) Sink() *JobNode { return w.Nodes[len(w.Nodes)-1] }

// TotalCost is COST(W): the sum of the estimated costs of all jobs.
func (w *Work) TotalCost() float64 {
	var t float64
	for _, n := range w.Nodes {
		t += n.EstCost.Total()
	}
	return t
}

// CostThrough is COST(W_i): the cost of the sub-plan rooted at node i —
// node i plus all its ancestors.
func (w *Work) CostThrough(i int) float64 {
	seen := make(map[int]bool)
	var rec func(*JobNode) float64
	rec = func(n *JobNode) float64 {
		if seen[n.Index] {
			return 0
		}
		seen[n.Index] = true
		t := n.EstCost.Total()
		for _, d := range n.Deps {
			t += rec(d)
		}
		return t
	}
	return rec(w.Nodes[i])
}

// stream is one input of a boundary node: a source dataset (or upstream
// job) plus the map-side pipeline applied to it.
type stream struct {
	srcDataset string   // set when the source is a stored dataset
	srcJob     *JobNode // set when the source is an upstream job
	ops        []*plan.Node
	srcCols    []string
	outNode    *plan.Node // the logical node feeding the boundary (post-pipeline)
}

func (s stream) inputName() string {
	if s.srcJob != nil {
		return s.srcJob.ViewName
	}
	return s.srcDataset
}

// isBoundary reports whether a logical node ends an MR job: every shuffle
// operator does (joins, group-bys, aggregate UDFs).
func (o *Optimizer) isBoundary(n *plan.Node) bool {
	switch n.Kind {
	case plan.KindJoin, plan.KindGroupAgg, plan.KindSort:
		return true
	case plan.KindUDF:
		if d, ok := o.Cat.UDFs.Get(n.UDFName); ok {
			return d.Kind == udf.KindAgg
		}
	}
	return false
}

// Compile annotates the plan and cuts it into the job DAG W, attaching the
// logical-expression and cost annotations to every node.
func (o *Optimizer) Compile(root *plan.Node) (*Work, error) {
	if err := plan.Annotate(root, o.Cat); err != nil {
		return nil, err
	}
	if root.Kind == plan.KindScan {
		return nil, fmt.Errorf("optimizer: trivial plan (bare scan of %s)", root.Dataset)
	}
	w := &Work{Root: root}
	est := newEstimator(o.Cat, o.annEst)
	est.obs = o.Obs
	est.base = o.baseEst
	est.log = o.estLog
	byBoundary := make(map[*plan.Node]*JobNode)

	var build func(n *plan.Node) (*JobNode, error)
	build = func(n *plan.Node) (*JobNode, error) {
		if j, ok := byBoundary[n]; ok {
			return j, nil
		}
		j := &JobNode{Logical: n, Ann: n.Ann, OutCols: n.OutCols}

		// Collect one stream per boundary input; for map-only jobs (the
		// root of a pipeline with no shuffle) there is a single stream and
		// no reduce.
		var inputs []*plan.Node
		if o.isBoundary(n) {
			inputs = n.Inputs
		} else {
			inputs = []*plan.Node{n}
		}
		for _, in := range inputs {
			st, err := o.collectStream(in, build)
			if err != nil {
				return nil, err
			}
			if st.srcJob != nil {
				j.Deps = append(j.Deps, st.srcJob)
			}
			j.streams = append(j.streams, st)
		}

		j.Est = est.stats(n)
		j.EstCost = o.estimateJobCost(j, est)
		j.ViewName = ViewNameFor(n.Ann)
		j.PlanFP = n.Fingerprint()
		j.Index = len(w.Nodes)
		w.Nodes = append(w.Nodes, j)
		byBoundary[n] = j
		return j, nil
	}

	// The sink job: if the root is itself a boundary it is that job;
	// otherwise a map-only job materializes the trailing pipeline.
	if _, err := build(root); err != nil {
		return nil, err
	}
	return w, nil
}

// collectStream walks from the boundary input down to its source (a scan or
// an upstream boundary), gathering the map-side pipeline operators.
func (o *Optimizer) collectStream(n *plan.Node, build func(*plan.Node) (*JobNode, error)) (stream, error) {
	var ops []*plan.Node
	cur := n
	for {
		if cur.Kind == plan.KindScan {
			// reverse ops into execution order
			rev(ops)
			return stream{srcDataset: cur.Dataset, ops: ops, srcCols: cur.OutCols, outNode: n}, nil
		}
		if o.isBoundary(cur) {
			j, err := build(cur)
			if err != nil {
				return stream{}, err
			}
			rev(ops)
			return stream{srcJob: j, ops: ops, srcCols: cur.OutCols, outNode: n}, nil
		}
		ops = append(ops, cur)
		cur = cur.Inputs[0]
	}
}

func rev(ops []*plan.Node) {
	for i, j := 0, len(ops)-1; i < j; i, j = i+1, j-1 {
		ops[i], ops[j] = ops[j], ops[i]
	}
}

// estimateJobCost prices one job with the optimizer-side (calibrated)
// scalars.
func (o *Optimizer) estimateJobCost(j *JobNode, est *estimator) cost.Breakdown {
	spec := cost.JobSpec{}
	boundary := j.Logical
	mapOnly := !o.isBoundary(boundary)

	for _, st := range j.streams {
		var src cost.Stats
		if st.srcJob != nil {
			src = st.srcJob.Est
		} else if t, ok := o.Cat.Table(st.srcDataset); ok {
			src = t.Stats
		}
		spec.InputBytes += src.Bytes
		spec.InputRows += src.Rows
		for _, op := range st.ops {
			spec.MapFns = append(spec.MapFns, o.localFn(op, false))
		}
		if !mapOnly {
			out := est.stats(st.outNode)
			spec.ShuffleBytes += out.Bytes + 8*out.Rows // key overhead
			spec.ShuffleRows += out.Rows
		}
	}
	if !mapOnly {
		switch boundary.Kind {
		case plan.KindJoin:
			spec.MapFns = append(spec.MapFns, cost.LocalFn{Ops: []cost.OpType{cost.OpAttr}, Scalar: 1})
			spec.ReduceFns = append(spec.ReduceFns, cost.LocalFn{Ops: []cost.OpType{cost.OpGroup, cost.OpFilter}, Scalar: 1})
		case plan.KindGroupAgg:
			spec.ReduceFns = append(spec.ReduceFns, cost.LocalFn{Ops: []cost.OpType{cost.OpGroup}, Scalar: 1})
			if o.combinersOn() && o.Params.SplitRows > 0 {
				// Combiners shrink the shuffle to at most one partial row
				// per (group, split).
				spec.CombineFns = append(spec.CombineFns, cost.LocalFn{Ops: []cost.OpType{cost.OpGroup}, Scalar: 1})
				spec.CombineRows = spec.ShuffleRows
				nSplits := (spec.InputRows + o.Params.SplitRows - 1) / o.Params.SplitRows
				if nSplits < 1 {
					nSplits = 1
				}
				combined := j.Est.Rows * nSplits
				if combined < spec.ShuffleRows {
					spec.ShuffleBytes = int64(float64(combined)*j.Est.AvgRowBytes()) + 8*combined
					spec.ShuffleRows = combined
				}
			}
		case plan.KindUDF:
			d, _ := o.Cat.UDFs.Get(boundary.UDFName)
			spec.MapFns = append(spec.MapFns, cost.LocalFn{Ops: d.MapOps, Scalar: d.EffectiveScalar()})
			spec.ReduceFns = append(spec.ReduceFns, cost.LocalFn{Ops: d.ReduceOps, Scalar: d.EffectiveScalar()})
		case plan.KindSort:
			// Single-reducer total sort: everything shuffles to one task.
			spec.ReduceFns = append(spec.ReduceFns, cost.LocalFn{Ops: []cost.OpType{cost.OpGroup}, Scalar: 1})
		}
	}
	if !mapOnly {
		if kc, parts := o.partitionMatch(j); kc > 0 {
			// Every shuffle record routes by a key prefix its input bucket
			// already determines, so the whole shuffle is node-local.
			j.PartKeyCols, j.PartParts = kc, parts
			spec.LocalShuffleBytes = spec.ShuffleBytes
		}
	}
	spec.OutputBytes = j.Est.Bytes
	j.EstSpec = spec
	return o.Params.JobCost(spec)
}

// resolveParts concretizes a plan-level layout: Parts == 0 on a partitioned
// node means "bucketed on these keys, count chosen by the writer", which the
// optimizer resolves to the configured bucket count (the one compiled jobs
// declare for their outputs).
func (o *Optimizer) resolveParts(p afk.Partitioning) afk.Partitioning {
	if len(p.Sigs) == 0 {
		return afk.Partitioning{}
	}
	if p.Parts > 0 {
		return p
	}
	if o.Params.DefaultPartitions <= 0 {
		return afk.Partitioning{}
	}
	return afk.Partitioning{Sigs: p.Sigs, Parts: o.Params.DefaultPartitions}
}

// partitionMatch decides whether one boundary job can take the partition-
// preserving execution path: every input stream's layout must prefix-match
// the job's ordered shuffle key — same leading key attributes (by signature,
// so the property survives renames and projections) and one common bucket
// count. It returns the number of leading encoded key columns that determine
// the bucket and that bucket count, or (0, 0) when the job must shuffle.
func (o *Optimizer) partitionMatch(j *JobNode) (int, int) {
	if o.DisablePartitionAware {
		return 0, 0
	}
	boundary := j.Logical
	switch boundary.Kind {
	case plan.KindGroupAgg:
		if len(boundary.Keys) == 0 || len(j.streams) != 1 {
			return 0, 0
		}
		in := j.streams[0].outNode
		keyIDs := make([]string, len(boundary.Keys))
		for i, k := range boundary.Keys {
			s := in.Ann.SigOf(k)
			if s == nil {
				return 0, 0
			}
			keyIDs[i] = s.ID()
		}
		return o.prefixHit(in.Part, keyIDs)
	case plan.KindJoin:
		// Co-partitioned join: both sides hashed on exactly their join
		// column with the same bucket count. The bucket function is a
		// universal hash of the encoded value, so equal join keys land in
		// the same bucket number on both relations.
		if len(j.streams) != 2 {
			return 0, 0
		}
		l, r := j.streams[0].outNode, j.streams[1].outNode
		lp, rp := o.resolveParts(l.Part), o.resolveParts(r.Part)
		if !lp.IsPartitioned() || !rp.IsPartitioned() || lp.Parts != rp.Parts {
			return 0, 0
		}
		ls, rs := l.Ann.SigOf(boundary.LCol), r.Ann.SigOf(boundary.RCol)
		if ls == nil || rs == nil {
			return 0, 0
		}
		if !lp.PrefixMatch([]string{ls.ID()}) || !rp.PrefixMatch([]string{rs.ID()}) {
			return 0, 0
		}
		return 1, lp.Parts
	case plan.KindUDF:
		// Aggregate UDFs qualify only with the default pre-map, where the
		// emitted shuffle key is exactly the key-arg columns in order; a
		// custom pre-map may derive keys we cannot identify by signature.
		d, ok := o.Cat.UDFs.Get(boundary.UDFName)
		if !ok || d.Kind != udf.KindAgg || d.PreMap != nil || len(d.KeyArgs) == 0 || len(j.streams) != 1 {
			return 0, 0
		}
		in := j.streams[0].outNode
		keyIDs := make([]string, len(d.KeyArgs))
		for i, ka := range d.KeyArgs {
			if ka < 0 || ka >= len(boundary.UDFArgs) {
				return 0, 0
			}
			s := in.Ann.SigOf(boundary.UDFArgs[ka])
			if s == nil {
				return 0, 0
			}
			keyIDs[i] = s.ID()
		}
		return o.prefixHit(in.Part, keyIDs)
	}
	return 0, 0
}

// prefixHit resolves a layout against ordered shuffle-key signature IDs.
func (o *Optimizer) prefixHit(p afk.Partitioning, keyIDs []string) (int, int) {
	rp := o.resolveParts(p)
	if !rp.IsPartitioned() || !rp.PrefixMatch(keyIDs) {
		return 0, 0
	}
	return len(rp.Sigs), rp.Parts
}

// localFn describes a pipeline operator for costing. trueScalar selects the
// engine-side (intrinsic) scalar instead of the calibrated one.
func (o *Optimizer) localFn(op *plan.Node, trueScalar bool) cost.LocalFn {
	switch op.Kind {
	case plan.KindProject:
		return cost.LocalFn{Ops: []cost.OpType{cost.OpAttr}, Scalar: 1}
	case plan.KindFilter:
		return cost.LocalFn{Ops: []cost.OpType{cost.OpFilter}, Scalar: 1}
	case plan.KindUDF:
		if d, ok := o.Cat.UDFs.Get(op.UDFName); ok {
			s := d.EffectiveScalar()
			if trueScalar {
				s = d.TrueScalar
			}
			return cost.LocalFn{Ops: d.MapOps, Scalar: s}
		}
	}
	return cost.LocalFn{Ops: []cost.OpType{cost.OpAttr}, Scalar: 1}
}

// ViewNameFor derives the deterministic materialization name of an
// annotation.
func ViewNameFor(ann afk.Annotation) string {
	h := fnv.New64a()
	h.Write([]byte(ann.Canon()))
	return fmt.Sprintf("v_%016x", h.Sum64())
}
