// Package optimizer turns annotated logical plans into the job DAG W the
// rewriter searches over: it cuts plans into MR jobs at shuffle boundaries,
// attaches the two per-node annotations of §2.1 — the logical (A,F,K)
// expression and the estimated execution cost — and compiles jobs into
// executable form for the engine.
package optimizer

import (
	"opportune/internal/cost"
	"opportune/internal/expr"
	"opportune/internal/meta"
	"opportune/internal/obs"
	"opportune/internal/plan"
	"opportune/internal/udf"
)

// Default selectivity heuristics. Accuracy matters little — the cost model
// only guides plan ranking (§4.2) — but they are shared by original and
// rewritten plans, so comparisons are apples-to-apples.
const (
	selEq     = 0.10
	selNe     = 0.90
	selRange  = 0.33
	selOpaque = 0.25
	// groupRatio is the fallback group-count ratio when no distinct hint is
	// available.
	groupRatio = 0.10
	// explodeFactor is the assumed fan-out of exploding map UDFs.
	explodeFactor = 3.0
	// keyWidth/valWidth are assumed encoded widths of key and derived
	// attribute values.
	keyWidth = 13.0
	valWidth = 16.0
)

// estimator computes cardinality estimates per logical node, memoized by
// node pointer.
type estimator struct {
	cat    *meta.Catalog
	memo   map[*plan.Node]cost.Stats
	dmemo  map[*plan.Node]map[string]int64 // per-node per-column distinct estimates
	annEst map[string]cost.Stats           // cross-plan estimates by annotation (owned by the Optimizer)
	obs    *obs.Registry

	// Fork mode (parallel probing): base is the parent's frozen annEst,
	// annEst above is the task-local overlay, and every annotation-level
	// access is appended to log instead of counted — MergeEstimates replays
	// it later in deterministic order.
	base map[string]cost.Stats
	log  *[]EstAccess
}

func newEstimator(cat *meta.Catalog, annEst map[string]cost.Stats) *estimator {
	if annEst == nil {
		annEst = make(map[string]cost.Stats)
	}
	return &estimator{
		cat:    cat,
		memo:   make(map[*plan.Node]cost.Stats),
		dmemo:  make(map[*plan.Node]map[string]int64),
		annEst: annEst,
	}
}

// stats estimates the output cardinality of a node. A node semantically
// identical to a materialized view uses the view's measured statistics, so
// the estimate depends on the logical output, not on the plan producing it
// — the consistency property BFREWRITE's termination condition assumes.
func (e *estimator) stats(n *plan.Node) cost.Stats {
	if s, ok := e.memo[n]; ok {
		return s
	}
	canon := ""
	if n.Kind != plan.KindScan {
		// Annotate caches the canon alongside the annotation; fall back for
		// nodes annotated by other means (tests building plans by hand).
		if canon = n.AnnCanon(); canon == "" {
			canon = n.Ann.Canon()
		}
		if t, ok := e.cat.ByAnnotation(canon); ok && t.Stats.Rows > 0 {
			if e.log != nil {
				*e.log = append(*e.log, EstAccess{Canon: canon, Stats: t.Stats, Catalog: true})
			} else {
				e.obs.Counter("optimizer_estimate_cache_hits_total", "src", "catalog").Inc()
			}
			e.memo[n] = t.Stats
			return t.Stats
		}
		if s, ok := e.lookupAnn(canon); ok {
			if e.log != nil {
				*e.log = append(*e.log, EstAccess{Canon: canon, Stats: s})
			} else {
				e.obs.Counter("optimizer_estimate_cache_hits_total", "src", "query").Inc()
			}
			e.memo[n] = s
			return s
		}
		if e.log == nil {
			e.obs.Counter("optimizer_estimate_cache_misses_total").Inc()
		}
	}
	var s cost.Stats
	switch n.Kind {
	case plan.KindScan:
		if t, ok := e.cat.Table(n.Dataset); ok {
			s = t.Stats
		}
	case plan.KindProject:
		in := e.stats(n.Inputs[0])
		frac := float64(len(n.Cols)+1) / float64(len(n.Inputs[0].OutCols)+1)
		s = cost.Stats{Rows: in.Rows, Bytes: int64(float64(in.Bytes) * frac)}
	case plan.KindFilter:
		s = e.stats(n.Inputs[0]).Scale(predSel(n.Pred))
	case plan.KindJoin:
		l, r := e.stats(n.Inputs[0]), e.stats(n.Inputs[1])
		d := maxI(e.distinct(n.Inputs[0], n.LCol), e.distinct(n.Inputs[1], n.RCol))
		if d < 1 {
			d = 1
		}
		rows := l.Rows * r.Rows / d
		if rows < 1 && l.Rows > 0 && r.Rows > 0 {
			rows = 1
		}
		s = cost.Stats{Rows: rows, Bytes: int64(float64(rows) * (l.AvgRowBytes() + r.AvgRowBytes()))}
	case plan.KindGroupAgg:
		in := e.stats(n.Inputs[0])
		rows := e.groupCount(n.Inputs[0], n.Keys, in.Rows)
		width := keyWidth*float64(len(n.Keys)) + valWidth*float64(len(n.Aggs)) + 4
		s = cost.Stats{Rows: rows, Bytes: int64(float64(rows) * width)}
	case plan.KindSort:
		in := e.stats(n.Inputs[0])
		s = in
		if n.Limit >= 0 && n.Limit < in.Rows {
			s = cost.Stats{Rows: n.Limit, Bytes: int64(float64(n.Limit) * in.AvgRowBytes())}
		}
	case plan.KindUDF:
		in := e.stats(n.Inputs[0])
		d, ok := e.cat.UDFs.Get(n.UDFName)
		if !ok {
			s = in
			break
		}
		if d.Kind == udf.KindMap {
			rows := float64(in.Rows)
			if d.Explode {
				rows *= explodeFactor
			}
			if d.Filters {
				rows *= selOpaque
			}
			width := in.AvgRowBytes() + valWidth*float64(len(d.OutNames))
			s = cost.Stats{Rows: int64(rows), Bytes: int64(rows * width)}
		} else {
			var keyCols []string
			if !d.DerivedKeys {
				for _, ka := range d.KeyArgs {
					keyCols = append(keyCols, n.UDFArgs[ka])
				}
			}
			rows := e.groupCount(n.Inputs[0], keyCols, in.Rows)
			width := keyWidth*float64(len(d.KeyNames)) + valWidth*float64(len(d.OutNames)) + 4
			s = cost.Stats{Rows: rows, Bytes: int64(float64(rows) * width)}
		}
	}
	e.memo[n] = s
	if canon != "" {
		e.annEst[canon] = s
		if e.log != nil {
			// A fork logs its miss at insert time; replay classifies the
			// access against the real cache, so the count still lands as a
			// miss exactly when the serial search would have missed.
			*e.log = append(*e.log, EstAccess{Canon: canon, Stats: s})
		}
	}
	return s
}

// lookupAnn resolves an annotation estimate: the task-local overlay first,
// then (fork mode) the parent's frozen base. The two never share a canon —
// overlay entries are created only on a base miss.
func (e *estimator) lookupAnn(canon string) (cost.Stats, bool) {
	if s, ok := e.annEst[canon]; ok {
		return s, true
	}
	if e.base != nil {
		s, ok := e.base[canon]
		return s, ok
	}
	return cost.Stats{}, false
}

// groupCount estimates the number of groups keyed by the given columns.
func (e *estimator) groupCount(in *plan.Node, keys []string, rows int64) int64 {
	if len(keys) == 0 {
		if rows > 0 {
			return 1 // global aggregate
		}
		return 0
	}
	g := int64(1)
	for _, k := range keys {
		d := e.distinct(in, k)
		if d <= 0 {
			d = int64(float64(rows) * groupRatio)
			if d < 1 {
				d = 1
			}
		}
		if g > rows/maxI(d, 1) {
			g = rows // cap early to avoid overflow
		} else {
			g *= d
		}
	}
	if g > rows {
		g = rows
	}
	if g < 1 && rows > 0 {
		g = 1
	}
	return g
}

// distinct estimates the distinct count of a column at a node: table hints
// at scans, propagated (capped by row estimates) through other operators,
// defaulting to groupRatio of the rows for derived columns.
func (e *estimator) distinct(n *plan.Node, col string) int64 {
	if m, ok := e.dmemo[n]; ok {
		if d, ok := m[col]; ok {
			return d
		}
	}
	var d int64
	switch n.Kind {
	case plan.KindScan:
		if t, ok := e.cat.Table(n.Dataset); ok {
			d = t.DistinctOf(col)
		}
	case plan.KindProject, plan.KindFilter, plan.KindUDF, plan.KindSort:
		if len(n.Inputs) > 0 && n.Inputs[0].Ann.SigOf(col) != nil {
			d = e.distinct(n.Inputs[0], col)
		}
	case plan.KindJoin:
		if n.Inputs[0].Ann.SigOf(col) != nil {
			d = e.distinct(n.Inputs[0], col)
		} else if n.Inputs[1].Ann.SigOf(col) != nil {
			d = e.distinct(n.Inputs[1], col)
		}
	case plan.KindGroupAgg:
		for _, k := range n.Keys {
			if k == col {
				d = e.distinct(n.Inputs[0], col)
			}
		}
	}
	rows := e.stats(n).Rows
	if d <= 0 {
		d = int64(float64(rows) * groupRatio)
	}
	if d > rows {
		d = rows
	}
	if d < 1 && rows > 0 {
		d = 1
	}
	if e.dmemo[n] == nil {
		e.dmemo[n] = make(map[string]int64)
	}
	e.dmemo[n][col] = d
	return d
}

// predSel is the selectivity heuristic for one predicate.
func predSel(p expr.Pred) float64 {
	switch p.Kind {
	case expr.KindCmp:
		switch p.Op {
		case expr.Eq:
			return selEq
		case expr.Ne:
			return selNe
		default:
			return selRange
		}
	case expr.KindOpaque:
		return selOpaque
	default:
		return selRange
	}
}

func maxI(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
