package optimizer

import (
	"fmt"
	"sort"

	"opportune/internal/cost"
	"opportune/internal/data"
	"opportune/internal/mr"
	"opportune/internal/plan"
	"opportune/internal/storage"
	"opportune/internal/udf"
	"opportune/internal/value"
)

// Executable compiles the job DAG into runnable engine jobs in topological
// order. Every job materializes its output under its deterministic view
// name; when finalName is nonempty the sink additionally gets that name as
// its output (the named result table of a CREATE TABLE ... AS query).
func (o *Optimizer) Executable(w *Work, finalName string) ([]*mr.Job, error) {
	jobs := make([]*mr.Job, 0, len(w.Nodes))
	for _, jn := range w.Nodes {
		out := jn.ViewName
		if finalName != "" && jn == w.Sink() {
			out = finalName
		}
		job, err := o.executableJob(jn, out)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, job)
	}
	return jobs, nil
}

// pipeline is a compiled map-side operator chain: it transforms one source
// row into zero or more rows of the boundary-input schema.
type pipeline func(r data.Row, emit func(data.Row))

// pipelineFactory instantiates a pipeline for one map task. Column
// resolution and predicate compilation happen once at build time; only
// per-task state (the exploding-UDF row tag) is created per instantiation,
// seeded from the TaskCtx so tags are unique yet schedule-independent.
type pipelineFactory func(ctx mr.TaskCtx) pipeline

// buildPipeline compiles a stream's operator chain against its source
// columns into a per-task factory, also returning the engine-side
// local-function costs.
func (o *Optimizer) buildPipeline(st stream) (pipelineFactory, []cost.LocalFn, error) {
	cols := st.srcCols
	var stages []pipelineFactory
	var fns []cost.LocalFn
	for _, op := range st.ops {
		sf, err := o.buildStage(op, cols)
		if err != nil {
			return nil, nil, err
		}
		stages = append(stages, sf)
		cols = op.OutCols
		fns = append(fns, o.localFn(op, true))
	}
	return func(ctx mr.TaskCtx) pipeline {
		fn := pipeline(func(r data.Row, emit func(data.Row)) { emit(r) })
		for _, sf := range stages {
			stage := sf(ctx)
			prev := fn
			fn = func(r data.Row, emit func(data.Row)) {
				prev(r, func(mid data.Row) { stage(mid, emit) })
			}
		}
		return fn
	}, fns, nil
}

// stateless wraps a pure stage as a factory returning the shared closure.
func stateless(p pipeline) pipelineFactory {
	return func(mr.TaskCtx) pipeline { return p }
}

// buildStage compiles a single pipeline operator given its input columns.
func (o *Optimizer) buildStage(op *plan.Node, inCols []string) (pipelineFactory, error) {
	inSchema := data.NewSchema(inCols...)
	switch op.Kind {
	case plan.KindProject:
		idxs := make([]int, len(op.Cols))
		for i, c := range op.Cols {
			ix, ok := inSchema.Index(c)
			if !ok {
				return nil, fmt.Errorf("optimizer: project column %q missing at execution", c)
			}
			idxs[i] = ix
		}
		return stateless(func(r data.Row, emit func(data.Row)) {
			out := make(data.Row, len(idxs))
			for i, ix := range idxs {
				out[i] = r[ix]
			}
			emit(out)
		}), nil

	case plan.KindFilter:
		pred, err := o.Eval.Compile(op.Pred, inSchema)
		if err != nil {
			return nil, err
		}
		return stateless(func(r data.Row, emit func(data.Row)) {
			if pred(r) {
				emit(r)
			}
		}), nil

	case plan.KindUDF:
		d, ok := o.Cat.UDFs.Get(op.UDFName)
		if !ok || d.Kind != udf.KindMap {
			return nil, fmt.Errorf("optimizer: %q is not a map UDF", op.UDFName)
		}
		argIdx := make([]int, len(op.UDFArgs))
		for i, c := range op.UDFArgs {
			ix, ok := inSchema.Index(c)
			if !ok {
				return nil, fmt.Errorf("optimizer: UDF arg column %q missing at execution", c)
			}
			argIdx[i] = ix
		}
		params := op.UDFParams
		explode := d.Explode
		return func(ctx mr.TaskCtx) pipeline {
			// The exploded-row tag is the relation's record key: it only
			// needs to be unique and deterministic. Each task counts up
			// from its first input row's global ordinal shifted past any
			// plausible per-task emission count, so tags never collide
			// across tasks and never depend on scheduling.
			rowTag := ctx.GlobalRow << 20
			return func(r data.Row, emit func(data.Row)) {
				args := make([]value.V, len(argIdx))
				for i, ix := range argIdx {
					args[i] = r[ix]
				}
				for _, outVals := range d.Map(args, params) {
					out := make(data.Row, 0, len(r)+len(outVals)+1)
					out = append(out, r...)
					out = append(out, outVals...)
					if explode {
						rowTag++
						out = append(out, value.NewInt(rowTag))
					}
					emit(out)
				}
			}
		}, nil
	}
	return nil, fmt.Errorf("optimizer: operator %s cannot run map-side", op.Kind)
}

// rowEmit forwards one pipeline-output row into the job's shuffle/output
// boundary: key building, side tagging, partial-state construction. It is
// the single emission contract shared by the interpreted and fused map
// paths — both produce boundary-input rows, and the same rowEmit turns them
// into shuffle records, so the two paths emit byte-identical streams by
// construction.
type rowEmit func(input int, row data.Row, emit mr.Emit)

// boundaryFactory instantiates per-task boundary state (the key encoder)
// for one map task.
type boundaryFactory func(ctx mr.TaskCtx) rowEmit

// attachMapSide wires a job's map side: the interpreted MapFactory always
// (it is the engine's fallback contract), and — iff the job classified
// fused — a BatchMapFactory running each stream's fused program with a
// lazily-built interpreter replay for runtime bailouts. When a cross-
// boundary agg kernel is supplied (partition-local grouped jobs), the batch
// map instead runs scan→filter→project→group→partial-finalize in one pass,
// emitting already-combined records; this path is attached even when the
// map chain alone was not fusion-eligible (a bare scan runs the identity
// program), in which case the report claims no mr_fused_* map work.
func (o *Optimizer) attachMapSide(job *mr.Job, mkPipes mkPipesFn, progs []*fusedProg, bf boundaryFactory, cross *aggKernel) {
	job.MapFactory = func(ctx mr.TaskCtx) mr.MapFunc {
		pipes := mkPipes(ctx)
		be := bf(ctx)
		return func(input int, r data.Row, emit mr.Emit) {
			pipes[input](r, func(row data.Row) { be(input, row, emit) })
		}
	}
	if cross != nil {
		mapFused := job.Fused
		job.BatchMapFactory = func(ctx mr.TaskCtx) mr.BatchMapFunc {
			be := bf(ctx)
			var pipes []pipeline // interpreter arm, built only on runtime bailout
			return func(input int, rows []data.Row, emit mr.Emit) mr.BatchReport {
				sel, bufs, ok := runFusedStages(progs[input], rows)
				if !ok {
					if pipes == nil {
						pipes = mkPipes(ctx)
					}
					sink := func(row data.Row) { be(input, row, emit) }
					for _, r := range rows {
						pipes[input](r, sink)
					}
					return mr.BatchReport{Fallback: mapFused}
				}
				n := cross.batchCross(progs[input], rows, bufs, sel, emit)
				releaseFusedBufs(sel, bufs)
				rep := mr.BatchReport{Combined: true, CombineRows: n}
				if mapFused {
					rep.Fused = true
					rep.Rows = int64(len(rows))
				}
				return rep
			}
		}
		return
	}
	if !job.Fused {
		return
	}
	job.BatchMapFactory = func(ctx mr.TaskCtx) mr.BatchMapFunc {
		be := bf(ctx)
		var pipes []pipeline // interpreter arm, built only on runtime bailout
		return func(input int, rows []data.Row, emit mr.Emit) mr.BatchReport {
			sink := func(row data.Row) { be(input, row, emit) }
			if runFusedBatch(progs[input], rows, sink) {
				return mr.BatchReport{Fused: true, Rows: int64(len(rows))}
			}
			if pipes == nil {
				pipes = mkPipes(ctx)
			}
			for _, r := range rows {
				pipes[input](r, sink)
			}
			return mr.BatchReport{Fallback: true}
		}
	}
}

// classifyFusion compiles each stream's fused program and stamps the job's
// fusion classification. A job is eligible when any stream has operators to
// fuse; it runs fused only when every operator stream compiled (all-or-
// nothing per job, so a batch never mixes paths across streams of one
// boundary). Bare-scan streams inside a fused job get identity programs.
// The first failing stream's reason wins; DisableFusion short-circuits
// without compiling.
func (o *Optimizer) classifyFusion(jn *JobNode, job *mr.Job, progs []*fusedProg) {
	eligible, allFused := false, true
	reason := ""
	for i, st := range jn.streams {
		if len(st.ops) == 0 {
			progs[i] = identityProg(len(st.srcCols))
			continue
		}
		eligible = true
		if o.DisableFusion {
			allFused = false
			if reason == "" {
				reason = mr.FuseDisabled
			}
			continue
		}
		p, r := o.buildFused(st)
		if p == nil {
			allFused = false
			if reason == "" {
				reason = r
				if reason == "" {
					reason = mr.FuseUnsupportedOp
				}
			}
			continue
		}
		progs[i] = p
	}
	job.FusedEligible = eligible
	job.Fused = eligible && allFused
	if eligible && !job.Fused {
		job.FuseFallback = reason
	}
}

// executableJob compiles one JobNode into an engine job.
func (o *Optimizer) executableJob(jn *JobNode, outName string) (*mr.Job, error) {
	boundary := jn.Logical
	job := &mr.Job{
		Name:         fmt.Sprintf("job%d-%s", jn.Index, boundary.Kind),
		Output:       outName,
		OutputKind:   storage.View,
		OutputSchema: data.NewSchema(jn.OutCols...),
		// Cardinality hints from the estimator: pre-size only, the engine
		// never lets them affect results or accounting.
		EstShuffleRows: jn.EstSpec.ShuffleRows,
		EstGroups:      jn.Est.Rows,
		EstOutputRows:  jn.Est.Rows,
	}
	if !o.DisablePartitionAware {
		// Execute the layout match found at estimation time, and declare the
		// layout of the bytes this job writes (reducers write bucket files —
		// the opportunistic byproduct downstream jobs can exploit).
		job.PartitionKeyCols = jn.PartKeyCols
		job.PartitionParts = jn.PartParts
		if op := o.resolveParts(boundary.Part); op.IsPartitioned() {
			job.OutputPartSigs = append([]string(nil), op.Sigs...)
			job.OutputPartParts = op.Parts
		}
	}
	factories := make([]pipelineFactory, len(jn.streams))
	for i, st := range jn.streams {
		pf, fns, err := o.buildPipeline(st)
		if err != nil {
			return nil, err
		}
		factories[i] = pf
		job.Inputs = append(job.Inputs, st.inputName())
		job.MapCost = append(job.MapCost, fns...)
	}
	// Every compiled job uses a per-task MapFactory: instantiation is
	// cheap (column resolution already happened), and it is what keeps
	// stateful stages race-free under the engine's parallel map phase.
	mkPipes := func(ctx mr.TaskCtx) []pipeline {
		pipes := make([]pipeline, len(factories))
		for i, pf := range factories {
			pipes[i] = pf(ctx)
		}
		return pipes
	}
	progs := make([]*fusedProg, len(jn.streams))
	o.classifyFusion(jn, job, progs)

	var bf boundaryFactory
	var spec *aggSpec
	var err error
	if !o.isBoundary(boundary) {
		// Map-only job: single stream, pipeline output is the job output.
		job.MapOutSchema = job.OutputSchema
		bf = func(mr.TaskCtx) rowEmit {
			return func(_ int, row data.Row, emit mr.Emit) { emit("", row) }
		}
	} else {
		switch boundary.Kind {
		case plan.KindJoin:
			bf, err = o.joinBoundary(jn, job)
		case plan.KindGroupAgg:
			bf, spec, err = o.groupAggBoundary(jn, job)
		case plan.KindUDF:
			bf, err = o.aggUDFBoundary(jn, job)
		case plan.KindSort:
			bf, err = o.sortBoundary(jn, job)
		default:
			err = fmt.Errorf("optimizer: unexpected boundary %s", boundary.Kind)
		}
		if err != nil {
			return nil, err
		}
	}
	cross := o.classifyReduceFusion(jn, job, spec, progs)
	o.attachMapSide(job, mkPipes, progs, bf, cross)
	return job, nil
}

// mkPipesFn instantiates every stream's pipeline for one map task.
type mkPipesFn func(ctx mr.TaskCtx) []pipeline

// joinBoundary compiles an equi-join: both sides shuffle on the join key;
// rows are padded to a shared width with a side tag (a co-group, §3.2).
func (o *Optimizer) joinBoundary(jn *JobNode, job *mr.Job) (boundaryFactory, error) {
	boundary := jn.Logical
	lCols := jn.streams[0].outNode.OutCols
	rCols := jn.streams[1].outNode.OutCols
	lIdx, ok := indexOf(lCols, boundary.LCol)
	if !ok {
		return nil, fmt.Errorf("optimizer: join key %q missing from left stream", boundary.LCol)
	}
	rIdx, ok := indexOf(rCols, boundary.RCol)
	if !ok {
		return nil, fmt.Errorf("optimizer: join key %q missing from right stream", boundary.RCol)
	}
	// Shuffle schema: side tag + left columns + right columns (null-padded).
	shufCols := make([]string, 0, 1+len(lCols)+len(rCols))
	shufCols = append(shufCols, "_side")
	for _, c := range lCols {
		shufCols = append(shufCols, "_l_"+c)
	}
	for _, c := range rCols {
		shufCols = append(shufCols, "_r_"+c)
	}
	job.MapOutSchema = data.NewSchema(shufCols...)
	width := 1 + len(lCols) + len(rCols)

	bf := func(mr.TaskCtx) rowEmit {
		var enc data.KeyEncoder
		return func(input int, row data.Row, emit mr.Emit) {
			out := make(data.Row, width)
			out[0] = value.NewInt(int64(input))
			var key value.V
			if input == 0 {
				copy(out[1:], row)
				key = row[lIdx]
			} else {
				copy(out[1+len(lCols):], row)
				key = row[rIdx]
			}
			if key.IsNull() {
				return // null keys never join
			}
			emit(enc.KeyOf(key), out)
		}
	}
	job.Reduce = func(_ string, rows []data.Row, emit func(data.Row)) {
		var ls, rs []data.Row
		for _, r := range rows {
			if r[0].Int() == 0 {
				ls = append(ls, r[1:1+len(lCols)])
			} else {
				rs = append(rs, r[1+len(lCols):])
			}
		}
		// Output columns: left columns then the right columns that survived
		// (OutCols computed at annotation time).
		rKeep := make([]int, 0, len(rCols))
		for i := len(lCols); i < len(jn.OutCols); i++ {
			ix, _ := indexOf(rCols, jn.OutCols[i])
			rKeep = append(rKeep, ix)
		}
		for _, l := range ls {
			for _, r := range rs {
				out := make(data.Row, 0, len(jn.OutCols))
				out = append(out, l...)
				for _, ix := range rKeep {
					out = append(out, r[ix])
				}
				emit(out)
			}
		}
	}
	job.ReduceCost = []cost.LocalFn{{Ops: []cost.OpType{cost.OpGroup, cost.OpFilter}, Scalar: 1}}
	job.MapCost = append(job.MapCost, cost.LocalFn{Ops: []cost.OpType{cost.OpAttr}, Scalar: 1})
	return bf, nil
}

// groupAggJob compiles a group-by with built-in aggregates as a two-phase
// aggregation: the map side emits per-row partial states, a combiner merges
// partials within each map split (shrinking the shuffle), and the reducer
// merges and finalizes. All built-ins are algebraic (AVG decomposes into
// sum+count partials).
func (o *Optimizer) groupAggBoundary(jn *JobNode, job *mr.Job) (boundaryFactory, *aggSpec, error) {
	boundary := jn.Logical
	inCols := jn.streams[0].outNode.OutCols
	keyIdx := make([]int, len(boundary.Keys))
	for i, k := range boundary.Keys {
		ix, ok := indexOf(inCols, k)
		if !ok {
			return nil, nil, fmt.Errorf("optimizer: group key %q missing from stream", k)
		}
		keyIdx[i] = ix
	}
	aggs := make([]aggPhys, len(boundary.Aggs))
	shufCols := make([]string, 0, len(keyIdx)+2*len(aggs))
	for _, k := range boundary.Keys {
		shufCols = append(shufCols, "_k_"+k)
	}
	off := len(keyIdx)
	for i, a := range boundary.Aggs {
		srcIdx := -1
		if a.Col != "" {
			ix, ok := indexOf(inCols, a.Col)
			if !ok {
				return nil, nil, fmt.Errorf("optimizer: aggregate column %q missing from stream", a.Col)
			}
			srcIdx = ix
		}
		aggs[i] = aggPhys{fn: a.Func, src: srcIdx, off: off}
		for p := 0; p < aggs[i].width(); p++ {
			shufCols = append(shufCols, fmt.Sprintf("_p%d_%d", i, p))
		}
		off += aggs[i].width()
	}
	job.MapOutSchema = data.NewSchema(shufCols...)
	nKeys := len(keyIdx)
	keyIdxs := keyRange(nKeys)

	bf := func(mr.TaskCtx) rowEmit {
		var enc data.KeyEncoder
		return func(_ int, row data.Row, emit mr.Emit) {
			out := make(data.Row, 0, len(shufCols))
			for _, ix := range keyIdx {
				out = append(out, row[ix])
			}
			for _, a := range aggs {
				out = append(out, a.initPartials(row)...)
			}
			emit(enc.Key(out, keyIdxs), out)
		}
	}
	mergeGroup := func(rows []data.Row) data.Row {
		acc := rows[0].Clone()
		for _, r := range rows[1:] {
			for _, a := range aggs {
				a.merge(acc, r)
			}
		}
		for _, a := range aggs {
			a.foldSum(acc, rows)
		}
		return acc
	}
	job.Combine = func(_ string, rows []data.Row, emit func(data.Row)) {
		emit(mergeGroup(rows))
	}
	job.Reduce = func(_ string, rows []data.Row, emit func(data.Row)) {
		acc := mergeGroup(rows)
		out := make(data.Row, 0, len(jn.OutCols))
		out = append(out, acc[:nKeys]...)
		for _, a := range aggs {
			out = append(out, a.finalize(acc))
		}
		emit(out)
	}
	if !o.combinersOn() {
		job.Combine = nil
	}
	job.CombineCost = []cost.LocalFn{{Ops: []cost.OpType{cost.OpGroup}, Scalar: 1}}
	job.ReduceCost = []cost.LocalFn{{Ops: []cost.OpType{cost.OpGroup}, Scalar: 1}}
	spec := &aggSpec{keyIdx: keyIdx, nKeys: nKeys, aggs: aggs, shufW: len(shufCols), outW: nKeys + len(aggs)}
	return bf, spec, nil
}

func keyRange(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// aggPhys is the physical (partial-state) form of one aggregate: src is the
// input column (-1 for COUNT(*)), off the first partial column in the
// shuffle row.
type aggPhys struct {
	fn  plan.AggFunc
	src int
	off int
}

// width is the number of partial-state columns (AVG carries sum and count).
func (a aggPhys) width() int {
	if a.fn == plan.AggAvg {
		return 2
	}
	return 1
}

// initPartials builds the partial state for one input row.
func (a aggPhys) initPartials(row data.Row) []value.V {
	switch a.fn {
	case plan.AggCount:
		if a.src < 0 || !row[a.src].IsNull() {
			return []value.V{value.NewInt(1)}
		}
		return []value.V{value.NewInt(0)}
	case plan.AggSum:
		if row[a.src].IsNull() {
			return []value.V{value.NewFloat(0)}
		}
		return []value.V{value.NewFloat(row[a.src].Float())}
	case plan.AggAvg:
		if row[a.src].IsNull() {
			return []value.V{value.NewFloat(0), value.NewInt(0)}
		}
		return []value.V{value.NewFloat(row[a.src].Float()), value.NewInt(1)}
	case plan.AggMin, plan.AggMax:
		return []value.V{row[a.src]}
	}
	return []value.V{value.NullV}
}

// merge folds row's partial state into acc (in place).
func (a aggPhys) merge(acc, row data.Row) {
	switch a.fn {
	case plan.AggCount:
		acc[a.off] = value.NewInt(acc[a.off].Int() + row[a.off].Int())
	case plan.AggSum:
		acc[a.off] = value.NewFloat(acc[a.off].Float() + row[a.off].Float())
	case plan.AggAvg:
		acc[a.off] = value.NewFloat(acc[a.off].Float() + row[a.off].Float())
		acc[a.off+1] = value.NewInt(acc[a.off+1].Int() + row[a.off+1].Int())
	case plan.AggMin, plan.AggMax:
		v := row[a.off]
		if v.IsNull() {
			return
		}
		cur := acc[a.off]
		if cur.IsNull() ||
			(a.fn == plan.AggMin && value.Compare(v, cur) < 0) ||
			(a.fn == plan.AggMax && value.Compare(v, cur) > 0) {
			acc[a.off] = v
		}
	}
}

// foldSum replaces the float-sum partial at a.off with a Neumaier-
// compensated fold over the whole group, overwriting the naive left fold
// merge accumulated (COUNT/MIN/MAX partials and AVG's count column are
// exact and keep merge's result). Combiner partials and the reducer's
// final merge both pass through here, so the value finalize returns is
// within 1 ulp of the exactly rounded group sum at any Workers x
// ReduceTasks setting — and the group order the engine feeds is
// deterministic, so the fold stays byte-identical across parallelism.
func (a aggPhys) foldSum(acc data.Row, rows []data.Row) {
	if a.fn != plan.AggSum && a.fn != plan.AggAvg {
		return
	}
	var k value.Kahan
	for _, r := range rows {
		k.Add(r[a.off].Float())
	}
	acc[a.off] = value.NewFloat(k.Value())
}

// finalize converts the merged partial state into the output value.
func (a aggPhys) finalize(acc data.Row) value.V {
	switch a.fn {
	case plan.AggCount:
		return acc[a.off]
	case plan.AggSum:
		return acc[a.off]
	case plan.AggAvg:
		n := acc[a.off+1].Int()
		if n == 0 {
			return value.NullV
		}
		return value.NewFloat(acc[a.off].Float() / float64(n))
	case plan.AggMin, plan.AggMax:
		return acc[a.off]
	}
	return value.NullV
}

// aggUDFBoundary compiles an aggregate UDF: PreMap map-side, Reduce per
// group.
func (o *Optimizer) aggUDFBoundary(jn *JobNode, job *mr.Job) (boundaryFactory, error) {
	boundary := jn.Logical
	d, ok := o.Cat.UDFs.Get(boundary.UDFName)
	if !ok || d.Kind != udf.KindAgg {
		return nil, fmt.Errorf("optimizer: %q is not an aggregate UDF", boundary.UDFName)
	}
	inCols := jn.streams[0].outNode.OutCols
	argIdx := make([]int, len(boundary.UDFArgs))
	for i, c := range boundary.UDFArgs {
		ix, ok := indexOf(inCols, c)
		if !ok {
			return nil, fmt.Errorf("optimizer: UDF arg column %q missing from stream", c)
		}
		argIdx[i] = ix
	}
	params := boundary.UDFParams
	nKeys := len(d.KeyNames)
	payloadW := d.PayloadWidth()

	shufCols := make([]string, 0, nKeys+payloadW)
	for _, k := range d.KeyNames {
		shufCols = append(shufCols, "_k_"+k)
	}
	for i := 0; i < payloadW; i++ {
		shufCols = append(shufCols, fmt.Sprintf("_p%d", i))
	}
	job.MapOutSchema = data.NewSchema(shufCols...)

	preMap := d.PreMap
	if preMap == nil {
		keyArgs := d.KeyArgs
		preMap = func(args, _ []value.V) ([]value.V, []value.V, bool) {
			keys := make([]value.V, len(keyArgs))
			isKey := make(map[int]bool, len(keyArgs))
			for i, ka := range keyArgs {
				keys[i] = args[ka]
				isKey[ka] = true
			}
			payload := make([]value.V, 0, len(args)-len(keyArgs))
			for i, a := range args {
				if !isKey[i] {
					payload = append(payload, a)
				}
			}
			return keys, payload, true
		}
	}
	keyIdxs := make([]int, nKeys)
	for i := range keyIdxs {
		keyIdxs[i] = i
	}
	bf := func(mr.TaskCtx) rowEmit {
		var enc data.KeyEncoder
		return func(_ int, row data.Row, emit mr.Emit) {
			args := make([]value.V, len(argIdx))
			for i, ix := range argIdx {
				args[i] = row[ix]
			}
			keys, payload, keep := preMap(args, params)
			if !keep {
				return
			}
			out := make(data.Row, 0, nKeys+payloadW)
			out = append(out, keys...)
			out = append(out, payload...)
			for len(out) < nKeys+payloadW {
				out = append(out, value.NullV)
			}
			emit(enc.Key(out, keyIdxs), out)
		}
	}
	job.Reduce = func(_ string, rows []data.Row, emit func(data.Row)) {
		keys := rows[0][:nKeys]
		payloads := make([][]value.V, len(rows))
		for i, r := range rows {
			payloads[i] = r[nKeys:]
		}
		outVals := d.Reduce(keys, payloads, params)
		if outVals == nil {
			return
		}
		out := make(data.Row, 0, nKeys+len(outVals))
		out = append(out, keys...)
		out = append(out, outVals...)
		emit(out)
	}
	job.MapCost = append(job.MapCost, cost.LocalFn{Ops: d.MapOps, Scalar: d.TrueScalar})
	job.ReduceCost = []cost.LocalFn{{Ops: d.ReduceOps, Scalar: d.TrueScalar}}
	return bf, nil
}

// sortBoundary compiles ORDER BY [LIMIT] as a single-reducer total sort
// (the naive Hive strategy): every row shuffles under one key; the reducer
// sorts and truncates.
func (o *Optimizer) sortBoundary(jn *JobNode, job *mr.Job) (boundaryFactory, error) {
	boundary := jn.Logical
	inCols := jn.streams[0].outNode.OutCols
	sortIdx := make([]int, len(boundary.SortCols))
	for i, c := range boundary.SortCols {
		ix, ok := indexOf(inCols, c)
		if !ok {
			return nil, fmt.Errorf("optimizer: sort column %q missing from stream", c)
		}
		sortIdx[i] = ix
	}
	desc := boundary.SortDesc
	limit := boundary.Limit
	job.MapOutSchema = data.NewSchema(inCols...)
	bf := func(mr.TaskCtx) rowEmit {
		return func(_ int, row data.Row, emit mr.Emit) { emit("", row) }
	}
	job.Reduce = func(_ string, rows []data.Row, emit func(data.Row)) {
		sorted := append([]data.Row(nil), rows...)
		sort.SliceStable(sorted, func(a, b int) bool {
			for i, ix := range sortIdx {
				c := value.Compare(sorted[a][ix], sorted[b][ix])
				if len(desc) > i && desc[i] {
					c = -c
				}
				if c != 0 {
					return c < 0
				}
			}
			return false
		})
		for i, r := range sorted {
			if limit >= 0 && int64(i) >= limit {
				return
			}
			emit(r)
		}
	}
	job.ReduceCost = []cost.LocalFn{{Ops: []cost.OpType{cost.OpGroup}, Scalar: 1}}
	return bf, nil
}

func indexOf(cols []string, c string) (int, bool) {
	for i, x := range cols {
		if x == c {
			return i, true
		}
	}
	return -1, false
}
