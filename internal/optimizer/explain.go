package optimizer

import (
	"fmt"
	"strings"
)

// Explain renders the compiled job DAG with both per-node annotations of
// §2.1 — the logical (A,F,K) expression and the estimated cost — plus the
// materialization name each job's output is retained under. This is the
// system's EXPLAIN output.
func (w *Work) Explain() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "plan W: %d MR job(s), estimated total %.4fs\n", len(w.Nodes), w.TotalCost())
	for _, jn := range w.Nodes {
		fmt.Fprintf(&sb, "\nNODE%d (%s", jn.Index+1, jn.Logical.Kind)
		if len(jn.Deps) > 0 {
			deps := make([]string, len(jn.Deps))
			for i, d := range jn.Deps {
				deps[i] = fmt.Sprintf("NODE%d", d.Index+1)
			}
			fmt.Fprintf(&sb, " <- %s", strings.Join(deps, ", "))
		}
		sb.WriteString(")\n")
		fmt.Fprintf(&sb, "  materializes: %s  (est. %d rows, %d bytes)\n", jn.ViewName, jn.Est.Rows, jn.Est.Bytes)
		fmt.Fprintf(&sb, "  cost: %s\n", jn.EstCost)
		fmt.Fprintf(&sb, "  A: %s\n", strings.Join(jn.Ann.Names(), ", "))
		fmt.Fprintf(&sb, "  F: %s\n", jn.Ann.F)
		keys := make([]string, 0, len(jn.Ann.K))
		for _, s := range jn.Ann.K.Sigs() {
			keys = append(keys, s.String())
		}
		fmt.Fprintf(&sb, "  K: {%s}\n", strings.Join(keys, ", "))
		for i, st := range jn.streams {
			ops := make([]string, len(st.ops))
			for j, op := range st.ops {
				ops[j] = op.Kind.String()
			}
			pipeline := "(direct)"
			if len(ops) > 0 {
				pipeline = strings.Join(ops, " -> ")
			}
			fmt.Fprintf(&sb, "  map-in %d: %s %s\n", i+1, st.inputName(), pipeline)
		}
	}
	return sb.String()
}
