// Map-pipeline fusion: compile a stream's Project/Filter/map-UDF chain into
// one schema-specialized batch kernel instead of interpreting it stage by
// stage (the Tupleware direction — compile the workflow, don't interpret
// it). A fused kernel processes a whole map split as a columnar batch:
//
//   - Projections compile away entirely: they only remap column references,
//     so no row is ever materialized between stages.
//   - Filters compact a selection vector in place, with type-specialized
//     comparison fast paths for the numeric and string column kinds that
//     replicate value.Compare exactly.
//   - Non-exploding map UDFs write their outputs into pooled, row-indexed
//     column buffers (internal/data.Col) drawn from the mr arenas; argument
//     slices are reused across rows (no workload UDF retains them — the
//     fuzz oracle would catch one that did).
//
// Rows materialize exactly once, in the final loop over the surviving
// selection, and only then reach the job's boundary emitter. Anything the
// compiler can't prove fusable (exploding UDFs, unknown operator or
// predicate shapes, schema disagreements) falls back to the row-at-a-time
// interpreter — per job at compile time, per split at runtime if a UDF
// violates its declared single-output contract mid-batch. Fallbacks are
// never errors; they are counted in the mr_fused_* family.
package optimizer

import (
	"strings"

	"opportune/internal/data"
	"opportune/internal/expr"
	"opportune/internal/mr"
	"opportune/internal/plan"
	"opportune/internal/udf"
	"opportune/internal/value"
)

// colRef names where a virtual column lives during fused execution: a
// source-row column (src >= 0) or a fused-UDF output buffer (buf >= 0).
// Projection is just re-labeling these.
type colRef struct {
	src int
	buf int
}

// readRef resolves a colRef for row index i of the batch.
func readRef(rows []data.Row, bufs []*data.Col, r colRef, i int32) value.V {
	if r.src >= 0 {
		return rows[i][r.src]
	}
	return bufs[r.buf].Get(int(i))
}

// fusedFilter is one compiled filter stage. Exactly one of the comparison
// configs is active, chosen by kind; compilation resolved columns and
// pre-split the literal so the batch loop does no per-row dispatch beyond
// the value's own kind.
type fusedFilter struct {
	kind expr.Kind

	// KindCmp: ref op lit. numLit/strLit pre-classify the literal so the
	// kernel can take the float64/string fast path when the column value's
	// kind permits (both replicate value.Compare bit-for-bit).
	ref    colRef
	op     expr.CmpOp
	lit    value.V
	numLit bool
	litF   float64
	strLit bool
	litS   string

	// ltOK/eqOK/gtOK precompute expr.Holds for the three comparison
	// outcomes, letting the fast paths compact branch-free: the row index
	// is stored unconditionally and the write cursor advances by the
	// verdict bit, so the selectivity of the predicate never feeds a
	// data-dependent branch (the SIMD-friendly predicate layout).
	ltOK, eqOK, gtOK bool

	// KindAttrEq: ref == ref2.
	ref2 colRef

	// KindOpaque: fn(argRefs...).
	fn      expr.OpaqueFn
	argRefs []colRef
}

// fusedUDF is one compiled non-exploding map-UDF stage: gather argRefs,
// call fn, scatter the single output row into outBufs at the row's index.
// A zero-row return deselects the row (a filtering UDF); a multi-row return
// aborts the batch to the interpreter.
type fusedUDF struct {
	fn      udf.MapFn
	params  []value.V
	argRefs []colRef
	outBufs []int
}

// fusedStage is one executable stage: exactly one of filter/udf is set
// (projections compiled away into the reference maps).
type fusedStage struct {
	filter *fusedFilter
	udf    *fusedUDF
}

// fusedProg is one stream's fused program: the stage sequence, the output
// column references (the boundary-input schema), and how many UDF output
// buffers a batch needs.
type fusedProg struct {
	stages []fusedStage
	outs   []colRef
	nBufs  int
}

// identityProg is the fused form of a bare scan stream (no operators): the
// batch materializes source rows unchanged.
func identityProg(width int) *fusedProg {
	outs := make([]colRef, width)
	for i := range outs {
		outs[i] = colRef{src: i, buf: -1}
	}
	return &fusedProg{outs: outs}
}

// buildFused compiles a stream's operator chain into a fused program. On
// any unfusable construct it returns (nil, reason) with reason one of the
// mr.Fuse* taxonomy — falling back is a classification, never an error.
func (o *Optimizer) buildFused(st stream) (*fusedProg, string) {
	cols := st.srcCols
	refs := make([]colRef, len(cols))
	for i := range refs {
		refs[i] = colRef{src: i, buf: -1}
	}
	p := &fusedProg{}
	for _, op := range st.ops {
		switch op.Kind {
		case plan.KindProject:
			next := make([]colRef, len(op.Cols))
			for i, c := range op.Cols {
				ix, ok := indexOf(cols, c)
				if !ok {
					return nil, mr.FuseSchemaMismatch
				}
				next[i] = refs[ix]
			}
			refs = next

		case plan.KindFilter:
			f, ok := o.buildFusedFilter(op.Pred, cols, refs)
			if !ok {
				return nil, mr.FuseUnsupportedOp
			}
			p.stages = append(p.stages, fusedStage{filter: f})

		case plan.KindUDF:
			d, ok := o.Cat.UDFs.Get(op.UDFName)
			if !ok || d.Kind != udf.KindMap {
				return nil, mr.FuseUnsupportedOp
			}
			if d.Explode {
				// Exploding UDFs emit several tagged rows per input; the
				// chain is inherently row-oriented.
				return nil, mr.FuseExplodeUDF
			}
			u := &fusedUDF{fn: d.Map, params: op.UDFParams}
			for _, c := range op.UDFArgs {
				ix, ok := indexOf(cols, c)
				if !ok {
					return nil, mr.FuseSchemaMismatch
				}
				u.argRefs = append(u.argRefs, refs[ix])
			}
			for range d.OutNames {
				u.outBufs = append(u.outBufs, p.nBufs)
				refs = append(refs, colRef{src: -1, buf: p.nBufs})
				p.nBufs++
			}
			p.stages = append(p.stages, fusedStage{udf: u})

		default:
			return nil, mr.FuseUnsupportedOp
		}
		if len(op.OutCols) != len(refs) {
			// The annotated schema disagrees with what we derived; the
			// interpreter (which validates widths at emit time) is the safe
			// path.
			return nil, mr.FuseSchemaMismatch
		}
		cols = op.OutCols
	}
	p.outs = refs
	return p, ""
}

// buildFusedFilter compiles one predicate against the current reference
// map, mirroring expr.Evaluator.Compile's resolution rules.
func (o *Optimizer) buildFusedFilter(pr expr.Pred, cols []string, refs []colRef) (*fusedFilter, bool) {
	f := &fusedFilter{kind: pr.Kind}
	switch pr.Kind {
	case expr.KindCmp:
		ix, ok := indexOf(cols, pr.Attr)
		if !ok {
			return nil, false
		}
		f.ref = refs[ix]
		f.op = pr.Op
		f.lit = pr.Lit
		f.ltOK = expr.Holds(-1, pr.Op)
		f.eqOK = expr.Holds(0, pr.Op)
		f.gtOK = expr.Holds(1, pr.Op)
		if pr.Lit.IsNumeric() {
			f.numLit = true
			f.litF = pr.Lit.Float()
		} else if pr.Lit.Kind() == value.Str {
			f.strLit = true
			f.litS = pr.Lit.Str()
		}
	case expr.KindAttrEq:
		i1, ok1 := indexOf(cols, pr.Attr)
		i2, ok2 := indexOf(cols, pr.Attr2)
		if !ok1 || !ok2 {
			return nil, false
		}
		f.ref = refs[i1]
		f.ref2 = refs[i2]
	case expr.KindOpaque:
		fn, ok := o.Eval.Opaque(pr.Name)
		if !ok {
			return nil, false
		}
		f.fn = fn
		for _, a := range pr.Args {
			ix, ok := indexOf(cols, a)
			if !ok {
				return nil, false
			}
			f.argRefs = append(f.argRefs, refs[ix])
		}
	default:
		return nil, false
	}
	return f, true
}

// apply compacts the selection in place, keeping rows the predicate holds
// for. Semantics replicate expr.Evaluator.Compile exactly: comparisons with
// NULL are not true, numeric kinds compare by float64 (value.Compare's
// cross-numeric rule, so Int-vs-Int also goes through the float path), and
// strings compare lexicographically.
func (f *fusedFilter) apply(rows []data.Row, bufs []*data.Col, sel []int32, argBuf *[]value.V) []int32 {
	w := 0
	switch f.kind {
	case expr.KindCmp:
		for _, i := range sel {
			v := readRef(rows, bufs, f.ref, i)
			if f.numLit && v.IsNumeric() {
				// Branch-free float64 fast path (exact: Compare widens all
				// numeric pairs to float64, and NaN yields !lt && !gt — the
				// c==0 outcome, just as value.Compare reports it).
				vf := v.Float()
				lt, gt := vf < f.litF, vf > f.litF
				keep := (lt && f.ltOK) || (gt && f.gtOK) || (!lt && !gt && f.eqOK)
				sel[w] = i
				w += b2i(keep)
				continue
			}
			if v.IsNull() {
				continue
			}
			if f.strLit && v.Kind() == value.Str {
				c := strings.Compare(v.Str(), f.litS)
				keep := (c < 0 && f.ltOK) || (c > 0 && f.gtOK) || (c == 0 && f.eqOK)
				sel[w] = i
				w += b2i(keep)
				continue
			}
			if expr.Holds(value.Compare(v, f.lit), f.op) {
				sel[w] = i
				w++
			}
		}
	case expr.KindAttrEq:
		for _, i := range sel {
			a := readRef(rows, bufs, f.ref, i)
			b := readRef(rows, bufs, f.ref2, i)
			if a.IsNull() || b.IsNull() {
				continue
			}
			if value.Equal(a, b) {
				sel[w] = i
				w++
			}
		}
	case expr.KindOpaque:
		if cap(*argBuf) < len(f.argRefs) {
			*argBuf = make([]value.V, len(f.argRefs))
		}
		args := (*argBuf)[:len(f.argRefs)]
		for _, i := range sel {
			for k, r := range f.argRefs {
				args[k] = readRef(rows, bufs, r, i)
			}
			if f.fn(args) {
				sel[w] = i
				w++
			}
		}
	}
	return sel[:w]
}

// b2i is the branchless bool→int the compaction fast paths advance their
// write cursor by (the compiler lowers it to a flag materialization, not a
// jump).
func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// runFusedStages executes a fused program's stage sequence over one map
// split and returns the surviving selection plus the UDF output buffers
// (both pooled; the caller materializes rows from them and then calls
// releaseFusedBufs). ok=false — with the scratch already released — means a
// UDF declared single-output produced several rows at runtime; nothing was
// emitted yet, so the caller can replay the whole split through the row
// interpreter.
func runFusedStages(p *fusedProg, rows []data.Row) (sel []int32, bufs []*data.Col, ok bool) {
	n := len(rows)
	sel = mr.GetSel(n)
	for i := 0; i < n; i++ {
		sel = append(sel, int32(i))
	}
	if p.nBufs > 0 {
		bufs = make([]*data.Col, p.nBufs)
		for i := range bufs {
			bufs[i] = mr.GetCol(n)
		}
	}
	var argBuf []value.V
	for si := range p.stages {
		stg := &p.stages[si]
		if stg.filter != nil {
			sel = stg.filter.apply(rows, bufs, sel, &argBuf)
			continue
		}
		u := stg.udf
		if cap(argBuf) < len(u.argRefs) {
			argBuf = make([]value.V, len(u.argRefs))
		}
		args := argBuf[:len(u.argRefs)]
		w := 0
		for _, i := range sel {
			for k, r := range u.argRefs {
				args[k] = readRef(rows, bufs, r, i)
			}
			outs := u.fn(args, u.params)
			switch len(outs) {
			case 0:
				// Filtering UDF: the row drops out of the selection.
			case 1:
				for k, b := range u.outBufs {
					bufs[b].Set(int(i), outs[0][k])
				}
				sel[w] = i
				w++
			default:
				// Runtime contract violation: a non-Explode UDF multi-
				// emitted. Nothing was sunk yet; bail to the interpreter.
				releaseFusedBufs(sel, bufs)
				return nil, nil, false
			}
		}
		sel = sel[:w]
	}
	return sel, bufs, true
}

// releaseFusedBufs returns a runFusedStages scratch set to the mr pools.
func releaseFusedBufs(sel []int32, bufs []*data.Col) {
	for _, c := range bufs {
		mr.PutCol(c)
	}
	mr.PutSel(sel)
}

// runFusedBatch executes a fused program over one map split, handing each
// surviving output row to sink in input-row order. It returns false — with
// zero rows emitted — on a runtime contract violation (see runFusedStages).
func runFusedBatch(p *fusedProg, rows []data.Row, sink func(data.Row)) bool {
	sel, bufs, ok := runFusedStages(p, rows)
	if !ok {
		return false
	}
	width := len(p.outs)
	for _, i := range sel {
		out := make(data.Row, width)
		for k, r := range p.outs {
			out[k] = readRef(rows, bufs, r, i)
		}
		sink(out)
	}
	releaseFusedBufs(sel, bufs)
	return true
}
