package optimizer

import (
	"testing"

	"opportune/internal/afk"
	"opportune/internal/data"
	"opportune/internal/expr"
	"opportune/internal/mr"
	"opportune/internal/plan"
	"opportune/internal/value"
)

// benchChainPlan is the canonical fusable map chain: UDF → filter → project,
// compiling to a single map-only job.
func benchChainPlan() *plan.Node {
	return plan.Project(
		plan.Filter(plan.Apply(plan.Scan("twtr"), "UDF_WINE_SCORE", []string{"text"}),
			expr.NewCmp("wine_score", expr.Gt, value.NewFloat(0))),
		"tweet_id", "user_id", "wine_score")
}

// BenchmarkFusedMapChain compares the fused columnar kernel against the
// row-at-a-time closure interpreter over the identical compiled job and the
// identical 20k-row split. Both sub-benchmarks include the per-task factory
// call, since that is what a map task pays.
func BenchmarkFusedMapChain(b *testing.B) {
	f := newFixture(b, 20000)
	w, err := f.opt.Compile(benchChainPlan())
	if err != nil {
		b.Fatal(err)
	}
	jobs, err := f.opt.Executable(w, "bench_out")
	if err != nil {
		b.Fatal(err)
	}
	job := jobs[len(jobs)-1]
	if job.BatchMapFactory == nil || !job.Fused {
		b.Fatalf("chain did not fuse (fallback %q)", job.FuseFallback)
	}
	rel, err := f.store.Read("twtr")
	if err != nil {
		b.Fatal(err)
	}
	rows := rel.Rows()
	ctx := mr.TaskCtx{}
	var sunk int
	emit := func(_ string, _ data.Row) { sunk++ }

	b.Run("fused", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bf := job.BatchMapFactory(ctx)
			if rep := bf(0, rows, emit); !rep.Fused {
				b.Fatal("kernel bailed out")
			}
		}
	})
	b.Run("interpreted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mf := job.MapFactory(ctx)
			for _, r := range rows {
				mf(0, r, emit)
			}
		}
	})
	if sunk == 0 {
		b.Fatal("benchmark emitted nothing")
	}
}

// BenchmarkFilterCompaction isolates the branch-free selection-vector
// compaction (satellite of the reduce-fusion PR): a filter-only fused chain
// whose numeric fast path compacts the selection with data-independent
// stores, against the row interpreter evaluating the same predicate.
func BenchmarkFilterCompaction(b *testing.B) {
	f := newFixture(b, 20000)
	p := plan.Filter(plan.Scan("twtr"), expr.NewCmp("tweet_id", expr.Lt, value.NewInt(10000)))
	w, err := f.opt.Compile(p)
	if err != nil {
		b.Fatal(err)
	}
	jobs, err := f.opt.Executable(w, "bench_cmp")
	if err != nil {
		b.Fatal(err)
	}
	job := jobs[len(jobs)-1]
	if job.BatchMapFactory == nil || !job.Fused {
		b.Fatalf("filter did not fuse (fallback %q)", job.FuseFallback)
	}
	rel, err := f.store.Read("twtr")
	if err != nil {
		b.Fatal(err)
	}
	rows := rel.Rows()
	ctx := mr.TaskCtx{}
	var sunk int
	emit := func(_ string, _ data.Row) { sunk++ }
	b.Run("fused", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bf := job.BatchMapFactory(ctx)
			if rep := bf(0, rows, emit); !rep.Fused {
				b.Fatal("kernel bailed out")
			}
		}
	})
	b.Run("interpreted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mf := job.MapFactory(ctx)
			for _, r := range rows {
				mf(0, r, emit)
			}
		}
	})
	if sunk == 0 {
		b.Fatal("benchmark emitted nothing")
	}
}

// benchAggFixture compiles one grouped plan over a hash-partitioned 20k-row
// twtr (8 parts on user_id) with the given fusion knobs, single-worker so
// the numbers measure CPU, not scheduling.
func benchAggFixture(b *testing.B, disableFusion, disableReduce bool, p *plan.Node) (*fixture, []*mr.Job) {
	b.Helper()
	f := newFixture(b, 20000)
	sig := afk.BaseSig("twtr", "user_id").ID()
	f.store.SetPartitioning("twtr", []string{sig}, 8)
	f.cat.SetPartitioning("twtr", afk.Partitioning{Sigs: []string{sig}, Parts: 8})
	f.opt.DisableFusion = disableFusion
	f.opt.DisableReduceFusion = disableReduce
	f.eng.Params.SplitRows = 2048
	f.eng.Workers = 1
	w, err := f.opt.Compile(p)
	if err != nil {
		b.Fatal(err)
	}
	jobs, err := f.opt.Executable(w, "bench_agg")
	if err != nil {
		b.Fatal(err)
	}
	return f, jobs
}

func benchRunJobs(b *testing.B, f *fixture, jobs []*mr.Job) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := f.eng.RunSequence(jobs); err != nil {
			b.Fatal(err)
		}
	}
}

// groupAggBenchPlan is the 20k-row grouped workload of the acceptance bar:
// count, compensated sum, average, and a string max, grouped by the layout
// key so the fused arm folds scan→group→finalize in one pass per split.
func groupAggBenchPlan() *plan.Node {
	return plan.GroupAgg(plan.Scan("twtr"), []string{"user_id"},
		plan.AggSpec{Func: plan.AggCount, As: "n"},
		plan.AggSpec{Func: plan.AggSum, Col: "tweet_id", As: "s"},
		plan.AggSpec{Func: plan.AggAvg, Col: "tweet_id", As: "m"},
		plan.AggSpec{Func: plan.AggMax, Col: "text", As: "hi"})
}

// BenchmarkFusedGroupAgg compares the full reduce-fused execution (columnar
// agg kernels, cross-boundary fold) against the interpreted reduce path
// (arena grouper + row-at-a-time combine/reduce closures) end to end over
// identical compiled jobs.
func BenchmarkFusedGroupAgg(b *testing.B) {
	fF, jF := benchAggFixture(b, false, false, groupAggBenchPlan())
	if !jF[len(jF)-1].FusedReduce || !jF[len(jF)-1].FusedCrossBoundary {
		b.Fatal("grouped plan did not reduce-fuse across the boundary")
	}
	fI, jI := benchAggFixture(b, true, false, groupAggBenchPlan())
	b.Run("fused", func(b *testing.B) { benchRunJobs(b, fF, jF) })
	b.Run("interpreted", func(b *testing.B) { benchRunJobs(b, fI, jI) })
}

// BenchmarkPartitionLocalFusedChain stacks map work (UDF + filter) on the
// same grouped boundary: the cross arm fuses the whole chain through the
// now-local shuffle, the map-only arm stops the kernels at the map side
// (DisableReduceFusion), which was the PR-9 ceiling.
func BenchmarkPartitionLocalFusedChain(b *testing.B) {
	chain := func() *plan.Node {
		return plan.GroupAgg(
			plan.Filter(plan.Apply(plan.Scan("twtr"), "UDF_WINE_SCORE", []string{"text"}),
				expr.NewCmp("wine_score", expr.Ge, value.NewFloat(0))),
			[]string{"user_id"},
			plan.AggSpec{Func: plan.AggSum, Col: "wine_score", As: "s"},
			plan.AggSpec{Func: plan.AggCount, As: "n"},
			plan.AggSpec{Func: plan.AggAvg, Col: "tweet_id", As: "m"})
	}
	fC, jC := benchAggFixture(b, false, false, chain())
	if !jC[len(jC)-1].FusedCrossBoundary {
		b.Fatal("chain did not cross-fuse")
	}
	fM, jM := benchAggFixture(b, false, true, chain())
	if !jM[len(jM)-1].Fused || jM[len(jM)-1].FusedReduce {
		b.Fatal("map-only arm misconfigured")
	}
	b.Run("cross", func(b *testing.B) { benchRunJobs(b, fC, jC) })
	b.Run("maponly", func(b *testing.B) { benchRunJobs(b, fM, jM) })
}
