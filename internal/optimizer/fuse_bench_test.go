package optimizer

import (
	"testing"

	"opportune/internal/data"
	"opportune/internal/expr"
	"opportune/internal/mr"
	"opportune/internal/plan"
	"opportune/internal/value"
)

// benchChainPlan is the canonical fusable map chain: UDF → filter → project,
// compiling to a single map-only job.
func benchChainPlan() *plan.Node {
	return plan.Project(
		plan.Filter(plan.Apply(plan.Scan("twtr"), "UDF_WINE_SCORE", []string{"text"}),
			expr.NewCmp("wine_score", expr.Gt, value.NewFloat(0))),
		"tweet_id", "user_id", "wine_score")
}

// BenchmarkFusedMapChain compares the fused columnar kernel against the
// row-at-a-time closure interpreter over the identical compiled job and the
// identical 20k-row split. Both sub-benchmarks include the per-task factory
// call, since that is what a map task pays.
func BenchmarkFusedMapChain(b *testing.B) {
	f := newFixture(b, 20000)
	w, err := f.opt.Compile(benchChainPlan())
	if err != nil {
		b.Fatal(err)
	}
	jobs, err := f.opt.Executable(w, "bench_out")
	if err != nil {
		b.Fatal(err)
	}
	job := jobs[len(jobs)-1]
	if job.BatchMapFactory == nil || !job.Fused {
		b.Fatalf("chain did not fuse (fallback %q)", job.FuseFallback)
	}
	rel, err := f.store.Read("twtr")
	if err != nil {
		b.Fatal(err)
	}
	rows := rel.Rows()
	ctx := mr.TaskCtx{}
	var sunk int
	emit := func(_ string, _ data.Row) { sunk++ }

	b.Run("fused", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bf := job.BatchMapFactory(ctx)
			if rep := bf(0, rows, emit); !rep.Fused {
				b.Fatal("kernel bailed out")
			}
		}
	})
	b.Run("interpreted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mf := job.MapFactory(ctx)
			for _, r := range rows {
				mf(0, r, emit)
			}
		}
	})
	if sunk == 0 {
		b.Fatal("benchmark emitted nothing")
	}
}
