package optimizer

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"opportune/internal/afk"
	"opportune/internal/cost"
	"opportune/internal/data"
	"opportune/internal/expr"
	"opportune/internal/fault"
	"opportune/internal/obs"
	"opportune/internal/plan"
	"opportune/internal/storage"
	"opportune/internal/udf"
	"opportune/internal/value"
)

// fusionGrid is the parallelism grid of the fusion differential oracle —
// the same W×R points the engine-level oracles use.
var fusionGrid = []struct{ w, r int }{{1, 1}, {1, 3}, {4, 1}, {4, 3}, {8, 1}, {8, 3}}

// fusionChaosPlan scripts deterministic faults against every compiled job
// (empty Job matches all): map panics and stragglers by split index, reduce
// panics and stragglers by key shard, and one read error on the base table.
// Fused task retries must replay deterministically through it.
func fusionChaosPlan() *fault.Plan {
	return &fault.Plan{Seed: 2026, Faults: []fault.Fault{
		{Phase: fault.PhaseMap, Task: 0, Kind: fault.KindPanic, FailAttempts: 2},
		{Phase: fault.PhaseMap, Task: 1, Kind: fault.KindStraggler, Factor: 5},
		{Phase: fault.PhaseReduce, Task: 11, Kind: fault.KindPanic, FailAttempts: 1},
		{Phase: fault.PhaseReduce, Task: 29, Kind: fault.KindStraggler, Factor: 4},
		{Kind: fault.KindReadError, Dataset: "twtr", FailReads: 1},
	}}
}

// fusionWorkload covers every boundary kind and every fusable predicate and
// stage shape: a 3-stage map-only chain, a string-compare filter, an
// attribute-equality filter, group-agg over an opaque-filtered UDF chain, a
// join with chains on both sides, an aggregate UDF, a sort, and — the
// compile-time fallback — an exploding-UDF word count.
func fusionWorkload() []*plan.Node {
	scored := func() *plan.Node { return plan.Apply(plan.Scan("twtr"), "UDF_WINE_SCORE", []string{"text"}) }
	return []*plan.Node{
		plan.Project(plan.Filter(scored(), expr.NewCmp("wine_score", expr.Gt, value.NewFloat(0))),
			"tweet_id", "user_id", "wine_score"),
		plan.Project(plan.Filter(plan.Scan("twtr"), expr.NewCmp("text", expr.Gt, value.NewStr("bad day"))),
			"tweet_id", "text"),
		plan.Filter(plan.Scan("twtr"), expr.NewAttrEq("tweet_id", "user_id")),
		plan.GroupAgg(plan.Filter(scored(), expr.NewOpaque("fz_has_wine", "text")), []string{"user_id"},
			plan.AggSpec{Func: plan.AggSum, Col: "wine_score", As: "s"},
			plan.AggSpec{Func: plan.AggCount, As: "n"},
			plan.AggSpec{Func: plan.AggAvg, Col: "wine_score", As: "m"}),
		plan.JoinNodes(
			plan.GroupAgg(plan.Scan("twtr"), []string{"user_id"}, plan.AggSpec{Func: plan.AggCount, As: "n"}),
			plan.Filter(plan.Scan("prof"), expr.NewCmp("uid", expr.Lt, value.NewInt(8))),
			"user_id", "uid"),
		winersPlan(),
		plan.Sort(scored(), []string{"wine_score", "tweet_id"}, []bool{true, false}, 25),
		plan.GroupAgg(plan.Apply(plan.Scan("twtr"), "UDF_TOKENIZE", []string{"text"}),
			[]string{"word"}, plan.AggSpec{Func: plan.AggCount, As: "n"}),
		// Partition-local grouped aggregation on a bare scan: the layout on
		// twtr(user_id) makes the boundary local, so the cross kernel runs
		// over the identity program — no map operators at all.
		plan.GroupAgg(plan.Scan("twtr"), []string{"user_id"},
			plan.AggSpec{Func: plan.AggCount, As: "n"},
			plan.AggSpec{Func: plan.AggMin, Col: "text", As: "lo"},
			plan.AggSpec{Func: plan.AggMax, Col: "tweet_id", As: "hi"}),
		// Partition-local fused chain through the boundary: the UDF+filter
		// chain preserves the layout and the agg kernel folds the surviving
		// selection directly (scan→filter→group→finalize in one pass).
		plan.GroupAgg(plan.Filter(scored(), expr.NewCmp("wine_score", expr.Ge, value.NewFloat(0))),
			[]string{"user_id"},
			plan.AggSpec{Func: plan.AggSum, Col: "wine_score", As: "s"},
			plan.AggSpec{Func: plan.AggAvg, Col: "tweet_id", As: "m"},
			plan.AggSpec{Func: plan.AggMin, Col: "wine_score", As: "lo"}),
	}
}

// fusionOutcome is everything the fusion differential contract covers: per-
// query output relations (fingerprint plus raw rows), per-query annotation
// canonical forms, and the full obs counter maps.
type fusionOutcome struct {
	fps    []uint64
	rels   [][][]string
	canons [][]string
	snap   obs.Snapshot
}

// runFusionWorkload compiles and executes the whole workload on one arm.
// disable=true is the interpreter arm (DisableFusion); everything else —
// store contents, params, parallelism, fault plan — is identical across
// arms, so any output or counter divergence outside mr_fused_* is a fusion
// bug.
func runFusionWorkload(t *testing.T, chaos *fault.Plan, workers, reduceTasks int, disable bool) fusionOutcome {
	t.Helper()
	f := newFixture(t, 1000)
	prof := data.NewRelation(data.NewSchema("uid", "grade"))
	for i := 0; i < 10; i++ {
		prof.Append(data.Row{value.NewInt(int64(i)), value.NewStr(strings.Repeat("A", i%3+1))})
	}
	f.store.Put("prof", storage.Base, prof)
	f.cat.RegisterBase("prof", []string{"uid", "grade"}, "uid",
		cost.Stats{Rows: 10, Bytes: prof.EncodedSize()}, map[string]int64{"uid": 10})
	// Hash layout on twtr(user_id): grouped-by-user_id queries take the
	// partition-local path and their boundaries become cross-fusable.
	sig := afk.BaseSig("twtr", "user_id").ID()
	f.store.SetPartitioning("twtr", []string{sig}, 8)
	f.cat.SetPartitioning("twtr", afk.Partitioning{Sigs: []string{sig}, Parts: 8})
	if err := f.cat.UDFs.Register(&udf.Descriptor{
		Name: "UDF_TOKENIZE", NArgs: 1, Kind: udf.KindMap,
		OutNames: []string{"word"}, Explode: true,
		Map: func(args, _ []value.V) [][]value.V {
			var out [][]value.V
			for _, w := range strings.Fields(args[0].Str()) {
				out = append(out, []value.V{value.NewStr(w)})
			}
			return out
		},
		TrueScalar: 3,
	}); err != nil {
		t.Fatal(err)
	}
	f.opt.Eval.RegisterOpaque("fz_has_wine", func(args []value.V) bool {
		return strings.Contains(args[0].Str(), "wine")
	})
	f.opt.DisableFusion = disable
	f.eng.Params.SplitRows = 64 // many map splits per job
	f.eng.Params.ReduceTasks = reduceTasks
	f.eng.Workers = workers
	f.eng.MaxAttempts = 3
	reg := obs.NewRegistry()
	f.eng.Obs = reg
	f.store.SetObs(reg)
	if chaos != nil {
		if err := chaos.Validate(); err != nil {
			t.Fatal(err)
		}
		f.eng.Faults = fault.NewInjector(chaos)
		f.store.SetFaults(f.eng.Faults)
	}

	out := fusionOutcome{}
	for qi, p := range fusionWorkload() {
		w, err := f.opt.Compile(p)
		if err != nil {
			t.Fatalf("query %d: compile: %v", qi, err)
		}
		var canons []string
		for _, jn := range w.Nodes {
			canons = append(canons, jn.Logical.AnnCanon())
		}
		out.canons = append(out.canons, canons)
		name := fmt.Sprintf("fuse_res_%d", qi)
		jobs, err := f.opt.Executable(w, name)
		if err != nil {
			t.Fatalf("query %d: executable: %v", qi, err)
		}
		if _, _, err := f.eng.RunSequence(jobs); err != nil {
			t.Fatalf("query %d (disable=%v W=%d R=%d): %v", qi, disable, workers, reduceTasks, err)
		}
		rel, err := f.store.Read(name)
		if err != nil {
			t.Fatalf("query %d: read result: %v", qi, err)
		}
		out.fps = append(out.fps, rel.Fingerprint())
		var rows [][]string
		for _, r := range rel.Rows() {
			enc := make([]string, len(r))
			for i, v := range r {
				enc[i] = v.String()
			}
			rows = append(rows, enc)
		}
		out.rels = append(out.rels, rows)
	}
	out.snap = reg.Snapshot()
	return out
}

// stripFusedFamily copies an integer counter map without the mr_fused_*
// family — the only counters allowed to differ between arms.
func stripFusedFamily(m map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(m))
	for k, v := range m {
		if strings.HasPrefix(k, "mr_fused_") {
			continue
		}
		out[k] = v
	}
	return out
}

// TestFusionDifferentialOracle proves fused execution is invisible
// everywhere except wall-clock and its own counter family. For every point
// of the Workers × ReduceTasks grid, fault-free and under the chaos plan,
// the fused arm must match the DisableFusion interpreter arm on:
//
//   - every query's output relation, byte-identical (fingerprint and rows);
//   - every compiled job's annotation canonical form;
//   - every integer counter outside mr_fused_* — same volumes, retries,
//     straggler/speculation behavior, partition decisions;
//   - every float counter exactly (fusion changes no pricing at all, so
//     unlike the partition oracle there is no allowed float delta).
//
// Each arm must also be self-consistent across the grid against its own
// serial (W=1,R=1) reference, which is what "fused task retries replay
// deterministically" means observationally.
func TestFusionDifferentialOracle(t *testing.T) {
	for _, tc := range []struct {
		name string
		plan *fault.Plan
	}{
		{name: "fault-free", plan: nil},
		{name: "chaos", plan: fusionChaosPlan()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			refFused := runFusionWorkload(t, tc.plan, 1, 1, false)
			refInterp := runFusionWorkload(t, tc.plan, 1, 1, true)
			if len(refFused.fps) == 0 {
				t.Fatal("workload produced no results")
			}
			if tc.plan != nil && refFused.snap.Counters["mr_task_retries_total"] == 0 {
				t.Error("chaos plan injected no task retries on the fused arm")
			}
			// The fused arm really fused: jobs ran batches, and the explode
			// query fell back at compile time for the documented reason.
			if n := refFused.snap.Counters["mr_fused_jobs_total"]; n == 0 {
				t.Error("fused arm ran no fused jobs")
			}
			if n := refFused.snap.Counters["mr_fused_batches_total"]; n == 0 {
				t.Error("fused arm ran no fused batches")
			}
			if n := refFused.snap.Counters["mr_fused_fallback_total{reason=explode_udf}"]; n == 0 {
				t.Error("exploding-UDF query did not record its compile-time fallback")
			}
			if n := refFused.snap.Counters["mr_fused_runtime_fallback_total"]; n != 0 {
				t.Errorf("fused arm recorded %d runtime fallbacks, want 0", n)
			}
			// The interpreter arm recorded the knob, not fused work.
			if n := refInterp.snap.Counters["mr_fused_jobs_total"]; n != 0 {
				t.Errorf("interpreter arm ran %d fused jobs", n)
			}
			if n := refInterp.snap.Counters["mr_fused_batches_total"]; n != 0 {
				t.Errorf("interpreter arm ran %d fused batches", n)
			}
			elig := refInterp.snap.Counters["mr_fused_eligible_total"]
			disabled := refInterp.snap.Counters["mr_fused_fallback_total{reason=disabled}"]
			explode := refInterp.snap.Counters["mr_fused_fallback_total{reason=explode_udf}"]
			if elig == 0 || disabled+explode != elig {
				t.Errorf("interpreter arm: eligible %d != disabled %d + explode %d", elig, disabled, explode)
			}
			// Balance rule on both arms (metricscheck's invariant).
			for _, arm := range []fusionOutcome{refFused, refInterp} {
				var fb int64
				for k, v := range arm.snap.Counters {
					if strings.HasPrefix(k, "mr_fused_fallback_total{") {
						fb += v
					}
				}
				if e, j := arm.snap.Counters["mr_fused_eligible_total"], arm.snap.Counters["mr_fused_jobs_total"]; e != j+fb {
					t.Errorf("fusion family does not balance: eligible %d != jobs %d + fallback %d", e, j, fb)
				}
			}

			// Reduce-side fusion: grouped jobs fused their combine and reduce
			// phases and partition-local ones crossed the shuffle boundary.
			if n := refFused.snap.Counters["mr_fused_reduce_jobs_total"]; n == 0 {
				t.Error("fused arm compiled no reduce-fused jobs")
			}
			if n := refFused.snap.Counters["mr_fused_reduce_crossboundary_jobs_total"]; n == 0 {
				t.Error("fused arm fused no partition-local job across the boundary")
			}
			if n := refFused.snap.Counters["mr_fused_reduce_batches_total"]; n == 0 {
				t.Error("fused arm ran no fused combine batches")
			}
			if n := refFused.snap.Counters["mr_fused_reduce_runtime_fallback_total"]; n != 0 {
				t.Errorf("fused arm recorded %d reduce runtime fallbacks, want 0", n)
			}
			// Scripted reduce faults recover per key-shard, which a
			// whole-partition kernel cannot honor: chaos runs must bypass the
			// reduce kernel (zero groups folded) while classification and the
			// fused combiner stay on. Fault-free runs fold real groups.
			groups := refFused.snap.Counters["mr_fused_reduce_groups_total"]
			rows := refFused.snap.Counters["mr_fused_reduce_rows_total"]
			if tc.plan == nil && (groups == 0 || rows == 0) {
				t.Errorf("fault-free fused arm folded groups=%d rows=%d, want both > 0", groups, rows)
			}
			if tc.plan != nil && groups != 0 {
				t.Errorf("chaos run must bypass the fused reduce kernel, folded %d groups", groups)
			}
			// Reason taxonomy: the wine-score aggregation carries an agg UDF,
			// join/sort jobs have no distributive agg boundary.
			for _, reason := range []string{"agg_udf", "unsupported_op"} {
				if refFused.snap.Counters["mr_fused_reduce_fallback_total{reason="+reason+"}"] == 0 {
					t.Errorf("fused arm missing reduce fallback reason %q", reason)
				}
			}
			// Interpreter arm: the whole reduce family is disabled.
			if n := refInterp.snap.Counters["mr_fused_reduce_jobs_total"]; n != 0 {
				t.Errorf("interpreter arm compiled %d reduce-fused jobs", n)
			}
			rElig := refInterp.snap.Counters["mr_fused_reduce_eligible_total"]
			rDis := refInterp.snap.Counters["mr_fused_reduce_fallback_total{reason=disabled}"]
			if rElig == 0 || rDis != rElig {
				t.Errorf("interpreter arm: reduce eligible %d != disabled %d", rElig, rDis)
			}
			// Balance rule for the reduce family on both arms.
			for _, arm := range []fusionOutcome{refFused, refInterp} {
				var fb int64
				for k, v := range arm.snap.Counters {
					if strings.HasPrefix(k, "mr_fused_reduce_fallback_total{") {
						fb += v
					}
				}
				if e, j := arm.snap.Counters["mr_fused_reduce_eligible_total"], arm.snap.Counters["mr_fused_reduce_jobs_total"]; e != j+fb {
					t.Errorf("reduce fusion family does not balance: eligible %d != jobs %d + fallback %d", e, j, fb)
				}
			}

			for _, g := range fusionGrid {
				fused := runFusionWorkload(t, tc.plan, g.w, g.r, false)
				interp := runFusionWorkload(t, tc.plan, g.w, g.r, true)

				// Byte-identity of every query result, across arms and
				// against the serial references.
				if !reflect.DeepEqual(fused.fps, interp.fps) || !reflect.DeepEqual(fused.fps, refFused.fps) {
					t.Errorf("W=%d R=%d: result fingerprints diverge:\nfused  %v\ninterp %v\nref    %v",
						g.w, g.r, fused.fps, interp.fps, refFused.fps)
				}
				if !reflect.DeepEqual(fused.rels, interp.rels) {
					t.Errorf("W=%d R=%d: relation rows differ between fused and interpreted arms", g.w, g.r)
				}
				if !reflect.DeepEqual(fused.canons, interp.canons) {
					t.Errorf("W=%d R=%d: annotation canonical forms differ between arms", g.w, g.r)
				}

				// Grid self-consistency: full counter-map equality against
				// the same arm's serial run (fused family included — batch
				// and retry tallies are parallelism-independent).
				if !reflect.DeepEqual(fused.snap.Counters, refFused.snap.Counters) {
					t.Errorf("W=%d R=%d: fused counters differ from serial fused run\n got %v\nwant %v",
						g.w, g.r, fused.snap.Counters, refFused.snap.Counters)
				}
				if !reflect.DeepEqual(fused.snap.FloatCounters, refFused.snap.FloatCounters) {
					t.Errorf("W=%d R=%d: fused float counters differ from serial fused run", g.w, g.r)
				}

				// Cross-arm equality outside mr_fused_*; float counters
				// exactly equal, fusion never reprices anything.
				if got, want := stripFusedFamily(fused.snap.Counters), stripFusedFamily(interp.snap.Counters); !reflect.DeepEqual(got, want) {
					t.Errorf("W=%d R=%d: counters differ beyond the fused family\n got %v\nwant %v", g.w, g.r, got, want)
				}
				if !reflect.DeepEqual(fused.snap.FloatCounters, interp.snap.FloatCounters) {
					t.Errorf("W=%d R=%d: float counters differ between arms\n got %v\nwant %v",
						g.w, g.r, fused.snap.FloatCounters, interp.snap.FloatCounters)
				}
			}
		})
	}
}

// runOneFusionPlan executes a single plan on a fresh fixture arm and returns
// the result fingerprint and counter snapshot.
func runOneFusionPlan(t *testing.T, disable bool, register func(*fixture), p *plan.Node) (uint64, map[string]int64) {
	t.Helper()
	f := newFixture(t, 1000)
	if register != nil {
		register(f)
	}
	f.opt.DisableFusion = disable
	f.eng.Params.SplitRows = 64
	f.eng.Workers = 4
	f.eng.Params.ReduceTasks = 3
	reg := obs.NewRegistry()
	f.eng.Obs = reg
	f.store.SetObs(reg)
	w, err := f.opt.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := f.opt.Executable(w, "one_res")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.eng.RunSequence(jobs); err != nil {
		t.Fatal(err)
	}
	rel, err := f.store.Read("one_res")
	if err != nil {
		t.Fatal(err)
	}
	return rel.Fingerprint(), reg.Snapshot().Counters
}

// TestFusionExplodeFallback pins the compile-time fallback path: an
// exploding UDF in the chain forces the whole job to row mode (classified
// eligible but not fused, reason explode_udf) and the output is still
// identical to the DisableFusion arm.
func TestFusionExplodeFallback(t *testing.T) {
	register := func(f *fixture) {
		if err := f.cat.UDFs.Register(&udf.Descriptor{
			Name: "UDF_TOKENIZE", NArgs: 1, Kind: udf.KindMap,
			OutNames: []string{"word"}, Explode: true,
			Map: func(args, _ []value.V) [][]value.V {
				var out [][]value.V
				for _, w := range strings.Fields(args[0].Str()) {
					out = append(out, []value.V{value.NewStr(w)})
				}
				return out
			},
			TrueScalar: 3,
		}); err != nil {
			t.Fatal(err)
		}
	}
	p := plan.GroupAgg(plan.Apply(plan.Scan("twtr"), "UDF_TOKENIZE", []string{"text"}),
		[]string{"word"}, plan.AggSpec{Func: plan.AggCount, As: "n"})
	fpF, cF := runOneFusionPlan(t, false, register, p)
	fpI, cI := runOneFusionPlan(t, true, register, p)
	if fpF != fpI {
		t.Errorf("explode fallback output diverges: fused-arm %d interp-arm %d", fpF, fpI)
	}
	if cF["mr_fused_jobs_total"] != 0 {
		t.Errorf("exploding chain must not fuse, got %d fused jobs", cF["mr_fused_jobs_total"])
	}
	if cF["mr_fused_eligible_total"] == 0 {
		t.Error("exploding chain should still classify as fusion-eligible")
	}
	if cF["mr_fused_fallback_total{reason=explode_udf}"] == 0 {
		t.Error("explode fallback reason not recorded")
	}
	if cI["mr_fused_fallback_total{reason=disabled}"] == 0 {
		t.Error("interpreter arm should record reason=disabled")
	}
}

// TestFusionRuntimeFallback pins the per-split runtime bailout: a UDF
// declared single-output that multi-emits at runtime makes the fused kernel
// abandon the batch with zero partial emissions and replay it through the
// row interpreter. The job still counts as fused, the violating splits are
// counted as runtime fallbacks, and output matches the interpreter arm
// byte-for-byte.
func TestFusionRuntimeFallback(t *testing.T) {
	register := func(f *fixture) {
		// Declared non-exploding, but emits twice for "coffee time" rows
		// (1 in 5 of the fixture corpus) — a contract violation the kernel
		// must survive.
		if err := f.cat.UDFs.Register(&udf.Descriptor{
			Name: "UDF_VIOLATOR", NArgs: 1, Kind: udf.KindMap, OutNames: []string{"flag"},
			Map: func(args, _ []value.V) [][]value.V {
				if strings.Contains(args[0].Str(), "coffee") {
					return [][]value.V{{value.NewInt(2)}, {value.NewInt(2)}}
				}
				return [][]value.V{{value.NewInt(1)}}
			},
			TrueScalar: 4,
		}); err != nil {
			t.Fatal(err)
		}
	}
	p := plan.Project(plan.Apply(plan.Scan("twtr"), "UDF_VIOLATOR", []string{"text"}),
		"tweet_id", "flag")
	fpF, cF := runOneFusionPlan(t, false, register, p)
	fpI, cI := runOneFusionPlan(t, true, register, p)
	if fpF != fpI {
		t.Errorf("runtime fallback output diverges: fused-arm %d interp-arm %d", fpF, fpI)
	}
	if cF["mr_fused_jobs_total"] == 0 {
		t.Error("violating chain should still classify and run as fused")
	}
	if cF["mr_fused_runtime_fallback_total"] == 0 {
		t.Error("runtime contract violation not counted")
	}
	// Every split held a "coffee time" row (64-row splits over a 5-cycle
	// corpus), so every batch bailed: no batch completed fused.
	if cF["mr_fused_batches_total"] != 0 {
		t.Errorf("all batches should have bailed, got %d fused batches", cF["mr_fused_batches_total"])
	}
	if cI["mr_fused_runtime_fallback_total"] != 0 {
		t.Error("interpreter arm cannot record runtime fallbacks")
	}
}
