package optimizer

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"opportune/internal/afk"
	"opportune/internal/expr"
	"opportune/internal/plan"
	"opportune/internal/udf"
	"opportune/internal/value"
)

// fuzzChain decodes a byte string into a random but always-valid map chain
// over the fixture's twtr schema: Projects over column subsets, Filters of
// every predicate kind, well-behaved map UDFs, a filtering UDF, a declared-
// single-output UDF that violates its contract at runtime, and an exploding
// UDF — so one input space reaches the fused fast path, the compile-time
// fallback, and the runtime bailout. Returns nil when the bytes decode to a
// bare scan (nothing to test).
func fuzzChain(raw []byte) *plan.Node {
	p, _ := fuzzChainCols(raw)
	return p
}

// fuzzChainCols is fuzzChain plus the column set left in scope after the
// chain — what the agg fuzzer needs to pick valid group keys and agg inputs.
func fuzzChainCols(raw []byte) (*plan.Node, []string) {
	p := plan.Scan("twtr")
	cols := []string{"tweet_id", "user_id", "text"}
	nOps := 0
	has := func(name string) bool {
		for _, c := range cols {
			if c == name {
				return true
			}
		}
		return false
	}
	for i := 0; i+1 < len(raw) && nOps < 6; i += 2 {
		op, sel := raw[i], raw[i+1]
		pick := func() string { return cols[int(sel)%len(cols)] }
		// A UDF output column that is still in scope blocks re-applying
		// that UDF (duplicate attribute); remap those ops to a filter.
		if out, ok := map[byte]string{4: "fz_len", 5: "fz_keep", 6: "fz_v", 7: "fz_tok"}[op%8]; ok && has(out) {
			op = 3
		}
		switch op % 8 {
		case 0: // Project a non-empty column subset, no duplicates
			var keep []string
			for j, c := range cols {
				if sel&(1<<(j%8)) != 0 {
					keep = append(keep, c)
				}
			}
			if len(keep) == 0 {
				keep = []string{pick()}
			}
			p = plan.Project(p, keep...)
			cols = keep
		case 1: // numeric / string comparison filter
			c := pick()
			ops := []expr.CmpOp{expr.Eq, expr.Ne, expr.Lt, expr.Le, expr.Gt, expr.Ge}
			cmp := ops[int(sel/8)%len(ops)]
			var lit value.V
			switch sel % 3 {
			case 0:
				lit = value.NewInt(int64(sel) % 10)
			case 1:
				lit = value.NewFloat(float64(sel%20) / 4)
			default:
				lit = value.NewStr("good wine")
			}
			p = plan.Filter(p, expr.NewCmp(c, cmp, lit))
		case 2: // attribute equality
			p = plan.Filter(p, expr.NewAttrEq(pick(), cols[int(sel/16)%len(cols)]))
		case 3: // opaque predicate
			p = plan.Filter(p, expr.NewOpaque("fz_sel", pick()))
		case 4: // well-behaved map UDF
			p = plan.Apply(p, "UDF_FZ_LEN", []string{pick()})
			cols = append(append([]string{}, cols...), "fz_len")
		case 5: // filtering map UDF (0-or-1 output rows)
			p = plan.Apply(p, "UDF_FZ_MAYBE", []string{pick()})
			cols = append(append([]string{}, cols...), "fz_keep")
		case 6: // contract violator: declared single-output, multi-emits
			p = plan.Apply(p, "UDF_FZ_VIOLATOR", []string{pick()})
			cols = append(append([]string{}, cols...), "fz_v")
		default: // exploding UDF — compile-time fallback
			p = plan.Apply(p, "UDF_FZ_SPLIT", []string{pick()})
			cols = append(append([]string{}, cols...), "fz_tok")
		}
		nOps++
	}
	if nOps == 0 {
		return nil, nil
	}
	return p, cols
}

// fuzzAggChain decodes a map chain plus a trailing GroupAgg: the last three
// bytes choose the group keys and two aggregates over whatever columns the
// chain left in scope (SUM/AVG restricted to numeric columns — a mistyped
// aggregate is a compile- or run-time error on both arms, not a fusion
// difference worth fuzzing). Grouping by user_id over a chain that keeps it
// reaches the cross-boundary kernel; other keys reach the plain combine +
// reduce kernels; explode/violator ops in the chain reach the fallback and
// bailout paths under a grouped boundary.
func fuzzAggChain(raw []byte) *plan.Node {
	if len(raw) < 3 {
		return nil
	}
	p, cols := fuzzChainCols(raw[:len(raw)-3])
	if p == nil {
		p, cols = plan.Scan("twtr"), []string{"tweet_id", "user_id", "text"}
	}
	tail := raw[len(raw)-3:]
	numeric := map[string]bool{"tweet_id": true, "user_id": true, "fz_len": true, "fz_keep": true, "fz_v": true}
	keys := []string{cols[int(tail[0])%len(cols)]}
	if tail[0] >= 128 && len(cols) > 1 {
		if second := cols[int(tail[0]/8)%len(cols)]; second != keys[0] {
			keys = append(keys, second)
		}
	}
	var aggs []plan.AggSpec
	for ai, b := range tail[1:] {
		as := fmt.Sprintf("za%d", ai)
		col := cols[int(b/8)%len(cols)]
		switch b % 5 {
		case 0:
			aggs = append(aggs, plan.AggSpec{Func: plan.AggCount, As: as})
		case 1:
			if numeric[col] {
				aggs = append(aggs, plan.AggSpec{Func: plan.AggSum, Col: col, As: as})
			} else {
				aggs = append(aggs, plan.AggSpec{Func: plan.AggMin, Col: col, As: as})
			}
		case 2:
			if numeric[col] {
				aggs = append(aggs, plan.AggSpec{Func: plan.AggAvg, Col: col, As: as})
			} else {
				aggs = append(aggs, plan.AggSpec{Func: plan.AggMax, Col: col, As: as})
			}
		case 3:
			aggs = append(aggs, plan.AggSpec{Func: plan.AggMin, Col: col, As: as})
		default:
			aggs = append(aggs, plan.AggSpec{Func: plan.AggMax, Col: col, As: as})
		}
	}
	return plan.GroupAgg(p, keys, aggs...)
}

// fuzzFixture registers the fuzz UDF/predicate set on a fresh fixture arm.
// Every function is deterministic in its arguments: the differential oracle
// depends on it.
func fuzzFixture(t testing.TB, disable bool) *fixture {
	f := newFixture(t, 200)
	for _, d := range []*udf.Descriptor{
		{Name: "UDF_FZ_LEN", NArgs: 1, Kind: udf.KindMap, OutNames: []string{"fz_len"},
			Map: func(args, _ []value.V) [][]value.V {
				return [][]value.V{{value.NewInt(int64(len(args[0].String())))}}
			}, TrueScalar: 2},
		{Name: "UDF_FZ_MAYBE", NArgs: 1, Kind: udf.KindMap, OutNames: []string{"fz_keep"},
			Map: func(args, _ []value.V) [][]value.V {
				if len(args[0].String())%2 == 1 {
					return nil // filtering UDF: drop the row
				}
				return [][]value.V{{value.NewInt(1)}}
			}, TrueScalar: 2},
		{Name: "UDF_FZ_VIOLATOR", NArgs: 1, Kind: udf.KindMap, OutNames: []string{"fz_v"},
			Map: func(args, _ []value.V) [][]value.V {
				if strings.Contains(args[0].String(), "wine") {
					return [][]value.V{{value.NewInt(1)}, {value.NewInt(2)}}
				}
				return [][]value.V{{value.NewInt(0)}}
			}, TrueScalar: 2},
		{Name: "UDF_FZ_SPLIT", NArgs: 1, Kind: udf.KindMap, OutNames: []string{"fz_tok"}, Explode: true,
			Map: func(args, _ []value.V) [][]value.V {
				var out [][]value.V
				for _, w := range strings.Fields(args[0].String()) {
					out = append(out, []value.V{value.NewStr(w)})
				}
				return out
			}, TrueScalar: 2},
	} {
		if err := f.cat.UDFs.Register(d); err != nil {
			t.Fatal(err)
		}
	}
	f.opt.Eval.RegisterOpaque("fz_sel", func(args []value.V) bool {
		return len(args[0].String())%3 != 0
	})
	// Hash layout on twtr(user_id): grouped chains keyed by user_id become
	// partition-local, putting the cross-boundary kernel in the fuzz space.
	sig := afk.BaseSig("twtr", "user_id").ID()
	f.store.SetPartitioning("twtr", []string{sig}, 4)
	f.cat.SetPartitioning("twtr", afk.Partitioning{Sigs: []string{sig}, Parts: 4})
	f.opt.DisableFusion = disable
	f.eng.Params.SplitRows = 32 // several map splits per run
	return f
}

// runFuzzChain compiles and executes one decoded chain on one arm and
// returns the output rows stringified (nil, false when the chain does not
// compile — both arms must agree on that too).
func runFuzzChain(t testing.TB, disable bool, p *plan.Node) ([][]string, bool) {
	f := fuzzFixture(t, disable)
	w, err := f.opt.Compile(p)
	if err != nil {
		return nil, false
	}
	jobs, err := f.opt.Executable(w, "fz_res")
	if err != nil {
		return nil, false
	}
	if _, _, err := f.eng.RunSequence(jobs); err != nil {
		t.Fatalf("disable=%v: run: %v", disable, err)
	}
	rel, err := f.store.Read("fz_res")
	if err != nil {
		t.Fatalf("disable=%v: read: %v", disable, err)
	}
	var rows [][]string
	for _, r := range rel.Rows() {
		enc := make([]string, len(r))
		for i, v := range r {
			enc[i] = v.String()
		}
		rows = append(rows, enc)
	}
	return rows, true
}

// FuzzFusedPipeline is the fusion differential fuzzer: for every generated
// chain, fused execution must equal interpreted execution row for row — in
// order, since map tasks are deterministic — including chains that fall
// back at compile time (explode) or bail out per split at runtime
// (contract violations).
func FuzzFusedPipeline(f *testing.F) {
	// Seeds cover each op code, a mixed chain, and the two fallback paths.
	f.Add([]byte{0x00, 0x07})                                     // project
	f.Add([]byte{0x01, 0x21, 0x02, 0x35, 0x03, 0x02})             // cmp, attr-eq, opaque
	f.Add([]byte{0x04, 0x02, 0x01, 0x49, 0x00, 0x05})             // udf, filter, project
	f.Add([]byte{0x05, 0x02, 0x06, 0x02})                         // maybe, violator
	f.Add([]byte{0x07, 0x02, 0x01, 0x12})                         // explode then filter
	f.Add([]byte{0x04, 0x00, 0x04, 0x01, 0x04, 0x02, 0x01, 0x60}) // stacked udfs
	f.Fuzz(func(t *testing.T, raw []byte) {
		p := fuzzChain(raw)
		if p == nil {
			return
		}
		fused, okF := runFuzzChain(t, false, p)
		interp, okI := runFuzzChain(t, true, p)
		if okF != okI {
			t.Fatalf("arms disagree on compilability: fused=%v interp=%v", okF, okI)
		}
		if !okF {
			return
		}
		if !reflect.DeepEqual(fused, interp) {
			t.Fatalf("fused and interpreted outputs diverge\nfused:  %v\ninterp: %v", fused, interp)
		}
	})
}

// FuzzFusedAgg extends the differential fuzzer through the reduce side:
// every generated chain ends in a GroupAgg, so the combine and reduce
// kernels — and, when the group key matches the twtr layout, the
// cross-boundary kernel — must reproduce the interpreter's grouped output
// row for row in the grouper's deterministic order.
func FuzzFusedAgg(f *testing.F) {
	// Seeds: bare-scan group by user_id (cross-boundary), group by text,
	// filter then group, UDF chain then group, two-key group, explode and
	// violator chains under a grouped boundary.
	f.Add([]byte{0x01, 0x00, 0x09})                   // scan, key=user_id, count+sum
	f.Add([]byte{0x02, 0x01, 0x14})                   // scan, key=text, sum+avg-ish
	f.Add([]byte{0x01, 0x21, 0x01, 0x05, 0x11})       // cmp filter, key=user_id
	f.Add([]byte{0x04, 0x02, 0x00, 0x1b, 0x0e})       // fz_len UDF then group
	f.Add([]byte{0x00, 0x07, 0x81, 0x02, 0x23})       // project, two group keys
	f.Add([]byte{0x07, 0x02, 0x01, 0x00, 0x07})       // explode then group
	f.Add([]byte{0x06, 0x02, 0x01, 0x0a, 0x18})       // violator then group
	f.Add([]byte{0x03, 0x02, 0x05, 0x01, 0x01, 0x12}) // opaque, maybe-UDF, group
	f.Fuzz(func(t *testing.T, raw []byte) {
		p := fuzzAggChain(raw)
		if p == nil {
			return
		}
		fused, okF := runFuzzChain(t, false, p)
		interp, okI := runFuzzChain(t, true, p)
		if okF != okI {
			t.Fatalf("arms disagree on compilability: fused=%v interp=%v", okF, okI)
		}
		if !okF {
			return
		}
		if !reflect.DeepEqual(fused, interp) {
			t.Fatalf("fused and interpreted grouped outputs diverge\nfused:  %v\ninterp: %v", fused, interp)
		}
	})
}
