// Reduce-side fusion: compile the combiner and reducer of a grouped
// aggregation into columnar agg kernels instead of interpreting aggPhys
// folds row by row (the second half of the Tupleware direction — PR 9 fused
// the map side, this fuses the aggregation).
//
//   - The combine kernel folds one map task's emissions straight into typed
//     accumulator columns (int64 counts, float64 Neumaier sum+compensation
//     pairs, value.V extrema) drawn from the pooled mr column buffers,
//     grouped by dense id over the already-encoded keys with run-detection
//     for adjacent equal keys — no grouper arena, no per-row partial
//     Clone/merge, no re-boxing until the one combined record per group.
//   - The reduce kernel folds a whole reduce partition the same way and
//     emits finalized output rows with keys in ascending order — exactly
//     the order grouper.sortKeys + the k-way merge would produce.
//   - For partition-local keyed jobs the shuffle boundary is local, so the
//     cross-boundary kernel runs the combine fold directly over the fused
//     map pipeline's surviving selection: scan→filter→project→group→
//     partial-finalize in one pass, with no per-row partial row ever built.
//
// Bit-identity with the interpreter is by construction: the SUM/AVG float
// fold replicates value.Kahan's Neumaier recurrence operation for
// operation in the same order aggPhys.foldSum visits rows, COUNT/AVG-count
// are exact integer sums, and MIN/MAX replay merge's null-skipping
// value.Compare replacement. A record whose partial state disagrees with
// the compiled layout aborts the batch pre-emission and the interpreter
// replays it (the runtime-fallback contract shared with map fusion).
package optimizer

import (
	"bytes"
	"math"
	"sort"
	"sync"

	"opportune/internal/data"
	"opportune/internal/mr"
	"opportune/internal/plan"
	"opportune/internal/value"
)

// aggSpec is the physical layout of one groupAgg boundary: where the group
// keys live in the boundary-input row, the aggregate list with partial
// offsets (aggPhys), and the widths of the shuffle and output rows the
// kernels must produce.
type aggSpec struct {
	keyIdx []int // boundary-input column indices of the group keys
	nKeys  int
	aggs   []aggPhys
	shufW  int // shuffle-record width: keys + partial columns
	outW   int // output-row width: keys + one column per aggregate
}

// distributive reports whether every aggregate folds over fixed-width
// partial state the kernels specialize on. All current built-ins qualify;
// the default arm is the nondistributive_agg classification guard for any
// future holistic aggregate (MEDIAN, exact COUNT DISTINCT, ...).
func (s *aggSpec) distributive() bool {
	for _, a := range s.aggs {
		switch a.fn {
		case plan.AggCount, plan.AggSum, plan.AggAvg, plan.AggMin, plan.AggMax:
		default:
			return false
		}
	}
	return true
}

// classifyReduceFusion stamps the job's reduce-side fusion classification
// and, when the job qualifies, attaches the fused combine/reduce kernels.
// It returns the cross-boundary kernel for partition-local grouped jobs
// (nil otherwise). Mirrors classifyFusion: never errors, and every
// eligible-but-not-fused job carries exactly one fallback reason.
func (o *Optimizer) classifyReduceFusion(jn *JobNode, job *mr.Job, spec *aggSpec, progs []*fusedProg) *aggKernel {
	if job.Reduce == nil {
		return nil // map-only: no reduce side to fuse
	}
	job.FusedReduceEligible = true
	reason := ""
	switch {
	case o.DisableFusion || o.DisableReduceFusion:
		reason = mr.FuseDisabled
	case jn.Logical.Kind == plan.KindUDF:
		// Aggregate-UDF reducers run opaque user code over raw payload
		// rows; there is no typed partial state to specialize on.
		reason = mr.FuseAggUDF
	case spec == nil:
		reason = mr.FuseUnsupportedOp // join, sort: not an agg fold
	case !spec.distributive():
		reason = mr.FuseNondistributiveAgg
	case spec.shufW != job.MapOutSchema.Len() || spec.outW != len(jn.OutCols):
		reason = mr.FuseSchemaMismatch
	}
	if reason != "" {
		job.FusedReduceFallback = reason
		return nil
	}
	job.FusedReduce = true
	k := &aggKernel{spec: spec}
	if job.Combine != nil {
		job.BatchCombine = k.batchCombine
	}
	job.BatchReduce = k.batchReduce
	// Cross-shuffle fusion: a partition-local keyed job keeps every group's
	// rows inside the split's local route, so the map kernel can run the
	// combine fold in the same pass over its surviving selection. Requires
	// a combiner (the fold it replaces), a single stream with a compiled
	// program (bare scans carry the identity program), and the layout
	// match. Byte-identity needs none of these conditions — combined
	// per-split output is what the interpreted combiner produces anyway —
	// but the partition-local case is where the boundary is provably local.
	if job.Combine != nil && job.PartitionKeyCols > 0 && job.PartitionParts > 0 &&
		len(jn.streams) == 1 && progs[0] != nil {
		job.FusedCrossBoundary = true
		return k
	}
	return nil
}

// idsPool recycles the dense-group-id maps the kernels group with.
// Lookups with a []byte-to-string conversion key do not allocate; only a
// genuinely new group pays for the string.
var idsPool = sync.Pool{New: func() any { return make(map[string]int32, 64) }}

func getIDMap() map[string]int32  { return idsPool.Get().(map[string]int32) }
func putIDMap(m map[string]int32) { clear(m); idsPool.Put(m) }

// aggKernel is one groupAgg job's compiled reduce-side kernel set. It is
// stateless across invocations (per-batch state lives in aggAccs), so one
// kernel serves concurrent map tasks and reduce partitions.
type aggKernel struct {
	spec *aggSpec
}

// aggAccs is one batch invocation's accumulator state: per-aggregate typed
// columns over dense group ids, drawn from the pooled mr column buffers.
// For SUM and AVG the sum is carried as a (running sum, compensation) pair
// replicating value.Kahan's fields; COUNT and AVG's count are exact int64
// sums; MIN/MAX carry the raw running extremum.
type aggAccs struct {
	spec  *aggSpec
	cols  []*data.Col
	cnts  [][]int64
	sums  [][]float64
	comps [][]float64
	vals  [][]value.V
}

func newAggAccs(spec *aggSpec, n int) *aggAccs {
	st := &aggAccs{
		spec:  spec,
		cnts:  make([][]int64, len(spec.aggs)),
		sums:  make([][]float64, len(spec.aggs)),
		comps: make([][]float64, len(spec.aggs)),
		vals:  make([][]value.V, len(spec.aggs)),
	}
	grab := func() *data.Col {
		c := mr.GetCol(n)
		st.cols = append(st.cols, c)
		return c
	}
	for i, a := range spec.aggs {
		switch a.fn {
		case plan.AggCount:
			st.cnts[i] = grab().IntAcc(n)
		case plan.AggSum:
			st.sums[i] = grab().FloatAcc(n)
			st.comps[i] = grab().FloatAcc(n)
		case plan.AggAvg:
			st.sums[i] = grab().FloatAcc(n)
			st.comps[i] = grab().FloatAcc(n)
			st.cnts[i] = grab().IntAcc(n)
		case plan.AggMin, plan.AggMax:
			st.vals[i] = grab().ValAcc(n)
		}
	}
	return st
}

func (st *aggAccs) release() {
	for _, c := range st.cols {
		mr.PutCol(c)
	}
}

// addSum runs one step of value.Kahan's Neumaier recurrence on group g's
// (sum, compensation) pair — the same operations in the same order, so the
// final sum+comp is bit-identical to Kahan.Add folds over the same values.
func (st *aggAccs) addSum(i, g int, x float64) {
	s := st.sums[i][g]
	t := s + x
	if math.Abs(s) >= math.Abs(x) {
		st.comps[i][g] += (s - t) + x
	} else {
		st.comps[i][g] += (x - t) + s
	}
	st.sums[i][g] = t
}

// sumKind reports whether a partial value may feed the float fold the way
// aggPhys.merge/foldSum would (they call Float(), which accepts numeric
// kinds and panics otherwise — a layout violation the kernel instead
// surfaces as a pre-emission bailout so the interpreter owns the outcome).
func sumKind(v value.V) bool { return v.IsNumeric() }

// initPartial seeds group g from its first partial record. Seeding the sum
// with the value and zero compensation is bit-identical to Kahan.Add on a
// zero accumulator: t = 0+x = x and both compensation branches add exact
// zeros.
func (st *aggAccs) initPartial(g int, rec data.Row) bool {
	for i, a := range st.spec.aggs {
		switch a.fn {
		case plan.AggCount:
			if rec[a.off].Kind() != value.Int {
				return false
			}
			st.cnts[i][g] = rec[a.off].Int()
		case plan.AggSum:
			if !sumKind(rec[a.off]) {
				return false
			}
			st.sums[i][g] = rec[a.off].Float()
		case plan.AggAvg:
			if !sumKind(rec[a.off]) || rec[a.off+1].Kind() != value.Int {
				return false
			}
			st.sums[i][g] = rec[a.off].Float()
			st.cnts[i][g] = rec[a.off+1].Int()
		case plan.AggMin, plan.AggMax:
			st.vals[i][g] = rec[a.off]
		}
	}
	return true
}

// mergePartial folds one more partial record into group g — aggPhys.merge
// plus the foldSum pass, fused: counts add exactly, sums run the Neumaier
// step, extrema replay the null-skipping Compare replacement.
func (st *aggAccs) mergePartial(g int, rec data.Row) bool {
	for i, a := range st.spec.aggs {
		switch a.fn {
		case plan.AggCount:
			if rec[a.off].Kind() != value.Int {
				return false
			}
			st.cnts[i][g] += rec[a.off].Int()
		case plan.AggSum:
			if !sumKind(rec[a.off]) {
				return false
			}
			st.addSum(i, g, rec[a.off].Float())
		case plan.AggAvg:
			if !sumKind(rec[a.off]) || rec[a.off+1].Kind() != value.Int {
				return false
			}
			st.addSum(i, g, rec[a.off].Float())
			st.cnts[i][g] += rec[a.off+1].Int()
		case plan.AggMin, plan.AggMax:
			v := rec[a.off]
			if v.IsNull() {
				continue
			}
			cur := st.vals[i][g]
			if cur.IsNull() ||
				(a.fn == plan.AggMin && value.Compare(v, cur) < 0) ||
				(a.fn == plan.AggMax && value.Compare(v, cur) > 0) {
				st.vals[i][g] = v
			}
		}
	}
	return true
}

// appendPartials appends group g's combined partial state in shuffle-record
// layout (what the interpreted combiner emits for the group).
func (st *aggAccs) appendPartials(out data.Row, g int) data.Row {
	for i, a := range st.spec.aggs {
		switch a.fn {
		case plan.AggCount:
			out = append(out, value.NewInt(st.cnts[i][g]))
		case plan.AggSum:
			out = append(out, value.NewFloat(st.sums[i][g]+st.comps[i][g]))
		case plan.AggAvg:
			out = append(out, value.NewFloat(st.sums[i][g]+st.comps[i][g]), value.NewInt(st.cnts[i][g]))
		case plan.AggMin, plan.AggMax:
			out = append(out, st.vals[i][g])
		}
	}
	return out
}

// finalRow builds group g's finalized output row: keys from the group's
// first record, then aggPhys.finalize per aggregate (AVG of an all-null
// group is Null, like the interpreter).
func (st *aggAccs) finalRow(first data.Row, g int) data.Row {
	out := make(data.Row, 0, st.spec.outW)
	out = append(out, first[:st.spec.nKeys]...)
	for i, a := range st.spec.aggs {
		switch a.fn {
		case plan.AggCount:
			out = append(out, value.NewInt(st.cnts[i][g]))
		case plan.AggSum:
			out = append(out, value.NewFloat(st.sums[i][g]+st.comps[i][g]))
		case plan.AggAvg:
			n := st.cnts[i][g]
			if n == 0 {
				out = append(out, value.NullV)
			} else {
				out = append(out, value.NewFloat((st.sums[i][g]+st.comps[i][g])/float64(n)))
			}
		case plan.AggMin, plan.AggMax:
			out = append(out, st.vals[i][g])
		}
	}
	return out
}

// batchCombine is the fused combiner (mr.Job.BatchCombine): it folds one
// map task's emissions into accumulator columns and appends one combined
// record per group to scratch, in first-emission order — the grouper's
// order. Group keys reuse the records' already-encoded key strings, so the
// combine pass allocates nothing per row.
func (k *aggKernel) batchCombine(in, scratch []mr.Keyed) ([]mr.Keyed, int64, bool) {
	spec := k.spec
	st := newAggAccs(spec, len(in))
	ids := getIDMap()
	firsts := mr.GetSel(len(in))
	bail := func() ([]mr.Keyed, int64, bool) {
		st.release()
		putIDMap(ids)
		mr.PutSel(firsts)
		return scratch, 0, false
	}
	ng := 0
	prevKey := ""
	prevID := int32(-1)
	for ri := range in {
		rec := &in[ri]
		if len(rec.Row) != spec.shufW {
			return bail()
		}
		var g int32
		if prevID >= 0 && rec.Key == prevKey {
			// Run detection: clustered inputs emit long runs of one key;
			// adjacent equal keys skip the map entirely.
			g = prevID
		} else if id, ok := ids[rec.Key]; ok {
			g = id
		} else {
			g = int32(ng)
			ng++
			ids[rec.Key] = g
			firsts = append(firsts, int32(ri))
			prevKey, prevID = rec.Key, g
			if !st.initPartial(int(g), rec.Row) {
				return bail()
			}
			continue
		}
		prevKey, prevID = rec.Key, g
		if !st.mergePartial(int(g), rec.Row) {
			return bail()
		}
	}
	for g := 0; g < ng; g++ {
		first := &in[firsts[g]]
		out := make(data.Row, 0, spec.shufW)
		out = append(out, first.Row[:spec.nKeys]...)
		scratch = append(scratch, mr.Keyed{Key: first.Key, Row: st.appendPartials(out, g)})
	}
	st.release()
	putIDMap(ids)
	mr.PutSel(firsts)
	return scratch, int64(len(in)), true
}

// batchReduce is the fused reduce kernel (mr.Job.BatchReduce): it folds one
// whole reduce partition and emits finalized rows with keys in ascending
// order, matching grouper.sortKeys + the engine's k-way merge. All folding
// happens before the first emission, so a layout bailout is always
// pre-emission.
func (k *aggKernel) batchReduce(recs []mr.Keyed, emit mr.Emit) bool {
	spec := k.spec
	st := newAggAccs(spec, len(recs))
	ids := getIDMap()
	firsts := mr.GetSel(len(recs))
	bail := func() bool {
		st.release()
		putIDMap(ids)
		mr.PutSel(firsts)
		return false
	}
	ng := 0
	prevKey := ""
	prevID := int32(-1)
	for ri := range recs {
		rec := &recs[ri]
		if len(rec.Row) != spec.shufW {
			return bail()
		}
		var g int32
		if prevID >= 0 && rec.Key == prevKey {
			g = prevID
		} else if id, ok := ids[rec.Key]; ok {
			g = id
		} else {
			g = int32(ng)
			ng++
			ids[rec.Key] = g
			firsts = append(firsts, int32(ri))
			prevKey, prevID = rec.Key, g
			if !st.initPartial(int(g), rec.Row) {
				return bail()
			}
			continue
		}
		prevKey, prevID = rec.Key, g
		if !st.mergePartial(int(g), rec.Row) {
			return bail()
		}
	}
	sorted := make([]string, 0, ng)
	for key := range ids {
		sorted = append(sorted, key)
	}
	sort.Strings(sorted)
	for _, key := range sorted {
		g := ids[key]
		emit(key, st.finalRow(recs[firsts[g]].Row, int(g)))
	}
	st.release()
	putIDMap(ids)
	mr.PutSel(firsts)
	return true
}

// batchCross runs the combine fold directly over a fused map pipeline's
// surviving selection — the cross-shuffle kernel for partition-local jobs.
// Group keys are encoded once per new group via value.AppendKey into a
// reused byte buffer (map lookups on the []byte view never allocate), and
// aggregate inputs fold with initPartials semantics (COUNT skips nulls, SUM
// and AVG treat null as +0 / uncounted, MIN/MAX seed with the raw first
// value). Emits one combined record per group in first-seen order and
// returns the pre-combine row count (the surviving selection's length).
// Stage execution already succeeded, so there is no bailout here: partial
// state is built by this kernel, never parsed from records.
func (k *aggKernel) batchCross(p *fusedProg, rows []data.Row, bufs []*data.Col, sel []int32, emit mr.Emit) int64 {
	spec := k.spec
	st := newAggAccs(spec, len(sel))
	ids := getIDMap()
	firsts := mr.GetSel(len(sel))
	keys := make([]string, 0, 64)
	var keyBuf, prevBuf []byte
	ng := 0
	prevID := int32(-1)
	for _, i := range sel {
		keyBuf = keyBuf[:0]
		for _, kx := range spec.keyIdx {
			keyBuf = readRef(rows, bufs, p.outs[kx], i).AppendKey(keyBuf)
		}
		var g int32
		if prevID >= 0 && bytes.Equal(keyBuf, prevBuf) {
			g = prevID
		} else if id, ok := ids[string(keyBuf)]; ok {
			g = id
		} else {
			g = int32(ng)
			ng++
			ks := string(keyBuf)
			ids[ks] = g
			keys = append(keys, ks)
			firsts = append(firsts, i)
			prevID = g
			keyBuf, prevBuf = prevBuf, keyBuf
			st.crossInit(rows, bufs, p, int(g), i)
			continue
		}
		prevID = g
		keyBuf, prevBuf = prevBuf, keyBuf
		st.crossMerge(rows, bufs, p, int(g), i)
	}
	for g := 0; g < ng; g++ {
		first := firsts[g]
		out := make(data.Row, 0, spec.shufW)
		for _, kx := range spec.keyIdx {
			out = append(out, readRef(rows, bufs, p.outs[kx], first))
		}
		emit(keys[g], st.appendPartials(out, g))
	}
	st.release()
	putIDMap(ids)
	mr.PutSel(firsts)
	return int64(len(sel))
}

// crossSrc resolves aggregate a's input value for batch row i (Null for
// COUNT(*)'s absent column).
func crossSrc(rows []data.Row, bufs []*data.Col, p *fusedProg, a aggPhys, i int32) value.V {
	if a.src < 0 {
		return value.NullV
	}
	return readRef(rows, bufs, p.outs[a.src], i)
}

// crossInit seeds group g from source row i with aggPhys.initPartials
// semantics (the per-row partial the interpreted map would have emitted).
func (st *aggAccs) crossInit(rows []data.Row, bufs []*data.Col, p *fusedProg, g int, i int32) {
	for ai, a := range st.spec.aggs {
		switch a.fn {
		case plan.AggCount:
			if a.src < 0 || !crossSrc(rows, bufs, p, a, i).IsNull() {
				st.cnts[ai][g] = 1
			}
		case plan.AggSum:
			if v := crossSrc(rows, bufs, p, a, i); !v.IsNull() {
				st.sums[ai][g] = v.Float()
			}
		case plan.AggAvg:
			if v := crossSrc(rows, bufs, p, a, i); !v.IsNull() {
				st.sums[ai][g] = v.Float()
				st.cnts[ai][g] = 1
			}
		case plan.AggMin, plan.AggMax:
			st.vals[ai][g] = crossSrc(rows, bufs, p, a, i)
		}
	}
}

// crossMerge folds source row i into group g: initPartials + merge +
// foldSum collapsed into one step per aggregate.
func (st *aggAccs) crossMerge(rows []data.Row, bufs []*data.Col, p *fusedProg, g int, i int32) {
	for ai, a := range st.spec.aggs {
		switch a.fn {
		case plan.AggCount:
			if a.src < 0 || !crossSrc(rows, bufs, p, a, i).IsNull() {
				st.cnts[ai][g]++
			}
		case plan.AggSum:
			x := 0.0
			if v := crossSrc(rows, bufs, p, a, i); !v.IsNull() {
				x = v.Float()
			}
			st.addSum(ai, g, x)
		case plan.AggAvg:
			x := 0.0
			if v := crossSrc(rows, bufs, p, a, i); !v.IsNull() {
				x = v.Float()
				st.cnts[ai][g]++
			}
			st.addSum(ai, g, x)
		case plan.AggMin, plan.AggMax:
			v := crossSrc(rows, bufs, p, a, i)
			if v.IsNull() {
				continue
			}
			cur := st.vals[ai][g]
			if cur.IsNull() ||
				(a.fn == plan.AggMin && value.Compare(v, cur) < 0) ||
				(a.fn == plan.AggMax && value.Compare(v, cur) > 0) {
				st.vals[ai][g] = v
			}
		}
	}
}
