package optimizer

import (
	"math"
	"reflect"
	"testing"

	"opportune/internal/afk"
	"opportune/internal/cost"
	"opportune/internal/data"
	"opportune/internal/mr"
	"opportune/internal/obs"
	"opportune/internal/plan"
	"opportune/internal/storage"
	"opportune/internal/value"
)

// reduceFusionArm selects which fusion layers are active for a run.
type reduceFusionArm int

const (
	armFull        reduceFusionArm = iota // map + reduce + cross fusion
	armMapOnly                            // DisableReduceFusion: PR-9 map kernels only
	armInterpreter                        // DisableFusion: row interpreter everywhere
)

// runReduceFusionPlan executes one plan on a fresh partitioned fixture
// (twtr hash-distributed on user_id, 8 parts) and returns the encoded
// output rows, the per-job results, and the counter snapshot.
func runReduceFusionPlan(t *testing.T, arm reduceFusionArm, p *plan.Node) ([][]string, []*mr.Result, map[string]int64) {
	t.Helper()
	f := newFixture(t, 1000)
	sig := afk.BaseSig("twtr", "user_id").ID()
	f.store.SetPartitioning("twtr", []string{sig}, 8)
	f.cat.SetPartitioning("twtr", afk.Partitioning{Sigs: []string{sig}, Parts: 8})
	switch arm {
	case armMapOnly:
		f.opt.DisableReduceFusion = true
	case armInterpreter:
		f.opt.DisableFusion = true
	}
	f.eng.Params.SplitRows = 64
	f.eng.Params.ReduceTasks = 3
	f.eng.Workers = 4
	reg := obs.NewRegistry()
	f.eng.Obs = reg
	f.store.SetObs(reg)
	w, err := f.opt.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := f.opt.Executable(w, "rf_res")
	if err != nil {
		t.Fatal(err)
	}
	results, _, err := f.eng.RunSequence(jobs)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := f.store.Read("rf_res")
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]string
	for _, r := range rel.Rows() {
		enc := make([]string, len(r))
		for i, v := range r {
			enc[i] = v.String()
		}
		rows = append(rows, enc)
	}
	return rows, results, reg.Snapshot().Counters
}

// groupByUserPlan aggregates twtr by its layout key: partition-local, so
// the full arm fuses scan→group→finalize across the boundary.
func groupByUserPlan() *plan.Node {
	return plan.GroupAgg(plan.Scan("twtr"), []string{"user_id"},
		plan.AggSpec{Func: plan.AggCount, As: "n"},
		plan.AggSpec{Func: plan.AggSum, Col: "tweet_id", As: "s"},
		plan.AggSpec{Func: plan.AggMin, Col: "text", As: "lo"})
}

// TestFusedCombineRowsParity is the PR's bugfix pin: map-side combine
// accounting must be byte-for-byte identical whether the combine fold ran
// through the grouper interpreter, the columnar combine kernel, or the
// cross-boundary map kernel — mr_combine_rows_total is an accounting
// counter, not an execution-strategy counter.
func TestFusedCombineRowsParity(t *testing.T) {
	p := groupByUserPlan()
	rowsFull, resFull, cFull := runReduceFusionPlan(t, armFull, p)
	rowsMap, resMap, cMap := runReduceFusionPlan(t, armMapOnly, p)
	rowsInt, resInt, cInt := runReduceFusionPlan(t, armInterpreter, p)

	if !reflect.DeepEqual(rowsFull, rowsMap) || !reflect.DeepEqual(rowsFull, rowsInt) {
		t.Fatalf("output rows differ across arms:\nfull  %v\nmap   %v\ninterp %v", rowsFull, rowsMap, rowsInt)
	}
	if cInt["mr_combine_rows_total"] == 0 {
		t.Fatal("workload exercised no combiner")
	}
	if cFull["mr_combine_rows_total"] != cInt["mr_combine_rows_total"] ||
		cMap["mr_combine_rows_total"] != cInt["mr_combine_rows_total"] {
		t.Errorf("mr_combine_rows_total diverges: full=%d map-only=%d interp=%d",
			cFull["mr_combine_rows_total"], cMap["mr_combine_rows_total"], cInt["mr_combine_rows_total"])
	}
	for i := range resInt {
		if resFull[i].CombineRows != resInt[i].CombineRows || resMap[i].CombineRows != resInt[i].CombineRows {
			t.Errorf("job %d CombineRows diverges: full=%d map-only=%d interp=%d",
				i, resFull[i].CombineRows, resMap[i].CombineRows, resInt[i].CombineRows)
		}
	}
	// The full arm really crossed the boundary; the map-only arm classified
	// the reduce side out with reason=disabled but kept map fusion.
	if cFull["mr_fused_reduce_crossboundary_jobs_total"] == 0 {
		t.Error("full arm did not cross-fuse the partition-local job")
	}
	if cMap["mr_fused_reduce_jobs_total"] != 0 {
		t.Error("map-only arm compiled reduce kernels despite DisableReduceFusion")
	}
	if cMap["mr_fused_reduce_fallback_total{reason=disabled}"] == 0 {
		t.Error("map-only arm did not record reason=disabled for the reduce side")
	}
}

// registerAdversarialFloats installs a base table whose float column is
// built to expose naive summation: alternating huge and tiny magnitudes
// whose compensated sum differs from the naive fold by many ULPs.
func registerAdversarialFloats(f *fixture) []float64 {
	vals := []float64{1e16, 3.14159, -1e16, 2.718281828, 1e-8, -1.0, 0.1, 1e12, -1e12, 7.5}
	rel := data.NewRelation(data.NewSchema("k", "x"))
	xs := make([]float64, 0, 200)
	for i := 0; i < 200; i++ {
		x := vals[i%len(vals)] * float64(1+i/len(vals))
		xs = append(xs, x)
		rel.Append(data.Row{value.NewStr("g"), value.NewFloat(x)})
	}
	f.store.Put("adv", storage.Base, rel)
	f.cat.RegisterBase("adv", []string{"k", "x"}, "k",
		cost.Stats{Rows: 200, Bytes: rel.EncodedSize()}, map[string]int64{"k": 1})
	return xs
}

// TestFusedSumMatchesKahanFold is the fractional-SUM ULP oracle: the fused
// kernels must reproduce the interpreter's Neumaier-compensated fold
// bit-for-bit — same per-split partials, same merge order — which an
// explicit value.Kahan replay of the split+combine structure pins exactly.
func TestFusedSumMatchesKahanFold(t *testing.T) {
	const splitRows = 64
	run := func(disable bool) (float64, float64) {
		f := newFixture(t, 10)
		registerAdversarialFloats(f)
		f.opt.DisableFusion = disable
		f.eng.Params.SplitRows = splitRows
		f.eng.Params.ReduceTasks = 3
		f.eng.Workers = 4
		p := plan.GroupAgg(plan.Scan("adv"), []string{"k"},
			plan.AggSpec{Func: plan.AggSum, Col: "x", As: "s"},
			plan.AggSpec{Func: plan.AggAvg, Col: "x", As: "m"})
		w, err := f.opt.Compile(p)
		if err != nil {
			t.Fatal(err)
		}
		jobs, err := f.opt.Executable(w, "adv_res")
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := f.eng.RunSequence(jobs); err != nil {
			t.Fatal(err)
		}
		rel, err := f.store.Read("adv_res")
		if err != nil {
			t.Fatal(err)
		}
		rows := rel.Rows()
		if len(rows) != 1 {
			t.Fatalf("groups = %d, want 1", len(rows))
		}
		return rows[0][1].Float(), rows[0][2].Float()
	}
	sumF, avgF := run(false)
	sumI, avgI := run(true)
	if math.Float64bits(sumF) != math.Float64bits(sumI) {
		t.Errorf("SUM bits diverge: fused %x (%v) interp %x (%v)",
			math.Float64bits(sumF), sumF, math.Float64bits(sumI), sumI)
	}
	if math.Float64bits(avgF) != math.Float64bits(avgI) {
		t.Errorf("AVG bits diverge: fused %x (%v) interp %x (%v)",
			math.Float64bits(avgF), avgF, math.Float64bits(avgI), avgI)
	}

	// Explicit replay of the execution structure: a Kahan fold per 64-row
	// split, then a Kahan fold over the per-split partial values.
	f := newFixture(t, 10)
	xs := registerAdversarialFloats(f)
	var partials []float64
	for start := 0; start < len(xs); start += splitRows {
		end := start + splitRows
		if end > len(xs) {
			end = len(xs)
		}
		var k value.Kahan
		for _, x := range xs[start:end] {
			k.Add(x)
		}
		partials = append(partials, k.Value())
	}
	var k value.Kahan
	for _, p := range partials {
		k.Add(p)
	}
	want := k.Value()
	if math.Float64bits(sumF) != math.Float64bits(want) {
		t.Errorf("SUM bits diverge from explicit Kahan replay: got %x (%v), want %x (%v)",
			math.Float64bits(sumF), sumF, math.Float64bits(want), want)
	}
	if naive := func() float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s
	}(); math.Float64bits(naive) == math.Float64bits(want) {
		t.Log("adversarial corpus did not separate naive from compensated sum; oracle is vacuous")
	}
}

// TestReduceFusionClassification pins the compile-time reason taxonomy.
func TestReduceFusionClassification(t *testing.T) {
	cases := []struct {
		name   string
		arm    reduceFusionArm
		plan   *plan.Node
		fused  bool
		cross  bool
		reason string
	}{
		{"partition_local_cross", armFull, groupByUserPlan(), true, true, ""},
		{"nonlocal_group", armFull,
			plan.GroupAgg(plan.Scan("twtr"), []string{"text"},
				plan.AggSpec{Func: plan.AggCount, As: "n"}), true, false, ""},
		{"agg_udf", armFull, winersPlan(), false, false, "agg_udf"},
		{"unsupported_op", armFull,
			plan.Sort(plan.Scan("twtr"), []string{"tweet_id"}, []bool{true}, 10), false, false, "unsupported_op"},
		{"disabled", armMapOnly, groupByUserPlan(), false, false, "disabled"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, c := runReduceFusionPlan(t, tc.arm, tc.plan)
			if tc.fused && c["mr_fused_reduce_jobs_total"] == 0 {
				t.Error("expected a reduce-fused job")
			}
			if !tc.fused && c["mr_fused_reduce_jobs_total"] != 0 {
				t.Errorf("unexpected reduce-fused jobs: %d", c["mr_fused_reduce_jobs_total"])
			}
			if tc.cross != (c["mr_fused_reduce_crossboundary_jobs_total"] > 0) {
				t.Errorf("crossboundary = %d, want cross=%v",
					c["mr_fused_reduce_crossboundary_jobs_total"], tc.cross)
			}
			if tc.reason != "" && c["mr_fused_reduce_fallback_total{reason="+tc.reason+"}"] == 0 {
				t.Errorf("reason %q not recorded", tc.reason)
			}
			if c["mr_fused_reduce_runtime_fallback_total"] != 0 {
				t.Error("compiled kernels must not bail at runtime")
			}
			// Family balance, per plan.
			var fb int64
			for _, r := range mr.FuseReduceFallbackReasons {
				fb += c["mr_fused_reduce_fallback_total{reason="+r+"}"]
			}
			if e, j := c["mr_fused_reduce_eligible_total"], c["mr_fused_reduce_jobs_total"]; e != j+fb {
				t.Errorf("family does not balance: eligible %d != jobs %d + fallback %d", e, j, fb)
			}
		})
	}
}
