package optimizer

import (
	"strings"
	"testing"

	"opportune/internal/cost"
	"opportune/internal/data"
	"opportune/internal/expr"
	"opportune/internal/meta"
	"opportune/internal/mr"
	"opportune/internal/plan"
	"opportune/internal/storage"
	"opportune/internal/udf"
	"opportune/internal/value"
)

// fixture builds a store+catalog with a small tweet log and two UDFs.
type fixture struct {
	store *storage.Store
	cat   *meta.Catalog
	eng   *mr.Engine
	opt   *Optimizer
}

func newFixture(t testing.TB, rows int) *fixture {
	t.Helper()
	st := storage.NewStore()
	rel := data.NewRelation(data.NewSchema("tweet_id", "user_id", "text"))
	words := []string{"wine is great", "bad day", "good wine good life", "coffee time", "wine wine wine"}
	for i := 0; i < rows; i++ {
		rel.Append(data.Row{
			value.NewInt(int64(i)),
			value.NewInt(int64(i % 10)),
			value.NewStr(words[i%len(words)]),
		})
	}
	st.Put("twtr", storage.Base, rel)

	cat := meta.NewCatalog()
	cat.RegisterBase("twtr", []string{"tweet_id", "user_id", "text"}, "tweet_id",
		cost.Stats{Rows: int64(rows), Bytes: rel.EncodedSize()},
		map[string]int64{"tweet_id": int64(rows), "user_id": 10})

	if err := cat.UDFs.Register(&udf.Descriptor{
		Name: "UDF_WINE_SCORE", NArgs: 1, Kind: udf.KindMap, OutNames: []string{"wine_score"},
		Map: func(args, _ []value.V) [][]value.V {
			return [][]value.V{{value.NewFloat(float64(strings.Count(args[0].Str(), "wine")))}}
		},
		TrueScalar: 10,
	}); err != nil {
		t.Fatal(err)
	}
	if err := cat.UDFs.Register(&udf.Descriptor{
		Name: "UDF_USER_TOTAL", NArgs: 2, Kind: udf.KindAgg,
		KeyNames: []string{"user_id"}, KeyArgs: []int{0}, OutNames: []string{"total"},
		Reduce: func(_ []value.V, ps [][]value.V, _ []value.V) []value.V {
			var s float64
			for _, p := range ps {
				s += p[0].Float()
			}
			return []value.V{value.NewFloat(s)}
		},
		TrueScalar: 2,
	}); err != nil {
		t.Fatal(err)
	}
	params := cost.DefaultParams()
	eng := mr.New(st, params)
	return &fixture{store: st, cat: cat, eng: eng, opt: New(cat, params, expr.NewEvaluator())}
}

// winersPlan: per-user wine score sum for active users, thresholded.
func winersPlan() *plan.Node {
	scored := plan.Apply(plan.Scan("twtr"), "UDF_WINE_SCORE", []string{"text"})
	agg := plan.Apply(scored, "UDF_USER_TOTAL", []string{"user_id", "wine_score"})
	return plan.Filter(agg, expr.NewCmp("total", expr.Gt, value.NewFloat(1)))
}

func TestCompileJobCutting(t *testing.T) {
	f := newFixture(t, 100)
	w, err := f.opt.Compile(winersPlan())
	if err != nil {
		t.Fatal(err)
	}
	// two jobs: the agg UDF (with the map UDF pipelined into its map side)
	// and the trailing map-only filter job.
	if len(w.Nodes) != 2 {
		t.Fatalf("jobs = %d, want 2", len(w.Nodes))
	}
	aggJob, filterJob := w.Nodes[0], w.Nodes[1]
	if aggJob.Logical.Kind != plan.KindUDF {
		t.Errorf("first job = %s", aggJob.Logical.Kind)
	}
	if filterJob.Logical.Kind != plan.KindFilter {
		t.Errorf("second job = %s", filterJob.Logical.Kind)
	}
	if len(filterJob.Deps) != 1 || filterJob.Deps[0] != aggJob {
		t.Error("dep wiring wrong")
	}
	if w.Sink() != filterJob {
		t.Error("sink wrong")
	}
	// costs estimated and positive
	if aggJob.EstCost.Total() <= 0 || filterJob.EstCost.Total() <= 0 {
		t.Error("zero estimated costs")
	}
	// the map UDF is in the agg job's map pipeline
	if len(aggJob.streams) != 1 || len(aggJob.streams[0].ops) != 1 {
		t.Errorf("agg job pipeline = %+v", aggJob.streams)
	}
	// CostThrough(sink) covers both jobs
	if got, want := w.CostThrough(1), w.TotalCost(); got != want {
		t.Errorf("CostThrough(sink) = %g, total = %g", got, want)
	}
	if w.CostThrough(0) >= w.TotalCost() {
		t.Error("CostThrough(0) should be less than total")
	}
	// deterministic view names
	w2, _ := f.opt.Compile(winersPlan())
	if w.Sink().ViewName != w2.Sink().ViewName {
		t.Error("view names not deterministic")
	}
	if aggJob.ViewName == filterJob.ViewName {
		t.Error("distinct jobs share a view name")
	}
}

func TestCompileErrors(t *testing.T) {
	f := newFixture(t, 10)
	if _, err := f.opt.Compile(plan.Scan("twtr")); err == nil {
		t.Error("bare scan compiled")
	}
	if _, err := f.opt.Compile(plan.Scan("missing")); err == nil {
		t.Error("unknown dataset compiled")
	}
	if _, err := f.opt.Compile(plan.Filter(plan.Scan("twtr"), expr.NewCmp("zz", expr.Eq, value.NewInt(1)))); err == nil {
		t.Error("bad filter compiled")
	}
}

func TestExecuteEndToEnd(t *testing.T) {
	f := newFixture(t, 100)
	w, err := f.opt.Compile(winersPlan())
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := f.opt.Executable(w, "result")
	if err != nil {
		t.Fatal(err)
	}
	_, agg, err := f.eng.RunSequence(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Jobs != 2 || agg.SimSeconds <= 0 {
		t.Errorf("agg = %+v", agg)
	}
	out, err := f.store.Read("result")
	if err != nil {
		t.Fatal(err)
	}
	// ground truth: user u always sees text index u%5 (since 10 and 5 are
	// not coprime); wine counts per text are [1,0,1,0,3]. Users with text
	// 1 or 3 total zero and are filtered, leaving 6 users with totals
	// 10, 10, or 30.
	if out.Len() != 6 {
		t.Fatalf("result rows = %d, want 6", out.Len())
	}
	wantTotal := map[int64]float64{0: 10, 5: 10, 2: 10, 7: 10, 4: 30, 9: 30}
	for i := 0; i < out.Len(); i++ {
		u := out.Get(i, "user_id").Int()
		if got := out.Get(i, "total").Float(); got != wantTotal[u] {
			t.Errorf("user %d total = %v, want %v", u, got, wantTotal[u])
		}
	}
	// intermediate materialized as view under its deterministic name
	if !f.store.Has(w.Nodes[0].ViewName) {
		t.Error("intermediate view not materialized")
	}
}

func TestExecuteJoin(t *testing.T) {
	f := newFixture(t, 50)
	// second dataset: user profiles
	prof := data.NewRelation(data.NewSchema("uid", "grade"))
	for i := 0; i < 10; i++ {
		prof.Append(data.Row{value.NewInt(int64(i)), value.NewStr(strings.Repeat("A", i%3+1))})
	}
	f.store.Put("prof", storage.Base, prof)
	f.cat.RegisterBase("prof", []string{"uid", "grade"}, "uid",
		cost.Stats{Rows: 10, Bytes: prof.EncodedSize()}, map[string]int64{"uid": 10})

	counts := plan.GroupAgg(plan.Scan("twtr"), []string{"user_id"}, plan.AggSpec{Func: plan.AggCount, As: "n"})
	joined := plan.JoinNodes(counts, plan.Scan("prof"), "user_id", "uid")
	w, err := f.opt.Compile(joined)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Nodes) != 2 {
		t.Fatalf("jobs = %d, want 2 (groupagg, join)", len(w.Nodes))
	}
	jobs, err := f.opt.Executable(w, "joined")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.eng.RunSequence(jobs); err != nil {
		t.Fatal(err)
	}
	out, _ := f.store.Read("joined")
	if out.Len() != 10 {
		t.Fatalf("join rows = %d, want 10", out.Len())
	}
	s := out.Schema()
	for _, c := range []string{"user_id", "n", "uid", "grade"} {
		if !s.Has(c) {
			t.Errorf("missing column %q in %s", c, s)
		}
	}
	// 50 tweets over 10 users -> n=5 each
	for i := 0; i < out.Len(); i++ {
		if out.Get(i, "n").Int() != 5 {
			t.Errorf("row %d n = %v", i, out.Row(i))
		}
		if !value.Equal(out.Get(i, "user_id"), out.Get(i, "uid")) {
			t.Error("join key mismatch")
		}
	}
}

func TestExecuteGroupAggFunctions(t *testing.T) {
	f := newFixture(t, 20)
	p := plan.GroupAgg(plan.Scan("twtr"), []string{"user_id"},
		plan.AggSpec{Func: plan.AggCount, As: "cnt"},
		plan.AggSpec{Func: plan.AggSum, Col: "tweet_id", As: "s"},
		plan.AggSpec{Func: plan.AggMin, Col: "tweet_id", As: "lo"},
		plan.AggSpec{Func: plan.AggMax, Col: "tweet_id", As: "hi"},
		plan.AggSpec{Func: plan.AggAvg, Col: "tweet_id", As: "av"},
	)
	w, err := f.opt.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := f.opt.Executable(w, "gagg")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.eng.RunSequence(jobs); err != nil {
		t.Fatal(err)
	}
	out, _ := f.store.Read("gagg")
	if out.Len() != 10 {
		t.Fatalf("rows = %d", out.Len())
	}
	// user u has tweets u and u+10: count=2, sum=2u+10, min=u, max=u+10, avg=u+5
	for i := 0; i < out.Len(); i++ {
		u := out.Get(i, "user_id").Int()
		if out.Get(i, "cnt").Int() != 2 {
			t.Errorf("cnt = %v", out.Row(i))
		}
		if out.Get(i, "s").Float() != float64(2*u+10) {
			t.Errorf("sum = %v", out.Row(i))
		}
		if out.Get(i, "lo").Int() != u || out.Get(i, "hi").Int() != u+10 {
			t.Errorf("min/max = %v", out.Row(i))
		}
		if out.Get(i, "av").Float() != float64(u+5) {
			t.Errorf("avg = %v", out.Row(i))
		}
	}
}

func TestRewrittenPlanOverViewIsCheaper(t *testing.T) {
	// The core economics of the paper: a plan reading a small materialized
	// view must be estimated (and simulated) cheaper than recomputing from
	// the raw log.
	f := newFixture(t, 2000)
	w, err := f.opt.Compile(winersPlan())
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := f.opt.Executable(w, "orig_result")
	if err != nil {
		t.Fatal(err)
	}
	_, origAgg, err := f.eng.RunSequence(jobs)
	if err != nil {
		t.Fatal(err)
	}
	// register the agg view in the catalog as the system would
	aggNode := w.Nodes[0]
	ds, _ := f.store.Meta(aggNode.ViewName)
	f.cat.RegisterView(aggNode.ViewName, aggNode.OutCols, aggNode.Ann,
		cost.Stats{Rows: ds.Rows(), Bytes: ds.SizeBytes}, aggNode.PlanFP)

	// rewritten query: filter over the view
	rw := plan.Filter(plan.Scan(aggNode.ViewName), expr.NewCmp("total", expr.Gt, value.NewFloat(1)))
	w2, err := f.opt.Compile(rw)
	if err != nil {
		t.Fatal(err)
	}
	if w2.TotalCost() >= w.TotalCost() {
		t.Errorf("estimated: rewrite %g >= original %g", w2.TotalCost(), w.TotalCost())
	}
	jobs2, err := f.opt.Executable(w2, "rewr_result")
	if err != nil {
		t.Fatal(err)
	}
	_, rewrAgg, err := f.eng.RunSequence(jobs2)
	if err != nil {
		t.Fatal(err)
	}
	if rewrAgg.SimSeconds >= origAgg.SimSeconds {
		t.Errorf("simulated: rewrite %g >= original %g", rewrAgg.SimSeconds, origAgg.SimSeconds)
	}
	// identical results
	a, _ := f.store.Read("orig_result")
	b, _ := f.store.Read("rewr_result")
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("rewritten result differs from original")
	}
}

func TestExplodingUDFExecution(t *testing.T) {
	f := newFixture(t, 10)
	if err := f.cat.UDFs.Register(&udf.Descriptor{
		Name: "UDF_TOKENIZE", NArgs: 1, Kind: udf.KindMap,
		OutNames: []string{"word"}, Explode: true,
		Map: func(args, _ []value.V) [][]value.V {
			var out [][]value.V
			for _, w := range strings.Fields(args[0].Str()) {
				out = append(out, []value.V{value.NewStr(w)})
			}
			return out
		},
		TrueScalar: 3,
	}); err != nil {
		t.Fatal(err)
	}
	p := plan.GroupAgg(
		plan.Apply(plan.Scan("twtr"), "UDF_TOKENIZE", []string{"text"}),
		[]string{"word"}, plan.AggSpec{Func: plan.AggCount, As: "n"})
	w, err := f.opt.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := f.opt.Executable(w, "wc")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.eng.RunSequence(jobs); err != nil {
		t.Fatal(err)
	}
	out, _ := f.store.Read("wc")
	counts := map[string]int64{}
	for i := 0; i < out.Len(); i++ {
		counts[out.Get(i, "word").Str()] = out.Get(i, "n").Int()
	}
	// 10 rows cycle 5 texts twice: "wine" appears 1+1+3=5 per cycle -> 10
	if counts["wine"] != 10 {
		t.Errorf("count[wine] = %d, want 10", counts["wine"])
	}
	if counts["coffee"] != 2 {
		t.Errorf("count[coffee] = %d, want 2", counts["coffee"])
	}
}

func TestEstimatorHeuristics(t *testing.T) {
	f := newFixture(t, 1000)
	e := newEstimator(f.cat, nil)
	scan := plan.Scan("twtr")
	filt := plan.Filter(scan, expr.NewCmp("user_id", expr.Eq, value.NewInt(1)))
	if err := plan.Annotate(filt, f.cat); err != nil {
		t.Fatal(err)
	}
	sScan := e.stats(scan)
	sFilt := e.stats(filt)
	if sFilt.Rows >= sScan.Rows {
		t.Error("filter did not reduce estimate")
	}
	if got := float64(sFilt.Rows) / float64(sScan.Rows); got < 0.05 || got > 0.2 {
		t.Errorf("eq selectivity applied = %g, want ~0.1", got)
	}
	// group by user_id uses the distinct hint (10)
	g := plan.GroupAgg(plan.Scan("twtr"), []string{"user_id"}, plan.AggSpec{Func: plan.AggCount, As: "n"})
	if err := plan.Annotate(g, f.cat); err != nil {
		t.Fatal(err)
	}
	if got := e.stats(g).Rows; got != 10 {
		t.Errorf("group estimate = %d, want 10", got)
	}
	// global aggregate estimates one row
	glob := plan.GroupAgg(plan.Scan("twtr"), nil, plan.AggSpec{Func: plan.AggCount, As: "n"})
	if err := plan.Annotate(glob, f.cat); err != nil {
		t.Fatal(err)
	}
	if got := e.stats(glob).Rows; got != 1 {
		t.Errorf("global agg estimate = %d, want 1", got)
	}
}
