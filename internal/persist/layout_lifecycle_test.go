package persist

import (
	"reflect"
	"testing"

	"opportune/internal/afk"
	"opportune/internal/cost"
	"opportune/internal/data"
	"opportune/internal/plan"
	"opportune/internal/session"
	"opportune/internal/storage"
	"opportune/internal/value"
)

// layoutSession builds a session with one hash-clustered base log and one
// retained keyed-GroupAgg view over it (COUNT/MIN/MAX — maintainable).
func layoutSession(t *testing.T, rows int) *session.Session {
	t.Helper()
	s := session.New(cost.DefaultParams())
	rel := data.NewRelation(data.NewSchema("id", "user", "amt"))
	for i := 0; i < rows; i++ {
		rel.Append(data.Row{
			value.NewInt(int64(i)), value.NewInt(int64(i % 7)), value.NewInt(int64(i % 13)),
		})
	}
	s.Store.Put("logs", storage.Base, rel)
	s.Cat.RegisterBase("logs", []string{"id", "user", "amt"}, "id",
		cost.Stats{Rows: int64(rows), Bytes: rel.EncodedSize()}, map[string]int64{"user": 7})
	userSig := afk.BaseSig("logs", "user").ID()
	s.Store.SetPartitioning("logs", []string{userSig}, 16)
	s.Cat.SetPartitioning("logs", afk.Partitioning{Sigs: []string{userSig}, Parts: 16})

	p := plan.GroupAgg(plan.Scan("logs"), []string{"user"},
		plan.AggSpec{Func: plan.AggCount, As: "n"},
		plan.AggSpec{Func: plan.AggMin, Col: "amt", As: "lo"},
		plan.AggSpec{Func: plan.AggMax, Col: "amt", As: "hi"})
	if _, err := s.Run(p, "vkey", session.ModeOriginal); err != nil {
		t.Fatal(err)
	}
	return s
}

// checkLayout asserts one dataset's declared layout on both the store (the
// bytes' ground truth) and the catalog (what plan annotation consults),
// and that the two agree.
func checkLayout(t *testing.T, s *session.Session, name string, wantSigs []string, wantParts int, stage string) {
	t.Helper()
	sigs, parts := s.Store.Partitioning(name)
	if !reflect.DeepEqual(sigs, wantSigs) || parts != wantParts {
		t.Errorf("%s: store layout of %s = (%v, %d), want (%v, %d)", stage, name, sigs, parts, wantSigs, wantParts)
	}
	info, ok := s.Cat.Table(name)
	if !ok {
		t.Fatalf("%s: %s missing from catalog", stage, name)
	}
	if !reflect.DeepEqual(info.Part.Sigs, wantSigs) || info.Part.Parts != wantParts {
		t.Errorf("%s: catalog layout of %s = (%v, %d), want (%v, %d)",
			stage, name, info.Part.Sigs, info.Part.Parts, wantSigs, wantParts)
	}
	if wantParts > 0 && !info.Part.PrefixMatch(wantSigs) {
		t.Errorf("%s: catalog layout of %s does not prefix-match its own keys", stage, name)
	}
}

// appendBatch fabricates delta rows for the logs schema.
func appendBatch(base, n int) []data.Row {
	rows := make([]data.Row, n)
	for i := 0; i < n; i++ {
		rows[i] = data.Row{
			value.NewInt(int64(base + i)),
			value.NewInt(int64((base + i) % 9)),
			value.NewInt(int64((base + i) % 13)),
		}
	}
	return rows
}

// TestViewLayoutLifecycle is the partitioning lifecycle property: a keyed-
// GroupAgg view reports its key's hash layout from the moment it is
// retained, the layout survives a persist round-trip and incremental
// maintenance (a key-merge refresh rewrites the bytes bucket-stably), and
// it disappears — with no stale metadata left anywhere — the moment the
// view falls back to invalidation.
func TestViewLayoutLifecycle(t *testing.T) {
	s := layoutSession(t, 150)
	userSig := afk.BaseSig("logs", "user").ID()
	viewParts := s.Opt.Params.DefaultPartitions
	if viewParts <= 0 {
		t.Fatalf("DefaultPartitions = %d, want > 0", viewParts)
	}

	// Retention: the reduce that materialized the view wrote it bucketed by
	// the group key, and retainViews copied that claim into the catalog.
	checkLayout(t, s, "logs", []string{userSig}, 16, "after install")
	checkLayout(t, s, "vkey", []string{userSig}, viewParts, "after retention")

	// Persist round-trip: both the base's declared clustering and the view's
	// inherited layout come back.
	dir := t.TempDir()
	if err := Save(s, dir); err != nil {
		t.Fatal(err)
	}
	s2, _, err := Open(dir, cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	checkLayout(t, s2, "logs", []string{userSig}, 16, "after round-trip")
	checkLayout(t, s2, "vkey", []string{userSig}, viewParts, "after round-trip")

	// Incremental maintenance: the captured plan also survived the
	// round-trip, so the append refreshes the view in place — and Refresh
	// preserves the layout claim, because a key-merge never moves a group
	// out of its bucket.
	rep, err := s2.AppendRows("logs", appendBatch(1000, 41))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Maintained) != 1 || rep.Maintained[0] != "vkey" {
		t.Fatalf("append maintained %v (reasons %v), want [vkey]", rep.Maintained, rep.Reasons)
	}
	checkLayout(t, s2, "logs", []string{userSig}, 16, "after maintenance")
	checkLayout(t, s2, "vkey", []string{userSig}, viewParts, "after maintenance")

	// Fallback: force invalidation. The view must vanish from store and
	// catalog alike — partition metadata cannot outlive the bytes it
	// describes.
	s2.DisableMaintenance = true
	rep, err = s2.AppendRows("logs", appendBatch(2000, 17))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Invalidated) != 1 || rep.Invalidated[0] != "vkey" {
		t.Fatalf("append invalidated %v, want [vkey]", rep.Invalidated)
	}
	if s2.Store.Has("vkey") {
		t.Error("invalidated view still in store")
	}
	if sigs, parts := s2.Store.Partitioning("vkey"); sigs != nil || parts != 0 {
		t.Errorf("stale store layout (%v, %d) for dropped view", sigs, parts)
	}
	if _, ok := s2.Cat.Table("vkey"); ok {
		t.Error("invalidated view still in catalog")
	}
	// The base's own layout is untouched by the fallback.
	checkLayout(t, s2, "logs", []string{userSig}, 16, "after fallback")
}
