// Package persist saves and restores a system's state — base logs,
// opportunistic views, and the catalog metadata that makes them reusable
// (annotations, statistics, plan fingerprints, functional dependencies, UDF
// calibration scalars) — so the physical design survives process restarts.
//
// Layout under the target directory:
//
//	catalog.json       — tables, annotations, stats, FDs, UDF scalars
//	tables/<name>.tbl  — binary relation data (see data.Relation.Write)
//
// UDF code cannot be persisted; callers re-register the same UDF library
// after Open, and the saved calibration scalars are re-applied to matching
// names (skipping the sample runs).
package persist

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"opportune/internal/afk"
	"opportune/internal/cost"
	"opportune/internal/data"
	"opportune/internal/expr"
	"opportune/internal/plan"
	"opportune/internal/session"
	"opportune/internal/storage"
	"opportune/internal/value"
)

// --- JSON DTOs ---

type sigDTO struct {
	Dataset string   `json:"dataset,omitempty"`
	Column  string   `json:"column,omitempty"`
	UDF     string   `json:"udf,omitempty"`
	Params  string   `json:"params,omitempty"`
	Inputs  []sigDTO `json:"inputs,omitempty"`
	Agg     bool     `json:"agg,omitempty"`
	CtxF    string   `json:"ctxF,omitempty"`
	GroupBy []sigDTO `json:"groupBy,omitempty"`
}

type predDTO struct {
	Kind    int      `json:"kind"`
	Attr    string   `json:"attr,omitempty"`
	Op      int      `json:"op,omitempty"`
	LitKind int      `json:"litKind,omitempty"`
	Lit     string   `json:"lit,omitempty"`
	Attr2   string   `json:"attr2,omitempty"`
	Name    string   `json:"name,omitempty"`
	Args    []string `json:"args,omitempty"`
}

type attrDTO struct {
	Name string `json:"name"`
	Sig  sigDTO `json:"sig"`
}

type annDTO struct {
	Attrs   []attrDTO `json:"attrs"`
	F       []predDTO `json:"f,omitempty"`
	K       []sigDTO  `json:"k,omitempty"`
	Grouped bool      `json:"grouped,omitempty"`
	Limited bool      `json:"limited,omitempty"`
}

type tableDTO struct {
	Name     string           `json:"name"`
	Cols     []string         `json:"cols"`
	KeyCol   string           `json:"keyCol,omitempty"`
	IsView   bool             `json:"isView,omitempty"`
	PlanFP   string           `json:"planFP,omitempty"`
	Rows     int64            `json:"rows"`
	Bytes    int64            `json:"bytes"`
	Distinct map[string]int64 `json:"distinct,omitempty"`
	Ann      annDTO           `json:"ann"`
	// PartSigs/PartParts persist the relation's physical hash-layout
	// property (partitioning is metadata about the stored bytes, which the
	// .tbl file preserves verbatim). Absent in catalogs written before
	// layouts existed: those relations restore with no layout promise.
	PartSigs  []string `json:"partSigs,omitempty"`
	PartParts int      `json:"partParts,omitempty"`
	// Plan is the view's producing logical plan, captured at retention
	// time. Restoring it lets AppendRows maintain the view incrementally
	// after Open instead of falling back to blanket invalidation. Absent
	// for base tables and in catalogs written before plans were persisted
	// (those views invalidate on append, the old behavior).
	Plan *planDTO `json:"plan,omitempty"`
}

// aggDTO is one aggregate spec of a persisted GroupAgg node.
type aggDTO struct {
	Func string `json:"func"`
	Col  string `json:"col,omitempty"`
	As   string `json:"as,omitempty"`
}

// litDTO is a typed literal (UDF parameters reuse the predicate literal
// encoding).
type litDTO struct {
	Kind int    `json:"kind"`
	Val  string `json:"val"`
}

// planDTO serializes a plan.Node tree structurally; annotations and output
// columns are recomputed by the optimizer on the next compile.
type planDTO struct {
	Kind      int       `json:"kind"`
	Inputs    []planDTO `json:"inputs,omitempty"`
	Dataset   string    `json:"dataset,omitempty"`
	Cols      []string  `json:"cols,omitempty"`
	As        []string  `json:"as,omitempty"`
	Pred      *predDTO  `json:"pred,omitempty"`
	LCol      string    `json:"lcol,omitempty"`
	RCol      string    `json:"rcol,omitempty"`
	Keys      []string  `json:"keys,omitempty"`
	Aggs      []aggDTO  `json:"aggs,omitempty"`
	UDFName   string    `json:"udfName,omitempty"`
	UDFArgs   []string  `json:"udfArgs,omitempty"`
	UDFParams []litDTO  `json:"udfParams,omitempty"`
	SortCols  []string  `json:"sortCols,omitempty"`
	SortDesc  []bool    `json:"sortDesc,omitempty"`
	Limit     int64     `json:"limit,omitempty"`
}

type fdDTO struct {
	From []string `json:"from"`
	To   string   `json:"to"`
}

type catalogDTO struct {
	Version    int                `json:"version"`
	Tables     []tableDTO         `json:"tables"`
	FDs        []fdDTO            `json:"fds"`
	UDFScalars map[string]float64 `json:"udfScalars,omitempty"`
}

// --- encoding ---

func sigToDTO(s *afk.Sig) sigDTO {
	d := sigDTO{Dataset: s.Dataset, Column: s.Column, UDF: s.UDF, Params: s.Params, Agg: s.Agg, CtxF: s.CtxF}
	for _, in := range s.Inputs {
		d.Inputs = append(d.Inputs, sigToDTO(in))
	}
	for _, k := range s.GroupBy {
		d.GroupBy = append(d.GroupBy, sigToDTO(k))
	}
	return d
}

func sigFromDTO(d sigDTO) *afk.Sig {
	if d.UDF == "" {
		return afk.BaseSig(d.Dataset, d.Column)
	}
	inputs := make([]*afk.Sig, len(d.Inputs))
	for i, in := range d.Inputs {
		inputs[i] = sigFromDTO(in)
	}
	if !d.Agg {
		return afk.DerivedSig(d.UDF, d.Params, inputs)
	}
	groupBy := make([]*afk.Sig, len(d.GroupBy))
	for i, k := range d.GroupBy {
		groupBy[i] = sigFromDTO(k)
	}
	return afk.AggSig(d.UDF, d.Params, inputs, d.CtxF, groupBy)
}

func litToDTO(v value.V) (int, string) { return int(v.Kind()), v.String() }

func litFromDTO(kind int, s string) (value.V, error) {
	switch value.Kind(kind) {
	case value.Null:
		return value.NullV, nil
	case value.Str:
		return value.NewStr(s), nil
	default:
		v := value.Parse(s)
		if int(v.Kind()) != kind {
			// e.g. "1" persisted from a Float literal parses as Int.
			switch value.Kind(kind) {
			case value.Float:
				if v.IsNumeric() {
					return value.NewFloat(v.Float()), nil
				}
			case value.Int:
				if v.IsNumeric() {
					return value.NewInt(int64(v.Float())), nil
				}
			}
			return value.NullV, fmt.Errorf("persist: literal %q does not parse as kind %d", s, kind)
		}
		return v, nil
	}
}

func predToDTO(p expr.Pred) predDTO {
	d := predDTO{Kind: int(p.Kind), Attr: p.Attr, Op: int(p.Op), Attr2: p.Attr2, Name: p.Name, Args: p.Args}
	if p.Kind == expr.KindCmp {
		d.LitKind, d.Lit = litToDTO(p.Lit)
	}
	return d
}

func predFromDTO(d predDTO) (expr.Pred, error) {
	switch expr.Kind(d.Kind) {
	case expr.KindCmp:
		lit, err := litFromDTO(d.LitKind, d.Lit)
		if err != nil {
			return expr.Pred{}, err
		}
		return expr.NewCmp(d.Attr, expr.CmpOp(d.Op), lit), nil
	case expr.KindAttrEq:
		return expr.NewAttrEq(d.Attr, d.Attr2), nil
	case expr.KindOpaque:
		return expr.NewOpaque(d.Name, d.Args...), nil
	default:
		return expr.Pred{}, fmt.Errorf("persist: bad predicate kind %d", d.Kind)
	}
}

func annToDTO(a afk.Annotation) annDTO {
	d := annDTO{Grouped: a.Grouped, Limited: a.Limited}
	for _, at := range a.Attrs() {
		d.Attrs = append(d.Attrs, attrDTO{Name: at.Name, Sig: sigToDTO(at.Sig)})
	}
	for _, p := range a.F.Preds() {
		d.F = append(d.F, predToDTO(p))
	}
	for _, s := range a.K.Sigs() {
		d.K = append(d.K, sigToDTO(s))
	}
	return d
}

func annFromDTO(d annDTO) (afk.Annotation, error) {
	attrs := make([]afk.Attr, len(d.Attrs))
	for i, at := range d.Attrs {
		attrs[i] = afk.Attr{Name: at.Name, Sig: sigFromDTO(at.Sig)}
	}
	f := expr.NewSet()
	for _, pd := range d.F {
		p, err := predFromDTO(pd)
		if err != nil {
			return afk.Annotation{}, err
		}
		f.Add(p)
	}
	k := afk.NewSigSet()
	for _, sd := range d.K {
		k.Add(sigFromDTO(sd))
	}
	ann := afk.New(attrs, f, k)
	ann.Grouped = d.Grouped
	if d.Limited {
		ann = ann.WithLimited()
	}
	return ann, nil
}

func planToDTO(n *plan.Node) planDTO {
	d := planDTO{Kind: int(n.Kind), Dataset: n.Dataset, Cols: n.Cols, As: n.As,
		LCol: n.LCol, RCol: n.RCol, Keys: n.Keys, UDFName: n.UDFName,
		UDFArgs: n.UDFArgs, SortCols: n.SortCols, SortDesc: n.SortDesc, Limit: n.Limit}
	if n.Kind == plan.KindFilter {
		pd := predToDTO(n.Pred)
		d.Pred = &pd
	}
	for _, a := range n.Aggs {
		d.Aggs = append(d.Aggs, aggDTO{Func: string(a.Func), Col: a.Col, As: a.As})
	}
	for _, v := range n.UDFParams {
		k, s := litToDTO(v)
		d.UDFParams = append(d.UDFParams, litDTO{Kind: k, Val: s})
	}
	for _, in := range n.Inputs {
		d.Inputs = append(d.Inputs, planToDTO(in))
	}
	return d
}

func planFromDTO(d planDTO) (*plan.Node, error) {
	n := &plan.Node{Kind: plan.Kind(d.Kind), Dataset: d.Dataset, Cols: d.Cols,
		As: d.As, LCol: d.LCol, RCol: d.RCol, Keys: d.Keys, UDFName: d.UDFName,
		UDFArgs: d.UDFArgs, SortCols: d.SortCols, SortDesc: d.SortDesc, Limit: d.Limit}
	if d.Pred != nil {
		p, err := predFromDTO(*d.Pred)
		if err != nil {
			return nil, err
		}
		n.Pred = p
	}
	for _, a := range d.Aggs {
		n.Aggs = append(n.Aggs, plan.AggSpec{Func: plan.AggFunc(a.Func), Col: a.Col, As: a.As})
	}
	for _, p := range d.UDFParams {
		v, err := litFromDTO(p.Kind, p.Val)
		if err != nil {
			return nil, err
		}
		n.UDFParams = append(n.UDFParams, v)
	}
	for _, in := range d.Inputs {
		child, err := planFromDTO(in)
		if err != nil {
			return nil, err
		}
		n.Inputs = append(n.Inputs, child)
	}
	return n, nil
}

// Save writes the session's datasets and catalog under dir (created if
// needed). UDF calibration scalars are saved by name.
func Save(s *session.Session, dir string) error {
	if err := os.MkdirAll(filepath.Join(dir, "tables"), 0o755); err != nil {
		return err
	}
	cat := catalogDTO{Version: 1, UDFScalars: map[string]float64{}}
	for _, name := range s.Cat.UDFs.Names() {
		if d, ok := s.Cat.UDFs.Get(name); ok && d.Scalar > 0 {
			cat.UDFScalars[name] = d.Scalar
		}
	}
	s.Cat.FDs.Each(func(from []string, to string) {
		cat.FDs = append(cat.FDs, fdDTO{From: from, To: to})
	})
	plans := s.ViewPlans()
	for _, kind := range []storage.Kind{storage.Base, storage.View} {
		for _, name := range s.Store.List(kind) {
			info, ok := s.Cat.Table(name)
			if !ok {
				continue // stored but never cataloged (scratch data)
			}
			ds, _ := s.Store.Meta(name)
			dto := tableDTO{
				Name: name, Cols: info.Cols, KeyCol: info.KeyCol,
				IsView: info.IsView, PlanFP: info.PlanFP,
				Rows: info.Stats.Rows, Bytes: info.Stats.Bytes,
				Distinct: info.Distinct, Ann: annToDTO(info.Ann),
			}
			// The store's declaration is authoritative: it tracks the bytes
			// being written out, including layouts declared after the catalog
			// entry was registered.
			if sigs, parts := s.Store.Partitioning(name); parts > 0 {
				dto.PartSigs, dto.PartParts = sigs, parts
			}
			if pl, ok := plans[name]; ok && info.IsView {
				pd := planToDTO(pl)
				dto.Plan = &pd
			}
			cat.Tables = append(cat.Tables, dto)
			f, err := os.Create(filepath.Join(dir, "tables", name+".tbl"))
			if err != nil {
				return err
			}
			err = ds.Relation().Write(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return fmt.Errorf("persist: writing %s: %w", name, err)
			}
		}
	}
	b, err := json.MarshalIndent(cat, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "catalog.json"), b, 0o644)
}

// Open restores a session from dir. UDFs must be re-registered by the
// caller afterwards; ApplyScalars re-applies saved calibrations.
func Open(dir string, params cost.Params) (*session.Session, *Saved, error) {
	b, err := os.ReadFile(filepath.Join(dir, "catalog.json"))
	if err != nil {
		return nil, nil, err
	}
	var cat catalogDTO
	if err := json.Unmarshal(b, &cat); err != nil {
		return nil, nil, fmt.Errorf("persist: catalog: %w", err)
	}
	if cat.Version != 1 {
		return nil, nil, fmt.Errorf("persist: unsupported catalog version %d", cat.Version)
	}
	s := session.New(params)
	for _, t := range cat.Tables {
		f, err := os.Open(filepath.Join(dir, "tables", t.Name+".tbl"))
		if err != nil {
			return nil, nil, err
		}
		rel, err := data.ReadRelation(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, nil, fmt.Errorf("persist: reading %s: %w", t.Name, err)
		}
		kind := storage.Base
		if t.IsView {
			kind = storage.View
		}
		s.Store.Put(t.Name, kind, rel)
		ann, err := annFromDTO(t.Ann)
		if err != nil {
			return nil, nil, fmt.Errorf("persist: %s: %w", t.Name, err)
		}
		stats := cost.Stats{Rows: t.Rows, Bytes: t.Bytes}
		if t.IsView {
			info := s.Cat.RegisterView(t.Name, t.Cols, ann, stats, t.PlanFP)
			info.Distinct = t.Distinct
			if t.Plan != nil {
				pl, err := planFromDTO(*t.Plan)
				if err != nil {
					return nil, nil, fmt.Errorf("persist: %s plan: %w", t.Name, err)
				}
				s.RestoreViewPlan(t.Name, pl)
			}
		} else {
			// RegisterBase would rebuild a fresh base annotation (identical
			// by construction) and reinstall key FDs; FDs are restored
			// explicitly below, so duplicates are deduplicated there.
			s.Cat.RegisterBase(t.Name, t.Cols, t.KeyCol, stats, t.Distinct)
		}
		if t.PartParts > 0 && len(t.PartSigs) > 0 {
			s.Store.SetPartitioning(t.Name, t.PartSigs, t.PartParts)
			s.Cat.SetPartitioning(t.Name, afk.Partitioning{Sigs: t.PartSigs, Parts: t.PartParts})
		}
	}
	for _, fd := range cat.FDs {
		s.Cat.FDs.Add(fd.From, fd.To)
	}
	s.Store.ResetCounters() // loading is not query I/O
	return s, &Saved{UDFScalars: cat.UDFScalars}, nil
}

// Saved carries restored metadata the caller applies after re-registering
// UDFs.
type Saved struct {
	UDFScalars map[string]float64
}

// ApplyScalars installs saved calibration scalars onto registered UDFs,
// returning the names that were applied. UDFs without a saved scalar still
// need a Calibrate run.
func (sv *Saved) ApplyScalars(s *session.Session) []string {
	var applied []string
	for name, scalar := range sv.UDFScalars {
		if d, ok := s.Cat.UDFs.Get(name); ok {
			d.Scalar = scalar
			applied = append(applied, name)
		}
	}
	return applied
}
