package persist

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"opportune/internal/session"
	"opportune/internal/workload"
)

// TestSaveOpenRoundTrip saves a system mid-exploration and restores it: the
// physical design (views, annotations, stats, FDs, calibrations) must
// survive so the next query version is still rewritten for free.
func TestSaveOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := workload.NewSession(workload.SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	q1 := workload.QueryFor(1, 1)
	if _, err := workload.Exec(s, q1, session.ModeOriginal); err != nil {
		t.Fatal(err)
	}
	viewsBefore := len(s.Cat.Views())
	if err := Save(s, dir); err != nil {
		t.Fatal(err)
	}

	// Restore into a fresh process-equivalent: new session, re-registered
	// UDFs, saved calibrations re-applied.
	s2, saved, err := Open(dir, workload.CostParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range workload.UDFLibrary() {
		if err := s2.Cat.UDFs.Register(d); err != nil {
			t.Fatal(err)
		}
	}
	applied := saved.ApplyScalars(s2)
	if len(applied) != 11 {
		t.Fatalf("scalars applied to %d UDFs, want 11", len(applied))
	}
	for _, name := range s2.Cat.UDFs.Names() {
		d, _ := s2.Cat.UDFs.Get(name)
		orig, _ := s.Cat.UDFs.Get(name)
		if d.Scalar != orig.Scalar {
			t.Errorf("%s scalar %g != saved %g", name, d.Scalar, orig.Scalar)
		}
	}
	if got := len(s2.Cat.Views()); got != viewsBefore {
		t.Fatalf("restored views = %d, want %d", got, viewsBefore)
	}
	// datasets byte-identical
	for _, name := range []string{"twtr", "fsq", "land"} {
		a, err := s.Store.Read(name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := s2.Store.Read(name)
		if err != nil {
			t.Fatal(err)
		}
		if a.Fingerprint() != b.Fingerprint() {
			t.Errorf("%s differs after restore", name)
		}
	}
	// annotations survive: view canon fingerprints identical
	for _, v := range s.Cat.Views() {
		v2, ok := s2.Cat.Table(v.Name)
		if !ok {
			t.Errorf("view %s missing after restore", v.Name)
			continue
		}
		if v.Ann.Canon() != v2.Ann.Canon() {
			t.Errorf("view %s annotation changed:\n  %s\n  %s", v.Name, v.Ann.Canon(), v2.Ann.Canon())
		}
		if v.Stats != v2.Stats {
			t.Errorf("view %s stats changed", v.Name)
		}
	}

	// The acid test: v2 on the RESTORED system is rewritten from the
	// restored views and matches a fresh original run.
	q2 := workload.QueryFor(1, 2)
	m, err := workload.Exec(s2, q2, session.ModeBFR)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rewrite == nil || !m.Rewrite.Improved {
		t.Fatal("restored views not reused")
	}
	ref, err := workload.NewSession(workload.SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := workload.Exec(ref, q2, session.ModeOriginal); err != nil {
		t.Fatal(err)
	}
	got, err := s2.Store.Read(q2.Name)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Store.Read(q2.Name)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != want.Fingerprint() {
		t.Error("rewrite over restored views produced wrong data")
	}
}

func TestOpenErrors(t *testing.T) {
	if _, _, err := Open(t.TempDir(), workload.CostParams()); err == nil {
		t.Error("empty dir opened")
	}
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "catalog.json"), []byte("{not json"), 0o644)
	if _, _, err := Open(dir, workload.CostParams()); err == nil {
		t.Error("corrupt catalog opened")
	}
	os.WriteFile(filepath.Join(dir, "catalog.json"), []byte(`{"version":99}`), 0o644)
	if _, _, err := Open(dir, workload.CostParams()); err == nil {
		t.Error("future version opened")
	}
	// catalog referencing a missing table file
	os.WriteFile(filepath.Join(dir, "catalog.json"),
		[]byte(`{"version":1,"tables":[{"name":"ghost","cols":["a"],"rows":1,"bytes":1,"ann":{"attrs":[{"name":"a","sig":{"dataset":"g","column":"a"}}]}}]}`), 0o644)
	if _, _, err := Open(dir, workload.CostParams()); err == nil {
		t.Error("missing table file opened")
	}
}

func TestSavedScalarsPartialApply(t *testing.T) {
	sv := &Saved{UDFScalars: map[string]float64{"UDF_CLASSIFY_WINE": 20, "GONE": 3}}
	s := session.New(workload.CostParams())
	for _, d := range workload.UDFLibrary() {
		if err := s.Cat.UDFs.Register(d); err != nil {
			t.Fatal(err)
		}
	}
	applied := sv.ApplyScalars(s)
	if len(applied) != 1 || applied[0] != "UDF_CLASSIFY_WINE" {
		t.Errorf("applied = %v", applied)
	}
}

// TestRestoredSessionMaintainsViews covers the restore-path maintenance
// regression: a session restored from disk must keep maintaining its views
// on AppendRows — byte-identical to the never-closed session — instead of
// blanket-invalidating them because the producing plans were lost with the
// process.
func TestRestoredSessionMaintainsViews(t *testing.T) {
	dir := t.TempDir()
	sc := workload.SmallScale()
	live, err := workload.NewSession(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range workload.IngestQueries() {
		if _, err := workload.Exec(live, q, session.ModeOriginal); err != nil {
			t.Fatal(err)
		}
	}
	if err := Save(live, dir); err != nil {
		t.Fatal(err)
	}
	restored, saved, err := Open(dir, workload.CostParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range workload.UDFLibrary() {
		if err := restored.Cat.UDFs.Register(d); err != nil {
			t.Fatal(err)
		}
	}
	saved.ApplyScalars(restored)

	// Identical appends on both sides: the restored session must classify
	// every view exactly as the live one does. Before plans were persisted
	// it invalidated everything with "no captured producing plan".
	for b := 0; b < 2; b++ {
		batch := workload.AppendBatch(sc, b, 40)
		repLive, err := live.AppendRows("twtr", batch)
		if err != nil {
			t.Fatal(err)
		}
		repRest, err := restored.AppendRows("twtr", batch)
		if err != nil {
			t.Fatal(err)
		}
		if len(repLive.Maintained) == 0 {
			t.Fatal("fixture maintains nothing; the oracle is vacuous")
		}
		sort.Strings(repLive.Maintained)
		sort.Strings(repRest.Maintained)
		if !reflect.DeepEqual(repLive.Maintained, repRest.Maintained) {
			t.Fatalf("batch %d: restored session maintained %v, live %v (reasons %v)",
				b, repRest.Maintained, repLive.Maintained, repRest.Reasons)
		}
		sort.Strings(repLive.Invalidated)
		sort.Strings(repRest.Invalidated)
		if !reflect.DeepEqual(repLive.Invalidated, repRest.Invalidated) {
			t.Fatalf("batch %d: invalidation sets differ: restored %v, live %v",
				b, repRest.Invalidated, repLive.Invalidated)
		}
		if !reflect.DeepEqual(repLive.Reasons, repRest.Reasons) {
			t.Errorf("batch %d: invalidation reasons differ: restored %v, live %v",
				b, repRest.Reasons, repLive.Reasons)
		}
	}

	// Byte-identity: every view surviving in the live session survives in
	// the restored one with identical contents and annotation.
	for _, v := range live.Cat.Views() {
		if !live.Store.Has(v.Name) {
			if restored.Store.Has(v.Name) {
				t.Errorf("view %s invalidated live but kept after restore", v.Name)
			}
			continue
		}
		a, err := live.Store.Read(v.Name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := restored.Store.Read(v.Name)
		if err != nil {
			t.Fatalf("view %s lost by the restored session: %v", v.Name, err)
		}
		if a.Fingerprint() != b.Fingerprint() {
			t.Errorf("view %s: restored maintenance diverged from the live session", v.Name)
		}
		v2, ok := restored.Cat.Table(v.Name)
		if !ok {
			t.Errorf("view %s missing from restored catalog", v.Name)
			continue
		}
		if v.Ann.Canon() != v2.Ann.Canon() {
			t.Errorf("view %s: annotation diverged after restored maintenance", v.Name)
		}
	}
}
