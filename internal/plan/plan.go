// Package plan defines logical query plans: DAGs of relational operators
// and UDF applications over base logs and views. Plans are annotated
// bottom-up with (A,F,K) expressions — the first of the two per-node
// annotations the paper's optimizer produces (§2.1); the cost annotation is
// added by the optimizer package.
package plan

import (
	"fmt"
	"strings"

	"opportune/internal/afk"
	"opportune/internal/expr"
	"opportune/internal/meta"
	"opportune/internal/value"
)

// Kind enumerates operator kinds.
type Kind uint8

const (
	// KindScan reads a base log or a materialized view.
	KindScan Kind = iota
	// KindProject keeps a subset of columns.
	KindProject
	// KindFilter applies one predicate.
	KindFilter
	// KindJoin equi-joins two inputs.
	KindJoin
	// KindGroupAgg groups on key columns and computes aggregates.
	KindGroupAgg
	// KindUDF applies a registered UDF.
	KindUDF
	// KindSort totally orders the result and optionally limits it.
	KindSort
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindScan:
		return "scan"
	case KindProject:
		return "project"
	case KindFilter:
		return "filter"
	case KindJoin:
		return "join"
	case KindGroupAgg:
		return "groupagg"
	case KindUDF:
		return "udf"
	case KindSort:
		return "sort"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// AggFunc is a built-in aggregate function.
type AggFunc string

// Built-in aggregates.
const (
	AggCount AggFunc = "count"
	AggSum   AggFunc = "sum"
	AggAvg   AggFunc = "avg"
	AggMin   AggFunc = "min"
	AggMax   AggFunc = "max"
)

// AggSpec is one aggregate in a group-by: Func over Col, named As. AggCount
// with empty Col is COUNT(*).
type AggSpec struct {
	Func AggFunc
	Col  string
	As   string
}

// Node is one logical operator. Inputs are nil for scans, one element for
// unary operators, two for joins.
type Node struct {
	Kind   Kind
	Inputs []*Node

	// KindScan
	Dataset string
	// KindProject
	Cols []string
	// As optionally renames the projected columns (same length as Cols).
	As []string
	// KindFilter (column-name terms)
	Pred expr.Pred
	// KindJoin
	LCol, RCol string
	// KindGroupAgg
	Keys []string
	Aggs []AggSpec
	// KindUDF
	UDFName   string
	UDFArgs   []string
	UDFParams []value.V
	// KindSort
	SortCols []string
	SortDesc []bool
	// Limit caps the result rows after sorting; -1 means no limit.
	Limit int64

	// Computed by Annotate.
	Ann     afk.Annotation
	OutCols []string // physical output column order
	// Part is the physical-layout annotation propagated alongside (A,F,K):
	// how the node's output rows are hash-distributed. Scans take the
	// stored layout from the catalog; per-row operators preserve it (rows
	// keep their bucket residency); boundary operators (GroupAgg, Join,
	// grouping UDFs) produce output bucketed on their own shuffle key with
	// Parts=0 — "keys known, count chosen by the writer" — which the
	// optimizer resolves against cost.Params; Sort funnels through one
	// reducer and clears it.
	Part afk.Partitioning

	// annotated memoizes Annotate: rewrite-candidate construction wraps
	// already-annotated subtrees thousands of times, and re-deriving their
	// annotations bottom-up dominated the search cost. Clone and
	// Substitute clear the flag on every node they copy.
	annotated bool
	// annCanon caches Ann.Canon() (computed together with the annotation):
	// the estimator resolves cross-plan estimates by canon for every node
	// on every compile, and the search compiles the same subtrees many
	// times over.
	annCanon string
}

// AnnCanon returns the canonical annotation fingerprint cached when the
// node was annotated ("" for scans, whose estimates come from the catalog).
func (n *Node) AnnCanon() string { return n.annCanon }

// Scan builds a scan node.
func Scan(dataset string) *Node { return &Node{Kind: KindScan, Dataset: dataset} }

// Project builds a projection node.
func Project(in *Node, cols ...string) *Node {
	return &Node{Kind: KindProject, Inputs: []*Node{in}, Cols: cols}
}

// ProjectAs builds a projection that also renames: column cols[i] is output
// as as[i]. Signatures are preserved, so renamed attributes keep their
// semantic identity.
func ProjectAs(in *Node, cols, as []string) *Node {
	return &Node{Kind: KindProject, Inputs: []*Node{in}, Cols: cols, As: as}
}

// Filter builds a filter node.
func Filter(in *Node, pred expr.Pred) *Node {
	return &Node{Kind: KindFilter, Inputs: []*Node{in}, Pred: pred}
}

// JoinNodes builds an equi-join node.
func JoinNodes(l, r *Node, lCol, rCol string) *Node {
	return &Node{Kind: KindJoin, Inputs: []*Node{l, r}, LCol: lCol, RCol: rCol}
}

// GroupAgg builds a group-by-aggregate node.
func GroupAgg(in *Node, keys []string, aggs ...AggSpec) *Node {
	return &Node{Kind: KindGroupAgg, Inputs: []*Node{in}, Keys: keys, Aggs: aggs}
}

// Apply builds a UDF application node.
func Apply(in *Node, udfName string, args []string, params ...value.V) *Node {
	return &Node{Kind: KindUDF, Inputs: []*Node{in}, UDFName: udfName, UDFArgs: args, UDFParams: params}
}

// Sort builds a total-order node over the named columns (desc[i] flips
// column i); limit caps the output (-1 for none). MR executes this as a
// single-reducer job, as naive Hive ORDER BY does.
func Sort(in *Node, cols []string, desc []bool, limit int64) *Node {
	return &Node{Kind: KindSort, Inputs: []*Node{in}, SortCols: cols, SortDesc: desc, Limit: limit}
}

// Annotate computes (A,F,K) annotations and output column lists bottom-up.
// It returns an error for invalid plans (unknown tables/columns/UDFs,
// ambiguous join column names).
func Annotate(n *Node, cat *meta.Catalog) error {
	if n.annotated {
		return nil
	}
	for _, in := range n.Inputs {
		if err := Annotate(in, cat); err != nil {
			return err
		}
	}
	switch n.Kind {
	case KindScan:
		t, ok := cat.Table(n.Dataset)
		if !ok {
			return fmt.Errorf("plan: unknown dataset %q", n.Dataset)
		}
		n.Ann = t.Ann
		n.OutCols = append([]string(nil), t.Cols...)
		n.Part = t.Part.Clone()

	case KindProject:
		in := n.Inputs[0]
		for _, c := range n.Cols {
			if in.Ann.SigOf(c) == nil {
				return fmt.Errorf("plan: project: column %q not in input %v", c, in.OutCols)
			}
		}
		if len(n.As) > 0 && len(n.As) != len(n.Cols) {
			return fmt.Errorf("plan: project: %d rename targets for %d columns", len(n.As), len(n.Cols))
		}
		if len(n.As) > 0 {
			n.Ann = in.Ann.ProjectRename(n.Cols, n.As)
			n.OutCols = append([]string(nil), n.As...)
		} else {
			n.Ann = in.Ann.Project(n.Cols...)
			n.OutCols = append([]string(nil), n.Cols...)
		}
		// Rows keep their bucket residency under projection, and renames
		// keep signature identity, so the layout property carries through.
		n.Part = in.Part.Clone()

	case KindFilter:
		in := n.Inputs[0]
		for _, c := range n.Pred.Attrs() {
			if in.Ann.SigOf(c) == nil {
				return fmt.Errorf("plan: filter: column %q not in input %v", c, in.OutCols)
			}
		}
		n.Ann = in.Ann.WithFilter(n.Pred)
		n.OutCols = append([]string(nil), in.OutCols...)
		n.Part = in.Part.Clone() // deleting rows never moves survivors

	case KindJoin:
		l, r := n.Inputs[0], n.Inputs[1]
		if l.Ann.SigOf(n.LCol) == nil {
			return fmt.Errorf("plan: join: column %q not in left input %v", n.LCol, l.OutCols)
		}
		if r.Ann.SigOf(n.RCol) == nil {
			return fmt.Errorf("plan: join: column %q not in right input %v", n.RCol, r.OutCols)
		}
		sameSig := l.Ann.MustSig(n.LCol).ID() == r.Ann.MustSig(n.RCol).ID()
		n.OutCols = append([]string(nil), l.OutCols...)
		lset := make(map[string]bool, len(l.OutCols))
		for _, c := range l.OutCols {
			lset[c] = true
		}
		// A set-based A cannot carry the same attribute twice; when a
		// right-side column (other than the shared join column) has a
		// signature already present on the left — e.g. the same per-user
		// aggregate joined once through the user and once through a friend
		// — rebind it to a role-tagged derived signature. This is sound
		// (no false reuse conflation) at the price of reuse opportunities
		// for that column.
		rebinds := make(map[string]*afk.Sig)
		for _, c := range r.OutCols {
			if c == n.RCol && sameSig {
				continue
			}
			s := r.Ann.MustSig(c)
			if _, dup := l.Ann.A[s.ID()]; dup {
				role := afk.DerivedSig("rolecopy:"+c, "", []*afk.Sig{s})
				cat.FDs.Add([]string{s.ID()}, role.ID())
				rebinds[c] = role
			}
		}
		rAnn := r.Ann.RebindAll(rebinds)
		for _, c := range r.OutCols {
			if c == n.RCol && sameSig {
				continue // same logical column; keep the left copy only
			}
			if lset[c] {
				return fmt.Errorf("plan: join: ambiguous column %q (rename one side first)", c)
			}
			n.OutCols = append(n.OutCols, c)
		}
		n.Ann = afk.Join(l.Ann, rAnn, n.LCol, n.RCol)
		// A compiled join shuffles both sides on the join key, so its
		// output is bucketed on that key; the count is the writer's choice.
		n.Part = afk.Partitioning{Sigs: []string{l.Ann.MustSig(n.LCol).ID()}}

	case KindGroupAgg:
		in := n.Inputs[0]
		for _, k := range n.Keys {
			if in.Ann.SigOf(k) == nil {
				return fmt.Errorf("plan: groupagg: key %q not in input %v", k, in.OutCols)
			}
		}
		keySigs := make([]*afk.Sig, len(n.Keys))
		keyIDs := make([]string, len(n.Keys))
		for i, k := range n.Keys {
			keySigs[i] = in.Ann.MustSig(k)
			keyIDs[i] = keySigs[i].ID()
		}
		ctxF := in.Ann.F.Canon()
		aggAttrs := make([]afk.Attr, 0, len(n.Aggs))
		n.OutCols = append([]string(nil), n.Keys...)
		for _, a := range n.Aggs {
			if a.As == "" {
				return fmt.Errorf("plan: groupagg: aggregate %s(%s) needs a name", a.Func, a.Col)
			}
			var inputs []*afk.Sig
			if a.Col == "" {
				if a.Func != AggCount {
					return fmt.Errorf("plan: groupagg: %s requires a column", a.Func)
				}
				inputs = keySigs
			} else {
				s := in.Ann.SigOf(a.Col)
				if s == nil {
					return fmt.Errorf("plan: groupagg: column %q not in input %v", a.Col, in.OutCols)
				}
				inputs = []*afk.Sig{s}
			}
			sig := afk.AggSig("agg_"+string(a.Func), "", inputs, ctxF, keySigs)
			cat.FDs.Add(keyIDs, sig.ID())
			aggAttrs = append(aggAttrs, afk.Attr{Name: a.As, Sig: sig})
			n.OutCols = append(n.OutCols, a.As)
		}
		n.Ann = in.Ann.GroupBy(n.Keys, aggAttrs)
		// A keyed GroupAgg's output is bucketed on its ordered key — the
		// layout the retained view inherits for free.
		if len(keyIDs) > 0 {
			n.Part = afk.Partitioning{Sigs: append([]string(nil), keyIDs...)}
		} else {
			n.Part = afk.Partitioning{}
		}

	case KindUDF:
		in := n.Inputs[0]
		d, ok := cat.UDFs.Get(n.UDFName)
		if !ok {
			return fmt.Errorf("plan: unknown UDF %q", n.UDFName)
		}
		ann, err := d.Annotate(in.Ann, n.UDFArgs, n.UDFParams, cat.FDs)
		if err != nil {
			return fmt.Errorf("plan: %w", err)
		}
		n.Ann = ann
		n.OutCols = udfOutCols(d, in.OutCols, ann)
		n.Part = udfPart(d, in.Part, ann)

	case KindSort:
		in := n.Inputs[0]
		if len(n.SortDesc) != 0 && len(n.SortDesc) != len(n.SortCols) {
			return fmt.Errorf("plan: sort: %d desc flags for %d columns", len(n.SortDesc), len(n.SortCols))
		}
		for _, c := range n.SortCols {
			if in.Ann.SigOf(c) == nil {
				return fmt.Errorf("plan: sort: column %q not in input %v", c, in.OutCols)
			}
		}
		// Ordering alone does not change the (A,F,K) model (set semantics);
		// a LIMIT taints the output as physically-order-dependent.
		n.Ann = in.Ann
		if n.Limit >= 0 {
			n.Ann = in.Ann.WithLimited()
		}
		n.OutCols = append([]string(nil), in.OutCols...)
		n.Part = afk.Partitioning{} // total order funnels through one reducer

	default:
		return fmt.Errorf("plan: invalid node kind %d", n.Kind)
	}
	if n.Kind != KindScan {
		n.annCanon = n.Ann.Canon()
	}
	n.annotated = true
	return nil
}

// udfPart derives the layout annotation of a UDF application: per-row UDFs
// keep rows (and any extra rows they explode into) in their input's bucket,
// so the layout carries through; grouping UDFs are boundary operators whose
// output is bucketed on their key columns — provided every key survives
// into the output annotation — and otherwise clear the property.
func udfPart(d descriptorLike, in afk.Partitioning, ann afk.Annotation) afk.Partitioning {
	if !d.IsAgg() {
		return in.Clone()
	}
	keys := d.KeyCols()
	if len(keys) == 0 {
		return afk.Partitioning{}
	}
	sigs := make([]string, 0, len(keys))
	for _, k := range keys {
		s := ann.SigOf(k)
		if s == nil {
			return afk.Partitioning{}
		}
		sigs = append(sigs, s.ID())
	}
	return afk.Partitioning{Sigs: sigs}
}

// udfOutCols derives the physical column order of a UDF application.
func udfOutCols(d descriptorLike, inCols []string, ann afk.Annotation) []string {
	var out []string
	have := make(map[string]bool)
	add := func(c string) {
		if ann.SigOf(c) != nil && !have[c] {
			have[c] = true
			out = append(out, c)
		}
	}
	if d.IsAgg() {
		for _, k := range d.KeyCols() {
			add(k)
		}
		for _, o := range d.Outs() {
			add(o)
		}
		return out
	}
	for _, c := range inCols {
		add(c)
	}
	for _, o := range d.Outs() {
		add(o)
	}
	// Exploding UDFs add a hidden row-key column; pick up any annotation
	// attribute not yet covered (deterministic order via ann.Names()).
	for _, c := range ann.Names() {
		add(c)
	}
	return out
}

// descriptorLike decouples udfOutCols from the udf package's struct layout
// (and keeps it testable).
type descriptorLike interface {
	IsAgg() bool
	KeyCols() []string
	Outs() []string
}

// Fingerprint is the syntactic identity of the plan: operator structure,
// datasets, predicates, parameters — everything except annotation-level
// semantics. Two plans are "identical" to caching-based systems (ReStore,
// §8.3.4) iff fingerprints match.
func (n *Node) Fingerprint() string {
	var sb strings.Builder
	n.fp(&sb)
	return sb.String()
}

func (n *Node) fp(sb *strings.Builder) {
	sb.WriteString(n.Kind.String())
	sb.WriteByte('(')
	switch n.Kind {
	case KindScan:
		sb.WriteString(n.Dataset)
	case KindProject:
		sb.WriteString(strings.Join(n.Cols, ","))
		if len(n.As) > 0 {
			sb.WriteString(">" + strings.Join(n.As, ","))
		}
	case KindFilter:
		sb.WriteString(n.Pred.Canon())
	case KindJoin:
		sb.WriteString(n.LCol + "=" + n.RCol)
	case KindGroupAgg:
		sb.WriteString(strings.Join(n.Keys, ","))
		for _, a := range n.Aggs {
			fmt.Fprintf(sb, ";%s:%s:%s", a.Func, a.Col, a.As)
		}
	case KindUDF:
		sb.WriteString(n.UDFName)
		sb.WriteString(";")
		sb.WriteString(strings.Join(n.UDFArgs, ","))
		for _, p := range n.UDFParams {
			sb.WriteString(";" + p.String())
		}
	case KindSort:
		sb.WriteString(strings.Join(n.SortCols, ","))
		for _, d := range n.SortDesc {
			fmt.Fprintf(sb, ";%v", d)
		}
		fmt.Fprintf(sb, ";limit=%d", n.Limit)
	}
	for _, in := range n.Inputs {
		sb.WriteByte('|')
		in.fp(sb)
	}
	sb.WriteByte(')')
}

// Clone deep-copies the plan tree. Annotations are value-like and shared.
func (n *Node) Clone() *Node {
	c := *n
	c.annotated = false
	c.annCanon = ""
	c.Inputs = make([]*Node, len(n.Inputs))
	for i, in := range n.Inputs {
		c.Inputs[i] = in.Clone()
	}
	c.Cols = append([]string(nil), n.Cols...)
	c.As = append([]string(nil), n.As...)
	c.Keys = append([]string(nil), n.Keys...)
	c.Aggs = append([]AggSpec(nil), n.Aggs...)
	c.UDFArgs = append([]string(nil), n.UDFArgs...)
	c.UDFParams = append([]value.V(nil), n.UDFParams...)
	c.SortCols = append([]string(nil), n.SortCols...)
	c.SortDesc = append([]bool(nil), n.SortDesc...)
	c.OutCols = append([]string(nil), n.OutCols...)
	c.Part = n.Part.Clone()
	return &c
}

// Substitute returns a copy of root where every node present (by pointer)
// in repl is replaced by its substitute subtree (not descended into).
// This is how rewrites found at upstream targets compose into downstream
// plans (PROPBESTREWRITE).
func Substitute(root *Node, repl map[*Node]*Node) *Node {
	if r, ok := repl[root]; ok {
		return r
	}
	c := *root
	c.annotated = false
	c.annCanon = ""
	c.Inputs = make([]*Node, len(root.Inputs))
	for i, in := range root.Inputs {
		c.Inputs[i] = Substitute(in, repl)
	}
	return &c
}

// Walk visits the tree bottom-up (inputs before node).
func Walk(n *Node, fn func(*Node)) {
	for _, in := range n.Inputs {
		Walk(in, fn)
	}
	fn(n)
}

// String renders the plan tree compactly for debugging.
func (n *Node) String() string {
	var sb strings.Builder
	n.str(&sb, 0)
	return sb.String()
}

func (n *Node) str(sb *strings.Builder, depth int) {
	sb.WriteString(strings.Repeat("  ", depth))
	switch n.Kind {
	case KindScan:
		fmt.Fprintf(sb, "scan %s", n.Dataset)
	case KindProject:
		fmt.Fprintf(sb, "project %s", strings.Join(n.Cols, ","))
	case KindFilter:
		fmt.Fprintf(sb, "filter %s", n.Pred)
	case KindJoin:
		fmt.Fprintf(sb, "join %s=%s", n.LCol, n.RCol)
	case KindGroupAgg:
		fmt.Fprintf(sb, "groupagg keys=%s", strings.Join(n.Keys, ","))
	case KindUDF:
		fmt.Fprintf(sb, "udf %s(%s)", n.UDFName, strings.Join(n.UDFArgs, ","))
	case KindSort:
		fmt.Fprintf(sb, "sort %s limit=%d", strings.Join(n.SortCols, ","), n.Limit)
	}
	sb.WriteByte('\n')
	for _, in := range n.Inputs {
		in.str(sb, depth+1)
	}
}
