package plan

import (
	"strings"
	"testing"

	"opportune/internal/cost"
	"opportune/internal/expr"
	"opportune/internal/meta"
	"opportune/internal/udf"
	"opportune/internal/value"
)

func testCatalog(t *testing.T) *meta.Catalog {
	t.Helper()
	cat := meta.NewCatalog()
	cat.RegisterBase("twtr", []string{"tweet_id", "user_id", "text", "reply_to"}, "tweet_id",
		cost.Stats{Rows: 1000, Bytes: 100000}, map[string]int64{"user_id": 100})
	cat.RegisterBase("fsq", []string{"checkin_id", "user_id", "location_id"}, "checkin_id",
		cost.Stats{Rows: 500, Bytes: 20000}, nil)
	err := cat.UDFs.Register(&udf.Descriptor{
		Name: "UDF_SENT", NArgs: 1, Kind: udf.KindMap, OutNames: []string{"score"},
		Map: func(args, _ []value.V) [][]value.V {
			return [][]value.V{{value.NewFloat(float64(len(args[0].Str())))}}
		},
		TrueScalar: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = cat.UDFs.Register(&udf.Descriptor{
		Name: "UDF_USERSUM", NArgs: 2, Kind: udf.KindAgg,
		KeyNames: []string{"user_id"}, KeyArgs: []int{0}, OutNames: []string{"total"},
		Reduce: func(_ []value.V, ps [][]value.V, _ []value.V) []value.V {
			var s float64
			for _, p := range ps {
				s += p[0].Float()
			}
			return []value.V{value.NewFloat(s)}
		},
		TrueScalar: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestAnnotateScanProjectFilter(t *testing.T) {
	cat := testCatalog(t)
	p := Filter(
		Project(Scan("twtr"), "user_id", "text"),
		expr.NewCmp("user_id", expr.Gt, value.NewInt(10)),
	)
	if err := Annotate(p, cat); err != nil {
		t.Fatal(err)
	}
	if len(p.OutCols) != 2 {
		t.Errorf("OutCols = %v", p.OutCols)
	}
	if len(p.Ann.F) != 1 {
		t.Errorf("F = %v", p.Ann.F)
	}
	// K survives projection
	if !p.Ann.K.HasID("b:twtr.tweet_id") {
		t.Error("lost record key")
	}
}

func TestAnnotateErrors(t *testing.T) {
	cat := testCatalog(t)
	cases := []*Node{
		Scan("nope"),
		Project(Scan("twtr"), "missing"),
		Filter(Scan("twtr"), expr.NewCmp("missing", expr.Eq, value.NewInt(1))),
		JoinNodes(Scan("twtr"), Scan("fsq"), "missing", "user_id"),
		JoinNodes(Scan("twtr"), Scan("fsq"), "user_id", "missing"),
		GroupAgg(Scan("twtr"), []string{"missing"}),
		GroupAgg(Scan("twtr"), []string{"user_id"}, AggSpec{Func: AggCount, Col: "", As: ""}),
		GroupAgg(Scan("twtr"), []string{"user_id"}, AggSpec{Func: AggSum, Col: "", As: "s"}),
		GroupAgg(Scan("twtr"), []string{"user_id"}, AggSpec{Func: AggSum, Col: "missing", As: "s"}),
		Apply(Scan("twtr"), "NOPE", []string{"text"}),
		Apply(Scan("twtr"), "UDF_SENT", []string{"missing"}),
	}
	for i, p := range cases {
		if err := Annotate(p, cat); err == nil {
			t.Errorf("case %d: bad plan annotated", i)
		}
	}
}

func TestAnnotateJoinSharedKey(t *testing.T) {
	cat := testCatalog(t)
	// user_id of twtr and fsq are DIFFERENT base sigs; join keeps both names?
	// fsq side's user_id collides with twtr's -> ambiguous error expected.
	p := JoinNodes(Scan("twtr"), Scan("fsq"), "user_id", "user_id")
	if err := Annotate(p, cat); err == nil {
		t.Error("ambiguous column accepted")
	} else if !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("unexpected error: %v", err)
	}
	// After projecting away the collision it works.
	p2 := JoinNodes(
		Project(Scan("twtr"), "user_id", "text"),
		Project(Scan("fsq"), "checkin_id", "location_id"),
		"user_id", "checkin_id") // silly join, but name-collision free
	if err := Annotate(p2, cat); err != nil {
		t.Fatal(err)
	}
	if len(p2.OutCols) != 4 {
		t.Errorf("OutCols = %v", p2.OutCols)
	}
	// join condition in F
	hasJoin := false
	for _, pr := range p2.Ann.F {
		if pr.Kind == expr.KindAttrEq {
			hasJoin = true
		}
	}
	if !hasJoin {
		t.Error("join condition not recorded")
	}
}

func TestAnnotateJoinSameSigDedups(t *testing.T) {
	cat := testCatalog(t)
	// Self-join-ish: both sides derive from twtr.user_id (same signature).
	l := GroupAgg(Scan("twtr"), []string{"user_id"}, AggSpec{Func: AggCount, As: "n"})
	r := GroupAgg(Filter(Scan("twtr"), expr.NewCmp("user_id", expr.Gt, value.NewInt(5))),
		[]string{"user_id"}, AggSpec{Func: AggCount, As: "m"})
	p := JoinNodes(l, r, "user_id", "user_id")
	if err := Annotate(p, cat); err != nil {
		t.Fatal(err)
	}
	// user_id appears once in OutCols
	count := 0
	for _, c := range p.OutCols {
		if c == "user_id" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("user_id count = %d in %v", count, p.OutCols)
	}
}

func TestAnnotateGroupAgg(t *testing.T) {
	cat := testCatalog(t)
	p := GroupAgg(Scan("twtr"), []string{"user_id"},
		AggSpec{Func: AggCount, As: "n"},
		AggSpec{Func: AggSum, Col: "reply_to", As: "s"},
	)
	if err := Annotate(p, cat); err != nil {
		t.Fatal(err)
	}
	if len(p.OutCols) != 3 || p.OutCols[0] != "user_id" {
		t.Errorf("OutCols = %v", p.OutCols)
	}
	nSig := p.Ann.MustSig("n")
	if !nSig.Agg {
		t.Error("count sig not Agg")
	}
	// FD registered keys -> agg
	if !cat.FDs.Determines([]string{p.Ann.MustSig("user_id").ID()}, nSig.ID()) {
		t.Error("keys->agg FD missing")
	}
	// grouping context: same agg over filtered input differs
	p2 := GroupAgg(Filter(Scan("twtr"), expr.NewCmp("user_id", expr.Gt, value.NewInt(1))),
		[]string{"user_id"}, AggSpec{Func: AggCount, As: "n"})
	if err := Annotate(p2, cat); err != nil {
		t.Fatal(err)
	}
	if p2.Ann.MustSig("n").ID() == nSig.ID() {
		t.Error("filter context ignored in agg identity")
	}
}

func TestAnnotateUDFNodes(t *testing.T) {
	cat := testCatalog(t)
	p := Apply(Scan("twtr"), "UDF_SENT", []string{"text"})
	if err := Annotate(p, cat); err != nil {
		t.Fatal(err)
	}
	if len(p.OutCols) != 5 || p.OutCols[4] != "score" {
		t.Errorf("OutCols = %v", p.OutCols)
	}
	agg := Apply(p, "UDF_USERSUM", []string{"user_id", "score"})
	if err := Annotate(agg, cat); err != nil {
		t.Fatal(err)
	}
	if len(agg.OutCols) != 2 || agg.OutCols[0] != "user_id" || agg.OutCols[1] != "total" {
		t.Errorf("agg OutCols = %v", agg.OutCols)
	}
	if !agg.Ann.Grouped {
		t.Error("agg UDF output not grouped")
	}
}

func TestFingerprint(t *testing.T) {
	cat := testCatalog(t)
	mk := func(lit int64) *Node {
		p := Filter(Project(Scan("twtr"), "user_id"), expr.NewCmp("user_id", expr.Gt, value.NewInt(lit)))
		if err := Annotate(p, cat); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if mk(5).Fingerprint() != mk(5).Fingerprint() {
		t.Error("same plan, different fingerprints")
	}
	if mk(5).Fingerprint() == mk(6).Fingerprint() {
		t.Error("different literal, same fingerprint")
	}
	// op order matters syntactically (the caching-baseline property, §8.3.4)
	a := Filter(Filter(Scan("twtr"), expr.NewCmp("user_id", expr.Gt, value.NewInt(1))), expr.NewCmp("reply_to", expr.Gt, value.NewInt(2)))
	b := Filter(Filter(Scan("twtr"), expr.NewCmp("reply_to", expr.Gt, value.NewInt(2))), expr.NewCmp("user_id", expr.Gt, value.NewInt(1)))
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("filter order ignored syntactically")
	}
	// ... but the ANNOTATIONS are equal (the semantic win of the paper)
	if err := Annotate(a, cat); err != nil {
		t.Fatal(err)
	}
	if err := Annotate(b, cat); err != nil {
		t.Fatal(err)
	}
	if !a.Ann.Equal(b.Ann) {
		t.Error("reordered filters not semantically equal")
	}
}

func TestCloneAndSubstitute(t *testing.T) {
	cat := testCatalog(t)
	scan := Scan("twtr")
	p := Filter(Project(scan, "user_id", "text"), expr.NewCmp("user_id", expr.Gt, value.NewInt(1)))
	if err := Annotate(p, cat); err != nil {
		t.Fatal(err)
	}
	c := p.Clone()
	c.Inputs[0].Cols[0] = "text" // mutate clone
	if p.Inputs[0].Cols[0] != "user_id" {
		t.Error("Clone aliases")
	}
	// Substitute the scan with a view scan
	repl := map[*Node]*Node{scan: Scan("some_view")}
	s := Substitute(p, repl)
	if s.Inputs[0].Inputs[0].Dataset != "some_view" {
		t.Error("Substitute missed")
	}
	if p.Inputs[0].Inputs[0].Dataset != "twtr" {
		t.Error("Substitute mutated original")
	}
}

func TestWalkOrder(t *testing.T) {
	p := Filter(Project(Scan("twtr"), "user_id"), expr.NewCmp("user_id", expr.Gt, value.NewInt(1)))
	var kinds []Kind
	Walk(p, func(n *Node) { kinds = append(kinds, n.Kind) })
	want := []Kind{KindScan, KindProject, KindFilter}
	if len(kinds) != 3 {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("walk order = %v", kinds)
		}
	}
}

func TestStringRendering(t *testing.T) {
	p := JoinNodes(Scan("a"), GroupAgg(Scan("b"), []string{"k"}), "x", "k")
	s := p.String()
	for _, want := range []string{"join", "scan a", "groupagg", "scan b"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q:\n%s", want, s)
		}
	}
	if KindScan.String() != "scan" || Kind(99).String() != "kind(99)" {
		t.Error("Kind names")
	}
}

func TestSortNodeAnnotation(t *testing.T) {
	cat := testCatalog(t)
	base := Project(Scan("twtr"), "user_id", "reply_to")
	s := Sort(base, []string{"reply_to"}, []bool{true}, 10)
	if err := Annotate(s, cat); err != nil {
		t.Fatal(err)
	}
	if !s.Ann.Limited {
		t.Error("LIMIT did not taint")
	}
	if len(s.OutCols) != 2 {
		t.Errorf("OutCols = %v", s.OutCols)
	}
	// pure sort: no taint, annotation identical to input
	s2 := Sort(Project(Scan("twtr"), "user_id", "reply_to"), []string{"user_id"}, nil, -1)
	if err := Annotate(s2, cat); err != nil {
		t.Fatal(err)
	}
	if s2.Ann.Limited {
		t.Error("pure ORDER BY tainted")
	}
	if !s2.Ann.Equal(s2.Inputs[0].Ann) {
		t.Error("sort changed the set-semantics annotation")
	}
	// fingerprints distinguish sort specs
	mk := func(desc bool, lim int64) string {
		n := Sort(Scan("twtr"), []string{"user_id"}, []bool{desc}, lim)
		return n.Fingerprint()
	}
	if mk(true, 5) == mk(false, 5) || mk(true, 5) == mk(true, 6) {
		t.Error("sort fingerprint ignores spec")
	}
	// clone copies sort fields
	c := s.Clone()
	c.SortCols[0] = "user_id"
	if s.SortCols[0] != "reply_to" {
		t.Error("Clone aliases SortCols")
	}
	// rendering
	if !strings.Contains(s.String(), "sort reply_to limit=10") {
		t.Errorf("String = %q", s.String())
	}
	// errors
	bad := Sort(Scan("twtr"), []string{"missing"}, nil, -1)
	if err := Annotate(bad, cat); err == nil {
		t.Error("sort on missing column accepted")
	}
	bad2 := Sort(Scan("twtr"), []string{"user_id"}, []bool{true, false}, -1)
	if err := Annotate(bad2, cat); err == nil {
		t.Error("mismatched desc flags accepted")
	}
}

func TestProjectAsValidation(t *testing.T) {
	cat := testCatalog(t)
	p := ProjectAs(Scan("twtr"), []string{"user_id", "text"}, []string{"uid", "msg"})
	if err := Annotate(p, cat); err != nil {
		t.Fatal(err)
	}
	if p.OutCols[0] != "uid" || p.Ann.SigOf("uid") == nil || p.Ann.SigOf("user_id") != nil {
		t.Errorf("rename wrong: %v", p.OutCols)
	}
	// signature preserved under rename
	if p.Ann.MustSig("uid").ID() != "b:twtr.user_id" {
		t.Error("rename changed identity")
	}
	bad := ProjectAs(Scan("twtr"), []string{"user_id"}, []string{"a", "b"})
	if err := Annotate(bad, cat); err == nil {
		t.Error("length-mismatched rename accepted")
	}
}
