package rewrite_test

import (
	"testing"

	"opportune/internal/hiveql"
	"opportune/internal/optimizer"
	"opportune/internal/rewrite"
	"opportune/internal/session"
	"opportune/internal/workload"
)

// newBenchState prepares a user-evolution-like search state once: seven
// analysts' v1 views are in the system; A1v1 is the probe query.
func newBenchState(b *testing.B) *session.Session {
	b.Helper()
	s, err := workload.NewSession(workload.SmallScale())
	if err != nil {
		b.Fatal(err)
	}
	for a := 2; a <= 8; a++ {
		if _, err := workload.Exec(s, workload.QueryFor(a, 1), session.ModeOriginal); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

func compileProbe(b *testing.B, s *session.Session) *optimizer.Work {
	b.Helper()
	st, err := hiveql.ParseOne(workload.QueryFor(1, 1).SQL)
	if err != nil {
		b.Fatal(err)
	}
	w, err := s.Opt.Compile(st.Plan)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkBFRewriteSearch measures one full BFREWRITE search (search only,
// no execution) against the accumulated views.
func BenchmarkBFRewriteSearch(b *testing.B) {
	s := newBenchState(b)
	views := s.Cat.Views()
	b.ReportMetric(float64(len(views)), "views")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Opt.ClearEstimates()
		res := s.Rew.BFRewrite(compileProbe(b, s), views)
		if !res.Improved {
			b.Fatal("no rewrite found")
		}
	}
}

// BenchmarkDPRewriteSearch measures the exhaustive baseline on the same
// state (expect orders of magnitude above BFREWRITE).
func BenchmarkDPRewriteSearch(b *testing.B) {
	s := newBenchState(b)
	views := s.Cat.Views()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Opt.ClearEstimates()
		res := s.Rew.DPRewrite(compileProbe(b, s), views)
		if !res.Improved {
			b.Fatal("no rewrite found")
		}
	}
}

// BenchmarkParallelProbe measures probing every accumulated view against
// the sink target in one batch — the unit the rewrite search fans out over
// its worker pool.
func BenchmarkParallelProbe(b *testing.B) {
	s := newBenchState(b)
	w := compileProbe(b, s)
	views := s.Cat.Views()
	target := w.Sink()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Opt.ClearEstimates()
		rewrite.ProbeCandidates(s.Rew, target, views)
	}
}

// BenchmarkProbeCandidate measures one candidate evaluation: OPTCOST plus
// (when guessed complete) the REWRITEENUM compensation search.
func BenchmarkProbeCandidate(b *testing.B) {
	s := newBenchState(b)
	w := compileProbe(b, s)
	views := s.Cat.Views()
	target := w.Sink()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := views[i%len(views)]
		rewrite.ProbeCandidate(s.Rew, target, v)
	}
}
