package rewrite

import (
	"time"

	"opportune/internal/meta"
	"opportune/internal/optimizer"
	"opportune/internal/plan"
)

// TraceEvent records search progress for the anytime analysis (Fig 11).
type TraceEvent struct {
	Elapsed       time.Duration
	BestPlanCost  float64 // BESTPLANCOST_n at this point
	RewritesFound int
}

// Result is the outcome of a rewrite search over a plan W.
type Result struct {
	// Plan produces the query result; it is the original logical plan when
	// no improving rewrite was found. A bare view scan means the result is
	// already materialized and nothing needs to run.
	Plan *plan.Node
	// Cost is the estimated cost of Plan; OriginalCost that of W.
	Cost         float64
	OriginalCost float64
	Improved     bool

	Counters Counters
	Trace    []TraceEvent
	Runtime  time.Duration

	// TargetWork records, per rewritable target, the largest OPTCOST bound
	// among candidates the search examined and the target's final best
	// cost — the evidence behind Theorem 1's work-efficiency claim (the
	// search never examines a candidate whose lower bound exceeds the cost
	// of the best plan it settles on).
	TargetWork []TargetWork
}

// TargetWork is one target's work-efficiency evidence.
type TargetWork struct {
	Target           int
	Examined         int
	MaxExaminedBound float64
	FinalBestCost    float64
}

// planCost estimates a rewrite plan's execution cost. A bare scan of an
// existing dataset costs nothing: the target's output is already
// materialized. Costs memoize by plan fingerprint until the next
// statistics reset — sound because estimates are consistent within a
// generation (the same annotation always resolves to the same stats), so
// recompiling a syntactically identical plan cannot change its cost. The
// memo is skipped inside probe tasks, where cost evaluation must flow
// through the task's estimate-cache fork.
func (r *Rewriter) planCost(p *plan.Node) (float64, error) {
	if p.Kind == plan.KindScan {
		return 0, plan.Annotate(p, r.Cat)
	}
	fp := ""
	if !r.forked {
		fp = p.Fingerprint()
		if c, ok := r.planMemoGet(fp); ok {
			return c, nil
		}
	}
	w, err := r.Opt.Compile(p)
	if err != nil {
		return 0, err
	}
	c := w.TotalCost()
	if fp != "" {
		r.planMemoPut(fp, c)
	}
	return c, nil
}

// bfState is the per-target state of Algorithm 1.
type bfState struct {
	finder    *viewFinder
	bestPlan  *plan.Node
	bestCost  float64
	consumers []int
}

// BFRewrite is Algorithm 1: the best-first search for the minimum-cost
// rewrite r* of W using the given views. Each target W_i gets a stateful
// VIEWFINDER; FINDNEXTMINTARGET picks the globally most promising target,
// REFINETARGET advances it one candidate, and improvements propagate to
// downstream targets (PROPBESTREWRITE, Algorithm 3).
func (r *Rewriter) BFRewrite(w *optimizer.Work, views []*meta.TableInfo) *Result {
	start := time.Now()
	res := &Result{OriginalCost: w.TotalCost()}

	n := len(w.Nodes)
	states := make([]*bfState, n)
	for i, jn := range w.Nodes {
		states[i] = &bfState{
			finder:   newViewFinder(r, jn, views, &res.Counters),
			bestPlan: jn.Logical,
			bestCost: w.CostThrough(i),
		}
	}
	for i, jn := range w.Nodes {
		for _, d := range jn.Deps {
			states[d.Index].consumers = append(states[d.Index].consumers, i)
		}
	}

	sink := w.Sink().Index
	trace := func() {
		res.Trace = append(res.Trace, TraceEvent{
			Elapsed:       time.Since(start),
			BestPlanCost:  states[sink].bestCost,
			RewritesFound: res.Counters.RewritesFound,
		})
	}
	trace()

	// FINDNEXTMINTARGET (Algorithm 2): recursively pick the target whose
	// next candidate has the lowest potential cost for producing W_i.
	var findNext func(i int) (int, float64)
	findNext = func(i int) (int, float64) {
		dPrime := 0.0
		wMin, dMin := -1, inf
		for _, dep := range w.Nodes[i].Deps {
			k, d := findNext(dep.Index)
			dPrime += d
			if k >= 0 && d < dMin {
				wMin, dMin = k, d
			}
		}
		dPrime += w.Nodes[i].EstCost.Total()
		di := states[i].finder.Peek()
		switch {
		case min2(dPrime, di) >= states[i].bestCost:
			return -1, states[i].bestCost
		case dPrime < di:
			return wMin, dPrime
		default:
			return i, di
		}
	}

	// PROPBESTREWRITE (Algorithm 3): recompose downstream plans from the
	// improved upstream best plan.
	var propagate func(k int)
	propagate = func(k int) {
		subs := make(map[*plan.Node]*plan.Node)
		for _, dep := range w.Nodes[k].Deps {
			subs[dep.Logical] = states[dep.Index].bestPlan
		}
		composed := plan.Substitute(w.Nodes[k].Logical, subs)
		c, err := r.planCost(composed)
		if err != nil {
			return
		}
		if c < states[k].bestCost {
			states[k].bestCost = c
			states[k].bestPlan = composed
			for _, next := range states[k].consumers {
				propagate(next)
			}
		}
	}

	// REFINETARGET (Algorithm 2, second function).
	refine := func(i int) {
		ri, c := states[i].finder.Refine()
		if ri != nil && c < states[i].bestCost {
			states[i].bestCost = c
			states[i].bestPlan = ri
			for _, k := range states[i].consumers {
				propagate(k)
			}
			trace()
		}
	}

	for {
		i, _ := findNext(sink)
		if i < 0 {
			break
		}
		refine(i)
	}

	res.Plan = states[sink].bestPlan
	res.Cost = states[sink].bestCost
	res.Improved = res.Plan != w.Sink().Logical
	res.Runtime = time.Since(start)
	trace()
	for i, st := range states {
		tw := TargetWork{Target: i, Examined: len(st.finder.poppedBounds), FinalBestCost: st.bestCost}
		for _, b := range st.finder.poppedBounds {
			if b > tw.MaxExaminedBound {
				tw.MaxExaminedBound = b
			}
		}
		res.TargetWork = append(res.TargetWork, tw)
	}
	return res
}

func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
