// Package rewrite implements the paper's query-rewriting machinery: the
// OPTCOST lower bound (§4.3), the VIEWFINDER incremental candidate search
// (§7), the BFREWRITE best-first algorithm (§6), and the two baselines of
// §8 — exhaustive DP and syntactic-only matching (BFR-SYNTACTIC).
package rewrite

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"opportune/internal/afk"
	"opportune/internal/cost"
	"opportune/internal/meta"
	"opportune/internal/optimizer"
	"opportune/internal/plan"
)

// Candidate is a candidate view for rewriting a target: a single
// materialized view, or several merged (joined) views. Its Plan is the
// pre-compensation scan/join tree over the constituent views.
type Candidate struct {
	Views []*meta.TableInfo
	Plan  *plan.Node
	Ann   afk.Annotation
	Stats cost.Stats // combined read volume of the constituents

	OptCost float64
	key     string // dedup key
}

// Key is the candidate's canonical identity: constituent views plus merge
// structure.
func (c *Candidate) Key() string { return c.key }

// Names returns the constituent view names, sorted.
func (c *Candidate) Names() []string {
	out := make([]string, len(c.Views))
	for i, v := range c.Views {
		out[i] = v.Name
	}
	sort.Strings(out)
	return out
}

// Rewriter holds the shared machinery: the catalog, the optimizer (for
// costing rewrites), and the algorithm parameters J and k (§5).
type Rewriter struct {
	Cat *meta.Catalog
	Opt *optimizer.Optimizer
	// MaxViews is J: the maximum number of views merged into one rewrite.
	MaxViews int
	// MaxOpRepeat is k: how often one operator may repeat in a compensation.
	MaxOpRepeat int

	// Ablation switches (normally false), quantifying each pruning source:
	// DisableOptCost makes every relevant candidate's lower bound zero, so
	// BFREWRITE loses both its candidate ordering and its early
	// termination; DisableGuessComplete attempts REWRITEENUM on every
	// candidate examined.
	DisableOptCost       bool
	DisableGuessComplete bool
}

// NewRewriter creates a rewriter with the paper's experimental parameters
// J=4, k=2.
func NewRewriter(cat *meta.Catalog, opt *optimizer.Optimizer) *Rewriter {
	return &Rewriter{Cat: cat, Opt: opt, MaxViews: 4, MaxOpRepeat: 2}
}

// single builds the candidate for one view.
func (r *Rewriter) single(v *meta.TableInfo) (*Candidate, error) {
	p := plan.Scan(v.Name)
	if err := plan.Annotate(p, r.Cat); err != nil {
		return nil, err
	}
	return &Candidate{
		Views: []*meta.TableInfo{v},
		Plan:  p,
		Ann:   p.Ann,
		Stats: v.Stats,
		key:   v.Name,
	}, nil
}

// Merge attempts to merge two candidates (the MERGE function of
// Algorithm 4, a standard view-merging step). A merged candidate's identity
// is its *set* of constituent views, and its join tree is built
// canonically (see buildMerged), so its cost is well-defined regardless of
// the order the search discovered the set in — which the optimality of the
// best-first search relies on. skip, when non-nil, suppresses already-seen
// sets before the (costly) plan construction.
func (r *Rewriter) Merge(a, b *Candidate, skip func(key string) bool) []*Candidate {
	if len(a.Views)+len(b.Views) > r.MaxViews {
		return nil
	}
	// Reject merges of overlapping view sets.
	names := make(map[string]bool, len(a.Views))
	for _, v := range a.Views {
		names[v.Name] = true
	}
	for _, v := range b.Views {
		if names[v.Name] {
			return nil
		}
	}
	// The sides must share at least one joinable signature (an attribute
	// of both with key status on one side) for the set to be connected.
	joinable := false
	for id := range a.Ann.A {
		if _, ok := b.Ann.A[id]; ok && (a.Ann.K.HasID(id) || b.Ann.K.HasID(id)) {
			joinable = true
			break
		}
	}
	if !joinable {
		return nil
	}
	views := append(append([]*meta.TableInfo(nil), a.Views...), b.Views...)
	key := setKey(views)
	if skip != nil && skip(key) {
		return nil
	}
	m, err := r.buildMerged(views, key)
	if err != nil {
		return nil
	}
	return []*Candidate{m}
}

// setKey is the canonical identity of a view set.
func setKey(views []*meta.TableInfo) string {
	names := make([]string, len(views))
	for i, v := range views {
		names[i] = v.Name
	}
	sort.Strings(names)
	return strings.Join(names, "+")
}

// buildMerged constructs the canonical join tree of a view set: views
// ordered by (size, name) ascending, accumulated left-deep, each step
// joining in the first remaining view that shares a joinable signature
// with the accumulated side (on the smallest such signature ID).
func (r *Rewriter) buildMerged(views []*meta.TableInfo, key string) (*Candidate, error) {
	ordered := append([]*meta.TableInfo(nil), views...)
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].Stats.Bytes != ordered[j].Stats.Bytes {
			return ordered[i].Stats.Bytes < ordered[j].Stats.Bytes
		}
		return ordered[i].Name < ordered[j].Name
	})
	cur, err := r.single(ordered[0])
	if err != nil {
		return nil, err
	}
	remaining := ordered[1:]
	for len(remaining) > 0 {
		progressed := false
		for i, v := range remaining {
			side, err := r.single(v)
			if err != nil {
				return nil, err
			}
			sigID := joinSig(cur, side)
			if sigID == "" {
				continue
			}
			cur, err = r.mergeOn(cur, side, sigID)
			if err != nil {
				return nil, err
			}
			remaining = append(remaining[:i], remaining[i+1:]...)
			progressed = true
			break
		}
		if !progressed {
			return nil, fmt.Errorf("rewrite: view set not connected")
		}
	}
	cur.key = key
	return cur, nil
}

// joinSig picks the canonical join signature between two candidates: the
// smallest shared signature ID that is a grouping key of either side.
func joinSig(a, b *Candidate) string {
	best := ""
	for id := range a.Ann.A {
		if _, ok := b.Ann.A[id]; !ok {
			continue
		}
		if !a.Ann.K.HasID(id) && !b.Ann.K.HasID(id) {
			continue
		}
		if best == "" || id < best {
			best = id
		}
	}
	return best
}

// mergeOn joins two candidates on the given common signature ID.
func (r *Rewriter) mergeOn(a, b *Candidate, sigID string) (*Candidate, error) {
	lCol := a.Ann.NameOfSig(sigID)
	rCol := b.Ann.NameOfSig(sigID)
	if lCol == "" || rCol == "" {
		return nil, fmt.Errorf("rewrite: join signature unnamed")
	}
	right := b.Plan
	// Resolve column-name collisions (other than the shared join column,
	// which annotation-level dedup handles) by renaming the right side.
	lNames := make(map[string]bool, len(a.Plan.OutCols))
	for _, c := range a.Plan.OutCols {
		lNames[c] = true
	}
	taken := make(map[string]bool, len(a.Plan.OutCols)+len(b.Plan.OutCols))
	for _, c := range a.Plan.OutCols {
		taken[c] = true
	}
	for _, c := range b.Plan.OutCols {
		taken[c] = true
	}
	var cols, as []string
	renamed := false
	for _, c := range b.Plan.OutCols {
		cols = append(cols, c)
		if lNames[c] && !(c == rCol && c == lCol) {
			fresh := "m_" + c
			for taken[fresh] {
				fresh = "m_" + fresh
			}
			taken[fresh] = true
			as = append(as, fresh)
			renamed = true
		} else {
			as = append(as, c)
		}
	}
	if renamed {
		right = plan.ProjectAs(right, cols, as)
		if rNew := indexRename(cols, as, rCol); rNew != "" {
			rCol = rNew
		}
	}
	p := plan.JoinNodes(a.Plan, right, lCol, rCol)
	if err := plan.Annotate(p, r.Cat); err != nil {
		return nil, err
	}
	views := append(append([]*meta.TableInfo(nil), a.Views...), b.Views...)
	c := &Candidate{
		Views: views,
		Plan:  p,
		Ann:   p.Ann,
		Stats: cost.Stats{Rows: a.Stats.Rows + b.Stats.Rows, Bytes: a.Stats.Bytes + b.Stats.Bytes},
		key:   setKey(views),
	}
	return c, nil
}

func indexRename(cols, as []string, col string) string {
	for i, c := range cols {
		if c == col {
			return as[i]
		}
	}
	return ""
}

// Relevant reports whether a candidate can possibly participate in a
// complete rewrite of q: it must carry at least one signature useful to q
// (an attribute of q or an ingredient of one), and its filters must be
// implied by q's (a view that excluded tuples q needs can never join back
// to completeness, since merges only conjoin filters).
func (r *Rewriter) Relevant(q afk.Annotation, c *Candidate) bool {
	if c.Ann.Limited || q.Limited {
		return false // see GuessComplete: LIMIT is outside the model
	}
	if !q.F.ImpliesAll(c.Ann.F) {
		return false
	}
	useful := usefulSigs(q)
	for id := range c.Ann.A {
		if useful[id] {
			return true
		}
	}
	return false
}

// usefulSigs collects the signature IDs of q's attributes, keys, filter
// columns, and (recursively) every ingredient needed to derive them.
func usefulSigs(q afk.Annotation) map[string]bool {
	useful := make(map[string]bool)
	var add func(s *afk.Sig)
	add = func(s *afk.Sig) {
		if useful[s.ID()] {
			return
		}
		useful[s.ID()] = true
		for _, in := range s.Inputs {
			add(in)
		}
		for _, k := range s.GroupBy {
			add(k)
		}
	}
	for _, s := range q.A {
		add(s)
	}
	for _, s := range q.K {
		add(s)
	}
	for _, p := range q.F.Preds() {
		for _, id := range p.Attrs() {
			if s, ok := afk.Lookup(id); ok {
				add(s)
			}
		}
	}
	return useful
}

// OptCost is the lower bound of §4.3 on the cost of any rewrite of target q
// that uses this candidate's views: the cost of a synthesized single-local-
// function UDF that applies the fix to the candidate — reading the
// candidate's data plus, by the non-subsumable cost property, the cheapest
// operation of the fix per row. Irrelevant candidates get +Inf.
//
// The bound is sound for the optimizer's COST: any rewrite using these
// views reads at least their bytes and runs at least one local function
// over their rows.
func (r *Rewriter) OptCost(q *optimizer.JobNode, c *Candidate) float64 {
	if !r.Relevant(q.Ann, c) {
		return inf
	}
	if r.DisableOptCost {
		return 0
	}
	fix := afk.ComputeFix(q.Ann, c.Ann)
	if fix.Empty() && len(c.Views) == 1 {
		// No compensation needed: the view may answer the target as-is,
		// straight off disk, at zero execution cost.
		return 0
	}
	read := float64(c.Stats.Bytes) / r.Opt.Params.ReadRate
	var cpu float64
	if ops := fix.OpTypes(); len(ops) > 0 {
		cpu = float64(c.Stats.Rows) * r.Opt.Params.CPUSecondsPerTuple(cost.LocalFn{Ops: ops, Scalar: 1})
	}
	return read + cpu
}

var inf = math.Inf(1)

// ProbeCandidate evaluates one view as a candidate for one target:
// it returns the candidate's OPTCOST and, when the view is guessed complete
// and REWRITEENUM succeeds, the rewrite plan with its cost. Exposed for
// property tests and ablation experiments.
func ProbeCandidate(r *Rewriter, q *optimizer.JobNode, v *meta.TableInfo) (float64, *plan.Node, float64) {
	c, err := r.single(v)
	if err != nil {
		return inf, nil, inf
	}
	oc := r.OptCost(q, c)
	if !afk.GuessComplete(q.Ann, c.Ann, r.Cat.FDs) {
		return oc, nil, inf
	}
	p, cost := r.RewriteEnum(q, c)
	return oc, p, cost
}
