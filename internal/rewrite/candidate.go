// Package rewrite implements the paper's query-rewriting machinery: the
// OPTCOST lower bound (§4.3), the VIEWFINDER incremental candidate search
// (§7), the BFREWRITE best-first algorithm (§6), and the two baselines of
// §8 — exhaustive DP and syntactic-only matching (BFR-SYNTACTIC).
package rewrite

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"opportune/internal/afk"
	"opportune/internal/cost"
	"opportune/internal/meta"
	"opportune/internal/optimizer"
	"opportune/internal/plan"
)

// Candidate is a candidate view for rewriting a target: a single
// materialized view, or several merged (joined) views. Its Plan is the
// pre-compensation scan/join tree over the constituent views.
type Candidate struct {
	Views []*meta.TableInfo
	Plan  *plan.Node
	Ann   afk.Annotation
	Stats cost.Stats // combined read volume of the constituents

	OptCost float64
	key     string   // dedup key
	names   []string // constituent view names, sorted once at construction
	sigs    []string // Ann.A signature IDs, sorted once at construction
}

// Key is the candidate's canonical identity: constituent views plus merge
// structure.
func (c *Candidate) Key() string { return c.key }

// Names returns the constituent view names, sorted.
func (c *Candidate) Names() []string {
	return append([]string(nil), c.names...)
}

// Rewriter holds the shared machinery: the catalog, the optimizer (for
// costing rewrites), and the algorithm parameters J and k (§5).
type Rewriter struct {
	Cat *meta.Catalog
	Opt *optimizer.Optimizer
	// MaxViews is J: the maximum number of views merged into one rewrite.
	MaxViews int
	// MaxOpRepeat is k: how often one operator may repeat in a compensation.
	MaxOpRepeat int

	// Ablation switches (normally false), quantifying each pruning source:
	// DisableOptCost makes every relevant candidate's lower bound zero, so
	// BFREWRITE loses both its candidate ordering and its early
	// termination; DisableGuessComplete attempts REWRITEENUM on every
	// candidate examined.
	DisableOptCost       bool
	DisableGuessComplete bool

	// ProbeWorkers bounds the worker pool that probes candidates in
	// parallel (compensation-order enumeration, view-finder merges, batch
	// probes); 0 means GOMAXPROCS. Results are folded in a deterministic
	// order, so the pool size never changes the winner or any counter.
	ProbeWorkers int

	// forked marks a task-local rewriter inside a parallel probe region
	// (see forkedWith): it runs serially on a forked optimizer and never
	// touches the shared memos.
	forked bool

	// memo caches probe and plan-cost results across search iterations; it
	// is shared (by pointer) with forked copies but only ever consulted
	// from the serial root context.
	memo *memoState
}

// memoState holds the rewrite-layer memos, keyed by estimate generation:
// ClearEstimates bumps the generation, and the first access under a new
// generation drops everything — exactly the points where a serial search
// would recompute against fresh statistics.
type memoState struct {
	mu      sync.Mutex
	gen     uint64
	probe   map[string]probeHit        // (candidate key, target fingerprint) -> enum result
	plans   map[string]float64         // plan fingerprint -> compiled total cost
	singles map[string]*Candidate      // view name -> single-view candidate template
	merges  map[string]*Candidate      // view-set key -> merged template (nil: not connected)
	useful  map[string]map[string]bool // target fingerprint -> useful signature IDs
}

// probeHit is a memoized REWRITEENUM outcome.
type probeHit struct {
	plan *plan.Node
	cost float64
}

func (m *memoState) sync(gen uint64) {
	if m.gen != gen {
		m.gen = gen
		m.probe = nil
		m.plans = nil
		m.singles = nil
		m.merges = nil
		m.useful = nil
	}
}

func (r *Rewriter) probeMemoGet(key string) (probeHit, bool) {
	if r.memo == nil {
		return probeHit{}, false
	}
	r.memo.mu.Lock()
	defer r.memo.mu.Unlock()
	r.memo.sync(r.Opt.EstGen())
	h, ok := r.memo.probe[key]
	return h, ok
}

func (r *Rewriter) probeMemoPut(key string, h probeHit) {
	if r.memo == nil {
		return
	}
	r.memo.mu.Lock()
	defer r.memo.mu.Unlock()
	r.memo.sync(r.Opt.EstGen())
	if r.memo.probe == nil {
		r.memo.probe = make(map[string]probeHit)
	}
	r.memo.probe[key] = h
}

func (r *Rewriter) planMemoGet(fp string) (float64, bool) {
	if r.memo == nil {
		return 0, false
	}
	r.memo.mu.Lock()
	defer r.memo.mu.Unlock()
	r.memo.sync(r.Opt.EstGen())
	c, ok := r.memo.plans[fp]
	return c, ok
}

func (r *Rewriter) planMemoPut(fp string, c float64) {
	if r.memo == nil {
		return
	}
	r.memo.mu.Lock()
	defer r.memo.mu.Unlock()
	r.memo.sync(r.Opt.EstGen())
	if r.memo.plans == nil {
		r.memo.plans = make(map[string]float64)
	}
	r.memo.plans[fp] = c
}

// NewRewriter creates a rewriter with the paper's experimental parameters
// J=4, k=2.
func NewRewriter(cat *meta.Catalog, opt *optimizer.Optimizer) *Rewriter {
	return &Rewriter{Cat: cat, Opt: opt, MaxViews: 4, MaxOpRepeat: 2, memo: &memoState{}}
}

// forkedWith returns a task-local copy of the rewriter for one parallel
// probe task: it runs against the forked optimizer, enumerates serially
// (no nested pools), and skips the shared memos so memo behavior — and
// therefore every counter — is identical at every pool size.
func (r *Rewriter) forkedWith(opt *optimizer.Optimizer) *Rewriter {
	c := *r
	c.Opt = opt
	c.forked = true
	c.ProbeWorkers = 1
	return &c
}

// single builds the candidate for one view. Construction (a scan node plus
// its annotation) is cached per view until the next statistics reset; each
// caller gets its own shallow copy, since callers mutate OptCost. The
// cached value is independent of when it was built — annotating a view
// scan depends only on catalog registration state, and its FD additions
// are idempotent — so which caller populates the cache is unobservable.
func (r *Rewriter) single(v *meta.TableInfo) (*Candidate, error) {
	if r.memo != nil {
		r.memo.mu.Lock()
		r.memo.sync(r.Opt.EstGen())
		if t, ok := r.memo.singles[v.Name]; ok {
			r.memo.mu.Unlock()
			c := *t
			return &c, nil
		}
		r.memo.mu.Unlock()
	}
	p := plan.Scan(v.Name)
	if err := plan.Annotate(p, r.Cat); err != nil {
		return nil, err
	}
	t := &Candidate{
		Views: []*meta.TableInfo{v},
		Plan:  p,
		Ann:   p.Ann,
		Stats: v.Stats,
		key:   v.Name,
		names: []string{v.Name},
		sigs:  sortedSigIDs(p.Ann),
	}
	if r.memo != nil {
		r.memo.mu.Lock()
		r.memo.sync(r.Opt.EstGen())
		if r.memo.singles == nil {
			r.memo.singles = make(map[string]*Candidate)
		}
		r.memo.singles[v.Name] = t
		r.memo.mu.Unlock()
	}
	c := *t
	return &c, nil
}

// sortedSigIDs caches a candidate's attribute signature IDs in sorted
// order, so joinSig can scan ascending and stop at the first (= smallest)
// shared keyed signature instead of re-sorting per merge attempt.
func sortedSigIDs(ann afk.Annotation) []string {
	ids := make([]string, 0, len(ann.A))
	for id := range ann.A {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// mergeSortedNames merges two sorted, internally-duplicate-free name lists,
// reporting whether they overlap.
func mergeSortedNames(a, b []string) (merged []string, overlap bool) {
	merged = make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return nil, true
		case a[i] < b[j]:
			merged = append(merged, a[i])
			i++
		default:
			merged = append(merged, b[j])
			j++
		}
	}
	merged = append(merged, a[i:]...)
	merged = append(merged, b[j:]...)
	return merged, false
}

// Merge attempts to merge two candidates (the MERGE function of
// Algorithm 4, a standard view-merging step). A merged candidate's identity
// is its *set* of constituent views, and its join tree is built
// canonically (see buildMerged), so its cost is well-defined regardless of
// the order the search discovered the set in — which the optimality of the
// best-first search relies on. skip, when non-nil, suppresses already-seen
// sets before the (costly) plan construction.
func (r *Rewriter) Merge(a, b *Candidate, skip func(key string) bool) []*Candidate {
	if len(a.Views)+len(b.Views) > r.MaxViews {
		return nil
	}
	// Reject merges of overlapping view sets; the merged sorted name list
	// doubles as the canonical identity of the union.
	merged, overlap := mergeSortedNames(a.names, b.names)
	if overlap {
		return nil
	}
	// The sides must share at least one joinable signature (an attribute
	// of both with key status on one side) for the set to be connected.
	joinable := false
	for _, id := range a.sigs {
		if _, ok := b.Ann.A[id]; ok && (a.Ann.K.HasID(id) || b.Ann.K.HasID(id)) {
			joinable = true
			break
		}
	}
	if !joinable {
		return nil
	}
	key := strings.Join(merged, "+")
	if skip != nil && skip(key) {
		return nil
	}
	// The merged candidate depends only on the view set (the join tree is
	// canonical), not on the pair the search discovered it through or the
	// target — cache the construction per set key, nil marking a set that
	// proved unconnected. Callers get shallow copies (they mutate OptCost).
	if r.memo != nil {
		r.memo.mu.Lock()
		r.memo.sync(r.Opt.EstGen())
		t, ok := r.memo.merges[key]
		r.memo.mu.Unlock()
		if ok {
			if t == nil {
				return nil
			}
			c := *t
			return []*Candidate{&c}
		}
	}
	views := append(append([]*meta.TableInfo(nil), a.Views...), b.Views...)
	m, err := r.buildMerged(views, key)
	if err != nil {
		m = nil
	}
	if r.memo != nil {
		r.memo.mu.Lock()
		r.memo.sync(r.Opt.EstGen())
		if r.memo.merges == nil {
			r.memo.merges = make(map[string]*Candidate)
		}
		r.memo.merges[key] = m
		r.memo.mu.Unlock()
	}
	if m == nil {
		return nil
	}
	c := *m
	return []*Candidate{&c}
}

// buildMerged constructs the canonical join tree of a view set: views
// ordered by (size, name) ascending, accumulated left-deep, each step
// joining in the first remaining view that shares a joinable signature
// with the accumulated side (on the smallest such signature ID).
func (r *Rewriter) buildMerged(views []*meta.TableInfo, key string) (*Candidate, error) {
	ordered := append([]*meta.TableInfo(nil), views...)
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].Stats.Bytes != ordered[j].Stats.Bytes {
			return ordered[i].Stats.Bytes < ordered[j].Stats.Bytes
		}
		return ordered[i].Name < ordered[j].Name
	})
	cur, err := r.single(ordered[0])
	if err != nil {
		return nil, err
	}
	remaining := ordered[1:]
	for len(remaining) > 0 {
		progressed := false
		for i, v := range remaining {
			side, err := r.single(v)
			if err != nil {
				return nil, err
			}
			sigID := joinSig(cur, side)
			if sigID == "" {
				continue
			}
			cur, err = r.mergeOn(cur, side, sigID)
			if err != nil {
				return nil, err
			}
			remaining = append(remaining[:i], remaining[i+1:]...)
			progressed = true
			break
		}
		if !progressed {
			return nil, fmt.Errorf("rewrite: view set not connected")
		}
	}
	cur.key = key
	return cur, nil
}

// joinSig picks the canonical join signature between two candidates: the
// smallest shared signature ID that is a grouping key of either side. The
// cached sorted ID list makes the first match the smallest.
func joinSig(a, b *Candidate) string {
	for _, id := range a.sigs {
		if _, ok := b.Ann.A[id]; !ok {
			continue
		}
		if a.Ann.K.HasID(id) || b.Ann.K.HasID(id) {
			return id
		}
	}
	return ""
}

// mergeOn joins two candidates on the given common signature ID.
func (r *Rewriter) mergeOn(a, b *Candidate, sigID string) (*Candidate, error) {
	lCol := a.Ann.NameOfSig(sigID)
	rCol := b.Ann.NameOfSig(sigID)
	if lCol == "" || rCol == "" {
		return nil, fmt.Errorf("rewrite: join signature unnamed")
	}
	right := b.Plan
	// Resolve column-name collisions (other than the shared join column,
	// which annotation-level dedup handles) by renaming the right side.
	lNames := make(map[string]bool, len(a.Plan.OutCols))
	for _, c := range a.Plan.OutCols {
		lNames[c] = true
	}
	taken := make(map[string]bool, len(a.Plan.OutCols)+len(b.Plan.OutCols))
	for _, c := range a.Plan.OutCols {
		taken[c] = true
	}
	for _, c := range b.Plan.OutCols {
		taken[c] = true
	}
	var cols, as []string
	renamed := false
	for _, c := range b.Plan.OutCols {
		cols = append(cols, c)
		if lNames[c] && !(c == rCol && c == lCol) {
			fresh := "m_" + c
			for taken[fresh] {
				fresh = "m_" + fresh
			}
			taken[fresh] = true
			as = append(as, fresh)
			renamed = true
		} else {
			as = append(as, c)
		}
	}
	if renamed {
		right = plan.ProjectAs(right, cols, as)
		if rNew := indexRename(cols, as, rCol); rNew != "" {
			rCol = rNew
		}
	}
	p := plan.JoinNodes(a.Plan, right, lCol, rCol)
	if err := plan.Annotate(p, r.Cat); err != nil {
		return nil, err
	}
	views := append(append([]*meta.TableInfo(nil), a.Views...), b.Views...)
	names, _ := mergeSortedNames(a.names, b.names)
	c := &Candidate{
		Views: views,
		Plan:  p,
		Ann:   p.Ann,
		Stats: cost.Stats{Rows: a.Stats.Rows + b.Stats.Rows, Bytes: a.Stats.Bytes + b.Stats.Bytes},
		key:   strings.Join(names, "+"),
		names: names,
		sigs:  sortedSigIDs(p.Ann),
	}
	return c, nil
}

func indexRename(cols, as []string, col string) string {
	for i, c := range cols {
		if c == col {
			return as[i]
		}
	}
	return ""
}

// Relevant reports whether a candidate can possibly participate in a
// complete rewrite of q: it must carry at least one signature useful to q
// (an attribute of q or an ingredient of one), and its filters must be
// implied by q's (a view that excluded tuples q needs can never join back
// to completeness, since merges only conjoin filters).
func (r *Rewriter) Relevant(q afk.Annotation, c *Candidate) bool {
	return r.relevantWith(q, c, usefulSigs(q))
}

func (r *Rewriter) relevantWith(q afk.Annotation, c *Candidate, useful map[string]bool) bool {
	if c.Ann.Limited || q.Limited {
		return false // see GuessComplete: LIMIT is outside the model
	}
	if !q.F.ImpliesAll(c.Ann.F) {
		return false
	}
	for id := range c.Ann.A {
		if useful[id] {
			return true
		}
	}
	return false
}

// usefulSigsFor caches usefulSigs per target (by plan fingerprint): the
// set depends only on the target's annotation, and OPTCOST re-derives it
// for every candidate examined against that target.
func (r *Rewriter) usefulSigsFor(q *optimizer.JobNode) map[string]bool {
	if r.memo == nil {
		return usefulSigs(q.Ann)
	}
	r.memo.mu.Lock()
	r.memo.sync(r.Opt.EstGen())
	if u, ok := r.memo.useful[q.PlanFP]; ok {
		r.memo.mu.Unlock()
		return u
	}
	r.memo.mu.Unlock()
	u := usefulSigs(q.Ann) // compute outside the lock; the map is read-only after
	r.memo.mu.Lock()
	if r.memo.useful == nil {
		r.memo.useful = make(map[string]map[string]bool)
	}
	r.memo.useful[q.PlanFP] = u
	r.memo.mu.Unlock()
	return u
}

// usefulSigs collects the signature IDs of q's attributes, keys, filter
// columns, and (recursively) every ingredient needed to derive them.
func usefulSigs(q afk.Annotation) map[string]bool {
	useful := make(map[string]bool)
	var add func(s *afk.Sig)
	add = func(s *afk.Sig) {
		if useful[s.ID()] {
			return
		}
		useful[s.ID()] = true
		for _, in := range s.Inputs {
			add(in)
		}
		for _, k := range s.GroupBy {
			add(k)
		}
	}
	for _, s := range q.A {
		add(s)
	}
	for _, s := range q.K {
		add(s)
	}
	for _, p := range q.F.Preds() {
		for _, id := range p.Attrs() {
			if s, ok := afk.Lookup(id); ok {
				add(s)
			}
		}
	}
	return useful
}

// OptCost is the lower bound of §4.3 on the cost of any rewrite of target q
// that uses this candidate's views: the cost of a synthesized single-local-
// function UDF that applies the fix to the candidate — reading the
// candidate's data plus, by the non-subsumable cost property, the cheapest
// operation of the fix per row. Irrelevant candidates get +Inf.
//
// The bound is sound for the optimizer's COST: any rewrite using these
// views reads at least their bytes and runs at least one local function
// over their rows.
func (r *Rewriter) OptCost(q *optimizer.JobNode, c *Candidate) float64 {
	if !r.relevantWith(q.Ann, c, r.usefulSigsFor(q)) {
		return inf
	}
	if r.DisableOptCost {
		return 0
	}
	fix := afk.ComputeFix(q.Ann, c.Ann)
	if fix.Empty() && len(c.Views) == 1 {
		// No compensation needed: the view may answer the target as-is,
		// straight off disk, at zero execution cost.
		return 0
	}
	read := float64(c.Stats.Bytes) / r.Opt.Params.ReadRate
	var cpu float64
	if ops := fix.OpTypes(); len(ops) > 0 {
		cpu = float64(c.Stats.Rows) * r.Opt.Params.CPUSecondsPerTuple(cost.LocalFn{Ops: ops, Scalar: 1})
	}
	return read + cpu
}

var inf = math.Inf(1)

// ProbeCandidate evaluates one view as a candidate for one target:
// it returns the candidate's OPTCOST and, when the view is guessed complete
// and REWRITEENUM succeeds, the rewrite plan with its cost. Exposed for
// property tests and ablation experiments.
func ProbeCandidate(r *Rewriter, q *optimizer.JobNode, v *meta.TableInfo) (float64, *plan.Node, float64) {
	c, err := r.single(v)
	if err != nil {
		return inf, nil, inf
	}
	oc := r.OptCost(q, c)
	if !afk.GuessComplete(q.Ann, c.Ann, r.Cat.FDs) {
		return oc, nil, inf
	}
	p, cost := r.RewriteEnum(q, c)
	return oc, p, cost
}

// ProbeResult is one view's outcome from a batch probe: the OPTCOST lower
// bound, and — when GUESSCOMPLETE passed and REWRITEENUM found a rewrite —
// the rewrite plan with its cost (nil, +Inf otherwise).
type ProbeResult struct {
	View    *meta.TableInfo
	OptCost float64
	Plan    *plan.Node
	Cost    float64
}

// ProbeCandidates evaluates each view against one target, fanning the
// REWRITEENUM calls over the rewriter's probe pool. Candidate construction,
// OPTCOST, and GUESSCOMPLETE run serially first: GUESSCOMPLETE reads the
// FD set, whose contents grow as plans are annotated, so its verdicts must
// be sequenced exactly as a serial probe loop would sequence them. Each
// surviving view then enumerates on a forked optimizer; the forks' estimate
// logs replay in view order, so results and cache counters are identical to
// the serial loop at every pool size.
func ProbeCandidates(r *Rewriter, q *optimizer.JobNode, views []*meta.TableInfo) []ProbeResult {
	out := make([]ProbeResult, len(views))
	cands := make([]*Candidate, len(views))
	var enum []int
	for i, v := range views {
		out[i] = ProbeResult{View: v, OptCost: inf, Cost: inf}
		c, err := r.single(v)
		if err != nil {
			continue
		}
		cands[i] = c
		out[i].OptCost = r.OptCost(q, c)
		if afk.GuessComplete(q.Ann, c.Ann, r.Cat.FDs) {
			enum = append(enum, i)
		}
	}
	forks := make([]*optimizer.Optimizer, len(enum))
	for j := range forks {
		forks[j] = r.Opt.ForkEstimates()
	}
	runParallel(r.probeWorkers(), len(enum), func(j int) {
		i := enum[j]
		sub := r.forkedWith(forks[j])
		out[i].Plan, out[i].Cost = sub.RewriteEnum(q, cands[i])
	})
	for j := range enum {
		r.Opt.MergeEstimates(forks[j])
	}
	return out
}
