package rewrite_test

import (
	"math"
	"testing"
	"testing/quick"

	"opportune/internal/cost"
	"opportune/internal/data"
	"opportune/internal/expr"
	"opportune/internal/plan"
	"opportune/internal/rewrite"
	"opportune/internal/session"
	"opportune/internal/storage"
	"opportune/internal/udf"
	"opportune/internal/value"
)

// geoSys builds a session with a checkin log and a parameterized tiling UDF.
func geoSys(t *testing.T, rows int) *session.Session {
	t.Helper()
	s := session.New(cost.DefaultParams())
	rel := data.NewRelation(data.NewSchema("cid", "user", "lat", "lon", "spend"))
	for i := 0; i < rows; i++ {
		rel.Append(data.Row{
			value.NewInt(int64(i)),
			value.NewInt(int64(i % 9)),
			value.NewFloat(37 + float64(i%50)/25),
			value.NewFloat(-122 + float64(i%40)/20),
			value.NewFloat(float64(i%17) * 1.5),
		})
	}
	s.Store.Put("checkins", storage.Base, rel)
	s.Cat.RegisterBase("checkins", rel.Schema().Cols(), "cid",
		cost.Stats{Rows: int64(rows), Bytes: rel.EncodedSize()},
		map[string]int64{"user": 9, "cid": int64(rows)})
	if err := s.Cat.UDFs.Register(&udf.Descriptor{
		Name: "TILE", NArgs: 2, NParams: 1, Kind: udf.KindMap, OutNames: []string{"tile"},
		Map: func(args, params []value.V) [][]value.V {
			sz := params[0].Float()
			return [][]value.V{{value.NewStr(
				string(rune('a'+int(math.Floor(args[0].Float()/sz))%26)) +
					string(rune('a'+int(math.Floor(args[1].Float()/sz))%26)))}}
		},
		TrueScalar: 4,
	}); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestParameterizedUDFCompensation: a projection view lacks the tiled
// column; the rewrite must re-apply TILE with the ORIGINAL parameter
// (reconstructed from the signature's parameter fingerprint).
func TestParameterizedUDFCompensation(t *testing.T) {
	s := geoSys(t, 600)
	narrow := plan.Project(plan.Scan("checkins"), "user", "lat", "lon")
	if _, err := s.Run(narrow, "narrow", session.ModeOriginal); err != nil {
		t.Fatal(err)
	}
	mk := func() *plan.Node {
		return plan.GroupAgg(
			plan.Apply(plan.Scan("checkins"), "TILE", []string{"lat", "lon"}, value.NewFloat(0.5)),
			[]string{"tile"}, plan.AggSpec{Func: plan.AggCount, As: "n"})
	}
	m, err := s.Run(mk(), "q", session.ModeBFR)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rewrite == nil || !m.Rewrite.Improved {
		t.Fatal("parameterized compensation not found")
	}
	// the compensated plan must reference the original parameter
	found := false
	plan.Walk(m.Rewrite.Plan, func(n *plan.Node) {
		if n.Kind == plan.KindUDF && n.UDFName == "TILE" {
			if len(n.UDFParams) == 1 && n.UDFParams[0].Float() == 0.5 {
				found = true
			}
		}
	})
	if !found {
		t.Error("rewrite lost the UDF parameter")
	}
	ref := geoSys(t, 600)
	if _, err := ref.Run(mk(), "ref", session.ModeOriginal); err != nil {
		t.Fatal(err)
	}
	a, _ := s.Store.Read("q")
	b, _ := ref.Store.Read("ref")
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("parameterized rewrite produced wrong data")
	}
}

// TestMultiAggregateCompensation: the target needs SUM and AVG over the
// same grouping; both must collapse into ONE GroupAgg compensation unit
// (appUnit.merge) applied to a raw projection view.
func TestMultiAggregateCompensation(t *testing.T) {
	s := geoSys(t, 500)
	narrow := plan.Project(plan.Scan("checkins"), "user", "spend")
	if _, err := s.Run(narrow, "narrow", session.ModeOriginal); err != nil {
		t.Fatal(err)
	}
	mk := func() *plan.Node {
		return plan.GroupAgg(plan.Scan("checkins"), []string{"user"},
			plan.AggSpec{Func: plan.AggSum, Col: "spend", As: "total"},
			plan.AggSpec{Func: plan.AggAvg, Col: "spend", As: "avg_spend"},
			plan.AggSpec{Func: plan.AggMax, Col: "spend", As: "max_spend"},
		)
	}
	m, err := s.Run(mk(), "q", session.ModeBFR)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rewrite == nil || !m.Rewrite.Improved {
		t.Fatal("multi-aggregate compensation not found")
	}
	// exactly one groupagg in the compensation (not one per aggregate)
	groupaggs := 0
	plan.Walk(m.Rewrite.Plan, func(n *plan.Node) {
		if n.Kind == plan.KindGroupAgg {
			groupaggs++
			if len(n.Aggs) != 3 {
				t.Errorf("compensation groupagg has %d aggs, want 3", len(n.Aggs))
			}
		}
	})
	if groupaggs != 1 {
		t.Errorf("groupaggs in rewrite = %d, want 1", groupaggs)
	}
	ref := geoSys(t, 500)
	if _, err := ref.Run(mk(), "ref", session.ModeOriginal); err != nil {
		t.Fatal(err)
	}
	a, _ := s.Store.Read("q")
	b, _ := ref.Store.Read("ref")
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("multi-aggregate rewrite produced wrong data")
	}
}

// TestThresholdPairsProperty: for random threshold pairs (t1, t2), running
// q(t1) then q(t2) with BFR always matches a fresh original run of q(t2) —
// whether t2 is tighter (reuse via implication), equal (identical view), or
// weaker (no reuse of the filtered result).
func TestThresholdPairsProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property runs many sessions")
	}
	check := func(t1Raw, t2Raw uint8) bool {
		t1 := float64(t1Raw % 30)
		t2 := float64(t2Raw % 30)
		mk := func(th float64) *plan.Node {
			agg := plan.GroupAgg(plan.Scan("checkins"), []string{"user"},
				plan.AggSpec{Func: plan.AggSum, Col: "spend", As: "total"})
			return plan.Filter(agg, expr.NewCmp("total", expr.Gt, value.NewFloat(th)))
		}
		s := geoSys(t, 300)
		if _, err := s.Run(mk(t1), "q1", session.ModeBFR); err != nil {
			t.Fatal(err)
		}
		m, err := s.Run(mk(t2), "q2", session.ModeBFR)
		if err != nil {
			t.Fatal(err)
		}
		ref := geoSys(t, 300)
		if _, err := ref.Run(mk(t2), "ref", session.ModeOriginal); err != nil {
			t.Fatal(err)
		}
		got, err := s.Store.Read(m.ResultName)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := ref.Store.Read("ref")
		return got.Fingerprint() == want.Fingerprint()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestCountersAdd covers the counter aggregation helper.
func TestCountersAdd(t *testing.T) {
	a := rewrite.Counters{CandidatesConsidered: 1, RewriteAttempts: 2, RewritesFound: 3}
	a.Add(rewrite.Counters{CandidatesConsidered: 10, RewriteAttempts: 20, RewritesFound: 30})
	if a.CandidatesConsidered != 11 || a.RewriteAttempts != 22 || a.RewritesFound != 33 {
		t.Errorf("Add = %+v", a)
	}
}
