package rewrite

import (
	"time"

	"opportune/internal/afk"
	"opportune/internal/meta"
	"opportune/internal/optimizer"
	"opportune/internal/plan"
)

// DPCandidateCap bounds the exhaustively exploded candidate space per
// target so the baseline terminates on large view sets; the paper's DP
// becomes "prohibitively expensive even when 250 views are present"
// (§8.3.3) for exactly this reason.
const DPCandidateCap = 100000

// DPRewrite is the competing baseline of §8: it does not use OPTCOST, and
// for every target it exhaustively pre-explodes the candidate space (all
// views, then all merges up to J views) and attempts a rewrite on each
// guessed-complete candidate. A dynamic-programming pass then composes the
// per-target best rewrites bottom-up. It finds the same optimal rewrite as
// BFREWRITE, exponentially more slowly.
func (r *Rewriter) DPRewrite(w *optimizer.Work, views []*meta.TableInfo) *Result {
	start := time.Now()
	res := &Result{OriginalCost: w.TotalCost()}

	n := len(w.Nodes)
	type best struct {
		plan *plan.Node
		cost float64
	}
	rewrites := make([]best, n)
	for i := range rewrites {
		rewrites[i] = best{nil, inf}
	}

	for i, jn := range w.Nodes {
		cands := r.explode(jn, views, &res.Counters)
		for _, c := range cands {
			if !afk.GuessComplete(jn.Ann, c.Ann, r.Cat.FDs) {
				continue
			}
			res.Counters.RewriteAttempts++
			p, cost := r.RewriteEnum(jn, c)
			if p == nil {
				continue
			}
			res.Counters.RewritesFound++
			if cost < rewrites[i].cost {
				rewrites[i] = best{p, cost}
			}
		}
	}

	// Dynamic-programming composition over the job DAG (topological order).
	bestPlan := make([]*plan.Node, n)
	bestCost := make([]float64, n)
	improved := make([]bool, n)
	for i, jn := range w.Nodes {
		subs := make(map[*plan.Node]*plan.Node)
		composed := jn.EstCost.Total()
		for _, dep := range jn.Deps {
			subs[dep.Logical] = bestPlan[dep.Index]
			composed += bestCost[dep.Index]
			improved[i] = improved[i] || improved[dep.Index]
		}
		if improved[i] {
			bestPlan[i] = plan.Substitute(jn.Logical, subs)
		} else {
			bestPlan[i] = jn.Logical
		}
		bestCost[i] = composed
		if c, err := r.planCost(bestPlan[i]); err == nil {
			bestCost[i] = c
		}
		if rewrites[i].plan != nil && rewrites[i].cost < bestCost[i] {
			bestPlan[i] = rewrites[i].plan
			bestCost[i] = rewrites[i].cost
			improved[i] = true
		}
	}

	sink := w.Sink().Index
	res.Plan = bestPlan[sink]
	res.Cost = bestCost[sink]
	res.Improved = improved[sink]
	res.Runtime = time.Since(start)
	return res
}

// explode generates the full candidate space for one target: every view,
// then level-wise merges up to MaxViews constituents, capped at
// DPCandidateCap.
func (r *Rewriter) explode(jn *optimizer.JobNode, views []*meta.TableInfo, counters *Counters) []*Candidate {
	seen := make(map[string]bool)
	var all []*Candidate
	add := func(c *Candidate) bool {
		if seen[c.Key()] {
			return false
		}
		seen[c.Key()] = true
		counters.CandidatesConsidered++
		c.OptCost = 0 // DP does not use OPTCOST
		all = append(all, c)
		return true
	}
	var singles []*Candidate
	for _, v := range views {
		c, err := r.single(v)
		if err != nil {
			continue
		}
		if add(c) {
			singles = append(singles, c)
		}
	}
	level := singles
	for depth := 2; depth <= r.MaxViews && len(all) < DPCandidateCap; depth++ {
		var next []*Candidate
		for _, a := range level {
			for _, b := range singles {
				for _, m := range r.Merge(a, b, func(key string) bool { return seen[key] }) {
					if len(all) >= DPCandidateCap {
						return all
					}
					if add(m) {
						next = append(next, m)
					}
				}
			}
		}
		level = next
	}
	_ = jn
	return all
}
