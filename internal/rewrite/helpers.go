package rewrite

import (
	"fmt"
	"hash/fnv"
	"strings"

	"opportune/internal/afk"
	"opportune/internal/plan"
	"opportune/internal/value"
)

// relAggFunc maps a signature's UDF field back to a built-in aggregate.
func relAggFunc(name string) (plan.AggFunc, bool) {
	if !strings.HasPrefix(name, "agg_") {
		return "", false
	}
	fn := plan.AggFunc(strings.TrimPrefix(name, "agg_"))
	switch fn {
	case plan.AggCount, plan.AggSum, plan.AggAvg, plan.AggMin, plan.AggMax:
		return fn, true
	}
	return "", false
}

// parseParams decodes a signature's parameter fingerprint back into values.
func parseParams(fp string) []value.V {
	if fp == "" {
		return nil
	}
	parts := strings.Split(fp, ",")
	out := make([]value.V, len(parts))
	for i, p := range parts {
		out[i] = value.Parse(p)
	}
	return out
}

// sigIDs renders a list of signatures for application identities.
func sigIDs(sigs []*afk.Sig) string {
	ids := make([]string, len(sigs))
	for i, s := range sigs {
		ids[i] = s.ID()
	}
	return "(" + strings.Join(ids, ",") + ")"
}

// shortID compresses a signature ID into a stable short token usable as a
// generated column name.
func shortID(id string) string {
	h := fnv.New64a()
	h.Write([]byte(id))
	return fmt.Sprintf("%012x", h.Sum64()&0xffffffffffff)
}

// exceedsRepeatLimit enforces the paper's k parameter: no operator may
// appear more than k times in one compensation.
func exceedsRepeatLimit(units []unit, k int) bool {
	counts := make(map[string]int, len(units))
	for _, u := range units {
		counts[u.op]++
		if counts[u.op] > k {
			return true
		}
	}
	return false
}

// permute enumerates every permutation of units (Heap's algorithm),
// invoking try on each. The caller bounds len(units).
func permute(units []unit, try func([]unit)) {
	n := len(units)
	if n == 0 {
		try(nil)
		return
	}
	work := append([]unit(nil), units...)
	c := make([]int, n)
	try(work)
	i := 0
	for i < n {
		if c[i] < i {
			if i%2 == 0 {
				work[0], work[i] = work[i], work[0]
			} else {
				work[c[i]], work[i] = work[i], work[c[i]]
			}
			try(work)
			c[i]++
			i = 0
		} else {
			c[i] = 0
			i++
		}
	}
}
