package rewrite

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// probeWorkers resolves the candidate-probing pool size: ProbeWorkers when
// positive, GOMAXPROCS otherwise. A forked (task-local) rewriter is always
// serial — nesting pools inside a probe task would oversubscribe the pool
// and break the one-level base/overlay structure of estimate forks.
func (r *Rewriter) probeWorkers() int {
	if r.forked {
		return 1
	}
	if r.ProbeWorkers > 0 {
		return r.ProbeWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// runParallel executes task(0..n-1) on up to workers goroutines. Tasks are
// claimed by atomic counter, so scheduling is nondeterministic — callers
// must write results into index-addressed slots and fold them in index
// order afterwards; every determinism argument in this package hangs on
// that fold discipline, not on scheduling.
func runParallel(workers, n int, task func(int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			task(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				task(i)
			}
		}()
	}
	wg.Wait()
}
