package rewrite_test

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"opportune/internal/hiveql"
	"opportune/internal/obs"
	"opportune/internal/optimizer"
	"opportune/internal/rewrite"
	"opportune/internal/session"
	"opportune/internal/workload"
)

// probeState builds a search state with several analysts' v1 views in the
// system and compiles A1v1 as the probe query — the same state the search
// benchmarks use.
func probeState(t *testing.T, analysts int) (*session.Session, *optimizer.Work) {
	t.Helper()
	s, err := workload.NewSession(workload.SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	for a := 2; a <= 1+analysts; a++ {
		if _, err := workload.Exec(s, workload.QueryFor(a, 1), session.ModeOriginal); err != nil {
			t.Fatal(err)
		}
	}
	st, err := hiveql.ParseOne(workload.QueryFor(1, 1).SQL)
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.Opt.Compile(st.Plan)
	if err != nil {
		t.Fatal(err)
	}
	return s, w
}

// searchOutcome captures everything the determinism contract covers: the
// winning plan, its cost, the search-effort counters, and every obs counter
// recorded during the search (estimate-cache hits and misses included).
type searchOutcome struct {
	planFP   string
	cost     float64
	counters rewrite.Counters
	obs      map[string]int64
}

func runSearchAt(t *testing.T, pool int) searchOutcome {
	t.Helper()
	s, w := probeState(t, 4)
	reg := obs.NewRegistry()
	s.Instrument(reg)
	s.Opt.ClearEstimates()
	s.Rew.ProbeWorkers = pool
	res := s.Rew.BFRewrite(w, s.Cat.Views())
	if !res.Improved {
		t.Fatalf("pool=%d: search found no improving rewrite", pool)
	}
	return searchOutcome{
		planFP:   res.Plan.Fingerprint(),
		cost:     res.Cost,
		counters: res.Counters,
		obs:      reg.Snapshot().Counters,
	}
}

// TestBFRewriteDeterministicAcrossPoolSizes is the search-plane determinism
// oracle: the parallel candidate probing must produce the same winning
// rewrite, the same cost, the same search-effort counters, and the same
// estimate-cache counters at every worker-pool size — results fold in a
// deterministic order, and forked estimate accesses replay in that order.
func TestBFRewriteDeterministicAcrossPoolSizes(t *testing.T) {
	ref := runSearchAt(t, 1)
	if len(ref.obs) == 0 {
		t.Fatal("reference search recorded no obs counters")
	}
	pools := []int{4, runtime.GOMAXPROCS(0), 0} // 0 resolves to GOMAXPROCS
	for _, p := range pools {
		got := runSearchAt(t, p)
		if got.planFP != ref.planFP {
			t.Errorf("pool=%d: winner differs\n got %s\nwant %s", p, got.planFP, ref.planFP)
		}
		if got.cost != ref.cost {
			t.Errorf("pool=%d: cost %v, want %v", p, got.cost, ref.cost)
		}
		if got.counters != ref.counters {
			t.Errorf("pool=%d: counters %+v, want %+v", p, got.counters, ref.counters)
		}
		if !reflect.DeepEqual(got.obs, ref.obs) {
			t.Errorf("pool=%d: obs counters differ\n got %v\nwant %v", p, got.obs, ref.obs)
		}
	}
}

// TestProbeCandidatesMatchesSerialProbes pins the batch probe API to the
// serial single-view loop it replaces: per-view OPTCOST, rewrite cost, and
// plan identity must agree at every pool size.
func TestProbeCandidatesMatchesSerialProbes(t *testing.T) {
	s, w := probeState(t, 4)
	views := s.Cat.Views()
	target := w.Sink()

	type ref struct {
		optCost float64
		planFP  string
		cost    float64
	}
	s.Opt.ClearEstimates()
	want := make([]ref, len(views))
	for i, v := range views {
		oc, p, c := rewrite.ProbeCandidate(s.Rew, target, v)
		want[i] = ref{optCost: oc, cost: c}
		if p != nil {
			want[i].planFP = p.Fingerprint()
		}
	}

	for _, pool := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		s.Opt.ClearEstimates()
		s.Rew.ProbeWorkers = pool
		got := rewrite.ProbeCandidates(s.Rew, target, views)
		if len(got) != len(views) {
			t.Fatalf("pool=%d: %d results for %d views", pool, len(got), len(views))
		}
		for i, g := range got {
			if g.View != views[i] {
				t.Errorf("pool=%d view %d: result out of order", pool, i)
			}
			if g.OptCost != want[i].optCost && !(math.IsInf(g.OptCost, 1) && math.IsInf(want[i].optCost, 1)) {
				t.Errorf("pool=%d view %s: OptCost %v, want %v", pool, views[i].Name, g.OptCost, want[i].optCost)
			}
			gotFP := ""
			if g.Plan != nil {
				gotFP = g.Plan.Fingerprint()
			}
			if gotFP != want[i].planFP {
				t.Errorf("pool=%d view %s: plan %q, want %q", pool, views[i].Name, gotFP, want[i].planFP)
			}
			if g.Cost != want[i].cost && !(math.IsInf(g.Cost, 1) && math.IsInf(want[i].cost, 1)) {
				t.Errorf("pool=%d view %s: cost %v, want %v", pool, views[i].Name, g.Cost, want[i].cost)
			}
		}
	}
}
