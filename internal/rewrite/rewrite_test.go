package rewrite_test

import (
	"strings"
	"testing"

	"opportune/internal/cost"
	"opportune/internal/data"
	"opportune/internal/expr"
	"opportune/internal/plan"
	"opportune/internal/rewrite"
	"opportune/internal/session"
	"opportune/internal/storage"
	"opportune/internal/udf"
	"opportune/internal/value"
)

// newSys builds a session with a tweet log and two UDFs (a per-tuple wine
// scorer and a per-user aggregate).
func newSys(t *testing.T, rows int) *session.Session {
	t.Helper()
	s := session.New(cost.DefaultParams())
	rel := data.NewRelation(data.NewSchema("tweet_id", "user_id", "text"))
	words := []string{"wine is great", "bad day", "good wine good life", "coffee time", "wine wine wine"}
	for i := 0; i < rows; i++ {
		rel.Append(data.Row{
			value.NewInt(int64(i)),
			value.NewInt(int64(i % 7)),
			value.NewStr(words[i%len(words)]),
		})
	}
	s.Store.Put("twtr", storage.Base, rel)
	s.Cat.RegisterBase("twtr", []string{"tweet_id", "user_id", "text"}, "tweet_id",
		cost.Stats{Rows: int64(rows), Bytes: rel.EncodedSize()},
		map[string]int64{"tweet_id": int64(rows), "user_id": 7})

	mustReg(t, s, &udf.Descriptor{
		Name: "UDF_WINE", NArgs: 1, Kind: udf.KindMap, OutNames: []string{"wine_score"},
		Map: func(args, _ []value.V) [][]value.V {
			return [][]value.V{{value.NewFloat(float64(strings.Count(args[0].Str(), "wine")))}}
		},
		TrueScalar: 15,
	})
	mustReg(t, s, &udf.Descriptor{
		Name: "UDF_USER_TOTAL", NArgs: 2, Kind: udf.KindAgg,
		KeyNames: []string{"user_id"}, KeyArgs: []int{0}, OutNames: []string{"total"},
		Reduce: func(_ []value.V, ps [][]value.V, _ []value.V) []value.V {
			var sum float64
			for _, p := range ps {
				sum += p[0].Float()
			}
			return []value.V{value.NewFloat(sum)}
		},
		TrueScalar: 2,
	})
	return s
}

func mustReg(t *testing.T, s *session.Session, d *udf.Descriptor) {
	t.Helper()
	if err := s.Cat.UDFs.Register(d); err != nil {
		t.Fatal(err)
	}
}

// wineQuery builds "per-user wine totals above threshold".
func wineQuery(threshold float64) *plan.Node {
	scored := plan.Apply(plan.Scan("twtr"), "UDF_WINE", []string{"text"})
	agg := plan.Apply(scored, "UDF_USER_TOTAL", []string{"user_id", "wine_score"})
	return plan.Filter(agg, expr.NewCmp("total", expr.Gt, value.NewFloat(threshold)))
}

func fingerprintOf(t *testing.T, s *session.Session, name string) uint64 {
	t.Helper()
	rel, err := s.Store.Read(name)
	if err != nil {
		t.Fatal(err)
	}
	return rel.Fingerprint()
}

func TestIdenticalQueryReusedForFree(t *testing.T) {
	s := newSys(t, 500)
	m1, err := s.Run(wineQuery(1), "q1", session.ModeOriginal)
	if err != nil {
		t.Fatal(err)
	}
	if m1.ExecSeconds <= 0 {
		t.Fatal("original did not execute")
	}
	// Same query again with BFR: the sink target has an identical view.
	m2, err := s.Run(wineQuery(1), "q2", session.ModeBFR)
	if err != nil {
		t.Fatal(err)
	}
	if m2.ExecSeconds != 0 {
		t.Errorf("identical rewrite executed jobs: %+v", m2)
	}
	if m2.ResultName != "q1" {
		t.Errorf("result should be the existing table, got %q", m2.ResultName)
	}
	if m2.Rewrite == nil || !m2.Rewrite.Improved {
		t.Error("rewrite not reported as improved")
	}
}

func TestThresholdChangeRewrite(t *testing.T) {
	// The workload's defining pattern: v2 of a query tightens a threshold.
	s := newSys(t, 1000)
	if _, err := s.Run(wineQuery(1), "q1", session.ModeOriginal); err != nil {
		t.Fatal(err)
	}

	// Ground truth for threshold 5 on a fresh system.
	ref := newSys(t, 1000)
	if _, err := ref.Run(wineQuery(5), "ref", session.ModeOriginal); err != nil {
		t.Fatal(err)
	}
	origTime := func() float64 {
		ref2 := newSys(t, 1000)
		m, err := ref2.Run(wineQuery(5), "r", session.ModeOriginal)
		if err != nil {
			t.Fatal(err)
		}
		return m.TotalSeconds()
	}()

	m, err := s.Run(wineQuery(5), "q2", session.ModeBFR)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rewrite == nil || !m.Rewrite.Improved {
		t.Fatal("no rewrite found for threshold change")
	}
	if m.ExecSeconds <= 0 {
		t.Fatal("rewrite should still execute a small filter job")
	}
	if m.TotalSeconds() >= origTime {
		t.Errorf("rewrite (%.3fs) not faster than original (%.3fs)", m.TotalSeconds(), origTime)
	}
	if got, want := fingerprintOf(t, s, "q2"), fingerprintOf(t, ref, "ref"); got != want {
		t.Error("rewritten result differs from ground truth")
	}
	// the rewrite must have read dramatically less data
	if m.DataMovedBytes <= 0 {
		t.Error("no data accounting")
	}
}

func TestRewriteAppliesUDFCompensation(t *testing.T) {
	// A view holding only the projected raw columns; the query needs the
	// full UDF pipeline. The rewrite must re-apply both UDFs to the view.
	s := newSys(t, 800)
	proj := plan.Project(plan.Scan("twtr"), "user_id", "text")
	if _, err := s.Run(proj, "narrow", session.ModeOriginal); err != nil {
		t.Fatal(err)
	}

	// Query over user_id/text only (so the narrow view suffices).
	agg := plan.Apply(plan.Apply(plan.Scan("twtr"), "UDF_WINE", []string{"text"}),
		"UDF_USER_TOTAL", []string{"user_id", "wine_score"})
	m, err := s.Run(agg, "q", session.ModeBFR)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rewrite == nil || !m.Rewrite.Improved {
		t.Fatal("no rewrite found via UDF compensation")
	}
	// result identical to a fresh original run
	ref := newSys(t, 800)
	agg2 := plan.Apply(plan.Apply(plan.Scan("twtr"), "UDF_WINE", []string{"text"}),
		"UDF_USER_TOTAL", []string{"user_id", "wine_score"})
	if _, err := ref.Run(agg2, "ref", session.ModeOriginal); err != nil {
		t.Fatal(err)
	}
	if fingerprintOf(t, s, "q") != fingerprintOf(t, ref, "ref") {
		t.Error("UDF-compensated rewrite produced wrong data")
	}
}

func TestMergedViewRewrite(t *testing.T) {
	// Views: per-user wine totals, and per-user tweet counts. Query: their
	// join. The rewrite must merge the two views.
	s := newSys(t, 600)
	wine := plan.Apply(plan.Apply(plan.Scan("twtr"), "UDF_WINE", []string{"text"}),
		"UDF_USER_TOTAL", []string{"user_id", "wine_score"})
	if _, err := s.Run(wine, "v_wine", session.ModeOriginal); err != nil {
		t.Fatal(err)
	}
	cnt := plan.GroupAgg(plan.Scan("twtr"), []string{"user_id"}, plan.AggSpec{Func: plan.AggCount, As: "n"})
	if _, err := s.Run(cnt, "v_cnt", session.ModeOriginal); err != nil {
		t.Fatal(err)
	}

	mkJoin := func() *plan.Node {
		w := plan.Apply(plan.Apply(plan.Scan("twtr"), "UDF_WINE", []string{"text"}),
			"UDF_USER_TOTAL", []string{"user_id", "wine_score"})
		c := plan.GroupAgg(plan.Scan("twtr"), []string{"user_id"}, plan.AggSpec{Func: plan.AggCount, As: "n"})
		return plan.JoinNodes(w, c, "user_id", "user_id")
	}
	m, err := s.Run(mkJoin(), "q", session.ModeBFR)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rewrite == nil || !m.Rewrite.Improved {
		t.Fatal("no merged rewrite found")
	}
	ref := newSys(t, 600)
	wref := plan.Apply(plan.Apply(plan.Scan("twtr"), "UDF_WINE", []string{"text"}),
		"UDF_USER_TOTAL", []string{"user_id", "wine_score"})
	cref := plan.GroupAgg(plan.Scan("twtr"), []string{"user_id"}, plan.AggSpec{Func: plan.AggCount, As: "n"})
	if _, err := ref.Run(plan.JoinNodes(wref, cref, "user_id", "user_id"), "ref", session.ModeOriginal); err != nil {
		t.Fatal(err)
	}
	if fingerprintOf(t, s, "q") != fingerprintOf(t, ref, "ref") {
		t.Error("merged rewrite produced wrong data")
	}
}

func TestOverFilteredViewNotReused(t *testing.T) {
	// A view filtered more strictly than the query must not be used.
	s := newSys(t, 400)
	if _, err := s.Run(wineQuery(10), "strict", session.ModeOriginal); err != nil {
		t.Fatal(err)
	}
	s.Cat.DropView("v_" + "") // no-op; keep catalog as-is
	// Query with weaker threshold: only views from the shared prefix
	// (pre-filter aggregates) may be reused; the final strict filter view
	// must not satisfy the weaker query.
	m, err := s.Run(wineQuery(2), "weak", session.ModeBFR)
	if err != nil {
		t.Fatal(err)
	}
	ref := newSys(t, 400)
	if _, err := ref.Run(wineQuery(2), "ref", session.ModeOriginal); err != nil {
		t.Fatal(err)
	}
	if fingerprintOf(t, s, m.ResultName) != fingerprintOf(t, ref, "ref") {
		t.Error("over-filtered reuse corrupted results")
	}
}

func TestBFRAndDPFindSameCostAndBFRDoesLessWork(t *testing.T) {
	s := newSys(t, 500)
	if _, err := s.Run(wineQuery(1), "q1", session.ModeOriginal); err != nil {
		t.Fatal(err)
	}
	cnt := plan.GroupAgg(plan.Scan("twtr"), []string{"user_id"}, plan.AggSpec{Func: plan.AggCount, As: "n"})
	if _, err := s.Run(cnt, "q2", session.ModeOriginal); err != nil {
		t.Fatal(err)
	}

	w, err := s.Opt.Compile(wineQuery(3))
	if err != nil {
		t.Fatal(err)
	}
	views := s.Cat.Views()
	bfr := s.Rew.BFRewrite(w, views)
	w2, err := s.Opt.Compile(wineQuery(3))
	if err != nil {
		t.Fatal(err)
	}
	dp := s.Rew.DPRewrite(w2, views)

	if !bfr.Improved || !dp.Improved {
		t.Fatalf("rewrites not found: bfr=%v dp=%v", bfr.Improved, dp.Improved)
	}
	if diff := bfr.Cost - dp.Cost; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("BFR cost %g != DP cost %g", bfr.Cost, dp.Cost)
	}
	if bfr.Counters.CandidatesConsidered > dp.Counters.CandidatesConsidered {
		t.Errorf("BFR considered more candidates (%d) than DP (%d)",
			bfr.Counters.CandidatesConsidered, dp.Counters.CandidatesConsidered)
	}
	if bfr.Counters.RewriteAttempts > dp.Counters.RewriteAttempts {
		t.Errorf("BFR attempted more rewrites (%d) than DP (%d)",
			bfr.Counters.RewriteAttempts, dp.Counters.RewriteAttempts)
	}
}

func TestSyntacticOnlyMatchesIdenticalPlans(t *testing.T) {
	s := newSys(t, 400)
	if _, err := s.Run(wineQuery(1), "q1", session.ModeOriginal); err != nil {
		t.Fatal(err)
	}
	// identical plan: syntactic hit
	w, err := s.Opt.Compile(wineQuery(1))
	if err != nil {
		t.Fatal(err)
	}
	res := s.Rew.SyntacticRewrite(w, s.Cat.Views())
	if !res.Improved {
		t.Error("syntactic missed an identical plan")
	}
	// same semantics, different threshold: syntactic must miss at the sink
	// but still reuse the identical agg prefix.
	w2, err := s.Opt.Compile(wineQuery(5))
	if err != nil {
		t.Fatal(err)
	}
	res2 := s.Rew.SyntacticRewrite(w2, s.Cat.Views())
	w3, err := s.Opt.Compile(wineQuery(5))
	if err != nil {
		t.Fatal(err)
	}
	bfr := s.Rew.BFRewrite(w3, s.Cat.Views())
	if bfr.Cost > res2.Cost+1e-9 {
		t.Errorf("BFR (%g) worse than syntactic (%g); BFR must subsume it", bfr.Cost, res2.Cost)
	}
	// reordered filters: syntactically different, semantically equal
	mk := func(order bool) *plan.Node {
		p := plan.Project(plan.Scan("twtr"), "tweet_id", "user_id")
		a := expr.NewCmp("user_id", expr.Gt, value.NewInt(2))
		b := expr.NewCmp("tweet_id", expr.Gt, value.NewInt(100))
		if order {
			return plan.Filter(plan.Filter(p, a), b)
		}
		return plan.Filter(plan.Filter(p, b), a)
	}
	if _, err := s.Run(mk(true), "fab", session.ModeOriginal); err != nil {
		t.Fatal(err)
	}
	wOrd, err := s.Opt.Compile(mk(false))
	if err != nil {
		t.Fatal(err)
	}
	if res := s.Rew.SyntacticRewrite(wOrd, s.Cat.Views()); res.Improved {
		t.Error("syntactic matched a reordered plan (should not)")
	}
	wOrd2, err := s.Opt.Compile(mk(false))
	if err != nil {
		t.Fatal(err)
	}
	if res := s.Rew.BFRewrite(wOrd2, s.Cat.Views()); !res.Improved {
		t.Error("BFR missed the reordered-filter reuse (the paper's a,b vs b,a case)")
	}
}

func TestOptCostIsLowerBoundOnFoundRewrites(t *testing.T) {
	// Property check on real search states: whenever REWRITEENUM finds a
	// rewrite from a candidate, OPTCOST(candidate) must not exceed its cost.
	s := newSys(t, 500)
	if _, err := s.Run(wineQuery(1), "q1", session.ModeOriginal); err != nil {
		t.Fatal(err)
	}
	w, err := s.Opt.Compile(wineQuery(4))
	if err != nil {
		t.Fatal(err)
	}
	views := s.Cat.Views()
	for _, target := range w.Nodes {
		for _, v := range views {
			c, p, cost := rewrite.ProbeCandidate(s.Rew, target, v)
			if p == nil {
				continue
			}
			if c > cost+1e-9 {
				t.Errorf("target %d view %s: OPTCOST %g > rewrite cost %g",
					target.Index, v.Name, c, cost)
			}
		}
	}
}

func TestTraceMonotone(t *testing.T) {
	s := newSys(t, 500)
	if _, err := s.Run(wineQuery(1), "q1", session.ModeOriginal); err != nil {
		t.Fatal(err)
	}
	w, err := s.Opt.Compile(wineQuery(3))
	if err != nil {
		t.Fatal(err)
	}
	res := s.Rew.BFRewrite(w, s.Cat.Views())
	if len(res.Trace) < 2 {
		t.Fatalf("trace too short: %d", len(res.Trace))
	}
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].BestPlanCost > res.Trace[i-1].BestPlanCost+1e-9 {
			t.Error("best plan cost increased during search")
		}
	}
	last := res.Trace[len(res.Trace)-1]
	if last.BestPlanCost != res.Cost {
		t.Error("final trace event disagrees with result")
	}
}

func TestNoViewsMeansNoRewrite(t *testing.T) {
	s := newSys(t, 100)
	m, err := s.Run(wineQuery(1), "q", session.ModeBFR)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rewrite.Improved {
		t.Error("rewrite claimed with zero views")
	}
	if m.ExecSeconds <= 0 {
		t.Error("query did not run")
	}
}
