package rewrite

import (
	"sort"
	"strings"

	"opportune/internal/afk"
	"opportune/internal/expr"
	"opportune/internal/optimizer"
	"opportune/internal/plan"
	"opportune/internal/udf"
	"opportune/internal/value"
)

// maxUnits bounds the number of compensation operators enumerated; fixes
// larger than this are abandoned (the paper equivalently keeps the rewrite
// operator set small because enumeration is exponential, §5).
const maxUnits = 7

// unit is one compensation operator to be sequenced: applying it wraps the
// current plan in one more node. op is the operator name for the k-repeat
// limit ("select", "groupagg", or the UDF name).
type unit struct {
	op    string
	apply func(cur *plan.Node) (*plan.Node, bool)
}

// RewriteEnum searches for a valid equivalent rewrite of target q using
// candidate c (which must have passed GUESSCOMPLETE): it derives the fix,
// expands it into compensation operators, enumerates their permutations
// (§7.2's brute-force enumeration), checks (A,F,K)-equivalence of each
// outcome, and returns the cheapest valid rewrite plan with its cost — or
// (nil, +Inf).
//
// Results are memoized by (candidate key, target plan fingerprint) until
// the next statistics reset, so candidates re-visited across search
// iterations are never recompiled. The memo is consulted only from the
// serial root context — never inside a probe task — so memo hits land at
// the same points regardless of pool size.
func (r *Rewriter) RewriteEnum(q *optimizer.JobNode, c *Candidate) (*plan.Node, float64) {
	if r.forked {
		return r.enumOrders(q, c)
	}
	mk := c.Key() + "\x00" + q.PlanFP
	if h, ok := r.probeMemoGet(mk); ok {
		return h.plan, h.cost
	}
	p, cost := r.enumOrders(q, c)
	r.probeMemoPut(mk, probeHit{plan: p, cost: cost})
	return p, cost
}

// enumOrders enumerates compensation-operator permutations. At the root it
// materializes the orders, gives each an estimate-cache fork, evaluates
// them on the probe pool, and folds in enumeration order (replaying each
// fork's estimate accesses before inspecting its result) — so the winning
// order, its cost, and the cache counters match a serial enumeration at
// every pool size, including one. Inside a probe task (forked) it
// enumerates in place on the task's forked optimizer.
func (r *Rewriter) enumOrders(q *optimizer.JobNode, c *Candidate) (*plan.Node, float64) {
	units, ok := r.compensationUnits(q, c)
	if !ok || len(units) > maxUnits {
		return nil, inf
	}
	if exceedsRepeatLimit(units, r.MaxOpRepeat) {
		return nil, inf
	}

	var bestPlan *plan.Node
	bestCost := inf
	if r.forked || r.probeWorkers() <= 1 {
		// In-place serial enumeration. For the root at pool size one this
		// path is indistinguishable from fork+ordered-replay: estimates are
		// consistent, and replay classifies each access against the same
		// evolving cache state a serial run sees, so costs and counters
		// match. The root enumerates through a forked-marked copy so that
		// plan costs skip the memo exactly as forked tasks do — a memo hit
		// here would elide estimate accesses that larger pools replay.
		rr := r
		if !r.forked {
			cp := *r
			cp.forked = true
			rr = &cp
		}
		permute(units, func(order []unit) {
			if p, cost, ok := rr.tryOrder(q, c, order); ok && cost < bestCost {
				bestPlan, bestCost = p, cost
			}
		})
		return bestPlan, bestCost
	}

	// permute reuses its scratch slice between calls, so orders must be
	// copied to outlive the enumeration.
	var orders [][]unit
	permute(units, func(order []unit) {
		orders = append(orders, append([]unit(nil), order...))
	})
	type enumRes struct {
		plan *plan.Node
		cost float64
		ok   bool
	}
	results := make([]enumRes, len(orders))
	forks := make([]*optimizer.Optimizer, len(orders))
	for i := range forks {
		forks[i] = r.Opt.ForkEstimates()
	}
	runParallel(r.probeWorkers(), len(orders), func(i int) {
		sub := r.forkedWith(forks[i])
		p, cost, ok := sub.tryOrder(q, c, orders[i])
		results[i] = enumRes{plan: p, cost: cost, ok: ok}
	})
	for i := range orders {
		r.Opt.MergeEstimates(forks[i])
		if results[i].ok && results[i].cost < bestCost {
			bestPlan, bestCost = results[i].plan, results[i].cost
		}
	}
	return bestPlan, bestCost
}

// tryOrder applies one compensation-operator sequence to the candidate and
// validates the outcome: every wrapper node is fresh while the shared
// candidate subtree is already annotated (plan.Annotate short-circuits it),
// so concurrent orders never write the same node.
func (r *Rewriter) tryOrder(q *optimizer.JobNode, c *Candidate, order []unit) (*plan.Node, float64, bool) {
	cur := c.Plan
	for _, u := range order {
		next, ok := u.apply(cur)
		if !ok {
			return nil, 0, false
		}
		if plan.Annotate(next, r.Cat) != nil {
			return nil, 0, false
		}
		cur = next
	}
	final, ok := r.finalProjection(q, cur)
	if !ok {
		return nil, 0, false
	}
	if plan.Annotate(final, r.Cat) != nil {
		return nil, 0, false
	}
	if !final.Ann.Equal(q.Ann) {
		return nil, 0, false
	}
	cost, err := r.planCost(final)
	if err != nil {
		return nil, 0, false
	}
	return final, cost, true
}

// finalProjection projects and renames the current plan's columns to
// exactly the target's output columns. When the columns already match —
// including a bare scan of a column-identical view, the identical-view fast
// path, which then costs zero because the result is already on disk — no
// projection node is added.
func (r *Rewriter) finalProjection(q *optimizer.JobNode, cur *plan.Node) (*plan.Node, bool) {
	cols := make([]string, len(q.OutCols))
	for i, out := range q.OutCols {
		sig := q.Ann.SigOf(out)
		if sig == nil {
			return nil, false
		}
		name := cur.Ann.NameOfSig(sig.ID())
		if name == "" {
			return nil, false
		}
		cols[i] = name
	}
	if sameStrings(cols, cur.OutCols) && sameStrings(cols, q.OutCols) {
		return cur, true
	}
	return plan.ProjectAs(cur, cols, append([]string(nil), q.OutCols...)), true
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// compensationUnits derives the operator set that must be sequenced to turn
// the candidate into the target: the fix's filters, the (transitively)
// missing attribute derivations, and a distinct-style regroup when the key
// change is not already produced by an aggregate application.
func (r *Rewriter) compensationUnits(q *optimizer.JobNode, c *Candidate) ([]unit, bool) {
	fix := afk.ComputeFix(q.Ann, c.Ann)
	var units []unit

	// Derivation units for missing attributes, transitively.
	apps := make(map[string]*appUnit)  // application identity -> unit builder
	requested := make(map[string]bool) // signatures already handled
	var need func(s *afk.Sig) bool
	need = func(s *afk.Sig) bool {
		if c.Ann.A.HasID(s.ID()) || requested[s.ID()] {
			return true
		}
		requested[s.ID()] = true
		if s.IsBase() {
			return false // a missing base column can never be recomputed
		}
		for _, in := range s.Inputs {
			if !need(in) {
				return false
			}
		}
		for _, k := range s.GroupBy {
			if !need(k) {
				return false
			}
		}
		a, ok := r.appFor(q, s)
		if !ok {
			return false
		}
		if prev, dup := apps[a.id]; dup {
			prev.merge(a)
		} else {
			apps[a.id] = a
		}
		return true
	}
	rekeyCovered := !fix.Rekey
	for _, s := range fix.NewAttrs {
		if !need(s) {
			return nil, false
		}
	}
	// Filter units; predicate attributes must also be producible.
	for _, p := range fix.Filters {
		for _, id := range p.Attrs() {
			if c.Ann.A.HasID(id) {
				continue
			}
			s, ok := afk.Lookup(id)
			if !ok || !need(s) {
				return nil, false
			}
		}
		pred := p
		units = append(units, unit{op: "select", apply: func(cur *plan.Node) (*plan.Node, bool) {
			named, ok := bindPred(pred, cur.Ann)
			if !ok {
				return nil, false
			}
			return plan.Filter(cur, named), true
		}})
	}
	// Emit application units; note whether any aggregation lands on q.K.
	ids := make([]string, 0, len(apps))
	for id := range apps {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		a := apps[id]
		if a.groups && a.keySet.Equal(q.Ann.K) {
			rekeyCovered = true
		}
		units = append(units, a.unit(r))
	}
	// Residual regroup (DISTINCT-style) when the fix re-keys but no
	// aggregate application produces that key.
	if !rekeyCovered {
		keySigs := q.Ann.K.Sigs()
		units = append(units, unit{op: "groupagg", apply: func(cur *plan.Node) (*plan.Node, bool) {
			keys := make([]string, len(keySigs))
			for i, s := range keySigs {
				keys[i] = cur.Ann.NameOfSig(s.ID())
				if keys[i] == "" {
					return nil, false
				}
			}
			return plan.GroupAgg(cur, keys), true
		}})
	}
	return units, true
}

// appUnit describes one producing application (a UDF call or a relational
// group-by) that yields one or more needed attributes.
type appUnit struct {
	id     string
	groups bool
	keySet afk.SigSet

	// UDF application
	desc   *udf.Descriptor
	params []value.V
	args   []*afk.Sig

	// Relational aggregation
	keys []*afk.Sig
	aggs []relAgg
}

type relAgg struct {
	fn  plan.AggFunc
	in  *afk.Sig // nil for COUNT(*)
	sig *afk.Sig // the produced attribute, for naming
}

func (a *appUnit) merge(b *appUnit) {
	a.aggs = append(a.aggs, b.aggs...)
	if b.groups {
		a.groups = true
		if len(a.keySet) == 0 {
			a.keySet = b.keySet
		}
	}
}

// appFor resolves the application that produces signature s.
func (r *Rewriter) appFor(q *optimizer.JobNode, s *afk.Sig) (*appUnit, bool) {
	if fn, isRel := relAggFunc(s.UDF); isRel {
		if !s.Agg {
			return nil, false
		}
		var in *afk.Sig
		if fn != plan.AggCount || len(s.Inputs) != len(s.GroupBy) || !afk.NewSigSet(s.Inputs...).Equal(afk.NewSigSet(s.GroupBy...)) {
			if len(s.Inputs) != 1 {
				return nil, false
			}
			in = s.Inputs[0]
		}
		keyIDs := make([]string, len(s.GroupBy))
		for i, k := range s.GroupBy {
			keyIDs[i] = k.ID()
		}
		return &appUnit{
			id:     "rel:" + strings.Join(keyIDs, ",") + "|" + s.CtxF,
			groups: true,
			keySet: afk.NewSigSet(s.GroupBy...),
			keys:   s.GroupBy,
			aggs:   []relAgg{{fn: fn, in: in, sig: s}},
		}, true
	}
	d, _, ok := r.Cat.UDFs.ForOutput(s.UDF)
	if !ok {
		return nil, false
	}
	params := parseParams(s.Params)
	if len(params) != d.NParams {
		return nil, false
	}
	args, ok := reconstructArgs(d, s)
	if !ok {
		return nil, false
	}
	// The identity deliberately excludes the filter context: an aggregate
	// output and a derived key of the *same application* must collapse into
	// one unit (applying the UDF once yields both).
	a := &appUnit{
		id:     "udf:" + d.Name + "[" + s.Params + "]" + sigIDs(args),
		desc:   d,
		params: params,
		args:   args,
	}
	if d.Kind == udf.KindAgg {
		a.groups = true
		a.keySet = afk.NewSigSet(d.KeySigs(args, params)...)
	}
	return a, true
}

// unit converts the application into a sequencable compensation operator.
func (a *appUnit) unit(r *Rewriter) unit {
	if a.desc != nil {
		desc, params, args := a.desc, a.params, a.args
		return unit{op: desc.Name, apply: func(cur *plan.Node) (*plan.Node, bool) {
			argCols := make([]string, len(args))
			for i, s := range args {
				argCols[i] = cur.Ann.NameOfSig(s.ID())
				if argCols[i] == "" {
					return nil, false
				}
			}
			return plan.Apply(cur, desc.Name, argCols, params...), true
		}}
	}
	keys, aggs := a.keys, a.aggs
	return unit{op: "groupagg", apply: func(cur *plan.Node) (*plan.Node, bool) {
		keyCols := make([]string, len(keys))
		for i, s := range keys {
			keyCols[i] = cur.Ann.NameOfSig(s.ID())
			if keyCols[i] == "" {
				return nil, false
			}
		}
		specs := make([]plan.AggSpec, len(aggs))
		for i, ra := range aggs {
			col := ""
			if ra.in != nil {
				col = cur.Ann.NameOfSig(ra.in.ID())
				if col == "" {
					return nil, false
				}
			}
			name := "c_" + shortID(ra.sig.ID())
			specs[i] = plan.AggSpec{Func: ra.fn, Col: col, As: name}
		}
		return plan.GroupAgg(cur, keyCols, specs...), true
	}}
}

// reconstructArgs rebuilds the UDF's positional argument signatures from a
// produced signature: map UDFs and derived-key aggregates store all args as
// Inputs in order; passthrough-key aggregates interleave GroupBy signatures
// back into their KeyArgs positions.
func reconstructArgs(d *udf.Descriptor, s *afk.Sig) ([]*afk.Sig, bool) {
	if d.Kind == udf.KindMap || d.DerivedKeys {
		if len(s.Inputs) != d.NArgs {
			return nil, false
		}
		return s.Inputs, true
	}
	if len(s.GroupBy) != len(d.KeyArgs) || len(s.Inputs)+len(s.GroupBy) != d.NArgs {
		return nil, false
	}
	args := make([]*afk.Sig, d.NArgs)
	for i, ka := range d.KeyArgs {
		args[ka] = s.GroupBy[i]
	}
	j := 0
	for i := range args {
		if args[i] == nil {
			args[i] = s.Inputs[j]
			j++
		}
	}
	return args, true
}

// bindPred rewrites a signature-ID predicate into the column names the
// current annotation binds those signatures to.
func bindPred(p expr.Pred, ann afk.Annotation) (expr.Pred, bool) {
	ok := true
	out := p.Rename(func(id string) string {
		n := ann.NameOfSig(id)
		if n == "" {
			ok = false
		}
		return n
	})
	return out, ok
}
