package rewrite

import (
	"time"

	"opportune/internal/meta"
	"opportune/internal/optimizer"
	"opportune/internal/plan"
)

// SyntacticRewrite is BFR-SYNTACTIC (§8.3.4): the conservative variant that
// stands in for caching-based systems like ReStore. A target is rewritten
// only when some view was produced by a *syntactically identical* plan
// (same operators, same order, same parameters — matched by plan
// fingerprint); no semantic compensation is ever applied. Per-target hits
// compose through the same dynamic-programming pass as DP.
func (r *Rewriter) SyntacticRewrite(w *optimizer.Work, views []*meta.TableInfo) *Result {
	start := time.Now()
	res := &Result{OriginalCost: w.TotalCost()}

	byFP := make(map[string]*meta.TableInfo, len(views))
	for _, v := range views {
		if v.PlanFP != "" {
			byFP[v.PlanFP] = v
		}
	}

	n := len(w.Nodes)
	bestPlan := make([]*plan.Node, n)
	bestCost := make([]float64, n)
	improved := make([]bool, n)
	for i, jn := range w.Nodes {
		subs := make(map[*plan.Node]*plan.Node)
		composed := jn.EstCost.Total()
		for _, dep := range jn.Deps {
			subs[dep.Logical] = bestPlan[dep.Index]
			composed += bestCost[dep.Index]
			improved[i] = improved[i] || improved[dep.Index]
		}
		if improved[i] {
			bestPlan[i] = plan.Substitute(jn.Logical, subs)
		} else {
			bestPlan[i] = jn.Logical
		}
		bestCost[i] = composed
		if c, err := r.planCost(bestPlan[i]); err == nil {
			bestCost[i] = c
		}

		v, ok := byFP[jn.PlanFP]
		if !ok {
			continue
		}
		res.Counters.CandidatesConsidered++
		res.Counters.RewriteAttempts++
		scan := plan.Scan(v.Name)
		if err := plan.Annotate(scan, r.Cat); err != nil {
			continue
		}
		if !sameStrings(scan.OutCols, jn.OutCols) {
			continue
		}
		res.Counters.RewritesFound++
		bestPlan[i] = scan
		bestCost[i] = 0 // already materialized
		improved[i] = true
	}

	sink := w.Sink().Index
	res.Plan = bestPlan[sink]
	res.Cost = bestCost[sink]
	res.Improved = improved[sink]
	res.Runtime = time.Since(start)
	return res
}
