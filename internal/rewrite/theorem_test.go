package rewrite_test

import (
	"testing"

	"opportune/internal/session"
	"opportune/internal/workload"
)

// TestTheorem1WorkEfficiency checks the paper's Theorem 1 empirically
// across the whole workload: BFREWRITE never examines (pops) a candidate
// whose OPTCOST lower bound exceeds the cost of the best plan it finally
// settles on at that target, and candidates are examined in non-decreasing
// bound order (the best-first property).
func TestTheorem1WorkEfficiency(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole workload")
	}
	s, err := workload.NewSession(workload.SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	// Tolerance: the theorem's proof assumes composed plans cost exactly
	// the sum of their parts (the paper reuses NODE_i's cost verbatim when
	// composing). Our optimizer re-compiles compositions, which can
	// re-pipeline former job boundaries and come out slightly cheaper than
	// the potential function assumed — so a candidate examined just before
	// such a composition can overshoot the final cost by a small margin.
	// We assert the bound within 10% and require strict compliance on the
	// overwhelming majority of searches.
	const slack = 1.10
	checked, strict := 0, 0
	for _, q := range workload.AllQueries() {
		m, err := workload.Exec(s, q, session.ModeBFR)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		if m.Rewrite == nil {
			continue
		}
		for _, tw := range m.Rewrite.TargetWork {
			if tw.Examined == 0 {
				continue
			}
			checked++
			if tw.MaxExaminedBound <= tw.FinalBestCost*(1+1e-9)+1e-12 {
				strict++
			}
			if tw.MaxExaminedBound > tw.FinalBestCost*slack {
				t.Errorf("%s target %d: examined bound %g > %g×%v (work-efficiency violated beyond composition slack)",
					q.Name, tw.Target, tw.MaxExaminedBound, tw.FinalBestCost, slack)
			}
		}
	}
	if checked < 20 {
		t.Fatalf("only %d targets examined candidates; workload did not exercise the search", checked)
	}
	if float64(strict) < 0.95*float64(checked) {
		t.Errorf("only %d/%d target searches strictly work-efficient", strict, checked)
	}
	t.Logf("work-efficiency: %d/%d strict, all within %.0f%% slack", strict, checked, (slack-1)*100)
}
