package rewrite

import (
	"container/heap"

	"opportune/internal/afk"
	"opportune/internal/meta"
	"opportune/internal/optimizer"
	"opportune/internal/plan"
)

// Counters are the search-effort metrics of Fig 9.
type Counters struct {
	// CandidatesConsidered counts candidate views evaluated with OPTCOST
	// (initial views plus every merge product).
	CandidatesConsidered int
	// RewriteAttempts counts REWRITEENUM invocations.
	RewriteAttempts int
	// RewritesFound counts attempts that produced a valid rewrite.
	RewritesFound int
}

// Add accumulates another counter set.
func (c *Counters) Add(o Counters) {
	c.CandidatesConsidered += o.CandidatesConsidered
	c.RewriteAttempts += o.RewriteAttempts
	c.RewritesFound += o.RewritesFound
}

// viewFinder is the stateful per-target search of §7 (Algorithm 4): a
// priority queue of candidate views ordered by OPTCOST that grows
// on demand — each REFINE pops the head, merges it with everything popped
// before (Seen), and attempts a rewrite only when GUESSCOMPLETE passes.
type viewFinder struct {
	r *Rewriter
	q *optimizer.JobNode

	pq    candHeap
	seen  []*Candidate
	dedup map[string]bool

	counters *Counters

	// poppedBounds records the OPTCOST of every candidate REFINE examined,
	// in pop order — the evidence for the work-efficiency property of
	// Theorem 1 (no examined candidate's bound exceeds the optimal
	// rewrite's cost). Tests and the ablation harness read it.
	poppedBounds []float64
}

// newViewFinder is INIT: all views become initial candidates ordered by
// OPTCOST. Irrelevant candidates (OPTCOST = ∞) are dropped immediately —
// they can never participate in a complete rewrite (see Relevant).
// Candidate construction and OPTCOST run on the probe pool (neither reads
// search state); insertion folds in view order, so the queue and counters
// are those of the serial loop.
func newViewFinder(r *Rewriter, q *optimizer.JobNode, views []*meta.TableInfo, counters *Counters) *viewFinder {
	vf := &viewFinder{r: r, q: q, dedup: make(map[string]bool), counters: counters}
	cands := make([]*Candidate, len(views))
	runParallel(r.probeWorkers(), len(views), func(i int) {
		c, err := r.single(views[i])
		if err != nil {
			return
		}
		c.OptCost = r.OptCost(q, c)
		cands[i] = c
	})
	for _, c := range cands {
		if c != nil {
			vf.pushScored(c)
		}
	}
	return vf
}

// pushScored inserts a candidate whose OPTCOST is already computed, unless
// irrelevant or already seen. Counter semantics match the serial push:
// every non-duplicate candidate counts as considered, relevant or not.
func (vf *viewFinder) pushScored(c *Candidate) {
	if vf.dedup[c.Key()] {
		return
	}
	vf.dedup[c.Key()] = true
	vf.counters.CandidatesConsidered++
	if c.OptCost >= inf {
		return
	}
	heap.Push(&vf.pq, c)
}

// Peek returns the OPTCOST of the next candidate, or +Inf when exhausted.
func (vf *viewFinder) Peek() float64 {
	if len(vf.pq) == 0 {
		return inf
	}
	return vf.pq[0].OptCost
}

// Refine pops the head candidate, grows the space by merging it with Seen,
// and attempts a rewrite if the candidate is guessed complete. Returns the
// found rewrite plan and its cost, or (nil, +Inf).
func (vf *viewFinder) Refine() (*plan.Node, float64) {
	if len(vf.pq) == 0 {
		return nil, inf
	}
	v := heap.Pop(&vf.pq).(*Candidate)
	vf.poppedBounds = append(vf.poppedBounds, v.OptCost)
	// Merge v with every seen candidate on the probe pool. The region is
	// read-only on search state: skip reads dedup, which only the fold
	// below mutates, and distinct seen partners always yield distinct view
	// sets, so no intra-refine dedup dependency is lost. Fold in seen
	// order = the serial merge order.
	skip := func(key string) bool { return vf.dedup[key] }
	merged := make([][]*Candidate, len(vf.seen))
	runParallel(vf.r.probeWorkers(), len(vf.seen), func(i int) {
		ms := vf.r.Merge(v, vf.seen[i], skip)
		for _, m := range ms {
			m.OptCost = vf.r.OptCost(vf.q, m)
		}
		merged[i] = ms
	})
	for i := range merged {
		for _, m := range merged[i] {
			// Any rewrite from the merged candidate also uses v and s, so
			// both lower bounds apply; taking the max keeps the queue
			// monotone (the merged candidate can never need examining
			// before its parents).
			if vf.dedup[m.Key()] {
				continue
			}
			vf.pushScored(m)
			if m.OptCost < v.OptCost {
				m.OptCost = v.OptCost
				heap.Init(&vf.pq)
			}
		}
	}
	vf.seen = append(vf.seen, v)
	if vf.r.DisableGuessComplete || afk.GuessComplete(vf.q.Ann, v.Ann, vf.r.Cat.FDs) {
		vf.counters.RewriteAttempts++
		p, c := vf.r.RewriteEnum(vf.q, v)
		if p != nil {
			vf.counters.RewritesFound++
			return p, c
		}
	}
	return nil, inf
}

// candHeap is a min-heap of candidates by OPTCOST (key-ordered on ties for
// determinism).
type candHeap []*Candidate

func (h candHeap) Len() int { return len(h) }
func (h candHeap) Less(i, j int) bool {
	if h[i].OptCost != h[j].OptCost {
		return h[i].OptCost < h[j].OptCost
	}
	return h[i].Key() < h[j].Key()
}
func (h candHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x interface{}) { *h = append(*h, x.(*Candidate)) }
func (h *candHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
