// Package service runs a session as an always-on multi-tenant query
// service (the deployment the paper assumes: an analytics cluster where
// many analysts' queries arrive continuously and the opportunistic view
// catalog is a shared resource).
//
// The service is a three-stage pipeline with bounded queues between
// stages:
//
//	intake  — Submit appends to a per-tenant FIFO; a full tenant queue
//	          blocks the submitter (backpressure, not load shedding).
//	planner — a single goroutine cuts micro-batches from the intake
//	          queues when either trigger fires: BatchSize pending
//	          ("size") or the oldest request aging past MaxWait
//	          ("timer"). The cut is weighted-fair across tenants so a
//	          flooding tenant cannot starve a trickling one. SQL parses
//	          here; parse errors resolve the ticket immediately and
//	          never reach the executor.
//	executor— a single goroutine turns each micro-batch into one
//	          Session.RunBatch call (shared scans + cross-query dedup),
//	          delivers per-query responses, and refreshes the hot-pin
//	          set between batches.
//
// Ingest (Append) serializes with in-flight micro-batches on the
// service's execution lock, on top of the session's own batch lock, so
// view maintenance never interleaves with a half-executed batch.
//
// Service-layer metrics go to Config.Obs, which may be a different
// registry than the session's: the parity tests require the session
// registry to stay byte-identical to sequential execution.
package service

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"opportune/internal/data"
	"opportune/internal/hiveql"
	"opportune/internal/obs"
	"opportune/internal/plan"
	"opportune/internal/session"
)

// ErrClosed is returned by Submit and Append after Close.
var ErrClosed = errors.New("service: closed")

// Config tunes the service. Zero values select the documented defaults.
type Config struct {
	// BatchSize is the size trigger: a micro-batch is cut as soon as this
	// many requests are pending. Default 8.
	BatchSize int
	// MaxWait is the latency trigger: a micro-batch is cut when the oldest
	// pending request has waited this long, full or not. Default 25ms.
	MaxWait time.Duration
	// QueueCap bounds each tenant's intake queue; Submit blocks when the
	// tenant's queue is full. Default 64.
	QueueCap int
	// ExecQueue bounds the planner→executor channel. Default 2.
	ExecQueue int

	// Mode and Accounting are applied to every query of every batch.
	Mode       session.Mode
	Accounting session.BatchAccounting
	// Parallel is passed through to BatchOptions.Parallel.
	Parallel int

	// Weights gives per-tenant shares for the fair cut; absent tenants
	// weigh 1. A tenant with weight w contributes up to w requests per
	// round-robin pass over the tenants.
	Weights map[string]int

	// HotPinFraction of the store's view capacity is kept pinned to the
	// hottest views between batches (0 disables; pinning is also disabled
	// when the store has no view budget, so an unbudgeted parity run sees
	// zero pin activity). HotPinTop caps the pinned set size (default 8).
	HotPinFraction float64
	HotPinTop      int

	// Obs receives service-layer metrics (queue depths, admission waits,
	// batch sizes, per-tenant counters). May be nil, and may deliberately
	// differ from the session's registry.
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.BatchSize <= 0 {
		c.BatchSize = 8
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 25 * time.Millisecond
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.ExecQueue <= 0 {
		c.ExecQueue = 2
	}
	if c.HotPinTop <= 0 {
		c.HotPinTop = 8
	}
	return c
}

// Response is the outcome of one submitted query.
type Response struct {
	Tenant     string
	ResultName string
	Metrics    *session.Metrics
	Err        error
	// AdmitWait is intake-to-execution latency; Wall is intake-to-response.
	AdmitWait time.Duration
	Wall      time.Duration
}

// Ticket is the caller's handle on an in-flight request. Exactly one
// Response is delivered per ticket.
type Ticket struct{ ch chan Response }

// Wait blocks until the request resolves.
func (t *Ticket) Wait() Response { return <-t.ch }

// request is one queued query.
type request struct {
	tenant     string
	sql        string
	plan       *plan.Node
	resultName string
	submitted  time.Time
	ticket     *Ticket
}

func (r *request) resolve(resp Response) {
	resp.Tenant = r.tenant
	resp.ResultName = r.resultName
	resp.Wall = time.Since(r.submitted)
	r.ticket.ch <- resp
}

// tenantQ is one tenant's FIFO intake queue.
type tenantQ struct {
	reqs   []*request
	weight int
}

// microBatch is the planner→executor unit.
type microBatch struct {
	reqs    []*request
	trigger string // "size", "timer", or "drain"
}

// Stats is a point-in-time summary of service activity.
type Stats struct {
	Submitted   int64
	Completed   int64
	Batches     int64
	ParseErrors int64
	Fallbacks   int64
}

// Service is the always-on multi-tenant front end over one Session.
type Service struct {
	cfg  Config
	sess *session.Session

	mu      sync.Mutex
	cond    *sync.Cond // signals intake-queue space to blocked Submits
	tenants map[string]*tenantQ
	order   []string // sorted tenant names, rebuilt on new tenants
	pending int
	rr      int // rotation index: which tenant the next cut starts at
	closed  bool

	kick   chan struct{} // nudges the planner out of its idle wait
	execCh chan microBatch
	done   chan struct{} // closed when the executor drains

	// execMu serializes batch execution with Append so ingest never
	// interleaves with a half-executed micro-batch.
	execMu sync.Mutex

	// hotPins is the executor-maintained pinned set (executor-only plus
	// the post-drain cleanup, never concurrent).
	hotPins map[string]int64

	// btMu guards btotals, the running sum of every batch's BatchStats.
	btMu    sync.Mutex
	btotals session.BatchStats

	submitted, completed, batches, parseErrs, fallbacks atomic.Int64
}

// New starts the service over an existing session. The session must not
// be driven directly (Run/RunBatch) while the service owns it; Append and
// read-only inspection are fine.
func New(sess *session.Session, cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:     cfg,
		sess:    sess,
		tenants: make(map[string]*tenantQ),
		kick:    make(chan struct{}, 1),
		execCh:  make(chan microBatch, cfg.ExecQueue),
		done:    make(chan struct{}),
		hotPins: make(map[string]int64),
	}
	s.cond = sync.NewCond(&s.mu)
	go s.plannerLoop()
	go s.executorLoop()
	return s
}

// Submit queues one SQL query (CREATE TABLE ... AS SELECT ...) for the
// tenant. It blocks while the tenant's intake queue is full and fails
// only after Close.
func (s *Service) Submit(tenant, sql string) (*Ticket, error) {
	return s.enqueue(&request{tenant: tenant, sql: sql})
}

// SubmitPlan queues an already-parsed plan under resultName.
func (s *Service) SubmitPlan(tenant string, p *plan.Node, resultName string) (*Ticket, error) {
	return s.enqueue(&request{tenant: tenant, plan: p, resultName: resultName})
}

func (s *Service) enqueue(req *request) (*Ticket, error) {
	req.ticket = &Ticket{ch: make(chan Response, 1)}
	s.mu.Lock()
	tq := s.tenants[req.tenant]
	if tq == nil {
		w := s.cfg.Weights[req.tenant]
		if w <= 0 {
			w = 1
		}
		tq = &tenantQ{weight: w}
		s.tenants[req.tenant] = tq
		s.order = append(s.order, req.tenant)
		sort.Strings(s.order)
	}
	for !s.closed && len(tq.reqs) >= s.cfg.QueueCap {
		s.cond.Wait()
	}
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	req.submitted = time.Now()
	tq.reqs = append(tq.reqs, req)
	s.pending++
	depth := len(tq.reqs)
	s.mu.Unlock()

	s.submitted.Add(1)
	s.cfg.Obs.Counter("service_queries_total", "tenant", req.tenant).Inc()
	s.cfg.Obs.Gauge("service_queue_depth", "tenant", req.tenant).Set(float64(depth))
	select {
	case s.kick <- struct{}{}:
	default:
	}
	return req.ticket, nil
}

// Append ingests rows into a base table, serialized against in-flight
// micro-batches so maintenance never observes a half-executed batch.
func (s *Service) Append(table string, rows []data.Row) (*session.AppendReport, error) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	s.execMu.Lock()
	defer s.execMu.Unlock()
	return s.sess.AppendRows(table, rows)
}

// Close drains: pending requests still execute, then the pipeline shuts
// down. Submits blocked on backpressure fail with ErrClosed.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	select {
	case s.kick <- struct{}{}:
	default:
	}
	<-s.done
}

// Stats reports cumulative service activity.
func (s *Service) Stats() Stats {
	return Stats{
		Submitted:   s.submitted.Load(),
		Completed:   s.completed.Load(),
		Batches:     s.batches.Load(),
		ParseErrors: s.parseErrs.Load(),
		Fallbacks:   s.fallbacks.Load(),
	}
}

// plannerLoop cuts micro-batches. Single goroutine; owns the triggers.
func (s *Service) plannerLoop() {
	for {
		s.mu.Lock()
		for {
			if s.pending >= s.cfg.BatchSize {
				break
			}
			if s.closed {
				break // drain (or exit when pending==0)
			}
			if s.pending > 0 {
				oldest := s.oldestLocked()
				wait := s.cfg.MaxWait - time.Since(oldest)
				if wait <= 0 {
					break
				}
				s.mu.Unlock()
				timer := time.NewTimer(wait)
				select {
				case <-s.kick:
					timer.Stop()
				case <-timer.C:
				}
				s.mu.Lock()
				continue
			}
			// Idle: wait for a submit or Close. A stale timer wake with
			// nothing pending lands here and cuts nothing — no empty
			// batch, no zero-size histogram sample.
			s.mu.Unlock()
			<-s.kick
			s.mu.Lock()
		}
		if s.closed && s.pending == 0 {
			s.mu.Unlock()
			close(s.execCh)
			return
		}
		batch, trigger := s.cutLocked()
		s.cond.Broadcast() // queue space freed
		s.mu.Unlock()
		if len(batch) == 0 {
			continue
		}
		ready := s.parse(batch)
		if len(ready) == 0 {
			continue
		}
		s.execCh <- microBatch{reqs: ready, trigger: trigger}
	}
}

func (s *Service) oldestLocked() time.Time {
	var oldest time.Time
	for _, name := range s.order {
		tq := s.tenants[name]
		if len(tq.reqs) == 0 {
			continue
		}
		if t := tq.reqs[0].submitted; oldest.IsZero() || t.Before(oldest) {
			oldest = t
		}
	}
	return oldest
}

// cutLocked removes up to BatchSize requests using weighted round-robin
// over the tenants: repeated passes starting at the rotation index, each
// tenant yielding up to its weight per pass. The rotation index advances
// one tenant per cut so no tenant permanently goes first.
func (s *Service) cutLocked() ([]*request, string) {
	trigger := "timer"
	if s.pending >= s.cfg.BatchSize {
		trigger = "size"
	} else if s.closed {
		trigger = "drain"
	}
	var out []*request
	n := len(s.order)
	if n == 0 {
		return nil, trigger
	}
	for len(out) < s.cfg.BatchSize && s.pending > 0 {
		took := 0
		for i := 0; i < n && len(out) < s.cfg.BatchSize; i++ {
			name := s.order[(s.rr+i)%n]
			tq := s.tenants[name]
			take := tq.weight
			for take > 0 && len(tq.reqs) > 0 && len(out) < s.cfg.BatchSize {
				out = append(out, tq.reqs[0])
				tq.reqs = tq.reqs[1:]
				s.pending--
				take--
				took++
			}
			s.cfg.Obs.Gauge("service_queue_depth", "tenant", name).Set(float64(len(tq.reqs)))
		}
		if took == 0 {
			break
		}
	}
	s.rr = (s.rr + 1) % n
	return out, trigger
}

// parse resolves SQL for cut requests; parse failures resolve their
// tickets here and never reach the executor.
func (s *Service) parse(reqs []*request) []*request {
	out := reqs[:0]
	for _, req := range reqs {
		if req.plan == nil {
			st, err := hiveql.ParseOne(req.sql)
			if err != nil {
				s.parseErrs.Add(1)
				s.cfg.Obs.Counter("service_parse_errors_total").Inc()
				req.resolve(Response{Err: fmt.Errorf("service: parse: %w", err)})
				continue
			}
			req.plan = st.Plan
			req.resultName = st.Table
		}
		out = append(out, req)
	}
	return out
}

// executorLoop turns micro-batches into RunBatch calls and delivers
// responses. Single goroutine; owns the hot-pin set.
func (s *Service) executorLoop() {
	for mb := range s.execCh {
		s.runBatch(mb)
		s.refreshHotPins()
	}
	// Drained: release any remaining hot pins (each name held exactly once).
	for name := range s.hotPins {
		s.sess.Store.Unpin([]string{name})
		delete(s.hotPins, name)
	}
	s.cfg.Obs.Gauge("service_hot_pinned_bytes").Set(0)
	close(s.done)
}

func (s *Service) runBatch(mb microBatch) {
	start := time.Now()
	waitHist := s.cfg.Obs.Histogram("service_admission_wait_seconds", obs.DefSecondsBuckets)
	queries := make([]session.BatchQuery, len(mb.reqs))
	for i, req := range mb.reqs {
		queries[i] = session.BatchQuery{Plan: req.plan, ResultName: req.resultName, Mode: s.cfg.Mode}
		waitHist.Observe(start.Sub(req.submitted).Seconds())
	}
	s.cfg.Obs.Histogram("service_batch_size", obs.DefFaninBuckets).Observe(float64(len(mb.reqs)))
	s.cfg.Obs.Counter("service_batches_total", "trigger", mb.trigger).Inc()
	s.batches.Add(1)

	s.execMu.Lock()
	res, err := s.sess.RunBatch(queries, session.BatchOptions{
		Accounting: s.cfg.Accounting, Parallel: s.cfg.Parallel,
	})
	if err != nil {
		// A batch-level failure (e.g. one query's plan) must not sink its
		// batchmates: fall back to sequential execution per query.
		s.fallbacks.Add(1)
		s.cfg.Obs.Counter("service_exec_fallbacks_total").Inc()
		for i, req := range mb.reqs {
			m, rerr := s.sess.Run(queries[i].Plan, queries[i].ResultName, queries[i].Mode)
			s.deliver(req, m, rerr, start)
		}
		s.execMu.Unlock()
		return
	}
	s.execMu.Unlock()
	s.btMu.Lock()
	addBatchStats(&s.btotals, res.Stats)
	s.btMu.Unlock()
	for i, req := range mb.reqs {
		s.deliver(req, res.PerQuery[i], nil, start)
	}
}

// BatchTotals sums BatchStats over every executed micro-batch so far.
func (s *Service) BatchTotals() session.BatchStats {
	s.btMu.Lock()
	defer s.btMu.Unlock()
	return s.btotals
}

func addBatchStats(dst *session.BatchStats, src session.BatchStats) {
	dst.Queries += src.Queries
	dst.JobsSubmitted += src.JobsSubmitted
	dst.JobsExecuted += src.JobsExecuted
	dst.JobsDeduped += src.JobsDeduped
	dst.SharedScans += src.SharedScans
	dst.SharedScanConsumers += src.SharedScanConsumers
	dst.ScanBytesSaved += src.ScanBytesSaved
	dst.SimSeconds += src.SimSeconds
	dst.AttributedSimSeconds += src.AttributedSimSeconds
	dst.SavedSimSeconds += src.SavedSimSeconds
	dst.WallSeconds += src.WallSeconds
}

func (s *Service) deliver(req *request, m *session.Metrics, err error, admitted time.Time) {
	s.completed.Add(1)
	s.cfg.Obs.Counter("service_queries_completed_total", "tenant", req.tenant).Inc()
	if m != nil {
		s.cfg.Obs.FloatCounter("service_tenant_sim_seconds_total", "tenant", req.tenant).Add(m.TotalSeconds())
	}
	req.resolve(Response{Metrics: m, Err: err, AdmitWait: admitted.Sub(req.submitted)})
}

// refreshHotPins re-ranks stored views by retention score (benefit plus
// use count) and pins the top set within HotPinFraction of the view
// budget, capped at HotPinTop. New pins land before old ones release so
// a view staying hot is never momentarily evictable. Disabled when the
// store has no view budget.
func (s *Service) refreshHotPins() {
	capacity := s.sess.Store.ViewCapacityBytes
	if capacity <= 0 || s.cfg.HotPinFraction <= 0 {
		return
	}
	budget := int64(s.cfg.HotPinFraction * float64(capacity))
	infos := s.sess.Store.ViewRetention()
	sort.SliceStable(infos, func(i, j int) bool {
		si := infos[i].Benefit + float64(infos[i].UseCount)
		sj := infos[j].Benefit + float64(infos[j].UseCount)
		if si != sj {
			return si > sj
		}
		return infos[i].Name < infos[j].Name
	})
	want := make(map[string]int64)
	var used int64
	for _, info := range infos {
		if len(want) >= s.cfg.HotPinTop {
			break
		}
		if used+info.SizeBytes > budget {
			continue
		}
		want[info.Name] = info.SizeBytes
		used += info.SizeBytes
	}
	changed := false
	for name := range want {
		if _, ok := s.hotPins[name]; !ok {
			s.sess.Store.Pin([]string{name})
			changed = true
		}
	}
	for name := range s.hotPins {
		if _, ok := want[name]; !ok {
			s.sess.Store.Unpin([]string{name})
			changed = true
			delete(s.hotPins, name)
		}
	}
	for name, size := range want {
		s.hotPins[name] = size
	}
	if changed {
		s.cfg.Obs.Counter("service_hot_pin_changes_total").Inc()
	}
	s.cfg.Obs.Gauge("service_hot_pinned_bytes").Set(float64(used))
}
