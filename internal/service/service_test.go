package service

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"opportune/internal/hiveql"
	"opportune/internal/obs"
	"opportune/internal/session"
	"opportune/internal/storage"
	"opportune/internal/workload"
)

// newTestSession builds a small-scale session with the full workload
// installed, instrumented with a fresh registry.
func newTestSession(t *testing.T, workers, reduceTasks int) (*session.Session, *obs.Registry) {
	t.Helper()
	s, err := workload.NewSession(workload.SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	if workers > 0 {
		s.Eng.Workers = workers
	}
	if reduceTasks > 0 {
		s.Eng.Params.ReduceTasks = reduceTasks
	}
	reg := obs.NewRegistry()
	s.Instrument(reg)
	return s, reg
}

func parityQueries() []workload.Query {
	var qs []workload.Query
	for a := 1; a <= 2; a++ {
		for v := 1; v <= 4; v++ {
			qs = append(qs, workload.QueryFor(a, v))
		}
	}
	return qs
}

func fingerprint(t *testing.T, s *session.Session, name string) uint64 {
	t.Helper()
	ds, ok := s.Store.Meta(name)
	if !ok {
		t.Fatalf("result %q not in store", name)
	}
	return ds.Relation().Fingerprint()
}

// TestServiceParityWithSequentialRun is the service's end-to-end oracle:
// a single tenant submitting queries in order through the full
// intake→planner→executor pipeline (ModeOriginal, parity accounting) must
// yield per-query Metrics, result relations, and a session counter
// snapshot byte-identical to calling Session.Run in a loop — across
// Workers ∈ {1,4} × ReduceTasks ∈ {1,3}. The partition into micro-batches
// is irrelevant by construction: single-tenant FIFO intake plus an
// in-order executor composes to sequential execution.
func TestServiceParityWithSequentialRun(t *testing.T) {
	queries := parityQueries()

	// Sequential reference. Deterministic metrics and counters are
	// invariant across the W×R grid (wall-clock parallelism only), so one
	// reference arm suffices.
	ref, refReg := newTestSession(t, 0, 0)
	var refMs []*session.Metrics
	refFPs := make(map[string]uint64)
	for _, q := range queries {
		m, err := workload.Exec(ref, q, session.ModeOriginal)
		if err != nil {
			t.Fatal(err)
		}
		refMs = append(refMs, m)
		refFPs[q.Name] = fingerprint(t, ref, m.ResultName)
	}
	refSnap := refReg.Snapshot()

	grid := []struct{ w, r int }{{1, 1}, {1, 3}, {4, 1}, {4, 3}}
	for _, g := range grid {
		t.Run(fmt.Sprintf("W%dR%d", g.w, g.r), func(t *testing.T) {
			sess, sessReg := newTestSession(t, g.w, g.r)
			svc := New(sess, Config{
				BatchSize:  3, // uneven cuts: 3+3+2 across 8 queries
				MaxWait:    10 * time.Second,
				Accounting: session.BatchParity,
				Obs:        obs.NewRegistry(), // service metrics stay off the session registry
			})
			tickets := make([]*Ticket, len(queries))
			for i, q := range queries {
				tk, err := svc.Submit("analyst", q.SQL)
				if err != nil {
					t.Fatal(err)
				}
				tickets[i] = tk
			}
			svc.Close()
			for i, tk := range tickets {
				resp := tk.Wait()
				if resp.Err != nil {
					t.Fatalf("%s: %v", queries[i].Name, resp.Err)
				}
				if !reflect.DeepEqual(resp.Metrics, refMs[i]) {
					t.Errorf("%s metrics differ:\n service %+v\n seq     %+v",
						queries[i].Name, resp.Metrics, refMs[i])
				}
				if got := fingerprint(t, sess, resp.ResultName); got != refFPs[queries[i].Name] {
					t.Errorf("%s: service result differs from sequential", queries[i].Name)
				}
			}
			snap := sessReg.Snapshot()
			if !reflect.DeepEqual(snap.Counters, refSnap.Counters) {
				t.Errorf("session counters differ:\n service %v\n seq     %v",
					snap.Counters, refSnap.Counters)
			}
			if !reflect.DeepEqual(snap.FloatCounters, refSnap.FloatCounters) {
				t.Errorf("session float counters differ:\n service %v\n seq     %v",
					snap.FloatCounters, refSnap.FloatCounters)
			}
		})
	}
}

// TestServiceSizeTrigger: with a far-off timer, 4 submits at BatchSize=2
// cut exactly two "size" batches and nothing else; the batch-size
// histogram records exactly those two samples (no zero-size samples from
// idle ticks, no drain batch after the queue empties).
func TestServiceSizeTrigger(t *testing.T) {
	sess, _ := newTestSession(t, 0, 0)
	svcReg := obs.NewRegistry()
	svc := New(sess, Config{BatchSize: 2, MaxWait: 10 * time.Second, Obs: svcReg})
	q := workload.IngestQueries()[1] // map-only filter, cheap
	var tickets []*Ticket
	for i := 0; i < 4; i++ {
		tk, err := svc.Submit("t1", q.SQL)
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	for _, tk := range tickets {
		if resp := tk.Wait(); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	svc.Close()
	snap := svcReg.Snapshot()
	if got := snap.Counters[`service_batches_total{trigger=size}`]; got != 2 {
		t.Errorf("size batches = %d, want 2", got)
	}
	if got := snap.Counters[`service_batches_total{trigger=timer}`]; got != 0 {
		t.Errorf("timer batches = %d, want 0", got)
	}
	if got := snap.Counters[`service_batches_total{trigger=drain}`]; got != 0 {
		t.Errorf("drain batches = %d, want 0", got)
	}
	h := snap.Histograms["service_batch_size"]
	if h.Count != 2 || h.Sum != 4 {
		t.Errorf("batch-size histogram count=%d sum=%g, want 2 samples summing to 4", h.Count, h.Sum)
	}
	if snap.Histograms["service_admission_wait_seconds"].Count != 4 {
		t.Errorf("admission-wait samples = %d, want 4", snap.Histograms["service_admission_wait_seconds"].Count)
	}
}

// TestServiceTimerTrigger: a single query below BatchSize must still
// execute once MaxWait elapses — and only then.
func TestServiceTimerTrigger(t *testing.T) {
	sess, _ := newTestSession(t, 0, 0)
	svcReg := obs.NewRegistry()
	svc := New(sess, Config{BatchSize: 100, MaxWait: 20 * time.Millisecond, Obs: svcReg})
	tk, err := svc.Submit("t1", workload.IngestQueries()[1].SQL)
	if err != nil {
		t.Fatal(err)
	}
	resp := tk.Wait()
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if resp.AdmitWait < 20*time.Millisecond {
		t.Errorf("admitted after %v, before the %v latency trigger", resp.AdmitWait, 20*time.Millisecond)
	}
	svc.Close()
	snap := svcReg.Snapshot()
	if got := snap.Counters[`service_batches_total{trigger=timer}`]; got != 1 {
		t.Errorf("timer batches = %d, want 1", got)
	}
	if h := snap.Histograms["service_batch_size"]; h.Count != 1 || h.Sum != 1 {
		t.Errorf("batch-size histogram count=%d sum=%g, want one size-1 sample", h.Count, h.Sum)
	}
}

// TestServiceDrainTrigger: Close with pending work below both triggers
// still executes everything, labeled "drain".
func TestServiceDrainTrigger(t *testing.T) {
	sess, _ := newTestSession(t, 0, 0)
	svcReg := obs.NewRegistry()
	svc := New(sess, Config{BatchSize: 100, MaxWait: 10 * time.Second, Obs: svcReg})
	tk1, err := svc.Submit("t1", workload.IngestQueries()[1].SQL)
	if err != nil {
		t.Fatal(err)
	}
	tk2, err := svc.Submit("t2", workload.IngestQueries()[0].SQL)
	if err != nil {
		t.Fatal(err)
	}
	svc.Close()
	if resp := tk1.Wait(); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if resp := tk2.Wait(); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	snap := svcReg.Snapshot()
	if got := snap.Counters[`service_batches_total{trigger=drain}`]; got != 1 {
		t.Errorf("drain batches = %d, want 1", got)
	}
	if _, err := svc.Submit("t1", "CREATE TABLE x AS SELECT tweet_id FROM twtr"); err != ErrClosed {
		t.Errorf("submit after close: err = %v, want ErrClosed", err)
	}
	if _, err := svc.Append("twtr", nil); err != ErrClosed {
		t.Errorf("append after close: err = %v, want ErrClosed", err)
	}
}

// TestServiceIdleCloseObservesNothing: an idle service whose timer could
// have ticked many times must publish no batch counters and no histogram
// samples — an empty flush tick is not a batch.
func TestServiceIdleCloseObservesNothing(t *testing.T) {
	sess, _ := newTestSession(t, 0, 0)
	svcReg := obs.NewRegistry()
	svc := New(sess, Config{BatchSize: 4, MaxWait: 5 * time.Millisecond, Obs: svcReg})
	time.Sleep(40 * time.Millisecond)
	svc.Close()
	snap := svcReg.Snapshot()
	for name, v := range snap.Counters {
		if v != 0 {
			t.Errorf("idle service published counter %s=%d", name, v)
		}
	}
	if h := snap.Histograms["service_batch_size"]; h.Count != 0 {
		t.Errorf("idle service published %d batch-size samples", h.Count)
	}
}

// TestServiceParseErrorResolvesImmediately: a malformed query resolves
// its own ticket with an error at the planning stage without sinking the
// micro-batch it was cut with.
func TestServiceParseErrorResolvesImmediately(t *testing.T) {
	sess, _ := newTestSession(t, 0, 0)
	svcReg := obs.NewRegistry()
	svc := New(sess, Config{BatchSize: 2, MaxWait: 10 * time.Second, Obs: svcReg})
	bad, err := svc.Submit("t1", "CREATE GIBBERISH")
	if err != nil {
		t.Fatal(err)
	}
	good, err := svc.Submit("t1", workload.IngestQueries()[1].SQL)
	if err != nil {
		t.Fatal(err)
	}
	if resp := bad.Wait(); resp.Err == nil {
		t.Error("malformed query resolved without error")
	}
	if resp := good.Wait(); resp.Err != nil {
		t.Errorf("well-formed batchmate failed: %v", resp.Err)
	}
	svc.Close()
	if got := svcReg.Snapshot().Counters["service_parse_errors_total"]; got != 1 {
		t.Errorf("parse errors = %d, want 1", got)
	}
}

// TestServiceFairCut exercises the weighted round-robin cut directly: a
// flooding tenant must not fill the batch before a trickling tenant's
// lone request rides along, and per-pass shares follow the weights.
func TestServiceFairCut(t *testing.T) {
	mk := func(batchSize int, weights map[string]int) *Service {
		s := &Service{
			cfg:     Config{BatchSize: batchSize, Weights: weights}.withDefaults(),
			tenants: make(map[string]*tenantQ),
		}
		return s
	}
	load := func(s *Service, tenant string, n int) {
		w := s.cfg.Weights[tenant]
		if w <= 0 {
			w = 1
		}
		tq := &tenantQ{weight: w}
		for i := 0; i < n; i++ {
			tq.reqs = append(tq.reqs, &request{tenant: tenant})
		}
		s.tenants[tenant] = tq
		s.order = append(s.order, tenant)
		s.pending += n
	}
	count := func(reqs []*request) map[string]int {
		out := map[string]int{}
		for _, r := range reqs {
			out[r.tenant]++
		}
		return out
	}

	// Hot tenant floods; cold tenant's single query still makes the cut.
	s := mk(4, nil)
	load(s, "cold", 1)
	load(s, "hot", 100)
	cut, trigger := s.cutLocked()
	if trigger != "size" {
		t.Errorf("trigger = %q, want size", trigger)
	}
	got := count(cut)
	if got["cold"] != 1 || got["hot"] != 3 {
		t.Errorf("cut = %v, want cold:1 hot:3", got)
	}

	// Weights shift the per-pass share 2:1.
	s = mk(6, map[string]int{"a": 2, "b": 1})
	load(s, "a", 100)
	load(s, "b", 100)
	cut, _ = s.cutLocked()
	got = count(cut)
	if got["a"] != 4 || got["b"] != 2 {
		t.Errorf("weighted cut = %v, want a:4 b:2", got)
	}

	// Rotation: the tenant that led this cut doesn't lead the next one.
	s = mk(2, nil)
	load(s, "a", 10)
	load(s, "b", 10)
	first, _ := s.cutLocked()
	second, _ := s.cutLocked()
	if first[0].tenant == second[0].tenant {
		t.Errorf("consecutive cuts both led by %q — rotation not advancing", first[0].tenant)
	}
}

// TestServiceStress interleaves concurrent multi-tenant submission
// (including malformed queries) with ingest appends under -race: every
// ticket gets exactly one response, accounting balances, appends
// maintain views, and Close leaves no dangling pins.
func TestServiceStress(t *testing.T) {
	sess, _ := newTestSession(t, 2, 0)
	// Standing views so appends have something to maintain.
	for _, q := range workload.IngestQueries() {
		if _, err := workload.Exec(sess, q, session.ModeOriginal); err != nil {
			t.Fatal(err)
		}
	}
	svcReg := obs.NewRegistry()
	svc := New(sess, Config{BatchSize: 4, MaxWait: 2 * time.Millisecond, QueueCap: 8, Obs: svcReg})

	const tenants, perTenant = 4, 8
	sqls := []string{
		workload.IngestQueries()[1].SQL,
		workload.IngestQueries()[0].SQL,
		"CREATE TABLE stress_geo AS SELECT tweet_id, lat, lon FROM twtr WHERE lat > 37.5",
		"CREATE NONSENSE", // parse error: must resolve, not wedge the pipeline
	}
	var wg sync.WaitGroup
	responses := make(chan Response, tenants*perTenant)
	for g := 0; g < tenants; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			tenant := fmt.Sprintf("tenant%d", g)
			for i := 0; i < perTenant; i++ {
				tk, err := svc.Submit(tenant, sqls[rng.Intn(len(sqls))])
				if err != nil {
					t.Errorf("%s submit %d: %v", tenant, i, err)
					return
				}
				responses <- tk.Wait()
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		sc := workload.SmallScale()
		for e := 0; e < 4; e++ {
			rep, err := svc.Append("twtr", workload.AppendBatch(sc, e, 25))
			if err != nil {
				t.Errorf("append %d: %v", e, err)
				return
			}
			if len(rep.Maintained) == 0 {
				t.Errorf("append %d maintained nothing", e)
			}
		}
	}()
	wg.Wait()
	svc.Close()
	close(responses)

	var ok, failed int
	for resp := range responses {
		if resp.Err != nil {
			failed++
		} else {
			ok++
		}
	}
	if ok+failed != tenants*perTenant {
		t.Fatalf("got %d responses for %d tickets", ok+failed, tenants*perTenant)
	}
	st := svc.Stats()
	if st.Submitted != tenants*perTenant {
		t.Errorf("Submitted = %d, want %d", st.Submitted, tenants*perTenant)
	}
	if st.Completed+st.ParseErrors != st.Submitted {
		t.Errorf("Completed %d + ParseErrors %d != Submitted %d", st.Completed, st.ParseErrors, st.Submitted)
	}
	if int64(failed) != st.ParseErrors {
		t.Errorf("%d error responses vs %d parse errors", failed, st.ParseErrors)
	}
	for name, n := range sess.Store.Pins() {
		if n != 0 {
			t.Errorf("dangling pin after Close: %s=%d", name, n)
		}
	}
}

// TestServiceHotPinning: with a view budget set, the executor keeps the
// hottest views pinned between batches and releases every pin on Close.
func TestServiceHotPinning(t *testing.T) {
	sess, _ := newTestSession(t, 0, 0)
	sess.Store.ViewCapacityBytes = 1 << 30
	svcReg := obs.NewRegistry()
	svc := New(sess, Config{
		BatchSize: 2, MaxWait: 10 * time.Second,
		HotPinFraction: 0.5, HotPinTop: 4, Obs: svcReg,
	})
	var tickets []*Ticket
	for _, q := range parityQueries()[:4] {
		tk, err := svc.Submit("t1", q.SQL)
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	for _, tk := range tickets {
		if resp := tk.Wait(); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	snap := svcReg.Snapshot()
	if snap.Gauges["service_hot_pinned_bytes"] <= 0 {
		t.Error("no bytes hot-pinned despite view budget")
	}
	if snap.Counters["service_hot_pin_changes_total"] == 0 {
		t.Error("hot-pin set never changed")
	}
	pinned := 0
	for _, n := range sess.Store.Pins() {
		pinned += n
	}
	if pinned == 0 {
		t.Error("no views pinned while service is live")
	}
	svc.Close()
	for name, n := range sess.Store.Pins() {
		if n != 0 {
			t.Errorf("dangling pin after Close: %s=%d", name, n)
		}
	}
	if svcReg.Snapshot().Gauges["service_hot_pinned_bytes"] != 0 {
		t.Error("hot-pinned-bytes gauge not zeroed on Close")
	}
}

// TestServicePartitionStress races the partitioning metadata lifecycle:
// partition-matched views (hash-clustered logs, shuffle-free group-bys and
// a co-partitioned join) are hot-pinned by the service while tenants
// resubmit their defining queries, a direct caller drives Run and RunBatch
// on the same session, and an ingest goroutine bumps the epoch with
// appends that maintain some views and invalidate others. Run under -race.
// Afterwards the layout metadata must be consistent everywhere: store and
// catalog agree on every dataset's declared layout, no dropped view left a
// claim behind, and the base logs still carry the clustering the appends
// re-declared.
func TestServicePartitionStress(t *testing.T) {
	sess, sessReg := newTestSession(t, 2, 0)
	sess.Store.ViewCapacityBytes = 1 << 30 // roomy: pins, not eviction, are under test
	parts := sess.Opt.Params.DefaultPartitions
	workload.PartitionBases(sess, parts)
	// Materialize the partition-matched views so the service has something
	// to hot-pin from the first batch on.
	for _, q := range workload.PartitionQueries() {
		if _, err := workload.Exec(sess, q, session.ModeOriginal); err != nil {
			t.Fatal(err)
		}
	}
	svcReg := obs.NewRegistry()
	svc := New(sess, Config{
		BatchSize: 3, MaxWait: 2 * time.Millisecond, QueueCap: 8,
		HotPinFraction: 0.5, HotPinTop: 4, Obs: svcReg,
	})

	const tenants, perTenant = 3, 6
	var wg sync.WaitGroup
	for g := 0; g < tenants; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 77))
			tenant := fmt.Sprintf("tenant%d", g)
			qs := workload.PartitionQueries()
			for i := 0; i < perTenant; i++ {
				tk, err := svc.Submit(tenant, qs[rng.Intn(len(qs))].SQL)
				if err != nil {
					t.Errorf("%s submit %d: %v", tenant, i, err)
					return
				}
				if resp := tk.Wait(); resp.Err != nil {
					t.Errorf("%s query %d: %v", tenant, i, resp.Err)
				}
			}
		}(g)
	}
	// Direct Run caller sharing the session with the service. Each
	// iteration parses afresh: annotation mutates the plan tree in place,
	// so goroutines must not share plan nodes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			st, err := hiveql.ParseOne(workload.PartitionQueries()[0].SQL)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := sess.Run(st.Plan, "direct_run", session.ModeOriginal); err != nil {
				t.Errorf("direct run %d: %v", i, err)
				return
			}
		}
	}()
	// Direct RunBatch caller: a shared-scan pair of layout hit + miss.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			var batch []session.BatchQuery
			for j, name := range []string{"batch_hit", "batch_miss"} {
				st, err := hiveql.ParseOne(workload.PartitionQueries()[j*3].SQL)
				if err != nil {
					t.Error(err)
					return
				}
				batch = append(batch, session.BatchQuery{
					Plan: st.Plan, ResultName: name, Mode: session.ModeOriginal,
				})
			}
			if _, err := sess.RunBatch(batch, session.BatchOptions{}); err != nil {
				t.Errorf("direct batch %d: %v", i, err)
				return
			}
		}
	}()
	// Ingest: every append bumps the epoch, maintains the twtr group-by
	// views in place (layout preserved through Refresh) and invalidates the
	// join views (layout must vanish with them).
	wg.Add(1)
	go func() {
		defer wg.Done()
		sc := workload.SmallScale()
		for e := 0; e < 3; e++ {
			if _, err := svc.Append("twtr", workload.AppendBatch(sc, e, 20)); err != nil {
				t.Errorf("append %d: %v", e, err)
				return
			}
		}
	}()
	wg.Wait()
	svc.Close()

	if got := sessReg.Snapshot().Gauges["session_ingest_epoch"]; got < 3 {
		t.Errorf("ingest epoch %v after 3 appends, want >= 3", got)
	}
	if svcReg.Snapshot().Counters["service_hot_pin_changes_total"] == 0 {
		t.Error("hot-pin set never changed while partition views were hot")
	}
	for name, n := range sess.Store.Pins() {
		if n != 0 {
			t.Errorf("dangling pin after Close: %s=%d", name, n)
		}
	}

	// Layout-consistency sweep: whatever interleaving happened, store and
	// catalog must tell the same story dataset by dataset — stale partition
	// metadata after the epoch bumps is exactly the bug class this hunts.
	for _, kind := range []storage.Kind{storage.Base, storage.View} {
		for _, name := range sess.Store.List(kind) {
			sigs, p := sess.Store.Partitioning(name)
			info, ok := sess.Cat.Table(name)
			if !ok {
				if p != 0 {
					t.Errorf("%s: store claims layout (%v, %d) but catalog dropped it", name, sigs, p)
				}
				continue
			}
			if !reflect.DeepEqual(info.Part.Sigs, sigs) || info.Part.Parts != p {
				t.Errorf("%s: catalog layout (%v, %d) != store layout (%v, %d)",
					name, info.Part.Sigs, info.Part.Parts, sigs, p)
			}
		}
	}
	for _, v := range sess.Cat.Views() {
		if v.Part.IsPartitioned() && !sess.Store.Has(v.Name) {
			t.Errorf("catalog view %s carries layout %v but its bytes are gone", v.Name, v.Part.Sigs)
		}
	}
	// The appends re-declared the base clustering on every epoch.
	for _, b := range []string{"twtr", "fsq", "land"} {
		if _, p := sess.Store.Partitioning(b); p != parts {
			t.Errorf("%s lost its clustering after appends (parts=%d, want %d)", b, p, parts)
		}
	}
}
