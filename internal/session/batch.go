// Batch execution: MRShare-style shared-scan processing of a query batch
// (paper §6 positions opportunistic views inside exactly this kind of
// shared-workload executor).
//
// RunBatch compiles every query up front, then restructures the combined
// job DAG three ways before anything executes:
//
//  1. Cross-query job dedup — jobs with the same output, input list, and
//     producing-subplan fingerprint are the same computation; the first
//     occurrence executes, later ones become "ghosts" that reuse its
//     materialization (the opportunistic view is shared, not recomputed).
//  2. Shared scans — remaining jobs reading the identical input list merge
//     into one meta-job that scans the inputs once and feeds every
//     consumer's map/combine/shuffle/reduce pipeline (MRShare grouping:
//     the read term of Cm is paid once, per-consumer costs separately).
//  3. Inter-job parallelism — the deduped unit DAG is executed with
//     dependency-ordered parallelism across queries, not one query at a
//     time.
//
// Accounting comes in two modes. BatchPhysical (the default) charges what
// physically ran: a shared scan's bytes and seconds are counted once, and
// dedup ghosts are not re-counted. BatchParity replays standalone-
// equivalent accounting so per-query Metrics and the full deterministic
// counter snapshot are byte-identical to sequential Run — it exists so the
// differential tests can prove the restructured execution computes exactly
// the same thing, including under injected fault plans.
package session

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"opportune/internal/mr"
	"opportune/internal/obs"
	"opportune/internal/optimizer"
	"opportune/internal/plan"
)

// BatchAccounting selects how RunBatch attributes cost and metrics.
type BatchAccounting uint8

const (
	// BatchPhysical counts what physically executed: shared scans once,
	// deduped jobs once. This is the mode that shows the sharing win.
	BatchPhysical BatchAccounting = iota
	// BatchParity replays standalone-equivalent accounting: per-query
	// Metrics and all deterministic counters match sequential Run exactly.
	// Supported for ModeOriginal queries only (rewrite modes would plan
	// against a different view catalog than sequential execution builds).
	BatchParity
)

// String names the accounting mode.
func (a BatchAccounting) String() string {
	if a == BatchParity {
		return "parity"
	}
	return "physical"
}

// BatchQuery is one query of a batch.
type BatchQuery struct {
	Plan       *plan.Node
	ResultName string
	Mode       Mode
}

// BatchOptions configures RunBatch.
type BatchOptions struct {
	Accounting BatchAccounting
	// Parallel bounds how many independent units execute concurrently;
	// <=0 means runtime.GOMAXPROCS(0).
	Parallel int
}

// BatchStats summarizes what the batch restructuring did.
type BatchStats struct {
	Queries       int
	JobsSubmitted int // jobs across all compiled queries
	JobsExecuted  int // physical pipeline executions after dedup
	JobsDeduped   int // jobs satisfied by another query's execution

	SharedScans         int // meta-jobs that scanned for >1 consumer
	SharedScanConsumers int // consumers across those meta-jobs
	ScanBytesSaved      int64

	// SimSeconds is the physical simulated cost of the batch (shared scans
	// once, ghosts free); AttributedSimSeconds is the standalone-equivalent
	// sum over all submitted jobs; SavedSimSeconds is their difference.
	SimSeconds           float64
	AttributedSimSeconds float64
	SavedSimSeconds      float64

	WallSeconds float64
}

// BatchResult is RunBatch's report: per-query metrics in input order plus
// batch-level statistics.
type BatchResult struct {
	PerQuery []*Metrics
	Stats    BatchStats
}

// batchConsumer is one compiled job of one query — the unit of attribution.
// rank is its flattened sequential position: executing consumers strictly
// in rank order is, by construction, exactly what Run-in-a-loop would do.
type batchConsumer struct {
	rank   int
	qi, ji int
	job    *mr.Job
	jn     *optimizer.JobNode

	unit *batchUnit     // physical unit executing this job (nil for ghosts)
	dup  *batchConsumer // representative this job deduped onto

	res     *mr.Result // standalone-equivalent attributed result
	wall    float64
	physSim float64 // physically-charged simulated seconds (0 for ghosts)

	// Ghost read-replay artifacts (parity mode): dedup ghosts and shared-
	// scan secondaries re-read their inputs so storage counters and the
	// read-fault budget drain exactly as sequential execution would.
	ghostDone  bool
	gAttempts  int
	gWasted    float64
	gRetried   int64
	gRecovered string
}

// batchUnit is one physical execution: a singleton job or a shared-scan
// meta-job covering several consumers (rank order, consumers[0] primary).
type batchUnit struct {
	rank      int
	consumers []*batchConsumer
	deps      map[*batchUnit]struct{}

	shared *mr.SharedScanResult
	err    error
	done   bool
}

// plannedQuery carries one query's upfront compilation.
type plannedQuery struct {
	m      *Metrics
	chosen *plan.Node
	w      *optimizer.Work
	jobs   []*mr.Job
	epoch  int64
}

// RunBatch executes a batch of queries as one restructured job DAG: shared
// subexpressions execute once, same-input jobs share scans, and independent
// units run in parallel. Results are materialized under each query's
// ResultName and all job outputs are retained as opportunistic views,
// exactly as per-query Run does. RunBatch must not run concurrently with
// Run or another RunBatch on the same session: it detaches the engine's
// metrics registry during parallel execution and replays job records in
// deterministic order afterwards. Concurrent AppendRows calls are safe:
// both serialize on the session's batch lock.
func (s *Session) RunBatch(queries []BatchQuery, opts BatchOptions) (*BatchResult, error) {
	s.batchMu.Lock()
	defer s.batchMu.Unlock()
	start := time.Now()
	out := &BatchResult{PerQuery: make([]*Metrics, len(queries))}
	if len(queries) == 0 {
		return out, nil
	}
	parity := opts.Accounting == BatchParity
	if parity {
		for _, q := range queries {
			if q.Mode != ModeOriginal {
				return nil, fmt.Errorf("session: batch parity accounting supports ModeOriginal only (query %q is %s)",
					q.ResultName, q.Mode)
			}
		}
	}

	plans, err := s.planBatch(queries, parity)
	if err != nil {
		return nil, err
	}

	perQuery, consumers := buildConsumers(plans)
	units := buildUnits(consumers)

	// Pin everything the batch touches (deduplicated, so the union pin
	// itself registers no contention): no query's input or intermediate may
	// be evicted while another query still needs it.
	pinSet := make(map[string]bool)
	for _, p := range plans {
		if p.jobs == nil {
			continue
		}
		for _, n := range pinList(p.chosen, p.w) {
			pinSet[n] = true
		}
	}
	pinned := make([]string, 0, len(pinSet))
	for n := range pinSet {
		pinned = append(pinned, n)
	}
	sort.Strings(pinned)
	s.Store.Pin(pinned)

	// Execute on a registry-detached copy of the engine: job records are
	// replayed in sequential job order during finalization, which keeps
	// float-counter summation order — and so every byte of the snapshot —
	// deterministic. A copy rather than a save/restore of s.Eng.Obs because
	// Session.Run may be executing concurrently on the shared engine and
	// must keep recording.
	quiet := *s.Eng
	quiet.Obs = nil
	execErr := s.executeBatch(&quiet, consumers, units, opts.Parallel, parity)
	s.Store.Unpin(pinned)
	if execErr != nil {
		return nil, execErr
	}

	if err := s.finalizeBatch(queries, plans, perQuery, out, parity); err != nil {
		return nil, err
	}
	s.Store.EnforceBudget()

	s.batchStats(&out.Stats, queries, consumers, units, parity)
	out.Stats.WallSeconds = time.Since(start).Seconds()
	return out, nil
}

// planBatch compiles every query up front. In parity mode the optimizer's
// counters are detached here: planning is replayed per query during
// finalization, when the catalog holds exactly the views and statistics
// sequential planning would have seen, so estimate-cache counters match.
func (s *Session) planBatch(queries []BatchQuery, parity bool) ([]plannedQuery, error) {
	savedOptObs := s.Opt.Obs
	if parity {
		s.Opt.Obs = nil
		defer func() { s.Opt.Obs = savedOptObs }()
	}
	plans := make([]plannedQuery, len(queries))
	for qi, q := range queries {
		m, chosen, w, jobs, epoch, err := s.planQuery(q.Plan, q.ResultName, q.Mode)
		if err != nil {
			s.Obs.Counter("session_query_failures_total", "mode", q.Mode.String()).Inc()
			return nil, fmt.Errorf("session: batch query %d (%s): %w", qi, q.ResultName, err)
		}
		plans[qi] = plannedQuery{m: m, chosen: chosen, w: w, jobs: jobs, epoch: epoch}
	}
	return plans, nil
}

// buildConsumers flattens the compiled queries into rank-ordered consumers
// and marks cross-query duplicates: same output, same input list, and same
// producing-subplan fingerprint means the same computation, so later
// occurrences dedup onto the first. Sinks never collide (each query has a
// distinct result name).
func buildConsumers(plans []plannedQuery) ([][]*batchConsumer, []*batchConsumer) {
	perQuery := make([][]*batchConsumer, len(plans))
	var consumers []*batchConsumer
	for qi, p := range plans {
		for ji, job := range p.jobs {
			c := &batchConsumer{
				rank: len(consumers),
				qi:   qi, ji: ji,
				job: job,
				jn:  p.w.Nodes[ji],
			}
			perQuery[qi] = append(perQuery[qi], c)
			consumers = append(consumers, c)
		}
	}
	reps := make(map[string]*batchConsumer)
	for _, c := range consumers {
		key := c.job.Output + "\x00" + c.jn.PlanFP
		for _, in := range c.job.Inputs {
			key += "\x00" + in
		}
		if rep, ok := reps[key]; ok {
			c.dup = rep
			continue
		}
		reps[key] = c
	}
	return perQuery, consumers
}

// buildUnits groups the physical (non-ghost) consumers into execution
// units — shared-scan meta-jobs for identical input lists, singletons
// otherwise — and wires the unit dependency DAG from input/output names.
func buildUnits(consumers []*batchConsumer) []*batchUnit {
	inputsKey := func(job *mr.Job) string {
		k := ""
		for _, in := range job.Inputs {
			k += in + "\x00"
		}
		return k
	}
	byInputs := make(map[string][]*batchConsumer)
	for _, c := range consumers {
		if c.dup != nil {
			continue
		}
		k := inputsKey(c.job)
		byInputs[k] = append(byInputs[k], c)
	}
	var units []*batchUnit
	for _, c := range consumers {
		if c.dup != nil || c.unit != nil {
			continue
		}
		// Greedily take every still-unassigned group member, skipping
		// output-name collisions: two distinct jobs materializing the same
		// name must keep their sequential write order, so the later one
		// forms its own unit and the writer chain below orders them.
		var members []*batchConsumer
		outs := make(map[string]bool)
		for _, m := range byInputs[inputsKey(c.job)] {
			if m.unit != nil || outs[m.job.Output] {
				continue
			}
			outs[m.job.Output] = true
			members = append(members, m)
		}
		u := &batchUnit{rank: members[0].rank, consumers: members, deps: make(map[*batchUnit]struct{})}
		for _, m := range members {
			m.unit = u
		}
		units = append(units, u)
	}

	// producers[name] lists every consumer materializing name, rank order.
	producers := make(map[string][]*batchConsumer)
	for _, c := range consumers {
		producers[c.job.Output] = append(producers[c.job.Output], c)
	}
	physUnit := func(c *batchConsumer) *batchUnit {
		if c.dup != nil {
			return c.dup.unit
		}
		return c.unit
	}
	// Each consumer depends on the last producer of each of its inputs with
	// a lower rank — exactly the dataset version sequential execution would
	// read. Base datasets have no producer and impose no edge.
	for _, u := range units {
		for _, m := range u.consumers {
			for _, in := range m.job.Inputs {
				var last *batchConsumer
				for _, p := range producers[in] {
					if p.rank >= m.rank {
						break
					}
					last = p
				}
				if last == nil {
					continue
				}
				if pu := physUnit(last); pu != nil && pu != u {
					u.deps[pu] = struct{}{}
				}
			}
		}
	}
	// Writer chains: distinct physical units materializing the same name
	// run in rank order, so the final stored version is sequential's.
	for _, ps := range producers {
		var prev *batchUnit
		for _, p := range ps {
			u := physUnit(p)
			if u == nil {
				continue
			}
			if prev != nil && u != prev {
				u.deps[prev] = struct{}{}
			}
			prev = u
		}
	}
	return units
}

// executeBatch runs the unit DAG. While scripted read faults are still
// armed, items (physical units and, in parity mode, ghost read replays)
// are processed strictly in rank order so the read-error budget drains in
// the exact order sequential execution would produce; once no read can
// fault anymore, the remaining units run with dependency-ordered
// parallelism.
func (s *Session) executeBatch(eng *mr.Engine, consumers []*batchConsumer, units []*batchUnit, parallel int, parity bool) error {
	type item struct {
		rank int
		unit *batchUnit
		c    *batchConsumer // ghost read replay (parity)
	}
	var items []item
	for _, u := range units {
		items = append(items, item{rank: u.rank, unit: u})
	}
	if parity {
		for _, c := range consumers {
			if c.dup != nil || (c.unit != nil && c != c.unit.consumers[0]) {
				items = append(items, item{rank: c.rank, c: c})
			}
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].rank < items[j].rank })

	idx := 0
	for idx < len(items) && eng.Faults.PendingReadFaults() > 0 {
		it := items[idx]
		idx++
		if it.unit != nil {
			runUnit(eng, it.unit)
			it.unit.done = true
			if it.unit.err != nil {
				return it.unit.err
			}
		} else if err := s.replayGhostReads(it.c); err != nil {
			return err
		}
	}
	var rest []*batchUnit
	for _, it := range items[idx:] {
		if it.unit != nil {
			rest = append(rest, it.unit)
		}
		// Ghost replays left over run during finalization: with the fault
		// budget drained their reads cannot fail, only count.
	}
	return runUnitsParallel(rest, parallel, func(u *batchUnit) { runUnit(eng, u) })
}

// runUnit executes one unit: a plain engine run for singletons, a shared-
// scan meta-job otherwise. The engine passed in is the batch's registry-
// detached copy, so no metrics are recorded yet.
func runUnit(eng *mr.Engine, u *batchUnit) {
	t0 := time.Now()
	if len(u.consumers) == 1 {
		c := u.consumers[0]
		_, res, err := eng.Run(c.job)
		c.res = res
		c.wall = time.Since(t0).Seconds()
		u.err = err
		return
	}
	jobs := make([]*mr.Job, len(u.consumers))
	for i, c := range u.consumers {
		jobs[i] = c.job
	}
	_, ssr, err := eng.RunSharedScan(jobs)
	if err != nil {
		u.err = err
		return
	}
	u.shared = ssr
	wall := time.Since(t0).Seconds() / float64(len(u.consumers))
	for i, c := range u.consumers {
		c.res = ssr.Results[i]
		c.wall = wall
	}
}

// runUnitsParallel executes units whose read phases can no longer fault,
// level by level: every unit whose dependencies are satisfied runs
// concurrently (bounded by parallel), then the next level. A dependency
// cycle — only possible from pathological same-output plans — falls back
// to sequential rank order, which is always safe.
func runUnitsParallel(rest []*batchUnit, parallel int, run func(*batchUnit)) error {
	if len(rest) == 0 {
		return nil
	}
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	remaining := rest
	for len(remaining) > 0 {
		var ready, blocked []*batchUnit
		for _, u := range remaining {
			ok := true
			for d := range u.deps {
				if !d.done {
					ok = false
					break
				}
			}
			if ok {
				ready = append(ready, u)
			} else {
				blocked = append(blocked, u)
			}
		}
		if len(ready) == 0 {
			sort.Slice(remaining, func(i, j int) bool { return remaining[i].rank < remaining[j].rank })
			for _, u := range remaining {
				run(u)
				u.done = true
				if u.err != nil {
					return u.err
				}
			}
			return nil
		}
		sort.Slice(ready, func(i, j int) bool { return ready[i].rank < ready[j].rank })
		sem := make(chan struct{}, parallel)
		var wg sync.WaitGroup
		for _, u := range ready {
			wg.Add(1)
			sem <- struct{}{}
			go func(u *batchUnit) {
				defer wg.Done()
				defer func() { <-sem }()
				run(u)
			}(u)
		}
		wg.Wait()
		for _, u := range ready {
			u.done = true
			if u.err != nil {
				return u.err
			}
		}
		remaining = blocked
	}
	return nil
}

// replayGhostReads re-reads a ghost consumer's inputs with the standalone
// retry budget, reproducing the storage read counters and read-fault
// retries its standalone run would have caused. Failed attempts are priced
// with the engine's own partial-cost formula.
func (s *Session) replayGhostReads(c *batchConsumer) error {
	if c.ghostDone {
		return nil
	}
	attempts := s.Eng.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	for attempt := 1; ; attempt++ {
		var bytes, rows int64
		var ferr error
		for _, name := range c.job.Inputs {
			rel, err := s.Store.Read(name)
			if err != nil {
				ferr = fmt.Errorf("mr: job %q: %w", c.job.Name, err)
				break
			}
			bytes += rel.EncodedSize()
			rows += int64(rel.Len())
		}
		if ferr == nil {
			c.gAttempts = attempt
			c.ghostDone = true
			return nil
		}
		if attempt >= attempts {
			return ferr
		}
		c.gWasted += s.Eng.PartialCost(c.job, &mr.Result{InputBytes: bytes, InputRows: rows})
		c.gRetried += bytes
		c.gRecovered = ferr.Error()
	}
}

// physicalResult is the physically-charged view of a consumer's result:
// shared-scan secondaries drop the scan they did not perform (bytes to
// zero, Cm minus one scan); primaries and singletons are already physical.
func (s *Session) physicalResult(c *batchConsumer) *mr.Result {
	if c.unit == nil || len(c.unit.consumers) == 1 || c == c.unit.consumers[0] {
		return c.res
	}
	r := *c.res
	r.Breakdown.Cm -= s.Eng.Params.ScanSeconds(r.InputBytes)
	r.InputBytes = 0
	r.SimSeconds = r.Breakdown.Total() + r.WastedSeconds
	return &r
}

// finalizeBatch replays, per query in input order, everything sequential
// execution interleaves with running jobs: parity planning, ghost
// accounting, job records, pinning, view retention and statistics, and the
// session-level metrics — all serially, so every counter is deterministic
// and (in parity mode) byte-identical to sequential Run.
func (s *Session) finalizeBatch(queries []BatchQuery, plans []plannedQuery, perQuery [][]*batchConsumer, out *BatchResult, parity bool) error {
	for qi, q := range queries {
		p := plans[qi]
		m := p.m
		qsp := s.Obs.StartSpan(q.ResultName, "query")
		psp := qsp.Child("plan")
		if parity {
			// Ghost planning replay: re-derive the estimates with counters
			// attached, against the catalog state sequential planning would
			// see at this point (all prior queries' views retained).
			s.planMu.Lock()
			s.Opt.ClearEstimates()
			_, err := s.Opt.Compile(q.Plan)
			s.planMu.Unlock()
			if err != nil {
				qsp.End()
				return fmt.Errorf("session: batch replay compile %q: %w", q.ResultName, err)
			}
		}
		psp.End()

		if p.jobs != nil {
			esp := qsp.Child("execute")
			var exec float64
			var moved int64
			for _, c := range perQuery[qi] {
				if err := s.finalizeConsumer(c, parity); err != nil {
					esp.End()
					qsp.End()
					return err
				}
				exec += c.res.SimSeconds
				moved += c.res.DataMovedBytes()
			}
			m.ExecSeconds = exec
			m.Jobs = len(p.jobs)
			m.DataMovedBytes = moved
			esp.AddSim(m.ExecSeconds)
			esp.End()

			if parity {
				// Pin replay: sequential pins each query's list (duplicates
				// included) around execution; replaying it reproduces the
				// pin-contention counter exactly.
				names := pinList(p.chosen, p.w)
				s.Store.Pin(names)
				s.Store.Unpin(names)
			}
			s.creditRewrite(m, p.chosen)

			sec, err := s.retainViews(p.w, q.ResultName, p.epoch)
			if err != nil {
				qsp.End()
				return err
			}
			m.StatsSeconds = sec
			if m.StatsSeconds > 0 {
				ssp := qsp.Child("stats")
				ssp.AddSim(m.StatsSeconds)
				ssp.End()
			}
		}
		qsp.AddSim(m.ExecSeconds + m.StatsSeconds)
		qsp.End()
		s.record(m)
		out.PerQuery[qi] = m
	}
	return nil
}

// finalizeConsumer settles one job's attributed result and replays its
// record. Parity mode synthesizes standalone-equivalent results for ghosts
// (dedup reuse and shared-scan secondaries) and records every consumer;
// physical mode records physical executions only, with shared-scan
// secondaries discounted.
func (s *Session) finalizeConsumer(c *batchConsumer, parity bool) error {
	secondary := c.unit != nil && len(c.unit.consumers) > 1 && c != c.unit.consumers[0]
	if c.dup != nil {
		// Deduped job: attribute the representative's execution.
		if !parity {
			c.res = c.dup.res
			return nil
		}
		if err := s.replayGhostReads(c); err != nil {
			return err
		}
		res := *c.dup.res
		res.Job = c.job.Name
		res.Attempts = c.gAttempts
		res.RetriedInputBytes = c.gRetried
		res.RetriedShuffleBytes = 0
		res.WastedSeconds = c.gWasted + res.Faults.Total()
		res.SimSeconds = res.Breakdown.Total() + res.WastedSeconds
		if res.TaskRetries == 0 {
			// The representative's recovered error was its own read fault;
			// this job's standalone run would have seen its own (or none).
			// Task-level errors re-fire identically and are kept.
			res.RecoveredError = c.gRecovered
		}
		c.res = &res
		// Write replay: the standalone run would have re-materialized the
		// (identical) output; re-putting the stored relation reproduces the
		// write counters and retention bookkeeping.
		if ds, ok := s.Store.Meta(c.job.Output); ok {
			s.Store.Put(c.job.Output, c.job.OutputKind, ds.Relation())
		}
		s.Eng.RecordJob(c.res, nil, c.wall)
		return nil
	}

	if parity && secondary {
		if err := s.replayGhostReads(c); err != nil {
			return err
		}
		c.physSim = s.physicalResult(c).SimSeconds
		if c.gAttempts > 1 {
			// Overlay the replayed read retries onto the shared-scan
			// secondary, whose own result saw the scan succeed first try.
			res := c.res
			pipeWaste := res.WastedSeconds - res.Faults.Total()
			res.Attempts += c.gAttempts - 1
			res.RetriedInputBytes += c.gRetried
			res.WastedSeconds = (c.gWasted + pipeWaste) + res.Faults.Total()
			res.SimSeconds = res.Breakdown.Total() + res.WastedSeconds
			if res.RecoveredError == "" {
				res.RecoveredError = c.gRecovered
			}
		}
		s.Eng.RecordJob(c.res, nil, c.wall)
		return nil
	}

	if parity {
		c.physSim = c.res.SimSeconds
		s.Eng.RecordJob(c.res, nil, c.wall)
		return nil
	}
	pr := s.physicalResult(c)
	c.physSim = pr.SimSeconds
	s.Eng.RecordJob(pr, nil, c.wall)
	return nil
}

// creditRewrite credits the views a successful rewrite read with the cost
// it saved — shared with the sequential path's benefit accounting.
func (s *Session) creditRewrite(m *Metrics, chosen *plan.Node) {
	if m.Rewrite == nil || !m.Rewrite.Improved {
		return
	}
	saved := m.Rewrite.OriginalCost - m.Rewrite.Cost
	if saved <= 0 {
		return
	}
	plan.Walk(chosen, func(n *plan.Node) {
		if n.Kind == plan.KindScan {
			if t, ok := s.Cat.Table(n.Dataset); ok && t.IsView {
				s.Store.AddBenefit(n.Dataset, saved)
			}
		}
	})
}

// batchStats fills the batch-level summary and publishes the batch_*
// metrics. The metrics are physical-mode only: parity mode's contract is
// that the counter snapshot is byte-identical to sequential execution,
// which has no batch counters.
func (s *Session) batchStats(st *BatchStats, queries []BatchQuery, consumers []*batchConsumer, units []*batchUnit, parity bool) {
	st.Queries = len(queries)
	st.JobsSubmitted = len(consumers)
	for _, c := range consumers {
		st.AttributedSimSeconds += c.res.SimSeconds
		if c.dup != nil {
			st.JobsDeduped++
			st.ScanBytesSaved += c.dup.res.InputBytes
		} else {
			st.JobsExecuted++
			st.SimSeconds += c.physSim
		}
	}
	for _, u := range units {
		if u.shared != nil {
			st.SharedScans++
			st.SharedScanConsumers += len(u.consumers)
			st.ScanBytesSaved += u.shared.SavedBytes
		}
	}
	st.SavedSimSeconds = st.AttributedSimSeconds - st.SimSeconds

	if parity || s.Obs == nil {
		return
	}
	// Zero-valued Adds still create the counters, keeping the metric key
	// set stable whether or not this batch found anything to share.
	s.Obs.Counter("batch_jobs_deduped_total").Add(int64(st.JobsDeduped))
	s.Obs.Counter("batch_scan_bytes_saved_total").Add(st.ScanBytesSaved)
	h := s.Obs.Histogram("batch_shared_scan_fanin", obs.DefFaninBuckets)
	for _, u := range units {
		if u.shared != nil {
			h.Observe(float64(len(u.consumers)))
		}
	}
}
