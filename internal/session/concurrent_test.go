package session

import (
	"fmt"
	"hash/fnv"
	"sync"
	"testing"

	"opportune/internal/expr"
	"opportune/internal/plan"
	"opportune/internal/value"
)

// qThresh is q() with a configurable HAVING threshold, giving the stress
// tests a small family of distinct-but-overlapping queries.
func qThresh(th float64) *plan.Node {
	agg := plan.GroupAgg(
		plan.Apply(plan.Scan("logs"), "W", []string{"text"}),
		[]string{"user"}, plan.AggSpec{Func: plan.AggSum, Col: "w", As: "s"})
	return plan.Filter(agg, expr.NewCmp("s", expr.Gt, value.NewFloat(th)))
}

// multisetFP fingerprints a result irrespective of row order: concurrent
// runs may execute different (rewritten) plans whose reduce order differs,
// but the row multiset must match serial execution exactly.
func multisetFP(s *Session, name string) (uint64, error) {
	rel, err := s.Store.Read(name)
	if err != nil {
		return 0, err
	}
	var fp uint64
	for _, r := range rel.Rows() {
		h := fnv.New64a()
		for _, v := range r {
			h.Write([]byte(v.String()))
			h.Write([]byte{0})
		}
		fp ^= h.Sum64()
	}
	return fp ^ uint64(rel.Len()), nil
}

// TestConcurrentSessionRunStress drives one shared Session (and therefore
// one shared Store and Catalog) from many goroutines under `go test -race`:
// planning serializes on planMu, execution overlaps, every job output is
// registered and stats-sampled concurrently, and results must match serial
// runs of the same queries on an identical system.
func TestConcurrentSessionRunStress(t *testing.T) {
	const goroutines = 8
	const perG = 4

	shared := demo(t, 400)
	shared.Eng.Workers = 4

	// Serial reference: same data, same query family, fresh system.
	ref := demo(t, 400)
	refFP := make(map[float64]uint64)
	for _, th := range []float64{0, 1, 2} {
		name := fmt.Sprintf("ref-%g", th)
		if _, err := ref.Run(qThresh(th), name, ModeOriginal); err != nil {
			t.Fatal(err)
		}
		fp, err := multisetFP(ref, name)
		if err != nil {
			t.Fatal(err)
		}
		refFP[th] = fp
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	type done struct {
		name string
		th   float64
	}
	dones := make(chan done, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				th := float64((g + i) % 3)
				mode := ModeOriginal
				if (g+i)%2 == 1 {
					mode = ModeBFR
				}
				name := fmt.Sprintf("res-g%d-i%d", g, i)
				if _, err := shared.Run(qThresh(th), name, mode); err != nil {
					errs <- fmt.Errorf("g%d i%d: %w", g, i, err)
					return
				}
				dones <- done{name, th}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	close(dones)
	for err := range errs {
		t.Fatal(err)
	}
	for d := range dones {
		// A BFR run may answer from an existing materialization, in which
		// case its result name was never written; the metrics carry the
		// real name, but here it is enough to check written results.
		if !shared.Store.Has(d.name) {
			continue
		}
		fp, err := multisetFP(shared, d.name)
		if err != nil {
			t.Fatal(err)
		}
		if fp != refFP[d.th] {
			t.Errorf("%s (threshold %g): result differs from serial reference", d.name, d.th)
		}
	}
}

// TestConcurrentRunsUnderCapacityPressure adds a view-capacity budget so
// concurrent plans continually evict each other's retained views while
// their own inputs and intermediates stay pinned. Every run must still
// succeed: pins protect exactly the datasets a running plan needs.
func TestConcurrentRunsUnderCapacityPressure(t *testing.T) {
	const goroutines = 6
	const perG = 3

	s := demo(t, 300)
	s.Eng.Workers = 2
	// Roughly two retained views' worth of budget: constant churn.
	if _, err := s.Run(qThresh(0), "probe", ModeOriginal); err != nil {
		t.Fatal(err)
	}
	probe, _ := s.Store.Meta("probe")
	s.Store.ViewCapacityBytes = 4 * probe.SizeBytes
	s.DropViews()

	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				name := fmt.Sprintf("cap-g%d-i%d", g, i)
				if _, err := s.Run(qThresh(float64(i%3)), name, ModeOriginal); err != nil {
					errs <- fmt.Errorf("g%d i%d: %w", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// After all pins are released, the budget holds.
	s.Store.EnforceBudget()
	if vb := s.Store.ViewBytes(); vb > s.Store.ViewCapacityBytes {
		t.Errorf("view bytes %d exceed capacity %d after EnforceBudget", vb, s.Store.ViewCapacityBytes)
	}
}
