// Incremental view maintenance over append-only ingest (ROADMAP item 2).
//
// AppendRows grows a base log and then, instead of dropping every dependent
// view, classifies each one via its A/F/K annotation and its captured
// producing plan:
//
//   - maintainable views are refreshed by running the view's own pipeline
//     over *only* the appended delta (a fresh delta job on the MR engine)
//     and merging the delta output into the stored relation — appended rows
//     for map-only views, a sorted key-merge of distributive aggregate
//     states (count/sum/min/max) for grouped views;
//   - everything else falls back to explicit invalidation, the pre-existing
//     behavior, now an explicitly-chosen fallback with a recorded reason.
//
// The merge paths are chosen so a maintained view is byte-identical to a
// full recompute over the grown base: map-only pipelines emit in scan
// order, and grouped jobs emit in global encoded-key order, which the
// two-pointer merge preserves. One caveat is inherent: float-valued SUMs
// can differ in final ULPs from a recompute because addition order differs;
// integer-valued aggregates (COUNT, MIN/MAX, sums of integers) are exact.
// Compensated (Kahan/Neumaier) summation in both the aggregate folds
// (aggPhys.foldSum) and the merge below keeps that drift to at most one
// rounding per append rather than one per input row — the fractional-SUM
// differential oracle asserts a tight ULP bound over a whole append chain.
package session

import (
	"fmt"

	"opportune/internal/afk"
	"opportune/internal/cost"
	"opportune/internal/data"
	"opportune/internal/meta"
	"opportune/internal/mr"
	"opportune/internal/plan"
	"opportune/internal/storage"
	"opportune/internal/udf"
	"opportune/internal/value"
)

// AppendReport describes what one AppendRows did.
type AppendReport struct {
	Table string
	Rows  int

	Maintained  []string          // views refreshed incrementally
	Invalidated []string          // views dropped (with Reasons)
	Reasons     map[string]string // view -> why it was invalidated

	// MaintainSeconds is the simulated cost of maintenance: delta jobs plus
	// merge I/O. StatsSeconds covers re-estimating base-table statistics and
	// refreshed-view statistics (sampling jobs).
	MaintainSeconds float64
	StatsSeconds    float64
}

// AppendRows adds new records to a base log. Dependent views — attribute
// signatures in each view's annotation record provenance exactly — are
// incrementally maintained when their annotation and producing plan admit
// it, and invalidated otherwise. AppendRows serializes against RunBatch and
// against planning, but not against executing plans: a running plan keeps
// its pinned inputs readable (deletion defers) and is replanned afterwards
// if an input it had not pinned yet was invalidated.
func (s *Session) AppendRows(table string, rows []data.Row) (*AppendReport, error) {
	s.batchMu.Lock()
	defer s.batchMu.Unlock()
	s.planMu.Lock()
	defer s.planMu.Unlock()

	info, ok := s.Cat.Table(table)
	if !ok || info.IsView {
		return nil, fmt.Errorf("session: %q is not a base table", table)
	}
	ds, ok := s.Store.Meta(table)
	if !ok {
		return nil, fmt.Errorf("session: %q not in store", table)
	}
	epoch := s.ingestEpoch.Add(1)
	s.Obs.Gauge("session_ingest_epoch").Set(float64(epoch))
	s.Obs.Counter("session_append_rows_total", "table", table).Add(int64(len(rows)))

	rep := &AppendReport{Table: table, Rows: len(rows), Reasons: make(map[string]string)}

	// Copy-on-write: concurrent Runs may be scanning the current relation,
	// so the stored rows are never mutated in place. The re-put installs
	// the grown copy and updates size/eviction bookkeeping.
	old := ds.Relation()
	rel := data.NewRelation(old.Schema())
	rel.Grow(old.Len() + len(rows))
	rel.AppendAll(old)
	for _, r := range rows {
		rel.Append(r)
	}
	// Re-Put deliberately resets the store's layout property (fresh bytes
	// make no promise), but an append preserves a hash layout: the bucket a
	// row belongs to is a function of its key values alone, so the grown
	// relation satisfies the same property the ingest path maintains.
	// Re-declare it on both store and catalog.
	baseSigs, baseParts := s.Store.Partitioning(table)
	s.Store.Put(table, storage.Base, rel)
	if baseParts > 0 {
		s.Store.SetPartitioning(table, baseSigs, baseParts)
	}
	s.Cat.RegisterBase(table, info.Cols, info.KeyCol,
		cost.Stats{Rows: int64(rel.Len()), Bytes: rel.EncodedSize()}, info.Distinct)
	if baseParts > 0 {
		s.Cat.SetPartitioning(table, afk.Partitioning{Sigs: baseSigs, Parts: baseParts})
	}
	// Re-estimate per-column distincts on the grown base: appends change
	// cardinalities, and stale counts misprice every downstream group-by.
	sec, err := s.Cat.CollectStats(s.Eng, table, s.statsSeed.Add(1))
	if err != nil {
		return nil, err
	}
	rep.StatsSeconds += sec

	// The delta relation, installed lazily as a temporary base table the
	// first time a view qualifies for maintenance. The fixed per-table name
	// keeps the signature/FD universe bounded across appends.
	deltaName := "~delta~" + table
	deltaInstalled := false
	installDelta := func() {
		delta := data.NewRelation(old.Schema())
		delta.Grow(len(rows))
		for _, r := range rows {
			delta.Append(r)
		}
		s.Store.Put(deltaName, storage.Base, delta)
		s.Cat.RegisterBase(deltaName, info.Cols, info.KeyCol,
			cost.Stats{Rows: int64(delta.Len()), Bytes: delta.EncodedSize()}, info.Distinct)
		deltaInstalled = true
	}

	for _, v := range s.Cat.Views() {
		if !annDependsOn(v.Ann, table) {
			continue
		}
		reason := ""
		var shape *viewShape
		var pl *plan.Node
		switch {
		case s.DisableMaintenance:
			reason = "maintenance disabled"
		default:
			if verdict := afk.Maintainable(v.Ann, table); !verdict.OK {
				reason = verdict.Reason
				break
			}
			if pl = s.viewPlan(v.Name); pl == nil {
				reason = "no captured producing plan"
				break
			}
			shape, reason = s.maintainShape(pl, table)
		}
		if reason == "" {
			if !deltaInstalled {
				installDelta()
			}
			msec, ssec, err := s.maintainView(v, pl, shape, deltaName)
			if err != nil {
				reason = fmt.Sprintf("maintenance failed: %v", err)
				s.Obs.Counter("session_maintenance_fallbacks_total", "table", table).Inc()
			} else {
				rep.Maintained = append(rep.Maintained, v.Name)
				rep.MaintainSeconds += msec
				rep.StatsSeconds += ssec
				s.Obs.Counter("session_views_maintained_total", "table", table).Inc()
				s.Obs.FloatCounter("session_maintenance_sim_seconds_total", "table", table).Add(msec)
				// The maintenance cost is the view's freshness lag: how long
				// (in simulated seconds) it stayed stale after the append.
				s.Obs.Histogram("session_view_freshness_lag_sim_seconds", nil).Observe(msec)
				continue
			}
		}
		s.Store.Delete(v.Name)
		s.Cat.DropView(v.Name)
		s.dropViewPlan(v.Name)
		rep.Invalidated = append(rep.Invalidated, v.Name)
		rep.Reasons[v.Name] = reason
		s.Obs.Counter("session_views_invalidated_total", "table", table).Inc()
	}
	if deltaInstalled {
		s.Store.Delete(deltaName)
		s.Cat.DropTable(deltaName)
	}
	return rep, nil
}

// viewShape is the plan-level maintainability classification: the producing
// pipeline is a chain of record-local operators over one scan of the
// appended table, optionally topped by a single distributive GroupAgg.
type viewShape struct {
	agg *plan.Node // the root GroupAgg; nil for a map-only chain
}

// maintainShape checks the plan-level half of the maintainability gate (the
// annotation-level half is afk.Maintainable): the structure must guarantee
// that the pipeline applied to the delta alone produces exactly the rows a
// recompute would add or fold in. Returns a non-empty reason on rejection.
func (s *Session) maintainShape(pl *plan.Node, table string) (*viewShape, string) {
	shape := &viewShape{}
	cur := pl
	if cur.Kind == plan.KindGroupAgg {
		if len(cur.Keys) == 0 {
			return nil, "global aggregate (no group keys)"
		}
		for _, a := range cur.Aggs {
			switch a.Func {
			case plan.AggCount, plan.AggSum, plan.AggMin, plan.AggMax:
			default:
				return nil, fmt.Sprintf("non-distributive aggregate %s", a.Func)
			}
		}
		shape.agg = cur
		cur = cur.Inputs[0]
	}
	for {
		switch cur.Kind {
		case plan.KindScan:
			if cur.Dataset != table {
				return nil, fmt.Sprintf("scans %q, not the appended table", cur.Dataset)
			}
			return shape, ""
		case plan.KindProject, plan.KindFilter:
			cur = cur.Inputs[0]
		case plan.KindUDF:
			d, ok := s.Cat.UDFs.Get(cur.UDFName)
			if !ok || d.Kind != udf.KindMap {
				return nil, fmt.Sprintf("aggregate UDF %s below the root", cur.UDFName)
			}
			if d.Explode {
				// Exploding UDFs tag emitted rows by task-global row number;
				// a delta run restarts the numbering and would not reproduce
				// a recompute's tags.
				return nil, fmt.Sprintf("exploding UDF %s", cur.UDFName)
			}
			cur = cur.Inputs[0]
		default:
			return nil, fmt.Sprintf("operator %s in pipeline", cur.Kind)
		}
	}
}

// maintainView refreshes one view from the appended delta: run the view's
// pipeline over the delta table, merge the delta output into the stored
// relation, refresh statistics. Returns (maintenance sim seconds, stats sim
// seconds). Any error leaves the view droppable — the caller falls back to
// invalidation, which is always safe.
func (s *Session) maintainView(v *meta.TableInfo, pl *plan.Node, shape *viewShape, deltaName string) (float64, float64, error) {
	// The delta plan is the producing plan with the base scan retargeted at
	// the delta table. Annotate recomputes every node annotation, so the
	// compiled job is an ordinary (delta-sized) instance of the pipeline.
	dp := pl.Clone()
	plan.Walk(dp, func(n *plan.Node) {
		if n.Kind == plan.KindScan && n.Dataset == v.Name {
			// Defensive: a captured plan never scans its own output.
			panic("session: view plan scans itself")
		}
		if n.Kind == plan.KindScan {
			n.Dataset = deltaName
		}
	})
	s.Opt.ClearEstimates()
	w, err := s.Opt.Compile(dp)
	if err != nil {
		return 0, 0, fmt.Errorf("delta compile: %w", err)
	}
	if len(w.Nodes) != 1 {
		return 0, 0, fmt.Errorf("delta plan compiled to %d jobs, want 1", len(w.Nodes))
	}
	tmpOut := "~maint~" + v.Name
	jobs, err := s.Opt.Executable(w, tmpOut)
	if err != nil {
		return 0, 0, fmt.Errorf("delta executable: %w", err)
	}

	pins := []string{v.Name, deltaName, tmpOut}
	s.Store.Pin(pins)
	var maintSeconds, statsSeconds float64
	runErr := func() error {
		_, agg, err := s.Eng.RunSequence(jobs)
		if err != nil {
			return fmt.Errorf("delta job: %w", err)
		}
		stored, err := s.Store.Read(v.Name)
		if err != nil {
			return err
		}
		deltaOut, err := s.Store.Read(tmpOut)
		if err != nil {
			return err
		}
		var merged *data.Relation
		if shape.agg == nil {
			merged, err = mr.MergeAppend(stored, deltaOut)
		} else {
			merged, err = mr.MergeByKey(stored, deltaOut, len(shape.agg.Keys),
				mergeAggRows(shape.agg.Aggs, len(shape.agg.Keys)))
		}
		if err != nil {
			return err
		}
		if _, err := s.Store.Refresh(v.Name, merged); err != nil {
			return err
		}
		spec := cost.MaintenanceSpec{
			ViewBytes:   stored.EncodedSize(),
			DeltaBytes:  deltaOut.EncodedSize(),
			MergedBytes: merged.EncodedSize(),
			MergedRows:  int64(merged.Len()),
		}
		maintSec := agg.SimSeconds + s.Eng.Params.MaintenanceCost(spec).Total()
		statsSec, err := s.Cat.CollectStats(s.Eng, v.Name, s.statsSeed.Add(1))
		if err != nil {
			return err
		}
		maintSeconds, statsSeconds = maintSec, statsSec
		return nil
	}
	err = runErr()
	s.Store.Unpin(pins)
	s.Store.Delete(tmpOut)
	if err != nil {
		return 0, 0, err
	}
	return maintSeconds, statsSeconds, nil
}

// mergeAggRows builds the per-group fold for MergeByKey from the view's
// aggregate specs: aggregate column i of the output sits at nKeys+i. The
// folds mirror aggPhys finalization exactly (COUNT emits Int, SUM emits
// Float, MIN/MAX emit the raw value and skip nulls), so a merged row is the
// row a recompute's reduce would finalize from the union of both groups'
// inputs.
func mergeAggRows(aggs []plan.AggSpec, nKeys int) func(old, delta data.Row) data.Row {
	return func(old, delta data.Row) data.Row {
		out := old.Clone()
		for i, a := range aggs {
			ix := nKeys + i
			switch a.Func {
			case plan.AggCount:
				out[ix] = value.NewInt(old[ix].Int() + delta[ix].Int())
			case plan.AggSum:
				// Compensated two-term add: the merged sum is the exactly
				// rounded value of old+delta, so each append contributes at
				// most one rounding to the chain's drift from full recompute
				// (the delta itself is Kahan-folded by aggPhys). The
				// fractional-SUM oracle bounds the residual drift in ULPs.
				var k value.Kahan
				k.Add(old[ix].Float())
				k.Add(delta[ix].Float())
				out[ix] = value.NewFloat(k.Value())
			case plan.AggMin, plan.AggMax:
				v := delta[ix]
				if v.IsNull() {
					continue
				}
				cur := out[ix]
				if cur.IsNull() ||
					(a.Func == plan.AggMin && value.Compare(v, cur) < 0) ||
					(a.Func == plan.AggMax && value.Compare(v, cur) > 0) {
					out[ix] = v
				}
			}
		}
		return out
	}
}

// annDependsOn reports whether any signature in the annotation derives
// (transitively) from the named dataset.
func annDependsOn(ann afk.Annotation, dataset string) bool {
	var depends func(s *afk.Sig) bool
	depends = func(s *afk.Sig) bool {
		if s.IsBase() {
			return s.Dataset == dataset
		}
		for _, in := range s.Inputs {
			if depends(in) {
				return true
			}
		}
		for _, k := range s.GroupBy {
			if depends(k) {
				return true
			}
		}
		return false
	}
	for _, at := range ann.Attrs() {
		if depends(at.Sig) {
			return true
		}
	}
	for _, k := range ann.K.Sigs() {
		if depends(k) {
			return true
		}
	}
	return false
}
