package session

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"opportune/internal/cost"
	"opportune/internal/data"
	"opportune/internal/expr"
	"opportune/internal/obs"
	"opportune/internal/plan"
	"opportune/internal/storage"
	"opportune/internal/value"
)

// ivmQueries is the view family the maintenance oracle exercises: a
// distributive aggregate over a UDF column (merge-by-key, SUM), a
// multi-aggregate over base columns (COUNT/MIN/MAX), and a map-only
// filtered scan (merge-append).
func ivmQueries() []BatchQuery {
	pAgg := plan.GroupAgg(
		plan.Apply(plan.Scan("logs"), "W", []string{"text"}),
		[]string{"user"}, plan.AggSpec{Func: plan.AggSum, Col: "w", As: "s"})
	pCnt := plan.GroupAgg(plan.Scan("logs"), []string{"user"},
		plan.AggSpec{Func: plan.AggCount, As: "n"},
		plan.AggSpec{Func: plan.AggMin, Col: "id", As: "lo"},
		plan.AggSpec{Func: plan.AggMax, Col: "id", As: "hi"})
	pFlt := plan.Filter(plan.Scan("logs"), expr.NewCmp("user", expr.Gt, value.NewInt(1)))
	return []BatchQuery{
		{Plan: pAgg, ResultName: "va", Mode: ModeOriginal},
		{Plan: pCnt, ResultName: "vc", Mode: ModeOriginal},
		{Plan: pFlt, ResultName: "vf", Mode: ModeOriginal},
	}
}

func ivmBatch(base, n int) []data.Row {
	texts := []string{"wine wine", "coffee", "wine", "tea time"}
	rows := make([]data.Row, n)
	for i := 0; i < n; i++ {
		rows[i] = data.Row{
			value.NewInt(int64(base + i)),
			value.NewInt(int64((base + i) % 9)), // mixes existing and new users
			value.NewStr(texts[(base+i)%len(texts)]),
		}
	}
	return rows
}

// TestMaintenanceDifferentialOracleGrid checks the ISSUE's oracle: across
// the Workers × ReduceTasks grid, every incrementally maintained view must
// be byte-identical — contents and annotation — to a full recompute over
// the grown base.
func TestMaintenanceDifferentialOracleGrid(t *testing.T) {
	batches := [][]data.Row{ivmBatch(1000, 37), ivmBatch(2000, 23)}
	for _, workers := range []int{1, 4, 8} {
		for _, reduceTasks := range []int{1, 3} {
			t.Run(fmt.Sprintf("W%d_R%d", workers, reduceTasks), func(t *testing.T) {
				// Incremental arm: build the views, then append twice.
				s := demo(t, 120)
				s.Eng.Workers = workers
				s.Eng.Params.ReduceTasks = reduceTasks
				for _, q := range ivmQueries() {
					if _, err := s.Run(q.Plan, q.ResultName, q.Mode); err != nil {
						t.Fatal(err)
					}
				}
				for _, b := range batches {
					rep, err := s.AppendRows("logs", b)
					if err != nil {
						t.Fatal(err)
					}
					if len(rep.Maintained) != 3 {
						t.Fatalf("maintained %v (reasons %v), want all three views",
							rep.Maintained, rep.Reasons)
					}
				}
				// Reference arm: same engine shape, appends first, then a
				// clean computation over the fully grown base.
				ref := demo(t, 120)
				ref.Eng.Workers = workers
				ref.Eng.Params.ReduceTasks = reduceTasks
				for _, b := range batches {
					if _, err := ref.AppendRows("logs", b); err != nil {
						t.Fatal(err)
					}
				}
				for _, q := range ivmQueries() {
					if _, err := ref.Run(q.Plan, q.ResultName, q.Mode); err != nil {
						t.Fatal(err)
					}
				}
				for _, q := range ivmQueries() {
					got, err := s.Store.Read(q.ResultName)
					if err != nil {
						t.Fatal(err)
					}
					want, err := ref.Store.Read(q.ResultName)
					if err != nil {
						t.Fatal(err)
					}
					if got.Fingerprint() != want.Fingerprint() {
						t.Errorf("%s: maintained contents differ from recompute", q.ResultName)
					}
					gi, ok1 := s.Cat.Table(q.ResultName)
					wi, ok2 := ref.Cat.Table(q.ResultName)
					if !ok1 || !ok2 {
						t.Fatalf("%s missing from a catalog", q.ResultName)
					}
					if gi.Ann.Canon() != wi.Ann.Canon() {
						t.Errorf("%s: maintained annotation differs from recompute", q.ResultName)
					}
				}
			})
		}
	}
}

// TestConcurrentAppendsWithRunsStress interleaves AppendRows with
// concurrent Run and RunBatch calls under -race. Plans executing against a
// base that grows mid-flight must either finish on their pinned snapshot
// or replan; no pinned view may disappear mid-plan, and afterwards the
// store's pin bookkeeping and the view-bytes gauge must reconcile.
func TestConcurrentAppendsWithRunsStress(t *testing.T) {
	s := demo(t, 300)
	s.Eng.Workers = 2
	reg := obs.NewRegistry()
	s.Instrument(reg)

	const runners = 6
	const perG = 3
	const appendBatches = 8
	var wg sync.WaitGroup
	errs := make(chan error, runners*perG+appendBatches+4)

	// Phase 1: individual runs racing appends.
	for g := 0; g < runners; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				mode := ModeOriginal
				if (g+i)%2 == 1 {
					mode = ModeBFR
				}
				name := fmt.Sprintf("run-g%d-i%d", g, i)
				if _, err := s.Run(qThresh(float64((g+i)%3)), name, mode); err != nil {
					errs <- fmt.Errorf("run g%d i%d: %w", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for b := 0; b < appendBatches; b++ {
			if _, err := s.AppendRows("logs", ivmBatch(10000+b*100, 11)); err != nil {
				errs <- fmt.Errorf("append %d: %w", b, err)
				return
			}
		}
	}()
	wg.Wait()

	// Phase 2: a batch racing appends (both serialize on the batch lock,
	// so this checks lock ordering rather than true overlap).
	wg.Add(2)
	go func() {
		defer wg.Done()
		var qs []BatchQuery
		for i := 0; i < 4; i++ {
			qs = append(qs, BatchQuery{Plan: qThresh(float64(i % 3)),
				ResultName: fmt.Sprintf("batch-%d", i), Mode: ModeOriginal})
		}
		if _, err := s.RunBatch(qs, BatchOptions{}); err != nil {
			errs <- fmt.Errorf("batch: %w", err)
		}
	}()
	go func() {
		defer wg.Done()
		for b := 0; b < 3; b++ {
			if _, err := s.AppendRows("logs", ivmBatch(20000+b*100, 7)); err != nil {
				errs <- fmt.Errorf("append(batch phase) %d: %w", b, err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Quiesced invariants: no leaked pins, catalog views all present in the
	// store, and the view-bytes gauge agrees with the store's accounting.
	if pins := s.Store.Pins(); len(pins) != 0 {
		t.Errorf("leaked pins after quiesce: %v", pins)
	}
	for _, v := range s.Cat.Views() {
		if !s.Store.Has(v.Name) {
			t.Errorf("catalog lists view %s missing from store", v.Name)
		}
	}
	if got, want := reg.Gauge("storage_view_bytes").Value(), float64(s.Store.ViewBytes()); got != want {
		t.Errorf("view-bytes gauge %g disagrees with store %g", got, want)
	}
	if _, ok := s.Cat.Table("~delta~logs"); ok || s.Store.Has("~delta~logs") {
		t.Error("temporary delta table leaked")
	}

	// The final state must answer queries identically to a clean system
	// holding the same grown base.
	final, err := s.Store.Read("logs")
	if err != nil {
		t.Fatal(err)
	}
	ref := demo(t, 300)
	var extra []data.Row
	for _, r := range final.Rows()[300:] {
		extra = append(extra, r)
	}
	if _, err := ref.AppendRows("logs", extra); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(qThresh(0), "final", ModeOriginal); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Run(qThresh(0), "final", ModeOriginal); err != nil {
		t.Fatal(err)
	}
	a, err := multisetFP(s, "final")
	if err != nil {
		t.Fatal(err)
	}
	b, err := multisetFP(ref, "final")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("post-stress query result diverged from clean recompute")
	}
}

// fracRow builds one "ticks" row whose amt column is adversarial for naive
// float summation: each group's scan-order sequence interleaves ±1e16
// pairs with fractional values no float represents exactly, so a naive
// left fold swings through magnitudes where the fractions fall below the
// ULP and are destroyed, while the true sum (the huge terms cancel exactly
// within every aligned block of 12 rows) stays small enough that the loss
// is visible. Seed and append sizes must be multiples of 12 to keep the
// per-group, per-batch cancellation exact.
func fracRow(i int) data.Row {
	var amt float64
	switch (i / 3) % 4 {
	case 0:
		amt = 1e16
	case 2:
		amt = -1e16
	case 1:
		amt = 0.1 + float64(i%97)*0.3
	default:
		amt = -0.7 - float64(i%89)*1.9
	}
	return data.Row{value.NewInt(int64(i)), value.NewInt(int64(i % 3)), value.NewFloat(amt)}
}

// fracSession builds a session over a fractional-valued "ticks" base.
func fracSession(t *testing.T, rows int) *Session {
	t.Helper()
	s := New(cost.DefaultParams())
	rel := data.NewRelation(data.NewSchema("id", "user", "amt"))
	for i := 0; i < rows; i++ {
		rel.Append(fracRow(i))
	}
	s.Store.Put("ticks", storage.Base, rel)
	s.Cat.RegisterBase("ticks", []string{"id", "user", "amt"}, "id",
		cost.Stats{Rows: int64(rows), Bytes: rel.EncodedSize()}, map[string]int64{"user": 3})
	return s
}

// ordKey maps a float64 onto a monotonically ordered integer line where
// adjacent representable floats are 1 apart (the -0.0 and +0.0 keys
// coincide), so key distance counts ULP steps.
func ordKey(f float64) int64 {
	b := int64(math.Float64bits(f))
	if b < 0 {
		b = math.MinInt64 - b
	}
	return b
}

func ulpDist(a, b float64) int64 {
	d := ordKey(a) - ordKey(b)
	if d < 0 {
		d = -d
	}
	return d
}

// TestMaintenanceFractionalSumULP extends the differential oracle to
// fractional SUMs. Byte-identity cannot hold across an append chain — the
// incremental path rounds once per merge — but with compensated (Kahan)
// summation in both the aggregate folds and MergeByKey the maintained
// value must stay within a few ULPs of a full recompute even on
// mixed-magnitude, cancelling inputs. The naive left fold this replaces
// drifts by orders of magnitude more on this data.
func TestMaintenanceFractionalSumULP(t *testing.T) {
	const seedRows, batchRows, batches, ulpBound = 60, 36, 6, 4

	q := plan.GroupAgg(plan.Scan("ticks"), []string{"user"},
		plan.AggSpec{Func: plan.AggSum, Col: "amt", As: "s"},
		plan.AggSpec{Func: plan.AggCount, As: "n"})

	inc := fracSession(t, seedRows)
	if _, err := inc.Run(q, "vsum", ModeOriginal); err != nil {
		t.Fatal(err)
	}
	ref := fracSession(t, seedRows)
	next := seedRows
	for b := 0; b < batches; b++ {
		rows := make([]data.Row, batchRows)
		for i := range rows {
			rows[i] = fracRow(next + i)
		}
		next += batchRows
		rep, err := inc.AppendRows("ticks", rows)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Maintained) != 1 {
			t.Fatalf("batch %d: maintained %v (reasons %v), want vsum maintained", b, rep.Maintained, rep.Reasons)
		}
		if _, err := ref.AppendRows("ticks", rows); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ref.Run(q, "vsum", ModeOriginal); err != nil {
		t.Fatal(err)
	}

	got, err := inc.Store.Read("vsum")
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Store.Read("vsum")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Len() {
		t.Fatalf("maintained view has %d groups, recompute %d", got.Len(), want.Len())
	}
	for i := 0; i < got.Len(); i++ {
		g, w := got.Row(i), want.Row(i)
		if value.Compare(g[0], w[0]) != 0 || value.Compare(g[2], w[2]) != 0 {
			t.Fatalf("row %d: key/count mismatch: got %v want %v", i, g, w)
		}
		if d := ulpDist(g[1].Float(), w[1].Float()); d > ulpBound {
			t.Errorf("group %v: maintained SUM %v vs recompute %v drifted %d ULPs (bound %d)",
				g[0], g[1].Float(), w[1].Float(), d, ulpBound)
		}
	}
}
