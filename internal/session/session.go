// Package session coordinates the full system of Fig 1: queries are
// compiled by the optimizer, optionally rewritten against the opportunistic
// views, executed on the MR engine, and every job's output is retained as a
// new opportunistic view with statistics collected by a sampling job.
package session

import (
	"fmt"
	"sync"
	"sync/atomic"

	"opportune/internal/afk"
	"opportune/internal/cost"
	"opportune/internal/expr"
	"opportune/internal/fault"
	"opportune/internal/meta"
	"opportune/internal/mr"
	"opportune/internal/obs"
	"opportune/internal/optimizer"
	"opportune/internal/plan"
	"opportune/internal/rewrite"
	"opportune/internal/storage"
)

// Mode selects how a query is optimized.
type Mode uint8

const (
	// ModeOriginal executes the query as written (ORIG).
	ModeOriginal Mode = iota
	// ModeBFR rewrites with BFREWRITE (REWR).
	ModeBFR
	// ModeDP rewrites with the exhaustive DP baseline.
	ModeDP
	// ModeSyntactic rewrites with BFR-SYNTACTIC (caching-style reuse).
	ModeSyntactic
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeOriginal:
		return "orig"
	case ModeBFR:
		return "bfr"
	case ModeDP:
		return "dp"
	case ModeSyntactic:
		return "syntactic"
	default:
		return "unknown"
	}
}

// Session is one system instance. Run may be called from concurrent
// goroutines: planning (optimizer + rewriter, whose estimate caches are
// shared mutable state) is serialized under planMu, while execution — the
// expensive phase — proceeds concurrently against the lock-protected store
// and catalog.
type Session struct {
	Store *storage.Store
	Cat   *meta.Catalog
	Eng   *mr.Engine
	Opt   *optimizer.Optimizer
	Rew   *rewrite.Rewriter
	Eval  *expr.Evaluator

	// DisableMaintenance forces AppendRows to invalidate every dependent
	// view instead of maintaining eligible ones incrementally (the full-
	// recompute arm of the ingest experiment).
	DisableMaintenance bool

	// planMu serializes compile/rewrite/executable-build; the optimizer's
	// per-query estimate cache and the rewriter's counters are not
	// thread-safe, and queries must be estimated one at a time anyway so
	// each sees a consistent statistics snapshot.
	planMu sync.Mutex

	// batchMu serializes RunBatch and AppendRows against each other: both
	// temporarily repurpose shared engine state (RunBatch detaches the
	// engine registry; AppendRows runs maintenance jobs and mutates the
	// catalog wholesale). Lock order is batchMu before planMu.
	batchMu sync.Mutex

	// ingestEpoch counts AppendRows calls. planQuery snapshots it and
	// retainViews discards materialization metadata planned under an older
	// epoch — a plan raced an append and may describe pre-append contents.
	ingestEpoch atomic.Int64

	// viewMu guards viewPlans: producing logical plans per retained view,
	// captured at registration so AppendRows can re-run a view's pipeline
	// over an appended delta. Plans survive persistence (ViewPlans /
	// RestoreViewPlan); a view without a captured plan always falls back
	// to invalidation.
	viewMu    sync.Mutex
	viewPlans map[string]*plan.Node

	statsSeed atomic.Int64

	// Obs receives session-level metrics and per-query spans when set via
	// Instrument; nil costs one pointer check per query.
	Obs *obs.Registry
}

// Instrument attaches a metrics registry to the session and to every layer
// under it (store, engine, optimizer). Pass nil to detach.
func (s *Session) Instrument(reg *obs.Registry) {
	s.Obs = reg
	s.Store.SetObs(reg)
	s.Eng.Obs = reg
	s.Opt.Obs = reg
}

// InjectFaults attaches a fault injector to every layer that can fail (the
// engine's task scheduler and the store's reads). Pass nil to detach —
// detaching clears the store hook entirely rather than leaving a typed-nil
// injector behind the interface.
func (s *Session) InjectFaults(inj *fault.Injector) {
	s.Eng.Faults = inj
	if inj == nil {
		s.Store.SetFaults(nil)
		return
	}
	s.Store.SetFaults(inj)
}

// New builds a system instance with the given cost parameters.
func New(params cost.Params) *Session {
	st := storage.NewStore()
	cat := meta.NewCatalog()
	eval := expr.NewEvaluator()
	opt := optimizer.New(cat, params, eval)
	return &Session{
		Store:     st,
		Cat:       cat,
		Eng:       mr.New(st, params),
		Opt:       opt,
		Rew:       rewrite.NewRewriter(cat, opt),
		Eval:      eval,
		viewPlans: make(map[string]*plan.Node),
	}
}

// Metrics reports one query execution. Seconds are the deterministic
// simulated execution seconds; RewriteSeconds is the (real) runtime of the
// rewrite algorithm, which the paper's REWR timings include (§8.2).
type Metrics struct {
	Mode           Mode
	ExecSeconds    float64
	StatsSeconds   float64 // sampling jobs for new views (charged to REWR and ORIG alike)
	RewriteSeconds float64
	Jobs           int
	DataMovedBytes int64
	ResultName     string

	Rewrite *rewrite.Result // nil for ModeOriginal
}

// TotalSeconds is the headline number: execution plus statistics collection
// plus rewrite-search time.
func (m Metrics) TotalSeconds() float64 {
	return m.ExecSeconds + m.StatsSeconds + m.RewriteSeconds
}

// Run compiles, (optionally) rewrites, and executes a query plan,
// materializing the result under resultName and retaining all job outputs
// as opportunistic views. Run is safe for concurrent use; see Session.
//
// A concurrent AppendRows can invalidate a view between planning and
// execution; such a run fails pin-time input validation and is replanned
// against the post-append catalog (bounded retries).
func (s *Session) Run(q *plan.Node, resultName string, mode Mode) (*Metrics, error) {
	const maxReplans = 3
	for attempt := 0; ; attempt++ {
		m, err := s.runOnce(q, resultName, mode)
		if err == errStaleInputs && attempt < maxReplans {
			s.Obs.Counter("session_stale_plan_retries_total", "mode", mode.String()).Inc()
			continue
		}
		return m, err
	}
}

func (s *Session) runOnce(q *plan.Node, resultName string, mode Mode) (*Metrics, error) {
	qsp := s.Obs.StartSpan(resultName, "query")
	psp := qsp.Child("plan")
	m, chosen, w, jobs, epoch, err := s.planQuery(q, resultName, mode)
	psp.End()
	if err != nil {
		s.Obs.Counter("session_query_failures_total", "mode", mode.String()).Inc()
		qsp.End()
		return nil, err
	}
	if jobs != nil {
		esp := qsp.Child("execute")
		m, err = s.executePlan(m, chosen, w, jobs, resultName, epoch)
		if err == nil {
			esp.AddSim(m.ExecSeconds)
		}
		esp.End()
		if err == errStaleInputs {
			qsp.End()
			return nil, err
		}
		if err != nil {
			s.Obs.Counter("session_query_failures_total", "mode", mode.String()).Inc()
			qsp.End()
			return nil, err
		}
		// Statistics collection runs inside executePlan; its wall share
		// cannot be isolated there, so the stats span is sim-only.
		if m.StatsSeconds > 0 {
			ssp := qsp.Child("stats")
			ssp.AddSim(m.StatsSeconds)
			ssp.End()
		}
	}
	qsp.AddSim(m.ExecSeconds + m.StatsSeconds)
	qsp.End()
	s.record(m)
	return m, nil
}

// record publishes per-query metrics. Counter values are deterministic
// (simulated seconds, search counters, query counts); the rewrite search's
// real runtime goes into a histogram only.
func (s *Session) record(m *Metrics) {
	reg := s.Obs
	if reg == nil {
		return
	}
	mode := m.Mode.String()
	reg.Counter("session_queries_total", "mode", mode).Inc()
	reg.FloatCounter("session_exec_sim_seconds_total", "mode", mode).Add(m.ExecSeconds)
	reg.FloatCounter("session_stats_sim_seconds_total", "mode", mode).Add(m.StatsSeconds)
	if m.Rewrite != nil {
		c := m.Rewrite.Counters
		reg.Counter("rewrite_candidates_considered_total", "mode", mode).Add(int64(c.CandidatesConsidered))
		reg.Counter("rewrite_attempts_total", "mode", mode).Add(int64(c.RewriteAttempts))
		reg.Counter("rewrites_found_total", "mode", mode).Add(int64(c.RewritesFound))
		if m.Rewrite.Improved {
			reg.Counter("rewrites_improved_total", "mode", mode).Inc()
		}
		reg.Histogram("session_rewrite_wall_seconds", nil, "mode", mode).Observe(m.RewriteSeconds)
	}
}

// errStaleInputs signals that a planned input vanished (a concurrent
// AppendRows invalidated it) between planning and pinning; the query is
// replanned against the current catalog.
var errStaleInputs = fmt.Errorf("session: planned input invalidated concurrently")

// planQuery compiles and (optionally) rewrites one query under planMu. A
// nil jobs return means the chosen plan is a bare scan of an existing
// materialization and nothing needs to execute. The returned epoch is the
// ingest epoch the plan was derived under.
func (s *Session) planQuery(q *plan.Node, resultName string, mode Mode) (*Metrics, *plan.Node, *optimizer.Work, []*mr.Job, int64, error) {
	s.planMu.Lock()
	defer s.planMu.Unlock()
	epoch := s.ingestEpoch.Load()
	// Estimates are cached per query so every plan for the same logical
	// output costs identically; statistics change between queries.
	s.Opt.ClearEstimates()
	w, err := s.Opt.Compile(q)
	if err != nil {
		return nil, nil, nil, nil, epoch, err
	}
	m := &Metrics{Mode: mode, ResultName: resultName}

	chosen := q
	switch mode {
	case ModeOriginal:
	case ModeBFR, ModeDP, ModeSyntactic:
		views := s.Cat.Views()
		var res *rewrite.Result
		switch mode {
		case ModeBFR:
			res = s.Rew.BFRewrite(w, views)
		case ModeDP:
			res = s.Rew.DPRewrite(w, views)
		default:
			res = s.Rew.SyntacticRewrite(w, views)
		}
		m.Rewrite = res
		m.RewriteSeconds = res.Runtime.Seconds()
		if res.Improved {
			chosen = res.Plan
		}
	}

	if chosen.Kind == plan.KindScan {
		m.ResultName = chosen.Dataset
		return m, chosen, w, nil, epoch, nil
	}
	if chosen != q {
		if w, err = s.Opt.Compile(chosen); err != nil {
			return nil, nil, nil, nil, epoch, fmt.Errorf("session: rewritten plan failed to compile: %w", err)
		}
	}
	jobs, err := s.Opt.Executable(w, resultName)
	if err != nil {
		return nil, nil, nil, nil, epoch, err
	}
	return m, chosen, w, jobs, epoch, nil
}

// executePlan runs the compiled jobs and retains their outputs as views.
// It runs outside planMu: execution is the expensive phase, and the store
// and catalog are themselves safe for concurrent use.
func (s *Session) executePlan(m *Metrics, chosen *plan.Node, w *optimizer.Work, jobs []*mr.Job, resultName string, epoch int64) (*Metrics, error) {
	// Pin the plan's input datasets and its own intermediate outputs
	// against capacity eviction for the run: a job's materialization must
	// not evict a view a later job of the same plan reads.
	inputs := pinList(chosen, w)
	s.Store.Pin(inputs)
	// Validate under the pin that every scanned input still exists: a
	// concurrent append may have invalidated a view this plan was built
	// around. Inputs that exist now are held by the pin (deletion defers)
	// for the whole run.
	for _, in := range scanList(chosen) {
		if !s.Store.Has(in) {
			s.Store.Unpin(inputs)
			return nil, errStaleInputs
		}
	}
	_, agg, err := s.Eng.RunSequence(jobs)
	s.Store.Unpin(inputs)
	s.Store.EnforceBudget()
	if err != nil {
		return nil, err
	}
	// Credit the views a successful rewrite read with the cost it saved —
	// the signal the cost-benefit reclamation policy ranks on (§10).
	s.creditRewrite(m, chosen)
	m.ExecSeconds = agg.SimSeconds
	m.Jobs = agg.Jobs
	m.DataMovedBytes = agg.DataMovedBytes()

	// Retain job outputs as opportunistic views: register metadata and
	// collect statistics with the lightweight sampling job (§2.1).
	sec, err := s.retainViews(w, resultName, epoch)
	if err != nil {
		return nil, err
	}
	m.StatsSeconds += sec
	return m, nil
}

// pinList is the set of dataset names one plan's execution pins against
// capacity eviction: every scanned input plus every job materialization.
// Names may repeat; Pin/Unpin are count-based per call site.
func pinList(chosen *plan.Node, w *optimizer.Work) []string {
	inputs := scanList(chosen)
	for _, jn := range w.Nodes {
		inputs = append(inputs, jn.ViewName)
	}
	return inputs
}

// scanList is the stored datasets a plan reads.
func scanList(chosen *plan.Node) []string {
	var inputs []string
	plan.Walk(chosen, func(n *plan.Node) {
		if n.Kind == plan.KindScan {
			inputs = append(inputs, n.Dataset)
		}
	})
	return inputs
}

// retainViews registers every new materialization of an executed plan as an
// opportunistic view and samples its statistics, in node order; the sink is
// retained under resultName. Returns the simulated seconds the sampling
// jobs cost. Both the sequential and the batch executor finalize queries
// through this one helper so retention behavior cannot drift between them.
//
// epoch is the ingest epoch the plan was derived under. When an AppendRows
// intervened between planning and retention, the materializations may
// describe pre-append base contents; registering them would resurrect
// exactly the staleness AppendRows just cleaned up, so they are discarded
// instead (the caller's result dataset stays readable but unregistered).
func (s *Session) retainViews(w *optimizer.Work, resultName string, epoch int64) (float64, error) {
	if epoch != s.ingestEpoch.Load() {
		for _, jn := range w.Nodes {
			if jn != w.Sink() {
				s.Store.Delete(jn.ViewName)
			}
		}
		s.Obs.Counter("session_stale_retention_discarded_total").Inc()
		s.Cat.SyncWithStore(s.Store)
		return 0, nil
	}
	var total float64
	for i, jn := range w.Nodes {
		name := jn.ViewName
		if jn == w.Sink() {
			// The sink was materialized under the caller's result name;
			// that is the dataset future queries can reuse.
			name = resultName
		}
		if _, known := s.Cat.Table(name); known {
			continue // stats already collected for this materialization
		}
		if !s.Store.Has(name) {
			continue // evicted by the reclamation policy
		}
		s.Cat.RegisterView(name, jn.OutCols, jn.Ann, cost.Stats{}, jn.PlanFP)
		// Surface the layout the engine declared at materialize time (reduce
		// outputs are hash-bucketed by their key) as catalog metadata, so
		// future plans scanning this view can match it and skip the shuffle.
		if sigs, parts := s.Store.Partitioning(name); parts > 0 {
			s.Cat.SetPartitioning(name, afk.Partitioning{Sigs: sigs, Parts: parts})
		}
		s.setViewPlan(name, jn.Logical)
		sec, err := s.Cat.CollectStats(s.Eng, name, s.statsSeed.Add(1)+int64(i))
		if err != nil {
			return total, err
		}
		total += sec
	}
	s.Cat.SyncWithStore(s.Store)
	return total, nil
}

// setViewPlan captures the producing logical plan of a retained view (used
// by AppendRows to run the view's pipeline over an appended delta).
func (s *Session) setViewPlan(name string, pl *plan.Node) {
	c := pl.Clone()
	s.viewMu.Lock()
	s.viewPlans[name] = c
	s.viewMu.Unlock()
}

// viewPlan returns the captured producing plan of a view, or nil.
func (s *Session) viewPlan(name string) *plan.Node {
	s.viewMu.Lock()
	defer s.viewMu.Unlock()
	return s.viewPlans[name]
}

func (s *Session) dropViewPlan(name string) {
	s.viewMu.Lock()
	delete(s.viewPlans, name)
	s.viewMu.Unlock()
}

// ViewPlans returns a deep copy of every captured producing plan, keyed by
// view name. Persistence snapshots these alongside the catalog so a
// restored session can keep maintaining its views.
func (s *Session) ViewPlans() map[string]*plan.Node {
	s.viewMu.Lock()
	defer s.viewMu.Unlock()
	out := make(map[string]*plan.Node, len(s.viewPlans))
	for name, pl := range s.viewPlans {
		out[name] = pl.Clone()
	}
	return out
}

// RestoreViewPlan reinstalls a producing plan captured by an earlier
// session (persist.Open calls this), making the view eligible for
// incremental maintenance on AppendRows instead of blanket invalidation.
func (s *Session) RestoreViewPlan(name string, pl *plan.Node) {
	s.setViewPlan(name, pl)
}

// DropViews clears all opportunistic views from store and catalog
// (experiments do this between phases).
func (s *Session) DropViews() {
	s.Store.DropViews()
	s.Cat.DropViews()
	s.viewMu.Lock()
	s.viewPlans = make(map[string]*plan.Node)
	s.viewMu.Unlock()
}
